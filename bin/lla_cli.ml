(* Command-line interface to the LLA reproduction: run paper experiments,
   probe workload schedulability, solve a workload and print the
   allocation, or emulate the prototype system. *)

open Cmdliner

(* --verbose enables Logs debug output on stderr for every subcommand. *)
let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let verbose_arg =
  let doc = "Print solver/optimizer debug logs on stderr." in
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc)

let iterations_arg =
  let doc = "Maximum number of LLA iterations." in
  Arg.(value & opt int 2000 & info [ "iterations"; "n" ] ~docv:"N" ~doc)

let csv_arg =
  let doc = "Also write the experiment's main series to $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let workload_arg =
  let doc =
    "Workload to operate on: 'base' (the paper's 3-task simulation workload), 'six' \
     (over-provisioned 6 tasks), 'twelve', 'unschedulable' (6 tasks, original critical times), \
     'prototype' (the paper's 4-task system workload), 'random:SEED', or 'file:PATH' (the \
     text format documented in Lla_model.Workload_codec)."
  in
  Arg.(value & opt string "base" & info [ "workload"; "w" ] ~docv:"NAME" ~doc)

let parse_workload name =
  match String.split_on_char ':' name with
  | [ "base" ] -> Ok (Lla_workloads.Paper_sim.base ())
  | [ "six" ] -> Ok (Lla_workloads.Paper_sim.scaled ~copies:2 ())
  | [ "twelve" ] -> Ok (Lla_workloads.Paper_sim.scaled ~copies:4 ())
  | [ "unschedulable" ] -> Ok (Lla_workloads.Paper_sim.unschedulable_six ())
  | [ "prototype" ] -> Ok (Lla_workloads.Prototype.workload ())
  | "file" :: rest ->
    let path = String.concat ":" rest in
    Result.map_error (fun msg -> `Msg msg) (Lla_model.Workload_codec.load ~path)
  | [ "random"; seed ] -> (
    match int_of_string_opt seed with
    | Some seed -> Ok (Lla_workloads.Random_gen.generate ~seed ())
    | None -> Error (`Msg "random workload needs an integer seed, e.g. random:42"))
  | _ -> Error (`Msg (Printf.sprintf "unknown workload %S" name))

let or_exit = function
  | Ok v -> v
  | Error (`Msg m) ->
    prerr_endline ("error: " ^ m);
    exit 2

let write_series_csv path series =
  let rows =
    List.concat_map
      (fun (name, s) ->
        List.map (fun (x, y) ->
            [ name; Printf.sprintf "%.17g" x; Printf.sprintf "%.17g" y ])
          (Lla_stdx.Series.downsample s ~max_points:(Lla_stdx.Series.length s)))
      series
  in
  Lla_stdx.Csv.write ~path ~header:[ "series"; "x"; "y" ] ~rows;
  Printf.printf "wrote %s\n" path

(* --- experiment subcommands ----------------------------------------- *)

let table1_cmd =
  let run iterations =
    print_string (Lla_experiments.Table1.report (Lla_experiments.Table1.run ~iterations ()))
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Reproduce Table 1 (optimal latency assignment).")
    Term.(const run $ iterations_arg)

let fig5_cmd =
  let run iterations csv =
    let result = Lla_experiments.Fig5.run ~iterations () in
    print_string (Lla_experiments.Fig5.report result);
    Option.iter
      (fun path ->
        write_series_csv path
          (List.map
             (fun (c : Lla_experiments.Fig5.curve) -> (c.label, c.series))
             result.Lla_experiments.Fig5.curves))
      csv
  in
  Cmd.v
    (Cmd.info "fig5" ~doc:"Reproduce Figure 5 (step-size study).")
    Term.(const run $ iterations_arg $ csv_arg)

let fig6_cmd =
  let run iterations csv =
    let result = Lla_experiments.Fig6.run ~iterations () in
    print_string (Lla_experiments.Fig6.report result);
    Option.iter
      (fun path ->
        write_series_csv path
          (List.map
             (fun (p : Lla_experiments.Fig6.point) ->
               (Printf.sprintf "%d-tasks" p.Lla_experiments.Fig6.n_tasks,
                p.Lla_experiments.Fig6.series))
             result.Lla_experiments.Fig6.points))
      csv
  in
  Cmd.v
    (Cmd.info "fig6" ~doc:"Reproduce Figure 6 (task-count scaling).")
    Term.(const run $ iterations_arg $ csv_arg)

let fig7_cmd =
  let run iterations csv =
    let result = Lla_experiments.Fig7.run ~iterations () in
    print_string (Lla_experiments.Fig7.report result);
    Option.iter
      (fun path ->
        write_series_csv path
          (("utility", result.Lla_experiments.Fig7.utility_series)
          :: result.Lla_experiments.Fig7.share_series))
      csv
  in
  Cmd.v
    (Cmd.info "fig7" ~doc:"Reproduce Figure 7 (schedulability probe).")
    Term.(const run $ iterations_arg $ csv_arg)

let fig8_cmd =
  let duration =
    Arg.(value & opt float 120. & info [ "duration" ] ~docv:"SECONDS" ~doc:"Simulated seconds.")
  in
  let enable_at =
    Arg.(
      value
      & opt float 60.
      & info [ "enable-correction-at" ] ~docv:"SECONDS"
          ~doc:"When to switch on model error correction.")
  in
  let run duration enable_at csv =
    let result =
      Lla_experiments.Fig8.run ~duration:(duration *. 1000.)
        ~enable_correction_at:(enable_at *. 1000.) ()
    in
    print_string (Lla_experiments.Fig8.report result);
    Option.iter
      (fun path ->
        write_series_csv path
          [
            ("fast-share", result.Lla_experiments.Fig8.fast_share_series);
            ("slow-share", result.Lla_experiments.Fig8.slow_share_series);
            ("fast-error", result.Lla_experiments.Fig8.fast_error_series);
          ])
      csv
  in
  Cmd.v
    (Cmd.info "fig8" ~doc:"Reproduce Figure 8 (prototype with error correction).")
    Term.(const run $ duration $ enable_at $ csv_arg)

let adaptation_cmd =
  let run iterations =
    print_string
      (Lla_experiments.Adaptation.report
         (Lla_experiments.Adaptation.run ~iterations_per_phase:iterations ()))
  in
  Cmd.v
    (Cmd.info "adaptation"
       ~doc:"Run the online-adaptation experiment (capacity drop and recovery).")
    Term.(const run $ iterations_arg)

let variation_cmd =
  let run () =
    print_string
      (Lla_experiments.Workload_variation.report (Lla_experiments.Workload_variation.run ()))
  in
  Cmd.v
    (Cmd.info "variation"
       ~doc:"Run the workload-variation experiment (silent mid-run rate change).")
    Term.(const run $ const ())

let delays_cmd =
  let jitter =
    Arg.(
      value
      & opt float 0.
      & info [ "jitter" ] ~docv:"FRACTION"
          ~doc:
            "Jitter one-way delays uniformly by +/- this fraction of the nominal delay \
             (0.5 = +/-50%) instead of using a constant delay.")
  in
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"Seed for the jittered delay RNG.")
  in
  let run jitter seed =
    print_string
      (Lla_experiments.Delay_sweep.report (Lla_experiments.Delay_sweep.run ~jitter ~seed ()))
  in
  Cmd.v
    (Cmd.info "delays" ~doc:"Sweep control-message delay for the distributed deployment.")
    Term.(const run $ jitter $ seed)

(* The chaos / recovery / campaign commands share one pair of seeding
   flags: [--seed N] is the base seed and [--runs K] repeats the
   experiment with seeds N, N+1, ..., N+K-1 — the same convention the
   campaign generator uses for its schedules. *)
let runs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "runs" ] ~docv:"K"
        ~doc:
          "Repeat the experiment $(docv) times with seeds $(b,N), $(b,N+1), ..., $(b,N+K-1) \
           (where $(b,N) is $(b,--seed)) — the seeding convention of $(b,campaign). The CSV \
           export, when requested, holds the last run.")

let seed_arg ~doc = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)

(* The chaos and soak commands can swap the deterministic simulator for
   the OCaml 5 domains-parallel engine; [--domains] sizes its pool. *)
let engine_arg =
  Arg.(
    value
    & opt (enum [ ("sim", `Sim); ("domains", `Domains) ]) `Sim
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Execution engine: $(b,sim) (the deterministic single-threaded simulator, default) or \
           $(b,domains) (the OCaml 5 domains-parallel runtime in deterministic-merge mode — \
           replays are still bit-identical for a fixed $(b,--domains)).")

let domains_arg =
  Arg.(
    value
    & opt int 4
    & info [ "domains" ] ~docv:"N" ~doc:"Domain-pool size for $(b,--engine domains) (default 4).")

let campaign_engine engine domains : Lla_chaos.Campaign.engine =
  match engine with `Sim -> `Sim | `Domains -> `Domains domains

let foreach_seed ~runs ~seed f =
  for i = 0 to max 0 (runs - 1) do
    let s = seed + i in
    if runs > 1 then Printf.printf "=== seed %d ===\n" s;
    f s
  done

let chaos_cmd =
  let seed = seed_arg ~doc:"Base seed for the fault-injection RNG." in
  let horizon =
    Arg.(
      value
      & opt float 120.
      & info [ "horizon" ] ~docv:"SECONDS" ~doc:"Simulated control time per scenario.")
  in
  let run seed runs horizon csv =
    foreach_seed ~runs ~seed (fun seed ->
        let result = Lla_experiments.Chaos.run ~seed ~horizon:(horizon *. 1000.) () in
        print_string (Lla_experiments.Chaos.report result);
        Option.iter
          (fun path ->
            let series = Lla_stdx.Series.create ~name:"partition-utility" () in
            List.iter
              (fun (x, y) -> Lla_stdx.Series.add series ~x ~y)
              result.Lla_experiments.Chaos.partition.Lla_experiments.Chaos.series;
            write_series_csv path [ ("partition-utility", series) ])
          csv)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the chaos experiments (message loss, delay jitter, partition + heal) on the \
          distributed deployment.")
    Term.(const run $ seed $ runs_arg $ horizon $ csv_arg)

let recovery_cmd =
  let seed = seed_arg ~doc:"Base seed for the transport RNG." in
  let horizon =
    Arg.(
      value
      & opt float 60.
      & info [ "horizon" ] ~docv:"SECONDS" ~doc:"Simulated control time per scenario.")
  in
  let run seed runs horizon csv =
    foreach_seed ~runs ~seed (fun seed ->
        let result = Lla_experiments.Recovery.run ~seed ~horizon:(horizon *. 1000.) () in
        print_string (Lla_experiments.Recovery.report result);
        Option.iter
          (fun path ->
            let series = Lla_stdx.Series.create ~name:"protected-utility" () in
            List.iter
              (fun (x, y) -> Lla_stdx.Series.add series ~x ~y)
              result.Lla_experiments.Recovery.protected_.Lla_experiments.Recovery.utility_series;
            write_series_csv path [ ("protected-utility", series) ])
          csv)
  in
  Cmd.v
    (Cmd.info "recovery"
       ~doc:
         "Run the recovery experiments (warm vs cold restart after a control-plane crash, \
          safe-mode divergence containment, heartbeat failure detection).")
    Term.(const run $ seed $ runs_arg $ horizon $ csv_arg)

let campaign_cmd =
  let runs =
    Arg.(
      value
      & opt int 50
      & info [ "runs" ] ~docv:"K" ~doc:"Number of generated schedules to execute.")
  in
  let seed =
    seed_arg
      ~doc:
        "Base seed: run $(i,i) executes the schedule generated from seed $(b,N)+$(i,i). Same \
         seed, byte-identical summary."
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:
            "Write failing runs' schedules to $(docv) (created if needed) as \
             $(b,repro-<seed>.json) plus a delta-debugged $(b,repro-<seed>.min.json) — both \
             replayable with $(b,chaos-replay).")
  in
  let fragile =
    Arg.(
      value
      & flag
      & info [ "fragile" ]
          ~doc:
            "Run the deliberately breakable deployment (resilience off, aggressive fixed step) \
             instead of the robust one — demonstrates the oracles catching violations.")
  in
  let run runs seed out fragile engine domains =
    let engine = campaign_engine engine domains in
    let summary = Lla_chaos.Campaign.run ~engine ?out ~fragile ~runs ~seed () in
    print_string summary.Lla_chaos.Campaign.report;
    match summary.Lla_chaos.Campaign.failures with
    | [] -> ()
    | failures ->
        List.iter
          (fun (f : Lla_chaos.Campaign.failure) ->
            Option.iter (Printf.printf "repro: %s\n") f.Lla_chaos.Campaign.repro_path;
            Option.iter (Printf.printf "shrunk repro: %s\n") f.Lla_chaos.Campaign.shrunk_path)
          failures;
        Stdlib.exit 1
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run a randomized fault campaign: generate seeded fault schedules, execute each \
          against the distributed deployment, judge safety and liveness oracles, and shrink \
          any failure to a minimal JSON reproducer. Exits 1 on any oracle violation.")
    Term.(const run $ runs $ seed $ out $ fragile $ engine_arg $ domains_arg)

let chaos_replay_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"REPRO.json"
          ~doc:"A schedule artifact written by $(b,campaign --out) (or by hand).")
  in
  let run path engine domains =
    match Lla_chaos.Campaign.replay ~engine:(campaign_engine engine domains) ~path () with
    | Error msg ->
        prerr_endline ("chaos-replay: " ^ msg);
        Stdlib.exit 2
    | Ok exec ->
        Format.printf "%a@." Lla_chaos.Schedule.pp exec.Lla_chaos.Campaign.schedule;
        print_endline (Lla_chaos.Oracle.render exec.Lla_chaos.Campaign.verdicts);
        if not (Lla_chaos.Oracle.ok exec.Lla_chaos.Campaign.verdicts) then Stdlib.exit 1
  in
  Cmd.v
    (Cmd.info "chaos-replay"
       ~doc:
         "Replay a saved fault schedule and re-judge the oracle suite — deterministic, so a \
          reproducer fails (exit 1) exactly as it did when the campaign found it (replay with \
          the engine the campaign ran on).")
    Term.(const run $ path $ engine_arg $ domains_arg)

let ablation_cmd =
  let run iterations =
    print_string (Lla_experiments.Ablation.report (Lla_experiments.Ablation.run ~iterations ()))
  in
  Cmd.v
    (Cmd.info "ablation" ~doc:"Run the ablation suite (baselines, variants, caps, schedulers).")
    Term.(const run $ iterations_arg)

(* --- generic tools --------------------------------------------------- *)

let solve_cmd =
  let run verbose workload_name iterations =
    setup_logs verbose;
    let workload = or_exit (parse_workload workload_name) in
    print_endline (Lla_model.Workload.stats workload);
    let solver = Lla.Solver.create workload in
    (match Lla.Solver.run_until_converged solver ~max_iterations:iterations with
    | Some i -> Printf.printf "converged at iteration %d\n" i
    | None -> Printf.printf "not converged after %d iterations\n" (Lla.Solver.iteration solver));
    Printf.printf "total utility: %.3f  feasible: %b\n" (Lla.Solver.utility solver)
      (Lla.Solver.feasible solver);
    let table =
      Lla_stdx.Table.create
        ~columns:
          [
            ("subtask", Lla_stdx.Table.Left);
            ("latency (ms)", Lla_stdx.Table.Right);
            ("share", Lla_stdx.Table.Right);
          ]
    in
    List.iter
      (fun (sid, lat) ->
        let s = Lla_model.Workload.subtask workload sid in
        Lla_stdx.Table.add_row table
          [
            s.Lla_model.Subtask.name;
            Lla_stdx.Table.cell_f lat;
            Lla_stdx.Table.cell_f ~decimals:4 (Lla.Solver.share solver sid);
          ])
      (Lla.Solver.latencies solver);
    Lla_stdx.Table.print table;
    List.iter
      (fun ((task : Lla_model.Task.t), _, cost) ->
        Printf.printf "%s: critical path %.2f ms / critical time %.0f ms\n" task.Lla_model.Task.name
          cost task.Lla_model.Task.critical_time)
      (Lla.Solver.critical_paths solver)
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Run LLA on a workload and print the optimal allocation.")
    Term.(const run $ verbose_arg $ workload_arg $ iterations_arg)

let export_cmd =
  let output =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Destination workload file.")
  in
  let run workload_name output =
    let workload = or_exit (parse_workload workload_name) in
    Lla_model.Workload_codec.save ~path:output workload;
    Printf.printf "wrote %s\n" output
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Write a named workload to the text format (see 'solve -w file:...').")
    Term.(const run $ workload_arg $ output)

let probe_cmd =
  let run workload_name iterations =
    let workload = or_exit (parse_workload workload_name) in
    let verdict = Lla.Schedulability.probe ~iterations workload in
    Format.printf "%a@." Lla.Schedulability.pp verdict;
    exit (if Lla.Schedulability.is_schedulable verdict then 0 else 1)
  in
  Cmd.v
    (Cmd.info "probe"
       ~doc:"Test workload schedulability with LLA (exit 0 = schedulable, 1 = not).")
    Term.(const run $ workload_arg $ iterations_arg)

let emulate_cmd =
  let duration =
    Arg.(value & opt float 30. & info [ "duration" ] ~docv:"SECONDS" ~doc:"Simulated seconds.")
  in
  let scheduler =
    let doc = "Scheduler discipline: fluid, fluid-capped, sfq or sfs." in
    Arg.(value & opt string "sfs" & info [ "scheduler" ] ~docv:"KIND" ~doc)
  in
  let run workload_name duration scheduler_name csv =
    let workload = or_exit (parse_workload workload_name) in
    let kind =
      match scheduler_name with
      | "fluid" -> Lla_sched.Scheduler.Fluid { work_conserving = true }
      | "fluid-capped" -> Lla_sched.Scheduler.Fluid { work_conserving = false }
      | "sfq" -> Lla_sched.Scheduler.Sfq { quantum = 1.0 }
      | "sfs" -> Lla_sched.Scheduler.Sfs { quantum = 1.0 }
      | other -> or_exit (Error (`Msg (Printf.sprintf "unknown scheduler %S" other)))
    in
    let config = { Lla_runtime.System.default_config with scheduler = kind } in
    let system = Lla_runtime.System.create ~config workload in
    Lla_runtime.System.run system ~until:(duration *. 1000.);
    Printf.printf "scheduler: %s, %.0f simulated seconds\n"
      (Lla_sched.Scheduler.kind_name kind) duration;
    List.iter
      (fun (task : Lla_model.Task.t) ->
        let stats = Lla_runtime.System.task_latency_stats system task.Lla_model.Task.id in
        let p95 = Lla_runtime.System.measured_task_latency system task.Lla_model.Task.id ~p:95. in
        Printf.printf
          "%-10s completions %6d  mean %7.2f ms  p95 %7.2f ms  max %7.2f ms  misses %d\n"
          task.Lla_model.Task.name stats.Lla_stdx.Stats.n stats.Lla_stdx.Stats.mean
          (Option.value p95 ~default:nan)
          stats.Lla_stdx.Stats.max
          (Lla_runtime.System.deadline_misses system task.Lla_model.Task.id))
      workload.Lla_model.Workload.tasks;
    Option.iter
      (fun path ->
        let opt = Lla_runtime.System.optimizer system in
        let traces =
          List.map
            (fun (s : Lla_model.Subtask.t) ->
              (s.Lla_model.Subtask.name, Lla_runtime.Optimizer_loop.share_trace opt s.id))
            (Lla_model.Workload.subtasks workload)
        in
        write_series_csv path
          (("measured-utility", Lla_runtime.System.measured_utility_series system) :: traces))
      csv
  in
  Cmd.v
    (Cmd.info "emulate" ~doc:"Emulate a workload on the simulated cluster with the optimizer.")
    Term.(const run $ workload_arg $ duration $ scheduler $ csv_arg)

(* Shared scenario runner for the observability commands (trace, analyze,
   profile): each scenario exercises the base workload with the supplied
   obs handle attached. *)
let scenario_doc =
  "'fig5' (synchronous solver on the base workload), 'distributed' (message-passing \
   deployment, zero faults), or 'chaos' (distributed with 5% message loss, an agent outage \
   and the resilience layer on)."

let run_scenario ~obs experiment ~iterations ~duration =
  match experiment with
  | "fig5" | "solver" ->
    let solver = Lla.Solver.create ~obs (Lla_workloads.Paper_sim.base ()) in
    Lla.Solver.run solver ~iterations
  | "distributed" ->
    let engine = Lla_sim.Engine.create () in
    let d = Lla_runtime.Distributed.create ~obs engine (Lla_workloads.Paper_sim.base ()) in
    Lla_runtime.Distributed.run d ~duration:(duration *. 1000.);
    Lla_runtime.Distributed.stop d
  | "chaos" ->
    let module Transport = Lla_transport.Transport in
    let workload = Lla_workloads.Paper_sim.base () in
    let engine = Lla_sim.Engine.create () in
    let transport =
      Transport.create ~obs engine
        ~config:
          {
            Transport.default_config with
            faults = { Transport.no_faults with drop = 0.05 };
            seed = 42;
          }
    in
    let d =
      Lla_runtime.Distributed.create ~obs ~transport
        ~resilience:Lla_runtime.Distributed.default_resilience engine workload
    in
    let victim_id = (List.hd workload.Lla_model.Workload.resources).Lla_model.Resource.id in
    let victim = Lla_runtime.Distributed.agent_endpoint d victim_id in
    let horizon = duration *. 1000. in
    Transport.schedule_outage transport victim ~at:(horizon /. 3.) ~duration:(horizon /. 10.);
    Lla_runtime.Distributed.run d ~duration:horizon;
    Lla_runtime.Distributed.stop d
  | other -> or_exit (Error (`Msg (Printf.sprintf "unknown scenario %S" other)))

let duration_arg =
  Arg.(
    value
    & opt float 10.
    & info [ "duration" ] ~docv:"SECONDS"
        ~doc:"Simulated control time (distributed and chaos scenarios).")

let trace_cmd =
  let experiment =
    Arg.(value & pos 0 string "distributed" & info [] ~docv:"EXPERIMENT" ~doc:("Scenario to trace: " ^ scenario_doc))
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the trace (one JSON object per line) to $(docv) instead of stdout.")
  in
  let io =
    Arg.(
      value
      & vflag true
          [
            ( true,
              info [ "io" ]
                ~doc:
                  "Record per-message happy-path transport events (Transport_send, \
                   Transport_delivered). This is the default for 'trace': the point of a dump \
                   is forensics." );
            ( false,
              info [ "no-io" ]
                ~doc:
                  "Omit the per-message happy-path transport events; failures (drops, cuts, \
                   stale discards) are still traced and the aggregate counters stay in the \
                   metrics snapshot. Cuts healthy-run dump volume by roughly an order of \
                   magnitude." );
          ])
  in
  let only =
    Arg.(
      value
      & opt (some string) None
      & info [ "only" ] ~docv:"KINDS"
          ~doc:
            "Comma-separated event-type filter for the dump: a record is written when its type \
             starts with one of the given prefixes, e.g. $(b,--only price,transport) keeps \
             price_updated plus every transport_* record. Matches the 'type' field of the JSONL \
             encoding; emission (and the metrics snapshot) is unaffected.")
  in
  let rotate =
    Arg.(
      value
      & opt (some int) None
      & info [ "rotate" ] ~docv:"MIB"
          ~doc:
            "With $(b,--out), write through a bounded rotating sink instead of one unbounded \
             file: the dump rotates every $(docv) MiB (renamed $(i,FILE.1), $(i,FILE.2), ...) \
             and only $(b,--retain) rotated segments are kept, so disk usage stays bounded on \
             arbitrarily long runs. Without this flag the single-file default is unchanged.")
  in
  let retain =
    Arg.(
      value
      & opt int 3
      & info [ "retain" ] ~docv:"N"
          ~doc:"Rotated segments to keep besides the active file (with $(b,--rotate)).")
  in
  let run experiment out iterations duration io only rotate retain =
    (* A dump is forensics: include the causal spans alongside the io
       records (both are opt-in for always-on tracing, on for dumps). *)
    let obs = Lla_obs.create ~trace_io:io ~spans:true () in
    let keep =
      match only with
      | None -> fun _ -> true
      | Some kinds ->
        let kinds =
          String.split_on_char ',' kinds |> List.map String.trim
          |> List.filter (fun k -> k <> "")
        in
        fun (r : Lla_obs.Trace.record) ->
          let name = Lla_obs.Trace.event_name r.event in
          List.exists (fun k -> String.starts_with ~prefix:k name) kinds
    in
    let rotator =
      match (out, rotate) with
      | Some path, Some mib -> Some (Lla_obs.Rotate.create ~max_bytes:(mib * 1024 * 1024) ~retain ~path ())
      | _ -> None
    in
    let oc = match (out, rotator) with Some path, None -> open_out path | _ -> stdout in
    (* Stream every record through a sink as it is emitted: the dump is
       complete even when the run outlives the trace ring buffer. *)
    let written = ref 0 in
    (match rotator with
    | Some rot ->
      Lla_obs.Trace.attach obs.Lla_obs.trace (fun r ->
          if keep r then begin
            incr written;
            Lla_obs.Rotate.sink rot r
          end)
    | None ->
      Lla_obs.Trace.attach obs.Lla_obs.trace (fun r ->
          if keep r then begin
            incr written;
            output_string oc (Lla_obs.Trace.record_to_string r);
            output_char oc '\n'
          end));
    run_scenario ~obs experiment ~iterations ~duration;
    (match (rotator, out) with
    | Some rot, Some path ->
      Lla_obs.Rotate.close rot;
      Printf.printf "wrote %d trace records to %s (%d rotations, %d segments on disk)\n" !written
        path
        (Lla_obs.Rotate.rotations rot)
        (List.length (Lla_obs.Rotate.segments rot))
    | None, Some path ->
      close_out oc;
      Printf.printf "wrote %d trace records to %s\n" !written path
    | _, None -> flush oc);
    (* Metrics snapshot after the run, Prometheus text exposition. *)
    print_string (Lla_obs.Metrics.expose obs.Lla_obs.metrics)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a scenario with observability on and dump the structured trace (JSONL) plus a \
          metrics snapshot.")
    Term.(const run $ experiment $ out $ iterations_arg $ duration_arg $ io $ only $ rotate $ retain)

let analyze_cmd =
  let target =
    Arg.(
      value
      & pos 0 string "distributed"
      & info [] ~docv:"TARGET"
          ~doc:
            ("A saved trace file (path ending in .jsonl, as written by $(b,lla trace -o)) or a \
              scenario to run and analyze in-process: " ^ scenario_doc))
  in
  let tolerance =
    Arg.(
      value
      & opt float Lla_obs.Analyze.default_tolerance
      & info [ "tolerance" ] ~docv:"FRACTION"
          ~doc:"Settling band as a fraction of the optimum (default 0.015 = 1.5%).")
  in
  let run target iterations duration tolerance =
    let scenario = List.mem target [ "fig5"; "solver"; "distributed"; "chaos" ] in
    let records, optimum, online =
      if scenario then begin
        let obs = Lla_obs.create ~spans:true () in
        let sink, collected = Lla_obs.Trace.memory_sink () in
        Lla_obs.Trace.attach obs.Lla_obs.trace sink;
        run_scenario ~obs target ~iterations ~duration;
        (* Reference optimum: the synchronous solver run to convergence on
           the same (base) workload — the yardstick every scenario here
           optimizes towards. *)
        let solver = Lla.Solver.create (Lla_workloads.Paper_sim.base ()) in
        ignore (Lla.Solver.run_until_converged solver ~max_iterations:(max 2000 iterations));
        (* The online registry views, quoted with the same interpolated
           quantile estimator the offline report uses. *)
        let online =
          List.filter_map
            (fun name ->
              Option.map
                (Lla_obs.Metrics.summary ~name:("online " ^ name))
                (Lla_obs.Metrics.find_histogram obs.Lla_obs.metrics name))
            [ "lla_control_latency_ms"; "lla_transport_delay_ms" ]
        in
        (collected (), Some (Lla.Solver.utility solver), online)
      end
      else if Sys.file_exists target then
        (or_exit (Result.map_error (fun m -> `Msg m) (Lla_obs.Series.load_jsonl target)), None, [])
      else
        or_exit
          (Error (`Msg (Printf.sprintf "%S is neither a known scenario nor a trace file" target)))
    in
    let report = Lla_obs.Analyze.analyze ~tolerance ?optimum records in
    print_string (Lla_obs.Analyze.render report);
    List.iter print_endline online
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Convergence analytics over a trace: settling time to the offline optimum, oscillation, \
          per-resource congestion and price dispersion, and control-reaction latency percentiles \
          from the causal span tree.")
    Term.(const run $ target $ iterations_arg $ duration_arg $ tolerance)

let profile_cmd =
  let experiment =
    Arg.(
      value
      & pos 0 string "distributed"
      & info [] ~docv:"SCENARIO" ~doc:("Scenario to profile: " ^ scenario_doc))
  in
  let run experiment iterations duration =
    let profile = Lla_obs.Profile.create () in
    let obs = Lla_obs.create ~spans:true ~profile () in
    run_scenario ~obs experiment ~iterations ~duration;
    print_string (Lla_obs.Profile.report profile)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a scenario with the hierarchical phase profiler enabled and print the wall-clock \
          breakdown (solver phases, price updates, checkpoint I/O).")
    Term.(const run $ experiment $ iterations_arg $ duration_arg)

(* --- scale subcommands ----------------------------------------------- *)

let subtasks_arg =
  Arg.(
    value
    & opt int 100_000
    & info [ "subtasks"; "s" ] ~docv:"N" ~doc:"Target subtask count of the generated scenario.")

let resources_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "resources"; "r" ] ~docv:"N"
        ~doc:"Resource count (default: $(b,max 16 (subtasks/50))).")

let generate_cmd =
  let seed =
    seed_arg ~doc:"Scenario seed — the same seed always yields the byte-identical workload."
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:
            "Write the workload in the Workload_codec text format (usable as \
             $(b,solve -w file:FILE)).")
  in
  let run subtasks resources seed output =
    let params = Lla_scale.Generator.sized ?resources ~subtasks () in
    let workload = Lla_scale.Generator.generate ~params ~seed () in
    print_endline (Lla_scale.Generator.describe workload);
    Option.iter
      (fun path ->
        Lla_model.Workload_codec.save ~path workload;
        Printf.printf "wrote %s\n" path)
      output
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:
         "Generate a seeded planet-scale scenario (chains, fan-out trees and aggregation DAGs \
          over shared resources, feasible by construction) and optionally write it to a file.")
    Term.(const run $ subtasks_arg $ resources_arg $ seed $ output)

let solve_scale_cmd =
  let seed = seed_arg ~doc:"Seed of the generated scenario (ignored with $(b,--workload))." in
  let workload =
    Arg.(
      value
      & opt (some string) None
      & info [ "workload"; "w" ] ~docv:"NAME"
          ~doc:
            "Solve this workload instead of generating one (any $(b,solve) workload spec, e.g. \
             $(b,file:PATH)). The kernel requires linear utilities and reciprocal shares.")
  in
  let iterations =
    Arg.(value & opt int 10_000 & info [ "iterations"; "n" ] ~docv:"N" ~doc:"Tick budget.")
  in
  let run verbose workload subtasks resources seed iterations =
    setup_logs verbose;
    let w =
      match workload with
      | Some spec -> or_exit (parse_workload spec)
      | None ->
        let params = Lla_scale.Generator.sized ?resources ~subtasks () in
        Lla_scale.Generator.generate ~params ~seed ()
    in
    print_endline (Lla_scale.Generator.describe w);
    let t0 = Unix.gettimeofday () in
    let kernel =
      match Lla_scale.Kernel.create ~config:Lla_scale.Kernel.scale_config w with
      | Ok k -> k
      | Error e -> or_exit (Error (`Msg e))
    in
    Printf.printf "compile+compact %.2f s\n" (Unix.gettimeofday () -. t0);
    let t0 = Unix.gettimeofday () in
    let converged = Lla_scale.Kernel.solve kernel ~max_iterations:iterations in
    let dt = Unix.gettimeofday () -. t0 in
    let done_iters = Lla_scale.Kernel.iteration kernel in
    (match converged with
    | Some n ->
      Printf.printf "converged at tick %d (%.2f s, %.2f ms/tick)\n" n dt
        (dt *. 1e3 /. float_of_int (max 1 done_iters))
    | None ->
      Printf.printf "not converged after %d ticks (%.2f s; movement %.2e)\n" done_iters dt
        (Lla_scale.Kernel.movement kernel));
    Printf.printf "total utility: %.3f  feasible: %b  guard events: %d\n"
      (Lla_scale.Kernel.utility kernel)
      (Lla_scale.Kernel.feasible kernel)
      (Lla_scale.Kernel.guard_events kernel);
    let c = Lla_scale.Kernel.cumulative_touch kernel in
    let pct part total = 100. *. float_of_int part /. float_of_int (max 1 total) in
    Printf.printf
      "dirty-set sparsity: %d/%d subtask updates (%.1f%%), %d/%d resource updates (%.1f%%), \
       %d/%d path updates (%.1f%%)\n"
      c.Lla_scale.Kernel.subtasks_touched c.Lla_scale.Kernel.subtasks_total
      (pct c.Lla_scale.Kernel.subtasks_touched c.Lla_scale.Kernel.subtasks_total)
      c.Lla_scale.Kernel.resources_touched c.Lla_scale.Kernel.resources_total
      (pct c.Lla_scale.Kernel.resources_touched c.Lla_scale.Kernel.resources_total)
      c.Lla_scale.Kernel.paths_touched c.Lla_scale.Kernel.paths_total
      (pct c.Lla_scale.Kernel.paths_touched c.Lla_scale.Kernel.paths_total);
    List.iter (Printf.printf "violation: %s\n") (Lla_scale.Kernel.violations kernel);
    if converged = None || not (Lla_scale.Kernel.feasible kernel) then Stdlib.exit 1
  in
  Cmd.v
    (Cmd.info "solve-scale"
       ~doc:
         "Solve a planet-scale scenario with the flat-array incremental kernel (exit 0 = \
          feasible convergence within the budget).")
    Term.(const run $ verbose_arg $ workload $ subtasks_arg $ resources_arg $ seed $ iterations)

let soak_cmd =
  let module Soak = Lla_soak.Soak in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Start from the CI smoke configuration (600 subtasks, 60k ticks, tightened \
             cadences) instead of the full endurance defaults; explicit options still \
             override.")
  in
  let subtasks =
    Arg.(
      value
      & opt (some int) None
      & info [ "subtasks"; "s" ] ~docv:"N" ~doc:"Generated scenario size (default 800).")
  in
  let horizon =
    Arg.(
      value
      & opt (some int) None
      & info [ "horizon" ] ~docv:"TICKS"
          ~doc:"Control ticks to drive (default 1,000,000; smoke default 60,000).")
  in
  let churn =
    Arg.(
      value
      & opt (some int) None
      & info [ "churn" ] ~docv:"TICKS"
          ~doc:"Ticks between churn steps (admits/retires); $(b,0) disables churn.")
  in
  let chaos_every =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos-every" ] ~docv:"TICKS"
          ~doc:"Ticks between recurring chaos windows; $(b,0) disables chaos.")
  in
  let ceilings =
    Arg.(
      value
      & opt (some string) None
      & info [ "ceilings" ] ~docv:"RSS_KB,WORDS,TPS"
          ~doc:
            "Resource ceilings: VmRSS in kB, minor GC words allocated per tick, and a \
             ticks-per-second throughput floor ($(b,0) = unlimited for each). A breach sheds \
             load down the degradation ladder instead of failing. Default: 2 GiB RSS, no \
             words/throughput limit.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Record soak transitions (watchdog trips, degradations, safe-mode entries/exits, \
             chaos windows) through a bounded rotating JSONL sink at $(docv).")
  in
  let retain =
    Arg.(
      value & opt int 3
      & info [ "retain" ] ~docv:"N" ~doc:"Rotated trace segments to keep (with $(b,--trace-out)).")
  in
  let crash_every =
    Arg.(
      value
      & opt (some int) None
      & info [ "crash-every" ] ~docv:"TICKS"
          ~doc:
            "Ticks between whole-node crash drills ($(b,0) disables): the kernel iterate is \
             wiped and the node restarts warm from the journal's last good record (cold \
             without $(b,--journal)). Recovery must climb back to feasibility within the \
             sustain budget.")
  in
  let journal_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"DIR"
          ~doc:
            "Write-ahead journal the live iterate is appended to (segments \
             $(i,DIR)/journal.wal*, inspectable with $(b,lla journal)); crash drills replay \
             it for warm recovery.")
  in
  let journal_every =
    Arg.(
      value
      & opt (some int) None
      & info [ "journal-every" ] ~docv:"TICKS"
          ~doc:
            "Ticks between journal appends (default 250 with $(b,--journal), else 0).")
  in
  let run verbose smoke subtasks resources seed horizon churn chaos_every ceilings trace_out retain
      crash_every journal_dir journal_every engine domains =
    setup_logs verbose;
    let base = if smoke then Soak.smoke_config else Soak.default_config in
    let ceilings =
      match ceilings with
      | None -> base.Soak.ceilings
      | Some spec -> (
        match String.split_on_char ',' spec |> List.map String.trim with
        | [ rss; words; tps ] -> (
          match (int_of_string_opt rss, float_of_string_opt words, float_of_string_opt tps) with
          | Some max_rss_kb, Some max_words_per_tick, Some min_ticks_per_s ->
            { Soak.max_rss_kb; max_words_per_tick; min_ticks_per_s }
          | _ -> or_exit (Error (`Msg (Printf.sprintf "unparsable --ceilings %S" spec))))
        | _ -> or_exit (Error (`Msg "expected --ceilings RSS_KB,WORDS_PER_TICK,TICKS_PER_S")))
    in
    let config =
      {
        base with
        Soak.resources;
        seed;
        subtasks = Option.value subtasks ~default:base.Soak.subtasks;
        horizon = Option.value horizon ~default:base.Soak.horizon;
        churn =
          (match churn with
          | None -> base.Soak.churn
          | Some every -> { base.Soak.churn with Lla_soak.Churn.every });
        chaos =
          (match chaos_every with
          | None -> base.Soak.chaos
          | Some every -> { base.Soak.chaos with Lla_soak.Rota.every });
        ceilings;
        crash_every = Option.value crash_every ~default:base.Soak.crash_every;
        journal_every =
          Option.value journal_every
            ~default:(if journal_dir <> None then 250 else base.Soak.journal_every);
      }
    in
    let journal =
      Option.map
        (fun dir ->
          Lla_durable.Journal.create (Lla_durable.Journal.Store.file ~dir))
        journal_dir
    in
    let obs, rotator =
      match trace_out with
      | None -> (None, None)
      | Some path ->
        let obs = Lla_obs.create () in
        let rot = Lla_obs.Rotate.create ~retain ~path () in
        Lla_obs.Trace.attach obs.Lla_obs.trace (Lla_obs.Rotate.sink rot);
        (Some obs, Some rot)
    in
    let last_decile = ref (-1) in
    let on_progress ~tick =
      let decile = tick * 10 / max 1 config.Soak.horizon in
      if decile > !last_decile then begin
        last_decile := decile;
        Printf.printf "... tick %d/%d\n%!" tick config.Soak.horizon
      end
    in
    let eng =
      match engine with
      | `Sim -> None
      | `Domains -> Some (Lla_runtime.Engine.domains ~domains ())
    in
    let result = Soak.run ?obs ?engine:eng ?journal ~on_progress config in
    Option.iter Lla_runtime.Engine.shutdown eng;
    (match result with
    | Error e -> or_exit (Error (`Msg e))
    | Ok report ->
      print_endline (Soak.render report);
      (match rotator with
      | Some rot ->
        Lla_obs.Rotate.close rot;
        Printf.printf "trace: %d records, %d segments on disk\n"
          (Lla_obs.Rotate.records_written rot)
          (List.length (Lla_obs.Rotate.segments rot))
      | None -> ());
      if report.Soak.violation_count > 0 then Stdlib.exit 1)
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Long-horizon endurance run: continuous churn plus recurring chaos windows over a \
          generated scale scenario, judged by rolling health oracles (sustained Eq. 3/4 \
          feasibility, reconvergence after every episode, utility drift vs the centralized \
          optimum) under resource ceilings with graceful degradation (exit 0 = no oracle \
          violations).")
    Term.(
      const run $ verbose_arg $ smoke $ subtasks $ resources_arg $ seed_arg ~doc:"Soak seed."
      $ horizon $ churn $ chaos_every $ ceilings $ trace_out $ retain $ crash_every $ journal_dir
      $ journal_every $ engine_arg $ domains_arg)

(* --- journal inspection ----------------------------------------------- *)

let journal_cmd =
  let module J = Lla_durable.Journal in
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"Journal segment ($(i,*.wal), $(i,*.wal.N)) or snapshot ($(i,*.snap)) to inspect.")
  in
  let dump_arg =
    Arg.(
      value & opt int 16
      & info [ "records" ] ~docv:"N" ~doc:"Record headers to list (default 16; $(b,0) = none).")
  in
  let run verbose file dump =
    setup_logs verbose;
    let contents =
      try In_channel.with_open_bin file In_channel.input_all
      with Sys_error e -> or_exit (Error (`Msg e))
    in
    let _payloads, scan = J.decode contents in
    let n = List.length scan.J.entries in
    Printf.printf "%s: %d bytes, %d valid records\n" file scan.J.total_bytes n;
    if dump > 0 && n > 0 then begin
      Printf.printf "%10s %10s %10s\n" "offset" "length" "crc32";
      List.iteri
        (fun i (e : J.entry) ->
          if i < dump then Printf.printf "%10d %10d   0x%08x\n" e.J.offset e.J.length e.J.crc)
        scan.J.entries;
      if n > dump then Printf.printf "  (+%d more)\n" (n - dump)
    end;
    Printf.printf "recoverable prefix: %d/%d bytes\n" scan.J.good_bytes scan.J.total_bytes;
    match scan.J.corrupt_at with
    | None -> print_endline "no corruption"
    | Some off ->
      Printf.printf "CORRUPT at offset %d: %s\n" off
        (Option.value scan.J.corrupt_reason ~default:"unknown");
      Stdlib.exit 1
  in
  Cmd.v
    (Cmd.info "journal"
       ~doc:
         "Inspect a write-ahead journal file: list record headers, verify every CRC, and \
          report the recoverable prefix. Exit 1 when a corrupt suffix is found (recovery \
          would truncate it), mirroring $(b,chaos-replay)'s convention.")
    Term.(const run $ verbose_arg $ file_arg $ dump_arg)

(* --- streaming telemetry commands ------------------------------------ *)

(* Interpolated percentile over a sorted array — the live price pane's
   estimator (exact, unlike the bucketed histogram quantiles). *)
let percentile_sorted a q =
  let n = Array.length a in
  if n = 0 then nan
  else begin
    let rank = q *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (a.(lo) *. (1. -. frac)) +. (a.(hi) *. frac)
  end

(* Build the distributed / chaos scenario with obs (and optionally a
   streaming monitor) attached, leaving stepping to the caller — the
   live commands render or rewrite between engine steps. Mirrors
   [run_scenario] so `top distributed` watches exactly the scenario
   `trace distributed` dumps. *)
let build_scenario_deployment ~obs ?monitor ~chaos engine ~horizon =
  let workload = Lla_workloads.Paper_sim.base () in
  let d =
    if chaos then begin
      let module Transport = Lla_transport.Transport in
      let transport =
        Transport.create ~obs engine
          ~config:
            {
              Transport.default_config with
              faults = { Transport.no_faults with drop = 0.05 };
              seed = 42;
            }
      in
      let d =
        Lla_runtime.Distributed.create ~obs ?monitor ~transport
          ~resilience:Lla_runtime.Distributed.default_resilience engine workload
      in
      let victim_id = (List.hd workload.Lla_model.Workload.resources).Lla_model.Resource.id in
      let victim = Lla_runtime.Distributed.agent_endpoint d victim_id in
      Transport.schedule_outage transport victim ~at:(horizon /. 3.) ~duration:(horizon /. 10.);
      d
    end
    else Lla_runtime.Distributed.create ~obs ?monitor engine workload
  in
  (workload, d)

let refresh_arg =
  Arg.(
    value
    & opt float 1.0
    & info [ "refresh" ] ~docv:"SECONDS"
        ~doc:
          "Seconds between frames: simulated control time for the scenario targets, wall-clock \
           time for $(b,soak).")

let frames_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "frames" ] ~docv:"N"
        ~doc:"Stop rendering after $(docv) frames (the run itself completes either way).")

let no_ansi_arg =
  Arg.(
    value
    & flag
    & info [ "no-ansi" ]
        ~doc:
          "Append frames instead of redrawing in place — for logs, pipes and CI (no escape \
           codes emitted).")

let clear_frame no_ansi = if no_ansi then print_newline () else print_string "\027[2J\027[H"

let frames_done frames frame = match frames with Some n -> frame >= n | None -> false

let top_scenario ~chaos ~duration ~refresh ~frames ~no_ansi =
  let engine = Lla_sim.Engine.create () in
  let obs = Lla_obs.create ~spans:true () in
  let horizon = duration *. 1000. in
  let monitor =
    Lla_obs.Monitor.create
      ~tasks:(List.length (Lla_workloads.Paper_sim.base ()).Lla_model.Workload.tasks)
      ()
  in
  let workload, d = build_scenario_deployment ~obs ~monitor ~chaos engine ~horizon in
  Lla_runtime.Distributed.start d;
  let period = max 1e-3 (refresh *. 1000.) in
  let frame = ref 0 in
  let last_words = ref (Gc.minor_words ()) in
  let last_rounds = ref 0 in
  let buf = Buffer.create 1024 in
  let render () =
    incr frame;
    Buffer.clear buf;
    Printf.bprintf buf "lla top — %s  t=%.0f/%.0f ms  frame %d%s\n"
      (if chaos then "chaos" else "distributed")
      (Lla_sim.Engine.now engine) horizon !frame
      (match frames with Some n -> Printf.sprintf "/%d" n | None -> "");
    Printf.bprintf buf "tasks %d  resources %d  utility %.3f  safe-mode %b\n"
      (List.length workload.Lla_model.Workload.tasks)
      (List.length workload.Lla_model.Workload.resources)
      (Lla_runtime.Distributed.utility d)
      (Lla_runtime.Distributed.in_safe_mode d);
    let mus =
      Array.of_list
        (List.map
           (fun (r : Lla_model.Resource.t) -> Lla_runtime.Distributed.mu d r.Lla_model.Resource.id)
           workload.Lla_model.Workload.resources)
    in
    Array.sort compare mus;
    Printf.bprintf buf "prices: p50 %.4f  p99 %.4f  (%d agents)\n" (percentile_sorted mus 0.5)
      (percentile_sorted mus 0.99) (Array.length mus);
    (match Lla_obs.Metrics.find_histogram obs.Lla_obs.metrics "lla_control_latency_ms" with
    | Some h ->
      Buffer.add_string buf (Lla_obs.Metrics.summary ~name:"control latency (ms)" h);
      Buffer.add_char buf '\n'
    | None -> ());
    let words = Gc.minor_words () in
    let rounds =
      Lla_runtime.Distributed.price_rounds d + Lla_runtime.Distributed.allocation_rounds d
    in
    let drounds = rounds - !last_rounds in
    Printf.bprintf buf "rounds %d (+%d)  messages %d  words/round %.0f  shards %d\n" rounds drounds
      (Lla_runtime.Distributed.messages_sent d)
      (if drounds > 0 then (words -. !last_words) /. float_of_int drounds else 0.)
      (Lla_runtime.Distributed.shard_count d);
    last_words := words;
    last_rounds := rounds;
    Buffer.add_string buf (Lla_obs.Monitor.render monitor);
    clear_frame no_ansi;
    print_string (Buffer.contents buf);
    flush stdout
  in
  let rec loop t =
    if t > horizon +. 1e-9 || frames_done frames !frame then ()
    else begin
      Lla_sim.Engine.run_until engine (Float.min t horizon);
      render ();
      loop (t +. period)
    end
  in
  loop period;
  if Lla_sim.Engine.now engine < horizon then Lla_sim.Engine.run_until engine horizon;
  Lla_runtime.Distributed.stop d;
  Lla_sim.Engine.run engine ()

let top_soak ~refresh ~frames ~no_ansi =
  let module Soak = Lla_soak.Soak in
  let obs = Lla_obs.create () in
  let monitor = Lla_obs.Monitor.create () in
  let config = Soak.smoke_config in
  let frame = ref 0 in
  let quiet = ref false in
  let last_wall = ref (Unix.gettimeofday ()) in
  let last_tick = ref 0 in
  let last_words = ref (Gc.minor_words ()) in
  let buf = Buffer.create 1024 in
  let gauge name =
    match Lla_obs.Metrics.find_gauge obs.Lla_obs.metrics name with
    | Some g -> Lla_obs.Metrics.gauge_value g
    | None -> nan
  in
  let count name =
    match Lla_obs.Metrics.find_counter obs.Lla_obs.metrics name with
    | Some c -> Lla_obs.Metrics.value c
    | None -> 0
  in
  let on_progress ~tick =
    let wall = Unix.gettimeofday () in
    if (not !quiet) && (wall -. !last_wall >= refresh || tick >= config.Soak.horizon) then begin
      incr frame;
      Buffer.clear buf;
      let dtick = tick - !last_tick in
      let dwall = wall -. !last_wall in
      let words = Gc.minor_words () in
      Printf.bprintf buf "lla top — soak  tick %d/%d  frame %d%s\n" tick config.Soak.horizon !frame
        (match frames with Some n -> Printf.sprintf "/%d" n | None -> "");
      Printf.bprintf buf "active tasks %.0f  utility %.3f  movement %.2e\n"
        (gauge "lla_kernel_active_tasks") (gauge "lla_kernel_utility") (gauge "lla_kernel_movement");
      Printf.bprintf buf "ticks/s %.0f  words/tick %.0f  (shard 0)\n"
        (if dwall > 0. then float_of_int dtick /. dwall else 0.)
        (if dtick > 0 then (words -. !last_words) /. float_of_int dtick else 0.);
      Printf.bprintf buf "kernel ticks %d  touched: %d sub / %d res / %d path  guards %d\n"
        (count "lla_kernel_ticks_total")
        (count "lla_kernel_touched_subtasks_total")
        (count "lla_kernel_touched_resources_total")
        (count "lla_kernel_touched_paths_total")
        (count "lla_kernel_guard_events_total");
      Buffer.add_string buf (Lla_obs.Monitor.render monitor);
      clear_frame no_ansi;
      print_string (Buffer.contents buf);
      flush stdout;
      last_wall := wall;
      last_tick := tick;
      last_words := words;
      if frames_done frames !frame then quiet := true
    end
  in
  match Soak.run ~obs ~monitor ~on_progress config with
  | Error e -> or_exit (Error (`Msg e))
  | Ok report ->
    print_newline ();
    print_endline (Soak.render report);
    if report.Soak.violation_count > 0 then Stdlib.exit 1

let top_cmd =
  let target =
    Arg.(
      value
      & pos 0 string "distributed"
      & info [] ~docv:"TARGET"
          ~doc:
            "$(b,distributed) or $(b,chaos) (the observability scenarios, watched live on the \
             simulator) or $(b,soak) (the smoke-config endurance run, watched at the watchdog \
             cadence).")
  in
  let run target duration refresh frames no_ansi =
    match target with
    | "distributed" -> top_scenario ~chaos:false ~duration ~refresh ~frames ~no_ansi
    | "chaos" -> top_scenario ~chaos:true ~duration ~refresh ~frames ~no_ansi
    | "soak" -> top_soak ~refresh ~frames ~no_ansi
    | other ->
      or_exit (Error (`Msg (Printf.sprintf "unknown top target %S (distributed|chaos|soak)" other)))
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live view of a running deployment: active tasks, price percentiles, the \
          control-latency histogram, allocation/word rates and the streaming monitor's alert \
          pane, refreshed in place (use $(b,--no-ansi) for append-only output).")
    Term.(const run $ target $ duration_arg $ refresh_arg $ frames_arg $ no_ansi_arg)

let serve_metrics_cmd =
  let target =
    Arg.(
      value
      & pos 0 string "distributed"
      & info [] ~docv:"TARGET" ~doc:("$(b,soak) (smoke config) or a scenario: " ^ scenario_doc))
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:
            "Exposition file. Each rewrite goes to $(docv).tmp first and is renamed into place, \
             so a scraper never reads a torn snapshot.")
  in
  let every =
    Arg.(
      value
      & opt float 1.0
      & info [ "every" ] ~docv:"SECONDS"
          ~doc:
            "Rewrite cadence: simulated control time for the scenario targets, wall-clock time \
             for $(b,soak). $(b,fig5) runs to completion and writes once.")
  in
  let run target out every iterations duration =
    let obs = Lla_obs.create () in
    let writes = ref 0 in
    let write_file registry =
      let tmp = out ^ ".tmp" in
      let oc = open_out tmp in
      output_string oc (Lla_obs.Metrics.expose registry);
      close_out oc;
      Sys.rename tmp out;
      incr writes
    in
    (match target with
    | "fig5" | "solver" ->
      run_scenario ~obs target ~iterations ~duration;
      write_file obs.Lla_obs.metrics
    | "distributed" | "chaos" ->
      let engine = Lla_sim.Engine.create () in
      let horizon = duration *. 1000. in
      let _workload, d =
        build_scenario_deployment ~obs ~chaos:(target = "chaos") engine ~horizon
      in
      Lla_runtime.Distributed.start d;
      let period = max 1e-3 (every *. 1000.) in
      let rec loop t =
        if t > horizon +. 1e-9 then ()
        else begin
          Lla_sim.Engine.run_until engine (Float.min t horizon);
          write_file obs.Lla_obs.metrics;
          loop (t +. period)
        end
      in
      loop period;
      Lla_runtime.Distributed.stop d;
      Lla_sim.Engine.run engine ();
      write_file obs.Lla_obs.metrics
    | "soak" ->
      let module Soak = Lla_soak.Soak in
      let monitor = Lla_obs.Monitor.create () in
      let last_wall = ref 0. in
      let on_progress ~tick:_ =
        let wall = Unix.gettimeofday () in
        if wall -. !last_wall >= every then begin
          last_wall := wall;
          write_file obs.Lla_obs.metrics
        end
      in
      (match Soak.run ~obs ~monitor ~on_progress Soak.smoke_config with
      | Error e -> or_exit (Error (`Msg e))
      | Ok report ->
        write_file obs.Lla_obs.metrics;
        print_endline (Soak.render report))
    | other ->
      or_exit
        (Error (`Msg (Printf.sprintf "unknown serve-metrics target %S (see --help)" other))));
    Printf.printf "wrote %s (%d atomic rewrites)\n" out !writes
  in
  Cmd.v
    (Cmd.info "serve-metrics"
       ~doc:
         "Run a scenario (or the smoke soak) and keep a Prometheus text exposition of its \
          metrics registry fresh on disk — every rewrite is atomic (tmp file + rename), at the \
          $(b,--every) cadence.")
    Term.(const run $ target $ out $ every $ iterations_arg $ duration_arg)

let default =
  Term.(
    ret
      (const (fun () -> `Help (`Pager, None)) $ const ()))

let () =
  let info =
    Cmd.info "lla" ~version:"1.0.0"
      ~doc:"Lagrangian Latency Assignment — reproduction of Lumezanu, Bhola & Astley (ICDCS 2008)."
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            table1_cmd;
            fig5_cmd;
            fig6_cmd;
            fig7_cmd;
            fig8_cmd;
            ablation_cmd;
            chaos_cmd;
            recovery_cmd;
            campaign_cmd;
            chaos_replay_cmd;
            adaptation_cmd;
            variation_cmd;
            delays_cmd;
            trace_cmd;
            analyze_cmd;
            profile_cmd;
            solve_cmd;
            export_cmd;
            probe_cmd;
            emulate_cmd;
            generate_cmd;
            solve_scale_cmd;
            soak_cmd;
            journal_cmd;
            top_cmd;
            serve_metrics_cmd;
          ]))
