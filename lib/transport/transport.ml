module Engine = Lla_sim.Engine
module Rng = Lla_stdx.Rng
module Window = Lla_stdx.Percentile.Window
module Metrics = Lla_obs.Metrics

type faults = {
  drop : float;
  duplicate : float;
  reorder : float;
  reorder_spread : float;
}

let no_faults = { drop = 0.; duplicate = 0.; reorder = 0.; reorder_spread = 0. }

type retry = { timeout : float; backoff : float; max_attempts : int; jitter : float }

type policy = {
  retry : retry option;
  last_write_wins : bool;
}

let fire_and_forget = { retry = None; last_write_wins = true }

type config = {
  delay : Delay_model.t;
  faults : faults;
  policy : policy;
  seed : int;
  delay_window : int;
  channel_metrics : bool;
}

let default_config =
  {
    delay = Delay_model.Constant 1.0;
    faults = no_faults;
    policy = fire_and_forget;
    seed = 0;
    delay_window = 1024;
    channel_metrics = true;
  }

type endpoint = {
  eid : int;
  name : string;
  mutable up : bool;
  mutable crashes : int;
  mutable restart_hooks : (unit -> unit) list;  (* reversed registration order *)
}

type counters = {
  sent : int;
  delivered : int;
  dropped : int;
  cut : int;
  lost_down : int;
  duplicated : int;
  retried : int;
  stale : int;
}

let zero_counters =
  { sent = 0; delivered = 0; dropped = 0; cut = 0; lost_down = 0; duplicated = 0; retried = 0; stale = 0 }

(* Per-channel counter block + delay window. With [config.channel_metrics]
   (the default) every channel gets its own, labelled [src]/[dst] (the
   [_id] labels keep channels distinct even when endpoint names collide);
   with it off, all channels of the transport share one aggregate block —
   a memory valve for 10^5-channel scale scenarios, where per-channel
   registry records would dominate the heap. *)
type chan_metrics = {
  c_sent : Metrics.counter;
  c_delivered : Metrics.counter;
  c_dropped : Metrics.counter;
  c_cut : Metrics.counter;
  c_lost_down : Metrics.counter;
  c_duplicated : Metrics.counter;
  c_retried : Metrics.counter;
  c_stale : Metrics.counter;
  window : Window.t;
}

(* A directed (src, dst) link, created lazily on first send. Counters live
   in the metrics registry (shared with [obs] when supplied). *)
type channel = {
  src : endpoint;
  dst : endpoint;
  mutable link_delay : Delay_model.t option;  (* overrides the transport default *)
  mutable next_seq : int;
  applied : (int, int) Hashtbl.t;  (* message key -> newest applied seq *)
  cm : chan_metrics;
}

type partition_spec = {
  p_start : float;
  p_heal : float;
  side_a : int list;  (* endpoint ids *)
  side_b : int list;
}

type t = {
  engine : Engine.t;
  config : config;
  rng : Rng.t;
  obs : Lla_obs.t option;
  obs_io : Lla_obs.t option;  (* = obs when it opts into happy-path message records *)
  registry : Metrics.t;
  delay_h : Metrics.histogram;
  mutable n_endpoints : int;
  mutable endpoint_list : endpoint list;  (* reversed registration order *)
  channels : (int * int, channel) Hashtbl.t;
  mutable partitions : partition_spec list;
  all_window : Window.t;
  (* Live fault state, initialized from [config] and mutable so chaos
     schedules can open and close fault windows mid-run. The zero values
     draw nothing from the RNG, preserving the bit-for-bit zero-fault
     guarantee for transports that never touch them. *)
  mutable faults : faults;
  mutable extra_jitter : float;
  mutable shared_cm : chan_metrics option;  (* lazy, only when channel_metrics = false *)
}

let create ?obs ?(config = default_config) engine =
  (match config.policy.retry with
  | Some r when not (Float.is_finite r.jitter && r.jitter >= 0. && r.jitter < 1.) ->
    invalid_arg "Transport.create: retry jitter outside [0, 1)"
  | _ -> ());
  let registry =
    match obs with Some o -> o.Lla_obs.metrics | None -> Metrics.create ()
  in
  {
    engine;
    config;
    rng = Rng.create ~seed:config.seed;
    obs;
    obs_io = (match obs with Some o when o.Lla_obs.trace_io -> obs | _ -> None);
    registry;
    delay_h =
      Metrics.histogram registry "lla_transport_delay_ms"
        ~help:"End-to-end delay of delivered messages (all channels).";
    n_endpoints = 0;
    endpoint_list = [];
    channels = Hashtbl.create 64;
    partitions = [];
    all_window = Window.create ~capacity:config.delay_window;
    faults = config.faults;
    extra_jitter = 0.;
    shared_cm = None;
  }

let config t = t.config

let engine t = t.engine

let metrics t = t.registry

let set_faults t faults = t.faults <- faults

let active_faults t = t.faults

let set_extra_jitter t spread =
  if spread < 0. then invalid_arg "Transport.set_extra_jitter: negative spread";
  t.extra_jitter <- spread

let extra_jitter t = t.extra_jitter

(* Trace emission is a single match on the cold [None] path; it never
   schedules events or draws randomness. Failures go through [emit]
   (always traced); the per-message happy path goes through [emit_io]
   (traced only under [Lla_obs.create ~trace_io:true]). *)
let emit t event =
  match t.obs with None -> () | Some o -> Lla_obs.emit o ~at:(Engine.now t.engine) event

let emit_io t event =
  match t.obs_io with None -> () | Some o -> Lla_obs.emit o ~at:(Engine.now t.engine) event

let endpoint t ~name =
  let e = { eid = t.n_endpoints; name; up = true; crashes = 0; restart_hooks = [] } in
  t.n_endpoints <- t.n_endpoints + 1;
  t.endpoint_list <- e :: t.endpoint_list;
  e

let endpoint_name e = e.name

let endpoints t = List.rev t.endpoint_list

let make_cm t ~labels =
  let c name help = Metrics.counter t.registry name ~help ~labels in
  {
    c_sent = c "lla_transport_sent_total" "send calls on this channel.";
    c_delivered = c "lla_transport_delivered_total" "Payloads applied at the destination.";
    c_dropped = c "lla_transport_dropped_total" "Attempts lost to the drop probability.";
    c_cut = c "lla_transport_cut_total" "Attempts lost to a partition.";
    c_lost_down = c "lla_transport_lost_down_total" "Attempts lost to a down endpoint.";
    c_duplicated = c "lla_transport_duplicated_total" "Extra copies injected.";
    c_retried = c "lla_transport_retried_total" "Retransmission attempts scheduled.";
    c_stale = c "lla_transport_stale_total" "Deliveries discarded by last-write-wins.";
    window = Window.create ~capacity:t.config.delay_window;
  }

let channel_cm t src dst =
  if t.config.channel_metrics then
    make_cm t
      ~labels:
        [
          ("src", src.name);
          ("src_id", string_of_int src.eid);
          ("dst", dst.name);
          ("dst_id", string_of_int dst.eid);
        ]
  else
    match t.shared_cm with
    | Some cm -> cm
    | None ->
      let cm = make_cm t ~labels:[ ("src", "*"); ("dst", "*") ] in
      t.shared_cm <- Some cm;
      cm

let channel t src dst =
  let key = (src.eid, dst.eid) in
  match Hashtbl.find_opt t.channels key with
  | Some ch -> ch
  | None ->
    let ch =
      {
        src;
        dst;
        link_delay = None;
        next_seq = 0;
        applied = Hashtbl.create 8;
        cm = channel_cm t src dst;
      }
    in
    Hashtbl.add t.channels key ch;
    ch

let set_link_delay t ~src ~dst model = (channel t src dst).link_delay <- Some model

(* --- lifecycle ------------------------------------------------------- *)

let is_up _t e = e.up

let crash _t e =
  if e.up then begin
    e.up <- false;
    e.crashes <- e.crashes + 1
  end

let restart _t e =
  if not e.up then begin
    e.up <- true;
    List.iter (fun hook -> hook ()) (List.rev e.restart_hooks)
  end

let on_restart _t e hook = e.restart_hooks <- hook :: e.restart_hooks

let schedule_outage t e ~at ~duration =
  if duration < 0. then invalid_arg "Transport.schedule_outage: negative duration";
  ignore (Engine.schedule t.engine ~at (fun _ -> crash t e));
  ignore (Engine.schedule t.engine ~at:(at +. duration) (fun _ -> restart t e))

let outages _t e = e.crashes

(* --- partitions ------------------------------------------------------ *)

let partition t ~at ~duration ~group_a ~group_b =
  if duration < 0. then invalid_arg "Transport.partition: negative duration";
  let spec =
    {
      p_start = at;
      p_heal = at +. duration;
      side_a = List.map (fun e -> e.eid) group_a;
      side_b = List.map (fun e -> e.eid) group_b;
    }
  in
  t.partitions <- spec :: t.partitions

let partitioned t ~src ~dst =
  let now = Engine.now t.engine in
  List.exists
    (fun p ->
      now >= p.p_start && now < p.p_heal
      && ((List.mem src.eid p.side_a && List.mem dst.eid p.side_b)
         || (List.mem src.eid p.side_b && List.mem dst.eid p.side_a)))
    t.partitions

(* --- sending --------------------------------------------------------- *)

(* Draw a Bernoulli trial only when the probability can succeed, so the
   zero-fault configuration consumes no randomness. *)
let hit t p = p > 0. && (p >= 1. || Rng.float t.rng < p)

let dropped_event ch reason =
  Lla_obs.Trace.Transport_dropped { src = ch.src.name; dst = ch.dst.name; reason }

(* On an applied delivery carrying a span context, record one "msg" span
   under the sender's span and hand the payload a forwarded context
   (fresh id, origin preserved) so the receiver can parent its own work
   span on the delivery. Allocation and emission happen only when the
   handle traces spans, from the deterministic per-handle counter — no
   randomness, no scheduling. *)
let delivery_span t ch span =
  match (span, t.obs) with
  | Some ctx, Some o when o.Lla_obs.spans ->
    let id = Lla_obs.alloc_span o in
    Lla_obs.emit o ~at:(Engine.now t.engine)
      (Lla_obs.Trace.Span
         {
           span = id;
           parent = ctx.Lla_obs.Span.span_id;
           trace = ctx.Lla_obs.Span.trace_id;
           kind = "msg";
           actor = ch.dst.name;
         });
    Some (Lla_obs.Span.forward ctx ~id)
  | _ -> None

let deliver t ch ?key ~seq ~span ~delay payload ~on_lost =
  if not ch.dst.up then on_lost `Down
  else begin
    let stale =
      match key with
      | Some k when t.config.policy.last_write_wins -> (
        match Hashtbl.find_opt ch.applied k with
        | Some newest when newest >= seq -> true
        | _ ->
          Hashtbl.replace ch.applied k seq;
          false)
      | _ -> false
    in
    if stale then begin
      Metrics.incr ch.cm.c_stale;
      emit t (dropped_event ch "stale")
    end
    else begin
      Metrics.incr ch.cm.c_delivered;
      Window.add ch.cm.window delay;
      Window.add t.all_window delay;
      Metrics.observe t.delay_h delay;
      emit_io t
        (Lla_obs.Trace.Transport_delivered { src = ch.src.name; dst = ch.dst.name; delay });
      payload (delivery_span t ch span)
    end
  end

let rec attempt t ch ?key ~seq ~span ~n payload =
  let lost reason =
    (match reason with
    | `Drop ->
      Metrics.incr ch.cm.c_dropped;
      emit t (dropped_event ch "drop")
    | `Cut ->
      Metrics.incr ch.cm.c_cut;
      emit t (dropped_event ch "cut")
    | `Down ->
      Metrics.incr ch.cm.c_lost_down;
      emit t (dropped_event ch "down"));
    match t.config.policy.retry with
    | Some r when n + 1 < r.max_attempts && ch.src.up ->
      Metrics.incr ch.cm.c_retried;
      let wait = r.timeout *. (r.backoff ** float_of_int n) in
      (* jitter de-phases synchronized retransmit bursts; at the default
         0 no randomness is drawn and retries stay bit-for-bit *)
      let wait =
        if r.jitter > 0. then
          wait *. (1. +. Rng.uniform t.rng ~lo:(-.r.jitter) ~hi:r.jitter)
        else wait
      in
      ignore
        (Engine.schedule_after t.engine ~delay:wait (fun _ ->
             attempt t ch ?key ~seq ~span ~n:(n + 1) payload))
    | _ -> ()
  in
  if not ch.src.up then begin
    Metrics.incr ch.cm.c_lost_down;
    emit t (dropped_event ch "down")
  end
  else if partitioned t ~src:ch.src ~dst:ch.dst then lost `Cut
  else if hit t t.faults.drop then lost `Drop
  else begin
    let model = Option.value ch.link_delay ~default:t.config.delay in
    let schedule_copy () =
      let delay = Delay_model.sample model t.rng in
      let delay =
        if hit t t.faults.reorder && t.faults.reorder_spread > 0. then
          delay +. Rng.uniform t.rng ~lo:0. ~hi:t.faults.reorder_spread
        else delay
      in
      let delay =
        if t.extra_jitter > 0. then delay +. Rng.uniform t.rng ~lo:0. ~hi:t.extra_jitter
        else delay
      in
      ignore
        (Engine.schedule_after t.engine ~delay (fun _ ->
             deliver t ch ?key ~seq ~span ~delay payload ~on_lost:lost))
    in
    schedule_copy ();
    if hit t t.faults.duplicate then begin
      Metrics.incr ch.cm.c_duplicated;
      schedule_copy ()
    end
  end

let send_traced ?key ?span t ~src ~dst payload =
  let ch = channel t src dst in
  Metrics.incr ch.cm.c_sent;
  emit_io t (Lla_obs.Trace.Transport_send { src = src.name; dst = dst.name });
  let seq = ch.next_seq in
  ch.next_seq <- seq + 1;
  attempt t ch ?key ~seq ~span ~n:0 payload

let send ?key t ~src ~dst payload = send_traced ?key t ~src ~dst (fun _ -> payload ())

(* --- inspection ------------------------------------------------------ *)

let counters_of_cm (cm : chan_metrics) =
  {
    sent = Metrics.value cm.c_sent;
    delivered = Metrics.value cm.c_delivered;
    dropped = Metrics.value cm.c_dropped;
    cut = Metrics.value cm.c_cut;
    lost_down = Metrics.value cm.c_lost_down;
    duplicated = Metrics.value cm.c_duplicated;
    retried = Metrics.value cm.c_retried;
    stale = Metrics.value cm.c_stale;
  }

let counters_of ch =
  {
    sent = Metrics.value ch.cm.c_sent;
    delivered = Metrics.value ch.cm.c_delivered;
    dropped = Metrics.value ch.cm.c_dropped;
    cut = Metrics.value ch.cm.c_cut;
    lost_down = Metrics.value ch.cm.c_lost_down;
    duplicated = Metrics.value ch.cm.c_duplicated;
    retried = Metrics.value ch.cm.c_retried;
    stale = Metrics.value ch.cm.c_stale;
  }

let add_counters a b =
  {
    sent = a.sent + b.sent;
    delivered = a.delivered + b.delivered;
    dropped = a.dropped + b.dropped;
    cut = a.cut + b.cut;
    lost_down = a.lost_down + b.lost_down;
    duplicated = a.duplicated + b.duplicated;
    retried = a.retried + b.retried;
    stale = a.stale + b.stale;
  }

let totals t =
  if t.config.channel_metrics then
    Hashtbl.fold (fun _ ch acc -> add_counters acc (counters_of ch)) t.channels zero_counters
  else
    (* All channels share one block; folding it per channel would
       multiply every count by the channel population. *)
    match t.shared_cm with Some cm -> counters_of_cm cm | None -> zero_counters

let channel_counters t ~src ~dst =
  match Hashtbl.find_opt t.channels (src.eid, dst.eid) with
  | Some ch -> counters_of ch
  | None -> zero_counters

let channels t =
  Hashtbl.fold (fun _ ch acc -> (ch.src, ch.dst, counters_of ch) :: acc) t.channels []
  |> List.sort (fun (a, b, _) (c, d, _) ->
         match Int.compare a.eid c.eid with 0 -> Int.compare b.eid d.eid | cmp -> cmp)

let delay_percentile t ~p = Window.percentile t.all_window ~p

let channel_delay_percentile t ~src ~dst ~p =
  match Hashtbl.find_opt t.channels (src.eid, dst.eid) with
  | Some ch -> Window.percentile ch.cm.window ~p
  | None -> None

let pp_counters fmt c =
  Format.fprintf fmt
    "sent %d, delivered %d, dropped %d, cut %d, lost-down %d, duplicated %d, retried %d, stale %d"
    c.sent c.delivered c.dropped c.cut c.lost_down c.duplicated c.retried c.stale
