module Engine = Lla_sim.Engine
module Rng = Lla_stdx.Rng
module Window = Lla_stdx.Percentile.Window

type faults = {
  drop : float;
  duplicate : float;
  reorder : float;
  reorder_spread : float;
}

let no_faults = { drop = 0.; duplicate = 0.; reorder = 0.; reorder_spread = 0. }

type retry = { timeout : float; backoff : float; max_attempts : int }

type policy = {
  retry : retry option;
  last_write_wins : bool;
}

let fire_and_forget = { retry = None; last_write_wins = true }

type config = {
  delay : Delay_model.t;
  faults : faults;
  policy : policy;
  seed : int;
  delay_window : int;
}

let default_config =
  {
    delay = Delay_model.Constant 1.0;
    faults = no_faults;
    policy = fire_and_forget;
    seed = 0;
    delay_window = 1024;
  }

type endpoint = {
  eid : int;
  name : string;
  mutable up : bool;
  mutable crashes : int;
  mutable restart_hooks : (unit -> unit) list;  (* reversed registration order *)
}

type counters = {
  sent : int;
  delivered : int;
  dropped : int;
  cut : int;
  lost_down : int;
  duplicated : int;
  retried : int;
  stale : int;
}

let zero_counters =
  { sent = 0; delivered = 0; dropped = 0; cut = 0; lost_down = 0; duplicated = 0; retried = 0; stale = 0 }

(* A directed (src, dst) link, created lazily on first send. *)
type channel = {
  src : endpoint;
  dst : endpoint;
  mutable link_delay : Delay_model.t option;  (* overrides the transport default *)
  mutable next_seq : int;
  applied : (int, int) Hashtbl.t;  (* message key -> newest applied seq *)
  mutable c_sent : int;
  mutable c_delivered : int;
  mutable c_dropped : int;
  mutable c_cut : int;
  mutable c_lost_down : int;
  mutable c_duplicated : int;
  mutable c_retried : int;
  mutable c_stale : int;
  window : Window.t;
}

type partition_spec = {
  p_start : float;
  p_heal : float;
  side_a : int list;  (* endpoint ids *)
  side_b : int list;
}

type t = {
  engine : Engine.t;
  config : config;
  rng : Rng.t;
  mutable n_endpoints : int;
  mutable endpoint_list : endpoint list;  (* reversed registration order *)
  channels : (int * int, channel) Hashtbl.t;
  mutable partitions : partition_spec list;
  all_window : Window.t;
}

let create ?(config = default_config) engine =
  {
    engine;
    config;
    rng = Rng.create ~seed:config.seed;
    n_endpoints = 0;
    endpoint_list = [];
    channels = Hashtbl.create 64;
    partitions = [];
    all_window = Window.create ~capacity:config.delay_window;
  }

let config t = t.config

let engine t = t.engine

let endpoint t ~name =
  let e = { eid = t.n_endpoints; name; up = true; crashes = 0; restart_hooks = [] } in
  t.n_endpoints <- t.n_endpoints + 1;
  t.endpoint_list <- e :: t.endpoint_list;
  e

let endpoint_name e = e.name

let endpoints t = List.rev t.endpoint_list

let channel t src dst =
  let key = (src.eid, dst.eid) in
  match Hashtbl.find_opt t.channels key with
  | Some ch -> ch
  | None ->
    let ch =
      {
        src;
        dst;
        link_delay = None;
        next_seq = 0;
        applied = Hashtbl.create 8;
        c_sent = 0;
        c_delivered = 0;
        c_dropped = 0;
        c_cut = 0;
        c_lost_down = 0;
        c_duplicated = 0;
        c_retried = 0;
        c_stale = 0;
        window = Window.create ~capacity:t.config.delay_window;
      }
    in
    Hashtbl.add t.channels key ch;
    ch

let set_link_delay t ~src ~dst model = (channel t src dst).link_delay <- Some model

(* --- lifecycle ------------------------------------------------------- *)

let is_up _t e = e.up

let crash _t e =
  if e.up then begin
    e.up <- false;
    e.crashes <- e.crashes + 1
  end

let restart _t e =
  if not e.up then begin
    e.up <- true;
    List.iter (fun hook -> hook ()) (List.rev e.restart_hooks)
  end

let on_restart _t e hook = e.restart_hooks <- hook :: e.restart_hooks

let schedule_outage t e ~at ~duration =
  if duration < 0. then invalid_arg "Transport.schedule_outage: negative duration";
  ignore (Engine.schedule t.engine ~at (fun _ -> crash t e));
  ignore (Engine.schedule t.engine ~at:(at +. duration) (fun _ -> restart t e))

let outages _t e = e.crashes

(* --- partitions ------------------------------------------------------ *)

let partition t ~at ~duration ~group_a ~group_b =
  if duration < 0. then invalid_arg "Transport.partition: negative duration";
  let spec =
    {
      p_start = at;
      p_heal = at +. duration;
      side_a = List.map (fun e -> e.eid) group_a;
      side_b = List.map (fun e -> e.eid) group_b;
    }
  in
  t.partitions <- spec :: t.partitions

let partitioned t ~src ~dst =
  let now = Engine.now t.engine in
  List.exists
    (fun p ->
      now >= p.p_start && now < p.p_heal
      && ((List.mem src.eid p.side_a && List.mem dst.eid p.side_b)
         || (List.mem src.eid p.side_b && List.mem dst.eid p.side_a)))
    t.partitions

(* --- sending --------------------------------------------------------- *)

(* Draw a Bernoulli trial only when the probability can succeed, so the
   zero-fault configuration consumes no randomness. *)
let hit t p = p > 0. && (p >= 1. || Rng.float t.rng < p)

let deliver t ch ?key ~seq ~delay payload ~on_lost =
  if not ch.dst.up then on_lost `Down
  else begin
    let stale =
      match key with
      | Some k when t.config.policy.last_write_wins -> (
        match Hashtbl.find_opt ch.applied k with
        | Some newest when newest >= seq -> true
        | _ ->
          Hashtbl.replace ch.applied k seq;
          false)
      | _ -> false
    in
    if stale then ch.c_stale <- ch.c_stale + 1
    else begin
      ch.c_delivered <- ch.c_delivered + 1;
      Window.add ch.window delay;
      Window.add t.all_window delay;
      payload ()
    end
  end

let rec attempt t ch ?key ~seq ~n payload =
  let lost reason =
    (match reason with
    | `Drop -> ch.c_dropped <- ch.c_dropped + 1
    | `Cut -> ch.c_cut <- ch.c_cut + 1
    | `Down -> ch.c_lost_down <- ch.c_lost_down + 1);
    match t.config.policy.retry with
    | Some r when n + 1 < r.max_attempts && ch.src.up ->
      ch.c_retried <- ch.c_retried + 1;
      let wait = r.timeout *. (r.backoff ** float_of_int n) in
      ignore (Engine.schedule_after t.engine ~delay:wait (fun _ -> attempt t ch ?key ~seq ~n:(n + 1) payload))
    | _ -> ()
  in
  if not ch.src.up then ch.c_lost_down <- ch.c_lost_down + 1
  else if partitioned t ~src:ch.src ~dst:ch.dst then lost `Cut
  else if hit t t.config.faults.drop then lost `Drop
  else begin
    let model = Option.value ch.link_delay ~default:t.config.delay in
    let schedule_copy () =
      let delay = Delay_model.sample model t.rng in
      let delay =
        if hit t t.config.faults.reorder && t.config.faults.reorder_spread > 0. then
          delay +. Rng.uniform t.rng ~lo:0. ~hi:t.config.faults.reorder_spread
        else delay
      in
      ignore
        (Engine.schedule_after t.engine ~delay (fun _ ->
             deliver t ch ?key ~seq ~delay payload ~on_lost:lost))
    in
    schedule_copy ();
    if hit t t.config.faults.duplicate then begin
      ch.c_duplicated <- ch.c_duplicated + 1;
      schedule_copy ()
    end
  end

let send ?key t ~src ~dst payload =
  let ch = channel t src dst in
  ch.c_sent <- ch.c_sent + 1;
  let seq = ch.next_seq in
  ch.next_seq <- seq + 1;
  attempt t ch ?key ~seq ~n:0 payload

(* --- inspection ------------------------------------------------------ *)

let counters_of ch =
  {
    sent = ch.c_sent;
    delivered = ch.c_delivered;
    dropped = ch.c_dropped;
    cut = ch.c_cut;
    lost_down = ch.c_lost_down;
    duplicated = ch.c_duplicated;
    retried = ch.c_retried;
    stale = ch.c_stale;
  }

let add_counters a b =
  {
    sent = a.sent + b.sent;
    delivered = a.delivered + b.delivered;
    dropped = a.dropped + b.dropped;
    cut = a.cut + b.cut;
    lost_down = a.lost_down + b.lost_down;
    duplicated = a.duplicated + b.duplicated;
    retried = a.retried + b.retried;
    stale = a.stale + b.stale;
  }

let totals t = Hashtbl.fold (fun _ ch acc -> add_counters acc (counters_of ch)) t.channels zero_counters

let channel_counters t ~src ~dst =
  match Hashtbl.find_opt t.channels (src.eid, dst.eid) with
  | Some ch -> counters_of ch
  | None -> zero_counters

let channels t =
  Hashtbl.fold (fun _ ch acc -> (ch.src, ch.dst, counters_of ch) :: acc) t.channels []
  |> List.sort (fun (a, b, _) (c, d, _) ->
         match Int.compare a.eid c.eid with 0 -> Int.compare b.eid d.eid | cmp -> cmp)

let delay_percentile t ~p = Window.percentile t.all_window ~p

let channel_delay_percentile t ~src ~dst ~p =
  match Hashtbl.find_opt t.channels (src.eid, dst.eid) with
  | Some ch -> Window.percentile ch.window ~p
  | None -> None

let pp_counters fmt c =
  Format.fprintf fmt
    "sent %d, delivered %d, dropped %d, cut %d, lost-down %d, duplicated %d, retried %d, stale %d"
    c.sent c.delivered c.dropped c.cut c.lost_down c.duplicated c.retried c.stale
