(** One-way message delay distributions for {!Transport} channels.

    A model is sampled once per delivery attempt from the transport's
    seeded {!Lla_stdx.Rng}, so runs are reproducible. [Constant] draws
    nothing from the generator, which keeps the zero-fault constant-delay
    transport bit-for-bit identical to a bare
    [Engine.schedule_after ~delay]. *)

type t =
  | Constant of float  (** every message takes exactly this long (ms). *)
  | Uniform of { lo : float; hi : float }  (** uniform in [\[lo, hi)]. *)
  | Jittered of { base : float; jitter : float }
      (** uniform in [\[base·(1 − jitter), base·(1 + jitter))], clamped to
          non-negative delays; [jitter] is a fraction (0.5 = ±50%). *)
  | Exponential of { base : float; mean_extra : float }
      (** [base] plus an exponentially distributed tail with the given
          mean — a heavy(ish)-tailed network. *)

val constant : float -> t
(** @raise Invalid_argument on a negative delay. *)

val uniform : lo:float -> hi:float -> t
(** @raise Invalid_argument unless [0 <= lo <= hi]. *)

val jittered : base:float -> jitter:float -> t
(** @raise Invalid_argument on a negative [base] or [jitter]. *)

val exponential : base:float -> mean_extra:float -> t
(** @raise Invalid_argument on negative parameters. *)

val mean : t -> float
(** Expected delay of the model. *)

val is_random : t -> bool
(** [false] only for [Constant]: sampling draws nothing from the RNG. *)

val sample : t -> Lla_stdx.Rng.t -> float
(** Draw a delay; always non-negative. *)

val to_string : t -> string
