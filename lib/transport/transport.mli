(** Fault-injecting message transport over the discrete-event engine.

    The distributed LLA deployment (and any other actor system built on
    {!Lla_sim.Engine}) sends its control messages through a [Transport.t]
    instead of scheduling deliveries directly. The transport owns:

    - {b delay models}: a default {!Delay_model.t} plus per-link
      overrides, sampled from a seeded {!Lla_stdx.Rng} so runs are
      deterministic and reproducible;
    - {b fault injection}: probabilistic message drop, duplication and
      reordering (extra random delay on a fraction of messages), plus
      scheduled link {!partition}s with heal times;
    - {b endpoint lifecycle}: endpoints can {!crash} and {!restart} (or be
      given an outage schedule); messages to or from a down endpoint are
      lost, and restart hooks let actors rebuild their state from the next
      received messages;
    - {b delivery policies}: optional retry-with-timeout/backoff on lost
      attempts, and last-write-wins sequence numbering per message key so
      stale reordered updates are discarded instead of applied;
    - {b per-channel counters} (sent / delivered / dropped / cut /
      lost-to-down-endpoints / duplicated / retried / stale) backed by an
      {!Lla_obs.Metrics} registry (labelled [src]/[dst], disambiguated by
      endpoint id), a [lla_transport_delay_ms] histogram, and delay
      percentile windows via {!Lla_stdx.Percentile.Window}. When the
      transport is created with [?obs] it shares that handle's registry
      and additionally emits {!Lla_obs.Trace.Transport_dropped} records
      (always) plus per-message [Transport_send] / [Transport_delivered]
      records (only when the handle was created with [~trace_io:true] —
      they dominate trace volume on a healthy deployment), all stamped
      with the engine clock.

    With the default zero-fault configuration and a [Constant] delay the
    transport schedules exactly one engine event per [send], drawing
    nothing from the RNG — a trajectory routed through it is bit-for-bit
    identical to one using bare [Engine.schedule_after]. *)

(** {1 Configuration} *)

type faults = {
  drop : float;  (** probability a delivery attempt is lost. *)
  duplicate : float;  (** probability a message is delivered twice. *)
  reorder : float;
      (** probability a message is held back by an extra random delay,
          letting later messages overtake it. *)
  reorder_spread : float;  (** maximum extra delay (ms) for held-back messages. *)
}

val no_faults : faults

type retry = {
  timeout : float;  (** ms before the first retransmission. *)
  backoff : float;  (** multiplier on the timeout per attempt (>= 1). *)
  max_attempts : int;  (** total attempts, including the first. *)
  jitter : float;
      (** relative jitter on each retransmit wait:
          [wait = timeout * backoff^n * (1 ± jitter)], uniform in the
          band, drawn from the transport RNG. De-phases synchronized
          retransmit bursts after a shared loss (a partition heal, a
          congested window) so retries can't phase-lock. Must lie in
          [\[0, 1)] (checked at {!create}); at the default [0] no
          randomness is drawn and retry schedules are bit-for-bit the
          pre-jitter ones. *)
}

type policy = {
  retry : retry option;  (** [None] = fire and forget. *)
  last_write_wins : bool;
      (** when [true], a delivery whose per-key sequence number is not
          newer than the last applied one is discarded as stale. Only
          messages sent with [~key] participate. *)
}

val fire_and_forget : policy
(** No retries, last-write-wins on. *)

type config = {
  delay : Delay_model.t;
  faults : faults;
  policy : policy;
  seed : int;  (** seeds the transport's private RNG. *)
  delay_window : int;  (** samples kept per delay histogram. *)
  channel_metrics : bool;
      (** [true] (default): every channel owns labelled counters and a
          delay window. [false]: all channels share one aggregate
          counter block (labelled [src="*"], [dst="*"]) — a memory
          valve for scale scenarios with 10^5+ channels, where
          per-channel registry records would dominate the heap.
          Message routing, randomness and scheduling are identical;
          only attribution granularity changes ({!totals} stays exact,
          {!channel_counters} / {!channels} report the shared
          aggregate for every channel). *)
}

val default_config : config
(** Constant 1 ms delay, no faults, {!fire_and_forget}, seed 0,
    1024-sample histograms, per-channel metrics on. *)

(** {1 Transport and endpoints} *)

type t

type endpoint

val create : ?obs:Lla_obs.t -> ?config:config -> Lla_sim.Engine.t -> t
(** [obs] opts the transport into the observability layer: counters land
    in the handle's shared registry and every send / drop / delivery
    emits a trace record at the current engine time. Omitting it keeps a
    private registry and emits nothing — message fates and schedules are
    identical either way. *)

val config : t -> config

val engine : t -> Lla_sim.Engine.t

val metrics : t -> Lla_obs.Metrics.t
(** The registry holding the [lla_transport_*] metric families — the
    [obs] one when supplied, otherwise the transport's private one. *)

val endpoint : t -> name:string -> endpoint
(** Register a named endpoint (initially up). Names are for inspection
    only and need not be unique. *)

val endpoint_name : endpoint -> string

val endpoints : t -> endpoint list
(** In registration order. *)

val set_link_delay : t -> src:endpoint -> dst:endpoint -> Delay_model.t -> unit
(** Override the delay model of the directed [src -> dst] link
    (heterogeneous links). *)

(** {1 Scheduled fault windows}

    The probabilistic fault knobs are {e live}: a chaos schedule (see
    {!Lla_chaos.Schedule}) opens a fault window by calling {!set_faults}
    from an engine event at the window's start and closes it by restoring
    the previous value at its end. A transport that never calls these
    behaves exactly as configured at {!create}. *)

val set_faults : t -> faults -> unit
(** Replace the active fault configuration for every message sent from
    now on; in-flight deliveries are unaffected. The transport starts
    with [config.faults]. *)

val active_faults : t -> faults

val set_extra_jitter : t -> float -> unit
(** Add a uniform extra delay in [\[0, spread)] ms to every delivery
    scheduled from now on (on top of the delay model and any reorder
    hold-back). [0.] — the initial value — draws nothing from the RNG,
    preserving the zero-fault determinism guarantee.
    @raise Invalid_argument on a negative spread. *)

val extra_jitter : t -> float

(** {1 Sending} *)

val send : ?key:int -> t -> src:endpoint -> dst:endpoint -> (unit -> unit) -> unit
(** Route a message: the callback runs at delivery time unless the message
    is dropped, cut by a partition, addressed to (or sent by) a down
    endpoint, or discarded as stale. [key] identifies the logical variable
    the message updates (e.g. a price's resource index) for last-write-wins
    filtering; omit it to bypass staleness checks. *)

val send_traced :
  ?key:int ->
  ?span:Lla_obs.Span.t ->
  t ->
  src:endpoint ->
  dst:endpoint ->
  (Lla_obs.Span.t option -> unit) ->
  unit
(** {!send} with causal-span propagation. When [span] is given, the
    transport has an [obs] handle and that handle traces spans, every
    {e applied} delivery (not drops, not stale discards) records one
    ["msg"] {!Lla_obs.Trace.Span} under the sender's span and passes the
    callback the forwarded context ([Lla_obs.Span.forward]: fresh id,
    origin timestamp preserved) to parent the receiver's work on;
    otherwise the callback gets [None]. Retransmissions and injected
    duplicates reuse the sender's context, so each surviving copy links
    to the same parent. Identical routing, randomness and scheduling to
    {!send} — span bookkeeping is pure emission. *)

(** {1 Endpoint lifecycle} *)

val is_up : t -> endpoint -> bool

val crash : t -> endpoint -> unit
(** Take the endpoint down: it neither sends nor receives. Idempotent. *)

val restart : t -> endpoint -> unit
(** Bring the endpoint back up and run its restart hooks (registration
    order). The transport replays nothing: actors are expected to rebuild
    state from the next received messages. Idempotent. *)

val on_restart : t -> endpoint -> (unit -> unit) -> unit

val schedule_outage : t -> endpoint -> at:float -> duration:float -> unit
(** Crash at absolute engine time [at], restart at [at +. duration]. *)

val outages : t -> endpoint -> int
(** Number of crashes so far. *)

(** {1 Partitions} *)

val partition : t -> at:float -> duration:float -> group_a:endpoint list -> group_b:endpoint list -> unit
(** Cut every link between the two groups (both directions) during
    [\[at, at +. duration)]; the partition heals automatically at the end
    of the interval. Messages crossing a cut link are counted as [cut]
    (and retried, when a retry policy is set — retries that land after the
    heal succeed). *)

val partitioned : t -> src:endpoint -> dst:endpoint -> bool
(** Is the [src -> dst] link currently cut? *)

(** {1 Inspection} *)

type counters = {
  sent : int;  (** [send] calls. *)
  delivered : int;  (** payloads applied. *)
  dropped : int;  (** attempts lost to the drop probability. *)
  cut : int;  (** attempts lost to a partition. *)
  lost_down : int;  (** attempts lost to a down endpoint. *)
  duplicated : int;  (** extra copies injected. *)
  retried : int;  (** retransmission attempts scheduled. *)
  stale : int;  (** deliveries discarded by last-write-wins. *)
}

val zero_counters : counters

val totals : t -> counters
(** Sum over all channels. *)

val channel_counters : t -> src:endpoint -> dst:endpoint -> counters
(** {!zero_counters} when the channel has never carried a message. *)

val channels : t -> (endpoint * endpoint * counters) list
(** Every channel that has carried at least one message, in a
    deterministic order. *)

val delay_percentile : t -> p:float -> float option
(** Percentile of recently delivered messages' delays (all channels);
    [None] before the first delivery. *)

val channel_delay_percentile : t -> src:endpoint -> dst:endpoint -> p:float -> float option

val pp_counters : Format.formatter -> counters -> unit
