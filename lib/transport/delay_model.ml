type t =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Jittered of { base : float; jitter : float }
  | Exponential of { base : float; mean_extra : float }

let constant d =
  if d < 0. then invalid_arg "Delay_model.constant: negative delay";
  Constant d

let uniform ~lo ~hi =
  if lo < 0. || hi < lo then invalid_arg "Delay_model.uniform: requires 0 <= lo <= hi";
  Uniform { lo; hi }

let jittered ~base ~jitter =
  if base < 0. || jitter < 0. then invalid_arg "Delay_model.jittered: negative parameter";
  Jittered { base; jitter }

let exponential ~base ~mean_extra =
  if base < 0. || mean_extra < 0. then invalid_arg "Delay_model.exponential: negative parameter";
  Exponential { base; mean_extra }

let jitter_bounds ~base ~jitter =
  (Float.max 0. (base *. (1. -. jitter)), base *. (1. +. jitter))

let mean = function
  | Constant d -> d
  | Uniform { lo; hi } -> (lo +. hi) /. 2.
  | Jittered { base; jitter } ->
    let lo, hi = jitter_bounds ~base ~jitter in
    (lo +. hi) /. 2.
  | Exponential { base; mean_extra } -> base +. mean_extra

let is_random = function Constant _ -> false | Uniform _ | Jittered _ | Exponential _ -> true

let sample t rng =
  match t with
  | Constant d -> d
  | Uniform { lo; hi } -> if hi > lo then Lla_stdx.Rng.uniform rng ~lo ~hi else lo
  | Jittered { base; jitter } ->
    let lo, hi = jitter_bounds ~base ~jitter in
    if hi > lo then Lla_stdx.Rng.uniform rng ~lo ~hi else lo
  | Exponential { base; mean_extra } ->
    if mean_extra <= 0. then base
    else base +. Lla_stdx.Rng.exponential rng ~rate:(1. /. mean_extra)

let to_string = function
  | Constant d -> Printf.sprintf "constant %gms" d
  | Uniform { lo; hi } -> Printf.sprintf "uniform [%g, %g)ms" lo hi
  | Jittered { base; jitter } -> Printf.sprintf "%gms +/-%g%%" base (100. *. jitter)
  | Exponential { base; mean_extra } -> Printf.sprintf "%gms + exp(mean %gms)" base mean_extra
