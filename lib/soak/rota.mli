(** Recurring chaos windows on a rota.

    Every [every] ticks the rota opens a window of [duration] ticks and
    generates a fresh batch of {!Lla_chaos.Schedule.event}s for it —
    price poisons (finite garbage, [nan], [inf], zero), latency error
    spikes, and a probabilistic control-tick-loss fault window —
    optionally plus a capacity dip restored at window close. {!step}
    expands the batch into per-tick kernel ops; generation is
    deterministic in [(params, seed, call sequence)] (the caller must
    call {!step} every tick). *)

type params = {
  every : int;  (** ticks between window onsets; [<= 0] disables chaos *)
  duration : int;  (** window length in ticks *)
  poisons_per_window : int;
  spikes_per_window : int;
  spike_magnitude : float;  (** scale of the latency disturbances, ms *)
  stall_drop : float;  (** per-tick chance a control tick is lost in-window *)
  dip_probability : float;  (** chance the window dips one capacity *)
  dip_floor : float;  (** dip factor drawn from [U(dip_floor, 1)] *)
}

val default_params : params

type op =
  | Poison of { resource : int; value : float }
  | Spike of { subtask : int; magnitude : float }
      (** disturb the subtask's latency iterate by [magnitude] (signed:
          spikes are applied at onset and released at window end) *)
  | Dip of { resource : int; factor : float }
      (** scale the resource's capacity by [factor] *)
  | Restore of { resource : int }  (** restore the construction capacity *)
  | Stall  (** drop this control tick entirely *)

type t

val create : ?params:params -> seed:int -> n_resources:int -> n_subtasks:int -> unit -> t

val step : t -> now:int -> op list
(** Must be called once per tick, in order. *)

val in_window : t -> now:int -> bool
(** [now] is within the current window (inclusive of its closing
    tick, when spike releases and capacity restores land). *)

val windows : t -> int

val last_window_end : t -> int
(** Closing tick of the most recent window ([-1] before the first). *)

val window_events : t -> Lla_chaos.Schedule.event list
(** The most recent window's generated schedule (window-relative [at]
    times) — for reporting and reproducers. *)

val stalls : t -> int
