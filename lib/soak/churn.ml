type params = {
  roster_fraction : float;
  every : int;
  base_load : float;
  diurnal_period : int;
  diurnal_amplitude : float;
  turnover : float;
  flash_every : int;
  flash_duration : int;
  flash_boost : float;
}

let default_params =
  {
    roster_fraction = 0.4;
    every = 200;
    base_load = 0.6;
    diurnal_period = 100_000;
    diurnal_amplitude = 0.25;
    turnover = 0.5;
    flash_every = 150_000;
    flash_duration = 8_000;
    flash_boost = 0.3;
  }

type op = Admit of int | Retire of int

(* The roster lives in [slots], partitioned: positions [0, active_n) hold
   the active tasks, [active_n, roster_n) the inactive ones; [pos] maps a
   task index back to its slot so activation state flips in O(1). *)
type t = {
  params : params;
  rng : Lla_stdx.Rng.t;
  roster_lo : int;  (* roster = task indices [roster_lo, n_tasks) *)
  roster_n : int;
  slots : int array;
  pos : int array;  (* task index -> slot position; -1 off-roster *)
  priority : float array;  (* per slot task, sampled at creation *)
  mutable active_n : int;
  mutable max_active : int;
  mutable admits : int;
  mutable retires : int;
  initially_retired : int list;
}

let clamp01 v = if v < 0. then 0. else if v > 1. then 1. else v

let in_flash t ~now =
  let p = t.params in
  p.flash_every > 0 && p.flash_duration > 0 && now >= p.flash_every
  && now mod p.flash_every < p.flash_duration

let target t ~now =
  let p = t.params in
  let diurnal =
    if p.diurnal_period <= 0 then 0.
    else
      p.diurnal_amplitude
      *. sin (2. *. Float.pi *. float_of_int now /. float_of_int p.diurnal_period)
  in
  let flash = if in_flash t ~now then p.flash_boost else 0. in
  let f = clamp01 (p.base_load +. diurnal +. flash) in
  let n = int_of_float (Float.round (f *. float_of_int t.roster_n)) in
  Stdlib.min t.max_active (Stdlib.max 0 n)

let swap_slots t a b =
  if a <> b then begin
    let ta = t.slots.(a) and tb = t.slots.(b) in
    t.slots.(a) <- tb;
    t.slots.(b) <- ta;
    t.pos.(ta) <- b;
    t.pos.(tb) <- a
  end

(* Flip task (by slot position) out of / into the active region. *)
let deactivate_at t slot_pos =
  swap_slots t slot_pos (t.active_n - 1);
  t.active_n <- t.active_n - 1

let activate_at t slot_pos =
  swap_slots t slot_pos t.active_n;
  t.active_n <- t.active_n + 1

let create ?(params = default_params) ~seed ~n_tasks ~priority () =
  if not (params.roster_fraction >= 0. && params.roster_fraction <= 1.) then
    invalid_arg "Churn.create: roster_fraction outside [0,1]";
  let roster_n = int_of_float (params.roster_fraction *. float_of_int n_tasks) in
  let roster_n = Stdlib.min n_tasks (Stdlib.max 0 roster_n) in
  let roster_lo = n_tasks - roster_n in
  let t =
    {
      params;
      rng = Lla_stdx.Rng.create ~seed;
      roster_lo;
      roster_n;
      slots = Array.init roster_n (fun i -> roster_lo + i);
      pos = Array.init n_tasks (fun k -> if k < roster_lo then -1 else k - roster_lo);
      priority = Array.init n_tasks (fun k -> if k < roster_lo then 0. else priority k);
      active_n = roster_n;
      max_active = roster_n;
      admits = 0;
      retires = 0;
      initially_retired = [];
    }
  in
  (* Start the stream at its tick-0 target: randomly retire the excess.
     These retires are reported via [initially_retired], not [step]. *)
  let tgt = target t ~now:0 in
  let retired = ref [] in
  while t.active_n > tgt do
    let k = Lla_stdx.Rng.int t.rng ~bound:t.active_n in
    let task = t.slots.(k) in
    deactivate_at t k;
    retired := task :: !retired
  done;
  { t with initially_retired = List.rev !retired }

let initially_retired t = t.initially_retired

let roster_size t = t.roster_n

let active_in_roster t = t.active_n

let max_active t = t.max_active

let set_max_active t n = t.max_active <- Stdlib.min t.roster_n (Stdlib.max 0 n)

let shed t ~count =
  (* Evict the lowest-priority actives: selection by scan, O(count *
     active) — rosters are hundreds of tasks and sheds rare, so simple
     beats clever. *)
  let out = ref [] in
  for _ = 1 to count do
    if t.active_n > 0 then begin
      let best = ref 0 in
      for k = 1 to t.active_n - 1 do
        if t.priority.(t.slots.(k)) < t.priority.(t.slots.(!best)) then best := k
      done;
      let task = t.slots.(!best) in
      deactivate_at t !best;
      t.retires <- t.retires + 1;
      out := task :: !out
    end
  done;
  List.rev !out

let step t ~now =
  let p = t.params in
  if p.every <= 0 || t.roster_n = 0 || now mod p.every <> 0 then []
  else begin
    let tgt = target t ~now in
    let ops = ref [] in
    while t.active_n > tgt do
      let k = Lla_stdx.Rng.int t.rng ~bound:t.active_n in
      let task = t.slots.(k) in
      deactivate_at t k;
      t.retires <- t.retires + 1;
      ops := Retire task :: !ops
    done;
    while t.active_n < tgt do
      let inactive = t.roster_n - t.active_n in
      let k = t.active_n + Lla_stdx.Rng.int t.rng ~bound:inactive in
      let task = t.slots.(k) in
      activate_at t k;
      t.admits <- t.admits + 1;
      ops := Admit task :: !ops
    done;
    (* Steady-state turnover: same-count swaps, retire before admit. The
       admit candidate is drawn first so a swap never re-admits the task
       it just retired. *)
    let swaps =
      let whole = int_of_float p.turnover in
      let frac = p.turnover -. float_of_int whole in
      whole + (if frac > 0. && Lla_stdx.Rng.float t.rng < frac then 1 else 0)
    in
    for _ = 1 to swaps do
      let inactive = t.roster_n - t.active_n in
      if t.active_n > 0 && inactive > 0 then begin
        let kin = t.active_n + Lla_stdx.Rng.int t.rng ~bound:inactive in
        let task_in = t.slots.(kin) in
        let kout = Lla_stdx.Rng.int t.rng ~bound:t.active_n in
        let task_out = t.slots.(kout) in
        deactivate_at t kout;
        t.retires <- t.retires + 1;
        activate_at t t.pos.(task_in);
        t.admits <- t.admits + 1;
        ops := Admit task_in :: Retire task_out :: !ops
      end
    done;
    List.rev !ops
  end

let admits t = t.admits

let retires t = t.retires
