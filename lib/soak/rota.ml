module Schedule = Lla_chaos.Schedule

type params = {
  every : int;
  duration : int;
  poisons_per_window : int;
  spikes_per_window : int;
  spike_magnitude : float;
  stall_drop : float;
  dip_probability : float;
  dip_floor : float;
}

let default_params =
  {
    every = 20_000;
    duration = 400;
    poisons_per_window = 2;
    spikes_per_window = 3;
    spike_magnitude = 25.;
    stall_drop = 0.1;
    dip_probability = 0.5;
    dip_floor = 0.7;
  }

type op =
  | Poison of { resource : int; value : float }
  | Spike of { subtask : int; magnitude : float }
  | Dip of { resource : int; factor : float }
  | Restore of { resource : int }
  | Stall

type t = {
  params : params;
  rng : Lla_stdx.Rng.t;
  n_resources : int;
  n_subtasks : int;
  mutable agenda : (int * op) list;  (* absolute tick, ascending *)
  mutable window_start : int;
  mutable window_end : int;
  mutable stall_until : int;  (* exclusive *)
  mutable stall_p : float;
  mutable windows : int;
  mutable stalls : int;
  mutable events : Schedule.event list;
}

let create ?(params = default_params) ~seed ~n_resources ~n_subtasks () =
  if params.duration <= 0 && params.every > 0 then invalid_arg "Rota.create: non-positive duration";
  if params.every > 0 && params.duration >= params.every then
    invalid_arg "Rota.create: window duration must be shorter than the rota period";
  {
    params;
    rng = Lla_stdx.Rng.create ~seed;
    n_resources;
    n_subtasks;
    agenda = [];
    window_start = -1;
    window_end = -1;
    stall_until = -1;
    stall_p = 0.;
    windows = 0;
    stalls = 0;
    events = [];
  }

let in_window t ~now = t.windows > 0 && now >= t.window_start && now <= t.window_end

let windows t = t.windows

let last_window_end t = t.window_end

let window_events t = t.events

let stalls t = t.stalls

(* The poison menu matches the campaign generator's taste: non-finite
   values exercise the guards, the huge finite one the mu_cap watchdog,
   zero the price-collapse path. *)
let poison_value rng =
  match Lla_stdx.Rng.int rng ~bound:4 with
  | 0 -> Float.nan
  | 1 -> Float.infinity
  | 2 -> 1e12
  | _ -> 0.

(* Generate one window as Schedule events (window-relative [at] times) —
   the same vocabulary campaign reproducers use — then expand them onto
   the per-tick agenda. *)
let open_window t ~now =
  let p = t.params in
  let horizon = float_of_int p.duration in
  let events = ref [] in
  for _ = 1 to p.poisons_per_window do
    let at = float_of_int (Lla_stdx.Rng.int t.rng ~bound:p.duration) in
    let resource = Lla_stdx.Rng.int t.rng ~bound:t.n_resources in
    events := Schedule.Price_poison { at; resource; value = poison_value t.rng } :: !events
  done;
  for _ = 1 to p.spikes_per_window do
    let at = Lla_stdx.Rng.int t.rng ~bound:p.duration in
    let duration = float_of_int (p.duration - at) in
    let subtask = Lla_stdx.Rng.int t.rng ~bound:t.n_subtasks in
    let magnitude = Lla_stdx.Rng.uniform t.rng ~lo:(0.2 *. p.spike_magnitude) ~hi:p.spike_magnitude in
    events :=
      Schedule.Error_spike { at = float_of_int at; duration; subtask; magnitude } :: !events
  done;
  if p.stall_drop > 0. then
    events :=
      Schedule.Faults
        {
          at = 0.;
          duration = horizon;
          faults =
            {
              Lla_transport.Transport.drop = p.stall_drop;
              duplicate = 0.;
              reorder = 0.;
              reorder_spread = 0.;
            };
        }
      :: !events;
  t.events <- List.rev !events;
  t.window_start <- now;
  t.window_end <- now + p.duration;
  t.windows <- t.windows + 1;
  (* Expand onto the agenda. Spikes release (negated) at window end;
     Faults become the probabilistic stall window sampled per tick. *)
  let agenda = ref [] in
  List.iter
    (fun (e : Schedule.event) ->
      match e with
      | Schedule.Price_poison { at; resource; value } ->
          agenda := (now + int_of_float at, Poison { resource; value }) :: !agenda
      | Schedule.Error_spike { at; duration; subtask; magnitude } ->
          let start = now + int_of_float at in
          agenda :=
            (start + int_of_float duration, Spike { subtask; magnitude = -.magnitude })
            :: (start, Spike { subtask; magnitude })
            :: !agenda
      | Schedule.Faults { at; duration; faults } ->
          t.stall_until <- now + int_of_float at + int_of_float duration;
          t.stall_p <- faults.Lla_transport.Transport.drop
      | Schedule.Jitter _ | Schedule.Partition _ | Schedule.Outage _
      | Schedule.Node_crash _ | Schedule.Storage_faults _ -> ())
    t.events;
  if t.n_resources > 0 && Lla_stdx.Rng.float t.rng < p.dip_probability then begin
    let resource = Lla_stdx.Rng.int t.rng ~bound:t.n_resources in
    let factor = Lla_stdx.Rng.uniform t.rng ~lo:p.dip_floor ~hi:1. in
    agenda := (t.window_end, Restore { resource }) :: (now, Dip { resource; factor }) :: !agenda
  end;
  t.agenda <- List.stable_sort (fun (a, _) (b, _) -> compare a b) !agenda

let step t ~now =
  let p = t.params in
  if p.every <= 0 then []
  else begin
    if now > 0 && now mod p.every = 0 then open_window t ~now;
    let ops =
      (* fast path: outside windows the agenda is empty or entirely in
         the future, and the tick allocates nothing here *)
      match t.agenda with
      | [] -> []
      | (tk, _) :: _ when tk > now -> []
      | _ ->
          let due, later = List.partition (fun (tk, _) -> tk <= now) t.agenda in
          t.agenda <- later;
          List.map snd due
    in
    if now < t.stall_until && Lla_stdx.Rng.float t.rng < t.stall_p then begin
      t.stalls <- t.stalls + 1;
      Stall :: ops
    end
    else ops
  end
