module Kernel = Lla_scale.Kernel
module Generator = Lla_scale.Generator
module Safe_mode = Lla_runtime.Safe_mode
module Trace = Lla_obs.Trace
module Monitor = Lla_obs.Monitor
module Jsonl = Lla_obs.Jsonl
module Journal = Lla_durable.Journal
module Recovery = Lla_durable.Recovery
module P = Lla.Problem

type ceilings = {
  max_rss_kb : int;
  max_words_per_tick : float;
  min_ticks_per_s : float;
}

type config = {
  subtasks : int;
  resources : int option;
  seed : int;
  horizon : int;
  churn : Churn.params;
  chaos : Rota.params;
  ceilings : ceilings;
  watchdog_every : int;
  health_every : int;
  reconverge_budget : int;
  sustain_budget : int;
  baseline_every : int;
  baseline_iterations : int;
  drift_tolerance : float;
  safe_mode : Safe_mode.config;
  shed_levels : int;
  shed_fraction : float;
  recover_after : int;
  warmstart_iterations : int;
  crash_every : int;
  journal_every : int;
}

(* The soak watchdog observes every [watchdog_every] ticks rather than
   every 10 ms, so the safe-mode machine's round counts and dwell are
   re-based to tick units; the oscillation detector is also widened —
   churn moves the active set's utility up and down legitimately, and
   diurnal + flash arrival must not read as divergence. *)
let soak_safe_mode =
  {
    Safe_mode.default_config with
    warmup_rounds = 100;
    reentry_grace_rounds = 20;
    oscillation_threshold = 0.35;
    min_reversals = 12;
    min_safe_time = 2_000.;
  }

let default_config =
  {
    subtasks = 800;
    resources = None;
    seed = 42;
    horizon = 1_000_000;
    churn = Churn.default_params;
    chaos = Rota.default_params;
    ceilings = { max_rss_kb = 2 * 1024 * 1024; max_words_per_tick = 0.; min_ticks_per_s = 0. };
    watchdog_every = 100;
    (* prime cadence: the scale kernel converges to a small limit cycle,
       and a sampling period sharing a factor with the cycle length could
       observe only its infeasible phase *)
    health_every = 47;
    reconverge_budget = 4_000;
    sustain_budget = 2_000;
    baseline_every = 250_000;
    baseline_iterations = 2_000;
    drift_tolerance = 0.25;
    safe_mode = soak_safe_mode;
    shed_levels = 3;
    shed_fraction = 0.2;
    recover_after = 50;
    warmstart_iterations = 5_000;
    crash_every = 0;
    journal_every = 0;
  }

let smoke_config =
  {
    default_config with
    subtasks = 600;
    horizon = 60_000;
    churn =
      {
        Churn.default_params with
        every = 150;
        diurnal_period = 30_000;
        flash_every = 25_000;
        flash_duration = 3_000;
      };
    chaos = { Rota.default_params with every = 15_000; duration = 300 };
    reconverge_budget = 2_500;
    baseline_every = 25_000;
  }

type report = {
  ticks : int;
  elapsed_s : float;
  ticks_per_s : float;
  tasks : int;
  subtasks : int;
  admits : int;
  retires : int;
  chaos_windows : int;
  stalls : int;
  guard_events : int;
  safe_entries : int;
  safe_exits : int;
  degradations : int;
  recoveries : int;
  max_level : int;
  oracle_violations : string list;
  violation_count : int;
  peak_rss_kb : int;
  words_per_tick_early : float;
  words_per_tick_late : float;
  words_per_tick_max : float;
  reconverge_episodes : int;
  worst_settle_ticks : float;
  baseline_checks : int;
  worst_drift : float;
  final_utility : float;
  final_feasible : bool;
  final_active_tasks : int;
  alerts_raised : int;
  alerts_cleared : int;
  crashes : int;
  warm_recoveries : int;
  cold_recoveries : int;
  journal_replayed : int;
  journal_refused : int;
  worst_recovery_ticks : int;
}

(* A field of /proc/self/status in kB; 0 when absent (non-Linux). *)
let status_kb key =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
      let prefix = key ^ ":" in
      let plen = String.length prefix in
      let v = ref 0 in
      (try
         while true do
           let line = input_line ic in
           if String.length line > plen && String.sub line 0 plen = prefix then
             let rest = String.sub line plen (String.length line - plen) in
             try Scanf.sscanf rest " %d" (fun n -> v := n) with
             | Scanf.Scan_failure _ | Failure _ | End_of_file -> ()
         done
       with End_of_file -> ());
      close_in ic;
      !v

let run ?obs ?monitor ?engine ?journal ?on_progress config =
  if config.horizon <= 0 then Error "Soak.run: non-positive horizon"
  else if config.watchdog_every <= 0 || config.health_every <= 0 then
    Error "Soak.run: non-positive watchdog/health cadence"
  else
    let params = Generator.sized ?resources:config.resources ~subtasks:config.subtasks () in
    let workload = Generator.generate ~params ~seed:config.seed () in
    let problem = P.compile workload in
    match Kernel.of_problem ?obs ~config:Kernel.scale_config problem with
    | Error e -> Error e
    | Ok kernel ->
        let n_task = P.n_tasks problem in
        (* Shed order: smallest utility slope goes first — the cheapest
           task to lose, per Eq. 1's linear per-task utilities. *)
        let priority k =
          match problem.P.tasks.(k).P.linear_slope with Some s -> Float.abs s | None -> 0.
        in
        let churn =
          Churn.create ~params:config.churn ~seed:(config.seed + 1) ~n_tasks:n_task ~priority ()
        in
        let rota =
          Rota.create ~params:config.chaos ~seed:(config.seed + 2)
            ~n_resources:(Kernel.n_resources kernel) ~n_subtasks:(Kernel.n_subtasks kernel) ()
        in
        let safe = Safe_mode.create ?obs ~config:config.safe_mode problem in
        let fallback_lat = Safe_mode.fallback safe in
        let base_cap = Array.init (Kernel.n_resources kernel) (Kernel.capacity kernel) in
        List.iter (Kernel.retire_task kernel) (Churn.initially_retired churn);
        ignore (Kernel.solve kernel ~max_iterations:config.warmstart_iterations);

        let tol = config.safe_mode.Safe_mode.infeasibility_tolerance in
        let emit now event = Lla_obs.emit_opt obs ~at:(float_of_int now) event in
        (* A supplied streaming monitor rides along at the health cadence
           (utility + Eq. 3/4 feasibility) and gets each Lla_baseline
           checkpoint as its drift reference; its alert transitions land
           in the [?obs] trace. Feeding it reads kernel state only, so
           every decision the ticks make is unchanged. *)
        (match monitor with
        | Some m -> Monitor.on_alert m (fun ~at ev -> Lla_obs.emit_opt obs ~at ev)
        | None -> ());
        let viols = ref [] and viol_n = ref 0 in
        let violate now msg =
          incr viol_n;
          if !viol_n <= 20 then viols := Printf.sprintf "tick %d: %s" now msg :: !viols
        in

        (* Degradation ladder + freeze ownership. The kernel is frozen by
           exactly one owner at a time: the safe-mode machine (whose exit
           hysteresis unfreezes) or the ceiling ladder's bottom rung
           (whose recovery unfreezes). *)
        let level = ref 0 and max_level = ref 0 in
        let degradations = ref 0 and recoveries = ref 0 in
        let healthy = ref 0 in
        let frozen_by = ref `None in
        let safe_entries = ref 0 and safe_exits = ref 0 in

        (* Health-oracle state. [grace_until] covers warmup plus the
           reconvergence window after every chaos window / flash crowd /
           safe-mode exit / shed, during which Eq. 3/4 transients are the
           expected physics, not a violation. *)
        let warmup_until = config.reconverge_budget in
        let grace_until = ref warmup_until in
        let extend_grace until_ = if until_ > !grace_until then grace_until := until_ in
        (* Sustained Eq. 3/4 budgets and the reconvergence probe are the
           shared [Lla_obs.Monitor] detector primitives — one
           implementation for the soak oracles and the live alert bus
           (the agreement with offline [Analyze] is property-tested). *)
        let res_streak = Monitor.Streak.create ~budget:config.sustain_budget in
        let path_streak = Monitor.Streak.create ~budget:config.sustain_budget in
        let probe = ref None in
        let reconv = ref 0 and worst_settle = ref 0. in
        let base_checks = ref 0 and worst_drift = ref 0. in
        let seen_windows = ref 0 in
        let was_flash = ref false in

        (* Whole-node crash drill state. [recovering] holds the crash
           tick while the restarted node climbs back to feasibility. *)
        let crashes = ref 0 and warm_n = ref 0 and cold_n = ref 0 in
        let j_replayed = ref 0 and j_refused = ref 0 in
        let worst_recovery = ref 0 in
        let recovering = ref None in

        let abandon_probe () = probe := None in
        let start_probe now =
          if !frozen_by = `None && now + config.reconverge_budget < config.horizon then
            probe := Some (now, Monitor.Probe.start ~at:(float_of_int now))
        in

        let freeze now ~owner ~reason =
          emit now (Trace.Safe_mode_entered { reason; fallback = Safe_mode.fallback_source safe });
          Kernel.enter_fallback kernel ~lat:fallback_lat ();
          Kernel.set_frozen kernel true;
          frozen_by := owner;
          incr safe_entries;
          abandon_probe ();
          Monitor.Streak.reset res_streak;
          Monitor.Streak.reset path_streak
        in
        let unfreeze now =
          Kernel.set_frozen kernel false;
          Kernel.requeue_all kernel;
          emit now Trace.Safe_mode_exited;
          incr safe_exits;
          frozen_by := `None;
          extend_grace (now + config.reconverge_budget);
          start_probe now
        in

        (* Journal codec for the kernel iterate: one JSONL record per
           cadence point, replayed last-write-wins at recovery. The
           encode allocates freely, so journal windows are marked
           [heavy] like baseline recomputes. *)
        let floats a = Jsonl.Arr (List.map (fun x -> Jsonl.Num x) (Array.to_list a)) in
        let kernel_line now =
          Jsonl.to_string
            (Jsonl.Obj
               [
                 ("kind", Jsonl.Str "kernel");
                 ("at", Jsonl.Num (float_of_int now));
                 ("iteration", Jsonl.Num (float_of_int (Kernel.iteration kernel)));
                 ("lat", floats (Kernel.lat_array kernel));
                 ("mu", floats (Kernel.mu_array kernel));
                 ("lambda", floats (Kernel.lambda_array kernel));
               ])
        in
        let float_array_field name json =
          match Option.bind (Jsonl.member name json) Jsonl.arr with
          | None -> None
          | Some items ->
              let rec collect acc = function
                | [] -> Some (Array.of_list (List.rev acc))
                | item :: rest -> (
                    match Jsonl.num item with
                    | Some v -> collect (v :: acc) rest
                    | None -> None)
              in
              collect [] items
        in
        let parse_kernel_line line =
          match Jsonl.parse line with
          | Error _ -> None
          | Ok json -> (
              match Option.bind (Jsonl.member "kind" json) Jsonl.str with
              | Some "kernel" -> (
                  match
                    ( float_array_field "lat" json,
                      float_array_field "mu" json,
                      float_array_field "lambda" json )
                  with
                  | Some lat, Some mu, Some lambda -> Some (lat, mu, lambda)
                  | _ -> None)
              | _ -> None)
        in
        (* The drill: the store loses its unsynced tail (torn per its
           fault config), RAM is gone ([Kernel.crash_reset]), then the
           node restarts warm from the last good journaled iterate — or
           cold when there is no journal, no good record survived, or
           the record is refused ([restore_iterate] rejects non-finite
           components). Recovery progress is judged at the health
           cadence; skipped while frozen (the fallback dwell owns the
           kernel). *)
        let crash_drill now =
          incr crashes;
          emit now (Trace.Note { name = "node.crash"; value = float_of_int !crashes });
          (match journal with
          | Some j -> Journal.Store.crash (Journal.store j)
          | None -> ());
          Kernel.crash_reset kernel;
          let warm =
            match journal with
            | None -> false
            | Some j -> (
                let latest = ref None in
                let apply line =
                  match parse_kernel_line line with
                  | Some state ->
                      latest := Some state;
                      true
                  | None -> false
                in
                let r = Recovery.replay ?obs ~at:(float_of_int now) j ~apply in
                j_replayed := !j_replayed + r.Recovery.applied;
                j_refused := !j_refused + r.Recovery.refused;
                match !latest with
                | None -> false
                | Some (lat, mu, lambda) -> (
                    match Kernel.restore_iterate kernel ~lat ~mu ~lambda with
                    | Ok () -> true
                    | Error _ -> false))
          in
          if warm then incr warm_n else incr cold_n;
          emit now
            (Trace.Note { name = "node.recovered"; value = (if warm then 1. else 0.) });
          recovering := Some now;
          abandon_probe ();
          Monitor.Streak.reset res_streak;
          Monitor.Streak.reset path_streak;
          extend_grace (now + config.reconverge_budget);
          start_probe now
        in

        let roster = Churn.roster_size churn in
        let apply_cap now =
          let rung = Stdlib.min !level config.shed_levels in
          let frac = 1. -. (config.shed_fraction *. float_of_int rung) in
          let cap = Stdlib.max 0 (int_of_float (ceil (frac *. float_of_int roster))) in
          Churn.set_max_active churn cap;
          let excess = Churn.active_in_roster churn - cap in
          if excess > 0 then begin
            List.iter (Kernel.retire_task kernel) (Churn.shed churn ~count:excess);
            extend_grace (now + config.reconverge_budget)
          end
        in
        let degrade now ~reason =
          healthy := 0;
          emit now (Trace.Watchdog_trip { reason });
          if !level < config.shed_levels then begin
            incr level;
            if !level > !max_level then max_level := !level;
            incr degradations;
            emit now (Trace.Note { name = "soak.degrade"; value = float_of_int !level });
            apply_cap now
          end
          else if !frozen_by = `None then begin
            (* bottom rung: clamp to the fallback rather than die (also
               re-clamps when a safe-mode handoff unfroze early while
               the ceiling is still breached) *)
            if !level = config.shed_levels then begin
              incr level;
              if !level > !max_level then max_level := !level
            end;
            incr degradations;
            emit now (Trace.Note { name = "soak.degrade"; value = float_of_int !level });
            freeze now ~owner:`Ceiling ~reason
          end
          (* frozen at the bottom: the trip stays recorded, nothing more
             to shed — the run keeps limping instead of crashing *)
        in
        let recover now =
          if !level = config.shed_levels + 1 && !frozen_by = `Ceiling then unfreeze now;
          decr level;
          incr recoveries;
          healthy := 0;
          apply_cap now;
          emit now (Trace.Note { name = "soak.recover"; value = float_of_int !level })
        in

        (* Baseline drift checkpoints, each preceded by a churn-hold so
           the kernel is judged at a converged point of the frozen active
           set, not mid-transient. *)
        let next_base = ref (if config.baseline_every > 0 then config.baseline_every else max_int) in
        let in_baseline_hold now =
          config.baseline_every > 0
          && now >= !next_base - config.reconverge_budget
          && now < !next_base
        in
        let baseline_check now =
          if !frozen_by = `None && not (Rota.in_window rota ~now) then begin
            let tasks =
              List.filteri
                (fun k _ -> Kernel.task_active kernel k)
                workload.Lla_model.Workload.tasks
            in
            match
              Lla_model.Workload.make ~tasks ~resources:workload.Lla_model.Workload.resources
            with
            | Error _ -> ()
            | Ok sub ->
                let result =
                  Lla_baseline.Centralized.solve ~iterations:config.baseline_iterations sub
                in
                let b = result.Lla_baseline.Centralized.utility in
                let k_u = Kernel.utility kernel in
                (match monitor with
                | Some m -> Monitor.set_baseline m ~at:(float_of_int now) b
                | None -> ());
                let drift = Monitor.drift ~baseline:b k_u in
                incr base_checks;
                if drift > !worst_drift then worst_drift := drift;
                if drift > config.drift_tolerance then
                  violate now
                    (Printf.sprintf
                       "utility drift %.3f vs centralized optimum over the active set \
                        (tolerance %.3f)"
                       drift config.drift_tolerance)
          end
        in

        (* Watchdog sampling state. [heavy] marks windows containing a
           baseline recompute, whose allocation and latency are the drift
           oracle's, not the tick path's. *)
        let wpt_first = ref Float.nan and wpt_last = ref Float.nan and wpt_max = ref 0. in
        let last_words = ref (Gc.minor_words ()) in
        let last_wd_tick = ref 0 in
        (* this container's /proc lacks VmHWM, so also track the running
           max of the watchdog's VmRSS samples *)
        let peak_rss = ref 0 in
        let last_wd_time = ref (Unix.gettimeofday ()) in
        let heavy = ref true in

        let watchdog now =
          let words = Gc.minor_words () in
          let tnow = Unix.gettimeofday () in
          let dticks = now - !last_wd_tick in
          let wpt = if dticks > 0 then (words -. !last_words) /. float_of_int dticks else 0. in
          let tps =
            if tnow > !last_wd_time then float_of_int dticks /. (tnow -. !last_wd_time)
            else Float.infinity
          in
          let clean = (not !heavy) && now >= warmup_until in
          if clean then begin
            if Float.is_nan !wpt_first then wpt_first := wpt;
            wpt_last := wpt;
            if wpt > !wpt_max then wpt_max := wpt
          end;
          let c = config.ceilings in
          let rss = status_kb "VmRSS" in
          if rss > !peak_rss then peak_rss := rss;
          let breach =
            if c.max_rss_kb > 0 && rss > c.max_rss_kb then
              Some (Printf.sprintf "VmRSS %d kB over ceiling %d kB" rss c.max_rss_kb)
            else if clean && c.max_words_per_tick > 0. && wpt > c.max_words_per_tick then
              Some (Printf.sprintf "%.0f minor words/tick over budget %.0f" wpt c.max_words_per_tick)
            else if clean && c.min_ticks_per_s > 0. && tps < c.min_ticks_per_s then
              Some (Printf.sprintf "throughput %.0f ticks/s under floor %.0f" tps c.min_ticks_per_s)
            else None
          in
          (match breach with
          | Some reason -> degrade now ~reason
          | None ->
              if !level > 0 then begin
                incr healthy;
                if !healthy >= config.recover_after then recover now
              end);
          (match
             Safe_mode.observe_signals safe ~now:(float_of_int now) ~mu:(Kernel.mu_array kernel)
               ~feasible:(Kernel.feasible_within kernel ~tol) ~utility:(Kernel.utility kernel)
           with
          | Some (Safe_mode.Entered { reason }) ->
              if !frozen_by = `None then freeze now ~owner:`Machine ~reason
              else begin
                (* tripped while ceiling-frozen (a poison can still blow
                   the price cap): re-clamp/heal, hand the freeze to the
                   machine — its exit hysteresis now owns the unfreeze *)
                emit now
                  (Trace.Safe_mode_entered
                     { reason; fallback = Safe_mode.fallback_source safe });
                Kernel.enter_fallback kernel ~lat:fallback_lat ();
                incr safe_entries;
                frozen_by := `Machine
              end
          | Some Safe_mode.Exited -> if !frozen_by = `Machine then unfreeze now
          | None -> ());
          heavy := false;
          last_words := Gc.minor_words ();
          last_wd_tick := now;
          last_wd_time := Unix.gettimeofday ();
          match on_progress with Some f -> f ~tick:now | None -> ()
        in

        let health now =
          (* One sample per oracle pass: the probe, the streaming monitor
             and both streaks read the same kernel state, and utility is
             O(active tasks) — compute each readout once and share. *)
          let res_ok = Kernel.resources_feasible kernel ~tol in
          let path_ok = Kernel.paths_feasible kernel ~tol in
          let need_u =
            (match !probe with Some _ -> true | None -> false) || Option.is_some monitor
          in
          let u = if need_u then Kernel.utility kernel else nan in
          (match !probe with
          | Some (start, p) ->
              Monitor.Probe.sample p ~at:(float_of_int now) ~value:u;
              if now - start >= config.reconverge_budget then begin
                incr reconv;
                (match Monitor.Probe.settling ~tolerance:0.02 p with
                | Some ts ->
                    let settle = ts -. float_of_int start in
                    if settle > !worst_settle then worst_settle := settle;
                    if settle > 0.75 *. float_of_int config.reconverge_budget then
                      violate now
                        (Printf.sprintf
                           "slow reconvergence: settled %.0f ticks after the episode at tick \
                            %d (budget %d)"
                           settle start config.reconverge_budget)
                | None ->
                    violate now
                      (Printf.sprintf "no reconvergence within %d ticks of the episode at tick %d"
                         config.reconverge_budget start));
                probe := None
              end
          | None -> ());
          (match monitor with
          | Some m ->
              let at = float_of_int now in
              Monitor.observe_utility m ~at u;
              Monitor.observe_feasible m ~at ~resources_ok:res_ok ~paths_ok:path_ok;
              Kernel.publish_metrics kernel ~at
          | None -> ());
          (* crash-recovery progress: feasibility back within the
             sustain budget ends the episode; staying infeasible past
             it is the violation the [recovery_stuck] alert mirrors *)
          (match !recovering with
          | Some start ->
              let spent = now - start in
              let feasible_again = res_ok && path_ok in
              (match monitor with
              | Some m ->
                  Monitor.observe_recovery m ~at:(float_of_int now)
                    ~ok:(feasible_again || spent <= config.sustain_budget)
                    ~value:(float_of_int spent)
              | None -> ());
              if feasible_again then begin
                if spent > !worst_recovery then worst_recovery := spent;
                emit now (Trace.Note { name = "node.recovery_ticks"; value = float_of_int spent });
                recovering := None
              end
              else if spent > config.sustain_budget + config.reconverge_budget then begin
                violate now
                  (Printf.sprintf
                     "crash recovery stuck: still infeasible %d ticks after the crash at tick %d"
                     spent start);
                if spent > !worst_recovery then worst_recovery := spent;
                recovering := None
              end
          | None -> ());
          if now >= !grace_until && !frozen_by = `None then begin
            (match Monitor.Streak.observe res_streak ~ok:res_ok ~step:config.health_every with
            | Some streak ->
                violate now (Printf.sprintf "sustained Eq.3 infeasibility for ~%d ticks" streak)
            | None -> ());
            match Monitor.Streak.observe path_streak ~ok:path_ok ~step:config.health_every with
            | Some streak ->
                violate now (Printf.sprintf "sustained Eq.4 infeasibility for ~%d ticks" streak)
            | None -> ()
          end
          else begin
            Monitor.Streak.reset res_streak;
            Monitor.Streak.reset path_streak
          end
        in

        let t0 = Unix.gettimeofday () in
        last_wd_time := t0;
        last_words := Gc.minor_words ();
        let tick now =
          (* flash-crowd episode edges: grace + a reconvergence probe at
             the end of each crowd *)
          let flash = Churn.in_flash churn ~now in
          if flash && not !was_flash then was_flash := true
          else if (not flash) && !was_flash then begin
            was_flash := false;
            extend_grace (now + config.reconverge_budget);
            match !probe with None -> start_probe now | Some _ -> ()
          end;
          (* churn, unless a probe / hold / freeze pins the roster *)
          if !frozen_by = `None && !probe = None && not (in_baseline_hold now) then begin
            match Churn.step churn ~now with
            | [] -> ()
            | ops ->
                List.iter
                  (function
                    | Churn.Admit k -> Kernel.admit_task kernel k
                    | Churn.Retire k -> Kernel.retire_task kernel k)
                  ops
          end;
          (* chaos *)
          let stalled = ref false in
          (match Rota.step rota ~now with
          | [] -> ()
          | ops ->
              List.iter
                (function
                  | Rota.Stall -> stalled := true
                  | Rota.Poison { resource; value } -> Kernel.poison_price kernel resource value
                  | Rota.Spike { subtask; magnitude } ->
                      Kernel.disturb_latency kernel subtask magnitude
                  | Rota.Dip { resource; factor } ->
                      Kernel.set_capacity kernel resource (factor *. base_cap.(resource))
                  | Rota.Restore { resource } ->
                      Kernel.set_capacity kernel resource base_cap.(resource))
                ops);
          if Rota.windows rota > !seen_windows then begin
            seen_windows := Rota.windows rota;
            abandon_probe ();
            extend_grace (Rota.last_window_end rota + config.reconverge_budget);
            emit now (Trace.Note { name = "soak.chaos_window"; value = float_of_int !seen_windows })
          end;
          if Rota.last_window_end rota = now then (
            match !probe with None -> start_probe now | Some _ -> ());
          (* whole-node crash drill, before the tick: the restarted node
             re-optimizes from whatever the recovery restored *)
          if
            config.crash_every > 0 && now > 0
            && now mod config.crash_every = 0
            && !frozen_by = `None
          then crash_drill now;
          (* the tick itself (a stall is a lost control tick) *)
          if not !stalled then Kernel.step kernel;
          (* journal cadence: append the post-tick iterate (the encode
             allocates, so the window is marked heavy like a baseline
             recompute) *)
          (match journal with
          | Some j
            when config.journal_every > 0 && now > 0
                 && now mod config.journal_every = 0
                 && !frozen_by = `None && !recovering = None ->
              heavy := true;
              Journal.append j (kernel_line now)
          | _ -> ());
          if config.baseline_every > 0 && now = !next_base then begin
            next_base := now + config.baseline_every;
            heavy := true;
            baseline_check now
          end;
          if now > 0 && now mod config.watchdog_every = 0 then watchdog now;
          if now > 0 && now mod config.health_every = 0 then health now
        in
        (match engine with
        | None -> for now = 0 to config.horizon - 1 do tick now done
        | Some eng ->
            (* Drive the same tick stream through an engine handle: one
               scheduled event per tick on shard 0's core (1 tick = 1 ms
               of engine time), so the soak coexists with whatever else
               the engine runs — including a domains engine's barrier
               loop — without changing a single decision the ticks make. *)
            let core = Lla_runtime.Engine.core eng ~shard:0 in
            let rec at now =
              ignore
                (Lla_sim.Engine.schedule core ~at:(float_of_int now) (fun _ ->
                     tick now;
                     if now + 1 < config.horizon then at (now + 1)))
            in
            at 0;
            Lla_runtime.Engine.run_until eng (float_of_int config.horizon));

        let elapsed = Unix.gettimeofday () -. t0 in
        Ok
          {
            ticks = config.horizon;
            elapsed_s = elapsed;
            ticks_per_s =
              (if elapsed > 0. then float_of_int config.horizon /. elapsed else 0.);
            tasks = n_task;
            subtasks = Kernel.n_subtasks kernel;
            admits = Churn.admits churn;
            retires = Churn.retires churn;
            chaos_windows = Rota.windows rota;
            stalls = Rota.stalls rota;
            guard_events = Kernel.guard_events kernel;
            safe_entries = !safe_entries;
            safe_exits = !safe_exits;
            degradations = !degradations;
            recoveries = !recoveries;
            max_level = !max_level;
            oracle_violations = List.rev !viols;
            violation_count = !viol_n;
            peak_rss_kb = Stdlib.max (status_kb "VmHWM") !peak_rss;
            words_per_tick_early = (if Float.is_nan !wpt_first then 0. else !wpt_first);
            words_per_tick_late = (if Float.is_nan !wpt_last then 0. else !wpt_last);
            words_per_tick_max = !wpt_max;
            reconverge_episodes = !reconv;
            worst_settle_ticks = !worst_settle;
            baseline_checks = !base_checks;
            worst_drift = !worst_drift;
            final_utility = Kernel.utility kernel;
            final_feasible = Kernel.feasible_within kernel ~tol;
            final_active_tasks = Kernel.n_active_tasks kernel;
            alerts_raised = (match monitor with Some m -> Monitor.alerts_raised m | None -> 0);
            alerts_cleared = (match monitor with Some m -> Monitor.alerts_cleared m | None -> 0);
            crashes = !crashes;
            warm_recoveries = !warm_n;
            cold_recoveries = !cold_n;
            journal_replayed = !j_replayed;
            journal_refused = !j_refused;
            worst_recovery_ticks = !worst_recovery;
          }

let render r =
  let b = Buffer.create 512 in
  Printf.bprintf b "soak: %d ticks over %d tasks / %d subtasks in %.1f s (%.0f ticks/s)\n" r.ticks
    r.tasks r.subtasks r.elapsed_s r.ticks_per_s;
  Printf.bprintf b "  churn: %d admits, %d retires; chaos: %d windows, %d stalled ticks, %d guards\n"
    r.admits r.retires r.chaos_windows r.stalls r.guard_events;
  Printf.bprintf b
    "  ladder: %d degradations (max level %d), %d recoveries; safe mode: %d entries, %d exits\n"
    r.degradations r.max_level r.recoveries r.safe_entries r.safe_exits;
  Printf.bprintf b "  memory: peak RSS %d kB; minor words/tick %.1f -> %.1f (max %.1f)\n"
    r.peak_rss_kb r.words_per_tick_early r.words_per_tick_late r.words_per_tick_max;
  Printf.bprintf b
    "  oracles: %d reconvergence episodes (worst settle %.0f ticks), %d baseline checks (worst \
     drift %.4f)\n"
    r.reconverge_episodes r.worst_settle_ticks r.baseline_checks r.worst_drift;
  if r.alerts_raised > 0 || r.alerts_cleared > 0 then
    Printf.bprintf b "  alerts: %d raised, %d cleared\n" r.alerts_raised r.alerts_cleared;
  if r.crashes > 0 then
    Printf.bprintf b
      "  crashes: %d (%d warm, %d cold); journal: %d replayed, %d refused; worst recovery %d \
       ticks\n"
      r.crashes r.warm_recoveries r.cold_recoveries r.journal_replayed r.journal_refused
      r.worst_recovery_ticks;
  Printf.bprintf b "  final: utility %.3f, feasible %b, %d active tasks\n" r.final_utility
    r.final_feasible r.final_active_tasks;
  if r.violation_count = 0 then Buffer.add_string b "  violations: none"
  else begin
    Printf.bprintf b "  violations: %d\n" r.violation_count;
    List.iter (fun v -> Printf.bprintf b "    - %s\n" v) r.oracle_violations;
    Printf.bprintf b "    (showing %d of %d)" (List.length r.oracle_violations) r.violation_count
  end;
  Buffer.contents b
