(** Seeded admit/retire stream with diurnal + flash-crowd arrival.

    The workload is split into a pinned base and a churning {e roster}
    (the last [roster_fraction] of the compiled task indices). The
    stream tracks a target active count

    [target(T) = roster * clamp01 (base_load
                   + diurnal_amplitude * sin (2 pi T / diurnal_period)
                   + flash_boost{when in a flash crowd})]

    capped by the degradation ladder's {!set_max_active}. Every [every]
    ticks, {!step} emits the admits/retires that move the actual count
    toward the target plus [turnover] steady-state swaps, so the
    arrival pattern layers diurnal load, recurring flash crowds and
    background task replacement — the churn the kernel's dirty sets
    were built for. All draws come from a private {!Lla_stdx.Rng}, so
    the op stream is a pure function of [(params, seed, call
    sequence)]; the property suite asserts determinism. *)

type params = {
  roster_fraction : float;  (** fraction of tasks that churn; rest pinned *)
  every : int;  (** ticks between churn steps; [<= 0] disables churn *)
  base_load : float;  (** mean fraction of the roster active *)
  diurnal_period : int;  (** ticks per simulated day; [<= 0] = flat *)
  diurnal_amplitude : float;
  turnover : float;  (** expected same-count swaps per churn step *)
  flash_every : int;  (** ticks between flash-crowd onsets; [<= 0] = none *)
  flash_duration : int;
  flash_boost : float;  (** extra active fraction during a flash crowd *)
}

val default_params : params

type op = Admit of int | Retire of int  (** compiled task index *)

type t

val create : ?params:params -> seed:int -> n_tasks:int -> priority:(int -> float) -> unit -> t
(** [priority] ranks roster tasks for {!shed} (lowest shed first); it is
    sampled once per roster task at creation. *)

val initially_retired : t -> int list
(** The roster tasks outside the initial target — retire these from the
    kernel before the first tick so the stream starts at its target. *)

val roster_size : t -> int

val active_in_roster : t -> int

val max_active : t -> int

val set_max_active : t -> int -> unit
(** Degradation-ladder hook: cap the active roster (clamped to
    [0..roster_size]). Lowering the cap does not itself retire — call
    {!shed} for the immediate evictions; raising it lets {!step} admit
    back toward the diurnal target. *)

val shed : t -> count:int -> int list
(** Evict the [count] lowest-[priority] active roster tasks (fewer if
    the roster runs dry): marks them inactive and returns their indices
    for the caller to retire from the kernel. *)

val in_flash : t -> now:int -> bool

val step : t -> now:int -> op list
(** The churn ops for tick [now] ([[]] off-period). Retires precede the
    admits they make room for. The caller must apply every op — the
    stream's bookkeeping assumes it. *)

val admits : t -> int
(** Total admits emitted (excluding {!initially_retired}). *)

val retires : t -> int
