(** Long-horizon endurance runtime: churn at scale + chaos + ceilings.

    {!run} drives a generated scenario through millions of kernel ticks
    under the full production weather at once:

    - {b continuous churn} — a {!Churn} stream (diurnal + flash-crowd
      arrival over a task roster) admits and retires task blocks
      incrementally in the {!Lla_scale.Kernel}, finally exercising the
      dirty-set machinery on real cold zones;
    - {b periodic chaos} — a {!Rota} opens recurring
      {!Lla_chaos.Schedule} windows: price poisons, latency error
      spikes, capacity dips, lost control ticks;
    - {b rolling health} — windowed oracles judge the run while it
      happens: sustained Eq. 3/4 feasibility (transients shorter than
      [sustain_budget] are the price of churn; longer is a violation),
      reconvergence after every chaos window / flash crowd / safe-mode
      exit (utility must settle, per {!Lla_obs.Analyze.settling_time},
      within [reconverge_budget]), and a utility-drift bound against a
      periodically recomputed {!Lla_baseline.Centralized} optimum over
      the currently-active subset;
    - {b resource ceilings with graceful degradation} — a watchdog
      samples VmRSS, minor-words-per-tick and ticks-per-second against
      {!ceilings}; a breach walks one step down the degradation ladder
      (shedding the lowest-utility roster tasks and barring admissions
      — every remaining set is schedulable by the generator's
      feasibility-by-construction, so this is literally walking down
      the schedulability ladder) instead of dying, with the bottom rung
      clamping to the {!Lla_runtime.Safe_mode} fallback. Every step is
      recorded as a trace event ([Watchdog_trip] + a ["soak.degrade"]
      note); sustained health climbs back up.

    Determinism: the generator, churn and rota all draw from seeded
    private streams, so a [(config)] pair yields an identical report
    (modulo the wall-clock and memory fields). *)

type ceilings = {
  max_rss_kb : int;  (** VmRSS ceiling; [0] = unlimited *)
  max_words_per_tick : float;
      (** minor-allocation budget per tick, averaged over a watchdog
          window ([0.] = unlimited). Windows containing a baseline
          recompute are exempt — the drift oracle allocates by design. *)
  min_ticks_per_s : float;  (** throughput floor; [0.] = none *)
}

type config = {
  subtasks : int;  (** generated scenario size *)
  resources : int option;  (** default: {!Lla_scale.Generator.sized}'s *)
  seed : int;
  horizon : int;  (** ticks to drive *)
  churn : Churn.params;
  chaos : Rota.params;
  ceilings : ceilings;
  watchdog_every : int;  (** ticks between watchdog samples *)
  health_every : int;  (** ticks between health-oracle samples *)
  reconverge_budget : int;  (** ticks to re-settle after an episode *)
  sustain_budget : int;  (** ticks Eq. 3/4 may stay violated outside grace *)
  baseline_every : int;  (** ticks between drift checkpoints; [0] = never *)
  baseline_iterations : int;
  drift_tolerance : float;  (** relative utility drift allowed vs baseline *)
  safe_mode : Lla_runtime.Safe_mode.config;
  shed_levels : int;  (** ladder rungs before the forced-safe bottom *)
  shed_fraction : float;  (** roster fraction shed per rung *)
  recover_after : int;  (** healthy watchdog samples per rung re-ascent *)
  warmstart_iterations : int;  (** converge before the horizon clock starts *)
  crash_every : int;
      (** ticks between whole-node crash drills ([0] = never): the
          journal store loses its unsynced tail, the kernel iterate
          reverts to construction state ({!Lla_scale.Kernel.crash_reset})
          and the node restarts warm from the last good journaled
          iterate — or cold without one. Drills are skipped while the
          kernel is frozen (the fallback dwell owns it). *)
  journal_every : int;
      (** ticks between journal appends of the live kernel iterate
          ([0] = never; a no-op without [?journal]). Journal windows are
          exempt from the words-per-tick ceiling like baseline
          recomputes — the JSONL encode allocates by design. *)
}

val default_config : config
(** 800 subtasks, 10^6 ticks, default churn/chaos, 2 GiB RSS ceiling. *)

val smoke_config : config
(** The CI gate's fixed-seed configuration: 600 subtasks, 60k ticks,
    three chaos windows, two flash crowds, two baseline checkpoints. *)

type report = {
  ticks : int;
  elapsed_s : float;
  ticks_per_s : float;
  tasks : int;
  subtasks : int;
  admits : int;
  retires : int;
  chaos_windows : int;
  stalls : int;
  guard_events : int;
  safe_entries : int;
  safe_exits : int;
  degradations : int;  (** ladder descents *)
  recoveries : int;  (** ladder ascents *)
  max_level : int;  (** deepest rung reached; [shed_levels + 1] = forced safe *)
  oracle_violations : string list;  (** first 20, newest last *)
  violation_count : int;
  peak_rss_kb : int;  (** VmHWM at exit (0 off-Linux) *)
  words_per_tick_early : float;  (** first clean watchdog window after warmup *)
  words_per_tick_late : float;  (** last clean window *)
  words_per_tick_max : float;  (** worst clean window *)
  reconverge_episodes : int;
  worst_settle_ticks : float;  (** slowest measured episode settling time *)
  baseline_checks : int;
  worst_drift : float;
  final_utility : float;
  final_feasible : bool;
  final_active_tasks : int;
  alerts_raised : int;  (** streaming-monitor raise transitions; 0 without [?monitor] *)
  alerts_cleared : int;
  crashes : int;  (** whole-node crash drills executed *)
  warm_recoveries : int;  (** drills restored from a replayed journal record *)
  cold_recoveries : int;  (** drills that restarted from construction state *)
  journal_replayed : int;  (** journal records accepted across all recoveries *)
  journal_refused : int;  (** journal records refused (torn, malformed, non-finite) *)
  worst_recovery_ticks : int;  (** slowest climb back to Eq. 3/4 feasibility *)
}

val run :
  ?obs:Lla_obs.t ->
  ?monitor:Lla_obs.Monitor.t ->
  ?engine:Lla_runtime.Engine.t ->
  ?journal:Lla_durable.Journal.t ->
  ?on_progress:(tick:int -> unit) ->
  config ->
  (report, string) result
(** [Error] on scenario/kernel construction failure. [on_progress] fires
    at every watchdog sample. With [?obs], soak-level transitions land
    in the trace ([Watchdog_trip], [Safe_mode_entered]/[Exited],
    ["soak.degrade"]/["soak.recover"]/["soak.chaos_window"] notes) —
    attach an {!Lla_obs.Rotate} sink for disk-bounded capture.

    With [?monitor], the harness feeds the streaming monitor at the
    health cadence (kernel utility + the Eq. 3/4 feasibility halves),
    refreshes the kernel gauges ({!Lla_scale.Kernel.publish_metrics})
    and hands it every {!Lla_baseline} checkpoint as the drift
    reference; alert transitions are emitted into the [?obs] trace. The
    rolling-health oracles themselves are built on the same
    {!Lla_obs.Monitor} primitives ([Streak] for the sustained Eq. 3/4
    budgets, [Probe] for reconvergence settling), so judged behaviour
    is identical with or without a monitor attached — feeding it only
    reads kernel state.

    With [?journal], the iterate is journaled at the [journal_every]
    cadence and each [crash_every] drill replays it through
    {!Lla_durable.Recovery} — warm when the last good record restores
    ({!Lla_scale.Kernel.restore_iterate} refuses non-finite components),
    cold otherwise. Recovery progress feeds
    {!Lla_obs.Monitor.observe_recovery} (the [recovery_stuck] alert)
    when a monitor is attached; a recovery still infeasible past
    [sustain_budget + reconverge_budget] ticks is an oracle violation.
    Omitting [?journal] (and both cadences) keeps the run byte-identical
    to earlier releases.

    With [?engine], the tick loop runs as scheduled events on the
    engine's shard-0 core (1 tick = 1 ms of engine time) instead of a
    plain loop — every tick makes the same decisions either way, so
    reports agree field-for-field modulo the wall-clock and memory
    entries. The caller keeps ownership: shut a domains engine down
    after the run. *)

val render : report -> string
(** Multi-line human-readable summary. *)
