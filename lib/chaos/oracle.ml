type config = {
  tolerance : float;
  sustained_fraction : float;
  min_violations : int;
  regret_bound : float;
  heal_grace : float;
  lockout_window : float;
  final_tolerance : float;
}

let default_config =
  {
    tolerance = 0.12;
    sustained_fraction = 0.02;
    min_violations = 10;
    regret_bound = 0.08;
    heal_grace = 6000.;
    lockout_window = 10_000.;
    final_tolerance = 0.30;
  }

type recovery_outcome = {
  crashes : int;
  replayed : int;
  refused : int;
  crash_warm : int;
  crash_cold : int;
  resurrected : int;
  idempotent : bool;
  journal_enabled : bool;
}

type outcome = {
  records : Lla_obs.Trace.record list;
  last_fault_end : float;
  end_time : float;
  final_utility : float;
  optimum_utility : float;
  in_safe_mode : bool;
  safe_entries : int;
  warm_restores : int;
  cold_restarts : int;
  outages : int;
  crash_restores : int;
  checkpoints_enabled : bool;
  max_share_violation : float;
  max_path_violation : float;
  recovery : recovery_outcome option;
}

type verdict = { oracle : string; violations : string list }

let pass oracle = { oracle; violations = [] }

let fail oracle violations = { oracle; violations }

(* A merged multi-shard stream interleaves per-shard sequence counters,
   so the single-stream seq-monotonicity oracle would trip on perfectly
   healthy runs (the engine test battery keeps a repro). The calibrated
   merged variant judges what {!Lla_obs.Trace.merge} actually
   guarantees: global time-sortedness. *)
let time_sorted records =
  let rec go = function
    | (a : Lla_obs.Trace.record) :: (b :: _ as rest) -> a.Lla_obs.Trace.at <= b.Lla_obs.Trace.at && go rest
    | _ -> true
  in
  go records

let trace_monotone ~merged o =
  let healthy = if merged then time_sorted o.records else Lla_obs.Invariant.monotone o.records in
  if healthy then pass "trace-monotone"
  else
    fail "trace-monotone"
      [
        (if merged then "merged trace not time-sorted"
         else "trace sequence/time not monotone");
      ]

(* Records carrying Eq. 3/4 operands — the denominator of the sustained
   fraction. *)
let judged_price_records ~from records =
  List.length
    (List.filter
       (fun (r : Lla_obs.Trace.record) ->
         r.at >= from
         &&
         match r.event with
         | Lla_obs.Trace.Price_updated _ | Lla_obs.Trace.Path_price_updated _ -> true
         | _ -> false)
       records)

let constraints_after_heal cfg o =
  let from = o.last_fault_end +. cfg.heal_grace in
  let vs = Lla_obs.Invariant.check_constraints ~tolerance:cfg.tolerance ~from o.records in
  let n = List.length vs in
  let judged = judged_price_records ~from o.records in
  let fraction = if judged = 0 then 0. else float_of_int n /. float_of_int judged in
  if n >= cfg.min_violations && fraction > cfg.sustained_fraction then
    let sample =
      List.filteri (fun i _ -> i < 3) vs
      |> List.map (Format.asprintf "%a" Lla_obs.Invariant.pp_violation)
    in
    fail "constraints-after-heal"
      (Printf.sprintf
         "%d of %d judged price records (%.1f%%) violate Eq.3/4 beyond tol %.2f after t=%.0f"
         n judged (100. *. fraction) cfg.tolerance from
      :: sample)
  else pass "constraints-after-heal"

let safe_mode_causality o =
  if Lla_obs.Invariant.safe_entries_preceded_by_trip o.records then pass "safe-mode-causality"
  else fail "safe-mode-causality" [ "a safe-mode entry without a preceding watchdog trip" ]

(* Time of the last safe-mode entry, when the run ends inside safe mode. *)
let last_safe_entry o =
  List.fold_left
    (fun acc (r : Lla_obs.Trace.record) ->
      match r.event with Lla_obs.Trace.Safe_mode_entered _ -> Some r.at | _ -> acc)
    None o.records

let reconvergence cfg o =
  if o.in_safe_mode then pass "reconvergence"
  else
    let opt = o.optimum_utility in
    let scale = Float.max 1. (Float.abs opt) in
    let gap = (opt -. o.final_utility) /. scale in
    if Float.is_nan o.final_utility then fail "reconvergence" [ "final utility is nan" ]
    else if gap > cfg.regret_bound then
      fail "reconvergence"
        [
          Printf.sprintf "final utility %.4f vs optimum %.4f: relative regret %.4f > bound %.4f"
            o.final_utility opt gap cfg.regret_bound;
        ]
    else pass "reconvergence"

let no_lockout cfg o =
  if not o.in_safe_mode then pass "no-lockout"
  else
    match last_safe_entry o with
    | None -> fail "no-lockout" [ "in safe mode at the end without any recorded entry" ]
    | Some entered ->
        let dwell = o.end_time -. entered in
        if dwell >= cfg.lockout_window then
          fail "no-lockout"
            [
              Printf.sprintf
                "in safe mode for the last %.0f ms (>= lockout window %.0f; entries=%d)" dwell
                cfg.lockout_window o.safe_entries;
            ]
        else pass "no-lockout"

let warm_restore_consistency o =
  let restores = o.warm_restores + o.cold_restarts in
  let vs = ref [] in
  (* node crashes restart every actor without an endpoint outage, so
     their restores are accounted separately *)
  if restores <> o.outages + o.crash_restores then
    vs :=
      Printf.sprintf "restores (%d warm + %d cold) != endpoint outages (%d) + crash restores (%d)"
        o.warm_restores o.cold_restarts o.outages o.crash_restores
      :: !vs;
  if (not o.checkpoints_enabled) && o.warm_restores > 0 then
    vs := Printf.sprintf "%d warm restores with checkpointing disabled" o.warm_restores :: !vs;
  match !vs with [] -> pass "warm-restore-consistency" | vs -> fail "warm-restore-consistency" vs

let recovery o =
  match o.recovery with
  | None -> pass "recovery"
  | Some r ->
      let vs = ref [] in
      if r.resurrected > 0 then
        vs :=
          Printf.sprintf "%d actors resurrected non-finite state after a crash recovery"
            r.resurrected
          :: !vs;
      if not r.idempotent then
        vs := "journal double-replay restored different accepted/refused counts" :: !vs;
      if (not r.journal_enabled) && r.crash_warm > 0 then
        vs :=
          Printf.sprintf "%d warm crash recoveries without a journal (refused state resurrected?)"
            r.crash_warm
          :: !vs;
      if r.crash_warm > 0 && r.replayed = 0 then
        vs :=
          Printf.sprintf "%d warm crash recoveries but 0 journal records replayed" r.crash_warm
          :: !vs;
      match List.rev !vs with [] -> pass "recovery" | vs -> fail "recovery" vs

let final_feasibility cfg o =
  let vs = ref [] in
  if not (Float.is_finite o.max_share_violation) || o.max_share_violation > cfg.final_tolerance
  then
    vs :=
      Printf.sprintf "final Eq.3 excess %.4f > tolerance %.2f" o.max_share_violation
        cfg.final_tolerance
      :: !vs;
  if not (Float.is_finite o.max_path_violation) || o.max_path_violation > cfg.final_tolerance then
    vs :=
      Printf.sprintf "final Eq.4 excess %.4f > tolerance %.2f" o.max_path_violation
        cfg.final_tolerance
      :: !vs;
  match List.rev !vs with [] -> pass "final-feasibility" | vs -> fail "final-feasibility" vs

let evaluate ?(config = default_config) ?(merged = false) o =
  [
    trace_monotone ~merged o;
    constraints_after_heal config o;
    safe_mode_causality o;
    reconvergence config o;
    no_lockout config o;
    warm_restore_consistency o;
    recovery o;
    final_feasibility config o;
  ]

let failures verdicts = List.filter (fun v -> v.violations <> []) verdicts

let ok verdicts = failures verdicts = []

let render verdicts =
  let line v =
    match v.violations with
    | [] -> Printf.sprintf "ok   %s" v.oracle
    | first :: rest ->
        let more = match rest with [] -> "" | _ -> Printf.sprintf " (+%d more)" (List.length rest) in
        Printf.sprintf "FAIL %s: %s%s" v.oracle first more
  in
  String.concat "\n" (List.map line verdicts)
