module Engine = Lla_sim.Engine
module Reng = Lla_runtime.Engine
module Transport = Lla_transport.Transport
module Distributed = Lla_runtime.Distributed
module Rng = Lla_stdx.Rng
module Journal = Lla_durable.Journal

type engine = [ `Sim | `Domains of int ]

type execution = {
  schedule : Schedule.t;
  outcome : Oracle.outcome;
  verdicts : Oracle.verdict list;
}

let workload_of_name name =
  match name with
  | "base" -> Ok (Lla_workloads.Paper_sim.base ())
  | "six" -> Ok (Lla_workloads.Paper_sim.scaled ~copies:2 ())
  | "prototype" -> Ok (Lla_workloads.Prototype.workload ())
  | _ -> (
      match String.index_opt name ':' with
      | Some i when String.sub name 0 i = "random" -> (
          let rest = String.sub name (i + 1) (String.length name - i - 1) in
          match int_of_string_opt rest with
          | Some seed -> Ok (Lla_workloads.Random_gen.generate ~seed ())
          | None -> Error (Printf.sprintf "workload %S: bad random seed" name))
      | _ -> Error (Printf.sprintf "unknown workload %S" name))

(* The offline optimum is a pure function of the workload name; solving it
   takes longer than a whole schedule run, so campaigns share one solve. *)
let optimum_cache : (string, float) Hashtbl.t = Hashtbl.create 4

let optimum_utility name workload =
  match Hashtbl.find_opt optimum_cache name with
  | Some u -> u
  | None ->
      let u = (Lla_baseline.Centralized.solve workload).utility in
      Hashtbl.add optimum_cache name u;
      u

let resilience_of_setup (s : Schedule.setup) =
  if not (s.safe_mode || s.checkpoints || s.health) then None
  else
    let d = Distributed.default_resilience in
    Some
      {
        d with
        Distributed.checkpoint_period = (if s.checkpoints then d.Distributed.checkpoint_period else None);
        health = (if s.health then d.Distributed.health else None);
        safe_mode = (if s.safe_mode then d.Distributed.safe_mode else None);
      }

let step_policy_of_setup (s : Schedule.setup) =
  (* components of a Schedule.Split are leaves by Schedule.make, and the
     adaptive default is itself non-Split, so Step_size.split's
     no-nesting rule holds *)
  let rec policy = function
    | Schedule.Adaptive -> Distributed.default_config.Distributed.step_policy
    | Schedule.Fixed_gamma g -> Lla.Step_size.fixed g
    | Schedule.Split { resource; path } ->
        Lla.Step_size.split ~resource:(policy resource) ~path:(policy path)
  in
  policy s.step

let ( let* ) = Result.bind

(* A schedule exercising the durability axis gets a write-ahead journal
   on a seeded faulty store (the storage-fault windows need a store to
   inject into, and a node crash needs something to recover from).
   Journal-free schedules get no journal at all, so every pre-durability
   schedule replays byte-identically. *)
let uses_durability (sched : Schedule.t) =
  List.exists
    (function Schedule.Node_crash _ | Schedule.Storage_faults _ -> true | _ -> false)
    sched.Schedule.events

let journal_of_schedule ~obs (sched : Schedule.t) =
  if uses_durability sched && sched.Schedule.setup.Schedule.checkpoints then
    Some (Journal.create ~obs (Journal.Store.faulty ~seed:sched.Schedule.setup.Schedule.transport_seed ()))
  else None

let validate_indices (problem : Lla.Problem.t) (sched : Schedule.t) =
  let n_res = Lla.Problem.n_resources problem in
  let n_tasks = Lla.Problem.n_tasks problem in
  let n_sub = Lla.Problem.n_subtasks problem in
  let check what i bound =
    if i >= bound then Error (Printf.sprintf "%s index %d out of range (workload has %d)" what i bound)
    else Ok ()
  in
  let rec go = function
    | [] -> Ok ()
    | e :: rest ->
        let* () =
          match e with
          | Schedule.Partition { agents; controllers; _ } ->
              let rec all what bound = function
                | [] -> Ok ()
                | i :: is ->
                    let* () = check what i bound in
                    all what bound is
              in
              let* () = all "agent" n_res agents in
              all "controller" n_tasks controllers
          | Schedule.Outage { target = Schedule.Agent i; _ } -> check "agent" i n_res
          | Schedule.Outage { target = Schedule.Controller i; _ } -> check "controller" i n_tasks
          | Schedule.Price_poison { resource; _ } -> check "resource" resource n_res
          | Schedule.Error_spike { subtask; _ } -> check "subtask" subtask n_sub
          | Schedule.Faults _ | Schedule.Jitter _ | Schedule.Node_crash _
          | Schedule.Storage_faults _ ->
              Ok ()
        in
        go rest
  in
  go sched.Schedule.events

(* Fault and jitter windows may overlap; rather than trying to unwind
   them in closing order we precompute every window boundary and, at each
   one, set the transport to the element-wise max of all windows active
   at that instant (plus the transport's configured base faults).
   Parameterized over how a write is scheduled and applied so the same
   boundary computation drives the single-transport engine path and the
   all-shard-transports domains path. *)
let apply_windows_via ~schedule_at ~set_faults ~set_jitter ~base (events : Schedule.event list) =
  let fault_windows =
    List.filter_map
      (function
        | Schedule.Faults { at; duration; faults } -> Some (at, at +. duration, faults) | _ -> None)
      events
  in
  let jitter_windows =
    List.filter_map
      (function
        | Schedule.Jitter { at; duration; spread } -> Some (at, at +. duration, spread) | _ -> None)
      events
  in
  let faults_at t0 =
    List.fold_left
      (fun (acc : Transport.faults) (s, e, f) ->
        if s <= t0 && t0 < e then
          {
            Transport.drop = Float.max acc.Transport.drop f.Transport.drop;
            duplicate = Float.max acc.Transport.duplicate f.Transport.duplicate;
            reorder = Float.max acc.Transport.reorder f.Transport.reorder;
            reorder_spread = Float.max acc.Transport.reorder_spread f.Transport.reorder_spread;
          }
        else acc)
      base fault_windows
  in
  let jitter_at t0 =
    List.fold_left (fun acc (s, e, sp) -> if s <= t0 && t0 < e then Float.max acc sp else acc) 0.
      jitter_windows
  in
  let boundaries windows =
    List.sort_uniq Float.compare (List.concat_map (fun (s, e, _) -> [ s; e ]) windows)
  in
  List.iter (fun b -> schedule_at b (fun () -> set_faults (faults_at b))) (boundaries fault_windows);
  List.iter (fun b -> schedule_at b (fun () -> set_jitter (jitter_at b))) (boundaries jitter_windows)

let apply_windows engine transport (events : Schedule.event list) =
  apply_windows_via
    ~schedule_at:(fun b f -> ignore (Engine.schedule engine ~at:b (fun _ -> f ())))
    ~set_faults:(Transport.set_faults transport)
    ~set_jitter:(Transport.set_extra_jitter transport)
    ~base:(Transport.active_faults transport) events

(* Judge a drained run: final latencies/offsets, Eq. 3/4 excesses, and
   the oracle verdicts. Shared verbatim between the engine paths — the
   only inputs that differ are where the records, outage counts and the
   final clock come from. *)
let finish ~oracle ~merged ~sched ~workload ~problem ~dist ~records ~outages ~end_time =
  let subtask_id i = problem.Lla.Problem.subtasks.(i).Lla.Problem.sid in
  let n_sub = Lla.Problem.n_subtasks problem in
  let lat = Array.init n_sub (fun i -> Distributed.latency dist (subtask_id i)) in
  let offsets = Array.init n_sub (fun i -> Distributed.error_offset dist (subtask_id i)) in
  let relative_excess value bound =
    let e = (value -. bound) /. bound in
    if Float.is_finite e then Float.max 0. e else infinity
  in
  let max_share_violation = ref 0. in
  for r = 0 to Lla.Problem.n_resources problem - 1 do
    let sum = Lla.Problem.share_sum problem r ~lat ~offsets in
    max_share_violation :=
      Float.max !max_share_violation (relative_excess sum problem.Lla.Problem.capacities.(r))
  done;
  let max_path_violation = ref 0. in
  for p = 0 to Lla.Problem.n_paths problem - 1 do
    let l = Lla.Problem.path_latency problem p ~lat in
    max_path_violation :=
      Float.max !max_path_violation
        (relative_excess l problem.Lla.Problem.paths.(p).Lla.Problem.critical_time)
  done;
  let setup = sched.Schedule.setup in
  let cs = Distributed.crash_stats dist in
  let outcome =
    {
      Oracle.records;
      last_fault_end = Schedule.last_fault_end sched;
      end_time;
      final_utility = Distributed.utility dist;
      optimum_utility = optimum_utility sched.Schedule.workload workload;
      in_safe_mode = Distributed.in_safe_mode dist;
      safe_entries = Distributed.safe_entries dist;
      warm_restores = Distributed.warm_restores dist;
      cold_restarts = Distributed.cold_restarts dist;
      outages;
      crash_restores = cs.Distributed.warm + cs.Distributed.cold;
      checkpoints_enabled = setup.Schedule.checkpoints;
      max_share_violation = !max_share_violation;
      max_path_violation = !max_path_violation;
      recovery =
        Some
          {
            Oracle.crashes = cs.Distributed.crashes;
            replayed = cs.Distributed.replayed;
            refused = cs.Distributed.refused;
            crash_warm = cs.Distributed.warm;
            crash_cold = cs.Distributed.cold;
            resurrected = cs.Distributed.resurrected;
            idempotent = cs.Distributed.idempotent;
            journal_enabled = Distributed.journal_enabled dist;
          };
    }
  in
  Ok { schedule = sched; outcome; verdicts = Oracle.evaluate ~config:oracle ~merged outcome }

(* Domains-parallel execution of a schedule: same workload, setup and
   events, deployed with [Distributed.create_on] on an
   [Engine_domains]. Faults, partitions and outages flow through the
   per-shard transports (shadow endpoints included); poisons, spikes and
   window boundaries run as barrier ops; the oracles judge the merged
   trace with the order-calibrated variant. *)
let run_schedule_domains ~oracle ~domains (sched : Schedule.t) =
  let* workload = workload_of_name sched.Schedule.workload in
  let problem = Lla.Problem.compile workload in
  let* () = validate_indices problem sched in
  let setup = sched.Schedule.setup in
  let engine_h = Reng.domains ~domains () in
  let obs = Lla_obs.create () in
  let tconfig = { Transport.default_config with Transport.seed = setup.Schedule.transport_seed } in
  let config =
    { Distributed.default_config with Distributed.step_policy = step_policy_of_setup setup }
  in
  let journal = journal_of_schedule ~obs sched in
  let dist =
    match resilience_of_setup setup with
    | Some resilience ->
        Distributed.create_on ~obs ~config ~resilience ?journal ~transport_config:tconfig engine_h
          workload
    | None -> Distributed.create_on ~obs ~config ~transport_config:tconfig engine_h workload
  in
  let result =
    apply_windows_via
      ~schedule_at:(fun b f -> Distributed.schedule_injection dist ~at:b f)
      ~set_faults:(Distributed.set_faults_all dist)
      ~set_jitter:(Distributed.set_extra_jitter_all dist)
      ~base:(Transport.active_faults (Distributed.transports dist).(0))
      sched.Schedule.events;
    List.iter
      (fun e ->
        match e with
        | Schedule.Faults _ | Schedule.Jitter _ -> ()
        | Schedule.Partition { at; duration; agents; controllers } ->
            Distributed.partition dist ~at ~duration ~agents ~controllers
        | Schedule.Outage { at; duration; target } ->
            let tr, ep =
              match target with
              | Schedule.Agent i ->
                  Distributed.agent_home dist problem.Lla.Problem.resource_ids.(i)
              | Schedule.Controller i ->
                  Distributed.controller_home dist problem.Lla.Problem.tasks.(i).Lla.Problem.tid
            in
            Transport.schedule_outage tr ep ~at ~duration
        | Schedule.Price_poison { at; resource; value } ->
            let rid = problem.Lla.Problem.resource_ids.(resource) in
            Distributed.schedule_injection dist ~at (fun () ->
                Distributed.poison_price dist rid value)
        | Schedule.Error_spike { at; duration; subtask; magnitude } ->
            let sid = problem.Lla.Problem.subtasks.(subtask).Lla.Problem.sid in
            Distributed.schedule_injection dist ~at (fun () ->
                Distributed.set_error_offset dist sid magnitude);
            Distributed.schedule_injection dist ~at:(at +. duration) (fun () ->
                Distributed.set_error_offset dist sid 0.)
        | Schedule.Node_crash { at } ->
            (* barrier op: every shard is at rest when the node dies *)
            Distributed.schedule_injection dist ~at (fun () -> Distributed.crash_restart dist)
        | Schedule.Storage_faults { at; duration; storage } -> (
            match journal with
            | None -> ()
            | Some j ->
                let store = Journal.store j in
                Distributed.schedule_injection dist ~at (fun () ->
                    Journal.Store.set_faults store storage);
                Distributed.schedule_injection dist ~at:(at +. duration) (fun () ->
                    Journal.Store.set_faults store Journal.Store.no_faults)))
      sched.Schedule.events;
    Distributed.run dist ~duration:(Schedule.duration sched);
    Distributed.stop dist;
    Reng.drain engine_h;
    let outages =
      Array.fold_left
        (fun acc tr ->
          List.fold_left (fun acc ep -> acc + Transport.outages tr ep) acc (Transport.endpoints tr))
        0 (Distributed.transports dist)
    in
    finish ~oracle ~merged:true ~sched ~workload ~problem ~dist
      ~records:(Distributed.merged_records dist) ~outages ~end_time:(Reng.now engine_h)
  in
  (* Worker domains are a bounded OS resource: always release them, even
     though [result] is built eagerly above. *)
  Reng.shutdown engine_h;
  result

let run_schedule ?(oracle = Oracle.default_config) ?(engine = (`Sim : engine))
    (sched : Schedule.t) =
  match engine with
  | `Domains domains -> run_schedule_domains ~oracle ~domains sched
  | `Sim ->
  let* workload = workload_of_name sched.Schedule.workload in
  let problem = Lla.Problem.compile workload in
  let* () = validate_indices problem sched in
  let setup = sched.Schedule.setup in
  let engine = Engine.create () in
  let obs = Lla_obs.create () in
  let sink, collected = Lla_obs.Trace.memory_sink () in
  Lla_obs.Trace.attach obs.Lla_obs.trace sink;
  let tconfig = { Transport.default_config with Transport.seed = setup.Schedule.transport_seed } in
  let transport = Transport.create ~obs ~config:tconfig engine in
  let config =
    { Distributed.default_config with Distributed.step_policy = step_policy_of_setup setup }
  in
  let journal = journal_of_schedule ~obs sched in
  let dist =
    match resilience_of_setup setup with
    | Some resilience ->
        Distributed.create ~obs ~config ~resilience ?journal ~transport engine workload
    | None -> Distributed.create ~obs ~config ~transport engine workload
  in
  let agent_ep i = Distributed.agent_endpoint dist problem.Lla.Problem.resource_ids.(i) in
  let controller_ep i =
    Distributed.controller_endpoint dist problem.Lla.Problem.tasks.(i).Lla.Problem.tid
  in
  let subtask_id i = problem.Lla.Problem.subtasks.(i).Lla.Problem.sid in
  apply_windows engine transport sched.Schedule.events;
  List.iter
    (fun e ->
      match e with
      | Schedule.Faults _ | Schedule.Jitter _ -> ()
      | Schedule.Partition { at; duration; agents; controllers } ->
          let group_a = List.map agent_ep agents @ List.map controller_ep controllers in
          let in_a ep = List.memq ep group_a in
          let group_b = List.filter (fun ep -> not (in_a ep)) (Transport.endpoints transport) in
          Transport.partition transport ~at ~duration ~group_a ~group_b
      | Schedule.Outage { at; duration; target } ->
          let ep =
            match target with Schedule.Agent i -> agent_ep i | Schedule.Controller i -> controller_ep i
          in
          Transport.schedule_outage transport ep ~at ~duration
      | Schedule.Price_poison { at; resource; value } ->
          let rid = problem.Lla.Problem.resource_ids.(resource) in
          ignore (Engine.schedule engine ~at (fun _ -> Distributed.poison_price dist rid value))
      | Schedule.Error_spike { at; duration; subtask; magnitude } ->
          let sid = subtask_id subtask in
          ignore (Engine.schedule engine ~at (fun _ -> Distributed.set_error_offset dist sid magnitude));
          ignore
            (Engine.schedule engine ~at:(at +. duration) (fun _ ->
                 Distributed.set_error_offset dist sid 0.))
      | Schedule.Node_crash { at } ->
          ignore (Engine.schedule engine ~at (fun _ -> Distributed.crash_restart dist))
      | Schedule.Storage_faults { at; duration; storage } -> (
          match journal with
          | None -> ()
          | Some j ->
              let store = Journal.store j in
              ignore (Engine.schedule engine ~at (fun _ -> Journal.Store.set_faults store storage));
              ignore
                (Engine.schedule engine ~at:(at +. duration) (fun _ ->
                     Journal.Store.set_faults store Journal.Store.no_faults))))
    sched.Schedule.events;
  Distributed.run dist ~duration:(Schedule.duration sched);
  Distributed.stop dist;
  (* Drain: deliver in-flight messages and fire any fault events scheduled
     past the horizon (outage restarts, window closings) so the run ends
     in a quiescent, fully healed state. *)
  Engine.run engine ();
  let outages =
    List.fold_left (fun acc ep -> acc + Transport.outages transport ep) 0
      (Transport.endpoints transport)
  in
  finish ~oracle ~merged:false ~sched ~workload ~problem ~dist ~records:(collected ()) ~outages
    ~end_time:(Engine.now engine)

(* ---------- generator ---------- *)

let gen_horizon = 16_000.

let gen_settle = 20_000.

let counts_cache : (string, int * int * int) Hashtbl.t = Hashtbl.create 4

let counts name =
  match Hashtbl.find_opt counts_cache name with
  | Some c -> c
  | None ->
      let workload = Result.get_ok (workload_of_name name) in
      let p = Lla.Problem.compile workload in
      let c = (Lla.Problem.n_resources p, Lla.Problem.n_tasks p, Lla.Problem.n_subtasks p) in
      Hashtbl.add counts_cache name c;
      c

let poison_values = [| Float.nan; Float.infinity; 1e9; 1e4; 0.; -10. |]

let distinct_indices rng ~n ~bound =
  let all = Array.init bound Fun.id in
  Rng.shuffle rng all;
  Array.to_list (Array.sub all 0 (min n bound))

let generate ?(fragile = false) ~seed () =
  let workload = "base" in
  let n_res, n_tasks, n_sub = counts workload in
  let rng = Rng.create ~seed in
  let window rng =
    let at = Rng.uniform rng ~lo:1_000. ~hi:(0.55 *. gen_horizon) in
    let duration = Rng.uniform rng ~lo:400. ~hi:(Float.min 4_000. ((0.85 *. gen_horizon) -. at)) in
    (at, duration)
  in
  let n_events = 1 + Rng.int rng ~bound:4 in
  let events =
    List.init n_events (fun _ ->
        match Rng.int rng ~bound:8 with
        | 0 ->
            let at, duration = window rng in
            Schedule.Faults
              {
                at;
                duration;
                faults =
                  {
                    Transport.drop = Rng.uniform rng ~lo:0. ~hi:0.3;
                    duplicate = Rng.uniform rng ~lo:0. ~hi:0.15;
                    reorder = Rng.uniform rng ~lo:0. ~hi:0.3;
                    reorder_spread = Rng.uniform rng ~lo:2. ~hi:20.;
                  };
              }
        | 1 ->
            let at, duration = window rng in
            Schedule.Jitter { at; duration; spread = Rng.uniform rng ~lo:0.5 ~hi:12. }
        | 2 ->
            let at, duration = window rng in
            let agents = distinct_indices rng ~n:(1 + Rng.int rng ~bound:3) ~bound:n_res in
            let controllers = distinct_indices rng ~n:(Rng.int rng ~bound:2) ~bound:n_tasks in
            Schedule.Partition { at; duration; agents; controllers }
        | 3 ->
            let at, _ = window rng in
            let duration = Rng.uniform rng ~lo:300. ~hi:2_500. in
            let target =
              if Rng.bool rng then Schedule.Agent (Rng.int rng ~bound:n_res)
              else Schedule.Controller (Rng.int rng ~bound:n_tasks)
            in
            Schedule.Outage { at; duration; target }
        | 4 ->
            let at, _ = window rng in
            Schedule.Price_poison
              { at; resource = Rng.int rng ~bound:n_res; value = Rng.pick rng poison_values }
        | 5 ->
            let at, _ = window rng in
            let duration = Rng.uniform rng ~lo:400. ~hi:3_000. in
            Schedule.Error_spike
              {
                at;
                duration;
                subtask = Rng.int rng ~bound:n_sub;
                magnitude = Rng.uniform rng ~lo:0.5 ~hi:6.;
              }
        | 6 ->
            let at, _ = window rng in
            Schedule.Node_crash { at }
        | _ ->
            (* short_read stays off here: a short read during recovery
               can legitimately truncate past durable bytes, which makes
               double-replay comparison meaningless; the unit battery
               exercises it instead *)
            let at, duration = window rng in
            Schedule.Storage_faults
              {
                at;
                duration;
                storage =
                  {
                    Journal.Store.torn_write = Rng.uniform rng ~lo:0. ~hi:1.;
                    bit_flip = Rng.uniform rng ~lo:0. ~hi:0.08;
                    drop_sync = Rng.uniform rng ~lo:0. ~hi:0.4;
                    short_read = 0.;
                    fail_write = Rng.uniform rng ~lo:0. ~hi:0.05;
                  };
              })
  in
  let setup =
    if fragile then Schedule.fragile_setup (Rng.uniform rng ~lo:24. ~hi:72.) seed
    else { Schedule.robust_setup with Schedule.transport_seed = seed }
  in
  Schedule.make ~setup ~workload ~horizon:gen_horizon ~settle:gen_settle events

(* ---------- shrinker ---------- *)

let failing_oracles verdicts = List.map (fun v -> v.Oracle.oracle) (Oracle.failures verdicts)

let reproduces ?oracle ?engine ~failing sched =
  match run_schedule ?oracle ?engine sched with
  | Error _ -> false
  | Ok exec -> List.exists (fun o -> List.mem o failing) (failing_oracles exec.verdicts)

(* Candidate simplifications of a single event, roughly most-aggressive
   first. Dropping the event entirely is ddmin's job, not ours. *)
let simplify_event (e : Schedule.event) =
  let halved v = v /. 2. in
  match e with
  | Schedule.Faults { at; duration; faults } ->
      let with_f f = Schedule.Faults { at; duration; faults = f } in
      List.concat
        [
          (if duration > 500. then [ Schedule.Faults { at; duration = halved duration; faults } ] else []);
          (if faults.Transport.duplicate > 0. then [ with_f { faults with Transport.duplicate = 0. } ]
           else []);
          (if faults.Transport.reorder > 0. then
             [ with_f { faults with Transport.reorder = 0.; reorder_spread = 0. } ]
           else []);
          (if faults.Transport.drop > 0.02 then
             [ with_f { faults with Transport.drop = halved faults.Transport.drop } ]
           else []);
        ]
  | Schedule.Jitter { at; duration; spread } ->
      List.concat
        [
          (if duration > 500. then [ Schedule.Jitter { at; duration = halved duration; spread } ] else []);
          (if spread > 0.5 then [ Schedule.Jitter { at; duration; spread = halved spread } ] else []);
        ]
  | Schedule.Partition { at; duration; agents; controllers } ->
      let drop_one = function [] | [ _ ] -> [] | _ :: rest -> [ rest ] in
      List.concat
        [
          (if duration > 500. then
             [ Schedule.Partition { at; duration = halved duration; agents; controllers } ]
           else []);
          (if controllers <> [] && agents <> [] then
             [ Schedule.Partition { at; duration; agents; controllers = [] } ]
           else []);
          List.map
            (fun agents -> Schedule.Partition { at; duration; agents; controllers })
            (drop_one agents);
        ]
  | Schedule.Outage { at; duration; target } ->
      if duration > 300. then [ Schedule.Outage { at; duration = halved duration; target } ] else []
  | Schedule.Price_poison { at; resource; value } ->
      if Float.is_finite value then [] else [ Schedule.Price_poison { at; resource; value = 1e9 } ]
  | Schedule.Error_spike { at; duration; subtask; magnitude } ->
      List.concat
        [
          (if magnitude > 0.5 then
             [ Schedule.Error_spike { at; duration; subtask; magnitude = halved magnitude } ]
           else []);
          (if duration > 400. then
             [ Schedule.Error_spike { at; duration = halved duration; subtask; magnitude } ]
           else []);
        ]
  | Schedule.Node_crash _ -> []
  | Schedule.Storage_faults { at; duration; storage } ->
      let with_s s = Schedule.Storage_faults { at; duration; storage = s } in
      List.concat
        [
          (if duration > 500. then
             [ Schedule.Storage_faults { at; duration = halved duration; storage } ]
           else []);
          (if storage.Journal.Store.bit_flip > 0. then
             [ with_s { storage with Journal.Store.bit_flip = 0. } ]
           else []);
          (if storage.Journal.Store.fail_write > 0. then
             [ with_s { storage with Journal.Store.fail_write = 0. } ]
           else []);
          (if storage.Journal.Store.drop_sync > 0.02 then
             [ with_s { storage with Journal.Store.drop_sync = halved storage.Journal.Store.drop_sync } ]
           else []);
          (if storage.Journal.Store.torn_write > 0.02 then
             [ with_s { storage with Journal.Store.torn_write = halved storage.Journal.Store.torn_write } ]
           else []);
        ]

let shrink ?oracle ?engine ?(max_attempts = 120) ~failing (sched : Schedule.t) =
  let attempts = ref 0 in
  let test events =
    if !attempts >= max_attempts then false
    else begin
      incr attempts;
      reproduces ?oracle ?engine ~failing { sched with Schedule.events }
    end
  in
  (* ddmin over the event list. *)
  let split_chunks events n =
    let len = List.length events in
    let arr = Array.of_list events in
    let base = len / n and extra = len mod n in
    let chunks = ref [] in
    let pos = ref 0 in
    for i = 0 to n - 1 do
      let size = base + if i < extra then 1 else 0 in
      if size > 0 then chunks := Array.to_list (Array.sub arr !pos size) :: !chunks;
      pos := !pos + size
    done;
    List.rev !chunks
  in
  let rec ddmin events n =
    let len = List.length events in
    if len <= 1 then events
    else
      let n = min n len in
      let chunks = split_chunks events n in
      match List.find_opt test chunks with
      | Some chunk -> ddmin chunk 2
      | None -> (
          let complements =
            if n <= 2 then [] (* complements duplicate the chunks at n = 2 *)
            else List.mapi (fun i _ -> List.concat (List.filteri (fun j _ -> j <> i) chunks)) chunks
          in
          match List.find_opt test complements with
          | Some complement -> ddmin complement (max (n - 1) 2)
          | None -> if n < len then ddmin events (min len (2 * n)) else events)
  in
  let events = ddmin sched.Schedule.events 2 in
  (* Per-event value shrinking to a fixpoint (or until the budget runs out). *)
  let current = ref events in
  let progress = ref true in
  while !progress && !attempts < max_attempts do
    progress := false;
    let arr = Array.of_list !current in
    Array.iteri
      (fun i e ->
        if not !progress then
          match
            List.find_opt
              (fun candidate ->
                let arr' = Array.copy arr in
                arr'.(i) <- candidate;
                test (Array.to_list arr'))
              (simplify_event e)
          with
          | Some candidate ->
              let arr' = Array.copy arr in
              arr'.(i) <- candidate;
              current := Array.to_list arr';
              progress := true
          | None -> ())
      arr
  done;
  let shrunk = { sched with Schedule.events = !current } in
  (* [make] re-sorts and re-validates; shrinking never invalidates, but
     keep the artifact canonical. *)
  Schedule.make ~setup:shrunk.Schedule.setup ~workload:shrunk.Schedule.workload
    ~horizon:shrunk.Schedule.horizon ~settle:shrunk.Schedule.settle shrunk.Schedule.events

(* ---------- campaign loop ---------- *)

type failure = {
  run_index : int;
  run_seed : int;
  oracles : string list;
  schedule : Schedule.t;
  shrunk : Schedule.t;
  repro_path : string option;
  shrunk_path : string option;
}

type summary = {
  runs : int;
  base_seed : int;
  fragile : bool;
  failures : failure list;
  report : string;
}

let ensure_dir dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let run ?oracle ?engine ?(fragile = false) ?shrink_attempts ?out ~runs ~seed () =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  let failures = ref [] in
  for i = 0 to runs - 1 do
    let run_seed = seed + i in
    let sched = generate ~fragile ~seed:run_seed () in
    let roundtrip_ok =
      match Schedule.of_string (Schedule.to_string sched) with
      | Ok back -> Schedule.equal back sched
      | Error _ -> false
    in
    let n_events = List.length sched.Schedule.events in
    if not roundtrip_ok then begin
      line "run %02d seed %d: FAIL [codec-roundtrip] (events=%d)" i run_seed n_events;
      failures :=
        {
          run_index = i;
          run_seed;
          oracles = [ "codec-roundtrip" ];
          schedule = sched;
          shrunk = sched;
          repro_path = None;
          shrunk_path = None;
        }
        :: !failures
    end
    else
      match run_schedule ?oracle ?engine sched with
      | Error msg -> line "run %02d seed %d: ERROR %s" i run_seed msg
      | Ok exec -> (
          match failing_oracles exec.verdicts with
          | [] -> line "run %02d seed %d: ok (events=%d)" i run_seed n_events
          | failing ->
              line "run %02d seed %d: FAIL [%s] (events=%d)" i run_seed (String.concat "," failing)
                n_events;
              let shrunk = shrink ?oracle ?engine ?max_attempts:shrink_attempts ~failing sched in
              let repro_path, shrunk_path =
                match out with
                | None -> (None, None)
                | Some dir ->
                    ensure_dir dir;
                    let repro = Filename.concat dir (Printf.sprintf "repro-%d.json" run_seed) in
                    let min_repro =
                      Filename.concat dir (Printf.sprintf "repro-%d.min.json" run_seed)
                    in
                    Schedule.save sched ~path:repro;
                    Schedule.save shrunk ~path:min_repro;
                    (Some repro, Some min_repro)
              in
              failures :=
                { run_index = i; run_seed; oracles = failing; schedule = sched; shrunk; repro_path; shrunk_path }
                :: !failures)
  done;
  let failures = List.rev !failures in
  line "campaign: %d/%d runs passed (seed %d%s)" (runs - List.length failures) runs seed
    (if fragile then ", fragile setup" else "");
  { runs; base_seed = seed; fragile; failures; report = Buffer.contents buf }

let replay ?oracle ?engine ~path () =
  let* sched = Schedule.load ~path in
  run_schedule ?oracle ?engine sched
