(** Invariant and liveness oracles judged over a completed schedule run.

    The safety oracles reuse {!Lla_obs.Invariant} replay checks over the
    collected trace; the liveness oracles judge the {e outcome} — state
    the runner extracted after the engine drained ({!outcome}). Every
    oracle is pure, so a verdict is reproducible from a saved run.

    Calibration note: the distributed iteration is a dual method — even a
    fault-free trajectory transiently overshoots Eq. 3/4 by ~10% on
    single ticks (the invariant tests hold the healthy runtime to a 10%
    band), and a recovering run spikes higher for isolated rounds. The
    trace oracle therefore fails on {e sustained} violation (a fraction
    of judged records), not on any single sample, and lockout means
    {e dwelling} in safe mode, not touching it.

    Semantics (each oracle names the property it defends):

    - [trace-monotone]: the trace stream is well-formed
      ({!Lla_obs.Invariant.monotone}) — a meta-oracle; its failure voids
      the others.
    - [constraints-after-heal]: among trace records after
      [last_fault_end + heal_grace], the Eq. 3/4 violations (within
      [tolerance], via {!Lla_obs.Invariant.check_constraints}) must stay
      below [min_violations] {e and} [sustained_fraction] of the judged
      price records — transient overshoot is the method, persistent
      infeasibility is a bug. A poison value leaking into steady state
      violates on every round and is caught by the same rule.
    - [safe-mode-causality]: every safe-mode entry is preceded by a
      watchdog trip ({!Lla_obs.Invariant.safe_entries_preceded_by_trip}).
    - [reconvergence]: the final utility is within [regret_bound]
      (relative) of the offline optimum from {!Lla_baseline.Centralized}
      — the paper's convergence claim must survive the faults once they
      heal. Skipped while the run ends inside a safe-mode dwell (the
      fallback trades optimality for feasibility; [no-lockout] bounds
      the dwell).
    - [no-lockout]: a run may end {e inside} a safe-mode cycle, but not
      after dwelling there for the last [lockout_window] ms — that is
      permanent degradation.
    - [warm-restore-consistency]: every actor restart produced exactly one
      restore, warm or cold ([warm + cold = outages + crash_restores] —
      a node crash restarts every actor without an endpoint outage);
      with checkpointing disabled every restore is cold.
    - [recovery]: crash-recovery hygiene, judged when the runner filled
      {!outcome.recovery} (runs exercising {!Schedule.Node_crash}): no
      actor resurrects non-finite state after a recovery, journal
      double-replay restores identical accepted/refused counts
      (idempotence), warm crash recoveries require a journal and at
      least one replayed record. Vacuously passes otherwise.
    - [final-feasibility]: the enacted latency assignment at the end of
      the run satisfies Eq. 3/4 within [final_tolerance] — whatever mode
      the system landed in, the {e plant} must be left near-feasible.
      [final_tolerance] is wider than [tolerance] because the run ends at
      an arbitrary phase of the iteration's oscillation envelope. *)

type config = {
  tolerance : float;  (** per-record Eq. 3/4 slack, default 0.12. *)
  sustained_fraction : float;
      (** violating fraction of judged price records that counts as
          sustained, default 0.02. *)
  min_violations : int;
      (** absolute violation count below which the fraction is moot,
          default 10. *)
  regret_bound : float;  (** relative utility gap to the optimum, default 0.08. *)
  heal_grace : float;
      (** ms after the last fault heals before the trace oracle judges,
          default 6000. *)
  lockout_window : float;
      (** ending inside a safe-mode dwell at least this long (ms) is a
          lockout, default 10000. *)
  final_tolerance : float;  (** slack on the final enacted point, default 0.30. *)
}

val default_config : config

type recovery_outcome = {
  crashes : int;  (** whole-node crash drills executed. *)
  replayed : int;  (** journal records accepted across recoveries. *)
  refused : int;  (** journal records refused (non-finite, malformed). *)
  crash_warm : int;  (** actors warm-restored after node crashes. *)
  crash_cold : int;  (** actors cold-reset after node crashes. *)
  resurrected : int;  (** actors left with non-finite state post-recovery. *)
  idempotent : bool;  (** double-replay stability (see {!Lla_runtime.Distributed.crash_stats}). *)
  journal_enabled : bool;
}

type outcome = {
  records : Lla_obs.Trace.record list;  (** complete trace (memory sink). *)
  last_fault_end : float;
  end_time : float;  (** engine clock when the run drained. *)
  final_utility : float;
  optimum_utility : float;  (** offline optimum for the same workload. *)
  in_safe_mode : bool;  (** at the end of the run. *)
  safe_entries : int;
  warm_restores : int;
  cold_restarts : int;
  outages : int;  (** endpoint crashes over the whole run. *)
  crash_restores : int;
      (** actor restores attributable to whole-node crash drills
          (crash_warm + crash_cold); 0 when the schedule has none. *)
  checkpoints_enabled : bool;
  max_share_violation : float;
      (** worst relative Eq. 3 excess of the final assignment (0 = feasible). *)
  max_path_violation : float;  (** worst relative Eq. 4 excess, same convention. *)
  recovery : recovery_outcome option;
      (** crash-drill accounting; [None] when the runner does not
          exercise node crashes (the [recovery] oracle then passes
          vacuously). *)
}

type verdict = { oracle : string; violations : string list }
(** Empty [violations] = pass. *)

val evaluate : ?config:config -> ?merged:bool -> outcome -> verdict list
(** All oracles, in a fixed order. [merged] (default [false]) calibrates
    the order-sensitive [trace-monotone] oracle for records assembled by
    {!Lla_obs.Trace.merge} from several per-shard streams: per-shard
    sequence counters interleave in a healthy merged stream, so only
    global time-sortedness is judged there. All other oracles are
    order-insensitive and run unchanged. *)

val failures : verdict list -> verdict list

val ok : verdict list -> bool

val render : verdict list -> string
(** One line per oracle: [ok <name>] or [FAIL <name>: <first violation>
    (+n more)]. Deterministic. *)
