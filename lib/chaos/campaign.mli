(** Randomized fault campaigns: generate schedules, run them against the
    distributed deployment, judge them with the {!Oracle} suite, and
    shrink any failure to a minimal replayable reproducer.

    Everything here is deterministic: a campaign is fully described by
    [(runs, seed, fragile)] — run [i] executes the schedule generated
    from [seed + i] — and the summary {!summary.report} is byte-identical
    across invocations (it contains no wall-clock times and no
    filesystem paths). *)

type engine = [ `Sim | `Domains of int ]
(** Execution engine for a schedule run. [`Sim] (the default everywhere)
    is the deterministic single-threaded simulator; [`Domains n] deploys
    the same schedule with {!Lla_runtime.Distributed.create_on} on an
    [n]-domain deterministic-merge {!Lla_runtime.Engine_domains}, judging
    the merged per-shard trace with the order-calibrated oracles
    ({!Oracle.evaluate} [~merged:true]). *)

type execution = {
  schedule : Schedule.t;
  outcome : Oracle.outcome;
  verdicts : Oracle.verdict list;
}

val workload_of_name : string -> (Lla_model.Workload.t, string) result
(** ["base"] (the paper's 3-task workload), ["six"] (two copies),
    ["prototype"], or ["random:<seed>"] ({!Lla_workloads.Random_gen}). *)

val run_schedule :
  ?oracle:Oracle.config -> ?engine:engine -> Schedule.t -> (execution, string) result
(** Execute one schedule: resolve and compile its workload (validating
    every event index against it), build a fresh engine + traced
    deployment with the schedule's {!Schedule.setup}, inject the events,
    drive the engine for {!Schedule.duration}, stop the runtime, drain
    the remaining in-flight messages, and judge the outcome. [Error] on
    an unknown workload or an out-of-range index; oracle verdicts (even
    all-failing ones) are [Ok].

    The offline optimum ({!Lla_baseline.Centralized}) is computed once
    per workload name and cached for the process lifetime.

    Under [`Domains n] the transport-level events apply to every shard
    transport (fault/jitter windows via barrier ops, partitions across
    real and shadow endpoints, outages on the target's home transport),
    and the run drains and joins its worker domains before judging. *)

val generate : ?fragile:bool -> seed:int -> unit -> Schedule.t
(** Sample a random schedule on the ["base"] workload: 1–4 events drawn
    from all six event kinds with bounded severities (drop ≤ 0.3,
    partitions ≤ 3 actors, outages ≤ 2.5 s, ...). [fragile] (default
    [false]) swaps the {!Schedule.robust_setup} for
    {!Schedule.fragile_setup} with an aggressive sampled fixed step —
    the deliberately breakable deployment used to prove the oracles
    bite. Same [seed] (and flag), same schedule. *)

val reproduces :
  ?oracle:Oracle.config -> ?engine:engine -> failing:string list -> Schedule.t -> bool
(** Does running the schedule fail at least one of the named oracles?
    [false] on runner errors. *)

val shrink :
  ?oracle:Oracle.config ->
  ?engine:engine ->
  ?max_attempts:int ->
  failing:string list ->
  Schedule.t ->
  Schedule.t
(** Minimize a failing schedule while it still {!reproduces} one of
    [failing]: delta-debugging (ddmin) over the event list, then
    per-event simplification passes (halve durations, spreads and
    magnitudes; zero fault probabilities one at a time; shed partition
    members; tame non-finite poison values) to a fixpoint, spending at
    most [max_attempts] (default 120) runner executions. The result
    always still reproduces (the input is returned unchanged if nothing
    smaller does). *)

type failure = {
  run_index : int;
  run_seed : int;
  oracles : string list;  (** failing oracle names. *)
  schedule : Schedule.t;
  shrunk : Schedule.t;
  repro_path : string option;  (** where the artifacts were written, when [out] was given. *)
  shrunk_path : string option;
}

type summary = {
  runs : int;
  base_seed : int;
  fragile : bool;
  failures : failure list;
  report : string;  (** one line per run + a footer; deterministic. *)
}

val run :
  ?oracle:Oracle.config ->
  ?engine:engine ->
  ?fragile:bool ->
  ?shrink_attempts:int ->
  ?out:string ->
  runs:int ->
  seed:int ->
  unit ->
  summary
(** The campaign loop. Each generated schedule is first round-tripped
    through the JSON codec (a mismatch is reported as a [codec-roundtrip]
    failure); failing runs are shrunk and, when [out] is given, both the
    original and the minimized schedule are saved there as
    [repro-<seed>.json] / [repro-<seed>.min.json] (the directory is
    created if needed). *)

val replay :
  ?oracle:Oracle.config -> ?engine:engine -> path:string -> unit -> (execution, string) result
(** Load a saved schedule artifact and {!run_schedule} it. *)
