module J = Lla_obs.Jsonl

type target = Agent of int | Controller of int

type event =
  | Faults of { at : float; duration : float; faults : Lla_transport.Transport.faults }
  | Jitter of { at : float; duration : float; spread : float }
  | Partition of { at : float; duration : float; agents : int list; controllers : int list }
  | Outage of { at : float; duration : float; target : target }
  | Price_poison of { at : float; resource : int; value : float }
  | Error_spike of { at : float; duration : float; subtask : int; magnitude : float }
  | Node_crash of { at : float }
  | Storage_faults of { at : float; duration : float; storage : Lla_durable.Journal.Store.faults }

type step =
  | Adaptive
  | Fixed_gamma of float
  | Split of { resource : step; path : step }

type setup = {
  safe_mode : bool;
  checkpoints : bool;
  health : bool;
  step : step;
  transport_seed : int;
}

let robust_setup =
  { safe_mode = true; checkpoints = true; health = true; step = Adaptive; transport_seed = 0 }

let fragile_setup gamma seed =
  {
    safe_mode = false;
    checkpoints = false;
    health = false;
    step = Fixed_gamma gamma;
    transport_seed = seed;
  }

type t = {
  workload : string;
  horizon : float;
  settle : float;
  setup : setup;
  events : event list;
}

let event_start = function
  | Faults { at; _ }
  | Jitter { at; _ }
  | Partition { at; _ }
  | Outage { at; _ }
  | Price_poison { at; _ }
  | Error_spike { at; _ }
  | Node_crash { at }
  | Storage_faults { at; _ } ->
      at

let event_end = function
  | Faults { at; duration; _ }
  | Jitter { at; duration; _ }
  | Partition { at; duration; _ }
  | Outage { at; duration; _ }
  | Error_spike { at; duration; _ }
  | Storage_faults { at; duration; _ } ->
      at +. duration
  | Price_poison { at; _ } | Node_crash { at } -> at

let last_fault_end t = List.fold_left (fun acc e -> Float.max acc (event_end e)) 0. t.events

let duration t = t.horizon +. t.settle

let invalid fmt = Format.kasprintf invalid_arg fmt

let check_probability what p =
  if not (Float.is_finite p && p >= 0. && p <= 1.) then
    invalid "Schedule.make: %s probability %g outside [0,1]" what p

let check_nonneg what v =
  if not (Float.is_finite v && v >= 0.) then invalid "Schedule.make: negative %s (%g)" what v

let validate_event ~horizon e =
  let at = event_start e in
  if not (Float.is_finite at && at >= 0. && at < horizon) then
    invalid "Schedule.make: event at %g outside [0, horizon=%g)" at horizon;
  (match e with
  | Faults { duration; faults = { drop; duplicate; reorder; reorder_spread }; _ } ->
      check_nonneg "duration" duration;
      check_probability "drop" drop;
      check_probability "duplicate" duplicate;
      check_probability "reorder" reorder;
      check_nonneg "reorder spread" reorder_spread
  | Jitter { duration; spread; _ } ->
      check_nonneg "duration" duration;
      check_nonneg "jitter spread" spread
  | Partition { duration; agents; controllers; _ } ->
      check_nonneg "duration" duration;
      if agents = [] && controllers = [] then invalid "Schedule.make: empty partition group";
      List.iter (fun i -> if i < 0 then invalid "Schedule.make: negative index %d" i)
        (agents @ controllers)
  | Outage { duration; target = Agent i | Controller i; _ } ->
      check_nonneg "duration" duration;
      if i < 0 then invalid "Schedule.make: negative index %d" i
  | Price_poison { resource; _ } ->
      if resource < 0 then invalid "Schedule.make: negative index %d" resource
      (* the poison value itself may be anything, including nan/inf *)
  | Error_spike { duration; subtask; magnitude; _ } ->
      check_nonneg "duration" duration;
      check_nonneg "spike magnitude" magnitude;
      if subtask < 0 then invalid "Schedule.make: negative index %d" subtask
  | Node_crash _ -> ()
  | Storage_faults { duration; storage = { torn_write; bit_flip; drop_sync; short_read; fail_write }; _ } ->
      check_nonneg "duration" duration;
      check_probability "torn_write" torn_write;
      check_probability "bit_flip" bit_flip;
      check_probability "drop_sync" drop_sync;
      check_probability "short_read" short_read;
      check_probability "fail_write" fail_write);
  ()

(* Mirrors Lla.Step_size.split: one Split of two leaf policies, never
   nested (the runtime unpacks exactly one resource/path pair). *)
let validate_step = function
  | Adaptive | Fixed_gamma _ -> ()
  | Split { resource; path } ->
      (match (resource, path) with
      | (Adaptive | Fixed_gamma _), (Adaptive | Fixed_gamma _) -> ()
      | _ -> invalid "Schedule.make: Split step components must be adaptive or fixed")

let make ?(setup = robust_setup) ~workload ~horizon ~settle events =
  if not (Float.is_finite horizon && horizon > 0.) then
    invalid "Schedule.make: non-positive horizon %g" horizon;
  if not (Float.is_finite settle && settle >= 0.) then
    invalid "Schedule.make: negative settle %g" settle;
  validate_step setup.step;
  List.iter (validate_event ~horizon) events;
  let events = List.stable_sort (fun a b -> Float.compare (event_start a) (event_start b)) events in
  { workload; horizon; settle; setup; events }

(* ---------- codec ---------- *)

let json_of_event e =
  let open J in
  match e with
  | Faults { at; duration; faults = { drop; duplicate; reorder; reorder_spread } } ->
      Obj
        [
          ("type", Str "faults");
          ("at", Num at);
          ("duration", Num duration);
          ("drop", Num drop);
          ("duplicate", Num duplicate);
          ("reorder", Num reorder);
          ("spread", Num reorder_spread);
        ]
  | Jitter { at; duration; spread } ->
      Obj [ ("type", Str "jitter"); ("at", Num at); ("duration", Num duration); ("spread", Num spread) ]
  | Partition { at; duration; agents; controllers } ->
      Obj
        [
          ("type", Str "partition");
          ("at", Num at);
          ("duration", Num duration);
          ("agents", Arr (List.map (fun i -> Num (float_of_int i)) agents));
          ("controllers", Arr (List.map (fun i -> Num (float_of_int i)) controllers));
        ]
  | Outage { at; duration; target } ->
      let kind, index = match target with Agent i -> ("agent", i) | Controller i -> ("controller", i) in
      Obj
        [
          ("type", Str "outage");
          ("at", Num at);
          ("duration", Num duration);
          ("target", Str kind);
          ("index", Num (float_of_int index));
        ]
  | Price_poison { at; resource; value } ->
      Obj
        [
          ("type", Str "price_poison");
          ("at", Num at);
          ("resource", Num (float_of_int resource));
          ("value", Num value);
        ]
  | Error_spike { at; duration; subtask; magnitude } ->
      Obj
        [
          ("type", Str "error_spike");
          ("at", Num at);
          ("duration", Num duration);
          ("subtask", Num (float_of_int subtask));
          ("magnitude", Num magnitude);
        ]
  | Node_crash { at } -> Obj [ ("type", Str "node_crash"); ("at", Num at) ]
  | Storage_faults { at; duration; storage = { torn_write; bit_flip; drop_sync; short_read; fail_write } } ->
      Obj
        [
          ("type", Str "storage_faults");
          ("at", Num at);
          ("duration", Num duration);
          ("torn_write", Num torn_write);
          ("bit_flip", Num bit_flip);
          ("drop_sync", Num drop_sync);
          ("short_read", Num short_read);
          ("fail_write", Num fail_write);
        ]

let rec json_of_step =
  let open J in
  function
  | Adaptive -> Str "adaptive"
  | Fixed_gamma g -> Num g
  | Split { resource; path } ->
      Obj [ ("resource", json_of_step resource); ("path", json_of_step path) ]

let json_of_setup s =
  let open J in
  Obj
    [
      ("safe_mode", Bool s.safe_mode);
      ("checkpoints", Bool s.checkpoints);
      ("health", Bool s.health);
      ("step", json_of_step s.step);
      ("transport_seed", Num (float_of_int s.transport_seed));
    ]

let to_json t =
  let open J in
  Obj
    [
      ("version", Num 1.);
      ("workload", Str t.workload);
      ("horizon", Num t.horizon);
      ("settle", Num t.settle);
      ("setup", json_of_setup t.setup);
      ("events", Arr (List.map json_of_event t.events));
    ]

(* Decoding: every object is checked for unknown fields so a reproducer
   never silently means less than it says. *)

let ( let* ) = Result.bind

let known_fields what allowed fields =
  let rec check = function
    | [] -> Ok ()
    | (k, _) :: rest ->
        if List.mem k allowed then check rest
        else Error (Printf.sprintf "%s: unknown field %S" what k)
  in
  check fields

let field what name j =
  match J.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing field %S" what name)

let num_field what name j =
  let* v = field what name j in
  match J.num v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "%s: field %S is not a number" what name)

let int_field what name j =
  let* f = num_field what name j in
  if Float.is_integer f then Ok (int_of_float f)
  else Error (Printf.sprintf "%s: field %S is not an integer" what name)

let str_field what name j =
  let* v = field what name j in
  match J.str v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "%s: field %S is not a string" what name)

let bool_field what name j =
  let* v = field what name j in
  match J.bool v with
  | Some b -> Ok b
  | None -> Error (Printf.sprintf "%s: field %S is not a bool" what name)

let int_list_field what name j =
  let* v = field what name j in
  match J.arr v with
  | None -> Error (Printf.sprintf "%s: field %S is not an array" what name)
  | Some items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | x :: rest -> (
            match J.num x with
            | Some f when Float.is_integer f -> go (int_of_float f :: acc) rest
            | _ -> Error (Printf.sprintf "%s: field %S holds a non-integer" what name))
      in
      go [] items

let event_of_json j =
  match j with
  | J.Obj fields -> (
    let* kind = str_field "event" "type" j in
    let what = "event " ^ kind in
    match kind with
    | "faults" ->
        let* () =
          known_fields what [ "type"; "at"; "duration"; "drop"; "duplicate"; "reorder"; "spread" ]
            fields
        in
        let* at = num_field what "at" j in
        let* duration = num_field what "duration" j in
        let* drop = num_field what "drop" j in
        let* duplicate = num_field what "duplicate" j in
        let* reorder = num_field what "reorder" j in
        let* reorder_spread = num_field what "spread" j in
        Ok (Faults { at; duration; faults = { drop; duplicate; reorder; reorder_spread } })
    | "jitter" ->
        let* () = known_fields what [ "type"; "at"; "duration"; "spread" ] fields in
        let* at = num_field what "at" j in
        let* duration = num_field what "duration" j in
        let* spread = num_field what "spread" j in
        Ok (Jitter { at; duration; spread })
    | "partition" ->
        let* () = known_fields what [ "type"; "at"; "duration"; "agents"; "controllers" ] fields in
        let* at = num_field what "at" j in
        let* duration = num_field what "duration" j in
        let* agents = int_list_field what "agents" j in
        let* controllers = int_list_field what "controllers" j in
        Ok (Partition { at; duration; agents; controllers })
    | "outage" ->
        let* () = known_fields what [ "type"; "at"; "duration"; "target"; "index" ] fields in
        let* at = num_field what "at" j in
        let* duration = num_field what "duration" j in
        let* target = str_field what "target" j in
        let* index = int_field what "index" j in
        let* target =
          match target with
          | "agent" -> Ok (Agent index)
          | "controller" -> Ok (Controller index)
          | other -> Error (Printf.sprintf "%s: unknown target %S" what other)
        in
        Ok (Outage { at; duration; target })
    | "price_poison" ->
        let* () = known_fields what [ "type"; "at"; "resource"; "value" ] fields in
        let* at = num_field what "at" j in
        let* resource = int_field what "resource" j in
        let* value = num_field what "value" j in
        Ok (Price_poison { at; resource; value })
    | "error_spike" ->
        let* () = known_fields what [ "type"; "at"; "duration"; "subtask"; "magnitude" ] fields in
        let* at = num_field what "at" j in
        let* duration = num_field what "duration" j in
        let* subtask = int_field what "subtask" j in
        let* magnitude = num_field what "magnitude" j in
        Ok (Error_spike { at; duration; subtask; magnitude })
    | "node_crash" ->
        let* () = known_fields what [ "type"; "at" ] fields in
        let* at = num_field what "at" j in
        Ok (Node_crash { at })
    | "storage_faults" ->
        let* () =
          known_fields what
            [ "type"; "at"; "duration"; "torn_write"; "bit_flip"; "drop_sync"; "short_read"; "fail_write" ]
            fields
        in
        let* at = num_field what "at" j in
        let* duration = num_field what "duration" j in
        let* torn_write = num_field what "torn_write" j in
        let* bit_flip = num_field what "bit_flip" j in
        let* drop_sync = num_field what "drop_sync" j in
        let* short_read = num_field what "short_read" j in
        let* fail_write = num_field what "fail_write" j in
        Ok
          (Storage_faults
             { at; duration; storage = { torn_write; bit_flip; drop_sync; short_read; fail_write } })
    | other -> Error (Printf.sprintf "event: unknown type %S" other))
  | _ -> Error "event: not an object"

(* [component] distinguishes the two nesting levels so a nested Split is
   rejected in the codec with the same strictness [make] enforces. *)
let rec step_of_json ~component j =
  match j with
  | J.Str "adaptive" -> Ok Adaptive
  | J.Num g -> Ok (Fixed_gamma g)
  | J.Str other -> Error (Printf.sprintf "setup: unknown step %S" other)
  | J.Obj fields when not component ->
      let what = "setup step" in
      let* () = known_fields what [ "resource"; "path" ] fields in
      let* resource_json = field what "resource" j in
      let* resource = step_of_json ~component:true resource_json in
      let* path_json = field what "path" j in
      let* path = step_of_json ~component:true path_json in
      Ok (Split { resource; path })
  | _ ->
      Error
        (if component then "setup: Split step components must be \"adaptive\" or a number"
         else "setup: step must be \"adaptive\", a number, or a {resource, path} object")

let setup_of_json j =
  match j with
  | J.Obj fields ->
  let what = "setup" in
  let* () =
    known_fields what [ "safe_mode"; "checkpoints"; "health"; "step"; "transport_seed" ] fields
  in
  let* safe_mode = bool_field what "safe_mode" j in
  let* checkpoints = bool_field what "checkpoints" j in
  let* health = bool_field what "health" j in
  let* step_json = field what "step" j in
  let* step = step_of_json ~component:false step_json in
  let* transport_seed = int_field what "transport_seed" j in
  Ok { safe_mode; checkpoints; health; step; transport_seed }
  | _ -> Error "setup: not an object"

let of_json j =
  match j with
  | J.Obj fields ->
      let what = "schedule" in
      let* () =
        known_fields what [ "version"; "workload"; "horizon"; "settle"; "setup"; "events" ] fields
      in
      let* version = int_field what "version" j in
      if version <> 1 then Error (Printf.sprintf "schedule: unsupported version %d" version)
      else
        let* workload = str_field what "workload" j in
        let* horizon = num_field what "horizon" j in
        let* settle = num_field what "settle" j in
        let* setup_json = field what "setup" j in
        let* setup = setup_of_json setup_json in
        let* events_json = field what "events" j in
        let* events =
          match J.arr events_json with
          | None -> Error "schedule: events is not an array"
          | Some items ->
              let rec go acc = function
                | [] -> Ok (List.rev acc)
                | e :: rest ->
                    let* ev = event_of_json e in
                    go (ev :: acc) rest
              in
              go [] items
        in
        (match make ~setup ~workload ~horizon ~settle events with
        | t -> Ok t
        | exception Invalid_argument msg -> Error msg)
  | _ -> Error "schedule: not an object"

let to_string t = J.to_string (to_json t)

let of_string s =
  let* j = J.parse s in
  of_json j

let save t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n')

let load ~path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let buf = Buffer.create 1024 in
          (try
             while true do
               Buffer.add_channel buf ic 1
             done
           with End_of_file -> ());
          of_string (String.trim (Buffer.contents buf)))

(* [Stdlib.compare] treats nan = nan, which is exactly what schedule
   equality needs (a nan poison value is the same poison). *)
let equal a b = compare a b = 0

let pp_event ppf e =
  match e with
  | Faults { at; duration; faults = { drop; duplicate; reorder; reorder_spread } } ->
      Format.fprintf ppf "@[faults   [%g, %g): drop=%g dup=%g reorder=%g/%gms@]" at (at +. duration)
        drop duplicate reorder reorder_spread
  | Jitter { at; duration; spread } ->
      Format.fprintf ppf "@[jitter   [%g, %g): +U[0,%g)ms@]" at (at +. duration) spread
  | Partition { at; duration; agents; controllers } ->
      let pp_is ppf is =
        Format.pp_print_list
          ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
          Format.pp_print_int ppf is
      in
      Format.fprintf ppf "@[partition[%g, %g): agents {%a} + controllers {%a} vs rest@]" at
        (at +. duration) pp_is agents pp_is controllers
  | Outage { at; duration; target } ->
      let kind, i = match target with Agent i -> ("agent", i) | Controller i -> ("controller", i) in
      Format.fprintf ppf "@[outage   [%g, %g): %s %d down@]" at (at +. duration) kind i
  | Price_poison { at; resource; value } ->
      Format.fprintf ppf "@[poison    %g: mu[%d] <- %g@]" at resource value
  | Error_spike { at; duration; subtask; magnitude } ->
      Format.fprintf ppf "@[err-spike[%g, %g): offset[%d] <- %gms@]" at (at +. duration) subtask
        magnitude
  | Node_crash { at } -> Format.fprintf ppf "@[crash     %g: whole node down, recover from journal@]" at
  | Storage_faults { at; duration; storage = { torn_write; bit_flip; drop_sync; short_read; fail_write } } ->
      Format.fprintf ppf "@[storage  [%g, %g): torn=%g flip=%g dropsync=%g shortread=%g enospc=%g@]" at
        (at +. duration) torn_write bit_flip drop_sync short_read fail_write

let pp ppf t =
  let rec step_string = function
    | Adaptive -> "adaptive"
    | Fixed_gamma g -> Printf.sprintf "fixed %g" g
    | Split { resource; path } ->
        Printf.sprintf "split(resource=%s, path=%s)" (step_string resource) (step_string path)
  in
  let step = step_string t.setup.step in
  Format.fprintf ppf "@[<v>workload %s, horizon %gms + settle %gms@,setup: safe_mode=%b checkpoints=%b health=%b step=%s tseed=%d"
    t.workload t.horizon t.settle t.setup.safe_mode t.setup.checkpoints t.setup.health step
    t.setup.transport_seed;
  List.iter (fun e -> Format.fprintf ppf "@,%a" pp_event e) t.events;
  Format.fprintf ppf "@]"
