(** Span context — the causal identity carried on control-plane messages.

    A span names one unit of causally-connected work: a price update at a
    resource agent, an allocation solve at a task controller, or one
    message delivery in between. The context is three scalars, cheap
    enough to close over on every transport message:

    - [trace_id]: the id of the root span of this causal tree (the first
      ancestor with no parent). All descendants share it, so a tree can
      be selected from a flat stream without walking parents.
    - [span_id]: this span's own id, unique per {!Lla_obs.t} handle
      (allocated by [Lla_obs.alloc_span], strictly increasing — a parent
      id is always smaller than its children's).
    - [origin]: the timestamp of the most recent {e work} span
      (price/alloc) on the path from the root. Message deliveries
      {!forward} it unchanged, so a receiver can compute reaction
      latency ([now - origin]) without looking anything up.

    Parent links themselves are not carried: the emitter of a span
    record knows its parent's [span_id] at emission time and writes it
    into the {!Trace.Span} event, which is where {!Causal} reads the
    tree from. *)

type t = { trace_id : int; span_id : int; origin : float }

val root : id:int -> at:float -> t
(** A new root: [trace_id = span_id = id], [origin = at]. *)

val child : t -> id:int -> at:float -> t
(** A new work span under [parent]: same trace, fresh id, [origin = at]. *)

val forward : t -> id:int -> t
(** A message-delivery span: same trace, fresh id, parent's [origin]
    preserved (deliveries relay causality, they are not new work). *)
