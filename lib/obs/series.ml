let utility records =
  let iteration_series =
    List.filter_map
      (fun (r : Trace.record) ->
        match r.event with
        | Trace.Iteration { utility; _ } -> Some (r.at, utility)
        | _ -> None)
      records
  in
  if iteration_series <> [] then iteration_series
  else begin
    (* Distributed runs have no global Iteration events; rebuild the
       objective as the running sum of each task's latest local utility,
       emitting once every task that ever reports has reported. *)
    let tasks = Hashtbl.create 16 in
    List.iter
      (fun (r : Trace.record) ->
        match r.event with
        | Trace.Allocation_solved { task; _ } -> Hashtbl.replace tasks task ()
        | _ -> ())
      records;
    let total = Hashtbl.length tasks in
    let latest = Hashtbl.create 16 in
    let out = ref [] in
    List.iter
      (fun (r : Trace.record) ->
        match r.event with
        | Trace.Allocation_solved { task; utility } ->
          Hashtbl.replace latest task utility;
          if Hashtbl.length latest = total then begin
            let sum = Hashtbl.fold (fun _ u acc -> acc +. u) latest 0. in
            out := (r.at, sum) :: !out
          end
        | _ -> ())
      records;
    List.rev !out
  end

let group_by_int extract records =
  let tbl = Hashtbl.create 16 in
  let keys = ref [] in
  List.iter
    (fun (r : Trace.record) ->
      match extract r with
      | None -> ()
      | Some (k, v) ->
        if not (Hashtbl.mem tbl k) then keys := k :: !keys;
        Hashtbl.replace tbl k ((r.Trace.at, v) :: Option.value ~default:[] (Hashtbl.find_opt tbl k)))
    records;
  List.rev_map (fun k -> (k, List.rev (Hashtbl.find tbl k))) !keys

let prices records =
  group_by_int
    (fun r ->
      match r.Trace.event with
      | Trace.Price_updated { resource; mu; _ } -> Some (resource, mu)
      | _ -> None)
    records

let congestion records =
  group_by_int
    (fun r ->
      match r.Trace.event with
      | Trace.Price_updated { resource; share_sum; capacity; _ } ->
        Some (resource, if capacity > 0. then share_sum /. capacity else infinity)
      | _ -> None)
    records

let path_prices records =
  group_by_int
    (fun r ->
      match r.Trace.event with
      | Trace.Path_price_updated { path; lambda; _ } -> Some (path, lambda)
      | _ -> None)
    records

let load_jsonl path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | line when String.trim line = "" -> go (lineno + 1) acc
        | line -> (
          match Trace.record_of_string line with
          | Ok r -> go (lineno + 1) (r :: acc)
          | Error e -> Error (Printf.sprintf "%s:%d: %s" path lineno e))
      in
      go 1 [])

let load_jsonl_exn path =
  match load_jsonl path with Ok rs -> rs | Error e -> failwith e
