module Metrics = Metrics
module Trace = Trace
module Invariant = Invariant
module Jsonl = Jsonl
module Span = Span
module Profile = Profile
module Causal = Causal
module Series = Series
module Analyze = Analyze
module Rotate = Rotate
module Monitor = Monitor
module Shard_registry = Shard_registry

type t = {
  metrics : Metrics.t;
  trace : Trace.t;
  trace_io : bool;
  spans : bool;
  profile : Profile.t;
  mutable next_span : int;
  mutable span_stride : int;
}

let create ?trace_capacity ?(trace_io = false) ?(spans = false) ?profile ?(span_base = 0)
    ?(span_stride = 1) () =
  if span_stride < 1 then invalid_arg "Lla_obs.create: span_stride < 1";
  {
    metrics = Metrics.create ();
    trace = Trace.create ?capacity:trace_capacity ();
    trace_io;
    spans;
    profile = (match profile with Some p -> p | None -> Profile.disabled ());
    next_span = span_base;
    span_stride;
  }

let alloc_span t =
  let id = t.next_span in
  t.next_span <- id + t.span_stride;
  id

let set_span_stride t ~base ~stride =
  if stride < 1 then invalid_arg "Lla_obs.set_span_stride: stride < 1";
  if t.next_span <> 0 || t.span_stride <> 1 then
    invalid_arg "Lla_obs.set_span_stride: handle already allocated spans";
  t.next_span <- base;
  t.span_stride <- stride

let emit t ~at event = Trace.emit t.trace ~at event

let emit_opt obs ~at event =
  match obs with None -> () | Some t -> Trace.emit t.trace ~at event
