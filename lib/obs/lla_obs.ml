module Metrics = Metrics
module Trace = Trace
module Invariant = Invariant
module Jsonl = Jsonl

type t = {
  metrics : Metrics.t;
  trace : Trace.t;
  trace_io : bool;
}

let create ?trace_capacity ?(trace_io = false) () =
  { metrics = Metrics.create (); trace = Trace.create ?capacity:trace_capacity (); trace_io }

let emit t ~at event = Trace.emit t.trace ~at event

let emit_opt obs ~at event =
  match obs with None -> () | Some t -> Trace.emit t.trace ~at event
