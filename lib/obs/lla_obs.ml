module Metrics = Metrics
module Trace = Trace
module Invariant = Invariant
module Jsonl = Jsonl
module Span = Span
module Profile = Profile
module Causal = Causal
module Series = Series
module Analyze = Analyze
module Rotate = Rotate

type t = {
  metrics : Metrics.t;
  trace : Trace.t;
  trace_io : bool;
  spans : bool;
  profile : Profile.t;
  mutable next_span : int;
}

let create ?trace_capacity ?(trace_io = false) ?(spans = false) ?profile () =
  {
    metrics = Metrics.create ();
    trace = Trace.create ?capacity:trace_capacity ();
    trace_io;
    spans;
    profile = (match profile with Some p -> p | None -> Profile.disabled ());
    next_span = 0;
  }

let alloc_span t =
  let id = t.next_span in
  t.next_span <- id + 1;
  id

let emit t ~at event = Trace.emit t.trace ~at event

let emit_opt obs ~at event =
  match obs with None -> () | Some t -> Trace.emit t.trace ~at event
