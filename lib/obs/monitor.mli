(** Streaming telemetry: online versions of the {!Analyze} detectors
    feeding an alert bus.

    {!Analyze} computes settling time, oscillation and overload episodes
    from a complete trace, after the run. [Monitor] maintains the same
    signals incrementally while the system runs — O(1) state updates per
    observation (readouts that need the tail half of the series, like
    {!oscillation}, replay a retained compact series on demand) — and
    drives a small set of named alerts with severity levels and
    asymmetric enter/exit hysteresis, the same shape as
    [Lla_runtime.Safe_mode]: a condition must hold for
    [sustain_budget] time units to raise, and the opposite condition for
    [clear_after] units to clear, so a flapping signal cannot flap the
    alert. Every transition is emitted as a {!Trace.Alert_raised} /
    {!Trace.Alert_cleared} event on the attached trace, so a replayed
    trace reproduces the exact alert timeline.

    The online detectors agree with the offline ones sample-for-sample:
    {!Settle.settled_since} equals [Analyze.settling_time] on the same
    series, {!overload_episodes} equals [Analyze.episodes] on the same
    load series, and {!oscillation} {e is} [Analyze.oscillation] over
    the retained series (property tests in [test/test_monitor.ml] hold
    both directions). The soak harness's rolling-health oracles are
    expressed over the same primitives ({!Streak}, {!Probe}), so soak
    and live monitoring share one detector implementation.

    A monitor can be fed two ways, freely mixed:
    - {!attach} it to a {!Trace.t}: the sink decodes [Iteration] /
      [Allocation_solved] / [Price_updated] / [Path_price_updated]
      events into observations (and ignores alert events, so replaying
      an annotated trace does not echo);
    - call {!observe_utility} / {!observe_load} / {!observe_feasible}
      directly from a host that has no trace stream (the scale kernel,
      the soak harness).

    Feeding a monitor never mutates the observed system; omitting it
    keeps trajectories bit-for-bit identical (the standing [?obs]
    guarantee extends to [?monitor]). *)

(** {1 Shared detector primitives} *)

(** Online suffix-stable settling: the earliest time from which the
    series never leaves the [tolerance]-band around [target] — exactly
    [Analyze.settling_time]'s criterion, in O(1) per sample. *)
module Settle : sig
  type t

  val create : ?tolerance:float -> target:float -> unit -> t
  (** Band is [tolerance * max |target| 1e-12] (default
      [Analyze.default_tolerance]); a non-finite [target] never
      settles, as offline. *)

  val observe : t -> at:float -> float -> unit

  val settled_since : t -> float option
  (** Equal to [Analyze.settling_time ~tolerance ~target] on the series
      observed so far. *)
end

(** Sustained-condition budget counter with the soak harness's exact
    semantics: each bad observation adds [step] to the streak, a good
    one zeroes it, and exceeding [budget] reports the streak length and
    resets (so the violation can re-fire). *)
module Streak : sig
  type t

  val create : budget:int -> t

  val observe : t -> ok:bool -> step:int -> int option
  (** [Some streak] exactly when the accumulated streak exceeds the
      budget (the streak then resets). *)

  val reset : t -> unit
  (** Zero the streak (grace windows). *)

  val current : t -> int
end

(** A reconvergence probe: collect the trajectory after a disturbance,
    then judge settling against the latest sample as target (the target
    is only known at judgement time, so the probe retains its samples
    and replays them through {!Settle}). *)
module Probe : sig
  type t

  val start : at:float -> t

  val started_at : t -> float

  val sample : t -> at:float -> value:float -> unit

  val samples : t -> int

  val settling : ?tolerance:float -> t -> float option
  (** Absolute settling time of the collected series against its final
      value; [None] when it never settles (or no samples). Equals
      [Analyze.settling_time ~tolerance ~target:final] on the same
      series. *)
end

val drift : baseline:float -> float -> float
(** [|v - baseline| / max 1 |baseline|] — the soak baseline-drift
    normalization. *)

(** {1 The monitor} *)

type severity = Info | Warning | Critical

val severity_label : severity -> string
(** ["info"] / ["warning"] / ["critical"] — the encoding used in
    {!Trace.Alert_raised}. *)

type config = {
  tolerance : float;  (** settling band (default [Analyze.default_tolerance]). *)
  infeasibility_tolerance : float;
      (** relative Eq. 3/4 slack before a sample counts as infeasible
          (default 0.05, matching [Safe_mode]). *)
  overload_threshold : float;
      (** load factor opening an overload episode (default 1.0,
          matching [Analyze.episodes]). *)
  sustain_budget : float;
      (** time units a condition must hold before its alert raises
          (default 200). *)
  clear_after : float;
      (** time units of health before an active alert clears — the
          asymmetric exit hysteresis (default 500). *)
  oscillation_window : int;  (** utility ring length (default 32). *)
  oscillation_threshold : float;
      (** relative spread of the window that reads as oscillation
          (default 0.2). *)
  min_reversals : int;
      (** direction reversals the window must also contain (default 8) —
          a monotone transient has spread but no reversals. *)
  drift_tolerance : float;
      (** relative drift vs the baseline checkpoint (default 0.25). *)
  warmup : float;
      (** alerts stay silent before this time; detector readouts are
          unaffected (default 0). *)
}

val default_config : config

type t

val create : ?config:config -> ?target:float -> ?baseline:float -> ?tasks:int -> unit -> t
(** [target]: the known optimum, arming the O(1) online settling
    detector (without it {!settling_tick} replays the retained series
    against its final value, as offline [analyze] does). [baseline]:
    initial [Lla_baseline] checkpoint for the drift alert (none until
    {!set_baseline} otherwise). [tasks]: expected task count, letting
    the sink rebuild the global objective from per-task
    [Allocation_solved] events exactly when every task has reported —
    required for utility tracking on distributed traces, which emit no
    global [Iteration] events. *)

val attach : t -> Trace.t -> unit
(** Subscribe the monitor to a trace: its sink observes every emission,
    and alert transitions are emitted back into the same trace (stored
    ring-first, so the annotated stream stays in sequence order). Attach
    the monitor {e after} file sinks so dump files list each transition
    after the record that triggered it. *)

val sink : t -> Trace.record -> unit
(** The record observer behind {!attach}, usable directly to replay a
    collected stream. Ignores [Alert_raised]/[Alert_cleared]. *)

val on_alert : t -> (at:float -> Trace.event -> unit) -> unit
(** Route alert transitions somewhere other than an attached trace
    (e.g. the soak harness's [emit_opt]). Replaces the previous route. *)

(** {2 Direct observation (trace-less hosts)} *)

val observe_utility : t -> at:float -> float -> unit

val observe_load : t -> at:float -> resource:int -> load:float -> unit
(** [load] is share_sum / capacity, as [Series.congestion] computes it
    (infinite when capacity is 0). Drives the per-resource overload
    episodes and the Eq. 3 sustained-infeasibility alert. *)

val observe_path_slack : t -> at:float -> path:int -> latency:float -> critical_time:float -> unit
(** Drives the Eq. 4 sustained-infeasibility alert. *)

val observe_feasible : t -> at:float -> resources_ok:bool -> paths_ok:bool -> unit
(** Aggregate feasibility feed for hosts that already know the verdict
    (the scale kernel's O(1) dirty-set checks). *)

val observe_recovery : t -> at:float -> ok:bool -> value:float -> unit
(** Crash-recovery progress feed: [ok = false] while a whole-node
    recovery is still infeasible past its grace window, [value] the
    ticks spent recovering. Drives the [recovery_stuck] alert with the
    [sustain_budget] enter hysteresis — a recovery that converges never
    raises it; a node that cannot climb back to feasibility does. *)

val set_baseline : t -> at:float -> float -> unit
(** Install/refresh the drift alert's reference checkpoint. *)

(** {2 Readouts (agree with {!Analyze} on the same stream)} *)

val settling_tick : t -> float option

val oscillation : t -> Analyze.oscillation option

val dispersion : t -> float

val overload_episodes : t -> resource:int -> (float * float) list

val resources_seen : t -> int list
(** Resource ids with at least one load observation, first-seen order. *)

val utility_samples : t -> int

val last_utility : t -> float option

(** {2 Alert bus} *)

type alert_view = {
  name : string;
  severity : severity;
  active : bool;
  since : float;  (** raise time of the current episode (nan if never). *)
  last_value : float;
  raised : int;
  cleared : int;
}

val alerts : t -> alert_view list
(** All alerts, fixed order: [eq3_sustained], [eq4_sustained],
    [oscillation], [utility_drift], [diverged], [recovery_stuck]. *)

val active_alerts : t -> alert_view list

val alerts_raised : t -> int
(** Total raise transitions across all alerts. *)

val alerts_cleared : t -> int

val render : t -> string
(** One line per alert plus a detector summary — the `lla_cli top`
    alert pane. *)
