(** Convergence analytics over trace streams.

    Pure reductions of {!Series} projections: settling time against the
    offline optimum, oscillation amplitude/period of the converged
    tail, per-resource congestion episodes and price-trajectory
    dispersion, and a control-reaction-latency digest from the
    {!Causal} span tree. {!analyze} bundles the lot into a {!report}
    and {!render} pretty-prints it (the body of [lla_cli analyze]). *)

val default_tolerance : float
(** [0.015] — the 1.5%-of-optimum band the experiment suite uses. *)

val settling_time :
  ?tolerance:float -> target:float -> (float * float) list -> float option
(** Earliest sample time from which the {e entire} suffix of the series
    stays within [tolerance * |target|] of [target] (entering the band
    and leaving again does not count). [None] when the series never
    settles, is empty, or [target] is non-finite. *)

type oscillation = { amplitude : float; period : float option }
(** [amplitude] is half the peak-to-peak range of the second half of
    the series; [period] the mean spacing of its local maxima (needs at
    least two). *)

val oscillation : (float * float) list -> oscillation option
(** [None] when the tail has fewer than two samples or no finite
    values. *)

val dispersion : (float * float) list -> float
(** Population standard deviation of the second half of the series —
    how much a trajectory is still wandering after its transient. *)

val episodes : ?threshold:float -> (float * float) list -> (float * float) list
(** Maximal [(start, stop)] intervals of consecutive samples with value
    strictly above [threshold] (default [1.], the Eq. 3 load-factor
    boundary of {!Series.congestion}). An episode still open at stream
    end closes at its last sample. *)

type latency = { count : int; mean : float; p50 : float; p90 : float; p99 : float; max : float }

type resource_report = {
  resource : int;
  final_price : float;
  price_dispersion : float;
  overload : (float * float) list;
}

type report = {
  records : int;
  span_count : int;
  tolerance : float;
  optimum : float option;
  final_utility : float option;
  settling : float option;
  utility_oscillation : oscillation option;
  resources : resource_report list;
  control_latency : latency option;
}

val analyze : ?tolerance:float -> ?optimum:float -> Trace.record list -> report
(** Full sweep. Settling is measured against [optimum] when given,
    else against the trajectory's own final value. [control_latency]
    quantiles come from a {!Metrics} histogram fed with the
    {!Causal.control_latencies} samples, so offline reports and the
    online [lla_control_latency_ms] series quote the same
    bucket-interpolated estimator; [None] when the stream has no
    qualifying spans. *)

val render : report -> string
(** Human-readable multi-line report. *)
