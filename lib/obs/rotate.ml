type t = {
  path : string;
  max_bytes : int;
  max_records : int;
  retain : int;
  mutable oc : out_channel option;
  mutable seg_bytes : int;
  mutable seg_records : int;
  mutable total_records : int;
  mutable rotations : int;
}

let create ?(max_bytes = 64 * 1024 * 1024) ?(max_records = max_int) ?(retain = 3) ~path () =
  if max_bytes <= 0 then invalid_arg "Rotate.create: max_bytes must be positive";
  if max_records <= 0 then invalid_arg "Rotate.create: max_records must be positive";
  if retain < 0 then invalid_arg "Rotate.create: negative retain";
  {
    path;
    max_bytes;
    max_records;
    retain;
    oc = Some (open_out path);
    seg_bytes = 0;
    seg_records = 0;
    total_records = 0;
    rotations = 0;
  }

let seg_name t k = Printf.sprintf "%s.%d" t.path k

(* Shift path.k -> path.(k+1) from the oldest kept segment down, then move
   the active file into the .1 slot. With retain = 0 rotation degenerates
   to truncation. *)
let rotate t oc =
  close_out oc;
  if t.retain = 0 then ()
  else begin
    (try Sys.remove (seg_name t t.retain) with Sys_error _ -> ());
    for k = t.retain - 1 downto 1 do
      if Sys.file_exists (seg_name t k) then Sys.rename (seg_name t k) (seg_name t (k + 1))
    done;
    Sys.rename t.path (seg_name t 1)
  end;
  t.oc <- Some (open_out t.path);
  t.seg_bytes <- 0;
  t.seg_records <- 0;
  t.rotations <- t.rotations + 1

let sink t record =
  match t.oc with
  | None -> ()
  | Some oc ->
    let line = Trace.record_to_string record in
    output_string oc line;
    output_char oc '\n';
    t.seg_bytes <- t.seg_bytes + String.length line + 1;
    t.seg_records <- t.seg_records + 1;
    t.total_records <- t.total_records + 1;
    if t.seg_bytes >= t.max_bytes || t.seg_records >= t.max_records then rotate t oc

let flush t = match t.oc with None -> () | Some oc -> Stdlib.flush oc

let close t =
  match t.oc with
  | None -> ()
  | Some oc ->
    close_out oc;
    t.oc <- None

let records_written t = t.total_records

let rotations t = t.rotations

let segments t =
  let rec rotated k acc =
    if k > t.retain then List.rev acc
    else
      let s = seg_name t k in
      if Sys.file_exists s then rotated (k + 1) (s :: acc) else List.rev acc
  in
  let older = rotated 1 [] in
  if Sys.file_exists t.path then t.path :: older else older
