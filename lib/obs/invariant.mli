(** Trace replay oracles: assertable properties over a recorded event
    stream.

    The price events deliberately carry their constraint operands
    ({!Trace.Price_updated} has the Eq. 3 share sum and capacity,
    {!Trace.Path_price_updated} the Eq. 4 path latency and critical time),
    so a trace is self-contained: these checkers need no access to the
    problem that produced it. They are pure functions over {!Trace.record}
    lists — the test suite replays traces from live runs and from
    hand-built streams through the same code. *)

type violation = { seq : int; at : float; what : string }

val pp_violation : Format.formatter -> violation -> unit

val check_constraints : ?tolerance:float -> from:float -> Trace.record list -> violation list
(** Replay the stream and collect every [Price_updated] with
    [share_sum > capacity * (1 + tolerance)] (Eq. 3) and every
    [Path_price_updated] with [latency > critical_time * (1 + tolerance)]
    (Eq. 4) among records with [at >= from] — the converged suffix of a
    run, with the transient before [from] exempt. Non-finite share sums or
    latencies are violations regardless of tolerance (default [0.]). *)

val safe_entries_preceded_by_trip : Trace.record list -> bool
(** Every [Safe_mode_entered] record is preceded (in sequence order) by a
    [Watchdog_trip] with no other [Safe_mode_entered] in between — i.e.
    entries only ever happen because the watchdog tripped. Vacuously true
    for a stream without entries. *)

val spans_well_formed : Trace.record list -> bool
(** Every [Span] record has a strictly larger id than all earlier ones,
    a kind in [{"price", "alloc", "msg"}], and a parent that is either
    unseen (a root — possibly because the parent predates the collected
    window) or an earlier span of the {e same} trace with a smaller id.
    Vacuously true without spans. *)

val spans_well_formed_merged : Trace.record list -> bool
(** The {!Trace.merge}-stream variant of {!spans_well_formed}. Global
    span-id monotonicity is an ordering artifact of a single-threaded
    emitter; a merge of per-shard traces interleaves the shards' strided
    id progressions, so it is deliberately {e not} required here. What
    is: ids globally unique, kinds valid, no self-parenting, and every
    child whose parent appears {e anywhere} in the stream agrees with
    the parent's trace id (order-independent, two-pass). The engine
    test battery keeps a repro showing [spans_well_formed] tripping on
    a correct merged stream that this oracle accepts. *)

val monotone : Trace.record list -> bool
(** Sequence numbers strictly increase and times never decrease — the
    well-formedness every other replay assumes. *)
