(** Time-series extraction from trace streams.

    Each function projects a {!Trace.record} list — the live ring, a
    collecting sink, or a JSONL dump loaded with {!load_jsonl} — onto
    [(time, value)] samples for {!Analyze}. Pure; stream order is
    preserved. *)

val utility : Trace.record list -> (float * float) list
(** The global objective over time. Synchronous-solver streams use the
    [Iteration] events directly. Distributed streams (no global
    iteration) rebuild it from [Allocation_solved]: the running sum of
    each task's latest local utility, sampled on every solve once all
    tasks that ever report have reported at least once (before that the
    sum would mix in unsolved tasks). *)

val prices : Trace.record list -> (int * (float * float) list) list
(** Per-resource [mu] trajectory from [Price_updated], resources in
    first-appearance order. *)

val congestion : Trace.record list -> (int * (float * float) list) list
(** Per-resource [share_sum / capacity] trajectory (Eq. 3 load factor;
    [> 1] means the constraint is violated at that instant). *)

val path_prices : Trace.record list -> (int * (float * float) list) list
(** Per-path [lambda] trajectory from [Path_price_updated]. *)

val load_jsonl : string -> (Trace.record list, string) result
(** Read a [write_jsonl] dump back; blank lines are skipped; [Error]
    carries [file:line: reason] for the first bad line. *)

val load_jsonl_exn : string -> Trace.record list
(** @raise Failure on parse errors. *)
