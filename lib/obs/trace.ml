type event =
  | Iteration of { iteration : int; utility : float; movement : float; guards : int }
  | Allocation_solved of { task : int; utility : float }
  | Price_updated of {
      resource : int;
      mu : float;
      step : float;
      share_sum : float;
      capacity : float;
      congested : bool;
    }
  | Path_price_updated of {
      path : int;
      lambda : float;
      step : float;
      latency : float;
      critical_time : float;
    }
  | Guard_fired of { site : string }
  | Correction_applied of { subtask : string; offset : float }
  | Watchdog_trip of { reason : string }
  | Safe_mode_entered of { reason : string; fallback : string }
  | Safe_mode_exited
  | Checkpoint_saved of { actor : string }
  | Checkpoint_rejected of { actor : string }
  | Checkpoint_restored of { actor : string; warm : bool }
  | Transport_send of { src : string; dst : string }
  | Transport_dropped of { src : string; dst : string; reason : string }
  | Transport_delivered of { src : string; dst : string; delay : float }
  | Health_transition of { endpoint : string; alive : bool }
  | Span of { span : int; parent : int; trace : int; kind : string; actor : string }
  | Note of { name : string; value : float }
  | Alert_raised of { alert : string; severity : string; value : float }
  | Alert_cleared of { alert : string; value : float }

type record = { seq : int; at : float; event : event }

(* The ring stores events column-wise — a tag array plus unboxed
   float/int columns and string columns for each operand — rather than
   as [event] values. A retained ring of heap-allocated payloads
   (variant blocks with boxed floats) keeps a window of young blocks
   permanently live, so every overwrite cycle promotes them to the
   major heap; at realistic emission rates that promotion dominated the
   entire observability budget. Flattened, an emit is a handful of
   scalar array stores and allocates nothing; [event] values (and
   {!record}s) are synthesized lazily on read and for sinks. *)
type t = {
  capacity : int;
  tags : int array;  (* constructor index, declaration order *)
  ats : float array;
  fa : float array;  (* float operands, per-constructor layout below *)
  fb : float array;
  fc : float array;
  fd : float array;
  ia : int array;  (* int/bool operands *)
  ib : int array;
  ic : int array;
  sa : string array;  (* string operands; shared, never copied *)
  sb : string array;
  sc : string array;
  mutable pos : int;  (* next write slot *)
  mutable len : int;  (* valid entries *)
  mutable emitted : int;
  mutable sinks : (record -> unit) list;  (* attach order *)
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: non-positive capacity";
  {
    capacity;
    tags = Array.make capacity 0;
    ats = Array.make capacity 0.;
    fa = Array.make capacity 0.;
    fb = Array.make capacity 0.;
    fc = Array.make capacity 0.;
    fd = Array.make capacity 0.;
    ia = Array.make capacity 0;
    ib = Array.make capacity 0;
    ic = Array.make capacity 0;
    sa = Array.make capacity "";
    sb = Array.make capacity "";
    sc = Array.make capacity "";
    pos = 0;
    len = 0;
    emitted = 0;
    sinks = [];
  }

(* Column layout: only the slots a constructor uses are written on emit
   and read back on decode; the rest keep stale values. *)
let store t i = function
  | Iteration { iteration; utility; movement; guards } ->
    t.tags.(i) <- 0;
    t.ia.(i) <- iteration;
    t.ib.(i) <- guards;
    t.fa.(i) <- utility;
    t.fb.(i) <- movement
  | Allocation_solved { task; utility } ->
    t.tags.(i) <- 1;
    t.ia.(i) <- task;
    t.fa.(i) <- utility
  | Price_updated { resource; mu; step; share_sum; capacity; congested } ->
    t.tags.(i) <- 2;
    t.ia.(i) <- resource;
    t.ib.(i) <- Bool.to_int congested;
    t.fa.(i) <- mu;
    t.fb.(i) <- step;
    t.fc.(i) <- share_sum;
    t.fd.(i) <- capacity
  | Path_price_updated { path; lambda; step; latency; critical_time } ->
    t.tags.(i) <- 3;
    t.ia.(i) <- path;
    t.fa.(i) <- lambda;
    t.fb.(i) <- step;
    t.fc.(i) <- latency;
    t.fd.(i) <- critical_time
  | Guard_fired { site } ->
    t.tags.(i) <- 4;
    t.sa.(i) <- site
  | Correction_applied { subtask; offset } ->
    t.tags.(i) <- 5;
    t.sa.(i) <- subtask;
    t.fa.(i) <- offset
  | Watchdog_trip { reason } ->
    t.tags.(i) <- 6;
    t.sa.(i) <- reason
  | Safe_mode_entered { reason; fallback } ->
    t.tags.(i) <- 7;
    t.sa.(i) <- reason;
    t.sb.(i) <- fallback
  | Safe_mode_exited -> t.tags.(i) <- 8
  | Checkpoint_saved { actor } ->
    t.tags.(i) <- 9;
    t.sa.(i) <- actor
  | Checkpoint_rejected { actor } ->
    t.tags.(i) <- 10;
    t.sa.(i) <- actor
  | Checkpoint_restored { actor; warm } ->
    t.tags.(i) <- 11;
    t.sa.(i) <- actor;
    t.ia.(i) <- Bool.to_int warm
  | Transport_send { src; dst } ->
    t.tags.(i) <- 12;
    t.sa.(i) <- src;
    t.sb.(i) <- dst
  | Transport_dropped { src; dst; reason } ->
    t.tags.(i) <- 13;
    t.sa.(i) <- src;
    t.sb.(i) <- dst;
    t.sc.(i) <- reason
  | Transport_delivered { src; dst; delay } ->
    t.tags.(i) <- 14;
    t.sa.(i) <- src;
    t.sb.(i) <- dst;
    t.fa.(i) <- delay
  | Health_transition { endpoint; alive } ->
    t.tags.(i) <- 15;
    t.sa.(i) <- endpoint;
    t.ia.(i) <- Bool.to_int alive
  | Span { span; parent; trace; kind; actor } ->
    t.tags.(i) <- 16;
    t.ia.(i) <- span;
    t.ib.(i) <- parent;
    t.ic.(i) <- trace;
    t.sa.(i) <- kind;
    t.sb.(i) <- actor
  | Note { name; value } ->
    t.tags.(i) <- 17;
    t.sa.(i) <- name;
    t.fa.(i) <- value
  | Alert_raised { alert; severity; value } ->
    t.tags.(i) <- 18;
    t.sa.(i) <- alert;
    t.sb.(i) <- severity;
    t.fa.(i) <- value
  | Alert_cleared { alert; value } ->
    t.tags.(i) <- 19;
    t.sa.(i) <- alert;
    t.fa.(i) <- value

let load t i =
  match t.tags.(i) with
  | 0 ->
    Iteration
      { iteration = t.ia.(i); utility = t.fa.(i); movement = t.fb.(i); guards = t.ib.(i) }
  | 1 -> Allocation_solved { task = t.ia.(i); utility = t.fa.(i) }
  | 2 ->
    Price_updated
      {
        resource = t.ia.(i);
        mu = t.fa.(i);
        step = t.fb.(i);
        share_sum = t.fc.(i);
        capacity = t.fd.(i);
        congested = t.ib.(i) <> 0;
      }
  | 3 ->
    Path_price_updated
      {
        path = t.ia.(i);
        lambda = t.fa.(i);
        step = t.fb.(i);
        latency = t.fc.(i);
        critical_time = t.fd.(i);
      }
  | 4 -> Guard_fired { site = t.sa.(i) }
  | 5 -> Correction_applied { subtask = t.sa.(i); offset = t.fa.(i) }
  | 6 -> Watchdog_trip { reason = t.sa.(i) }
  | 7 -> Safe_mode_entered { reason = t.sa.(i); fallback = t.sb.(i) }
  | 8 -> Safe_mode_exited
  | 9 -> Checkpoint_saved { actor = t.sa.(i) }
  | 10 -> Checkpoint_rejected { actor = t.sa.(i) }
  | 11 -> Checkpoint_restored { actor = t.sa.(i); warm = t.ia.(i) <> 0 }
  | 12 -> Transport_send { src = t.sa.(i); dst = t.sb.(i) }
  | 13 -> Transport_dropped { src = t.sa.(i); dst = t.sb.(i); reason = t.sc.(i) }
  | 14 -> Transport_delivered { src = t.sa.(i); dst = t.sb.(i); delay = t.fa.(i) }
  | 15 -> Health_transition { endpoint = t.sa.(i); alive = t.ia.(i) <> 0 }
  | 16 ->
    Span
      { span = t.ia.(i); parent = t.ib.(i); trace = t.ic.(i); kind = t.sa.(i); actor = t.sb.(i) }
  | 17 -> Note { name = t.sa.(i); value = t.fa.(i) }
  | 18 -> Alert_raised { alert = t.sa.(i); severity = t.sb.(i); value = t.fa.(i) }
  | _ -> Alert_cleared { alert = t.sa.(i); value = t.fa.(i) }

(* Store before fanning out: a sink may re-enter [emit] (the Monitor
   alert bus stamps transitions into the stream it observes), and this
   order gives the nested record the next slot and sequence number
   instead of colliding with its trigger's. *)
let emit t ~at event =
  let seq = t.emitted in
  t.ats.(t.pos) <- at;
  store t t.pos event;
  t.pos <- (t.pos + 1) mod t.capacity;
  if t.len < t.capacity then t.len <- t.len + 1;
  t.emitted <- seq + 1;
  match t.sinks with
  | [] -> ()
  | sinks ->
    let r = { seq; at; event } in
    List.iter (fun sink -> sink r) sinks

(* Appending keeps the list in attach order so the hot path never
   reverses; attaching is rare. *)
let attach t sink = t.sinks <- t.sinks @ [ sink ]

let records t =
  let start = (t.pos - t.len + t.capacity) mod t.capacity in
  let first_seq = t.emitted - t.len in
  let acc = ref [] in
  for k = t.len - 1 downto 0 do
    let i = (start + k) mod t.capacity in
    acc := { seq = first_seq + k; at = t.ats.(i); event = load t i } :: !acc
  done;
  !acc

let emitted t = t.emitted

let dropped t = t.emitted - t.len

let clear t =
  (* Release the string references; scalar columns can stay stale. *)
  Array.fill t.sa 0 t.capacity "";
  Array.fill t.sb 0 t.capacity "";
  Array.fill t.sc 0 t.capacity "";
  t.pos <- 0;
  t.len <- 0;
  t.emitted <- 0

let event_name = function
  | Iteration _ -> "iteration"
  | Allocation_solved _ -> "allocation_solved"
  | Price_updated _ -> "price_updated"
  | Path_price_updated _ -> "path_price_updated"
  | Guard_fired _ -> "guard_fired"
  | Correction_applied _ -> "correction_applied"
  | Watchdog_trip _ -> "watchdog_trip"
  | Safe_mode_entered _ -> "safe_mode_entered"
  | Safe_mode_exited -> "safe_mode_exited"
  | Checkpoint_saved _ -> "checkpoint_saved"
  | Checkpoint_rejected _ -> "checkpoint_rejected"
  | Checkpoint_restored _ -> "checkpoint_restored"
  | Transport_send _ -> "transport_send"
  | Transport_dropped _ -> "transport_dropped"
  | Transport_delivered _ -> "transport_delivered"
  | Health_transition _ -> "health_transition"
  | Span _ -> "span"
  | Note _ -> "note"
  | Alert_raised _ -> "alert_raised"
  | Alert_cleared _ -> "alert_cleared"

let event_fields = function
  | Iteration { iteration; utility; movement; guards } ->
    [
      ("iteration", Jsonl.Num (float_of_int iteration));
      ("utility", Jsonl.Num utility);
      ("movement", Jsonl.Num movement);
      ("guards", Jsonl.Num (float_of_int guards));
    ]
  | Allocation_solved { task; utility } ->
    [ ("task", Jsonl.Num (float_of_int task)); ("utility", Jsonl.Num utility) ]
  | Price_updated { resource; mu; step; share_sum; capacity; congested } ->
    [
      ("resource", Jsonl.Num (float_of_int resource));
      ("mu", Jsonl.Num mu);
      ("step", Jsonl.Num step);
      ("share_sum", Jsonl.Num share_sum);
      ("capacity", Jsonl.Num capacity);
      ("congested", Jsonl.Bool congested);
    ]
  | Path_price_updated { path; lambda; step; latency; critical_time } ->
    [
      ("path", Jsonl.Num (float_of_int path));
      ("lambda", Jsonl.Num lambda);
      ("step", Jsonl.Num step);
      ("latency", Jsonl.Num latency);
      ("critical_time", Jsonl.Num critical_time);
    ]
  | Guard_fired { site } -> [ ("site", Jsonl.Str site) ]
  | Correction_applied { subtask; offset } ->
    [ ("subtask", Jsonl.Str subtask); ("offset", Jsonl.Num offset) ]
  | Watchdog_trip { reason } -> [ ("reason", Jsonl.Str reason) ]
  | Safe_mode_entered { reason; fallback } ->
    [ ("reason", Jsonl.Str reason); ("fallback", Jsonl.Str fallback) ]
  | Safe_mode_exited -> []
  | Checkpoint_saved { actor } -> [ ("actor", Jsonl.Str actor) ]
  | Checkpoint_rejected { actor } -> [ ("actor", Jsonl.Str actor) ]
  | Checkpoint_restored { actor; warm } ->
    [ ("actor", Jsonl.Str actor); ("warm", Jsonl.Bool warm) ]
  | Transport_send { src; dst } -> [ ("src", Jsonl.Str src); ("dst", Jsonl.Str dst) ]
  | Transport_dropped { src; dst; reason } ->
    [ ("src", Jsonl.Str src); ("dst", Jsonl.Str dst); ("reason", Jsonl.Str reason) ]
  | Transport_delivered { src; dst; delay } ->
    [ ("src", Jsonl.Str src); ("dst", Jsonl.Str dst); ("delay", Jsonl.Num delay) ]
  | Health_transition { endpoint; alive } ->
    [ ("endpoint", Jsonl.Str endpoint); ("alive", Jsonl.Bool alive) ]
  | Span { span; parent; trace; kind; actor } ->
    [
      ("span", Jsonl.Num (float_of_int span));
      ("parent", Jsonl.Num (float_of_int parent));
      ("trace", Jsonl.Num (float_of_int trace));
      ("kind", Jsonl.Str kind);
      ("actor", Jsonl.Str actor);
    ]
  | Note { name; value } -> [ ("name", Jsonl.Str name); ("value", Jsonl.Num value) ]
  | Alert_raised { alert; severity; value } ->
    [ ("alert", Jsonl.Str alert); ("severity", Jsonl.Str severity); ("value", Jsonl.Num value) ]
  | Alert_cleared { alert; value } ->
    [ ("alert", Jsonl.Str alert); ("value", Jsonl.Num value) ]

let record_to_json r =
  Jsonl.Obj
    (("seq", Jsonl.Num (float_of_int r.seq))
    :: ("at", Jsonl.Num r.at)
    :: ("type", Jsonl.Str (event_name r.event))
    :: event_fields r.event)

let record_to_string r = Jsonl.to_string (record_to_json r)

let write_jsonl t oc =
  List.iter
    (fun r ->
      output_string oc (record_to_string r);
      output_char oc '\n')
    (records t)

let memory_sink () =
  let acc = ref [] in
  ((fun r -> acc := r :: !acc), fun () -> List.rev !acc)

let merge streams =
  (* (at, stream index, seq): the same total order the deterministic-merge
     engine imposes on cross-shard deliveries. List.stable_sort on the
     tagged concatenation keeps equal keys (impossible by construction:
     (stream, seq) is unique) in input order anyway. *)
  let tagged =
    List.concat (List.mapi (fun shard rs -> List.map (fun r -> (shard, r)) rs) streams)
  in
  let cmp (sa, (ra : record)) (sb, (rb : record)) =
    match Float.compare ra.at rb.at with
    | 0 -> ( match Int.compare sa sb with 0 -> Int.compare ra.seq rb.seq | c -> c)
    | c -> c
  in
  List.map snd (List.stable_sort cmp tagged)

(* --- decoding (inverse of record_to_json) ----------------------------- *)

exception Decode of string

let decode_event ty json =
  let get kind conv k =
    match Option.bind (Jsonl.member k json) conv with
    | Some v -> v
    | None -> raise (Decode (Printf.sprintf "%s: missing or non-%s field %S" ty kind k))
  in
  let num = get "number" Jsonl.num in
  let str = get "string" Jsonl.str in
  let flag = get "boolean" Jsonl.bool in
  let int k = int_of_float (num k) in
  match ty with
  | "iteration" ->
    Iteration
      {
        iteration = int "iteration";
        utility = num "utility";
        movement = num "movement";
        guards = int "guards";
      }
  | "allocation_solved" -> Allocation_solved { task = int "task"; utility = num "utility" }
  | "price_updated" ->
    Price_updated
      {
        resource = int "resource";
        mu = num "mu";
        step = num "step";
        share_sum = num "share_sum";
        capacity = num "capacity";
        congested = flag "congested";
      }
  | "path_price_updated" ->
    Path_price_updated
      {
        path = int "path";
        lambda = num "lambda";
        step = num "step";
        latency = num "latency";
        critical_time = num "critical_time";
      }
  | "guard_fired" -> Guard_fired { site = str "site" }
  | "correction_applied" -> Correction_applied { subtask = str "subtask"; offset = num "offset" }
  | "watchdog_trip" -> Watchdog_trip { reason = str "reason" }
  | "safe_mode_entered" -> Safe_mode_entered { reason = str "reason"; fallback = str "fallback" }
  | "safe_mode_exited" -> Safe_mode_exited
  | "checkpoint_saved" -> Checkpoint_saved { actor = str "actor" }
  | "checkpoint_rejected" -> Checkpoint_rejected { actor = str "actor" }
  | "checkpoint_restored" -> Checkpoint_restored { actor = str "actor"; warm = flag "warm" }
  | "transport_send" -> Transport_send { src = str "src"; dst = str "dst" }
  | "transport_dropped" ->
    Transport_dropped { src = str "src"; dst = str "dst"; reason = str "reason" }
  | "transport_delivered" ->
    Transport_delivered { src = str "src"; dst = str "dst"; delay = num "delay" }
  | "health_transition" -> Health_transition { endpoint = str "endpoint"; alive = flag "alive" }
  | "span" ->
    Span
      {
        span = int "span";
        parent = int "parent";
        trace = int "trace";
        kind = str "kind";
        actor = str "actor";
      }
  | "note" -> Note { name = str "name"; value = num "value" }
  | "alert_raised" ->
    Alert_raised { alert = str "alert"; severity = str "severity"; value = num "value" }
  | "alert_cleared" -> Alert_cleared { alert = str "alert"; value = num "value" }
  | other -> raise (Decode (Printf.sprintf "unknown event type %S" other))

let record_of_json json =
  match
    let get kind conv k =
      match Option.bind (Jsonl.member k json) conv with
      | Some v -> v
      | None -> raise (Decode (Printf.sprintf "missing or non-%s field %S" kind k))
    in
    let ty = get "string" Jsonl.str "type" in
    {
      seq = int_of_float (get "number" Jsonl.num "seq");
      at = get "number" Jsonl.num "at";
      event = decode_event ty json;
    }
  with
  | r -> Ok r
  | exception Decode msg -> Error msg

let record_of_string line =
  match Jsonl.parse line with
  | Error e -> Error e
  | Ok json -> record_of_json json
