type event =
  | Iteration of { iteration : int; utility : float; movement : float; guards : int }
  | Allocation_solved of { task : int; utility : float }
  | Price_updated of {
      resource : int;
      mu : float;
      step : float;
      share_sum : float;
      capacity : float;
      congested : bool;
    }
  | Path_price_updated of {
      path : int;
      lambda : float;
      step : float;
      latency : float;
      critical_time : float;
    }
  | Guard_fired of { site : string }
  | Correction_applied of { subtask : string; offset : float }
  | Watchdog_trip of { reason : string }
  | Safe_mode_entered of { reason : string; fallback : string }
  | Safe_mode_exited
  | Checkpoint_saved of { actor : string }
  | Checkpoint_rejected of { actor : string }
  | Checkpoint_restored of { actor : string; warm : bool }
  | Transport_send of { src : string; dst : string }
  | Transport_dropped of { src : string; dst : string; reason : string }
  | Transport_delivered of { src : string; dst : string; delay : float }
  | Health_transition of { endpoint : string; alive : bool }
  | Note of { name : string; value : float }

type record = { seq : int; at : float; event : event }

(* The ring stores events column-wise — a tag array plus unboxed
   float/int columns and string columns for each operand — rather than
   as [event] values. A retained ring of heap-allocated payloads
   (variant blocks with boxed floats) keeps a window of young blocks
   permanently live, so every overwrite cycle promotes them to the
   major heap; at realistic emission rates that promotion dominated the
   entire observability budget. Flattened, an emit is a handful of
   scalar array stores and allocates nothing; [event] values (and
   {!record}s) are synthesized lazily on read and for sinks. *)
type t = {
  capacity : int;
  tags : int array;  (* constructor index, declaration order *)
  ats : float array;
  fa : float array;  (* float operands, per-constructor layout below *)
  fb : float array;
  fc : float array;
  fd : float array;
  ia : int array;  (* int/bool operands *)
  ib : int array;
  sa : string array;  (* string operands; shared, never copied *)
  sb : string array;
  sc : string array;
  mutable pos : int;  (* next write slot *)
  mutable len : int;  (* valid entries *)
  mutable emitted : int;
  mutable sinks : (record -> unit) list;  (* attach order *)
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: non-positive capacity";
  {
    capacity;
    tags = Array.make capacity 0;
    ats = Array.make capacity 0.;
    fa = Array.make capacity 0.;
    fb = Array.make capacity 0.;
    fc = Array.make capacity 0.;
    fd = Array.make capacity 0.;
    ia = Array.make capacity 0;
    ib = Array.make capacity 0;
    sa = Array.make capacity "";
    sb = Array.make capacity "";
    sc = Array.make capacity "";
    pos = 0;
    len = 0;
    emitted = 0;
    sinks = [];
  }

(* Column layout: only the slots a constructor uses are written on emit
   and read back on decode; the rest keep stale values. *)
let store t i = function
  | Iteration { iteration; utility; movement; guards } ->
    t.tags.(i) <- 0;
    t.ia.(i) <- iteration;
    t.ib.(i) <- guards;
    t.fa.(i) <- utility;
    t.fb.(i) <- movement
  | Allocation_solved { task; utility } ->
    t.tags.(i) <- 1;
    t.ia.(i) <- task;
    t.fa.(i) <- utility
  | Price_updated { resource; mu; step; share_sum; capacity; congested } ->
    t.tags.(i) <- 2;
    t.ia.(i) <- resource;
    t.ib.(i) <- Bool.to_int congested;
    t.fa.(i) <- mu;
    t.fb.(i) <- step;
    t.fc.(i) <- share_sum;
    t.fd.(i) <- capacity
  | Path_price_updated { path; lambda; step; latency; critical_time } ->
    t.tags.(i) <- 3;
    t.ia.(i) <- path;
    t.fa.(i) <- lambda;
    t.fb.(i) <- step;
    t.fc.(i) <- latency;
    t.fd.(i) <- critical_time
  | Guard_fired { site } ->
    t.tags.(i) <- 4;
    t.sa.(i) <- site
  | Correction_applied { subtask; offset } ->
    t.tags.(i) <- 5;
    t.sa.(i) <- subtask;
    t.fa.(i) <- offset
  | Watchdog_trip { reason } ->
    t.tags.(i) <- 6;
    t.sa.(i) <- reason
  | Safe_mode_entered { reason; fallback } ->
    t.tags.(i) <- 7;
    t.sa.(i) <- reason;
    t.sb.(i) <- fallback
  | Safe_mode_exited -> t.tags.(i) <- 8
  | Checkpoint_saved { actor } ->
    t.tags.(i) <- 9;
    t.sa.(i) <- actor
  | Checkpoint_rejected { actor } ->
    t.tags.(i) <- 10;
    t.sa.(i) <- actor
  | Checkpoint_restored { actor; warm } ->
    t.tags.(i) <- 11;
    t.sa.(i) <- actor;
    t.ia.(i) <- Bool.to_int warm
  | Transport_send { src; dst } ->
    t.tags.(i) <- 12;
    t.sa.(i) <- src;
    t.sb.(i) <- dst
  | Transport_dropped { src; dst; reason } ->
    t.tags.(i) <- 13;
    t.sa.(i) <- src;
    t.sb.(i) <- dst;
    t.sc.(i) <- reason
  | Transport_delivered { src; dst; delay } ->
    t.tags.(i) <- 14;
    t.sa.(i) <- src;
    t.sb.(i) <- dst;
    t.fa.(i) <- delay
  | Health_transition { endpoint; alive } ->
    t.tags.(i) <- 15;
    t.sa.(i) <- endpoint;
    t.ia.(i) <- Bool.to_int alive
  | Note { name; value } ->
    t.tags.(i) <- 16;
    t.sa.(i) <- name;
    t.fa.(i) <- value

let load t i =
  match t.tags.(i) with
  | 0 ->
    Iteration
      { iteration = t.ia.(i); utility = t.fa.(i); movement = t.fb.(i); guards = t.ib.(i) }
  | 1 -> Allocation_solved { task = t.ia.(i); utility = t.fa.(i) }
  | 2 ->
    Price_updated
      {
        resource = t.ia.(i);
        mu = t.fa.(i);
        step = t.fb.(i);
        share_sum = t.fc.(i);
        capacity = t.fd.(i);
        congested = t.ib.(i) <> 0;
      }
  | 3 ->
    Path_price_updated
      {
        path = t.ia.(i);
        lambda = t.fa.(i);
        step = t.fb.(i);
        latency = t.fc.(i);
        critical_time = t.fd.(i);
      }
  | 4 -> Guard_fired { site = t.sa.(i) }
  | 5 -> Correction_applied { subtask = t.sa.(i); offset = t.fa.(i) }
  | 6 -> Watchdog_trip { reason = t.sa.(i) }
  | 7 -> Safe_mode_entered { reason = t.sa.(i); fallback = t.sb.(i) }
  | 8 -> Safe_mode_exited
  | 9 -> Checkpoint_saved { actor = t.sa.(i) }
  | 10 -> Checkpoint_rejected { actor = t.sa.(i) }
  | 11 -> Checkpoint_restored { actor = t.sa.(i); warm = t.ia.(i) <> 0 }
  | 12 -> Transport_send { src = t.sa.(i); dst = t.sb.(i) }
  | 13 -> Transport_dropped { src = t.sa.(i); dst = t.sb.(i); reason = t.sc.(i) }
  | 14 -> Transport_delivered { src = t.sa.(i); dst = t.sb.(i); delay = t.fa.(i) }
  | 15 -> Health_transition { endpoint = t.sa.(i); alive = t.ia.(i) <> 0 }
  | _ -> Note { name = t.sa.(i); value = t.fa.(i) }

let emit t ~at event =
  (match t.sinks with
  | [] -> ()
  | sinks ->
    let r = { seq = t.emitted; at; event } in
    List.iter (fun sink -> sink r) sinks);
  t.ats.(t.pos) <- at;
  store t t.pos event;
  t.pos <- (t.pos + 1) mod t.capacity;
  if t.len < t.capacity then t.len <- t.len + 1;
  t.emitted <- t.emitted + 1

(* Appending keeps the list in attach order so the hot path never
   reverses; attaching is rare. *)
let attach t sink = t.sinks <- t.sinks @ [ sink ]

let records t =
  let start = (t.pos - t.len + t.capacity) mod t.capacity in
  let first_seq = t.emitted - t.len in
  let acc = ref [] in
  for k = t.len - 1 downto 0 do
    let i = (start + k) mod t.capacity in
    acc := { seq = first_seq + k; at = t.ats.(i); event = load t i } :: !acc
  done;
  !acc

let emitted t = t.emitted

let dropped t = t.emitted - t.len

let clear t =
  (* Release the string references; scalar columns can stay stale. *)
  Array.fill t.sa 0 t.capacity "";
  Array.fill t.sb 0 t.capacity "";
  Array.fill t.sc 0 t.capacity "";
  t.pos <- 0;
  t.len <- 0;
  t.emitted <- 0

let event_name = function
  | Iteration _ -> "iteration"
  | Allocation_solved _ -> "allocation_solved"
  | Price_updated _ -> "price_updated"
  | Path_price_updated _ -> "path_price_updated"
  | Guard_fired _ -> "guard_fired"
  | Correction_applied _ -> "correction_applied"
  | Watchdog_trip _ -> "watchdog_trip"
  | Safe_mode_entered _ -> "safe_mode_entered"
  | Safe_mode_exited -> "safe_mode_exited"
  | Checkpoint_saved _ -> "checkpoint_saved"
  | Checkpoint_rejected _ -> "checkpoint_rejected"
  | Checkpoint_restored _ -> "checkpoint_restored"
  | Transport_send _ -> "transport_send"
  | Transport_dropped _ -> "transport_dropped"
  | Transport_delivered _ -> "transport_delivered"
  | Health_transition _ -> "health_transition"
  | Note _ -> "note"

let event_fields = function
  | Iteration { iteration; utility; movement; guards } ->
    [
      ("iteration", Jsonl.Num (float_of_int iteration));
      ("utility", Jsonl.Num utility);
      ("movement", Jsonl.Num movement);
      ("guards", Jsonl.Num (float_of_int guards));
    ]
  | Allocation_solved { task; utility } ->
    [ ("task", Jsonl.Num (float_of_int task)); ("utility", Jsonl.Num utility) ]
  | Price_updated { resource; mu; step; share_sum; capacity; congested } ->
    [
      ("resource", Jsonl.Num (float_of_int resource));
      ("mu", Jsonl.Num mu);
      ("step", Jsonl.Num step);
      ("share_sum", Jsonl.Num share_sum);
      ("capacity", Jsonl.Num capacity);
      ("congested", Jsonl.Bool congested);
    ]
  | Path_price_updated { path; lambda; step; latency; critical_time } ->
    [
      ("path", Jsonl.Num (float_of_int path));
      ("lambda", Jsonl.Num lambda);
      ("step", Jsonl.Num step);
      ("latency", Jsonl.Num latency);
      ("critical_time", Jsonl.Num critical_time);
    ]
  | Guard_fired { site } -> [ ("site", Jsonl.Str site) ]
  | Correction_applied { subtask; offset } ->
    [ ("subtask", Jsonl.Str subtask); ("offset", Jsonl.Num offset) ]
  | Watchdog_trip { reason } -> [ ("reason", Jsonl.Str reason) ]
  | Safe_mode_entered { reason; fallback } ->
    [ ("reason", Jsonl.Str reason); ("fallback", Jsonl.Str fallback) ]
  | Safe_mode_exited -> []
  | Checkpoint_saved { actor } -> [ ("actor", Jsonl.Str actor) ]
  | Checkpoint_rejected { actor } -> [ ("actor", Jsonl.Str actor) ]
  | Checkpoint_restored { actor; warm } ->
    [ ("actor", Jsonl.Str actor); ("warm", Jsonl.Bool warm) ]
  | Transport_send { src; dst } -> [ ("src", Jsonl.Str src); ("dst", Jsonl.Str dst) ]
  | Transport_dropped { src; dst; reason } ->
    [ ("src", Jsonl.Str src); ("dst", Jsonl.Str dst); ("reason", Jsonl.Str reason) ]
  | Transport_delivered { src; dst; delay } ->
    [ ("src", Jsonl.Str src); ("dst", Jsonl.Str dst); ("delay", Jsonl.Num delay) ]
  | Health_transition { endpoint; alive } ->
    [ ("endpoint", Jsonl.Str endpoint); ("alive", Jsonl.Bool alive) ]
  | Note { name; value } -> [ ("name", Jsonl.Str name); ("value", Jsonl.Num value) ]

let record_to_json r =
  Jsonl.Obj
    (("seq", Jsonl.Num (float_of_int r.seq))
    :: ("at", Jsonl.Num r.at)
    :: ("type", Jsonl.Str (event_name r.event))
    :: event_fields r.event)

let record_to_string r = Jsonl.to_string (record_to_json r)

let write_jsonl t oc =
  List.iter
    (fun r ->
      output_string oc (record_to_string r);
      output_char oc '\n')
    (records t)

let memory_sink () =
  let acc = ref [] in
  ((fun r -> acc := r :: !acc), fun () -> List.rev !acc)
