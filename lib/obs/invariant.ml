type violation = { seq : int; at : float; what : string }

let pp_violation fmt v = Format.fprintf fmt "[seq %d, t=%.3f] %s" v.seq v.at v.what

let check_constraints ?(tolerance = 0.) ~from records =
  let violations = ref [] in
  let flag (r : Trace.record) what = violations := { seq = r.seq; at = r.at; what } :: !violations in
  List.iter
    (fun (r : Trace.record) ->
      if r.at >= from then
        match r.event with
        | Trace.Price_updated { resource; share_sum; capacity; _ } ->
          if not (Float.is_finite share_sum) then
            flag r (Printf.sprintf "resource %d: non-finite share sum" resource)
          else if share_sum > capacity *. (1. +. tolerance) then
            flag r
              (Printf.sprintf "resource %d: Eq. 3 violated, share sum %.6f > B=%.6f (tol %.3f)"
                 resource share_sum capacity tolerance)
        | Trace.Path_price_updated { path; latency; critical_time; _ } ->
          if not (Float.is_finite latency) then
            flag r (Printf.sprintf "path %d: non-finite latency" path)
          else if latency > critical_time *. (1. +. tolerance) then
            flag r
              (Printf.sprintf "path %d: Eq. 4 violated, latency %.4f > C=%.4f (tol %.3f)" path
                 latency critical_time tolerance)
        | _ -> ())
    records;
  List.rev !violations

let safe_entries_preceded_by_trip records =
  (* Walk in sequence order; a trip arms one entry, an entry consumes it. *)
  let armed = ref false in
  let ok = ref true in
  List.iter
    (fun (r : Trace.record) ->
      match r.event with
      | Trace.Watchdog_trip _ -> armed := true
      | Trace.Safe_mode_entered _ ->
        if !armed then armed := false else ok := false
      | _ -> ())
    records;
  !ok

let spans_well_formed records =
  let seen = Hashtbl.create 256 in
  (* Maps span id -> trace id for every span already emitted. *)
  let last_id = ref (-1) in
  let ok = ref true in
  List.iter
    (fun (r : Trace.record) ->
      match r.event with
      | Trace.Span { span; parent; trace; kind; _ } ->
        if span <= !last_id then ok := false;
        last_id := span;
        if not (List.mem kind [ "price"; "alloc"; "msg" ]) then ok := false;
        (match Hashtbl.find_opt seen parent with
        | Some parent_trace ->
          if parent >= span || parent_trace <> trace then ok := false
        | None ->
          (* Unknown parent: legal only as a tree root (the parent may
             also predate the collected stream, in which case the span
             still roots its own reconstructed tree). *)
          if parent >= 0 && parent >= span then ok := false);
        Hashtbl.replace seen span trace
      | _ -> ())
    records;
  !ok

(* The merged-stream variant of [spans_well_formed]. A merge of per-shard
   traces interleaves the shards' strided span-id progressions, so global
   id monotonicity — an ordering artifact of the single-threaded emitter,
   not a causal property — no longer holds and must not be required.
   What must still hold on any correct merge: ids are globally unique
   (the strided allocation guarantees it), kinds are valid, no span is
   its own parent, and a child agrees with its parent's trace id whenever
   the parent is present in the stream (it may legally predate it). *)
let spans_well_formed_merged records =
  let seen = Hashtbl.create 256 in
  let ok = ref true in
  (* Pass 1: uniqueness, kind validity, self-parenting. *)
  List.iter
    (fun (r : Trace.record) ->
      match r.event with
      | Trace.Span { span; trace; parent; kind; _ } ->
        if Hashtbl.mem seen span then ok := false;
        if not (List.mem kind [ "price"; "alloc"; "msg" ]) then ok := false;
        if parent = span then ok := false;
        Hashtbl.replace seen span trace
      | _ -> ())
    records;
  (* Pass 2: parent/child trace agreement, wherever the parent landed in
     the merged order (a child on a fast shard may precede its parent's
     record at the same timestamp). *)
  List.iter
    (fun (r : Trace.record) ->
      match r.event with
      | Trace.Span { span = _; parent; trace; _ } -> (
        match Hashtbl.find_opt seen parent with
        | Some parent_trace -> if parent_trace <> trace then ok := false
        | None -> ())
      | _ -> ())
    records;
  !ok

let monotone records =
  let rec go = function
    | (a : Trace.record) :: (b : Trace.record) :: rest ->
      a.seq < b.seq && a.at <= b.at && go (b :: rest)
    | _ -> true
  in
  go records
