(** Bounded, rotating JSONL trace sink.

    A {!Trace.attach}-compatible sink that appends one JSONL line per
    record to a file and {b rotates} it when the active segment exceeds
    a byte or record cap: the segment is closed and renamed [path.1],
    existing [path.k] shift to [path.(k+1)], and segments beyond the
    retention count are deleted. Total disk usage is therefore bounded
    by roughly [(retain + 1) * max_bytes] no matter how long the run —
    the property a multi-hour soak needs so tracing cannot fill the
    disk. Plain single-file streaming (the [lla_cli trace] default)
    does not go through this module and is unchanged. *)

type t

val create : ?max_bytes:int -> ?max_records:int -> ?retain:int -> path:string -> unit -> t
(** Opens [path] for writing (truncating an existing file). A segment
    rotates after the record that pushes it past [max_bytes] (default
    [64 * 1024 * 1024]) or up to [max_records] records (default: no
    record cap), so a segment may overshoot the byte cap by at most one
    record. [retain] (default 3) rotated segments are kept besides the
    active file; [retain = 0] means rotation simply truncates.
    @raise Invalid_argument on non-positive caps or negative [retain];
    @raise Sys_error when the file cannot be opened. *)

val sink : t -> Trace.record -> unit
(** The sink to pass to {!Trace.attach}. Writes are line-buffered by the
    channel; call {!close} (or {!flush}) before reading the files. *)

val flush : t -> unit

val close : t -> unit
(** Flushes and closes the active segment. Further {!sink} calls are
    silently dropped. *)

val records_written : t -> int
(** Total records across all segments, including deleted ones. *)

val rotations : t -> int

val segments : t -> string list
(** Existing segment paths, newest first, starting with the active
    file. *)
