(* Nodes are interned per (parent, name): the hot path after the first
   call to a phase is one list scan over the parent's (few) children and
   two clock reads. Children are kept in first-seen order so the report
   is stable across runs.

   [total] is a [float ref] rather than a mutable field: in a mixed
   record a float field is boxed, so [node.total <- v] would allocate a
   fresh box on every phase exit — a per-tick allocation in the solver
   kernel's hot loop. A [float ref] is a flat one-float record mutated
   in place. *)
type node = {
  name : string;
  total : float ref;  (* seconds, inclusive of children *)
  mutable calls : int;
  mutable children : node list;  (* reverse first-seen order *)
}

type t = {
  clock : unit -> float;
  root : node;
  mutable current : node;
  mutable enabled : bool;
}

let make_node name = { name; total = ref 0.; calls = 0; children = [] }

let create ?(clock = Unix.gettimeofday) ?(enabled = true) () =
  let root = make_node "total" in
  { clock; root; current = root; enabled }

let disabled () = create ~enabled:false ()

let enabled t = t.enabled

let set_enabled t on = t.enabled <- on

(* Top-level so the scan allocates nothing: a [List.find_opt] with an
   inline predicate would build a closure over [name] on every call, and
   [Some n] would box the hit. Raising the preallocated [Not_found] keeps
   the interned-node fast path allocation-free. *)
let rec find_child name = function
  | [] -> raise Not_found
  | n :: rest -> if String.equal n.name name then n else find_child name rest

let child_of parent name =
  match find_child name parent.children with
  | n -> n
  | exception Not_found ->
    let n = make_node name in
    parent.children <- n :: parent.children;
    n

let time t name f =
  if not t.enabled then f ()
  else begin
    let node = child_of t.current name in
    let saved = t.current in
    t.current <- node;
    let t0 = t.clock () in
    (* Hand-rolled instead of [Fun.protect]: this runs on every control
       round, and skipping the closure allocation keeps the enabled
       path to two clock reads plus field writes. *)
    let close () =
      node.total := !(node.total) +. (t.clock () -. t0);
      node.calls <- node.calls + 1;
      t.current <- saved
    in
    match f () with
    | v ->
      close ();
      v
    | exception e ->
      close ();
      raise e
  end

let reset t =
  t.root.total := 0.;
  t.root.calls <- 0;
  t.root.children <- [];
  t.current <- t.root

(* --- report ----------------------------------------------------------- *)

let sum_children node = List.fold_left (fun acc c -> acc +. !(c.total)) 0. node.children

let report t =
  let buf = Buffer.create 1024 in
  let grand_total =
    (* The root never runs inside [time]; its total is its children's. *)
    let s = sum_children t.root in
    if s > 0. then s else 1e-12
  in
  Buffer.add_string buf
    (Printf.sprintf "%-40s %10s %9s %10s %7s\n" "phase" "total ms" "calls" "ms/call" "%");
  let rec walk depth node =
    let children = List.rev node.children in
    let sorted = List.sort (fun a b -> Float.compare !(b.total) !(a.total)) children in
    List.iter
      (fun c ->
        let indent = String.make (2 * depth) ' ' in
        Buffer.add_string buf
          (Printf.sprintf "%-40s %10.2f %9d %10.4f %6.1f%%\n"
             (indent ^ c.name) (!(c.total) *. 1e3) c.calls
             (if c.calls > 0 then !(c.total) *. 1e3 /. float_of_int c.calls else 0.)
             (!(c.total) /. grand_total *. 100.));
        (* Time inside this phase not attributed to any sub-phase. *)
        let self = !(c.total) -. sum_children c in
        if c.children <> [] && self > 1e-9 then
          Buffer.add_string buf
            (Printf.sprintf "%-40s %10.2f %9s %10s %6.1f%%\n"
               (String.make (2 * (depth + 1)) ' ' ^ "(self)")
               (self *. 1e3) "" "" (self /. grand_total *. 100.));
        walk (depth + 1) c)
      sorted
  in
  walk 0 t.root;
  Buffer.add_string buf
    (Printf.sprintf "%-40s %10.2f\n" "total" (grand_total *. 1e3));
  Buffer.contents buf

type stat = { path : string list; seconds : float; count : int }

let stats t =
  let acc = ref [] in
  let rec walk path node =
    List.iter
      (fun c ->
        let path = path @ [ c.name ] in
        acc := { path; seconds = !(c.total); count = c.calls } :: !acc;
        walk path c)
      (List.rev node.children)
  in
  walk [] t.root;
  List.rev !acc
