(** Metrics registry: named, labeled counters, gauges and histograms with
    O(1) hot-path updates.

    A metric instance is identified by its name plus its (sorted) label
    set; registering the same identity twice returns the {e same} instance,
    so independent components can share a counter without coordination.
    Updates touch only the instance record — no table lookups — which is
    what lets the runtime replace its ad-hoc [mutable int] counters with
    registry-backed ones at identical cost.

    {!expose} renders the whole registry in the Prometheus text
    exposition format (families in registration order, instances in label
    order; histograms with cumulative [_bucket{le=...}], [_sum] and
    [_count] series). *)

type t
(** A registry. *)

type counter

type gauge

type histogram

val create : unit -> t

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> counter
(** Find-or-create. @raise Invalid_argument when the name is already
    registered as a different metric kind. *)

val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val histogram :
  t -> ?help:string -> ?labels:(string * string) list -> ?buckets:float array -> string -> histogram
(** [buckets] are the upper bounds of the cumulative buckets (an implicit
    [+Inf] bucket is always appended); they must be strictly increasing.
    Default: {!default_buckets}. @raise Invalid_argument on an empty or
    non-increasing layout, or when a second registration of the same
    identity passes a different layout. *)

val default_buckets : float array
(** A latency-flavoured layout in ms:
    [0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000]. *)

(** {2 Hot-path updates (O(1); histogram observe is O(buckets))} *)

val incr : counter -> unit

val add : counter -> int -> unit
(** @raise Invalid_argument on a negative increment (counters are
    monotone). *)

val set : gauge -> float -> unit
(** Plain write; leaves the gauge's last-writer stamp untouched (see
    {!set_at}). *)

val set_at : gauge -> at:float -> float -> unit
(** Write plus a last-writer stamp. {!merge} resolves gauges registered
    by several shards in favour of the highest [(at, shard)] writer, so
    any gauge that can be written from more than one shard should be set
    through [set_at] with the engine clock. Stamps start at [-inf] (a
    never-stamped gauge always loses to a stamped one). *)

val gauge_at : gauge -> float
(** The last-writer stamp ([-inf] when the gauge was never {!set_at}). *)

val observe : histogram -> float -> unit

(** {2 Reads} *)

val value : counter -> int

val gauge_value : gauge -> float

val histogram_count : histogram -> int

val histogram_sum : histogram -> float

val bucket_counts : histogram -> (float * int) list
(** Cumulative counts per upper bound, ending with [(infinity, count)]. *)

val quantile : histogram -> q:float -> float option
(** Bucket-interpolated quantile estimate (the Prometheus
    [histogram_quantile] rule): locate the cumulative bucket containing
    rank [q * count] and interpolate linearly between its bounds,
    treating observations as uniform within a bucket. Empty buckets are
    skipped, so [q = 0.] reports the lower edge of the first populated
    bucket rather than the upper edge of an empty one. Ranks landing in
    the open [+Inf] bucket — including every rank when all observations
    exceeded the highest bound, and [nan] observations, which {!observe}
    routes there — report the highest finite bound (there is no upper
    edge to interpolate towards). [None] when the histogram is empty,
    [q] is [nan], or [q] is outside [0, 1]; never raises and never
    divides by an empty bucket. *)

val summary : ?name:string -> histogram -> string
(** One-line [count/sum/mean/p50/p90/p99] digest via {!quantile},
    prefixed with [name] when given; ["<name>: no observations"] on an
    empty histogram. Quantiles come from bucket counts and are always
    finite, but [sum] (and therefore [mean]) accumulates raw observed
    values — a [nan]/[inf] observation deliberately poisons them, making
    the corruption visible in the digest instead of averaging it away. *)

val find_counter : t -> ?labels:(string * string) list -> string -> counter option
(** Lookup without creating (tests, expositions of foreign components). *)

val find_gauge : t -> ?labels:(string * string) list -> string -> gauge option

val find_histogram : t -> ?labels:(string * string) list -> string -> histogram option

val merge : t list -> t
(** Snapshot-merge per-shard registries into one fresh registry (the
    {!Shard_registry} barrier-time merge): counters with the same
    identity sum, histograms add bucket-wise (their layouts must match),
    and gauges resolve last-writer-wins by [(stamp, shard)] — the shard
    index is the position in the input list, so ties between never-
    stamped copies go to the highest shard, deterministically. Family
    order follows the first list element (shard 0), with families only
    later shards registered appended after. The inputs are not modified
    and must be at rest (merge at a barrier, not mid-phase).
    @raise Invalid_argument when the same name is registered with
    different kinds, or a histogram identity with different layouts,
    across shards. *)

val expose : t -> string
(** Prometheus text exposition of every registered metric. Label values
    are escaped per the text format (backslash, double quote, newline);
    [# HELP] text escapes backslash and newline. *)
