type span = { id : int; parent : int; trace : int; kind : string; actor : string; at : float }

type node = { span : span; children : node list }

let spans records =
  List.filter_map
    (fun (r : Trace.record) ->
      match r.event with
      | Trace.Span { span; parent; trace; kind; actor } ->
        Some { id = span; parent; trace; kind; actor; at = r.at }
      | _ -> None)
    records

let trees records =
  let all = spans records in
  let by_id = Hashtbl.create 256 in
  List.iter (fun s -> Hashtbl.replace by_id s.id s) all;
  let kids = Hashtbl.create 256 in
  let roots = ref [] in
  List.iter
    (fun s ->
      if s.parent >= 0 && Hashtbl.mem by_id s.parent then
        Hashtbl.replace kids s.parent (s :: Option.value ~default:[] (Hashtbl.find_opt kids s.parent))
      else roots := s :: !roots)
    all;
  let rec build s =
    let children =
      List.rev_map build (Option.value ~default:[] (Hashtbl.find_opt kids s.id))
    in
    (* Reverse-accumulated twice: children end up in emission (= id) order. *)
    { span = s; children }
  in
  List.rev_map build !roots

(* For each alloc span, walk the parent chain to the price update it
   reacted to, skipping over the message deliveries that relayed it.
   Hitting another alloc span first means this solve ran on its
   fallback parent (no fresh price consumed), exactly the case the
   online histogram also excludes — offline and online agree. *)
let control_latencies records =
  let all = spans records in
  let by_id = Hashtbl.create 256 in
  List.iter (fun s -> Hashtbl.replace by_id s.id s) all;
  let latency_of alloc =
    let rec up id =
      if id < 0 then None
      else
        match Hashtbl.find_opt by_id id with
        | None -> None
        | Some s ->
          if String.equal s.kind "price" then Some (alloc.at -. s.at)
          else if String.equal s.kind "msg" then up s.parent
          else None
    in
    up alloc.parent
  in
  List.filter_map
    (fun s -> if String.equal s.kind "alloc" then latency_of s else None)
    all

let rec end_at n = List.fold_left (fun m c -> Float.max m (end_at c)) n.span.at n.children

let rec critical_path n =
  match n.children with
  | [] -> [ n.span ]
  | first :: rest ->
    let best = List.fold_left (fun b c -> if end_at c > end_at b then c else b) first rest in
    n.span :: critical_path best
