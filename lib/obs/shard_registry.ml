type t = { regs : Metrics.t array }

let create ~shards =
  if shards < 1 then invalid_arg "Shard_registry.create: shards < 1";
  { regs = Array.init shards (fun _ -> Metrics.create ()) }

let of_registries regs =
  if Array.length regs = 0 then invalid_arg "Shard_registry.of_registries: empty";
  { regs }

let shards t = Array.length t.regs

let registry t ~shard = t.regs.(shard)

let merge t = Metrics.merge (Array.to_list t.regs)

let expose t = Metrics.expose (merge t)
