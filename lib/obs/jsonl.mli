(** Minimal JSON values for the observability layer's line-oriented codecs.

    Zero-dependency by design: the trace sinks and the checkpoint codec
    must not pull a JSON library into the hot control plane. One
    deliberate deviation from RFC 8259: non-finite numbers are printed as
    the bare tokens [nan], [inf] and [-inf], and the parser accepts them
    back — the codecs that refuse non-finite state (see
    {!Lla_runtime.Checkpoint}) need to round-trip the poisoned values they
    reject so the refusal path itself is testable. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (no spaces outside strings), suitable
    for JSONL. Integral floats print without a fractional part; other
    finite floats print with 17 significant digits (lossless
    round-trip). *)

val parse : string -> (t, string) result
(** Parse one JSON value; trailing non-whitespace is an error. Accepts the
    non-finite tokens written by {!to_string}. *)

val member : string -> t -> t option
(** [member key (Obj _)] is the value bound to [key], if any; [None] on
    non-objects. *)

val num : t -> float option

val str : t -> string option

val bool : t -> bool option

val arr : t -> t list option
