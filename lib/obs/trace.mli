(** Structured iteration tracing for the LLA control plane.

    Each instrumented layer emits typed {!event}s; the tracer stamps them
    with a monotone sequence number and the caller-supplied time (engine
    ms in the distributed runtime, iteration number in the synchronous
    solver) and stores them in a bounded ring buffer. Pluggable sinks see
    every event as it is emitted, before any ring eviction — use
    {!memory_sink} to collect unbounded streams in tests and
    {!write_jsonl} / {!record_to_string} for the JSONL dump.

    Emission never schedules engine events, never draws randomness and
    never mutates the traced layers, so enabling tracing cannot perturb a
    trajectory — the golden-trace test in [test/test_obs.ml] holds the
    runtime to that. *)

type event =
  | Iteration of { iteration : int; utility : float; movement : float; guards : int }
      (** one synchronous solver step (movement = max relative latency change). *)
  | Allocation_solved of { task : int; utility : float }
      (** a task controller re-solved its allocation (Eq. 7); [utility] is
          that task's utility under its new local assignment (sum the
          latest value per task for the global objective). *)
  | Price_updated of {
      resource : int;
      mu : float;
      step : float;
      share_sum : float;
      capacity : float;
      congested : bool;
    }  (** one resource price update (Eq. 8); carries the Eq. 3 operands. *)
  | Path_price_updated of {
      path : int;
      lambda : float;
      step : float;
      latency : float;
      critical_time : float;
    }  (** one path price update (Eq. 9); carries the Eq. 4 operands. *)
  | Guard_fired of { site : string }
      (** a non-finite value was neutralized at [site]. *)
  | Correction_applied of { subtask : string; offset : float }
      (** the model-error corrector published a new offset (§6.3). *)
  | Watchdog_trip of { reason : string }
      (** a safe-mode trip condition fired (emitted by the watchdog itself,
          before the runtime enacts the fallback). *)
  | Safe_mode_entered of { reason : string; fallback : string }
  | Safe_mode_exited
  | Checkpoint_saved of { actor : string }
  | Checkpoint_rejected of { actor : string }
      (** a snapshot was refused because it contained a non-finite value. *)
  | Checkpoint_restored of { actor : string; warm : bool }
      (** [warm = false] is the cold [mu0] reset fallback. *)
  | Transport_send of { src : string; dst : string }
  | Transport_dropped of { src : string; dst : string; reason : string }
      (** [reason]: ["drop"], ["cut"] (partition), ["down"] (endpoint), or
          ["stale"] (superseded under last-write-wins). *)
  | Transport_delivered of { src : string; dst : string; delay : float }
  | Health_transition of { endpoint : string; alive : bool }
  | Span of { span : int; parent : int; trace : int; kind : string; actor : string }
      (** one node of a causal tree: [span] is this node's id, [parent]
          the id of the span that caused it ([-1] for a root), [trace]
          the id of the tree's root. [kind] is ["price"] (Eq. 8 update at
          a resource agent), ["alloc"] (Eq. 7/9 solve at a task
          controller) or ["msg"] (a transport delivery that was applied);
          [actor] names the endpoint doing the work. See {!Causal}. *)
  | Note of { name : string; value : float }  (** free-form escape hatch. *)
  | Alert_raised of { alert : string; severity : string; value : float }
      (** a {!Monitor} alert entered its active state. [severity] is
          ["info"], ["warning"] or ["critical"]; [value] is the signal
          that crossed the threshold (streak length, spread, drift...). *)
  | Alert_cleared of { alert : string; value : float }
      (** the alert's exit hysteresis released; [value] is the signal at
          clear time. *)

type record = { seq : int; at : float; event : event }

type t

val create : ?capacity:int -> unit -> t
(** Ring buffer of the last [capacity] records (default 4096). Events
    are stored column-wise in unboxed arrays, so an emit allocates
    nothing and a large ring costs only memory, not GC work; attach a
    sink rather than raising the capacity when a complete stream is
    needed.
    @raise Invalid_argument on a non-positive capacity. *)

val emit : t -> at:float -> event -> unit
(** Stamp, store and fan out one event. The record is stored in the ring
    {e before} the sinks run, so a sink may itself call [emit] (the
    {!Monitor} alert bus does, to stamp transitions into the stream it
    observes): the nested record lands after its trigger in the ring and
    gets the next sequence number. Sinks attached before the re-entrant
    one still see records in sequence order. *)

val attach : t -> (record -> unit) -> unit
(** Add a sink; sinks run synchronously in attach order on every emit. *)

val records : t -> record list
(** Retained records, oldest first. *)

val emitted : t -> int
(** Total records ever emitted (= the next sequence number). *)

val dropped : t -> int
(** Records evicted from the ring ([emitted - capacity], floored at 0).
    Sinks saw them; {!records} no longer does. *)

val clear : t -> unit
(** Empty the ring and reset the sequence counter. Sinks stay attached. *)

val event_name : event -> string
(** Stable snake_case tag, also used as ["type"] in the JSON encoding. *)

val record_to_json : record -> Jsonl.t

val record_to_string : record -> string
(** One JSONL line (no trailing newline). *)

val record_of_json : Jsonl.t -> (record, string) result
(** Inverse of {!record_to_json}; [Error] names the missing or
    ill-typed field. Round-trips every constructor, including bare
    [nan]/[inf] payload fields (see {!Jsonl}). *)

val record_of_string : string -> (record, string) result
(** Parse one JSONL line back into a record. *)

val write_jsonl : t -> out_channel -> unit
(** Dump {!records} one JSON object per line. *)

val memory_sink : unit -> (record -> unit) * (unit -> record list)
(** An unbounded collecting sink and its chronological reader. *)

val merge : record list list -> record list
(** Deterministically merge per-shard trace streams into one global
    stream, ordered by [(at, stream index, seq)]. Each input stream must
    be in its own emission order (as {!records} and {!memory_sink}
    readers produce). Records keep their per-stream [seq] stamps, so the
    merged stream's [seq] values are {e not} globally monotone — use
    {!Invariant.spans_well_formed_merged} (not [spans_well_formed] /
    [monotone]) on merged streams.

    The [(at, stream, seq)] order is the same total order the
    deterministic-merge engine imposes on cross-shard deliveries, so a
    replayed run merges to an identical stream. *)
