let default_tolerance = 0.015

let settling_time ?(tolerance = default_tolerance) ~target series =
  if series = [] || not (Float.is_finite target) then None
  else begin
    let arr = Array.of_list series in
    let n = Array.length arr in
    let scale = Float.max (Float.abs target) 1e-12 in
    let within (_, v) = Float.is_finite v && Float.abs (v -. target) <= tolerance *. scale in
    (* Earliest index whose entire suffix stays inside the band (the
       Fig. 5 "settled" criterion: entering the band doesn't count if
       the trajectory leaves it again). *)
    let start = ref n in
    (try
       for i = n - 1 downto 0 do
         if within arr.(i) then start := i else raise Exit
       done
     with Exit -> ());
    if !start >= n then None else Some (fst arr.(!start))
  end

type oscillation = { amplitude : float; period : float option }

let tail_half l =
  let n = List.length l in
  List.filteri (fun i _ -> i >= n / 2) l

let oscillation series =
  match tail_half series with
  | [] | [ _ ] -> None
  | tail ->
    let vs = List.map snd tail in
    let finite = List.filter Float.is_finite vs in
    if finite = [] then None
    else begin
      let lo = List.fold_left Float.min infinity finite in
      let hi = List.fold_left Float.max neg_infinity finite in
      let amplitude = (hi -. lo) /. 2. in
      (* Period from successive local maxima of the tail. *)
      let arr = Array.of_list tail in
      let maxima = ref [] in
      for i = 1 to Array.length arr - 2 do
        let v p = snd arr.(p) in
        if v i > v (i - 1) && v i >= v (i + 1) then maxima := fst arr.(i) :: !maxima
      done;
      let period =
        match List.rev !maxima with
        | first :: (_ :: _ as rest) ->
          let last = List.nth rest (List.length rest - 1) in
          Some ((last -. first) /. float_of_int (List.length rest))
        | _ -> None
      in
      Some { amplitude; period }
    end

let dispersion series =
  match List.map snd (tail_half series) with
  | [] -> 0.
  | vs ->
    let n = float_of_int (List.length vs) in
    let mean = List.fold_left ( +. ) 0. vs /. n in
    let var = List.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.)) 0. vs /. n in
    sqrt var

let episodes ?(threshold = 1.) series =
  let out = ref [] in
  let current = ref None in
  List.iter
    (fun (at, v) ->
      if v > threshold then
        match !current with
        | None -> current := Some (at, at)
        | Some (s, _) -> current := Some (s, at)
      else
        match !current with
        | None -> ()
        | Some ep ->
          out := ep :: !out;
          current := None)
    series;
  (match !current with None -> () | Some ep -> out := ep :: !out);
  List.rev !out

type latency = { count : int; mean : float; p50 : float; p90 : float; p99 : float; max : float }

let latency_of_samples samples =
  match samples with
  | [] -> None
  | _ ->
    (* Route the raw samples through a Metrics histogram so the offline
       view quotes the same bucket-interpolated quantiles the online
       [lla_control_latency_ms] histogram exposes. *)
    let reg = Metrics.create () in
    let h = Metrics.histogram reg "analyze_latency_ms" in
    List.iter (Metrics.observe h) samples;
    let pct q = Option.value ~default:nan (Metrics.quantile h ~q) in
    Some
      {
        count = List.length samples;
        mean = List.fold_left ( +. ) 0. samples /. float_of_int (List.length samples);
        p50 = pct 0.5;
        p90 = pct 0.9;
        p99 = pct 0.99;
        max = List.fold_left Float.max neg_infinity samples;
      }

type resource_report = {
  resource : int;
  final_price : float;
  price_dispersion : float;
  overload : (float * float) list;
}

type report = {
  records : int;
  span_count : int;
  tolerance : float;
  optimum : float option;
  final_utility : float option;
  settling : float option;
  utility_oscillation : oscillation option;
  resources : resource_report list;
  control_latency : latency option;
}

let analyze ?(tolerance = default_tolerance) ?optimum records =
  let utility = Series.utility records in
  let final_utility = match List.rev utility with (_, v) :: _ -> Some v | [] -> None in
  let target = match optimum with Some o -> Some o | None -> final_utility in
  let settling =
    match target with Some t -> settling_time ~tolerance ~target:t utility | None -> None
  in
  let prices = Series.prices records in
  let congestion = Series.congestion records in
  let resources =
    List.map
      (fun (resource, series) ->
        let final_price = match List.rev series with (_, v) :: _ -> v | [] -> nan in
        let overload =
          match List.assoc_opt resource congestion with
          | Some c -> episodes c
          | None -> []
        in
        { resource; final_price; price_dispersion = dispersion series; overload })
      prices
  in
  {
    records = List.length records;
    span_count = List.length (Causal.spans records);
    tolerance;
    optimum;
    final_utility;
    settling;
    utility_oscillation = oscillation utility;
    resources;
    control_latency = latency_of_samples (Causal.control_latencies records);
  }

let render r =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "records: %d (spans: %d)" r.records r.span_count;
  (match r.final_utility with
  | Some u -> line "final utility: %.6f" u
  | None -> line "final utility: n/a (no utility events)");
  (match (r.optimum, r.final_utility) with
  | Some opt, Some u ->
    line "offline optimum: %.6f (gap %.3f%%)" opt (Float.abs (u -. opt) /. Float.abs opt *. 100.)
  | _ -> ());
  (match r.settling with
  | Some t -> line "settling time: %.3f (to within %.1f%% of %s)" t (r.tolerance *. 100.)
       (match r.optimum with Some _ -> "optimum" | None -> "final value")
  | None -> line "settling time: not settled within %.1f%% band" (r.tolerance *. 100.));
  (match r.utility_oscillation with
  | Some { amplitude; period } ->
    line "utility oscillation: amplitude %.6f%s" amplitude
      (match period with Some p -> Printf.sprintf ", period %.3f" p | None -> "")
  | None -> ());
  List.iter
    (fun res ->
      line "resource %d: final mu=%.6f dispersion=%.6f overload episodes=%d%s" res.resource
        res.final_price res.price_dispersion (List.length res.overload)
        (match res.overload with
        | [] -> ""
        | eps ->
          let total = List.fold_left (fun acc (s, e) -> acc +. (e -. s)) 0. eps in
          Printf.sprintf " (%.3f time units overloaded)" total))
    r.resources;
  (match r.control_latency with
  | Some l ->
    line "control latency (price -> applied allocation): count=%d mean=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f"
      l.count l.mean l.p50 l.p90 l.p99 l.max
  | None -> line "control latency: no causal spans in stream");
  Buffer.contents buf
