(** Causal span-tree reconstruction.

    The runtime emits one {!Trace.Span} record per unit of
    causally-connected control-plane work (see {!Span} for the context
    carried on messages). This module turns a flat record stream back
    into trees and derives the metric the paper's control loop is judged
    by: the end-to-end {e control-reaction latency} from a price change
    at a resource agent to the next allocation applied at a task
    controller that consumed it.

    Pure functions over {!Trace.record} lists — usable on the live ring,
    a [memory_sink] stream, or a stream loaded back from JSONL
    ({!Series.load_jsonl}). *)

type span = { id : int; parent : int; trace : int; kind : string; actor : string; at : float }
(** One span record lifted out of the stream; [parent = -1] for roots,
    [kind] as documented on {!Trace.Span}. *)

type node = { span : span; children : node list }
(** A span with its causal descendants, children in emission order. *)

val spans : Trace.record list -> span list
(** Every span in the stream, in stream order. *)

val trees : Trace.record list -> node list
(** Reconstructed forest, roots in stream order. A span whose parent id
    is absent from the stream (evicted from the ring, or [-1]) starts
    its own tree. *)

val control_latencies : Trace.record list -> float list
(** For each [alloc] span that consumed a fresh price (its parent chain
    reaches a [price] span through [msg] deliveries only), the reaction
    latency [alloc.at - price.at], in stream order. Alloc spans whose
    chain hits another [alloc] first re-solved without new price input
    and are excluded — the same rule the online
    [lla_control_latency_ms] histogram applies, so the two views agree
    on the same stream. *)

val critical_path : node -> span list
(** Root-to-leaf path towards the subtree that ends latest — the chain
    of work and deliveries that bounds this tree's end-to-end time. *)

val end_at : node -> float
(** Latest timestamp anywhere in the subtree. *)
