type counter = { c_labels : (string * string) list; mutable c_value : int }

type gauge = {
  g_labels : (string * string) list;
  mutable g_value : float;
  mutable g_at : float;  (* last-writer stamp for the shard merge; -inf = never stamped *)
}

type histogram = {
  h_labels : (string * string) list;
  bounds : float array;  (* strictly increasing upper bounds, +Inf implicit *)
  counts : int array;  (* non-cumulative per bucket; length = bounds + 1 *)
  mutable h_sum : float;
  mutable h_count : int;
}

type instance = Counter of counter | Gauge of gauge | Histogram of histogram

type family = {
  f_name : string;
  f_help : string;
  f_kind : string;  (* "counter" | "gauge" | "histogram" *)
  mutable instances : instance list;  (* reverse registration order *)
}

type t = {
  families : (string, family) Hashtbl.t;
  mutable order : family list;  (* reverse registration order *)
}

let default_buckets = [| 0.5; 1.; 2.5; 5.; 10.; 25.; 50.; 100.; 250.; 500.; 1000. |]

let create () = { families = Hashtbl.create 32; order = [] }

let normalize_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let instance_labels = function
  | Counter c -> c.c_labels
  | Gauge g -> g.g_labels
  | Histogram h -> h.h_labels

let family t ~name ~help ~kind =
  match Hashtbl.find_opt t.families name with
  | Some f ->
    if not (String.equal f.f_kind kind) then
      invalid_arg
        (Printf.sprintf "Metrics: %s already registered as a %s, not a %s" name f.f_kind kind);
    f
  | None ->
    let f = { f_name = name; f_help = help; f_kind = kind; instances = [] } in
    Hashtbl.add t.families name f;
    t.order <- f :: t.order;
    f

let find_instance f labels =
  List.find_opt (fun i -> instance_labels i = labels) f.instances

let counter t ?(help = "") ?(labels = []) name =
  let labels = normalize_labels labels in
  let f = family t ~name ~help ~kind:"counter" in
  match find_instance f labels with
  | Some (Counter c) -> c
  | Some _ -> assert false
  | None ->
    let c = { c_labels = labels; c_value = 0 } in
    f.instances <- Counter c :: f.instances;
    c

let gauge t ?(help = "") ?(labels = []) name =
  let labels = normalize_labels labels in
  let f = family t ~name ~help ~kind:"gauge" in
  match find_instance f labels with
  | Some (Gauge g) -> g
  | Some _ -> assert false
  | None ->
    let g = { g_labels = labels; g_value = 0.; g_at = neg_infinity } in
    f.instances <- Gauge g :: f.instances;
    g

let valid_bounds bounds =
  Array.length bounds > 0
  &&
  let ok = ref (Float.is_finite bounds.(0)) in
  for i = 1 to Array.length bounds - 1 do
    if not (Float.is_finite bounds.(i) && bounds.(i) > bounds.(i - 1)) then ok := false
  done;
  !ok

let histogram t ?(help = "") ?(labels = []) ?(buckets = default_buckets) name =
  if not (valid_bounds buckets) then
    invalid_arg "Metrics.histogram: bucket bounds must be finite and strictly increasing";
  let labels = normalize_labels labels in
  let f = family t ~name ~help ~kind:"histogram" in
  match find_instance f labels with
  | Some (Histogram h) ->
    if h.bounds <> buckets then
      invalid_arg (Printf.sprintf "Metrics.histogram: %s re-registered with a different layout" name);
    h
  | Some _ -> assert false
  | None ->
    let h =
      {
        h_labels = labels;
        bounds = Array.copy buckets;
        counts = Array.make (Array.length buckets + 1) 0;
        h_sum = 0.;
        h_count = 0;
      }
    in
    f.instances <- Histogram h :: f.instances;
    h

let incr c = c.c_value <- c.c_value + 1

let add c n =
  if n < 0 then invalid_arg "Metrics.add: counters are monotone";
  c.c_value <- c.c_value + n

let set g v = g.g_value <- v

let set_at g ~at v =
  g.g_value <- v;
  g.g_at <- at

let gauge_at g = g.g_at

let observe h v =
  (* NaN falls through every [v <= bound] test into the +Inf bucket — it is
     still counted rather than silently lost. *)
  let n = Array.length h.bounds in
  let rec slot i = if i >= n then n else if v <= h.bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_count <- h.h_count + 1

let value c = c.c_value

let gauge_value g = g.g_value

let histogram_count h = h.h_count

let histogram_sum h = h.h_sum

let bucket_counts h =
  let acc = ref 0 in
  let cumulative =
    Array.to_list
      (Array.mapi
         (fun i bound ->
           acc := !acc + h.counts.(i);
           (bound, !acc))
         h.bounds)
  in
  cumulative @ [ (infinity, h.h_count) ]

let quantile h ~q =
  if h.h_count = 0 || Float.is_nan q || q < 0. || q > 1. then None
  else begin
    (* Prometheus-style bucket interpolation: find the first cumulative
       bucket holding the target rank, then interpolate linearly between
       its bounds. The open [+Inf] bucket has no upper edge to
       interpolate towards, so it reports the highest finite bound. *)
    let rank = q *. float_of_int h.h_count in
    let n = Array.length h.bounds in
    let rec find i cum =
      if i >= n then
        (* target rank lives in the +Inf bucket *)
        Some h.bounds.(n - 1)
      else
        let cum' = cum + h.counts.(i) in
        let in_bucket = h.counts.(i) in
        if float_of_int cum' >= rank && in_bucket > 0 then
          (* An empty bucket can only satisfy the rank test at [rank =
             cum] (notably q = 0 on an empty first bucket); skipping it
             lands on the first populated bucket, whose interpolation at
             [frac = 0] yields its lower edge — an attainable value,
             where the empty bucket's upper edge is not. *)
          let lo = if i = 0 then 0. else h.bounds.(i - 1) in
          let hi = h.bounds.(i) in
          let frac = (rank -. float_of_int cum) /. float_of_int in_bucket in
          Some (lo +. ((hi -. lo) *. Float.max 0. frac))
        else find (i + 1) cum'
    in
    find 0 0
  end

let summary ?(name = "") h =
  if h.h_count = 0 then Printf.sprintf "%s: no observations" (if name = "" then "histogram" else name)
  else begin
    let pct q = match quantile h ~q with Some v -> v | None -> nan in
    Printf.sprintf "%scount=%d sum=%.3f mean=%.3f p50=%.3f p90=%.3f p99=%.3f"
      (if name = "" then "" else name ^ ": ")
      h.h_count h.h_sum
      (h.h_sum /. float_of_int h.h_count)
      (pct 0.5) (pct 0.9) (pct 0.99)
  end

let find t ?(labels = []) name =
  let labels = normalize_labels labels in
  match Hashtbl.find_opt t.families name with
  | None -> None
  | Some f -> find_instance f labels

let find_counter t ?labels name =
  match find t ?labels name with Some (Counter c) -> Some c | _ -> None

let find_gauge t ?labels name =
  match find t ?labels name with Some (Gauge g) -> Some g | _ -> None

let find_histogram t ?labels name =
  match find t ?labels name with Some (Histogram h) -> Some h | _ -> None

(* --- shard merge ------------------------------------------------------ *)

(* Barrier-time snapshot merge of per-shard registries. Counters sum,
   histograms add bucket-wise (find-or-create re-raises on a layout
   mismatch), gauges resolve last-writer-wins by (stamp, shard index in
   the input list). The inputs are read-only; family order is shard 0's
   with later shards' novel families appended. *)
let merge ts =
  let out = create () in
  let gauge_src = Hashtbl.create 16 in
  List.iteri
    (fun shard t ->
      List.iter
        (fun f ->
          List.iter
            (fun inst ->
              match inst with
              | Counter c ->
                let c' = counter out ~help:f.f_help ~labels:c.c_labels f.f_name in
                c'.c_value <- c'.c_value + c.c_value
              | Gauge g ->
                let g' = gauge out ~help:f.f_help ~labels:g.g_labels f.f_name in
                let key = (f.f_name, g.g_labels) in
                let take =
                  match Hashtbl.find_opt gauge_src key with
                  | None -> true
                  | Some (at0, _) -> g.g_at >= at0
                  (* shards are visited in index order, so >= on the stamp
                     keeps the highest (at, shard) writer *)
                in
                if take then begin
                  Hashtbl.replace gauge_src key (g.g_at, shard);
                  g'.g_value <- g.g_value;
                  g'.g_at <- g.g_at
                end
              | Histogram h ->
                let h' =
                  histogram out ~help:f.f_help ~labels:h.h_labels ~buckets:h.bounds f.f_name
                in
                Array.iteri (fun i n -> h'.counts.(i) <- h'.counts.(i) + n) h.counts;
                h'.h_sum <- h'.h_sum +. h.h_sum;
                h'.h_count <- h'.h_count + h.h_count)
            (List.rev f.instances))
        (List.rev t.order))
    ts;
  out

(* --- Prometheus text exposition -------------------------------------- *)

let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_labels buf = function
  | [] -> ()
  | labels ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        Buffer.add_string buf (escape_label_value v);
        Buffer.add_char buf '"')
      labels;
    Buffer.add_char buf '}'

let render_float x =
  if x = infinity then "+Inf"
  else if x = neg_infinity then "-Inf"
  else if Float.is_nan x then "NaN"
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

(* HELP text escapes only backslash and newline per the text format
   (quotes are legal there, unlike in label values). *)
let escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let expose t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun f ->
      if not (String.equal f.f_help "") then
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" f.f_name (escape_help f.f_help));
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" f.f_name f.f_kind);
      let instances =
        List.sort
          (fun a b -> compare (instance_labels a) (instance_labels b))
          (List.rev f.instances)
      in
      List.iter
        (fun instance ->
          match instance with
          | Counter c ->
            Buffer.add_string buf f.f_name;
            render_labels buf c.c_labels;
            Buffer.add_string buf (Printf.sprintf " %d\n" c.c_value)
          | Gauge g ->
            Buffer.add_string buf f.f_name;
            render_labels buf g.g_labels;
            Buffer.add_string buf (Printf.sprintf " %s\n" (render_float g.g_value))
          | Histogram h ->
            List.iter
              (fun (bound, count) ->
                Buffer.add_string buf f.f_name;
                Buffer.add_string buf "_bucket";
                render_labels buf (h.h_labels @ [ ("le", render_float bound) ]);
                Buffer.add_string buf (Printf.sprintf " %d\n" count))
              (bucket_counts h);
            Buffer.add_string buf f.f_name;
            Buffer.add_string buf "_sum";
            render_labels buf h.h_labels;
            Buffer.add_string buf (Printf.sprintf " %s\n" (render_float h.h_sum));
            Buffer.add_string buf f.f_name;
            Buffer.add_string buf "_count";
            render_labels buf h.h_labels;
            Buffer.add_string buf (Printf.sprintf " %d\n" h.h_count))
        instances)
    (List.rev t.order);
  Buffer.contents buf
