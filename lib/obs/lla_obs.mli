(** [Lla_obs] — observability for the LLA control plane.

    A zero-dependency metrics registry ({!Metrics}) plus a structured
    iteration-trace layer ({!Trace}) with replayable invariants
    ({!Invariant}) and a line-oriented JSON codec ({!Jsonl}).

    The instrumented layers ({!Lla.Solver}, {!Lla_transport.Transport},
    {!Lla_runtime.Distributed}, ...) take an optional [?obs] handle of
    type {!t}; when it is omitted they skip every emission, and the
    trajectory (and discrete-event schedule) is bit-for-bit the
    uninstrumented one — observation must never perturb the observed
    system. Emission itself schedules nothing and draws no randomness, so
    the enabled and disabled trajectories also coincide (both properties
    are held by golden-trace tests). *)

module Metrics = Metrics
module Trace = Trace
module Invariant = Invariant
module Jsonl = Jsonl

type t = {
  metrics : Metrics.t;
  trace : Trace.t;
  trace_io : bool;
}
(** One handle bundles the registry and the tracer so call sites thread a
    single [?obs] argument. [trace_io] opts into per-message happy-path
    transport records (see {!create}). *)

val create : ?trace_capacity:int -> ?trace_io:bool -> unit -> t
(** Fresh registry + ring buffer (default capacity 4096 records).

    [trace_io] (default [false]) additionally records every
    [Transport_send] and [Transport_delivered] — the two happy-path,
    per-message event classes that dominate trace volume on a healthy
    deployment (~10x everything else combined). Message {e failures}
    (drops, cuts, down-endpoint losses, stale discards) are always
    traced; the aggregate send/delivery counts and the delay histogram
    are always in the metrics registry. Turn it on for message-level
    forensics dumps, leave it off for always-on tracing. *)

val emit : t -> at:float -> Trace.event -> unit
(** [Trace.emit] on the handle's tracer. *)

val emit_opt : t option -> at:float -> Trace.event -> unit
(** The hot-path form: a no-op on [None]. Call sites should avoid even
    constructing the event when the handle is [None]; this helper is for
    sites where the operands are already at hand. *)
