(** [Lla_obs] — observability for the LLA control plane.

    A zero-dependency metrics registry ({!Metrics}) plus a structured
    iteration-trace layer ({!Trace}) with replayable invariants
    ({!Invariant}) and a line-oriented JSON codec ({!Jsonl}). On top of
    the raw stream sits the analysis tier: causal span trees and
    control-reaction latency ({!Span}, {!Causal}), time-series
    extraction ({!Series}), convergence analytics ({!Analyze}) and a
    hierarchical wall-clock phase profiler ({!Profile}).

    The instrumented layers ({!Lla.Solver}, {!Lla_transport.Transport},
    {!Lla_runtime.Distributed}, ...) take an optional [?obs] handle of
    type {!t}; when it is omitted they skip every emission, and the
    trajectory (and discrete-event schedule) is bit-for-bit the
    uninstrumented one — observation must never perturb the observed
    system. Emission itself schedules nothing and draws no randomness
    (span ids come from a deterministic counter on the handle), so the
    enabled and disabled trajectories also coincide (both properties
    are held by golden-trace tests). *)

module Metrics = Metrics
module Trace = Trace
module Invariant = Invariant
module Jsonl = Jsonl
module Span = Span
module Profile = Profile
module Causal = Causal
module Series = Series
module Analyze = Analyze
module Rotate = Rotate
module Monitor = Monitor
module Shard_registry = Shard_registry

type t = {
  metrics : Metrics.t;
  trace : Trace.t;
  trace_io : bool;
  spans : bool;
  profile : Profile.t;
  mutable next_span : int;
  mutable span_stride : int;
}
(** One handle bundles the registry, the tracer and the profiler so
    call sites thread a single [?obs] argument. [trace_io] opts into
    per-message happy-path transport records; [spans] gates causal
    span emission; [next_span]/[span_stride] back {!alloc_span} (not
    for direct use). *)

val create :
  ?trace_capacity:int ->
  ?trace_io:bool ->
  ?spans:bool ->
  ?profile:Profile.t ->
  ?span_base:int ->
  ?span_stride:int ->
  unit ->
  t
(** Fresh registry + ring buffer (default capacity 4096 records).

    [trace_io] (default [false]) additionally records every
    [Transport_send] and [Transport_delivered] — the two happy-path,
    per-message event classes that dominate trace volume on a healthy
    deployment (~10x everything else combined). Message {e failures}
    (drops, cuts, down-endpoint losses, stale discards) are always
    traced; the aggregate send/delivery counts and the delay histogram
    are always in the metrics registry. Turn it on for message-level
    forensics dumps, leave it off for always-on tracing.

    [spans] (default [false]) gates the {!Trace.Span} causal records and
    the online [lla_control_latency_ms] histogram. Like [trace_io] it is
    opt-in because its record volume scales with message deliveries
    (several spans per control round), which plain always-on tracing
    deliberately avoids; [bench profile] budgets the enabled cost
    against the control plane's real-time budget instead of the bare
    discrete-event wall clock.

    [profile] defaults to {!Profile.disabled} — instrumented phases pay
    one branch until a caller passes an enabled profiler.

    [span_base] / [span_stride] (defaults [0] / [1]) put the handle's
    span ids on the arithmetic progression [base, base + stride, ...].
    The domains-parallel runtime gives each shard's handle the shard
    index as base and the shard count as stride, so span ids stay
    globally unique across per-shard traces without any cross-domain
    coordination — each handle stays single-writer. *)

val alloc_span : t -> int
(** Next span id: deterministic, strictly increasing, unique per
    handle. Used by the instrumented layers when they open a span. *)

val set_span_stride : t -> base:int -> stride:int -> unit
(** Re-key an unused handle onto the [base + k * stride] progression —
    the domains runtime applies this to the caller's handle when it
    becomes shard 0 of a pool. @raise Invalid_argument if a span was
    already allocated or [stride < 1]. *)

val emit : t -> at:float -> Trace.event -> unit
(** [Trace.emit] on the handle's tracer. *)

val emit_opt : t option -> at:float -> Trace.event -> unit
(** The hot-path form: a no-op on [None]. Call sites should avoid even
    constructing the event when the handle is [None]; this helper is for
    sites where the operands are already at hand. *)
