type t = { trace_id : int; span_id : int; origin : float }

let root ~id ~at = { trace_id = id; span_id = id; origin = at }

let child parent ~id ~at = { trace_id = parent.trace_id; span_id = id; origin = at }

let forward parent ~id = { parent with span_id = id }
