type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf x =
  if Float.is_nan x then Buffer.add_string buf "nan"
  else if x = infinity then Buffer.add_string buf "inf"
  else if x = neg_infinity then Buffer.add_string buf "-inf"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else Buffer.add_string buf (Printf.sprintf "%.17g" x)

let to_string v =
  let buf = Buffer.create 128 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num x -> add_num buf x
    | Str s -> add_escaped buf s
    | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          go item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          go item)
        fields;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

exception Parse_error of string

let parse input =
  let n = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let len = String.length word in
    if !pos + len <= n && String.sub input !pos len = word then begin
      pos := !pos + len;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance ()
        | Some '/' -> Buffer.add_char buf '/'; advance ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance ()
        | Some 't' -> Buffer.add_char buf '\t'; advance ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub input !pos 4 in
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
          | Some _ -> Buffer.add_char buf '?'  (* non-ASCII escapes are not produced by us *)
          | None -> fail "bad \\u escape");
          pos := !pos + 4
        | _ -> fail "bad escape");
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let number_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && number_char input.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub input start (!pos - start)) with
    | Some x -> Num x
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((key, value) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, value) :: acc)
          | _ -> fail "expected , or } in object"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (value :: acc)
          | Some ']' ->
            advance ();
            List.rev (value :: acc)
          | _ -> fail "expected , or ] in array"
        in
        Arr (items [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' ->
      if !pos + 3 <= n && String.sub input !pos 3 = "nan" then literal "nan" (Num nan)
      else literal "null" Null
    | Some 'i' -> literal "inf" (Num infinity)
    | Some '-' when !pos + 4 <= n && String.sub input !pos 4 = "-inf" ->
      literal "-inf" (Num neg_infinity)
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let num = function Num x -> Some x | _ -> None

let str = function Str s -> Some s | _ -> None

let bool = function Bool b -> Some b | _ -> None

let arr = function Arr items -> Some items | _ -> None
