(** Per-shard metrics registries with a barrier-time snapshot merge.

    Under [Engine_domains] each shard must own its metrics outright — a
    shared registry would put lock-free mutable counters on the parallel
    hot path. [Shard_registry] holds one {!Metrics.t} per shard (each
    written only by its owning domain during a parallel phase) and
    produces a merged global snapshot via {!Metrics.merge} when all
    shards are at rest (at a barrier, or after the run): counters sum,
    histograms add bucket-wise, gauges resolve last-writer by
    [(stamp, shard)] (see {!Metrics.set_at}).

    The merge allocates a fresh registry and never mutates the
    per-shard ones, so it can run at any barrier without perturbing the
    next parallel phase. *)

type t

val create : shards:int -> t
(** [shards] fresh registries. @raise Invalid_argument when
    [shards < 1]. *)

val of_registries : Metrics.t array -> t
(** Wrap existing per-shard registries (index = shard id). The array is
    not copied. @raise Invalid_argument on an empty array. *)

val shards : t -> int

val registry : t -> shard:int -> Metrics.t
(** The registry owned by [shard]. Only that shard's domain may write
    through it during a parallel phase. *)

val merge : t -> Metrics.t
(** Merged snapshot of all shards ({!Metrics.merge} semantics). Call
    only when the shards are at rest. *)

val expose : t -> string
(** [Metrics.expose (merge t)]. *)
