(** Hierarchical wall-clock phase profiler.

    [time t "phase" f] runs [f] with the elapsed wall-clock time
    accumulated under ["phase"], nested beneath whatever phase is
    currently running on [t] — so call trees (solver step → allocate →
    price update, transport route → deliver, checkpoint save → JSONL
    encode) appear as trees in the {!report}.

    A disabled profiler ({!create} [~enabled:false], the default inside
    {!Lla_obs.create}) reduces [time] to a single branch plus the call
    to [f]: instrumented hot paths pay nothing measurable until profiling
    is switched on, and the engine schedule is never touched either way
    (the profiler only reads the clock). [bench profile] holds the
    enabled-profiler + span overhead on the distributed deployment under
    the same 5% budget as plain tracing.

    Not thread-safe; the control plane is single-threaded by design. *)

type t

val create : ?clock:(unit -> float) -> ?enabled:bool -> unit -> t
(** [clock] returns seconds (default [Unix.gettimeofday]; inject a fake
    for tests). [enabled] defaults to [true]. *)

val disabled : unit -> t
(** A fresh profiler with [enabled = false]. *)

val enabled : t -> bool

val set_enabled : t -> bool -> unit

val time : t -> string -> (unit -> 'a) -> 'a
(** Run the thunk as a phase nested under the current one. Re-entrant
    (a phase may recursively time itself) and exception-safe: the frame
    is popped and its time charged even when the thunk raises. When the
    profiler is disabled the thunk runs with no bookkeeping at all.

    Allocation discipline: after a phase node is interned (first call),
    [time] itself allocates nothing — totals live in flat [float ref]
    cells (no per-exit float boxing) and the child scan is closure-free —
    so a hot loop may keep hooks in place provided the caller passes a
    preallocated thunk. The clock itself may box its return value; that
    cost only arises when the profiler is enabled. *)

val reset : t -> unit
(** Drop every accumulated phase (keeps the enabled flag and clock). *)

val report : t -> string
(** Text tree: per phase, total ms, call count, ms/call and share of the
    grand total; siblings sorted by total descending, with an implicit
    [(self)] row where a parent spent time outside its sub-phases. *)

type stat = { path : string list; seconds : float; count : int }

val stats : t -> stat list
(** Flat pre-order dump of the tree (root excluded) for programmatic
    assertions; [path] is the chain of phase names from the top. *)
