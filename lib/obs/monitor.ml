(* Online SLO monitors. Each observation updates O(1) detector state;
   readouts that need the tail half of a series replay a retained
   compact (unboxed, doubling) buffer through the offline Analyze code,
   so the two tiers cannot drift apart. *)

(* --- growable unboxed float pairs ------------------------------------- *)

module Fbuf = struct
  type t = { mutable ats : float array; mutable vs : float array; mutable n : int }

  let create () = { ats = Array.make 64 0.; vs = Array.make 64 0.; n = 0 }

  let push b ~at v =
    if b.n = Array.length b.ats then begin
      let grow a =
        let a' = Array.make (2 * b.n) 0. in
        Array.blit a 0 a' 0 b.n;
        a'
      in
      b.ats <- grow b.ats;
      b.vs <- grow b.vs
    end;
    b.ats.(b.n) <- at;
    b.vs.(b.n) <- v;
    b.n <- b.n + 1

  let to_series b = List.init b.n (fun i -> (b.ats.(i), b.vs.(i)))

  let last b = if b.n = 0 then None else Some b.vs.(b.n - 1)
end

(* --- shared detector primitives --------------------------------------- *)

module Settle = struct
  type t = {
    target : float;
    tolerance : float;
    mutable cand : float option;  (* start of the current all-within suffix *)
    mutable any : bool;
  }

  let create ?(tolerance = Analyze.default_tolerance) ~target () =
    { target; tolerance; cand = None; any = false }

  (* Invariant: [cand] is the [at] of the first sample of the longest
     suffix whose samples all sit inside the band — i.e. exactly the
     index Analyze.settling_time's backwards scan stops at. *)
  let observe t ~at v =
    t.any <- true;
    if not (Float.is_finite t.target) then ()
    else begin
      let scale = Float.max (Float.abs t.target) 1e-12 in
      let within = Float.is_finite v && Float.abs (v -. t.target) <= t.tolerance *. scale in
      if within then (match t.cand with None -> t.cand <- Some at | Some _ -> ())
      else t.cand <- None
    end

  let settled_since t = if t.any then t.cand else None
end

module Streak = struct
  type t = { budget : int; mutable acc : int }

  let create ~budget = { budget; acc = 0 }

  let observe t ~ok ~step =
    if ok then begin
      t.acc <- 0;
      None
    end
    else begin
      t.acc <- t.acc + step;
      if t.acc > t.budget then begin
        let streak = t.acc in
        t.acc <- 0;
        Some streak
      end
      else None
    end

  let reset t = t.acc <- 0

  let current t = t.acc
end

module Probe = struct
  type t = { t0 : float; buf : Fbuf.t }

  let start ~at = { t0 = at; buf = Fbuf.create () }

  let started_at t = t.t0

  let sample t ~at ~value = Fbuf.push t.buf ~at value

  let samples t = t.buf.Fbuf.n

  let settling ?tolerance t =
    match Fbuf.last t.buf with
    | None -> None
    | Some target ->
      let s = Settle.create ?tolerance ~target () in
      for i = 0 to t.buf.Fbuf.n - 1 do
        Settle.observe s ~at:t.buf.Fbuf.ats.(i) t.buf.Fbuf.vs.(i)
      done;
      Settle.settled_since s
end

let drift ~baseline v = Float.abs (v -. baseline) /. Float.max 1. (Float.abs baseline)

(* --- the monitor ------------------------------------------------------- *)

type severity = Info | Warning | Critical

let severity_label = function Info -> "info" | Warning -> "warning" | Critical -> "critical"

type config = {
  tolerance : float;
  infeasibility_tolerance : float;
  overload_threshold : float;
  sustain_budget : float;
  clear_after : float;
  oscillation_window : int;
  oscillation_threshold : float;
  min_reversals : int;
  drift_tolerance : float;
  warmup : float;
}

let default_config =
  {
    tolerance = Analyze.default_tolerance;
    infeasibility_tolerance = 0.05;
    overload_threshold = 1.;
    sustain_budget = 200.;
    clear_after = 500.;
    oscillation_window = 32;
    oscillation_threshold = 0.2;
    min_reversals = 8;
    drift_tolerance = 0.25;
    warmup = 0.;
  }

(* Asymmetric hysteresis state: [bad]/[good] accumulate contiguous
   condition time; entering needs [bad >= enter_after], leaving needs
   [good >= exit_after]. Time deltas come from the observation stamps,
   so replaying a trace reproduces every transition. *)
type alert = {
  a_name : string;
  a_severity : severity;
  enter_after : float;
  exit_after : float;
  mutable a_active : bool;
  mutable a_since : float;
  mutable a_value : float;
  mutable a_raised : int;
  mutable a_cleared : int;
  mutable bad : float;
  mutable good : float;
  mutable last_at : float;  (* nan until the first observation *)
}

type res_state = {
  mutable ep_open : (float * float) option;  (* current overload episode *)
  mutable eps_rev : (float * float) list;  (* closed episodes, newest first *)
  mutable infeasible : bool;  (* load > 1 + tol at the last sample *)
}

type t = {
  config : config;
  mutable emit : (at:float -> Trace.event -> unit) option;
  (* utility stream *)
  series : Fbuf.t;
  settle : Settle.t option;
  tasks : int option;
  latest : (int, float) Hashtbl.t;  (* task -> latest local utility *)
  mutable latest_sum : float;
  mutable saw_iteration : bool;
  (* oscillation window *)
  ring : float array;
  mutable ring_pos : int;
  mutable ring_len : int;
  (* Eq. 3/4 state *)
  res : (int, res_state) Hashtbl.t;
  mutable res_order : int list;  (* reverse first-seen *)
  mutable res_bad : int;  (* resources currently infeasible *)
  path_bad : (int, unit) Hashtbl.t;
  mutable baseline : float option;
  (* alert bus, fixed order *)
  a_eq3 : alert;
  a_eq4 : alert;
  a_osc : alert;
  a_drift : alert;
  a_div : alert;
  a_recovery : alert;
}

let mk_alert config ~name ~severity ~enter =
  {
    a_name = name;
    a_severity = severity;
    enter_after = enter;
    exit_after = config.clear_after;
    a_active = false;
    a_since = Float.nan;
    a_value = Float.nan;
    a_raised = 0;
    a_cleared = 0;
    bad = 0.;
    good = 0.;
    last_at = Float.nan;
  }

let create ?(config = default_config) ?target ?baseline ?tasks () =
  if config.oscillation_window < 4 then invalid_arg "Monitor.create: oscillation_window < 4";
  {
    config;
    emit = None;
    series = Fbuf.create ();
    settle = Option.map (fun target -> Settle.create ~tolerance:config.tolerance ~target ()) target;
    tasks;
    latest = Hashtbl.create 64;
    latest_sum = 0.;
    saw_iteration = false;
    ring = Array.make config.oscillation_window 0.;
    ring_pos = 0;
    ring_len = 0;
    res = Hashtbl.create 16;
    res_order = [];
    res_bad = 0;
    path_bad = Hashtbl.create 16;
    baseline;
    a_eq3 = mk_alert config ~name:"eq3_sustained" ~severity:Critical ~enter:config.sustain_budget;
    a_eq4 = mk_alert config ~name:"eq4_sustained" ~severity:Critical ~enter:config.sustain_budget;
    a_osc = mk_alert config ~name:"oscillation" ~severity:Warning ~enter:0.;
    a_drift =
      mk_alert config ~name:"utility_drift" ~severity:Warning ~enter:config.sustain_budget;
    a_div = mk_alert config ~name:"diverged" ~severity:Critical ~enter:0.;
    a_recovery =
      mk_alert config ~name:"recovery_stuck" ~severity:Critical ~enter:config.sustain_budget;
  }

let on_alert t f = t.emit <- Some f

let emit_transition t ~at event =
  match t.emit with None -> () | Some f -> f ~at event

let raise_alert t a ~at =
  a.a_active <- true;
  a.a_since <- at;
  a.a_raised <- a.a_raised + 1;
  a.good <- 0.;
  emit_transition t ~at
    (Trace.Alert_raised
       { alert = a.a_name; severity = severity_label a.a_severity; value = a.a_value })

let clear_alert t a ~at =
  a.a_active <- false;
  a.a_cleared <- a.a_cleared + 1;
  a.bad <- 0.;
  emit_transition t ~at (Trace.Alert_cleared { alert = a.a_name; value = a.a_value })

(* One hysteresis step. [value] is the signal quoted in transitions. *)
let observe_alert t a ~at ~ok ~value =
  if at >= t.config.warmup then begin
    let dt = if Float.is_nan a.last_at then 0. else Float.max 0. (at -. a.last_at) in
    a.last_at <- at;
    a.a_value <- value;
    if ok then begin
      a.bad <- 0.;
      if a.a_active then begin
        a.good <- a.good +. dt;
        if a.good >= a.exit_after then clear_alert t a ~at
      end
    end
    else begin
      a.good <- 0.;
      a.bad <- a.bad +. dt;
      if (not a.a_active) && a.bad >= a.enter_after then raise_alert t a ~at
    end
  end

(* Windowed oscillation, the Safe_mode shape: relative spread of the
   last [oscillation_window] utility samples plus a direction-reversal
   count, so a monotone transient (large spread, no reversals) does not
   read as a limit cycle. *)
let oscillating t =
  t.ring_len = Array.length t.ring
  &&
  let n = Array.length t.ring in
  let start = t.ring_pos in
  let v k = t.ring.((start + k) mod n) in
  let lo = ref infinity and hi = ref neg_infinity and sum = ref 0. in
  for k = 0 to n - 1 do
    let x = v k in
    if x < !lo then lo := x;
    if x > !hi then hi := x;
    sum := !sum +. x
  done;
  let mean = !sum /. float_of_int n in
  let spread = (!hi -. !lo) /. Float.max 1. (Float.abs mean) in
  spread > t.config.oscillation_threshold
  &&
  let reversals = ref 0 and dir = ref 0 and prev = ref (v 0) in
  for k = 1 to n - 1 do
    let x = v k in
    let d = compare x !prev in
    if d <> 0 then begin
      if !dir <> 0 && d <> !dir then incr reversals;
      dir := d
    end;
    prev := x
  done;
  !reversals >= t.config.min_reversals

let ring_spread t =
  if t.ring_len = 0 then 0.
  else begin
    let lo = ref infinity and hi = ref neg_infinity and sum = ref 0. in
    for k = 0 to t.ring_len - 1 do
      let x = t.ring.(k) in
      if x < !lo then lo := x;
      if x > !hi then hi := x;
      sum := !sum +. x
    done;
    (!hi -. !lo) /. Float.max 1. (Float.abs (!sum /. float_of_int t.ring_len))
  end

let observe_utility t ~at v =
  Fbuf.push t.series ~at v;
  (match t.settle with Some s -> Settle.observe s ~at v | None -> ());
  if Float.is_finite v then begin
    t.ring.(t.ring_pos) <- v;
    t.ring_pos <- (t.ring_pos + 1) mod Array.length t.ring;
    if t.ring_len < Array.length t.ring then t.ring_len <- t.ring_len + 1
  end;
  observe_alert t t.a_div ~at ~ok:(Float.is_finite v) ~value:v;
  observe_alert t t.a_osc ~at ~ok:(not (oscillating t)) ~value:(ring_spread t);
  match t.baseline with
  | Some b ->
    let d = drift ~baseline:b v in
    observe_alert t t.a_drift ~at ~ok:(d <= t.config.drift_tolerance) ~value:d
  | None -> ()

let res_state t resource =
  match Hashtbl.find_opt t.res resource with
  | Some st -> st
  | None ->
    let st = { ep_open = None; eps_rev = []; infeasible = false } in
    Hashtbl.add t.res resource st;
    t.res_order <- resource :: t.res_order;
    st

let observe_load t ~at ~resource ~load =
  let st = res_state t resource in
  (* overload episodes: Analyze.episodes semantics, online *)
  if load > t.config.overload_threshold then
    st.ep_open <- (match st.ep_open with None -> Some (at, at) | Some (s, _) -> Some (s, at))
  else (
    match st.ep_open with
    | None -> ()
    | Some ep ->
      st.eps_rev <- ep :: st.eps_rev;
      st.ep_open <- None);
  (* Eq. 3 sustained-infeasibility: a resource is bad while its load
     exceeds 1 + tol; the alert sees the aggregate verdict. *)
  let bad = load > 1. +. t.config.infeasibility_tolerance in
  if bad && not st.infeasible then t.res_bad <- t.res_bad + 1
  else if (not bad) && st.infeasible then t.res_bad <- t.res_bad - 1;
  st.infeasible <- bad;
  observe_alert t t.a_eq3 ~at ~ok:(t.res_bad = 0) ~value:(float_of_int t.res_bad)

let observe_path_slack t ~at ~path ~latency ~critical_time =
  let bad = latency > critical_time *. (1. +. t.config.infeasibility_tolerance) in
  if bad then Hashtbl.replace t.path_bad path () else Hashtbl.remove t.path_bad path;
  observe_alert t t.a_eq4 ~at
    ~ok:(Hashtbl.length t.path_bad = 0)
    ~value:(float_of_int (Hashtbl.length t.path_bad))

let observe_feasible t ~at ~resources_ok ~paths_ok =
  observe_alert t t.a_eq3 ~at ~ok:resources_ok ~value:(if resources_ok then 0. else 1.);
  observe_alert t t.a_eq4 ~at ~ok:paths_ok ~value:(if paths_ok then 0. else 1.)

let observe_recovery t ~at ~ok ~value = observe_alert t t.a_recovery ~at ~ok ~value

let set_baseline t ~at v =
  t.baseline <- Some v;
  emit_transition t ~at (Trace.Note { name = "monitor.baseline"; value = v })

(* --- trace-driven feed ------------------------------------------------- *)

let sink t (r : Trace.record) =
  match r.Trace.event with
  | Trace.Iteration { utility; _ } ->
    t.saw_iteration <- true;
    observe_utility t ~at:r.Trace.at utility
  | Trace.Allocation_solved { task; utility } ->
    if not t.saw_iteration then begin
      (* Rebuild the global objective as Series.utility does, but with
         the expected task count supplied up front: sample once every
         task has reported, keeping a running sum (O(1) per event). *)
      let prev = Hashtbl.find_opt t.latest task in
      Hashtbl.replace t.latest task utility;
      t.latest_sum <- t.latest_sum +. utility -. Option.value ~default:0. prev;
      match t.tasks with
      | Some n when Hashtbl.length t.latest >= n ->
        observe_utility t ~at:r.Trace.at t.latest_sum
      | _ -> ()
    end
  | Trace.Price_updated { resource; share_sum; capacity; _ } ->
    observe_load t ~at:r.Trace.at ~resource
      ~load:(if capacity > 0. then share_sum /. capacity else infinity)
  | Trace.Path_price_updated { path; latency; critical_time; _ } ->
    observe_path_slack t ~at:r.Trace.at ~path ~latency ~critical_time
  | Trace.Alert_raised _ | Trace.Alert_cleared _ -> ()
  | _ -> ()

let attach t trace =
  Trace.attach trace (sink t);
  t.emit <- Some (fun ~at event -> Trace.emit trace ~at event)

(* --- readouts ---------------------------------------------------------- *)

let settling_tick t =
  match t.settle with
  | Some s -> Settle.settled_since s
  | None -> (
    (* no known optimum: judge against the final value, as offline *)
    match Fbuf.last t.series with
    | None -> None
    | Some target ->
      let s = Settle.create ~tolerance:t.config.tolerance ~target () in
      for i = 0 to t.series.Fbuf.n - 1 do
        Settle.observe s ~at:t.series.Fbuf.ats.(i) t.series.Fbuf.vs.(i)
      done;
      Settle.settled_since s)

let oscillation t = Analyze.oscillation (Fbuf.to_series t.series)

let dispersion t = Analyze.dispersion (Fbuf.to_series t.series)

let overload_episodes t ~resource =
  match Hashtbl.find_opt t.res resource with
  | None -> []
  | Some st ->
    List.rev (match st.ep_open with None -> st.eps_rev | Some ep -> ep :: st.eps_rev)

let resources_seen t = List.rev t.res_order

let utility_samples t = t.series.Fbuf.n

let last_utility t = Fbuf.last t.series

(* --- alert bus readouts ------------------------------------------------ *)

type alert_view = {
  name : string;
  severity : severity;
  active : bool;
  since : float;
  last_value : float;
  raised : int;
  cleared : int;
}

let all_alerts t = [ t.a_eq3; t.a_eq4; t.a_osc; t.a_drift; t.a_div; t.a_recovery ]

let view (a : alert) =
  {
    name = a.a_name;
    severity = a.a_severity;
    active = a.a_active;
    since = a.a_since;
    last_value = a.a_value;
    raised = a.a_raised;
    cleared = a.a_cleared;
  }

let alerts t = List.map view (all_alerts t)

let active_alerts t = List.filter (fun v -> v.active) (alerts t)

let alerts_raised t = List.fold_left (fun acc a -> acc + a.a_raised) 0 (all_alerts t)

let alerts_cleared t = List.fold_left (fun acc a -> acc + a.a_cleared) 0 (all_alerts t)

let render t =
  let buf = Buffer.create 512 in
  List.iter
    (fun (a : alert) ->
      Printf.bprintf buf "[%s] %-15s %s  raised=%d cleared=%d%s\n"
        (match a.a_severity with Info -> "INFO" | Warning -> "WARN" | Critical -> "CRIT")
        a.a_name
        (if a.a_active then Printf.sprintf "ACTIVE since %.0f" a.a_since else "ok")
        a.a_raised a.a_cleared
        (if Float.is_nan a.a_value then "" else Printf.sprintf " value=%.4g" a.a_value))
    (all_alerts t);
  Printf.bprintf buf "utility: %s over %d samples; settling: %s\n"
    (match last_utility t with Some u -> Printf.sprintf "%.6f" u | None -> "n/a")
    (utility_samples t)
    (match settling_tick t with Some s -> Printf.sprintf "%.0f" s | None -> "not settled");
  Buffer.contents buf
