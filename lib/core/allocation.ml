open Lla_model

let effective_bounds (problem : Problem.t) i ~offset =
  (* A poisoned error-correction offset would turn both bounds NaN and the
     clamp useless; treat it as "no correction". *)
  let offset = if Float.is_finite offset then offset else 0. in
  let s = problem.subtasks.(i) in
  let critical_time = problem.tasks.(s.task).critical_time in
  let lo = Float.max 1e-9 (s.lat_lo +. offset) in
  let hi = Float.max lo (Float.min (s.stability +. offset) critical_time) in
  (lo, hi)

let lambda_sum (problem : Problem.t) i ~lambda =
  let s = problem.subtasks.(i) in
  Array.fold_left (fun acc p -> acc +. lambda.(p)) 0. s.paths

(* Closed form for a constant utility slope [slope] (<= 0):
   mu * (c + l) / (lat - offset)^2 = |slope| * w + lambda_sum. *)
let closed_form (problem : Problem.t) i ~mu_r ~lsum ~slope ~offset =
  let s = problem.subtasks.(i) in
  let lo, hi = effective_bounds problem i ~offset in
  let pressure = (Float.abs slope *. s.weight) +. lsum in
  if mu_r <= 0. then
    (* The resource is free: shrink latency as far as the bounds allow. *)
    if pressure > 0. then lo else hi
  else if pressure <= 0. then hi
  else begin
    (* Share.lat_min is exactly (c + l) for the reciprocal model; this
       branch only runs for reciprocal shares (see [reciprocal_share]). *)
    let work = s.share.Share.lat_min in
    let lat = offset +. sqrt (mu_r *. work /. pressure) in
    Lla_numeric.Solve.clamp ~lo ~hi lat
  end

(* General stationarity: g(lat) = f'(agg) * w - lsum - mu * share'(lat-offset)
   with agg = rest + w * lat. g is strictly decreasing, so the root (if
   interior) is found by bisection on [lo, hi]. *)
let general (problem : Problem.t) i ~mu_r ~lsum ~offset ~rest_aggregate ~utility =
  let s = problem.subtasks.(i) in
  let lo, hi = effective_bounds problem i ~offset in
  let df = utility.Utility.df in
  let g lat =
    let agg = rest_aggregate +. (s.weight *. lat) in
    let arg = Float.max s.share.Share.lat_min (lat -. offset) in
    (df agg *. s.weight) -. lsum -. (mu_r *. s.share.Share.deval arg)
  in
  if g lo <= 0. then lo
  else if g hi >= 0. then hi
  else Lla_numeric.Solve.bisect ~tolerance:1e-10 ~lo ~hi g

let reciprocal_share (s : Problem.subtask) =
  (* The closed form is only valid for the reciprocal share model; detect
     it by name (set by Share.instantiate). *)
  String.equal s.share.Share.name "reciprocal"

let tally ?obs ~at ~site = function
  | Some g ->
    incr g;
    Lla_obs.emit_opt obs ~at (Lla_obs.Trace.Guard_fired { site })
  | None -> Lla_obs.emit_opt obs ~at (Lla_obs.Trace.Guard_fired { site })

(* Never write a non-finite latency: NaN prices or a poisoned aggregate
   make the stationarity candidate NaN, which the clamp cannot fix
   ([max nan x = nan]). Keep the previous finite value, or retreat to the
   upper bound (maximum latency = minimum share, the conservative side)
   when the old value is itself poisoned. *)
let sanitize problem i ~offset ?obs ~at ?guards ~old value =
  if Float.is_finite value then value
  else begin
    tally ?obs ~at ~site:"allocation.candidate" guards;
    if Float.is_finite old then old else snd (effective_bounds problem i ~offset)
  end

let allocate_task ?obs ?(at = 0.) ?guards (problem : Problem.t) ti ~mu ~lambda ~offsets ~sweeps
    ~lat =
  let info = problem.tasks.(ti) in
  let closed_ok =
    match info.linear_slope with
    | Some _ -> Array.for_all (fun i -> reciprocal_share problem.subtasks.(i)) info.subtask_indices
    | None -> false
  in
  match (info.linear_slope, closed_ok) with
  | Some slope, true ->
    Array.iter
      (fun i ->
        let s = problem.subtasks.(i) in
        let lsum = lambda_sum problem i ~lambda in
        let lat' = closed_form problem i ~mu_r:mu.(s.resource) ~lsum ~slope ~offset:offsets.(i) in
        lat.(i) <- sanitize problem i ~offset:offsets.(i) ?obs ~at ?guards ~old:lat.(i) lat')
      info.subtask_indices
  | _ ->
    (* Gauss–Seidel sweeps: the aggregate latency is kept incrementally as
       coordinates move, so a non-finite input latency must be repaired
       first or it poisons every coordinate of the task. *)
    Array.iter
      (fun i ->
        if not (Float.is_finite lat.(i)) then begin
          tally ?obs ~at ~site:"allocation.input" guards;
          lat.(i) <- snd (effective_bounds problem i ~offset:offsets.(i))
        end)
      info.subtask_indices;
    let sweeps = Stdlib.max 1 sweeps in
    let aggregate = ref (Problem.aggregate_latency problem ti ~lat) in
    for _ = 1 to sweeps do
      Array.iter
        (fun i ->
          let s = problem.subtasks.(i) in
          let lsum = lambda_sum problem i ~lambda in
          let rest = !aggregate -. (s.weight *. lat.(i)) in
          let lat' =
            general problem i ~mu_r:mu.(s.resource) ~lsum ~offset:offsets.(i)
              ~rest_aggregate:rest ~utility:info.utility
          in
          let lat' = sanitize problem i ~offset:offsets.(i) ?obs ~at ?guards ~old:lat.(i) lat' in
          aggregate := rest +. (s.weight *. lat');
          lat.(i) <- lat')
        info.subtask_indices
    done

let allocate ?obs ?at ?guards problem ~mu ~lambda ~offsets ~sweeps ~lat =
  for ti = 0 to Problem.n_tasks problem - 1 do
    allocate_task ?obs ?at ?guards problem ti ~mu ~lambda ~offsets ~sweeps ~lat
  done
