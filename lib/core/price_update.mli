(** Price computation (paper §4.3): gradient projection on the dual.

    Resource prices (Eq. 8):
    [mu_r <- max(0, mu_r - gamma_r * (B_r - sum_{s in S_r} share_s(lat_s)))]

    Path prices (Eq. 9):
    [lambda_p <- max(0, lambda_p - gamma_p * (1 - sum_{s in p} lat_s / C_i))]

    A resource is congested when its share sum exceeds [B_r]; a path is
    congested when its latency exceeds its critical time. The congestion
    flags drive the adaptive step-size heuristic and the schedulability
    probe. *)

type congestion = {
  resources : bool array;  (** indexed by resource. *)
  paths : bool array;  (** indexed by global path index. *)
  share_sums : float array;  (** share sum per resource at this iteration. *)
  path_latencies : float array;  (** latency per path at this iteration. *)
  guards : int;
      (** non-finite observations (share sums, path latencies) or already
          poisoned multipliers encountered — and neutralized — during this
          step. A guarded multiplier keeps its last finite value (an
          already non-finite one is healed to 0); NaN/∞ never propagates
          into [mu] or [lambda]. *)
}

val update_resource :
  Problem.t -> int -> lat:float array -> offsets:float array -> gamma:float -> mu:float array ->
  float
(** Update [mu.(r)] in place; returns the share sum observed. A
    non-finite share sum leaves the price untouched; a non-finite incoming
    [mu.(r)] is healed to 0 before the update. *)

val update_path : Problem.t -> int -> lat:float array -> gamma:float -> lambda:float array -> float
(** Update [lambda.(p)] in place; returns the path latency observed. Same
    finite-value guards as {!update_resource}. *)

val update :
  ?obs:Lla_obs.t ->
  ?at:float ->
  Problem.t ->
  lat:float array ->
  offsets:float array ->
  steps:Step_size.t ->
  mu:float array ->
  lambda:float array ->
  congestion
(** One full price-computation step across all resources and paths. When
    [obs] is supplied, emits one {!Lla_obs.Trace.Price_updated} per
    resource and one {!Lla_obs.Trace.Path_price_updated} per path (plus
    [Guard_fired] for each guarded component), stamped [at] (default 0 —
    the synchronous solver passes its iteration number). Pure bookkeeping:
    the numerical result is identical with and without [obs]. *)
