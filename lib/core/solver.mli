(** The synchronous LLA engine (paper §4): iterate latency allocation and
    price computation, record trajectories, detect convergence.

    This is the engine used by the paper's simulation experiments (§5). An
    "iteration" here is exactly the paper's: one latency allocation by each
    task controller followed by one price computation at each resource and
    path. The message-passing deployment of the same mathematics lives in
    [Lla_runtime]. *)

open Lla_model

type config = {
  step_policy : Step_size.policy;
  mu0 : float;  (** initial resource prices. *)
  lambda0 : float;  (** initial path prices. *)
  sweeps : int;  (** Gauss–Seidel sweeps per allocation (non-linear utilities). *)
  convergence_tolerance : float;
      (** relative spread of the utility over [convergence_window]
          iterations below which the solver is considered converged (the
          paper's prototype stops at "utility improvement below 1%"). *)
  convergence_window : int;
  feasibility_tolerance : float;  (** relative slack allowed on Eq. 3 and 4. *)
  record_shares : bool;  (** also record per-resource share-sum series (Fig. 7). *)
}

val default_config : config
(** Adaptive steps from 1.0 (the paper's best, §5.2), [mu0 = 1],
    [lambda0 = 0], 2 sweeps, 1% tolerance over a 50-iteration window,
    0.5% feasibility tolerance. *)

type t

val create : ?obs:Lla_obs.t -> ?config:config -> Workload.t -> t
(** [obs] opts the solver into the observability layer: every step emits
    one {!Lla_obs.Trace.Iteration} record plus per-resource/per-path price
    records (via {!Price_update.update}) stamped with the iteration
    number, and maintains [lla_solver_*] registry metrics. Omitting it
    (the default) skips all emission — the trajectory is identical either
    way. *)

val problem : t -> Problem.t

val config : t -> config

val iteration : t -> int

val step : t -> unit
(** One LLA iteration. *)

val run : t -> iterations:int -> unit

val run_until_converged : t -> max_iterations:int -> int option
(** Steps until {!converged_at} reports convergence or the budget runs
    out; returns the convergence iteration. *)

val latency : t -> Ids.Subtask_id.t -> float

val latencies : t -> (Ids.Subtask_id.t * float) list

val share : t -> Ids.Subtask_id.t -> float
(** Share implied by the current latency (with error-correction offset). *)

val shares : t -> (Ids.Subtask_id.t * float) list

val mu : t -> Ids.Resource_id.t -> float

val lambda : t -> Ids.Task_id.t -> int -> float
(** Price of the [i]-th path of a task. *)

val utility : t -> float
(** Current total utility (Eq. 2). *)

val utility_series : t -> Lla_stdx.Series.t

val movement_series : t -> Lla_stdx.Series.t
(** Max relative latency change per iteration (the second convergence
    signal; also what {!Lla_scale.Kernel} reports as [movement]). *)

val share_series : t -> (Ids.Resource_id.t * Lla_stdx.Series.t) list
(** Per-resource share-sum trajectories; empty unless
    [config.record_shares]. *)

val critical_paths : t -> (Task.t * Ids.Subtask_id.t list * float) list
(** Per task: the critical path under the current latencies and its
    latency. *)

val feasible : t -> bool
(** Both constraint families satisfied within
    [config.feasibility_tolerance] at the current latencies. *)

val violations : t -> string list

val converged_at : t -> int option
(** Earliest iteration after which the utility trajectory stays within
    [convergence_tolerance] over every [convergence_window] span, provided
    the current point is also feasible; [None] otherwise. *)

val set_offset : t -> Ids.Subtask_id.t -> float -> unit
(** Install a model-error-correction offset (§6.3) for a subtask. *)

val set_capacity : t -> Ids.Resource_id.t -> float -> unit
(** Change a resource's availability [B_r] while the solver keeps running
    — the "resource variations" the algorithm adapts to (§1): a partial
    failure shrinks [B_r], recovered capacity raises it. Subsequent
    iterations re-optimize against the new constraint; the workload model
    itself is not modified. @raise Invalid_argument outside [\[0, 1\]]. *)

val capacity : t -> Ids.Resource_id.t -> float

val set_arrival_rate : t -> Ids.Task_id.t -> float -> unit
(** Update a task's arrival rate (jobs per ms) from runtime measurement
    (§2: "arrival patterns ... measured at runtime"). Recomputes the
    rate-stability latency bound of each of the task's subtasks: a higher
    rate raises the minimum share needed to keep queues bounded, a lower
    rate releases it. [0] removes the bound. @raise Invalid_argument on a
    negative rate. *)

val offset : t -> Ids.Subtask_id.t -> float

val guard_events : t -> int
(** Cumulative count of non-finite iterate components (latencies, share
    sums, multipliers) neutralized by the {!Allocation} and
    {!Price_update} finite-value guards. 0 on healthy runs; a non-zero
    value means some input (measurement, offset, injected price) was
    poisoned and the solver clamped instead of diverging. The first
    guarded iteration also emits a [Logs] warning. *)

val lat_array : t -> float array
(** The raw latency vector (indexed like [Problem.subtasks]); exposed for
    tests and benchmarks. Callers must not mutate it. *)

val mu_array : t -> float array

val lambda_array : t -> float array
