(** Online model error correction (paper §6.3).

    The share model's latency prediction can be wrong — notably, job
    releases of subtasks sharing a resource are not synchronized, so the
    worst-case model over-predicts. The corrector maintains, per subtask,
    an additive error: it collects measured job latencies, periodically
    takes a high percentile of the window, compares it with the model's
    prediction at the current share, and exponentially smooths the
    difference. The smoothed error becomes the {!Solver.set_offset}
    offset: [corrected_prediction = model_prediction + error]. *)

type t

val create :
  ?obs:Lla_obs.t -> ?name:string -> ?alpha:float -> ?percentile:float -> ?window:int -> unit -> t
(** Defaults: [alpha = 0.3] (smoothing weight of a new error sample),
    [percentile = 95] (the paper uses "greater than 90th percentile"
    samples), [window = 256] measured latencies per correction round.
    When [obs] is supplied the corrector emits
    {!Lla_obs.Trace.Correction_applied} on every completed round and
    [Guard_fired] for every skipped non-finite sample/prediction, tagged
    with [name] (default ["corrector"]). *)

val observe : ?at:float -> t -> measured_latency:float -> unit
(** Record one measured job latency (ms). A non-finite measurement is
    skipped (and counted in {!skipped_samples}) — one admitted NaN would
    poison the smoothed offset forever. [at] stamps the trace record when
    [obs] is active (default 0). *)

val sample_count : t -> int
(** Measurements accumulated since the last {!correct}. *)

val skipped_samples : t -> int
(** Non-finite measurements (and correction rounds with a non-finite
    prediction) discarded by the guards. *)

val correct : ?at:float -> t -> predicted:float -> float option
(** Fold the window into the smoothed error given the model's current
    uncorrected prediction: error sample = percentile(window) - predicted.
    Returns the new offset and clears the window; [None] (and keeps state)
    when no measurement arrived since the last round, or when [predicted]
    is non-finite (counted in {!skipped_samples}; window kept). *)

val offset : t -> float
(** Current smoothed additive error (0 until the first correction). *)

val corrections : t -> int
(** Number of completed correction rounds. *)

val reset : t -> unit
