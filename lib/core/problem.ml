open Lla_model

type subtask = {
  sid : Ids.Subtask_id.t;
  name : string;
  task : int;
  resource : int;
  exec : float;
  weight : float;
  share : Share.t;
  lat_lo : float;
  lat_hi : float;
  mutable stability : float;
  paths : int array;
}

type path = {
  task : int;
  index_in_task : int;
  subtask_indices : int array;
  critical_time : float;
  path_resources : int array;
}

type task = {
  tid : Ids.Task_id.t;
  task_name : string;
  utility : Utility.t;
  linear_slope : float option;
  critical_time : float;
  subtask_indices : int array;
  path_indices : int array;
}

type t = {
  workload : Workload.t;
  subtasks : subtask array;
  tasks : task array;
  paths : path array;
  capacities : float array;
  resource_ids : Ids.Resource_id.t array;
  by_resource : int array array;
  subtask_of : int Ids.Subtask_id.Tbl.t;
  resource_of : int Ids.Resource_id.Tbl.t;
  task_of : int Ids.Task_id.Tbl.t;
}

(* A utility has a constant derivative iff df agrees at a few probe points
   spanning the relevant latency range; the paper's linear utilities are
   exact matches and get the closed-form allocation. *)
let detect_linear_slope (u : Utility.t) ~critical_time =
  let probes = [ 1e-3; 0.25 *. critical_time; 0.5 *. critical_time; critical_time ] in
  match List.map u.Utility.df probes with
  | [] -> None
  | d0 :: rest ->
    if List.for_all (fun d -> Float.abs (d -. d0) <= 1e-12 *. Float.max 1. (Float.abs d0)) rest
    then Some d0
    else None

(* Compilation is kept near-linear in the workload size: every per-subtask
   and per-path step below resolves ids through the hash tables built
   here, never through the workload's association lists (whose lookups
   are O(n) and would make compile quadratic — prohibitive for the
   Lla_scale generator's 10^4..10^6-subtask scenarios). *)
let compile (workload : Workload.t) =
  let resources = Array.of_list workload.Workload.resources in
  let resource_of = Ids.Resource_id.Tbl.create 16 in
  Array.iteri (fun i (r : Resource.t) -> Ids.Resource_id.Tbl.replace resource_of r.id i) resources;
  let task_list = workload.Workload.tasks in
  let task_of = Ids.Task_id.Tbl.create 16 in
  List.iteri (fun i (t : Task.t) -> Ids.Task_id.Tbl.replace task_of t.id i) task_list;
  let subtask_of = Ids.Subtask_id.Tbl.create 64 in
  let all_subtasks =
    List.concat_map (fun (t : Task.t) -> List.map (fun s -> (t, s)) t.Task.subtasks) task_list
  in
  List.iteri (fun i (_, (s : Subtask.t)) -> Ids.Subtask_id.Tbl.replace subtask_of s.id i)
    all_subtasks;
  (* id -> record tables so path construction does not re-scan the
     workload's subtask list for every path member. *)
  let subtask_rec_of : Subtask.t Ids.Subtask_id.Tbl.t =
    Ids.Subtask_id.Tbl.create (List.length all_subtasks)
  in
  List.iter (fun (_, (s : Subtask.t)) -> Ids.Subtask_id.Tbl.replace subtask_rec_of s.id s)
    all_subtasks;
  (* Global path numbering: task order, then Graph.paths order. *)
  let paths_rev = ref [] and n_paths = ref 0 in
  let task_path_start = Ids.Task_id.Tbl.create 16 in
  List.iter
    (fun (t : Task.t) ->
      Ids.Task_id.Tbl.replace task_path_start t.id !n_paths;
      Array.iteri
        (fun index_in_task path_subtasks ->
          let subtask_indices =
            Array.of_list (List.map (Ids.Subtask_id.Tbl.find subtask_of) path_subtasks)
          in
          let resource_set =
            List.fold_left
              (fun acc sid ->
                let s = Ids.Subtask_id.Tbl.find subtask_rec_of sid in
                Ids.Resource_id.Set.add s.Subtask.resource acc)
              Ids.Resource_id.Set.empty path_subtasks
          in
          let path_resources =
            Array.of_list
              (List.map (Ids.Resource_id.Tbl.find resource_of)
                 (Ids.Resource_id.Set.elements resource_set))
          in
          paths_rev :=
            {
              task = Ids.Task_id.Tbl.find task_of t.id;
              index_in_task;
              subtask_indices;
              critical_time = t.Task.critical_time;
              path_resources;
            }
            :: !paths_rev;
          incr n_paths)
        t.Task.paths)
    task_list;
  let paths = Array.of_list (List.rev !paths_rev) in
  let subtasks =
    Array.of_list
      (List.map
         (fun ((t : Task.t), (s : Subtask.t)) ->
           let resource_index = Ids.Resource_id.Tbl.find resource_of s.resource in
           let r = resources.(resource_index) in
           let share = Subtask.share_function s ~lag:r.Resource.lag in
           (* Inlined Workload.latency_bounds / min_share: those helpers
              re-locate the subtask and its owner by list scan, which is
              fine for ad-hoc queries but quadratic inside compile. The
              arithmetic is identical — the owning task is already [t]. *)
           let floor_share = Task.arrival_rate t *. s.Subtask.exec_time in
           let stability =
             if floor_share > 0. then share.Lla_model.Share.inverse floor_share else infinity
           in
           let lat_lo = share.Lla_model.Share.lat_min in
           let lat_hi_raw = Float.min stability t.Task.critical_time in
           let lat_hi = Float.max lat_lo lat_hi_raw in
           let start = Ids.Task_id.Tbl.find task_path_start t.id in
           let own_paths =
             Array.to_list t.Task.paths
             |> List.mapi (fun i p -> (start + i, p))
             |> List.filter_map (fun (global, p) ->
                    if List.exists (Ids.Subtask_id.equal s.id) p then Some global else None)
           in
           {
             sid = s.id;
             name = s.name;
             task = Ids.Task_id.Tbl.find task_of t.id;
             resource = resource_index;
             exec = s.exec_time;
             weight = Task.weight t s.id;
             share;
             lat_lo;
             lat_hi;
             stability;
             paths = Array.of_list own_paths;
           })
         all_subtasks)
  in
  let tasks =
    Array.of_list
      (List.map
         (fun (t : Task.t) ->
           let subtask_indices =
             Array.of_list
               (List.map
                  (fun (s : Subtask.t) -> Ids.Subtask_id.Tbl.find subtask_of s.id)
                  t.Task.subtasks)
           in
           let start = Ids.Task_id.Tbl.find task_path_start t.id in
           let path_indices = Array.init (Array.length t.Task.paths) (fun i -> start + i) in
           {
             tid = t.id;
             task_name = t.Task.name;
             utility = t.Task.utility;
             linear_slope = detect_linear_slope t.Task.utility ~critical_time:t.Task.critical_time;
             critical_time = t.Task.critical_time;
             subtask_indices;
             path_indices;
           })
         task_list)
  in
  (* Count-and-fill keeps this O(S + R) instead of one full subtask scan
     per resource; iterating [i] in ascending order preserves the
     ascending subtask-index order the solver's share sums rely on. *)
  let by_resource =
    let n_res = Array.length resources in
    let counts = Array.make n_res 0 in
    Array.iter (fun s -> counts.(s.resource) <- counts.(s.resource) + 1) subtasks;
    let buckets = Array.init n_res (fun r -> Array.make counts.(r) 0) in
    let cursor = Array.make n_res 0 in
    Array.iteri
      (fun i s ->
        buckets.(s.resource).(cursor.(s.resource)) <- i;
        cursor.(s.resource) <- cursor.(s.resource) + 1)
      subtasks;
    buckets
  in
  {
    workload;
    subtasks;
    tasks;
    paths;
    capacities = Array.map (fun (r : Resource.t) -> r.availability) resources;
    resource_ids = Array.map (fun (r : Resource.t) -> r.id) resources;
    by_resource;
    subtask_of;
    resource_of;
    task_of;
  }

let n_subtasks t = Array.length t.subtasks

let n_resources t = Array.length t.capacities

let n_paths t = Array.length t.paths

let n_tasks t = Array.length t.tasks

let subtask_index t id = Ids.Subtask_id.Tbl.find t.subtask_of id

let resource_index t id = Ids.Resource_id.Tbl.find t.resource_of id

let task_index t id = Ids.Task_id.Tbl.find t.task_of id

let aggregate_latency t i ~lat =
  let info = t.tasks.(i) in
  Array.fold_left
    (fun acc si -> acc +. (t.subtasks.(si).weight *. lat.(si)))
    0. info.subtask_indices

let task_utility t i ~lat = t.tasks.(i).utility.Lla_model.Utility.f (aggregate_latency t i ~lat)

let total_utility t ~lat =
  let acc = ref 0. in
  Array.iteri (fun i _ -> acc := !acc +. task_utility t i ~lat) t.tasks;
  !acc

(* The error-correction offset shifts the model's latency prediction:
   corrected_latency(share) = model_latency(share) + offset, hence
   share(lat) = model_share(lat - offset). Keep the argument at or above
   the share function's own minimum so a large offset cannot drive the
   model into nonsense (negative or superunity shares). *)
let effective_share t i ~lat ~offset =
  let s = t.subtasks.(i) in
  let arg = Float.max s.share.Lla_model.Share.lat_min (lat -. offset) in
  s.share.Lla_model.Share.eval arg

let share_sum t r ~lat ~offsets =
  Array.fold_left
    (fun acc i -> acc +. effective_share t i ~lat:lat.(i) ~offset:offsets.(i))
    0. t.by_resource.(r)

let path_latency t p ~lat =
  Array.fold_left (fun acc i -> acc +. lat.(i)) 0. t.paths.(p).subtask_indices
