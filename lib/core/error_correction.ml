type t = {
  percentile : float;
  window : Lla_stdx.Percentile.Window.t;
  error : Lla_stdx.Ewma.t;
  obs : Lla_obs.t option;
  name : string;
  mutable rounds : int;
  mutable skipped : int;
}

let create ?obs ?(name = "corrector") ?(alpha = 0.3) ?(percentile = 95.) ?(window = 256) () =
  if percentile <= 0. || percentile > 100. then
    invalid_arg "Error_correction.create: percentile outside (0, 100]";
  {
    percentile;
    window = Lla_stdx.Percentile.Window.create ~capacity:window;
    error = Lla_stdx.Ewma.create ~alpha;
    obs;
    name;
    rounds = 0;
    skipped = 0;
  }

(* A single NaN measurement admitted to the window would make every
   subsequent percentile NaN and poison the EWMA offset forever (the
   smoothing never forgets a NaN). Skip and count instead. *)
let observe ?(at = 0.) t ~measured_latency =
  if Float.is_finite measured_latency then
    Lla_stdx.Percentile.Window.add t.window measured_latency
  else begin
    t.skipped <- t.skipped + 1;
    Lla_obs.emit_opt t.obs ~at (Lla_obs.Trace.Guard_fired { site = t.name ^ ".observe" })
  end

let sample_count t = Lla_stdx.Percentile.Window.count t.window

let skipped_samples t = t.skipped

let offset t = Lla_stdx.Ewma.value t.error

let corrections t = t.rounds

let correct ?(at = 0.) t ~predicted =
  if not (Float.is_finite predicted) then begin
    (* A poisoned prediction would corrupt the smoothed error exactly like
       a poisoned measurement; skip the round, keep the window. *)
    t.skipped <- t.skipped + 1;
    Lla_obs.emit_opt t.obs ~at (Lla_obs.Trace.Guard_fired { site = t.name ^ ".correct" });
    None
  end
  else begin
    match Lla_stdx.Percentile.Window.percentile t.window ~p:t.percentile with
    | None -> None
    | Some measured ->
      Lla_stdx.Ewma.add t.error (measured -. predicted);
      Lla_stdx.Percentile.Window.clear t.window;
      t.rounds <- t.rounds + 1;
      let offset = Lla_stdx.Ewma.value t.error in
      Lla_obs.emit_opt t.obs ~at
        (Lla_obs.Trace.Correction_applied { subtask = t.name; offset });
      Some offset
  end

let reset t =
  Lla_stdx.Percentile.Window.clear t.window;
  Lla_stdx.Ewma.reset t.error;
  t.rounds <- 0;
  t.skipped <- 0
