type congestion = {
  resources : bool array;
  paths : bool array;
  share_sums : float array;
  path_latencies : float array;
  guards : int;
}

(* Dual ascent is defenceless against a poisoned iterate: one NaN latency
   makes a share sum NaN, and [max 0 nan = nan] then keeps the price NaN
   forever. Both update functions therefore never *write* a non-finite
   value — a non-finite observation (or an externally poisoned price)
   leaves the multiplier at its last finite value (healing an already
   non-finite one to the projection at 0); {!update} counts these events
   in [congestion.guards]. *)
let update_resource (problem : Problem.t) r ~lat ~offsets ~gamma ~mu =
  if not (Float.is_finite mu.(r)) then mu.(r) <- 0.;
  let used = Problem.share_sum problem r ~lat ~offsets in
  if Float.is_finite used then begin
    let slack = problem.capacities.(r) -. used in
    let next = Float.max 0. (mu.(r) -. (gamma *. slack)) in
    if Float.is_finite next then mu.(r) <- next
  end;
  used

let update_path (problem : Problem.t) p ~lat ~gamma ~lambda =
  if not (Float.is_finite lambda.(p)) then lambda.(p) <- 0.;
  let info = problem.paths.(p) in
  let latency = Problem.path_latency problem p ~lat in
  if Float.is_finite latency then begin
    let slack = 1. -. (latency /. info.critical_time) in
    let next = Float.max 0. (lambda.(p) -. (gamma *. slack)) in
    if Float.is_finite next then lambda.(p) <- next
  end;
  latency

let update ?obs ?(at = 0.) problem ~lat ~offsets ~steps ~mu ~lambda =
  let n_r = Problem.n_resources problem and n_p = Problem.n_paths problem in
  let share_sums = Array.make n_r 0. and path_latencies = Array.make n_p 0. in
  let resources = Array.make n_r false and paths = Array.make n_p false in
  let guards = ref 0 in
  let guard site =
    incr guards;
    Lla_obs.emit_opt obs ~at (Lla_obs.Trace.Guard_fired { site })
  in
  for r = 0 to n_r - 1 do
    if not (Float.is_finite mu.(r)) then guard "price_update.mu";
    let gamma = Step_size.resource_gamma steps r in
    let used = update_resource problem r ~lat ~offsets ~gamma ~mu in
    if not (Float.is_finite used) then guard "price_update.share_sum";
    share_sums.(r) <- used;
    (* A NaN comparison is false, so a guarded resource reads uncongested. *)
    resources.(r) <- used > problem.capacities.(r) +. 1e-12;
    (match obs with
    | None -> ()
    | Some o ->
      Lla_obs.emit o ~at
        (Lla_obs.Trace.Price_updated
           {
             resource = r;
             mu = mu.(r);
             step = gamma;
             share_sum = used;
             capacity = problem.capacities.(r);
             congested = resources.(r);
           }))
  done;
  for p = 0 to n_p - 1 do
    if not (Float.is_finite lambda.(p)) then guard "price_update.lambda";
    let gamma = Step_size.path_gamma steps p in
    let latency = update_path problem p ~lat ~gamma ~lambda in
    if not (Float.is_finite latency) then guard "price_update.path_latency";
    path_latencies.(p) <- latency;
    paths.(p) <- latency > problem.paths.(p).critical_time +. 1e-12;
    (match obs with
    | None -> ()
    | Some o ->
      Lla_obs.emit o ~at
        (Lla_obs.Trace.Path_price_updated
           {
             path = p;
             lambda = lambda.(p);
             step = gamma;
             latency;
             critical_time = problem.paths.(p).critical_time;
           }))
  done;
  { resources; paths; share_sums; path_latencies; guards = !guards }
