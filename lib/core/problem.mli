(** Compiled optimization problem.

    {!compile} flattens a {!Lla_model.Workload.t} into dense arrays so the
    iterative solver touches no maps on its hot path: subtasks, tasks,
    paths and resources are each numbered [0..n-1], and cross-references
    are index arrays. *)

open Lla_model

type subtask = {
  sid : Ids.Subtask_id.t;
  name : string;
  task : int;  (** owning task index. *)
  resource : int;  (** resource index. *)
  exec : float;
  weight : float;  (** aggregation weight [w_s] (§3.2). *)
  share : Share.t;
  lat_lo : float;
      (** minimum meaningful latency ([share = 1], see {!Lla_model.Share.t}). *)
  lat_hi : float;
      (** maximum useful latency: min of the rate-stability bound and the
          task's critical time; never below [lat_lo]. *)
  mutable stability : float;
      (** the rate-stability bound alone (latency at which the share drops
          to the rate-stability floor); [infinity] when the arrival rate is
          zero. Kept separately because the error-correction offset shifts
          this bound but not the critical time. Mutable so measured
          arrival rates (§2) can tighten or relax it online via
          {!Lla.Solver.set_arrival_rate}. *)
  paths : int array;  (** global indices of the paths through this subtask. *)
}

type path = {
  task : int;
  index_in_task : int;
  subtask_indices : int array;
  critical_time : float;
  path_resources : int array;  (** distinct resources the path traverses. *)
}

type task = {
  tid : Ids.Task_id.t;
  task_name : string;
  utility : Utility.t;
  linear_slope : float option;
      (** [Some s] when the utility derivative is the constant [s]
          (detected at compile time); enables the closed-form allocation. *)
  critical_time : float;
  subtask_indices : int array;
  path_indices : int array;
}

type t = {
  workload : Workload.t;
  subtasks : subtask array;
  tasks : task array;
  paths : path array;
  capacities : float array;  (** [B_r] per resource index. *)
  resource_ids : Ids.Resource_id.t array;
  by_resource : int array array;  (** resource index -> subtask indices ([S_r]). *)
  subtask_of : int Ids.Subtask_id.Tbl.t;  (** internal: id -> index. *)
  resource_of : int Ids.Resource_id.Tbl.t;  (** internal: id -> index. *)
  task_of : int Ids.Task_id.Tbl.t;  (** internal: id -> index. *)
}

val compile : Workload.t -> t

val n_subtasks : t -> int

val n_resources : t -> int

val n_paths : t -> int

val n_tasks : t -> int

val subtask_index : t -> Ids.Subtask_id.t -> int
(** @raise Not_found for foreign ids. *)

val resource_index : t -> Ids.Resource_id.t -> int

val task_index : t -> Ids.Task_id.t -> int

val aggregate_latency : t -> int -> lat:float array -> float
(** Weighted aggregate latency of task [i] under assignment [lat]. *)

val task_utility : t -> int -> lat:float array -> float
(** Utility of task [i] alone under assignment [lat];
    {!total_utility} is the sum of these. *)

val total_utility : t -> lat:float array -> float

val share_sum : t -> int -> lat:float array -> offsets:float array -> float
(** Share consumed on resource [r]: [sum share_s(lat_s - offset_s)]; the
    offset is the online model-error correction (§6.3), zero by default. *)

val path_latency : t -> int -> lat:float array -> float

val effective_share : t -> int -> lat:float -> offset:float -> float
(** Share of subtask [i] at latency [lat] given its error-correction
    offset: the model share evaluated at [lat - offset], clamped to the
    physically meaningful domain. *)
