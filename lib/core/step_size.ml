type policy =
  | Fixed of float
  | Adaptive of { initial : float; multiplier : float; cap : float }
  | Split of { resource : policy; path : policy }

let fixed gamma =
  if gamma <= 0. then invalid_arg "Step_size.fixed: gamma <= 0";
  Fixed gamma

let adaptive ?(multiplier = 2.) ?cap ~initial () =
  if initial <= 0. then invalid_arg "Step_size.adaptive: initial <= 0";
  if multiplier <= 1. then invalid_arg "Step_size.adaptive: multiplier <= 1";
  let cap = match cap with Some c -> c | None -> 4. *. initial in
  if cap < initial then invalid_arg "Step_size.adaptive: cap below initial";
  Adaptive { initial; multiplier; cap }

let split ~resource ~path =
  (match (resource, path) with
  | Split _, _ | _, Split _ -> invalid_arg "Step_size.split: nested Split"
  | _ -> ());
  Split { resource; path }

(* The per-family components of a policy ([p, p] unless [Split]). *)
let components = function
  | Split { resource; path } -> (resource, path)
  | (Fixed _ | Adaptive _) as p -> (p, p)

let initial_of = function
  | Fixed g -> g
  | Adaptive { initial; _ } -> initial
  | Split _ -> assert false (* excluded by [split] *)

type t = {
  policy : policy;
  problem : Problem.t;
  gamma_r : float array;
  gamma_p : float array;
}

let create problem policy =
  let resource, path = components policy in
  {
    policy;
    problem;
    gamma_r = Array.make (Problem.n_resources problem) (initial_of resource);
    gamma_p = Array.make (Problem.n_paths problem) (initial_of path);
  }

let resource_gamma t r = t.gamma_r.(r)

let path_gamma t p = t.gamma_p.(p)

let observe t ~congested_resources =
  let resource, path = components t.policy in
  (match resource with
  | Fixed _ | Split _ -> ()
  | Adaptive { initial; multiplier; cap } ->
    Array.iteri
      (fun r congested ->
        if congested then t.gamma_r.(r) <- Float.min cap (t.gamma_r.(r) *. multiplier)
        else t.gamma_r.(r) <- initial)
      congested_resources);
  match path with
  | Fixed _ | Split _ -> ()
  | Adaptive { initial; multiplier; cap } ->
    (* A path is sped up while any resource it traverses is congested, and
       reverts once all of them are uncongested ("as soon as r becomes
       uncongested, revert"). *)
    Array.iteri
      (fun p (info : Problem.path) ->
        let any_congested =
          Array.exists (fun r -> congested_resources.(r)) info.path_resources
        in
        if any_congested then t.gamma_p.(p) <- Float.min cap (t.gamma_p.(p) *. multiplier)
        else t.gamma_p.(p) <- initial)
      t.problem.paths

let rec policy_name = function
  | Fixed g -> Printf.sprintf "fixed(%g)" g
  | Adaptive { initial; multiplier; _ } -> Printf.sprintf "adaptive(%g, x%g)" initial multiplier
  | Split { resource; path } ->
    Printf.sprintf "split(r=%s, p=%s)" (policy_name resource) (policy_name path)
