open Lla_model

type verdict =
  | Schedulable of { converged_at : int; utility : float; max_path_usage : float }
  | Unschedulable of {
      utility_oscillation : Lla_stdx.Stats.summary;
      overruns : (string * float) list;
      violations : string list;
    }

let path_usage solver =
  List.map
    (fun ((task : Task.t), _, cost) -> (task.Task.name, cost /. task.Task.critical_time))
    (Solver.critical_paths solver)

let attempt config iterations workload =
  let solver = Solver.create ~config workload in
  let converged = Solver.run_until_converged solver ~max_iterations:iterations in
  (solver, converged)

let probe ?config ?(iterations = 2000) workload =
  (* Step sizes are workload-dependent: the paper's doubling heuristic can
     lock into mutual price escalation (both constraint families stay
     marginally violated while prices race), mis-flagging a feasible
     workload. The probe therefore tries a ladder of policies and declares
     unschedulability only when every rung fails. *)
  let base = match config with Some c -> c | None -> Solver.default_config in
  (* Rung budgets grow because the primal iterate of dual ascent approaches
     the constraint boundary asymptotically: a feasible workload may need
     several times the utility-settling horizon to cross into tolerance. *)
  let ladder =
    [
      (base, iterations);
      (* Equilibrium prices grow with the fan-in per resource (the dual
         optimum scales like the square of the member count), so the
         default cap of 4x can leave a large workload crawling toward a
         marginally violated constraint forever. Geometric escalation
         under a practically unbounded cap discovers the price magnitude
         in logarithmically-many iterations and still resets on uncongestion. *)
      ({ base with Solver.step_policy = Step_size.adaptive ~initial:1.0 ~cap:1e9 () }, iterations);
      (* When only the resource prices are far from equilibrium, sharing
         the unbounded cap with the path family makes Eq. 9 oscillate
         (every path through a congested resource doubles its step each
         iteration of the discovery streak). Escalate resources alone. *)
      ( {
          base with
          Solver.step_policy =
            Step_size.split
              ~resource:(Step_size.adaptive ~initial:1.0 ~cap:1e9 ())
              ~path:(Step_size.adaptive ~initial:1.0 ());
        },
        2 * iterations );
      (base, 4 * iterations);
      ({ base with Solver.step_policy = Step_size.fixed 1.0 }, 4 * iterations);
      ({ base with Solver.step_policy = Step_size.fixed 0.25 }, 8 * iterations);
      (* Near-flat utilities have tiny equilibrium prices; gamma must drop
         below the price scale or the update limit-cycles around the
         projection at zero. *)
      ({ base with Solver.step_policy = Step_size.fixed 0.05 }, 8 * iterations);
      ({ base with Solver.step_policy = Step_size.fixed 0.01 }, 16 * iterations);
    ]
  in
  let rec try_rungs last_solver = function
    | [] ->
      let solver =
        match last_solver with Some s -> s | None -> fst (attempt base iterations workload)
      in
      let trace = Solver.utility_series solver in
      let n = Lla_stdx.Series.length trace in
      let tail = Stdlib.max 0 (n - 100) in
      Unschedulable
        {
          utility_oscillation = Lla_stdx.Series.y_stats_from trace ~from:tail;
          overruns = List.filter (fun (_, u) -> u > 1.) (path_usage solver);
          violations = Solver.violations solver;
        }
    | (rung, budget) :: rest -> (
      let solver, converged = attempt rung budget workload in
      match converged with
      | Some converged_at ->
        let max_path_usage =
          List.fold_left (fun acc (_, u) -> Float.max acc u) 0. (path_usage solver)
        in
        Schedulable { converged_at; utility = Solver.utility solver; max_path_usage }
      | None -> try_rungs (Some solver) rest)
  in
  try_rungs None ladder

let is_schedulable = function Schedulable _ -> true | Unschedulable _ -> false

let pp ppf = function
  | Schedulable { converged_at; utility; max_path_usage } ->
    Format.fprintf ppf "schedulable (converged at iteration %d, utility %.2f, worst path %.1f%%)"
      converged_at utility (100. *. max_path_usage)
  | Unschedulable { utility_oscillation; overruns; violations } ->
    Format.fprintf ppf "UNSCHEDULABLE (utility %a; %d overruns, %d violations"
      Lla_stdx.Stats.pp_summary utility_oscillation (List.length overruns)
      (List.length violations);
    List.iter (fun (name, ratio) -> Format.fprintf ppf "; %s at %.2fx" name ratio) overruns;
    Format.fprintf ppf ")"
