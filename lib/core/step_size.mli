(** Step-size policies for the price updates (paper §4.3 and §5.2).

    Fixed policies use a constant [gamma] for every resource and path.
    The adaptive policy implements the paper's heuristic: start from an
    initial value; while a resource is congested, multiply its step size
    (and those of all paths traversing it) each iteration; as soon as the
    resource becomes uncongested, revert to the initial value. *)

type policy =
  | Fixed of float
  | Adaptive of { initial : float; multiplier : float; cap : float }
  | Split of { resource : policy; path : policy }
      (** Distinct policies for the two price families; components are
          never themselves [Split]. *)

val fixed : float -> policy
(** @raise Invalid_argument on a non-positive value. *)

val adaptive : ?multiplier:float -> ?cap:float -> initial:float -> unit -> policy
(** Defaults: [multiplier = 2.] (the paper doubles) and
    [cap = 4 * initial]. The cap is our addition: unbounded doubling lets
    prices overshoot so far during sustained congestion that the system
    never settles; a small cap preserves the speed-up while keeping the
    oscillation bounded (see the fig5 ablation in the benchmark
    harness). *)

val split : resource:policy -> path:policy -> policy
(** Separate step policies for resource prices (Eq. 8) and path prices
    (Eq. 9). The two families need different treatment at scale: the
    equilibrium price of a hot resource grows with the square of its
    member count, so Eq. 8 wants a practically unbounded adaptive cap to
    discover that magnitude geometrically — but a path's step doubles on
    *any* congested traversed resource, so during a long price-discovery
    streak the same unbounded cap drives every path price into violent
    oscillation (path slacks are O(1), prices stay small). Escalate
    resources, keep paths on the paper's small cap. An adaptive
    component's congestion trigger is unchanged: resource steps react to
    that resource's congestion, path steps to any traversed resource's.
    @raise Invalid_argument if either component is itself [Split]. *)

val components : policy -> policy * policy
(** [(resource, path)] components of a policy: the two halves of a
    [Split], or the policy itself twice. Neither result is a [Split]. *)

type t

val create : Problem.t -> policy -> t

val resource_gamma : t -> int -> float
(** Current step size of resource index [r]. *)

val path_gamma : t -> int -> float
(** Current step size of global path index [p]. *)

val observe :
  t -> congested_resources:bool array -> unit
(** Feed the congestion outcome of the last iteration: adaptive step sizes
    are multiplied for congested resources and their paths and reset for
    the rest; fixed policies ignore the call. *)

val policy_name : policy -> string
