(** Latency allocation (paper §4.2): each task controller maximizes the
    Lagrangian w.r.t. its own subtask latencies, given fixed resource
    prices [mu] and path prices [lambda].

    Stationarity (Eq. 7) for subtask [s] of task [i] on resource [r]:
    {[ f_i'(agg) * w_s - sum_{p ∋ s} lambda_p - mu_r * share_r'(lat_s) = 0 ]}

    For the paper's linear utilities and reciprocal share functions this
    has the closed form
    [lat_s = offset_s + sqrt(mu_r * (c_s + l_r) / (|f'| * w_s + sum lambda_p))];
    for general concave utilities the left-hand side is strictly
    decreasing in [lat_s], so a bracketed bisection finds the unique root.
    Because a non-linear [f'] couples the subtasks of a task through the
    aggregate latency, the general path performs [sweeps] Gauss–Seidel
    passes (the closed form needs exactly one).

    Latencies are clamped to the effective bounds
    [[lat_lo + offset, min(stability + offset, critical_time)]] — the
    error-correction offset shifts the share model's domain and the
    rate-stability bound but never the critical time. *)

val effective_bounds : Problem.t -> int -> offset:float -> float * float
(** [(lo, hi)] for subtask [i] with its current error-correction offset.
    Always [0 < lo <= hi]. A non-finite offset is treated as 0. *)

val allocate_task :
  ?obs:Lla_obs.t ->
  ?at:float ->
  ?guards:int ref ->
  Problem.t ->
  int ->
  mu:float array ->
  lambda:float array ->
  offsets:float array ->
  sweeps:int ->
  lat:float array ->
  unit
(** Recompute the latencies of task [i]'s subtasks in place.

    Finite-value guard: a non-finite candidate (NaN prices, poisoned
    aggregates) never reaches [lat] — the previous finite value is kept,
    or the upper bound when the old value is itself non-finite. Each such
    event increments [guards] when supplied, and emits an
    {!Lla_obs.Trace.Guard_fired} record (stamped [at], default 0) when
    [obs] is supplied. *)

val allocate :
  ?obs:Lla_obs.t ->
  ?at:float ->
  ?guards:int ref ->
  Problem.t ->
  mu:float array ->
  lambda:float array ->
  offsets:float array ->
  sweeps:int ->
  lat:float array ->
  unit
(** {!allocate_task} for every task. *)
