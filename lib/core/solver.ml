open Lla_model

let log = Logs.Src.create "lla.solver" ~doc:"LLA synchronous solver"

module Log = (val Logs.src_log log)


type config = {
  step_policy : Step_size.policy;
  mu0 : float;
  lambda0 : float;
  sweeps : int;
  convergence_tolerance : float;
  convergence_window : int;
  feasibility_tolerance : float;
  record_shares : bool;
}

let default_config =
  {
    step_policy = Step_size.adaptive ~initial:1.0 ();
    mu0 = 1.0;
    lambda0 = 0.0;
    sweeps = 2;
    convergence_tolerance = 0.01;
    convergence_window = 50;
    feasibility_tolerance = 0.005;
    record_shares = false;
  }

type obs_meters = {
  iterations_c : Lla_obs.Metrics.counter;
  guards_c : Lla_obs.Metrics.counter;
  utility_g : Lla_obs.Metrics.gauge;
}

type t = {
  problem : Problem.t;
  config : config;
  lat : float array;
  mu : float array;
  lambda : float array;
  offsets : float array;
  steps : Step_size.t;
  obs : Lla_obs.t option;
  meters : obs_meters option;
  mutable iteration : int;
  mutable guard_events : int;
      (* non-finite iterate components neutralized by the allocation and
         price-update guards; see {!guard_events}. *)
  utility_trace : Lla_stdx.Series.t;
  movement_trace : Lla_stdx.Series.t;
      (* max relative latency change per iteration: flat utilities can hide
         a price limit cycle from the utility spread, so convergence also
         requires the allocation itself to stop moving. *)
  prev_lat : float array;
  share_traces : Lla_stdx.Series.t array;
}

let create ?obs ?(config = default_config) workload =
  let problem = Problem.compile workload in
  let n = Problem.n_subtasks problem in
  let lat = Array.init n (fun i -> problem.subtasks.(i).lat_hi) in
  let share_traces =
    if config.record_shares then
      Array.init (Problem.n_resources problem) (fun r ->
          Lla_stdx.Series.create
            ~name:(Ids.Resource_id.to_string problem.resource_ids.(r))
            ())
    else [||]
  in
  let meters =
    Option.map
      (fun (o : Lla_obs.t) ->
        {
          iterations_c =
            Lla_obs.Metrics.counter o.Lla_obs.metrics "lla_solver_iterations_total"
              ~help:"Synchronous solver iterations executed.";
          guards_c =
            Lla_obs.Metrics.counter o.Lla_obs.metrics "lla_solver_guard_events_total"
              ~help:"Non-finite iterate components neutralized by the solver guards.";
          utility_g =
            Lla_obs.Metrics.gauge o.Lla_obs.metrics "lla_solver_utility"
              ~help:"Total utility of the current allocation.";
        })
      obs
  in
  {
    problem;
    config;
    lat;
    mu = Array.make (Problem.n_resources problem) config.mu0;
    lambda = Array.make (Problem.n_paths problem) config.lambda0;
    offsets = Array.make n 0.;
    steps = Step_size.create problem config.step_policy;
    obs;
    meters;
    iteration = 0;
    guard_events = 0;
    utility_trace = Lla_stdx.Series.create ~name:"utility" ();
    movement_trace = Lla_stdx.Series.create ~name:"movement" ();
    prev_lat = Array.copy lat;
    share_traces;
  }

let problem t = t.problem

let config t = t.config

let iteration t = t.iteration

let utility t = Problem.total_utility t.problem ~lat:t.lat

(* Phase timing: a [None] obs (or a disabled profiler) reduces each hook
   to a branch around the phase body. *)
let prof t name f =
  match t.obs with Some o -> Lla_obs.Profile.time o.Lla_obs.profile name f | None -> f ()

let step t =
  prof t "solver.step" @@ fun () ->
  Array.blit t.lat 0 t.prev_lat 0 (Array.length t.lat);
  (* Trace time axis = iteration number, matching the utility series' x. *)
  let at = float_of_int (t.iteration + 1) in
  let guards = ref 0 in
  prof t "allocate" (fun () ->
      Allocation.allocate ?obs:t.obs ~at ~guards t.problem ~mu:t.mu ~lambda:t.lambda
        ~offsets:t.offsets ~sweeps:t.config.sweeps ~lat:t.lat);
  let congestion =
    prof t "price_update" (fun () ->
        Price_update.update ?obs:t.obs ~at t.problem ~lat:t.lat ~offsets:t.offsets ~steps:t.steps
          ~mu:t.mu ~lambda:t.lambda)
  in
  let guards = !guards + congestion.Price_update.guards in
  if guards > 0 then begin
    if t.guard_events = 0 then
      Log.warn (fun m ->
          m "iteration %d: %d non-finite iterate component(s) guarded — check inputs" t.iteration
            guards);
    t.guard_events <- t.guard_events + guards
  end;
  Step_size.observe t.steps ~congested_resources:congestion.Price_update.resources;
  t.iteration <- t.iteration + 1;
  Lla_stdx.Series.add t.utility_trace ~x:(float_of_int t.iteration) ~y:(utility t);
  let movement = ref 0. in
  Array.iteri
    (fun i lat ->
      movement := Float.max !movement (Float.abs (lat -. t.prev_lat.(i)) /. Float.max lat 1e-9))
    t.lat;
  Lla_stdx.Series.add t.movement_trace ~x:(float_of_int t.iteration) ~y:!movement;
  (match (t.obs, t.meters) with
  | Some o, Some m ->
    let u = utility t in
    Lla_obs.emit o ~at
      (Lla_obs.Trace.Iteration
         { iteration = t.iteration; utility = u; movement = !movement; guards });
    Lla_obs.Metrics.incr m.iterations_c;
    Lla_obs.Metrics.add m.guards_c guards;
    Lla_obs.Metrics.set m.utility_g u
  | _ -> ());
  if t.iteration mod 100 = 0 then
    Log.debug (fun m ->
        m "iteration %d: utility %.3f, movement %.2e, congested %d/%d resources" t.iteration
          (utility t) !movement
          (Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0
             congestion.Price_update.resources)
          (Array.length congestion.Price_update.resources));
  Array.iteri
    (fun r trace ->
      Lla_stdx.Series.add trace ~x:(float_of_int t.iteration)
        ~y:congestion.Price_update.share_sums.(r))
    t.share_traces

let run t ~iterations =
  for _ = 1 to iterations do
    step t
  done

let latency t id = t.lat.(Problem.subtask_index t.problem id)

let latencies t =
  Array.to_list (Array.mapi (fun i s -> (s.Problem.sid, t.lat.(i))) t.problem.subtasks)

let share t id =
  let i = Problem.subtask_index t.problem id in
  Problem.effective_share t.problem i ~lat:t.lat.(i) ~offset:t.offsets.(i)

let shares t =
  Array.to_list
    (Array.mapi
       (fun i s ->
         (s.Problem.sid, Problem.effective_share t.problem i ~lat:t.lat.(i) ~offset:t.offsets.(i)))
       t.problem.subtasks)

let mu t id = t.mu.(Problem.resource_index t.problem id)

let lambda t tid i =
  let ti = Problem.task_index t.problem tid in
  let info = t.problem.tasks.(ti) in
  if i < 0 || i >= Array.length info.path_indices then
    invalid_arg "Solver.lambda: path index out of range";
  t.lambda.(info.path_indices.(i))

let utility_series t = t.utility_trace

let movement_series t = t.movement_trace

let share_series t =
  Array.to_list (Array.mapi (fun r trace -> (t.problem.resource_ids.(r), trace)) t.share_traces)

let critical_paths t =
  List.map
    (fun (task : Task.t) ->
      let latency_of id = latency t id in
      let path, cost = Task.critical_path task ~latency:latency_of in
      (task, path, cost))
    t.problem.workload.Workload.tasks

(* Constraint checks read the problem's capacity array (not the immutable
   workload) so that Solver.set_capacity is reflected. *)
let violations t =
  let tolerance = t.config.feasibility_tolerance in
  let resource_violations = ref [] in
  for r = Problem.n_resources t.problem - 1 downto 0 do
    let used = Problem.share_sum t.problem r ~lat:t.lat ~offsets:t.offsets in
    let cap = t.problem.Problem.capacities.(r) in
    if used > cap *. (1. +. tolerance) then
      resource_violations :=
        Printf.sprintf "resource %s over capacity: share sum %.4f > B=%.4f"
          (Ids.Resource_id.to_string t.problem.Problem.resource_ids.(r))
          used cap
        :: !resource_violations
  done;
  let path_violations = ref [] in
  for p = Problem.n_paths t.problem - 1 downto 0 do
    let info = t.problem.Problem.paths.(p) in
    let cost = Problem.path_latency t.problem p ~lat:t.lat in
    if cost > info.Problem.critical_time *. (1. +. tolerance) then
      path_violations :=
        Printf.sprintf "task %s path %d misses critical time: %.2f > C=%.2f"
          t.problem.Problem.tasks.(info.Problem.task).Problem.task_name info.Problem.index_in_task
          cost info.Problem.critical_time
        :: !path_violations
  done;
  !resource_violations @ !path_violations

let feasible t = violations t = []

let converged_at t =
  if not (feasible t) then None
  else begin
    match
      Lla_stdx.Series.converged_at t.utility_trace ~tolerance:t.config.convergence_tolerance
        ~window:t.config.convergence_window
    with
    | None -> None
    | Some settled ->
      (* The allocation itself must also have stopped moving over the
         trailing window (a flat utility can mask a price limit cycle). *)
      let ys = Lla_stdx.Series.ys t.movement_trace in
      let n = Array.length ys in
      let from = Stdlib.max 0 (n - t.config.convergence_window) in
      let still = ref true in
      for i = from to n - 1 do
        if ys.(i) > t.config.convergence_tolerance then still := false
      done;
      if !still then Some settled else None
  end

let run_until_converged t ~max_iterations =
  let batch = Stdlib.max 1 t.config.convergence_window in
  let rec loop () =
    if t.iteration >= max_iterations then converged_at t
    else begin
      run t ~iterations:(Stdlib.min batch (max_iterations - t.iteration));
      match converged_at t with Some i -> Some i | None -> loop ()
    end
  in
  loop ()

let set_capacity t id value =
  if value < 0. || value > 1. then invalid_arg "Solver.set_capacity: outside [0, 1]";
  Log.info (fun m -> m "capacity of %a set to %.3f" Ids.Resource_id.pp id value);
  t.problem.Problem.capacities.(Problem.resource_index t.problem id) <- value

let capacity t id = t.problem.Problem.capacities.(Problem.resource_index t.problem id)

let set_arrival_rate t tid rate =
  if rate < 0. then invalid_arg "Solver.set_arrival_rate: negative rate";
  let ti = Problem.task_index t.problem tid in
  Array.iter
    (fun i ->
      let s = t.problem.Problem.subtasks.(i) in
      let floor_share = rate *. s.Problem.exec in
      s.Problem.stability <-
        (if floor_share > 0. then s.Problem.share.Lla_model.Share.inverse floor_share
         else infinity))
    t.problem.Problem.tasks.(ti).Problem.subtask_indices

let set_offset t id value = t.offsets.(Problem.subtask_index t.problem id) <- value

let offset t id = t.offsets.(Problem.subtask_index t.problem id)

let guard_events t = t.guard_events

let lat_array t = t.lat

let mu_array t = t.mu

let lambda_array t = t.lambda
