(** Safe-mode degradation: a divergence watchdog with a guaranteed
    fallback assignment.

    The LLA iteration is only guaranteed to converge for vanishing step
    sizes; with aggressive fixed steps, poisoned measurements or injected
    prices it can oscillate or blow up, and while it does the enacted
    latencies may oversubscribe resources (Eq. 3) or blow deadlines
    (Eq. 4). This watchdog monitors the trajectory and, when it looks
    divergent, clamps the system to a precomputed fallback assignment that
    satisfies both constraint families — trading optimality for safety,
    exactly the role the deadline-slicing baselines play in the paper's §7
    comparison. Once prices settle it re-enters optimization, with
    hysteresis so the system cannot flap between the two regimes.

    {2 Trip conditions (any one trips, checked in this order)}

    - a non-finite or [mu_cap]-exceeding resource price, or a non-finite
      total utility — unconditional, even during warmup;
    - sustained infeasibility: [violation_rounds] consecutive observations
      with some resource share sum above [B_r (1 + tol)] or some path
      above [C (1 + tol)];
    - utility oscillation: over a full [oscillation_window] of
      observations, relative spread above [oscillation_threshold] {e and}
      at least [min_reversals] direction reversals (a monotone transient
      has spread but no reversals).

    The infeasibility and oscillation detectors are silent for the first
    [warmup_rounds] observations after {!create}: a cold start on a
    workload whose resources sit at congestion is legitimately infeasible
    for seconds while prices find the constraint surface, and the initial
    utility climb is not oscillation. After a safe-mode exit the
    [reentry_grace_rounds] silence applies, and it must cover a {e full}
    cold transient: safe-mode entry heals prices to [mu0] and restarts the
    controllers' dual state, so the re-entered optimization repeats the
    cold-start excursion through infeasibility. A shorter re-entry grace
    turns safe mode into a steady-state oscillator — a chaos campaign
    found a price poison whose post-heal restarts tripped at exit+600 ms
    forever under a 50-round grace. The non-finite / price-cap trip is
    armed from the first observation.

    {2 Exit condition (hysteresis)}

    At least [min_safe_time] ms in safe mode {e and} [settle_rounds]
    consecutive observations in which no resource price moved by more than
    [settle_threshold] relative. On exit the detectors fall silent for
    [reentry_grace_rounds] observations before re-arming.

    {2 Fallback selection (at {!create})}

    First feasible of the {!Lla_baseline.Slicing} heuristics (proportional,
    laxity, equal — deadline-safe by construction, resource feasibility
    checked); if none fits, an offline {!Lla.Solver} run; if even that
    fails to produce a feasible point, the proportional slice is kept as
    best effort and {!fallback_guaranteed} is [false]. *)

type config = {
  mu_cap : float;  (** resource price above this is treated as divergence. *)
  infeasibility_tolerance : float;
      (** relative slack on Eq. 3/4 before an observation counts as a
          violation. *)
  violation_rounds : int;  (** consecutive violating observations to trip. *)
  oscillation_window : int;  (** utility samples in the oscillation detector. *)
  oscillation_threshold : float;  (** relative utility spread to trip. *)
  min_reversals : int;
      (** minimum direction reversals within the window to call the spread
          an oscillation rather than a transient. *)
  warmup_rounds : int;
      (** observations after {!create} during which the infeasibility and
          oscillation detectors are silent (default 500 = 5 s at the
          default 10 ms watchdog period). *)
  reentry_grace_rounds : int;
      (** detector-silence observations after a safe-mode exit (default
          50 = 0.5 s): shorter than [warmup_rounds] because the system
          re-enters optimization from a feasible, settled point. *)
  settle_threshold : float;
      (** max relative per-price movement for an observation to count as
          settled. *)
  settle_rounds : int;  (** consecutive settled observations to exit. *)
  min_safe_time : float;  (** minimum dwell (ms) in safe mode. *)
}

val default_config : config

type state = Optimizing | Safe of { since : float; reason : string }

type event =
  | Entered of { reason : string }
  | Exited

type t

val create : ?obs:Lla_obs.t -> ?config:config -> Lla.Problem.t -> t
(** Precomputes the fallback assignment for the problem (see above).
    [obs] makes every trip emit a {!Lla_obs.Trace.Watchdog_trip} record
    (stamped with the observation time) before the state flips to safe. *)

val config : t -> config

val observe : t -> now:float -> mu:float array -> lat:float array -> offsets:float array -> event option
(** Feed one watchdog observation of the running system's resource prices
    and enacted latencies. Returns [Some (Entered _)] when this
    observation trips safe mode, [Some Exited] when it completes the exit
    hysteresis, [None] otherwise. The caller is responsible for acting on
    the transition (clamping to {!fallback} / resuming optimization). *)

val observe_signals :
  t -> now:float -> mu:float array -> feasible:bool -> utility:float -> event option
(** {!observe} for callers that already hold the derived signals — the
    soak harness's kernel keeps active-set-aware cached share sums and
    path latencies, which a full-problem recompute over [lat] would
    disagree with under churn (retired blocks would be double counted).
    [feasible] stands in for the Eq. 3/4 check ([violating = not
    feasible], judged at the caller's tolerance) and [utility] for the
    utility probe; detector state, grace periods and hysteresis are
    shared with {!observe}. *)

val state : t -> state

val in_safe_mode : t -> bool

val fallback : t -> float array
(** A fresh copy of the fallback latency assignment, indexed like
    [Problem.subtasks]. *)

val fallback_source : t -> string
(** Which candidate won: a slicing baseline name, ["offline-solver"], or
    ["proportional-best-effort"]. *)

val fallback_guaranteed : t -> bool
(** [true] when the fallback verifiably satisfies Eq. 3 and Eq. 4. *)

val entries : t -> int
(** Times safe mode was entered. *)

val exits : t -> int
