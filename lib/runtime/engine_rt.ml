(* Wall-clock real-time engine stub: the same single-core scheduling as
   Engine_sim (identical event order, identical trajectories), paced so
   one simulated millisecond takes [1 / speedup] wall milliseconds. The
   pacing layer only ever *waits* — it never reorders, drops or
   time-warps events — so at any speedup the fired sequence is exactly
   the sim engine's. A deadline already in the past (the loop fell
   behind) fires immediately; the engine does not try to catch up by
   skipping work. *)

type t = {
  core : Lla_sim.Engine.t;
  speedup : float;  (* simulated ms per wall ms; 1.0 = real time *)
  mutable wall_anchor : float;  (* Unix.gettimeofday at the pacing origin *)
  mutable sim_anchor : float;  (* core clock at the pacing origin *)
  mutable anchored : bool;
}

let create ?(speedup = 1.0) ?start_time () =
  if not (Float.is_finite speedup) || speedup <= 0. then
    invalid_arg "Engine_rt.create: speedup must be positive";
  {
    core = Lla_sim.Engine.create ?start_time ();
    speedup;
    wall_anchor = 0.;
    sim_anchor = 0.;
    anchored = false;
  }

let core t = t.core

let speedup t = t.speedup

let now t = Lla_sim.Engine.now t.core

(* The pacing origin is (re-)anchored lazily at the first run after
   creation, so construction/setup time is not counted as lag. *)
let anchor t =
  if not t.anchored then begin
    t.wall_anchor <- Unix.gettimeofday ();
    t.sim_anchor <- Lla_sim.Engine.now t.core;
    t.anchored <- true
  end

let wall_deadline t sim_time =
  t.wall_anchor +. ((sim_time -. t.sim_anchor) /. t.speedup /. 1000.)

let pace t sim_time =
  let wait = wall_deadline t sim_time -. Unix.gettimeofday () in
  if wait > 0. then Unix.sleepf wait

let run_until t horizon =
  anchor t;
  let rec loop () =
    match Lla_sim.Engine.next_time t.core with
    | Some at when at <= horizon ->
      pace t at;
      ignore (Lla_sim.Engine.step t.core);
      loop ()
    | Some _ | None ->
      pace t horizon;
      Lla_sim.Engine.run_until t.core horizon
  in
  loop ()

let drain ?(max_events = max_int) t =
  anchor t;
  let rec loop remaining =
    if remaining > 0 then
      match Lla_sim.Engine.next_time t.core with
      | Some at ->
        pace t at;
        ignore (Lla_sim.Engine.step t.core);
        loop (remaining - 1)
      | None -> ()
  in
  loop max_events

let pending t = Lla_sim.Engine.pending t.core

let events_fired t = Lla_sim.Engine.events_fired t.core

let lag_ms t =
  if not t.anchored then 0.
  else
    let behind = Unix.gettimeofday () -. wall_deadline t (Lla_sim.Engine.now t.core) in
    Float.max 0. (behind *. 1000.)
