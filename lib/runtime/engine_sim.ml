(* The deterministic single-threaded engine: a thin identity wrapper over
   one [Lla_sim.Engine.t] core. Everything the runtime schedules in sim
   mode goes straight onto that core, so a trajectory driven through the
   [Engine] interface is bit-for-bit the pre-interface one — the golden
   tests in test/test_engine.ml hold it to that. *)

type t = { core : Lla_sim.Engine.t }

let create ?start_time () = { core = Lla_sim.Engine.create ?start_time () }

let of_core core = { core }

let core t = t.core

let now t = Lla_sim.Engine.now t.core

let run_until t horizon = Lla_sim.Engine.run_until t.core horizon

let drain ?max_events t = Lla_sim.Engine.run t.core ?max_events ()

let pending t = Lla_sim.Engine.pending t.core

let events_fired t = Lla_sim.Engine.events_fired t.core
