(* OCaml 5 domains-parallel engine.
   ================================

   N shards, each owning a private [Lla_sim.Engine.t] core, advance in
   lockstep quanta: at every barrier the main domain runs the queued
   global operations and swaps cross-shard outboxes into inboxes, then
   all shards run their cores to the quantum end in parallel. Everything
   a shard touches during the parallel phase — its core, its actors, its
   transport, its obs handle, its outbox cells — is owned by exactly one
   domain, so the engine needs no locks on the message hot path; the
   only synchronization is the barrier itself.

   Memory model / single-writer discipline
   ---------------------------------------
   - [shards.(s)] and everything reachable from it is written only by
     the domain running shard [s] during a parallel phase, and only by
     the main domain between phases. The barrier's mutex acquire/release
     pair publishes every write of one phase to every reader of the
     next (release/acquire on [pool.m]), so no other fences are needed.
   - [outboxes.(s).(d)] is a cell written only by shard [s] (during its
     phase) and drained only at the barrier — single writer, no lock.
   - Barrier ops ([at_barrier]) run sequentially on the main domain and
     may therefore read and write *any* shard's state; this is where
     the runtime puts its watchdog, safe-mode entry and chaos writes.

   Deterministic merge
   -------------------
   Cross-shard messages carry [(at, channel, seq)]: the delivery time
   stamped by the source shard's transport, a channel id unique to the
   (source actor, destination actor) pair, and an emission counter owned
   by the source shard ([seq] only ever breaks ties within one channel,
   so per-shard monotone is as good as per-channel — and cheaper). In
   deterministic mode (default)
   every destination sorts its merged inbox by that key before
   scheduling the deliveries on its core, so the apply order of
   cross-shard traffic is a pure function of the per-shard streams —
   which are themselves deterministic by the sim core's (time, seq)
   order. By induction over quanta, whole runs replay bit-for-bit.
   [~deterministic:false] keeps arrival order (outbox drain order:
   source shard, then emission order) instead — still reproducible on
   this lockstep scheduler, but the mode the interleaving battery uses
   to show which oracles are order-sensitive.

   Timing fidelity: with quantum <= the minimum cross-shard link delay,
   a message sent during quantum (T, T+q] is delivered at
   send_time + delay >= T + q, i.e. at or after the barrier where it is
   merged — so sorted insertion schedules it at exactly its stamped
   time and parallel trajectories lose no timing accuracy. A larger
   quantum degrades gracefully: late messages apply at the barrier
   (bounded by one quantum), deterministically. *)

type msg = {
  m_at : float;
  m_channel : int;
  m_seq : int;
  m_apply : unit -> unit;
}

type shard = {
  core : Lla_sim.Engine.t;
  outboxes : msg list ref array;  (* per destination shard; reversed emission order *)
  mutable post_seq : int;
      (* source-side emission counter. [m_seq] only breaks ties between
         messages of the SAME channel (one source shard each), so any
         counter monotone in emission order yields the same sorted merge
         as a per-channel one — this one costs an increment per post
         instead of two hashtable probes. *)
}

(* Persistent worker pool: [workers = n - 1] domains (shard 0 runs on the
   main domain), woken per quantum by a generation counter under one
   mutex. Spawned lazily on the first parallel phase so construction is
   cheap and single-shard engines never spawn at all. *)
type pool = {
  workers : int;
  m : Mutex.t;
  start_cv : Condition.t;
  done_cv : Condition.t;
  mutable job : int -> unit;  (* shard index -> quantum work *)
  mutable round : int;  (* generation counter *)
  mutable done_count : int;
  mutable failed : exn option;  (* first worker exception of the round *)
  mutable stopping : bool;
  mutable handles : unit Domain.t list;
}

type t = {
  n : int;
  quantum : float;
  deterministic : bool;
  shards : shard array;
  mutable clock : float;
  mutable bops : (float * int * (unit -> unit)) list;  (* pending barrier ops *)
  mutable bop_seq : int;
  mutable pool : pool option;  (* spawned lazily; None after shutdown or when n = 1 *)
  mutable stopped : bool;
}

let create ?(domains = 4) ?(quantum = 1.0) ?(deterministic = true) ?start_time () =
  if domains < 1 then invalid_arg "Engine_domains.create: domains < 1";
  if not (Float.is_finite quantum) || quantum <= 0. then
    invalid_arg "Engine_domains.create: quantum must be positive";
  {
    n = domains;
    quantum;
    deterministic;
    shards =
      Array.init domains (fun _ ->
          {
            core = Lla_sim.Engine.create ?start_time ();
            outboxes = Array.init domains (fun _ -> ref []);
            post_seq = 0;
          });
    clock = (match start_time with Some s -> s | None -> 0.);
    bops = [];
    bop_seq = 0;
    pool = None;
    stopped = false;
  }

let shards t = t.n

let quantum t = t.quantum

let deterministic t = t.deterministic

let core t shard = t.shards.(shard).core

let now t = t.clock

(* --- worker pool ------------------------------------------------------ *)

let worker_loop pool w =
  let my_round = ref 0 in
  let rec loop () =
    Mutex.lock pool.m;
    while (not pool.stopping) && pool.round = !my_round do
      Condition.wait pool.start_cv pool.m
    done;
    if pool.stopping then Mutex.unlock pool.m
    else begin
      my_round := pool.round;
      let job = pool.job in
      Mutex.unlock pool.m;
      let failure = try job (w + 1); None with exn -> Some exn in
      Mutex.lock pool.m;
      (match (failure, pool.failed) with
      | Some exn, None -> pool.failed <- Some exn
      | _ -> ());
      pool.done_count <- pool.done_count + 1;
      if pool.done_count = pool.workers then Condition.signal pool.done_cv;
      Mutex.unlock pool.m;
      loop ()
    end
  in
  loop ()

let get_pool t =
  match t.pool with
  | Some p -> p
  | None ->
    if t.stopped then invalid_arg "Engine_domains: engine was shut down";
    let p =
      {
        workers = t.n - 1;
        m = Mutex.create ();
        start_cv = Condition.create ();
        done_cv = Condition.create ();
        job = ignore;
        round = 0;
        done_count = 0;
        failed = None;
        stopping = false;
        handles = [];
      }
    in
    p.handles <- List.init p.workers (fun w -> Domain.spawn (fun () -> worker_loop p w));
    t.pool <- Some p;
    p

(* Run [job s] for every shard s, shard 0 on the calling (main) domain.
   The mutex acquire/release around the round hand-off is the
   happens-before edge publishing each phase's writes to the next. *)
let run_parallel t job =
  if t.n = 1 then job 0
  else begin
    let p = get_pool t in
    Mutex.lock p.m;
    p.job <- job;
    p.done_count <- 0;
    p.failed <- None;
    p.round <- p.round + 1;
    Condition.broadcast p.start_cv;
    Mutex.unlock p.m;
    let main_failure = try job 0; None with exn -> Some exn in
    Mutex.lock p.m;
    while p.done_count < p.workers do
      Condition.wait p.done_cv p.m
    done;
    let worker_failure = p.failed in
    Mutex.unlock p.m;
    match (main_failure, worker_failure) with
    | Some exn, _ | None, Some exn -> raise exn
    | None, None -> ()
  end

let shutdown t =
  (match t.pool with
  | None -> ()
  | Some p ->
    Mutex.lock p.m;
    p.stopping <- true;
    Condition.broadcast p.start_cv;
    Mutex.unlock p.m;
    List.iter Domain.join p.handles;
    t.pool <- None);
  t.stopped <- true

(* --- cross-shard posting ---------------------------------------------- *)

let post t ~from ~shard ~at ~channel apply =
  if shard < 0 || shard >= t.n then invalid_arg "Engine_domains.post: bad shard";
  if shard = from then begin
    (* Same shard: no barrier to cross; schedule on the owning core
       directly (clamped, in case the stamp is slightly in this core's
       past — can only happen with quantum > the link delay). *)
    let c = t.shards.(from).core in
    ignore
      (Lla_sim.Engine.schedule c ~at:(Float.max at (Lla_sim.Engine.now c)) (fun _ -> apply ()))
  end
  else begin
    let sh = t.shards.(from) in
    let seq = sh.post_seq in
    sh.post_seq <- seq + 1;
    let cell = sh.outboxes.(shard) in
    cell := { m_at = at; m_channel = channel; m_seq = seq; m_apply = apply } :: !cell
  end

let at_barrier t ~at f =
  let at = Float.max at t.clock in
  t.bops <- (at, t.bop_seq, f) :: t.bops;
  t.bop_seq <- t.bop_seq + 1

(* --- quantum loop ----------------------------------------------------- *)

let bop_due clock (at, _, _) = at <= clock +. 1e-9

let run_barrier_ops t =
  let rec flush () =
    let due, rest = List.partition (bop_due t.clock) t.bops in
    match due with
    | [] -> ()
    | _ ->
      t.bops <- rest;
      List.sort
        (fun (a1, s1, _) (a2, s2, _) ->
          match Float.compare a1 a2 with 0 -> Int.compare s1 s2 | c -> c)
        due
      |> List.iter (fun (_, _, f) -> f ());
      flush ()
  in
  flush ()

let cmp_msg a b =
  match Float.compare a.m_at b.m_at with
  | 0 -> ( match Int.compare a.m_channel b.m_channel with 0 -> Int.compare a.m_seq b.m_seq | c -> c)
  | c -> c

(* Swap every outbox into its destination's merged inbox. Serial (at the
   barrier), but only list moves — the per-message work happens on the
   destination shard during the next parallel phase. *)
let collect_inboxes t =
  Array.init t.n (fun d ->
      let acc = ref [] in
      for s = t.n - 1 downto 0 do
        let cell = t.shards.(s).outboxes.(d) in
        (* Outboxes are in reversed emission order; [rev_append]ing them
           back-to-front rebuilds drain order (shard 0 first, each shard's
           messages in emission order) in one linear pass — the same list
           the old [acc @ List.rev cell] fold produced, without the
           quadratic copies at the barrier. *)
        acc := List.rev_append !cell !acc;
        cell := []
      done;
      !acc)

let deliver_inbox t sid inbox =
  let sh = t.shards.(sid) in
  let msgs = if t.deterministic then List.sort cmp_msg inbox else inbox in
  List.iter
    (fun m ->
      ignore
        (Lla_sim.Engine.schedule sh.core
           ~at:(Float.max m.m_at (Lla_sim.Engine.now sh.core))
           (fun _ -> m.m_apply ())))
    msgs

let step_quantum t horizon =
  run_barrier_ops t;
  let q_end = Float.min horizon (t.clock +. t.quantum) in
  let inboxes = collect_inboxes t in
  run_parallel t (fun sid ->
      deliver_inbox t sid inboxes.(sid);
      Lla_sim.Engine.run_until t.shards.(sid).core q_end);
  t.clock <- q_end

let run_until t horizon =
  if t.stopped then invalid_arg "Engine_domains.run_until: engine was shut down";
  if horizon < t.clock then invalid_arg "Engine_domains.run_until: horizon is in the past";
  while t.clock < horizon -. 1e-12 do
    step_quantum t horizon
  done;
  run_barrier_ops t

let outbox_backlog t =
  Array.fold_left
    (fun acc sh -> Array.fold_left (fun acc cell -> acc + List.length !cell) acc sh.outboxes)
    0 t.shards

let pending t =
  Array.fold_left (fun acc sh -> acc + Lla_sim.Engine.pending sh.core) 0 t.shards
  + outbox_backlog t + List.length t.bops

let events_fired t =
  Array.fold_left (fun acc sh -> acc + Lla_sim.Engine.events_fired sh.core) 0 t.shards

let drain ?(max_quanta = 1_000_000) t =
  let q = ref 0 in
  while pending t > 0 && !q < max_quanta do
    step_quantum t (t.clock +. t.quantum);
    incr q
  done
