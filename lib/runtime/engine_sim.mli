(** The deterministic single-threaded simulation engine.

    An identity wrapper over one {!Lla_sim.Engine.t} core: scheduling
    through this engine is the same heap, the same [(time, seq)] event
    order and the same clock as scheduling on the core directly, so
    trajectories are bit-for-bit the pre-interface ones. {!of_core}
    wraps an existing core — the compatibility path for callers that
    already own a [Lla_sim.Engine.t]. *)

type t

val create : ?start_time:float -> unit -> t

val of_core : Lla_sim.Engine.t -> t
(** Wrap an existing core; the wrapper aliases it (no copy). *)

val core : t -> Lla_sim.Engine.t

val now : t -> float

val run_until : t -> float -> unit

val drain : ?max_events:int -> t -> unit
(** Fire remaining events until none remain. *)

val pending : t -> int

val events_fired : t -> int
