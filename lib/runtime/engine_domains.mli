(** OCaml 5 domains-parallel engine.

    [n] shards, each owning a private {!Lla_sim.Engine.t} core, advance
    in lockstep quanta. At each barrier (on the main domain) the queued
    global operations run and cross-shard outboxes swap into inboxes;
    then every shard — shard 0 on the main domain, the rest on a
    lazily-spawned persistent pool of [n - 1] worker domains — merges
    its inbox onto its core and runs it to the quantum end in parallel.
    Everything reachable from a shard is single-writer (the owning
    domain during a phase, the main domain at barriers), with the
    barrier mutex as the publishing happens-before edge, so the message
    hot path takes no locks.

    {b Deterministic merge} (default): each destination sorts its
    merged inbox by [(at, channel, seq)] — delivery time, source→dest
    actor channel id, per-channel source-side sequence — before
    scheduling, totally ordering cross-shard deliveries independently
    of domain scheduling. Runs replay bit-for-bit.
    [~deterministic:false] keeps outbox drain order (source shard, then
    emission order) instead.

    {b Timing}: with [quantum] <= the minimum cross-shard link delay,
    merged messages are always scheduled at exactly their stamped
    delivery time (they cannot be due before the barrier that merges
    them); a larger quantum delays them to the barrier, bounded by one
    quantum, still deterministically.

    Call {!shutdown} when done: worker domains are OS threads and the
    OCaml runtime caps live domains (~128), so test batteries that
    build many engines must release them. *)

type t

val create :
  ?domains:int -> ?quantum:float -> ?deterministic:bool -> ?start_time:float -> unit -> t
(** [domains] (default 4) shards/cores; [quantum] (default [1.0] ms)
    barrier spacing. @raise Invalid_argument on [domains < 1] or a
    non-positive quantum. Worker domains spawn on the first
    {!run_until}, not here. *)

val shards : t -> int

val quantum : t -> float

val deterministic : t -> bool

val core : t -> int -> Lla_sim.Engine.t
(** Shard [s]'s private core. Outside a parallel phase (setup, between
    {!run_until} calls, inside barrier ops) the caller may schedule on
    any core; during a phase only the owning domain may touch it. *)

val now : t -> float
(** The barrier clock (all cores agree at every barrier). *)

val post :
  t -> from:int -> shard:int -> at:float -> channel:int -> (unit -> unit) -> unit
(** Cross the barrier: run [apply] on [shard]'s core at time [at] (or
    the merge barrier, whichever is later). [from] must be the shard
    whose execution context the caller is in — the outbox cell and the
    per-[channel] sequence counter written here are single-writer by
    that discipline. Same-shard posts schedule directly. *)

val at_barrier : t -> at:float -> (unit -> unit) -> unit
(** Queue a global operation: runs sequentially on the main domain at
    the first barrier at or after [at] (ties ordered by queueing
    order), with every shard at rest — the place for cross-shard reads
    and writes (watchdog, safe-mode entry, chaos injection). Call from
    barrier context or setup only, never from a parallel phase. *)

val run_until : t -> float -> unit
(** Advance quantum by quantum to the horizon, firing barrier ops and
    parallel phases as described above. Spawns the worker pool on
    first use. A worker exception aborts the run (re-raised on the
    caller) after the phase's barrier completes. *)

val drain : ?max_quanta:int -> t -> unit
(** Keep running quanta until no core has pending events and no
    message or barrier op is queued (or [max_quanta] quanta pass) —
    the post-[stop] flush. *)

val pending : t -> int
(** Live events across all cores + queued cross-shard messages +
    pending barrier ops. Meaningful at rest. *)

val events_fired : t -> int
(** Total events fired across all shard cores. Meaningful at rest. *)

val shutdown : t -> unit
(** Stop and join the worker domains. Idempotent; the engine cannot
    run afterwards. *)
