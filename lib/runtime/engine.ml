(* The pluggable engine interface: one closed dispatch type over the
   three implementations, so runtime layers thread a single [?engine]
   value and branch on capability (shard count, barrier ops) rather
   than on concrete engines. The variants stay exposed (not an abstract
   record of closures) deliberately: the domains engine's extra surface
   — [post], [at_barrier], shard cores — is capability, not leakage,
   and [Distributed] needs static knowledge of which mode it wires. *)

type t =
  | Sim of Engine_sim.t
  | Domains of Engine_domains.t
  | Rt of Engine_rt.t

type kind = [ `Sim | `Domains | `Rt ]

let sim ?start_time () = Sim (Engine_sim.create ?start_time ())

let of_core core = Sim (Engine_sim.of_core core)

let domains ?domains ?quantum ?deterministic ?start_time () =
  Domains (Engine_domains.create ?domains ?quantum ?deterministic ?start_time ())

let rt ?speedup ?start_time () = Rt (Engine_rt.create ?speedup ?start_time ())

let kind = function Sim _ -> `Sim | Domains _ -> `Domains | Rt _ -> `Rt

let name = function Sim _ -> "sim" | Domains _ -> "domains" | Rt _ -> "rt"

let shards = function Sim _ -> 1 | Rt _ -> 1 | Domains d -> Engine_domains.shards d

let core t ~shard =
  match t with
  | Sim s ->
    if shard <> 0 then invalid_arg "Engine.core: sim engine has one shard";
    Engine_sim.core s
  | Rt r ->
    if shard <> 0 then invalid_arg "Engine.core: rt engine has one shard";
    Engine_rt.core r
  | Domains d -> Engine_domains.core d shard

let now = function
  | Sim s -> Engine_sim.now s
  | Domains d -> Engine_domains.now d
  | Rt r -> Engine_rt.now r

let run_until t horizon =
  match t with
  | Sim s -> Engine_sim.run_until s horizon
  | Domains d -> Engine_domains.run_until d horizon
  | Rt r -> Engine_rt.run_until r horizon

let drain = function
  | Sim s -> Engine_sim.drain s
  | Domains d -> Engine_domains.drain d
  | Rt r -> Engine_rt.drain r

let pending = function
  | Sim s -> Engine_sim.pending s
  | Domains d -> Engine_domains.pending d
  | Rt r -> Engine_rt.pending r

let events_fired = function
  | Sim s -> Engine_sim.events_fired s
  | Domains d -> Engine_domains.events_fired d
  | Rt r -> Engine_rt.events_fired r

let post t ~from ~shard ~at ~channel apply =
  match t with
  | Domains d -> Engine_domains.post d ~from ~shard ~at ~channel apply
  | Sim _ | Rt _ ->
    if from <> 0 || shard <> 0 then invalid_arg "Engine.post: single-shard engine";
    let c = core t ~shard:0 in
    ignore
      (Lla_sim.Engine.schedule c ~at:(Float.max at (Lla_sim.Engine.now c)) (fun _ -> apply ()))

let at_barrier t ~at f =
  match t with
  | Domains d -> Engine_domains.at_barrier d ~at f
  | Sim _ | Rt _ ->
    let c = core t ~shard:0 in
    ignore
      (Lla_sim.Engine.schedule c ~at:(Float.max at (Lla_sim.Engine.now c)) (fun _ -> f ()))

let shutdown = function
  | Domains d -> Engine_domains.shutdown d
  | Sim _ | Rt _ -> ()
