module Transport = Lla_transport.Transport
module Engine = Lla_sim.Engine

type config = {
  heartbeat_period : float;
  timeout : float;
  check_period : float;
}

let default_config = { heartbeat_period = 50.; timeout = 250.; check_period = 25. }

type status = Alive | Suspect

type watch = {
  endpoint : Transport.endpoint;
  mutable last_seen : float;
  mutable status : status;
  mutable hb_tick : Engine.event_id option;
}

type t = {
  config : config;
  obs : Lla_obs.t option;
  transport : Transport.t;
  engine : Engine.t;
  detector : Transport.endpoint;
  mutable watches : watch list;  (* reverse watch order *)
  mutable callbacks : (Transport.endpoint -> status -> now:float -> unit) list;  (* reverse order *)
  mutable sweep_tick : Engine.event_id option;
  mutable started : bool;
  mutable stopped : bool;
  mutable heartbeats : int;
  mutable suspicions : int;
  mutable recoveries : int;
}

let create ?obs ?(config = default_config) ?(name = "health") transport =
  if config.heartbeat_period <= 0. || config.timeout <= 0. || config.check_period <= 0. then
    invalid_arg "Health.create: non-positive period";
  {
    config;
    obs;
    transport;
    engine = Transport.engine transport;
    detector = Transport.endpoint transport ~name;
    watches = [];
    callbacks = [];
    sweep_tick = None;
    started = false;
    stopped = false;
    heartbeats = 0;
    suspicions = 0;
    recoveries = 0;
  }

let config t = t.config

let detector_endpoint t = t.detector

let notify t w ~now =
  Lla_obs.emit_opt t.obs ~at:now
    (Lla_obs.Trace.Health_transition
       { endpoint = Transport.endpoint_name w.endpoint; alive = w.status = Alive });
  List.iter (fun f -> f w.endpoint w.status ~now) (List.rev t.callbacks)

let on_transition t f = t.callbacks <- f :: t.callbacks

(* Heartbeat arrival: refresh the deadline; a beat from a suspect proves it
   is back (either restarted or the partition healed). *)
let beat t w =
  let now = Engine.now t.engine in
  t.heartbeats <- t.heartbeats + 1;
  w.last_seen <- now;
  if w.status = Suspect then begin
    w.status <- Alive;
    t.recoveries <- t.recoveries + 1;
    notify t w ~now
  end

(* The heartbeat loop never stops while the detector runs: a down endpoint's
   sends are simply lost by the transport, and the loop resumes delivering
   the moment the endpoint restarts — no restart hook needed. Heartbeats are
   keyed so a reordered stale beat cannot mask a newer one's absence. *)
let rec heartbeat_loop t w =
  w.hb_tick <-
    Some
      (Engine.schedule_after t.engine ~delay:t.config.heartbeat_period (fun _ ->
           if not t.stopped then begin
             Transport.send ~key:0 t.transport ~src:w.endpoint ~dst:t.detector (fun () ->
                 beat t w);
             heartbeat_loop t w
           end))

let watch t endpoint =
  if not (List.exists (fun w -> w.endpoint == endpoint) t.watches) then begin
    let w =
      { endpoint; last_seen = Engine.now t.engine; status = Alive; hb_tick = None }
    in
    t.watches <- w :: t.watches;
    if t.started && not t.stopped then heartbeat_loop t w
  end

let watched t = List.rev_map (fun w -> w.endpoint) t.watches

let sweep t =
  let now = Engine.now t.engine in
  List.iter
    (fun w ->
      if w.status = Alive && now -. w.last_seen > t.config.timeout then begin
        w.status <- Suspect;
        t.suspicions <- t.suspicions + 1;
        notify t w ~now
      end)
    t.watches

let rec sweep_loop t =
  t.sweep_tick <-
    Some
      (Engine.schedule_after t.engine ~delay:t.config.check_period (fun _ ->
           if not t.stopped then begin
             sweep t;
             sweep_loop t
           end))

let start t =
  if t.started then invalid_arg "Health.start: already started";
  t.started <- true;
  let now = Engine.now t.engine in
  List.iter
    (fun w ->
      w.last_seen <- now;
      heartbeat_loop t w)
    t.watches;
  sweep_loop t

let stop t =
  if t.started && not t.stopped then begin
    t.stopped <- true;
    List.iter
      (fun w ->
        Option.iter (Engine.cancel t.engine) w.hb_tick;
        w.hb_tick <- None)
      t.watches;
    Option.iter (Engine.cancel t.engine) t.sweep_tick;
    t.sweep_tick <- None
  end

let find t endpoint =
  match List.find_opt (fun w -> w.endpoint == endpoint) t.watches with
  | Some w -> w
  | None -> invalid_arg "Health.status: endpoint not watched"

let status t endpoint = (find t endpoint).status

let suspects t =
  List.rev t.watches
  |> List.filter_map (fun w -> if w.status = Suspect then Some w.endpoint else None)

let heartbeats_received t = t.heartbeats

let suspicions t = t.suspicions

let recoveries t = t.recoveries
