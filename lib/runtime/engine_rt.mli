(** Wall-clock real-time engine (stub).

    Shares the scheduling core with {!Engine_sim} — the same
    [(time, seq)]-ordered event heap, so the fired sequence at any
    [speedup] is exactly the sim engine's — and adds a pacing layer
    that sleeps until each event's wall-clock deadline:
    [wall = anchor + (sim_time - sim_anchor) / speedup] (sim ms, wall
    seconds). The pacing origin anchors lazily at the first
    {!run_until}, so setup time is not counted as lag; a loop that
    falls behind fires late events immediately rather than skipping
    them ({!lag_ms} reports how far behind it is).

    This is the deployment-shaped engine: the paper's control plane on
    real clocks. It is deliberately minimal — single-core, no I/O
    integration — but runs the full runtime today ([Distributed.create_on]
    with an [Engine.rt]) at any speedup, which is how the test battery
    exercises it without waiting out real milliseconds. *)

type t

val create : ?speedup:float -> ?start_time:float -> unit -> t
(** [speedup] (default [1.0] = real time): simulated milliseconds per
    wall millisecond. Use a large value (e.g. [1e6]) to run a
    simulation-sized trajectory through the real-time path in
    negligible wall time. @raise Invalid_argument unless positive and
    finite. *)

val core : t -> Lla_sim.Engine.t

val speedup : t -> float

val now : t -> float

val run_until : t -> float -> unit
(** Fire every event with time <= horizon, sleeping until each one's
    wall deadline, then advance the clock to the horizon (also paced). *)

val drain : ?max_events:int -> t -> unit

val pending : t -> int

val events_fired : t -> int

val lag_ms : t -> float
(** Wall milliseconds the loop is currently behind its pacing schedule
    (0 when keeping up or never run). *)
