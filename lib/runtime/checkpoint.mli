(** Price-state checkpointing for the distributed control plane.

    PR 1's transport lets agents and controllers crash; the restart path
    re-priced from scratch ([mu0 = 1], compiled initial latency views),
    paying the full cold-convergence transient on every outage. This store
    turns that into warm recovery: actors periodically snapshot their dual
    state (a price agent: [mu_r], its adaptive step and its latency view;
    a task controller: its price views, path multipliers and per-path
    steps), and a restarted actor rebuilds from its last accepted snapshot
    instead of from [mu0] — the same idea that makes delay/fault-tolerant
    distributed allocation deployable (DTAC-style recovery from stale
    state rather than cold restart).

    Snapshot hygiene:
    - a snapshot containing a non-finite value is {e refused at save time}
      (counted in {!rejected_saves}), so a diverging actor can never
      checkpoint its poisoned state and resurrect it after a crash;
    - a snapshot older than [max_age] at restore time is considered stale
      and discarded (counted in {!stale_restores}); the actor then falls
      back to the cold-restart path.

    The in-memory store can be backed by a real write-ahead journal
    ({!Lla_durable.Journal}): with [?journal], every accepted save also
    appends its JSONL line to the journal, and {!recover} replays the
    journal back through the normal save path after a process crash —
    so the non-finite refusal and staleness discard apply to disk state
    exactly as to live state. Without [?journal] nothing touches
    storage and behaviour is bit-for-bit the PR-2 in-memory store.
    Arrays are defensively copied both ways. The {!to_jsonl} /
    {!load_jsonl} codec is the journal's payload format: one JSON
    object per saved slot, loaded back through the normal save path so
    the non-finite refusal applies to deserialized snapshots too. *)

type agent_state = {
  price : float;  (** [mu_r]. *)
  gamma : float;  (** current adaptive step size. *)
  lat_view : float array;  (** last announced latency per local subtask slot. *)
}

type controller_state = {
  mu_view : float array;  (** stale resource-price view, indexed by resource. *)
  congested_view : bool array;
  lambda : float array;  (** path multipliers, global path indexing. *)
  gamma_p : float array;  (** per own-path step sizes. *)
}

type t

val create :
  ?obs:Lla_obs.t ->
  ?journal:Lla_durable.Journal.t ->
  ?max_age:float ->
  n_agents:int ->
  n_controllers:int ->
  unit ->
  t
(** [max_age] (ms, default [infinity]): snapshots older than this at
    restore time are stale. [obs] makes every save emit a
    {!Lla_obs.Trace.Checkpoint_saved} or [Checkpoint_rejected] record
    (actor ["agent:<i>"] / ["controller:<i>"], stamped with the save
    time). [journal] persists every accepted save as a write-ahead
    record (see {!recover}); omitted, the store never touches storage.
    @raise Invalid_argument on a non-positive [max_age] or negative
    sizes. *)

val save_agent : t -> int -> now:float -> agent_state -> bool
(** Snapshot agent [r]'s state at time [now]. [false] when the state
    contains a non-finite value — the previous snapshot (if any) is
    kept. *)

val save_controller : t -> int -> now:float -> controller_state -> bool

val restore_agent : t -> int -> now:float -> agent_state option
(** The latest accepted snapshot of agent [r], unless none exists or it is
    older than [max_age]. Returned arrays are fresh copies. *)

val restore_controller : t -> int -> now:float -> controller_state option

val last_agent_save : t -> int -> float option
(** Time of the latest accepted snapshot, for save-period gating. *)

val last_controller_save : t -> int -> float option

val saves : t -> int
(** Accepted snapshots (agents + controllers). *)

val restores : t -> int
(** Successful restores. *)

val rejected_saves : t -> int
(** Snapshots refused because they contained a non-finite value. *)

val stale_restores : t -> int
(** Restore attempts that found only a stale snapshot. *)

(** {1 Durability}

    The crash-recovery loop: normal operation journals every accepted
    save; after a whole-process crash, a fresh (or {!clear}ed) store
    calls {!recover} to replay the journal's surviving records through
    the save path, then actors warm-restart from the restored slots as
    if the process had never died. {!compact} bounds journal growth by
    snapshotting the live slots and truncating the log. *)

val journal : t -> Lla_durable.Journal.t option

val clear : t -> unit
(** Drop every in-memory slot (a whole-node crash losing RAM state);
    counters and the journal are untouched. *)

val recover : t -> now:float -> Lla_durable.Recovery.report option
(** Replay the attached journal into this store through the normal
    save path: non-finite records are refused, malformed lines are
    refused (never raised on), and a torn tail on the active segment is
    truncated in place. Journal appends are suppressed during the
    replay itself, so recovery is idempotent — replaying twice restores
    the same slots. [None] when the store has no journal. Trace/metric
    emission follows the store's [?obs]. *)

val compact : t -> unit
(** Snapshot every live slot into the journal ({!to_jsonl} payloads)
    and truncate the log segments. No-op without a journal. *)

(** {1 JSONL codec}

    Serialization for the snapshot store: {!to_jsonl} renders every
    currently saved slot as one compact JSON line; {!load_jsonl} parses
    the lines back and routes each snapshot through {!save_agent} /
    {!save_controller}, so a line carrying a non-finite value is refused
    exactly like a live save (counted in {!rejected_saves}) and a
    restored store ages snapshots from their recorded save times. *)

val to_jsonl : t -> string list
(** One line per saved slot, agents (by index) then controllers. Empty
    slots produce no line. *)

val load_jsonl : t -> string list -> (int, string) result
(** Load lines produced by {!to_jsonl} into this store: [Ok n] is the
    number of snapshots accepted (refused non-finite lines are not
    errors — they are the refusal path working). [Error _] reports the
    first malformed line (bad JSON, unknown [kind], out-of-range index,
    wrong field type) with its 1-based line number. *)
