(** Message-passing deployment of LLA (paper §4.1).

    One {e task controller} per task and one {e price agent} per resource
    run as actors on the discrete-event engine:

    - a price agent periodically recomputes its resource price from the
      most recently received subtask latencies (Eq. 8) and broadcasts
      [Price] messages to the controllers of tasks with subtasks on it
      (including a congestion bit for the adaptive step-size heuristic);
    - a task controller periodically recomputes its path prices (Eq. 9)
      and its subtasks' latencies from its — possibly stale — view of the
      resource prices (Eq. 7), then sends [Latency] messages to the
      agents.

    Every control message is routed through an {!Lla_transport.Transport},
    so the deployment can be exercised under jittered and heterogeneous
    delays, message loss, duplication, reordering, link partitions and
    actor crash/restart — not just the fixed one-way delay of
    [config.message_delay]. With the default zero-fault constant-delay
    transport the trajectory is identical to the pre-transport
    implementation, and with zero delay and equal periods it matches the
    synchronous {!Lla.Solver} engine up to message ordering (tested).

    Actors whose transport endpoint is down skip their periodic rounds;
    on restart they rebuild price state from the next received messages
    (an agent restarts from [mu0] and the compiled initial latency view, a
    controller from [mu0] views and zero path prices).

    {2 Resilience layer}

    Passing [?resilience] to {!create} activates up to three independent
    mechanisms (each can be switched off in the record):

    - {b failure detection} ({!Health}): every agent and controller
      endpoint heartbeats through the transport to a detector endpoint;
      crashed or partitioned actors are flagged within the configured
      timeout;
    - {b price-state checkpointing} ({!Checkpoint}): actors periodically
      snapshot their dual state, and a restarted actor performs a {e warm}
      restart from its last accepted snapshot instead of the cold
      [mu0] reset — reconverging in a fraction of the rounds (tested);
    - {b safe-mode degradation} ({!Safe_mode}): a watchdog observes prices
      and enacted latencies every [watchdog_period] ms; on divergence it
      clamps the latency vector to a guaranteed-feasible fallback, heals
      poisoned prices, and freezes controller optimization (controllers
      keep re-announcing the clamped latencies; agents keep pricing, which
      lets prices settle) until the exit hysteresis re-enters
      optimization.

    When [?resilience] is omitted nothing is scheduled beyond the legacy
    loops and the trajectory is bit-for-bit the pre-resilience one.

    {2 Engines}

    The deployment runs on a pluggable {!Engine}: {!create} is the
    legacy single-shard path over a caller-owned [Lla_sim.Engine.t]
    (bit-for-bit the pre-engine behaviour), while {!create_on} deploys
    onto any engine — on a domains engine the agents and controllers
    shard round-robin across the shard cores, each shard owning a
    private transport, obs handle, meter set, checkpoint store and
    failure detector. Cross-shard messages leave through the source
    shard's transport to an always-up {e shadow endpoint} standing in
    for the remote actor (so source-side faults, partitions and
    last-write-wins staleness apply unchanged), then cross the barrier
    via {!Engine.post} and check the real destination's liveness on its
    home shard. The safe-mode watchdog and chaos injections run as
    barrier operations with every shard at rest. *)

open Lla_model

type config = {
  message_delay : float;
      (** one-way latency of the control channel, ms. Only used to build
          the default transport; ignored when a transport is supplied. *)
  controller_period : float;  (** ms between controller allocations. *)
  resource_period : float;  (** ms between price recomputations. *)
  step_policy : Lla.Step_size.policy;
  mu0 : float;
  sweeps : int;
}

val default_config : config
(** 1 ms delay, 10 ms periods, adaptive steps from 1.0, [mu0 = 1],
    2 sweeps. *)

type resilience = {
  checkpoint_period : float option;
      (** ms between an actor's snapshots ([None] = no checkpointing;
          restarts are cold). Saves piggyback on the actor's own tick, so
          the effective period is rounded up to a multiple of it. *)
  checkpoint_max_age : float;  (** staleness bound passed to {!Checkpoint.create}. *)
  health : Health.config option;  (** [None] = no failure detector. *)
  safe_mode : Safe_mode.config option;  (** [None] = no divergence watchdog. *)
  watchdog_period : float;  (** ms between safe-mode observations. *)
}

val default_resilience : resilience
(** Checkpoint every 100 ms with no staleness bound, default detector and
    safe-mode configs, 10 ms watchdog. *)

type t

val create :
  ?obs:Lla_obs.t ->
  ?monitor:Lla_obs.Monitor.t ->
  ?config:config ->
  ?resilience:resilience ->
  ?journal:Lla_durable.Journal.t ->
  ?transport:Lla_transport.Transport.t ->
  Lla_sim.Engine.t ->
  Workload.t ->
  t
(** When [transport] is omitted, a zero-fault transport with a constant
    [config.message_delay] is created on [engine] — the legacy behaviour.
    A supplied transport must run on the same engine
    (@raise Invalid_argument otherwise). [resilience] defaults to off.

    [journal] backs the checkpoint store with a write-ahead journal
    (only meaningful when [resilience.checkpoint_period] is set): every
    accepted snapshot is journaled and {!crash_restart} can recover a
    whole-node crash warm. Omitted (the default), nothing touches
    storage and trajectories are bit-for-bit the journal-free ones.

    [obs] opts the whole deployment into the observability layer: the
    runtime counters land in the handle's registry ([lla_runtime_*]),
    the handle is forwarded to the self-created transport, checkpoint
    store, health detector and safe-mode watchdog, and every price
    update, allocation solve, guard, safe-mode transition and
    checkpoint restore emits a typed {!Lla_obs.Trace} record stamped
    with the engine clock. Omitting it (the default) emits nothing and
    leaves the event schedule bit-for-bit the legacy one — a supplied
    [transport] is never re-instrumented.

    [monitor] subscribes a streaming {!Lla_obs.Monitor} to the trace: it
    consumes every emitted record online and writes alert transitions
    back into the stream. It needs [obs] to see anything, observes
    without perturbing (no schedule effect, no extra messages), and
    omitting it keeps the trace byte-for-byte the unmonitored one. *)

val create_on :
  ?obs:Lla_obs.t ->
  ?monitor:Lla_obs.Monitor.t ->
  ?config:config ->
  ?resilience:resilience ->
  ?journal:Lla_durable.Journal.t ->
  ?transport_config:Lla_transport.Transport.config ->
  Engine.t ->
  Lla_model.Workload.t ->
  t
(** Deploy onto an arbitrary engine, one transport per shard (built from
    [transport_config], defaulting to the zero-fault constant-delay one;
    shard [s]'s transport RNG is seeded [seed + s]). Actors shard
    round-robin by index, so a single-shard engine reproduces {!create}
    with a self-built transport exactly.

    With [?obs]: the caller's handle becomes shard 0's and its span ids
    are re-keyed to stride by the shard count ({!Lla_obs.set_span_stride}
    — pass a fresh handle), shards [s > 0] get private handles with span
    base [s], and every shard's trace additionally feeds an internal
    memory sink so {!merged_records} can reassemble the deployment-wide
    stream. Judge merged streams with
    {!Lla_obs.Invariant.spans_well_formed_merged}, not the single-stream
    oracles.

    For timing-exact parallel runs, pick a domains-engine quantum no
    larger than the minimum cross-shard link delay (see
    {!Engine_domains}).

    With [?monitor] on a domains engine, each shard's records are
    buffered during parallel phases and drained through the monitor's
    sink at barriers (every [config.controller_period]), merged to the
    global [(at, shard, seq)] order — the online detectors see exactly
    the stream an offline pass over {!merged_records} would, just in
    periodic installments. Alerts are emitted on shard 0's trace at the
    barrier. {!run} and {!stop} flush the buffered tail, so readouts
    are current once a run returns. *)

val start : t -> unit
(** Controllers announce initial latencies; agents and controllers begin
    their periodic ticks (plus the detector and watchdog when
    configured). *)

val stop : t -> unit
(** Cancel the periodic agent/controller ticks — and the resilience
    layer's detector and watchdog — so the engine can drain: after [stop],
    [Engine.run] terminates once in-flight messages have been delivered
    and {!Lla_sim.Engine.pending} returns to the in-flight count.
    Idempotent: no-op before {!start} or after a previous [stop]. *)

val run : t -> duration:float -> unit
(** Convenience: {!start} on first use, then advance the engine. *)

val transport : t -> Lla_transport.Transport.t
(** Shard 0's transport (the caller's on the legacy path). On a sharded
    deployment see {!transports} and the [*_home] accessors. *)

val engine_handle : t -> Engine.t

val shard_count : t -> int

val transports : t -> Lla_transport.Transport.t array
(** One per shard, index-aligned with the engine's shard cores. *)

val agent_endpoint : t -> Ids.Resource_id.t -> Lla_transport.Transport.endpoint
(** The price agent's transport endpoint — crash it, partition it, or give
    its links a heterogeneous delay model. *)

val controller_endpoint : t -> Ids.Task_id.t -> Lla_transport.Transport.endpoint

val agent_home : t -> Ids.Resource_id.t -> Lla_transport.Transport.t * Lla_transport.Transport.endpoint
(** The transport that owns the agent's endpoint — the one outages and
    link faults for this actor must be scheduled on. *)

val controller_home :
  t -> Ids.Task_id.t -> Lla_transport.Transport.t * Lla_transport.Transport.endpoint

val schedule_injection : t -> at:float -> (unit -> unit) -> unit
(** Run a chaos write at simulated time [at] with every shard at rest: an
    ordinary scheduled event on a single-shard engine, a barrier op on a
    domains engine — the engine-generic way to drive {!poison_price},
    {!set_error_offset}, {!set_faults_all} and friends mid-run. *)

val set_faults_all : t -> Lla_transport.Transport.faults -> unit
(** Set the fault profile on every shard transport. *)

val set_extra_jitter_all : t -> float -> unit

val partition :
  t -> at:float -> duration:float -> agents:int list -> controllers:int list -> unit
(** Partition the listed actors (by index) from everything else — on
    every shard transport, with the listed actors' shadow endpoints on
    the matching side, so cross-shard traffic respects the cut. *)

val merged_records : t -> Lla_obs.Trace.record list
(** All shards' trace records merged by {!Lla_obs.Trace.merge}. Only
    populated for {!create_on} with [?obs]; [[]] otherwise (the legacy
    path leaves sinks to the caller). *)

val latency : t -> Ids.Subtask_id.t -> float

val share : t -> Ids.Subtask_id.t -> float

val mu : t -> Ids.Resource_id.t -> float

val utility : t -> float

val messages_sent : t -> int
(** Control messages handed to the transport (send attempts, before any
    fault injection; retransmissions not included). *)

val price_rounds : t -> int
(** Total agent ticks so far (including safe-mode ticks). *)

val allocation_rounds : t -> int
(** Total optimizing controller ticks so far (safe-mode re-announcement
    ticks are not counted). *)

val metrics : t -> Lla_obs.Metrics.t
(** Shard 0's registry — the [obs] one when supplied, otherwise the
    runtime's private one. On a sharded deployment each shard owns a
    private registry; see {!merged_metrics} for the global view. *)

val merged_metrics : t -> Lla_obs.Metrics.t
(** Snapshot-merge of every shard's registry
    ({!Lla_obs.Shard_registry} semantics: counters sum, histograms add
    bucket-wise, gauges resolve last-writer by [(stamp, shard)]). Call
    with the shards at rest — between runs, or from
    {!schedule_injection}. On a single-shard deployment the merge is a
    copy of {!metrics}. *)

val monitor : t -> Lla_obs.Monitor.t option
(** The streaming monitor supplied at creation, if any. *)

(** {2 Resilience inspection} *)

val health : t -> Health.t option
(** The failure detector, when the resilience layer runs one. *)

val checkpoint_store : t -> Checkpoint.t option

val safe_mode_state : t -> Safe_mode.state option
(** [None] when no watchdog is configured. *)

val in_safe_mode : t -> bool
(** [false] when no watchdog is configured. *)

val safe_entries : t -> int

val safe_exits : t -> int

val fallback_source : t -> string option
(** Which fallback the watchdog would clamp to (see
    {!Safe_mode.fallback_source}). *)

val warm_restores : t -> int
(** Actor restarts recovered from a checkpoint. *)

val cold_restarts : t -> int
(** Actor restarts that fell back to the [mu0] reset (no, stale, or
    mismatched snapshot — or checkpointing disabled). *)

val guard_events : t -> int
(** Non-finite values neutralized in the distributed iteration (agent
    share sums, path multipliers, and {!Lla.Allocation} guards). *)

(** {2 Whole-node crash drill}

    {!crash_restart} models the process dying and restarting in place:
    the journal store's unsynced tail is lost (torn per its fault
    config), every shard's in-memory checkpoint slots are dropped, the
    journal (when present) is replayed through the checkpoint save path
    — twice, to assert replay idempotence — and every actor restarts,
    warm from recovered snapshots or cold from [mu0]. Transport
    endpoints stay up, unlike an {!Outage}: links survive, memory does
    not. Call it with the shards at rest (from {!schedule_injection} on
    a domains engine). *)

val crash_restart : t -> unit

type crash_stats = {
  crashes : int;  (** {!crash_restart} calls so far. *)
  replayed : int;  (** journal records accepted across all recoveries. *)
  refused : int;  (** journal records refused (non-finite, malformed). *)
  truncated_bytes : int;  (** torn-tail bytes cut from active segments. *)
  warm : int;  (** actors warm-restored after crashes. *)
  cold : int;  (** actors cold-reset after crashes. *)
  resurrected : int;
      (** actors carrying non-finite state right after a recovery — the
          refusal chain failed if this is ever non-zero. *)
  idempotent : bool;
      (** every double-replay restored identical accepted/refused
          counts ([true] when no crash happened yet). *)
}

val crash_stats : t -> crash_stats

val journal_enabled : t -> bool

(** {2 Chaos injection}

    Hooks for {!Lla_chaos} fault schedules. They overwrite live state the
    same way a corrupted message or a drifted plant model would; the
    regular iteration (and the finite-value guards) process the injected
    value on the next tick. *)

val poison_price : t -> Ids.Resource_id.t -> float -> unit
(** Overwrite a price agent's current multiplier ([nan]/[inf] allowed —
    that is the point). The next agent tick announces it. *)

val set_error_offset : t -> Ids.Subtask_id.t -> float -> unit
(** Set the model-error offset (ms) applied to the subtask's latency when
    computing its effective bandwidth share (the §6.3 correction path) —
    a spike here simulates plant/model mismatch. *)

val error_offset : t -> Ids.Subtask_id.t -> float
