(** Message-passing deployment of LLA (paper §4.1).

    One {e task controller} per task and one {e price agent} per resource
    run as actors on the discrete-event engine:

    - a price agent periodically recomputes its resource price from the
      most recently received subtask latencies (Eq. 8) and broadcasts
      [Price] messages to the controllers of tasks with subtasks on it
      (including a congestion bit for the adaptive step-size heuristic);
    - a task controller periodically recomputes its path prices (Eq. 9)
      and its subtasks' latencies from its — possibly stale — view of the
      resource prices (Eq. 7), then sends [Latency] messages to the
      agents.

    Every control message is routed through an {!Lla_transport.Transport},
    so the deployment can be exercised under jittered and heterogeneous
    delays, message loss, duplication, reordering, link partitions and
    actor crash/restart — not just the fixed one-way delay of
    [config.message_delay]. With the default zero-fault constant-delay
    transport the trajectory is identical to the pre-transport
    implementation, and with zero delay and equal periods it matches the
    synchronous {!Lla.Solver} engine up to message ordering (tested).

    Actors whose transport endpoint is down skip their periodic rounds;
    on restart they rebuild price state from the next received messages
    (an agent restarts from [mu0] and the compiled initial latency view, a
    controller from [mu0] views and zero path prices). *)

open Lla_model

type config = {
  message_delay : float;
      (** one-way latency of the control channel, ms. Only used to build
          the default transport; ignored when a transport is supplied. *)
  controller_period : float;  (** ms between controller allocations. *)
  resource_period : float;  (** ms between price recomputations. *)
  step_policy : Lla.Step_size.policy;
  mu0 : float;
  sweeps : int;
}

val default_config : config
(** 1 ms delay, 10 ms periods, adaptive steps from 1.0, [mu0 = 1],
    2 sweeps. *)

type t

val create : ?config:config -> ?transport:Lla_transport.Transport.t -> Lla_sim.Engine.t -> Workload.t -> t
(** When [transport] is omitted, a zero-fault transport with a constant
    [config.message_delay] is created on [engine] — the legacy behaviour.
    A supplied transport must run on the same engine
    (@raise Invalid_argument otherwise). *)

val start : t -> unit
(** Controllers announce initial latencies; agents and controllers begin
    their periodic ticks. *)

val stop : t -> unit
(** Cancel the periodic agent/controller ticks so the engine can drain:
    after [stop], [Engine.run] terminates once in-flight messages have
    been delivered and {!Lla_sim.Engine.pending} returns to the in-flight
    count. No-op before {!start} or after a previous [stop]. *)

val run : t -> duration:float -> unit
(** Convenience: {!start} on first use, then advance the engine. *)

val transport : t -> Lla_transport.Transport.t

val agent_endpoint : t -> Ids.Resource_id.t -> Lla_transport.Transport.endpoint
(** The price agent's transport endpoint — crash it, partition it, or give
    its links a heterogeneous delay model. *)

val controller_endpoint : t -> Ids.Task_id.t -> Lla_transport.Transport.endpoint

val latency : t -> Ids.Subtask_id.t -> float

val share : t -> Ids.Subtask_id.t -> float

val mu : t -> Ids.Resource_id.t -> float

val utility : t -> float

val messages_sent : t -> int
(** Control messages handed to the transport (send attempts, before any
    fault injection; retransmissions not included). *)

val price_rounds : t -> int
(** Total agent ticks so far. *)

val allocation_rounds : t -> int
(** Total controller ticks so far. *)
