(** Message-passing deployment of LLA (paper §4.1).

    One {e task controller} per task and one {e price agent} per resource
    run as actors on the discrete-event engine:

    - a price agent periodically recomputes its resource price from the
      most recently received subtask latencies (Eq. 8) and broadcasts
      [Price] messages to the controllers of tasks with subtasks on it
      (including a congestion bit for the adaptive step-size heuristic);
    - a task controller periodically recomputes its path prices (Eq. 9)
      and its subtasks' latencies from its — possibly stale — view of the
      resource prices (Eq. 7), then sends [Latency] messages to the
      agents.

    Every control message is routed through an {!Lla_transport.Transport},
    so the deployment can be exercised under jittered and heterogeneous
    delays, message loss, duplication, reordering, link partitions and
    actor crash/restart — not just the fixed one-way delay of
    [config.message_delay]. With the default zero-fault constant-delay
    transport the trajectory is identical to the pre-transport
    implementation, and with zero delay and equal periods it matches the
    synchronous {!Lla.Solver} engine up to message ordering (tested).

    Actors whose transport endpoint is down skip their periodic rounds;
    on restart they rebuild price state from the next received messages
    (an agent restarts from [mu0] and the compiled initial latency view, a
    controller from [mu0] views and zero path prices).

    {2 Resilience layer}

    Passing [?resilience] to {!create} activates up to three independent
    mechanisms (each can be switched off in the record):

    - {b failure detection} ({!Health}): every agent and controller
      endpoint heartbeats through the transport to a detector endpoint;
      crashed or partitioned actors are flagged within the configured
      timeout;
    - {b price-state checkpointing} ({!Checkpoint}): actors periodically
      snapshot their dual state, and a restarted actor performs a {e warm}
      restart from its last accepted snapshot instead of the cold
      [mu0] reset — reconverging in a fraction of the rounds (tested);
    - {b safe-mode degradation} ({!Safe_mode}): a watchdog observes prices
      and enacted latencies every [watchdog_period] ms; on divergence it
      clamps the latency vector to a guaranteed-feasible fallback, heals
      poisoned prices, and freezes controller optimization (controllers
      keep re-announcing the clamped latencies; agents keep pricing, which
      lets prices settle) until the exit hysteresis re-enters
      optimization.

    When [?resilience] is omitted nothing is scheduled beyond the legacy
    loops and the trajectory is bit-for-bit the pre-resilience one. *)

open Lla_model

type config = {
  message_delay : float;
      (** one-way latency of the control channel, ms. Only used to build
          the default transport; ignored when a transport is supplied. *)
  controller_period : float;  (** ms between controller allocations. *)
  resource_period : float;  (** ms between price recomputations. *)
  step_policy : Lla.Step_size.policy;
  mu0 : float;
  sweeps : int;
}

val default_config : config
(** 1 ms delay, 10 ms periods, adaptive steps from 1.0, [mu0 = 1],
    2 sweeps. *)

type resilience = {
  checkpoint_period : float option;
      (** ms between an actor's snapshots ([None] = no checkpointing;
          restarts are cold). Saves piggyback on the actor's own tick, so
          the effective period is rounded up to a multiple of it. *)
  checkpoint_max_age : float;  (** staleness bound passed to {!Checkpoint.create}. *)
  health : Health.config option;  (** [None] = no failure detector. *)
  safe_mode : Safe_mode.config option;  (** [None] = no divergence watchdog. *)
  watchdog_period : float;  (** ms between safe-mode observations. *)
}

val default_resilience : resilience
(** Checkpoint every 100 ms with no staleness bound, default detector and
    safe-mode configs, 10 ms watchdog. *)

type t

val create :
  ?obs:Lla_obs.t ->
  ?config:config ->
  ?resilience:resilience ->
  ?transport:Lla_transport.Transport.t ->
  Lla_sim.Engine.t ->
  Workload.t ->
  t
(** When [transport] is omitted, a zero-fault transport with a constant
    [config.message_delay] is created on [engine] — the legacy behaviour.
    A supplied transport must run on the same engine
    (@raise Invalid_argument otherwise). [resilience] defaults to off.

    [obs] opts the whole deployment into the observability layer: the
    runtime counters land in the handle's registry ([lla_runtime_*]),
    the handle is forwarded to the self-created transport, checkpoint
    store, health detector and safe-mode watchdog, and every price
    update, allocation solve, guard, safe-mode transition and
    checkpoint restore emits a typed {!Lla_obs.Trace} record stamped
    with the engine clock. Omitting it (the default) emits nothing and
    leaves the event schedule bit-for-bit the legacy one — a supplied
    [transport] is never re-instrumented. *)

val start : t -> unit
(** Controllers announce initial latencies; agents and controllers begin
    their periodic ticks (plus the detector and watchdog when
    configured). *)

val stop : t -> unit
(** Cancel the periodic agent/controller ticks — and the resilience
    layer's detector and watchdog — so the engine can drain: after [stop],
    [Engine.run] terminates once in-flight messages have been delivered
    and {!Lla_sim.Engine.pending} returns to the in-flight count.
    Idempotent: no-op before {!start} or after a previous [stop]. *)

val run : t -> duration:float -> unit
(** Convenience: {!start} on first use, then advance the engine. *)

val transport : t -> Lla_transport.Transport.t

val agent_endpoint : t -> Ids.Resource_id.t -> Lla_transport.Transport.endpoint
(** The price agent's transport endpoint — crash it, partition it, or give
    its links a heterogeneous delay model. *)

val controller_endpoint : t -> Ids.Task_id.t -> Lla_transport.Transport.endpoint

val latency : t -> Ids.Subtask_id.t -> float

val share : t -> Ids.Subtask_id.t -> float

val mu : t -> Ids.Resource_id.t -> float

val utility : t -> float

val messages_sent : t -> int
(** Control messages handed to the transport (send attempts, before any
    fault injection; retransmissions not included). *)

val price_rounds : t -> int
(** Total agent ticks so far (including safe-mode ticks). *)

val allocation_rounds : t -> int
(** Total optimizing controller ticks so far (safe-mode re-announcement
    ticks are not counted). *)

val metrics : t -> Lla_obs.Metrics.t
(** The registry holding the [lla_runtime_*] counter families — the
    [obs] one when supplied, otherwise the runtime's private one. *)

(** {2 Resilience inspection} *)

val health : t -> Health.t option
(** The failure detector, when the resilience layer runs one. *)

val checkpoint_store : t -> Checkpoint.t option

val safe_mode_state : t -> Safe_mode.state option
(** [None] when no watchdog is configured. *)

val in_safe_mode : t -> bool
(** [false] when no watchdog is configured. *)

val safe_entries : t -> int

val safe_exits : t -> int

val fallback_source : t -> string option
(** Which fallback the watchdog would clamp to (see
    {!Safe_mode.fallback_source}). *)

val warm_restores : t -> int
(** Actor restarts recovered from a checkpoint. *)

val cold_restarts : t -> int
(** Actor restarts that fell back to the [mu0] reset (no, stale, or
    mismatched snapshot — or checkpointing disabled). *)

val guard_events : t -> int
(** Non-finite values neutralized in the distributed iteration (agent
    share sums, path multipliers, and {!Lla.Allocation} guards). *)

(** {2 Chaos injection}

    Hooks for {!Lla_chaos} fault schedules. They overwrite live state the
    same way a corrupted message or a drifted plant model would; the
    regular iteration (and the finite-value guards) process the injected
    value on the next tick. *)

val poison_price : t -> Ids.Resource_id.t -> float -> unit
(** Overwrite a price agent's current multiplier ([nan]/[inf] allowed —
    that is the point). The next agent tick announces it. *)

val set_error_offset : t -> Ids.Subtask_id.t -> float -> unit
(** Set the model-error offset (ms) applied to the subtask's latency when
    computing its effective bandwidth share (the §6.3 correction path) —
    a spike here simulates plant/model mismatch. *)

val error_offset : t -> Ids.Subtask_id.t -> float
