open Lla_model

let log = Logs.Src.create "lla.optimizer" ~doc:"LLA runtime optimizer actor"

module Log = (val Logs.src_log log)


type config = {
  solver_config : Lla.Solver.config;
  warmup_iterations : int;
  period : float;
  iterations_per_round : int;
  error_correction : [ `Disabled | `Enabled_at of float ];
  correction_percentile : float;
  correction_alpha : float;
  correction_min_samples : int;
  correction_per_task_percentiles : bool;
  enact_threshold : float;
  track_arrival_rates : bool;
}

let default_config =
  {
    solver_config = Lla.Solver.default_config;
    warmup_iterations = 2000;
    period = 1000.;
    iterations_per_round = 50;
    error_correction = `Disabled;
    correction_percentile = 95.;
    correction_alpha = 0.3;
    correction_min_samples = 8;
    correction_per_task_percentiles = false;
    enact_threshold = 0.;
    track_arrival_rates = false;
  }

type t = {
  config : config;
  obs : Lla_obs.t option;
  cluster : Cluster.t;
  dispatcher : Dispatcher.t;
  solver : Lla.Solver.t;
  correctors : Lla.Error_correction.t Ids.Subtask_id.Tbl.t;
  share_traces : Lla_stdx.Series.t Ids.Subtask_id.Tbl.t;
  offset_traces : Lla_stdx.Series.t Ids.Subtask_id.Tbl.t;
  mutable rounds : int;
  mutable enactments : int;
  mutable skipped : int;
}

let create ?obs ?monitor ?(config = default_config) ~cluster ~dispatcher () =
  (* The solver emits its per-iteration records into [obs]; a monitor
     attached to that trace sees them live, so the streaming detectors
     track the §6 control loop with no further plumbing. *)
  (match (monitor, obs) with
  | Some m, Some o -> Lla_obs.Monitor.attach m o.Lla_obs.trace
  | _ -> ());
  let workload = Cluster.workload cluster in
  let solver = Lla.Solver.create ?obs ~config:config.solver_config workload in
  let correctors = Ids.Subtask_id.Tbl.create 32 in
  let share_traces = Ids.Subtask_id.Tbl.create 32 in
  let offset_traces = Ids.Subtask_id.Tbl.create 32 in
  let percentile_of =
    if config.correction_per_task_percentiles then begin
      let table = Ids.Subtask_id.Tbl.create 32 in
      List.iter
        (fun (task : Task.t) ->
          Ids.Subtask_id.Map.iter (Ids.Subtask_id.Tbl.replace table)
            (Percentile_map.for_task task))
        workload.Workload.tasks;
      fun sid -> Ids.Subtask_id.Tbl.find table sid
    end
    else fun _ -> config.correction_percentile
  in
  List.iter
    (fun (s : Subtask.t) ->
      Ids.Subtask_id.Tbl.replace correctors s.id
        (Lla.Error_correction.create ?obs ~name:s.name ~alpha:config.correction_alpha
           ~percentile:(percentile_of s.id) ());
      Ids.Subtask_id.Tbl.replace share_traces s.id
        (Lla_stdx.Series.create ~name:(s.name ^ ".share") ());
      Ids.Subtask_id.Tbl.replace offset_traces s.id
        (Lla_stdx.Series.create ~name:(s.name ^ ".offset") ()))
    (Workload.subtasks workload);
  let t =
    {
      config;
      obs;
      cluster;
      dispatcher;
      solver;
      correctors;
      share_traces;
      offset_traces;
      rounds = 0;
      enactments = 0;
      skipped = 0;
    }
  in
  Dispatcher.on_subtask_completion dispatcher (fun sid ~latency ~now ->
      Lla.Error_correction.observe ~at:now
        (Ids.Subtask_id.Tbl.find t.correctors sid)
        ~measured_latency:latency);
  t

let solver t = t.solver

let rounds t = t.rounds

let share_trace t sid =
  match Ids.Subtask_id.Tbl.find_opt t.share_traces sid with
  | Some s -> s
  | None -> invalid_arg "Optimizer_loop.share_trace: unknown subtask"

let offset_trace t sid =
  match Ids.Subtask_id.Tbl.find_opt t.offset_traces sid with
  | Some s -> s
  | None -> invalid_arg "Optimizer_loop.offset_trace: unknown subtask"

let offset t sid = Lla.Solver.offset t.solver sid

let correction_active t ~now =
  match t.config.error_correction with `Disabled -> false | `Enabled_at at -> now >= at

(* One correction pass: compare each subtask's measured high-percentile
   latency with the *uncorrected* model prediction at the share currently
   enacted, and smooth the difference into the solver's offset (§6.3). *)
let apply_corrections t ~now =
  let workload = Cluster.workload t.cluster in
  Ids.Subtask_id.Tbl.iter
    (fun sid corrector ->
      let enacted = Cluster.share t.cluster sid in
      if
        enacted > 0.
        && Lla.Error_correction.sample_count corrector >= t.config.correction_min_samples
      then begin
        let share_fn = Workload.share_function workload sid in
        let predicted = share_fn.Share.inverse enacted in
        match Lla.Error_correction.correct ~at:now corrector ~predicted with
        | Some new_offset -> Lla.Solver.set_offset t.solver sid new_offset
        | None -> ()
      end)
    t.correctors

let enact t ~now =
  List.iter
    (fun (sid, share) ->
      let current = Cluster.share t.cluster sid in
      let significant =
        current <= 0.
        || Float.abs (share -. current) /. current > t.config.enact_threshold
      in
      if significant then begin
        Cluster.set_share t.cluster sid share;
        t.enactments <- t.enactments + 1
      end
      else t.skipped <- t.skipped + 1;
      (* Traces record what is enacted on the scheduler. *)
      Lla_stdx.Series.add
        (Ids.Subtask_id.Tbl.find t.share_traces sid)
        ~x:now
        ~y:(Cluster.share t.cluster sid);
      Lla_stdx.Series.add
        (Ids.Subtask_id.Tbl.find t.offset_traces sid)
        ~x:now
        ~y:(Lla.Solver.offset t.solver sid))
    (Lla.Solver.shares t.solver)

let enactments t = t.enactments

let skipped_enactments t = t.skipped

let apply_rate_measurements t =
  List.iter
    (fun (task : Task.t) ->
      match Dispatcher.measured_rate t.dispatcher task.Task.id with
      | Some rate -> Lla.Solver.set_arrival_rate t.solver task.Task.id rate
      | None -> ())
    (Cluster.workload t.cluster).Workload.tasks

let prof t name f =
  match t.obs with Some o -> Lla_obs.Profile.time o.Lla_obs.profile name f | None -> f ()

let round t ~now =
  prof t "optimizer.round" @@ fun () ->
  if t.config.track_arrival_rates then apply_rate_measurements t;
  if correction_active t ~now then prof t "corrections" (fun () -> apply_corrections t ~now);
  prof t "solve" (fun () ->
      Lla.Solver.run t.solver ~iterations:t.config.iterations_per_round);
  t.rounds <- t.rounds + 1;
  prof t "enact" (fun () -> enact t ~now);
  Log.debug (fun m ->
      m "round %d at t=%.0fms: utility %.3f, %d enactments (%d suppressed)" t.rounds now
        (Lla.Solver.utility t.solver) t.enactments t.skipped)

let start ?engine t =
  let core = Cluster.engine t.cluster in
  (* The cluster simulation lives on one scheduling core; a supplied
     engine must expose that core as shard 0 so the optimizer's periodic
     rounds land on the clock the dispatcher runs on. *)
  (match engine with
  | Some e ->
    if not (Engine.core e ~shard:0 == core) then
      invalid_arg "Optimizer_loop.start: engine does not own the cluster's core"
  | None -> ());
  ignore (Lla.Solver.run_until_converged t.solver ~max_iterations:t.config.warmup_iterations);
  enact t ~now:(Lla_sim.Engine.now core);
  let rec tick () =
    ignore
      (Lla_sim.Engine.schedule_after core ~delay:t.config.period (fun eng ->
           round t ~now:(Lla_sim.Engine.now eng);
           tick ()))
  in
  tick ()
