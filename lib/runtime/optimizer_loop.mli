(** The online optimizer actor (paper §6): runs LLA rounds periodically on
    the cluster's engine, enacts the resulting shares on the schedulers,
    and (optionally, from a configurable instant — Fig. 8 enables it at
    t=277s) applies online model error correction from measured job
    latencies. *)

open Lla_model

type config = {
  solver_config : Lla.Solver.config;
  warmup_iterations : int;
      (** LLA iterations before the first enactment ("the optimizer runs
          continuously until the utility improvement ... is below 1%"). *)
  period : float;  (** ms between subsequent optimization rounds. *)
  iterations_per_round : int;
  error_correction : [ `Disabled | `Enabled_at of float ];
      (** absolute engine time (ms) at which correction turns on. *)
  correction_percentile : float;  (** §6.3 uses > 90th percentile samples. *)
  correction_alpha : float;  (** exponential smoothing weight. *)
  correction_min_samples : int;
      (** skip a correction round for a subtask with fewer samples. *)
  correction_per_task_percentiles : bool;
      (** when true, each subtask samples at the percentile derived from
          its task's [latency_percentile] via
          {!Lla_model.Percentile_map.for_task} (paper §2.1) instead of
          [correction_percentile]. *)
  enact_threshold : float;
      (** relative share change below which a new allocation is not pushed
          to the scheduler (the paper enacts "only when significant
          changes occur", §4.4). 0 = always enact. *)
  track_arrival_rates : bool;
      (** when true, each round feeds {!Dispatcher.measured_rate} into
          {!Lla.Solver.set_arrival_rate}, so the optimizer's rate-stability
          bounds follow the *observed* workload rather than the static
          specification — the paper's workload-variation adaptivity. *)
}

val default_config : config
(** 2000 warmup iterations, 1000 ms period, 50 iterations/round,
    correction disabled, percentile 95, alpha 0.3, min 8 samples, flat
    percentiles, threshold 0 (always enact), rate tracking off. *)

type t

val create :
  ?obs:Lla_obs.t ->
  ?monitor:Lla_obs.Monitor.t ->
  ?config:config ->
  cluster:Cluster.t ->
  dispatcher:Dispatcher.t ->
  unit ->
  t
(** Registers a subtask-latency observer on the dispatcher (for the
    correctors) and prepares a solver over the cluster's workload. [obs]
    is forwarded to the solver and to the per-subtask correctors (each
    named after its subtask), so solver iterations and correction rounds
    land in the shared trace. [monitor] attaches a streaming
    {!Lla_obs.Monitor} to that trace (it needs [obs] to see anything);
    the online detectors then follow every solver iteration live, and
    alert transitions are written back into the same trace. *)

val start : ?engine:Engine.t -> t -> unit
(** Run warmup, enact, and schedule the periodic rounds. A supplied
    [engine] must own the cluster's scheduling core as shard 0
    (@raise Invalid_argument otherwise); the rounds then run on that
    engine's clock — pass it when the surrounding deployment is driven
    through an {!Engine} handle rather than the raw core. *)

val solver : t -> Lla.Solver.t

val rounds : t -> int

val share_trace : t -> Ids.Subtask_id.t -> Lla_stdx.Series.t
(** Enacted share over time (x = engine ms). *)

val offset_trace : t -> Ids.Subtask_id.t -> Lla_stdx.Series.t
(** Error-correction offset over time. *)

val offset : t -> Ids.Subtask_id.t -> float

val enactments : t -> int
(** Number of share updates actually pushed to schedulers. *)

val skipped_enactments : t -> int
(** Updates suppressed by [enact_threshold]. *)
