module Jsonl = Lla_obs.Jsonl

type agent_state = {
  price : float;
  gamma : float;
  lat_view : float array;
}

type controller_state = {
  mu_view : float array;
  congested_view : bool array;
  lambda : float array;
  gamma_p : float array;
}

type 'a slot = { state : 'a; at : float }

type t = {
  max_age : float;
  obs : Lla_obs.t option;
  journal : Lla_durable.Journal.t option;
  agents : agent_state slot option array;
  controllers : controller_state slot option array;
  mutable saves : int;
  mutable restores : int;
  mutable rejected_saves : int;
  mutable stale_restores : int;
  mutable replaying : bool;
}

let create ?obs ?journal ?(max_age = infinity) ~n_agents ~n_controllers () =
  if max_age <= 0. then invalid_arg "Checkpoint.create: non-positive max_age";
  if n_agents < 0 || n_controllers < 0 then invalid_arg "Checkpoint.create: negative size";
  {
    max_age;
    obs;
    journal;
    agents = Array.make n_agents None;
    controllers = Array.make n_controllers None;
    saves = 0;
    restores = 0;
    rejected_saves = 0;
    stale_restores = 0;
    replaying = false;
  }

let all_finite a = Array.for_all Float.is_finite a

let copy_agent (s : agent_state) = { s with lat_view = Array.copy s.lat_view }

let copy_controller (s : controller_state) =
  {
    mu_view = Array.copy s.mu_view;
    congested_view = Array.copy s.congested_view;
    lambda = Array.copy s.lambda;
    gamma_p = Array.copy s.gamma_p;
  }

let agent_finite (s : agent_state) =
  Float.is_finite s.price && Float.is_finite s.gamma && all_finite s.lat_view

let controller_finite (s : controller_state) =
  all_finite s.mu_view && all_finite s.lambda && all_finite s.gamma_p

let actor_name prefix i = Printf.sprintf "%s:%d" prefix i

(* JSONL encoders live up here so the save path can journal its line. *)

let floats a = Jsonl.Arr (List.map (fun x -> Jsonl.Num x) (Array.to_list a))

let bools a = Jsonl.Arr (List.map (fun b -> Jsonl.Bool b) (Array.to_list a))

let agent_line i { state; at } =
  Jsonl.to_string
    (Jsonl.Obj
       [
         ("kind", Jsonl.Str "agent");
         ("index", Jsonl.Num (float_of_int i));
         ("at", Jsonl.Num at);
         ("price", Jsonl.Num state.price);
         ("gamma", Jsonl.Num state.gamma);
         ("lat_view", floats state.lat_view);
       ])

let controller_line i { state; at } =
  Jsonl.to_string
    (Jsonl.Obj
       [
         ("kind", Jsonl.Str "controller");
         ("index", Jsonl.Num (float_of_int i));
         ("at", Jsonl.Num at);
         ("mu_view", floats state.mu_view);
         ("congested_view", bools state.congested_view);
         ("lambda", floats state.lambda);
         ("gamma_p", floats state.gamma_p);
       ])

let save slots copy finite line prefix t i ~now state =
  if finite state then begin
    let slot = { state = copy state; at = now } in
    slots.(i) <- Some slot;
    t.saves <- t.saves + 1;
    (* write-ahead: an accepted save reaches the journal before the
       caller learns it was accepted; replays re-enter through this
       same path with appends suppressed *)
    (match t.journal with
    | Some j when not t.replaying -> Lla_durable.Journal.append j (line i slot)
    | _ -> ());
    (* replayed saves carry their original (past) timestamps; re-emitting
       them would break trace time-monotonicity, and recovery reports its
       own Note events instead *)
    if not t.replaying then
      Lla_obs.emit_opt t.obs ~at:now
        (Lla_obs.Trace.Checkpoint_saved { actor = actor_name prefix i });
    true
  end
  else begin
    t.rejected_saves <- t.rejected_saves + 1;
    if not t.replaying then
      Lla_obs.emit_opt t.obs ~at:now
        (Lla_obs.Trace.Checkpoint_rejected { actor = actor_name prefix i });
    false
  end

let save_agent t i ~now state =
  save t.agents copy_agent agent_finite agent_line "agent" t i ~now state

let save_controller t i ~now state =
  save t.controllers copy_controller controller_finite controller_line "controller" t i ~now state

let restore slots copy t i ~now =
  match slots.(i) with
  | None -> None
  | Some { state; at } ->
    if now -. at > t.max_age then begin
      t.stale_restores <- t.stale_restores + 1;
      None
    end
    else begin
      t.restores <- t.restores + 1;
      Some (copy state)
    end

let restore_agent t i ~now = restore t.agents copy_agent t i ~now

let restore_controller t i ~now = restore t.controllers copy_controller t i ~now

let last_save slots i = Option.map (fun { at; _ } -> at) slots.(i)

let last_agent_save t i = last_save t.agents i

let last_controller_save t i = last_save t.controllers i

let saves t = t.saves

let restores t = t.restores

let rejected_saves t = t.rejected_saves

let stale_restores t = t.stale_restores

(* --- JSONL codec ------------------------------------------------------ *)

let to_jsonl_raw t =
  let lines = ref [] in
  Array.iteri
    (fun i slot -> Option.iter (fun s -> lines := controller_line i s :: !lines) slot)
    t.controllers;
  (* Prepend agents so the final order is agents then controllers. *)
  for i = Array.length t.agents - 1 downto 0 do
    Option.iter (fun s -> lines := agent_line i s :: !lines) t.agents.(i)
  done;
  !lines

let to_jsonl t =
  match t.obs with
  | Some o -> Lla_obs.Profile.time o.Lla_obs.profile "checkpoint.encode" (fun () -> to_jsonl_raw t)
  | None -> to_jsonl_raw t

let float_field name json =
  match Option.bind (Jsonl.member name json) Jsonl.num with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or non-numeric field %S" name)

let float_array_field name json =
  match Option.bind (Jsonl.member name json) Jsonl.arr with
  | None -> Error (Printf.sprintf "missing or non-array field %S" name)
  | Some items -> (
    let rec collect acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | item :: rest -> (
        match Jsonl.num item with
        | Some v -> collect (v :: acc) rest
        | None -> Error (Printf.sprintf "non-numeric element in %S" name))
    in
    collect [] items)

let bool_array_field name json =
  match Option.bind (Jsonl.member name json) Jsonl.arr with
  | None -> Error (Printf.sprintf "missing or non-array field %S" name)
  | Some items -> (
    let rec collect acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | item :: rest -> (
        match Jsonl.bool item with
        | Some v -> collect (v :: acc) rest
        | None -> Error (Printf.sprintf "non-boolean element in %S" name))
    in
    collect [] items)

let ( let* ) = Result.bind

let load_line t json =
  let* index = float_field "index" json in
  let i = int_of_float index in
  let* at = float_field "at" json in
  match Option.bind (Jsonl.member "kind" json) Jsonl.str with
  | Some "agent" ->
    if i < 0 || i >= Array.length t.agents then Error "agent index out of range"
    else
      let* price = float_field "price" json in
      let* gamma = float_field "gamma" json in
      let* lat_view = float_array_field "lat_view" json in
      Ok (save_agent t i ~now:at { price; gamma; lat_view })
  | Some "controller" ->
    if i < 0 || i >= Array.length t.controllers then Error "controller index out of range"
    else
      let* mu_view = float_array_field "mu_view" json in
      let* congested_view = bool_array_field "congested_view" json in
      let* lambda = float_array_field "lambda" json in
      let* gamma_p = float_array_field "gamma_p" json in
      Ok (save_controller t i ~now:at { mu_view; congested_view; lambda; gamma_p })
  | _ -> Error "missing or unknown \"kind\""

let load_jsonl t lines =
  let rec go n accepted = function
    | [] -> Ok accepted
    | line :: rest -> (
      match Jsonl.parse line with
      | Error e -> Error (Printf.sprintf "line %d: %s" n e)
      | Ok json -> (
        match load_line t json with
        | Error e -> Error (Printf.sprintf "line %d: %s" n e)
        | Ok accepted_one -> go (n + 1) (if accepted_one then accepted + 1 else accepted) rest))
  in
  go 1 0 lines

(* --- Durability ------------------------------------------------------- *)

let journal t = t.journal

let clear t =
  Array.fill t.agents 0 (Array.length t.agents) None;
  Array.fill t.controllers 0 (Array.length t.controllers) None

let recover t ~now =
  match t.journal with
  | None -> None
  | Some j ->
    t.replaying <- true;
    let apply line =
      (* a malformed journal line is refused, never raised on — crash
         recovery must be total in the stored bytes *)
      match Jsonl.parse line with
      | Error _ -> false
      | Ok json -> ( match load_line t json with Ok accepted -> accepted | Error _ -> false)
    in
    let report =
      Fun.protect
        ~finally:(fun () -> t.replaying <- false)
        (fun () -> Lla_durable.Recovery.replay ?obs:t.obs ~at:now j ~apply)
    in
    Some report

let compact t =
  match t.journal with
  | None -> ()
  | Some j -> Lla_durable.Journal.snapshot j (to_jsonl t)
