type agent_state = {
  price : float;
  gamma : float;
  lat_view : float array;
}

type controller_state = {
  mu_view : float array;
  congested_view : bool array;
  lambda : float array;
  gamma_p : float array;
}

type 'a slot = { state : 'a; at : float }

type t = {
  max_age : float;
  agents : agent_state slot option array;
  controllers : controller_state slot option array;
  mutable saves : int;
  mutable restores : int;
  mutable rejected_saves : int;
  mutable stale_restores : int;
}

let create ?(max_age = infinity) ~n_agents ~n_controllers () =
  if max_age <= 0. then invalid_arg "Checkpoint.create: non-positive max_age";
  if n_agents < 0 || n_controllers < 0 then invalid_arg "Checkpoint.create: negative size";
  {
    max_age;
    agents = Array.make n_agents None;
    controllers = Array.make n_controllers None;
    saves = 0;
    restores = 0;
    rejected_saves = 0;
    stale_restores = 0;
  }

let all_finite a = Array.for_all Float.is_finite a

let copy_agent (s : agent_state) = { s with lat_view = Array.copy s.lat_view }

let copy_controller (s : controller_state) =
  {
    mu_view = Array.copy s.mu_view;
    congested_view = Array.copy s.congested_view;
    lambda = Array.copy s.lambda;
    gamma_p = Array.copy s.gamma_p;
  }

let agent_finite (s : agent_state) =
  Float.is_finite s.price && Float.is_finite s.gamma && all_finite s.lat_view

let controller_finite (s : controller_state) =
  all_finite s.mu_view && all_finite s.lambda && all_finite s.gamma_p

let save slots copy finite t i ~now state =
  if finite state then begin
    slots.(i) <- Some { state = copy state; at = now };
    t.saves <- t.saves + 1;
    true
  end
  else begin
    t.rejected_saves <- t.rejected_saves + 1;
    false
  end

let save_agent t i ~now state = save t.agents copy_agent agent_finite t i ~now state

let save_controller t i ~now state =
  save t.controllers copy_controller controller_finite t i ~now state

let restore slots copy t i ~now =
  match slots.(i) with
  | None -> None
  | Some { state; at } ->
    if now -. at > t.max_age then begin
      t.stale_restores <- t.stale_restores + 1;
      None
    end
    else begin
      t.restores <- t.restores + 1;
      Some (copy state)
    end

let restore_agent t i ~now = restore t.agents copy_agent t i ~now

let restore_controller t i ~now = restore t.controllers copy_controller t i ~now

let last_save slots i = Option.map (fun { at; _ } -> at) slots.(i)

let last_agent_save t i = last_save t.agents i

let last_controller_save t i = last_save t.controllers i

let saves t = t.saves

let restores t = t.restores

let rejected_saves t = t.rejected_saves

let stale_restores t = t.stale_restores
