module Transport = Lla_transport.Transport
module Delay_model = Lla_transport.Delay_model

let src = Logs.Src.create "lla.runtime" ~doc:"Distributed LLA runtime"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  message_delay : float;
  controller_period : float;
  resource_period : float;
  step_policy : Lla.Step_size.policy;
  mu0 : float;
  sweeps : int;
}

let default_config =
  {
    message_delay = 1.0;
    controller_period = 10.0;
    resource_period = 10.0;
    step_policy = Lla.Step_size.adaptive ~initial:1.0 ();
    mu0 = 1.0;
    sweeps = 2;
  }

type resilience = {
  checkpoint_period : float option;
  checkpoint_max_age : float;
  health : Health.config option;
  safe_mode : Safe_mode.config option;
  watchdog_period : float;
}

let default_resilience =
  {
    checkpoint_period = Some 100.;
    checkpoint_max_age = infinity;
    health = Some Health.default_config;
    safe_mode = Some Safe_mode.default_config;
    watchdog_period = 10.;
  }

(* Per-resource price agent: owns mu_r and its adaptive step size; sees
   only the latencies announced for its own subtasks. *)
type agent = {
  resource : int;
  mutable price : float;
  mutable gamma : float;
  lat_view : float array;  (* latest announced latency per local subtask slot *)
  local_subtasks : int array;  (* problem subtask indices on this resource *)
  controllers : int list;  (* task indices to notify *)
  agent_endpoint : Transport.endpoint;
  (* Causal-span state (unused unless obs traces spans): the context of
     the latest applied latency announcement, consumed by the next price
     span as its parent; and this agent's own previous price span, the
     fallback parent that chains ticks with no new input into one trace. *)
  mutable a_in_span : Lla_obs.Span.t option;
  mutable a_prev_span : Lla_obs.Span.t option;
}

(* Per-task controller: owns its path prices and a stale view of resource
   prices. Writes only its own subtasks' latency slots. *)
type controller = {
  task : int;
  mu_view : float array;  (* indexed by resource *)
  congested_view : bool array;
  lambda : float array;  (* indexed by global path id; only own paths used *)
  gamma_p : float array;  (* per own path *)
  lat : float array;  (* shared storage; controller writes only own slots *)
  controller_endpoint : Transport.endpoint;
  (* Causal-span state: latest applied price-message context; whether it
     arrived since the last solve (a solve that consumed a fresh price is
     the endpoint of a control reaction); previous alloc span as the
     fallback parent. *)
  mutable c_price_span : Lla_obs.Span.t option;
  mutable c_fresh_price : bool;
  mutable c_prev_span : Lla_obs.Span.t option;
}

(* Runtime counters, registry-backed: with [?obs] they land in the shared
   registry (visible in the Prometheus exposition); without it they live
   in a private registry. Either way an update is one mutable-field
   write, same cost as the ad-hoc ints they replaced. *)
type meters = {
  m_messages : Lla_obs.Metrics.counter;
  m_price_rounds : Lla_obs.Metrics.counter;
  m_allocation_rounds : Lla_obs.Metrics.counter;
  m_guards : Lla_obs.Metrics.counter;
  m_warm_restores : Lla_obs.Metrics.counter;
  m_cold_restarts : Lla_obs.Metrics.counter;
  m_control_latency : Lla_obs.Metrics.histogram;
}

type t = {
  config : config;
  engine : Lla_sim.Engine.t;
  transport : Transport.t;
  problem : Lla.Problem.t;
  agents : agent array;
  controllers : controller array;
  offsets : float array;
  lat : float array;  (* controller-written latency vector *)
  agent_ticks : Lla_sim.Engine.event_id option array;
  controller_ticks : Lla_sim.Engine.event_id option array;
  (* Resilience layer; all None/absent when created without ?resilience,
     in which case the behaviour (and event schedule) is bit-for-bit the
     legacy one. *)
  resilience : resilience option;
  checkpoint : Checkpoint.t option;
  health : Health.t option;
  safe_mode : Safe_mode.t option;
  obs : Lla_obs.t option;
  registry : Lla_obs.Metrics.t;
  meters : meters;
  mutable watchdog_tick : Lla_sim.Engine.event_id option;
  mutable started : bool;
  mutable stopped : bool;
}

(* Price agents run Eq. 8, so they take the resource component of a
   [Split]; controllers run Eq. 9 and take the path component. The
   wrappers below resolve the family before dispatching, so the two
   matches only ever see non-[Split] components. *)
let initial_gamma policy =
  match (policy : Lla.Step_size.policy) with
  | Lla.Step_size.Fixed g -> g
  | Lla.Step_size.Adaptive { initial; _ } -> initial
  | Lla.Step_size.Split _ -> assert false

let adapt policy gamma ~congested =
  match (policy : Lla.Step_size.policy) with
  | Lla.Step_size.Fixed g -> g
  | Lla.Step_size.Adaptive { initial; multiplier; cap } ->
    if congested then Float.min cap (gamma *. multiplier) else initial
  | Lla.Step_size.Split _ -> assert false

let resource_policy policy = fst (Lla.Step_size.components policy)
let path_policy policy = snd (Lla.Step_size.components policy)

(* A restarted agent has lost its price state: it restarts from mu0 and the
   compiled initial latency view, rebuilding both from the next received
   Latency messages (§4.1 asynchrony made crash-tolerant). *)
let reset_agent t (a : agent) =
  a.price <- t.config.mu0;
  a.gamma <- initial_gamma (resource_policy t.config.step_policy);
  a.a_in_span <- None;
  a.a_prev_span <- None;
  Array.iteri (fun slot i -> a.lat_view.(slot) <- t.problem.subtasks.(i).lat_hi) a.local_subtasks

(* A restarted controller forgets its price views and path multipliers; the
   latency assignment itself (t.lat) is enacted state in the data plane and
   survives the controller's crash. *)
let reset_controller t (c : controller) =
  c.c_price_span <- None;
  c.c_fresh_price <- false;
  c.c_prev_span <- None;
  Array.fill c.mu_view 0 (Array.length c.mu_view) t.config.mu0;
  Array.fill c.congested_view 0 (Array.length c.congested_view) false;
  Array.iter (fun p -> c.lambda.(p) <- 0.) t.problem.tasks.(c.task).path_indices;
  Array.fill c.gamma_p 0 (Array.length c.gamma_p)
    (initial_gamma (path_policy t.config.step_policy))

(* Warm restart: rebuild from the last accepted checkpoint instead of from
   mu0, skipping the cold-convergence transient. Falls back to the cold
   reset when there is no snapshot, it is stale, or it does not match the
   actor's shape. *)
let note_restore t ~actor ~warm =
  if warm then Lla_obs.Metrics.incr t.meters.m_warm_restores
  else Lla_obs.Metrics.incr t.meters.m_cold_restarts;
  Lla_obs.emit_opt t.obs ~at:(Lla_sim.Engine.now t.engine)
    (Lla_obs.Trace.Checkpoint_restored { actor; warm })

let restart_agent t (a : agent) =
  let warm =
    match t.checkpoint with
    | None -> None
    | Some cp -> Checkpoint.restore_agent cp a.resource ~now:(Lla_sim.Engine.now t.engine)
  in
  let actor = Printf.sprintf "agent:%d" a.resource in
  match warm with
  | Some st when Array.length st.Checkpoint.lat_view = Array.length a.lat_view ->
    a.price <- st.Checkpoint.price;
    a.gamma <- st.Checkpoint.gamma;
    Array.blit st.Checkpoint.lat_view 0 a.lat_view 0 (Array.length a.lat_view);
    note_restore t ~actor ~warm:true
  | _ ->
    reset_agent t a;
    note_restore t ~actor ~warm:false

let restart_controller t (c : controller) =
  let warm =
    match t.checkpoint with
    | None -> None
    | Some cp -> Checkpoint.restore_controller cp c.task ~now:(Lla_sim.Engine.now t.engine)
  in
  let actor = Printf.sprintf "controller:%d" c.task in
  match warm with
  | Some st
    when Array.length st.Checkpoint.mu_view = Array.length c.mu_view
         && Array.length st.Checkpoint.congested_view = Array.length c.congested_view
         && Array.length st.Checkpoint.lambda = Array.length c.lambda
         && Array.length st.Checkpoint.gamma_p = Array.length c.gamma_p ->
    Array.blit st.Checkpoint.mu_view 0 c.mu_view 0 (Array.length c.mu_view);
    Array.blit st.Checkpoint.congested_view 0 c.congested_view 0 (Array.length c.congested_view);
    Array.blit st.Checkpoint.lambda 0 c.lambda 0 (Array.length c.lambda);
    Array.blit st.Checkpoint.gamma_p 0 c.gamma_p 0 (Array.length c.gamma_p);
    note_restore t ~actor ~warm:true
  | _ ->
    reset_controller t c;
    note_restore t ~actor ~warm:false

let create ?obs ?(config = default_config) ?resilience ?transport engine workload =
  let transport =
    match transport with
    | Some tr ->
      if not (Transport.engine tr == engine) then
        invalid_arg "Distributed.create: transport runs on a different engine";
      tr
    | None ->
      Transport.create ?obs engine
        ~config:
          { Transport.default_config with delay = Delay_model.constant config.message_delay }
  in
  let problem = Lla.Problem.compile workload in
  let n_subtasks = Lla.Problem.n_subtasks problem in
  let n_resources = Lla.Problem.n_resources problem in
  let lat = Array.init n_subtasks (fun i -> problem.subtasks.(i).lat_hi) in
  let agents =
    Array.init n_resources (fun r ->
        let local = problem.by_resource.(r) in
        let controllers =
          Array.to_list local
          |> List.map (fun i -> problem.subtasks.(i).task)
          |> List.sort_uniq Int.compare
        in
        {
          resource = r;
          price = config.mu0;
          gamma = initial_gamma (resource_policy config.step_policy);
          lat_view = Array.map (fun i -> lat.(i)) local;
          local_subtasks = local;
          controllers;
          agent_endpoint = Transport.endpoint transport ~name:(Printf.sprintf "agent:%d" r);
          a_in_span = None;
          a_prev_span = None;
        })
  in
  let controllers =
    Array.init (Lla.Problem.n_tasks problem) (fun ti ->
        {
          task = ti;
          mu_view = Array.make n_resources config.mu0;
          congested_view = Array.make n_resources false;
          lambda = Array.make (Lla.Problem.n_paths problem) 0.;
          gamma_p =
            Array.make
              (Array.length problem.tasks.(ti).path_indices)
              (initial_gamma (path_policy config.step_policy));
          lat;
          controller_endpoint =
            Transport.endpoint transport ~name:(Printf.sprintf "controller:%d" ti);
          c_price_span = None;
          c_fresh_price = false;
          c_prev_span = None;
        })
  in
  let checkpoint =
    match resilience with
    | Some { checkpoint_period = Some _; checkpoint_max_age; _ } ->
      Some
        (Checkpoint.create ?obs ~max_age:checkpoint_max_age ~n_agents:n_resources
           ~n_controllers:(Array.length controllers) ())
    | _ -> None
  in
  let health =
    match resilience with
    | Some { health = Some hc; _ } ->
      let h = Health.create ?obs ~config:hc transport in
      Array.iter (fun a -> Health.watch h a.agent_endpoint) agents;
      Array.iter (fun c -> Health.watch h c.controller_endpoint) controllers;
      Some h
    | _ -> None
  in
  let safe_mode =
    match resilience with
    | Some { safe_mode = Some sc; _ } -> Some (Safe_mode.create ?obs ~config:sc problem)
    | _ -> None
  in
  let registry =
    match obs with Some o -> o.Lla_obs.metrics | None -> Lla_obs.Metrics.create ()
  in
  let meter name help = Lla_obs.Metrics.counter registry name ~help in
  let meters =
    {
      m_messages = meter "lla_runtime_messages_total" "Control-plane messages handed to the transport.";
      m_price_rounds = meter "lla_runtime_price_rounds_total" "Agent price-update rounds executed (Eq. 8).";
      m_allocation_rounds =
        meter "lla_runtime_allocation_rounds_total" "Controller allocation rounds executed (Eq. 7/9).";
      m_guards = meter "lla_runtime_guard_events_total" "Non-finite values neutralized by the runtime guards.";
      m_warm_restores = meter "lla_runtime_warm_restores_total" "Actor restarts recovered from a checkpoint.";
      m_cold_restarts = meter "lla_runtime_cold_restarts_total" "Actor restarts reset to the cold mu0 state.";
      m_control_latency =
        Lla_obs.Metrics.histogram registry "lla_control_latency_ms"
          ~help:
            "Control-reaction latency: price update at a resource agent to the next allocation \
             applied at a task controller that consumed it (engine ms).";
    }
  in
  let t =
    {
      config;
      engine;
      transport;
      problem;
      agents;
      controllers;
      offsets = Array.make n_subtasks 0.;
      lat;
      agent_ticks = Array.make n_resources None;
      controller_ticks = Array.make (Array.length controllers) None;
      resilience;
      checkpoint;
      health;
      safe_mode;
      obs;
      registry;
      meters;
      watchdog_tick = None;
      started = false;
      stopped = false;
    }
  in
  Array.iter
    (fun a -> Transport.on_restart transport a.agent_endpoint (fun () -> restart_agent t a))
    agents;
  Array.iter
    (fun c ->
      Transport.on_restart transport c.controller_endpoint (fun () -> restart_controller t c))
    controllers;
  t

let send ?key ?span t ~src ~dst f =
  Lla_obs.Metrics.incr t.meters.m_messages;
  Transport.send_traced ?key ?span t.transport ~src ~dst f

let in_safe_mode t =
  match t.safe_mode with Some sm -> Safe_mode.in_safe_mode sm | None -> false

(* Wall-clock phase timing: one [None] match when unobserved, one branch
   on a disabled profiler — never touches the engine schedule. *)
let prof t name f =
  match t.obs with Some o -> Lla_obs.Profile.time o.Lla_obs.profile name f | None -> f ()

(* Open a work span ("price" at an agent, "alloc" at a controller): child
   of [parent] when the actor consumed fresh causal input, else chained
   onto [prev] (its own previous work span), else a root. Ids come from
   the handle's deterministic counter; emission is the only effect. *)
let work_span o ~at ~kind ~actor ~parent ~prev =
  let id = Lla_obs.alloc_span o in
  let parent_ctx = match parent with Some _ -> parent | None -> prev in
  let ctx =
    match parent_ctx with
    | Some p -> Lla_obs.Span.child p ~id ~at
    | None -> Lla_obs.Span.root ~id ~at
  in
  Lla_obs.emit o ~at
    (Lla_obs.Trace.Span
       {
         span = id;
         parent = (match parent_ctx with Some p -> p.Lla_obs.Span.span_id | None -> -1);
         trace = ctx.Lla_obs.Span.trace_id;
         kind;
         actor;
       });
  ctx

let spans_on t = match t.obs with Some o when o.Lla_obs.spans -> Some o | _ -> None

(* Announce one subtask latency to the agent hosting it; keyed by the
   subtask index so last-write-wins discards reordered stale values.
   [span] is the controller's alloc span (absent for the initial and
   safe-mode re-announcements, which are state repair, not reactions);
   an applied delivery parks the forwarded context on the agent for its
   next price span to consume. *)
let announce_latency ?span t (c : controller) i =
  let s = t.problem.subtasks.(i) in
  let a = t.agents.(s.resource) in
  let value = c.lat.(i) in
  send t ~key:i ?span ~src:c.controller_endpoint ~dst:a.agent_endpoint (fun sp ->
      (* Locate the agent's slot for this subtask. *)
      Array.iteri (fun slot j -> if j = i then a.lat_view.(slot) <- value) a.local_subtasks;
      match sp with Some ctx -> a.a_in_span <- Some ctx | None -> ())

let checkpoint_due period ~now last =
  match last with None -> true | Some at -> now -. at >= period -. 1e-9

let maybe_checkpoint_agent t (a : agent) =
  match (t.checkpoint, t.resilience) with
  | Some cp, Some { checkpoint_period = Some period; _ } ->
    let now = Lla_sim.Engine.now t.engine in
    if checkpoint_due period ~now (Checkpoint.last_agent_save cp a.resource) then
      prof t "checkpoint" (fun () ->
          ignore
            (Checkpoint.save_agent cp a.resource ~now
               { Checkpoint.price = a.price; gamma = a.gamma; lat_view = a.lat_view }))
  | _ -> ()

let maybe_checkpoint_controller t (c : controller) =
  match (t.checkpoint, t.resilience) with
  | Some cp, Some { checkpoint_period = Some period; _ } ->
    let now = Lla_sim.Engine.now t.engine in
    if checkpoint_due period ~now (Checkpoint.last_controller_save cp c.task) then
      prof t "checkpoint" (fun () ->
          ignore
            (Checkpoint.save_controller cp c.task ~now
               {
                 Checkpoint.mu_view = c.mu_view;
                 congested_view = c.congested_view;
                 lambda = c.lambda;
                 gamma_p = c.gamma_p;
               }))
  | _ -> ()

(* Agent tick: Eq. 8 from the announced latencies, then broadcast. *)
let agent_tick t (a : agent) =
  prof t "price_update" @@ fun () ->
  Lla_obs.Metrics.incr t.meters.m_price_rounds;
  (* A non-finite stored price can never recover through Eq. 8 (inf - x
     = inf, nan propagates), so any corruption that lands directly in
     [a.price] — a poisoned restore, fault injection — would otherwise
     persist forever: heal it to [mu0] like the other runtime guards. *)
  if not (Float.is_finite a.price) then begin
    Lla_obs.Metrics.incr t.meters.m_guards;
    Lla_obs.emit_opt t.obs ~at:(Lla_sim.Engine.now t.engine)
      (Lla_obs.Trace.Guard_fired { site = "distributed.agent.price" });
    a.price <- t.config.mu0
  end;
  let used = ref 0. in
  Array.iteri
    (fun slot i ->
      used :=
        !used +. Lla.Problem.effective_share t.problem i ~lat:a.lat_view.(slot) ~offset:t.offsets.(i))
    a.local_subtasks;
  let cap = t.problem.capacities.(a.resource) in
  (* A poisoned latency announcement must not become a non-finite price:
     skip the price update (keep broadcasting the last good price) and
     count the event. *)
  if not (Float.is_finite !used) then begin
    Lla_obs.Metrics.incr t.meters.m_guards;
    Lla_obs.emit_opt t.obs ~at:(Lla_sim.Engine.now t.engine)
      (Lla_obs.Trace.Guard_fired { site = "distributed.agent" })
  end
  else begin
    let congested = !used > cap +. 1e-12 in
    let step = a.gamma in
    a.price <- Float.max 0. (a.price -. (a.gamma *. (cap -. !used)));
    a.gamma <- adapt (resource_policy t.config.step_policy) a.gamma ~congested;
    Lla_obs.emit_opt t.obs ~at:(Lla_sim.Engine.now t.engine)
      (Lla_obs.Trace.Price_updated
         {
           resource = a.resource;
           mu = a.price;
           step;
           share_sum = !used;
           capacity = cap;
           congested;
         });
    maybe_checkpoint_agent t a;
    let span =
      match spans_on t with
      | Some o ->
        let ctx =
          work_span o ~at:(Lla_sim.Engine.now t.engine) ~kind:"price"
            ~actor:(Transport.endpoint_name a.agent_endpoint) ~parent:a.a_in_span
            ~prev:a.a_prev_span
        in
        a.a_in_span <- None;
        a.a_prev_span <- Some ctx;
        Some ctx
      | None -> None
    in
    let price = a.price in
    List.iter
      (fun ti ->
        let c = t.controllers.(ti) in
        send t ~key:a.resource ?span ~src:a.agent_endpoint ~dst:c.controller_endpoint (fun sp ->
            c.mu_view.(a.resource) <- price;
            c.congested_view.(a.resource) <- congested;
            match sp with
            | Some ctx ->
              c.c_price_span <- Some ctx;
              c.c_fresh_price <- true
            | None -> ()))
      a.controllers
  end

(* Controller tick: Eq. 9 for own paths, Eq. 7 for own subtasks, then
   announce the new latencies to the agents hosting them. In safe mode the
   optimization is frozen: the controller only re-announces the enacted
   (fallback) latencies so agents' views stay fresh — and so a restarted
   agent's view is repaired — while the price iteration settles. *)
let controller_tick t (c : controller) =
  prof t "allocation" @@ fun () ->
  let info = t.problem.tasks.(c.task) in
  if in_safe_mode t then
    Array.iter (fun i -> announce_latency t c i) info.subtask_indices
  else begin
    Lla_obs.Metrics.incr t.meters.m_allocation_rounds;
    let now = Lla_sim.Engine.now t.engine in
    Array.iteri
      (fun local p ->
        let path = t.problem.paths.(p) in
        let latency =
          Array.fold_left (fun acc i -> acc +. c.lat.(i)) 0. path.subtask_indices
        in
        let slack = 1. -. (latency /. path.critical_time) in
        let step = c.gamma_p.(local) in
        let next = Float.max 0. (c.lambda.(p) -. (step *. slack)) in
        (* Same guard as Price_update.update_path: never store a poisoned
           multiplier. *)
        if Float.is_finite next then begin
          c.lambda.(p) <- next;
          Lla_obs.emit_opt t.obs ~at:now
            (Lla_obs.Trace.Path_price_updated
               { path = p; lambda = next; step; latency; critical_time = path.critical_time })
        end
        else begin
          Lla_obs.Metrics.incr t.meters.m_guards;
          Lla_obs.emit_opt t.obs ~at:now
            (Lla_obs.Trace.Guard_fired { site = "distributed.controller" })
        end;
        let any_congested =
          Array.exists (fun r -> c.congested_view.(r)) path.path_resources
        in
        c.gamma_p.(local) <-
          adapt (path_policy t.config.step_policy) c.gamma_p.(local)
            ~congested:any_congested)
      info.path_indices;
    let guards = ref 0 in
    prof t "solve" (fun () ->
        Lla.Allocation.allocate_task ?obs:t.obs ~at:now t.problem c.task ~mu:c.mu_view
          ~lambda:c.lambda ~offsets:t.offsets ~sweeps:t.config.sweeps ~guards ~lat:c.lat);
    Lla_obs.Metrics.add t.meters.m_guards !guards;
    (match t.obs with
    | Some o ->
      (* Per-task utility, not the global total: recomputing the full
         objective on every solve costs more than all other emission
         combined, and the total is the sum of the latest per-task
         values anyway. *)
      Lla_obs.emit o ~at:now
        (Lla_obs.Trace.Allocation_solved
           { task = c.task; utility = Lla.Problem.task_utility t.problem c.task ~lat:c.lat })
    | None -> ());
    maybe_checkpoint_controller t c;
    let span =
      match spans_on t with
      | Some o ->
        let fresh = c.c_fresh_price in
        let ctx =
          work_span o ~at:now ~kind:"alloc"
            ~actor:(Transport.endpoint_name c.controller_endpoint)
            ~parent:(if fresh then c.c_price_span else None)
            ~prev:c.c_prev_span
        in
        (* The reaction closes here: price change at the agent (the
           origin timestamp forwarded through the message) to this
           applied allocation. Only solves that consumed a fresh price
           count — re-solves on stale views are not reactions. *)
        if fresh then begin
          (match c.c_price_span with
          | Some p ->
            Lla_obs.Metrics.observe t.meters.m_control_latency (now -. p.Lla_obs.Span.origin)
          | None -> ());
          c.c_fresh_price <- false
        end;
        c.c_prev_span <- Some ctx;
        Some ctx
      | None -> None
    in
    Array.iter (fun i -> announce_latency ?span t c i) info.subtask_indices
  end

(* Safe-mode entry: enact the guaranteed-feasible fallback, heal any
   poisoned price state, and restart the controllers' dual state so the
   re-entered optimization begins from a clean point. *)
let enter_safe_mode t sm ~reason =
  Log.warn (fun m ->
      m "safe mode entered at %.0f ms (%s): clamping to %s" (Lla_sim.Engine.now t.engine)
        reason (Safe_mode.fallback_source sm));
  Lla_obs.emit_opt t.obs ~at:(Lla_sim.Engine.now t.engine)
    (Lla_obs.Trace.Safe_mode_entered { reason; fallback = Safe_mode.fallback_source sm });
  Array.blit (Safe_mode.fallback sm) 0 t.lat 0 (Array.length t.lat);
  (* Heal well below the watchdog's divergence threshold: a price that is
     finite but orders of magnitude above the dual scale (chaos campaigns
     found mu = 1e4 with mu_cap = 1e6) decays only by ~gamma per round, so
     it cannot recover within a safe-mode dwell and poisons every
     re-entered optimization — permanent enter/exit thrash. *)
  let mu_cap = (Safe_mode.config sm).Safe_mode.mu_cap in
  let heal_cap = Float.min mu_cap (1_000. *. Float.max 1. t.config.mu0) in
  Array.iter
    (fun a ->
      if (not (Float.is_finite a.price)) || a.price > heal_cap then a.price <- t.config.mu0;
      a.gamma <- initial_gamma (resource_policy t.config.step_policy);
      (* Repair the agent's latency view in place: announcements from down
         controllers may never arrive. *)
      Array.iteri (fun slot i -> a.lat_view.(slot) <- t.lat.(i)) a.local_subtasks)
    t.agents;
  Array.iter (fun c -> reset_controller t c) t.controllers;
  (* Re-announce so the (unlikely) in-flight stale latency messages are
     superseded under last-write-wins. *)
  Array.iter
    (fun c ->
      Array.iter (fun i -> announce_latency t c i) t.problem.tasks.(c.task).subtask_indices)
    t.controllers

let watchdog_observe t sm =
  let now = Lla_sim.Engine.now t.engine in
  let mu = Array.map (fun a -> a.price) t.agents in
  match Safe_mode.observe sm ~now ~mu ~lat:t.lat ~offsets:t.offsets with
  | Some (Safe_mode.Entered { reason }) -> enter_safe_mode t sm ~reason
  | Some Safe_mode.Exited ->
    Log.info (fun m -> m "safe mode exited at %.0f ms: prices settled, re-optimizing" now);
    Lla_obs.emit_opt t.obs ~at:now Lla_obs.Trace.Safe_mode_exited
  | None -> ()

let start t =
  if t.started then invalid_arg "Distributed.start: already started";
  t.started <- true;
  (* Initial announcements so agents have a latency view before pricing. *)
  Array.iter
    (fun (c : controller) ->
      Array.iter (fun i -> announce_latency t c i) t.problem.tasks.(c.task).subtask_indices)
    t.controllers;
  (* Periodic ticks: a down actor skips its round (its endpoint neither
     computes nor sends) but the schedule keeps running so it resumes
     after a restart. The current event id is kept so {!stop} can cancel
     the loops. *)
  let rec agent_loop a =
    t.agent_ticks.(a.resource) <-
      Some
        (Lla_sim.Engine.schedule_after t.engine ~delay:t.config.resource_period (fun _ ->
             if not t.stopped then begin
               if Transport.is_up t.transport a.agent_endpoint then agent_tick t a;
               agent_loop a
             end))
  in
  Array.iter agent_loop t.agents;
  let rec controller_loop c =
    t.controller_ticks.(c.task) <-
      Some
        (Lla_sim.Engine.schedule_after t.engine ~delay:t.config.controller_period (fun _ ->
             if not t.stopped then begin
               if Transport.is_up t.transport c.controller_endpoint then controller_tick t c;
               controller_loop c
             end))
  in
  Array.iter controller_loop t.controllers;
  Option.iter Health.start t.health;
  match (t.safe_mode, t.resilience) with
  | Some sm, Some { watchdog_period; _ } ->
    let rec watchdog_loop () =
      t.watchdog_tick <-
        Some
          (Lla_sim.Engine.schedule_after t.engine ~delay:watchdog_period (fun _ ->
               if not t.stopped then begin
                 watchdog_observe t sm;
                 watchdog_loop ()
               end))
    in
    watchdog_loop ()
  | _ -> ()

let stop t =
  if t.started && not t.stopped then begin
    t.stopped <- true;
    let cancel ticks i =
      Option.iter (Lla_sim.Engine.cancel t.engine) ticks.(i);
      ticks.(i) <- None
    in
    Array.iteri (fun i _ -> cancel t.agent_ticks i) t.agent_ticks;
    Array.iteri (fun i _ -> cancel t.controller_ticks i) t.controller_ticks;
    Option.iter (Lla_sim.Engine.cancel t.engine) t.watchdog_tick;
    t.watchdog_tick <- None;
    Option.iter Health.stop t.health
  end

let run t ~duration =
  if not t.started then start t;
  Lla_sim.Engine.run_until t.engine (Lla_sim.Engine.now t.engine +. duration)

let transport t = t.transport

let agent_endpoint t rid = t.agents.(Lla.Problem.resource_index t.problem rid).agent_endpoint

let controller_endpoint t tid =
  t.controllers.(Lla.Problem.task_index t.problem tid).controller_endpoint

let latency t sid = t.lat.(Lla.Problem.subtask_index t.problem sid)

let share t sid =
  let i = Lla.Problem.subtask_index t.problem sid in
  Lla.Problem.effective_share t.problem i ~lat:t.lat.(i) ~offset:t.offsets.(i)

let mu t rid = t.agents.(Lla.Problem.resource_index t.problem rid).price

let utility t = Lla.Problem.total_utility t.problem ~lat:t.lat

let messages_sent t = Lla_obs.Metrics.value t.meters.m_messages

let price_rounds t = Lla_obs.Metrics.value t.meters.m_price_rounds

let allocation_rounds t = Lla_obs.Metrics.value t.meters.m_allocation_rounds

let metrics t = t.registry

let health t = t.health

let checkpoint_store t = t.checkpoint

let safe_mode_state t = Option.map Safe_mode.state t.safe_mode

let safe_entries t = match t.safe_mode with Some sm -> Safe_mode.entries sm | None -> 0

let safe_exits t = match t.safe_mode with Some sm -> Safe_mode.exits sm | None -> 0

let fallback_source t = Option.map Safe_mode.fallback_source t.safe_mode

let warm_restores t = Lla_obs.Metrics.value t.meters.m_warm_restores

let cold_restarts t = Lla_obs.Metrics.value t.meters.m_cold_restarts

let guard_events t = Lla_obs.Metrics.value t.meters.m_guards

(* Chaos-injection hooks. These overwrite live state exactly as a corrupted
   message or a drifted plant model would, so the regular iteration (and the
   finite-value guards) process the poison on the next tick. *)

let poison_price t rid value =
  t.agents.(Lla.Problem.resource_index t.problem rid).price <- value

let set_error_offset t sid value =
  t.offsets.(Lla.Problem.subtask_index t.problem sid) <- value

let error_offset t sid = t.offsets.(Lla.Problem.subtask_index t.problem sid)
