module Transport = Lla_transport.Transport
module Delay_model = Lla_transport.Delay_model

let src = Logs.Src.create "lla.runtime" ~doc:"Distributed LLA runtime"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  message_delay : float;
  controller_period : float;
  resource_period : float;
  step_policy : Lla.Step_size.policy;
  mu0 : float;
  sweeps : int;
}

let default_config =
  {
    message_delay = 1.0;
    controller_period = 10.0;
    resource_period = 10.0;
    step_policy = Lla.Step_size.adaptive ~initial:1.0 ();
    mu0 = 1.0;
    sweeps = 2;
  }

type resilience = {
  checkpoint_period : float option;
  checkpoint_max_age : float;
  health : Health.config option;
  safe_mode : Safe_mode.config option;
  watchdog_period : float;
}

let default_resilience =
  {
    checkpoint_period = Some 100.;
    checkpoint_max_age = infinity;
    health = Some Health.default_config;
    safe_mode = Some Safe_mode.default_config;
    watchdog_period = 10.;
  }

(* Runtime counters, registry-backed: with [?obs] they land in the shared
   registry (visible in the Prometheus exposition); without it they live
   in a private registry. Either way an update is one mutable-field
   write, same cost as the ad-hoc ints they replaced. *)
type meters = {
  m_messages : Lla_obs.Metrics.counter;
  m_price_rounds : Lla_obs.Metrics.counter;
  m_allocation_rounds : Lla_obs.Metrics.counter;
  m_guards : Lla_obs.Metrics.counter;
  m_warm_restores : Lla_obs.Metrics.counter;
  m_cold_restarts : Lla_obs.Metrics.counter;
  m_control_latency : Lla_obs.Metrics.histogram;
}

(* Everything an actor touches on its own tick lives in its shard
   context: the scheduling core, the transport carrying its messages,
   the obs handle its emissions land in, its meters, its checkpoint
   store and failure detector. On the legacy single-shard path there is
   exactly one context wrapping the caller's engine/transport/obs, so
   every actor codepath below is bit-for-bit the pre-shard one. On a
   domains engine each shard's context is owned by one domain during a
   parallel phase (single-writer; the barrier publishes), and the only
   cross-shard traffic is [Engine.post]ed through shadow endpoints. *)
type shard_ctx = {
  sc_id : int;
  sc_core : Lla_sim.Engine.t;
  sc_transport : Transport.t;
  sc_obs : Lla_obs.t option;
  sc_registry : Lla_obs.Metrics.t;
  sc_meters : meters;
  sc_checkpoint : Checkpoint.t option;
  mutable sc_health : Health.t option;
  (* Shadow endpoints: a local always-up stand-in (same name) for each
     remote actor this shard sends to. The source-side transport applies
     its faults/partitions/staleness on the src->shadow channel; the
     payload then crosses the barrier and checks the real destination's
     liveness on its home shard. Lazily created per destination. *)
  sc_shadows : (int, Transport.endpoint) Hashtbl.t;
  (* Internal trace sink reader ([create_on] with [?obs] only): feeds
     {!merged_records} for oracles over the whole deployment. *)
  sc_reader : (unit -> Lla_obs.Trace.record list) option;
}

(* Per-resource price agent: owns mu_r and its adaptive step size; sees
   only the latencies announced for its own subtasks. *)
type agent = {
  resource : int;
  a_ctx : shard_ctx;
  mutable price : float;
  mutable gamma : float;
  lat_view : float array;  (* latest announced latency per local subtask slot *)
  local_subtasks : int array;  (* problem subtask indices on this resource *)
  controllers : int list;  (* task indices to notify *)
  agent_endpoint : Transport.endpoint;
  (* Causal-span state (unused unless obs traces spans): the context of
     the latest applied latency announcement, consumed by the next price
     span as its parent; and this agent's own previous price span, the
     fallback parent that chains ticks with no new input into one trace. *)
  mutable a_in_span : Lla_obs.Span.t option;
  mutable a_prev_span : Lla_obs.Span.t option;
}

(* Per-task controller: owns its path prices and a stale view of resource
   prices. [lambda] and [lat] are shared storage across all controllers;
   each controller reads and writes only its own task's slots (disjoint
   by construction), which keeps them safe under domain parallelism and
   keeps the multiplier state O(paths) instead of O(tasks * paths). *)
type controller = {
  task : int;
  c_ctx : shard_ctx;
  mu_view : float array;  (* indexed by resource *)
  congested_view : bool array;
  lambda : float array;  (* shared storage; controller touches only own path slots *)
  gamma_p : float array;  (* per own path *)
  lat : float array;  (* shared storage; controller writes only own slots *)
  controller_endpoint : Transport.endpoint;
  (* Causal-span state: latest applied price-message context; whether it
     arrived since the last solve (a solve that consumed a fresh price is
     the endpoint of a control reaction); previous alloc span as the
     fallback parent. *)
  mutable c_price_span : Lla_obs.Span.t option;
  mutable c_fresh_price : bool;
  mutable c_prev_span : Lla_obs.Span.t option;
}

type t = {
  config : config;
  engine_h : Engine.t;
  engine : Lla_sim.Engine.t;  (* shard 0's core (the caller's on the legacy path) *)
  transport : Transport.t;  (* shard 0's transport *)
  ctxs : shard_ctx array;
  n_resources : int;
  n_actors : int;  (* agents + controllers; the channel-id basis *)
  problem : Lla.Problem.t;
  agents : agent array;
  controllers : controller array;
  offsets : float array;
  lat : float array;  (* controller-written latency vector *)
  lambda : float array;  (* controller-written path multipliers *)
  agent_ticks : Lla_sim.Engine.event_id option array;
  controller_ticks : Lla_sim.Engine.event_id option array;
  (* Resilience layer; all None/absent when created without ?resilience,
     in which case the behaviour (and event schedule) is bit-for-bit the
     legacy one. *)
  resilience : resilience option;
  safe_mode : Safe_mode.t option;
  obs : Lla_obs.t option;
  registry : Lla_obs.Metrics.t;
  meters : meters;
  (* Streaming monitor (PR 9): on single-core engines the monitor's sink
     is attached straight to shard 0's trace; on a domains engine every
     shard's records are buffered (single-writer per shard during the
     parallel phase) and drained through the sink at barriers, merged in
     (at, shard, seq) order so the online detectors see the same global
     stream an offline [Analyze] pass over {!merged_records} would. *)
  monitor : Lla_obs.Monitor.t option;
  monitor_bufs : Lla_obs.Trace.record list ref array;  (* [||] unless barrier-buffered *)
  mutable watchdog_tick : Lla_sim.Engine.event_id option;
  mutable started : bool;
  mutable stopped : bool;
  (* Durability (PR 10): the write-ahead journal behind shard 0's
     checkpoint store, plus whole-node crash-drill accounting. *)
  journal : Lla_durable.Journal.t option;
  mutable crashes : int;
  mutable crash_replayed : int;
  mutable crash_refused : int;
  mutable crash_truncated_bytes : int;
  mutable crash_warm : int;
  mutable crash_cold : int;
  mutable crash_resurrected : int;
  mutable crash_idempotent : bool;
}

type crash_stats = {
  crashes : int;
  replayed : int;
  refused : int;
  truncated_bytes : int;
  warm : int;
  cold : int;
  resurrected : int;
  idempotent : bool;
}

(* Actor global ids: agent r -> r, controller k -> n_resources + k; the
   (src, dst) pair packs into one cross-shard channel id. *)
let home t gid =
  if gid < t.n_resources then
    let a = t.agents.(gid) in
    (a.a_ctx, a.agent_endpoint)
  else
    let c = t.controllers.(gid - t.n_resources) in
    (c.c_ctx, c.controller_endpoint)

(* Price agents run Eq. 8, so they take the resource component of a
   [Split]; controllers run Eq. 9 and take the path component. The
   wrappers below resolve the family before dispatching, so the two
   matches only ever see non-[Split] components. *)
let initial_gamma policy =
  match (policy : Lla.Step_size.policy) with
  | Lla.Step_size.Fixed g -> g
  | Lla.Step_size.Adaptive { initial; _ } -> initial
  | Lla.Step_size.Split _ -> assert false

let adapt policy gamma ~congested =
  match (policy : Lla.Step_size.policy) with
  | Lla.Step_size.Fixed g -> g
  | Lla.Step_size.Adaptive { initial; multiplier; cap } ->
    if congested then Float.min cap (gamma *. multiplier) else initial
  | Lla.Step_size.Split _ -> assert false

let resource_policy policy = fst (Lla.Step_size.components policy)
let path_policy policy = snd (Lla.Step_size.components policy)

(* A restarted agent has lost its price state: it restarts from mu0 and the
   compiled initial latency view, rebuilding both from the next received
   Latency messages (§4.1 asynchrony made crash-tolerant). *)
let reset_agent t (a : agent) =
  a.price <- t.config.mu0;
  a.gamma <- initial_gamma (resource_policy t.config.step_policy);
  a.a_in_span <- None;
  a.a_prev_span <- None;
  Array.iteri (fun slot i -> a.lat_view.(slot) <- t.problem.subtasks.(i).lat_hi) a.local_subtasks

(* A restarted controller forgets its price views and path multipliers; the
   latency assignment itself (t.lat) is enacted state in the data plane and
   survives the controller's crash. *)
let reset_controller t (c : controller) =
  c.c_price_span <- None;
  c.c_fresh_price <- false;
  c.c_prev_span <- None;
  Array.fill c.mu_view 0 (Array.length c.mu_view) t.config.mu0;
  Array.fill c.congested_view 0 (Array.length c.congested_view) false;
  Array.iter (fun p -> c.lambda.(p) <- 0.) t.problem.tasks.(c.task).path_indices;
  Array.fill c.gamma_p 0 (Array.length c.gamma_p)
    (initial_gamma (path_policy t.config.step_policy))

(* Warm restart: rebuild from the last accepted checkpoint instead of from
   mu0, skipping the cold-convergence transient. Falls back to the cold
   reset when there is no snapshot, it is stale, or it does not match the
   actor's shape. *)
let note_restore (ctx : shard_ctx) ~actor ~warm =
  if warm then Lla_obs.Metrics.incr ctx.sc_meters.m_warm_restores
  else Lla_obs.Metrics.incr ctx.sc_meters.m_cold_restarts;
  Lla_obs.emit_opt ctx.sc_obs ~at:(Lla_sim.Engine.now ctx.sc_core)
    (Lla_obs.Trace.Checkpoint_restored { actor; warm })

let restart_agent t (a : agent) =
  let ctx = a.a_ctx in
  let warm =
    match ctx.sc_checkpoint with
    | None -> None
    | Some cp -> Checkpoint.restore_agent cp a.resource ~now:(Lla_sim.Engine.now ctx.sc_core)
  in
  let actor = Printf.sprintf "agent:%d" a.resource in
  match warm with
  | Some st when Array.length st.Checkpoint.lat_view = Array.length a.lat_view ->
    a.price <- st.Checkpoint.price;
    a.gamma <- st.Checkpoint.gamma;
    Array.blit st.Checkpoint.lat_view 0 a.lat_view 0 (Array.length a.lat_view);
    note_restore ctx ~actor ~warm:true
  | _ ->
    reset_agent t a;
    note_restore ctx ~actor ~warm:false

(* Controller snapshots carry the *own-path* multiplier values (compacted
   by [path_indices] order), not the whole shared lambda vector: a restore
   must never clobber other controllers' live slots. *)
let own_lambda t (c : controller) =
  Array.map (fun p -> c.lambda.(p)) t.problem.tasks.(c.task).path_indices

let restart_controller t (c : controller) =
  let ctx = c.c_ctx in
  let warm =
    match ctx.sc_checkpoint with
    | None -> None
    | Some cp -> Checkpoint.restore_controller cp c.task ~now:(Lla_sim.Engine.now ctx.sc_core)
  in
  let actor = Printf.sprintf "controller:%d" c.task in
  let path_indices = t.problem.tasks.(c.task).path_indices in
  match warm with
  | Some st
    when Array.length st.Checkpoint.mu_view = Array.length c.mu_view
         && Array.length st.Checkpoint.congested_view = Array.length c.congested_view
         && Array.length st.Checkpoint.lambda = Array.length path_indices
         && Array.length st.Checkpoint.gamma_p = Array.length c.gamma_p ->
    Array.blit st.Checkpoint.mu_view 0 c.mu_view 0 (Array.length c.mu_view);
    Array.blit st.Checkpoint.congested_view 0 c.congested_view 0 (Array.length c.congested_view);
    Array.iteri (fun k p -> c.lambda.(p) <- st.Checkpoint.lambda.(k)) path_indices;
    Array.blit st.Checkpoint.gamma_p 0 c.gamma_p 0 (Array.length c.gamma_p);
    note_restore ctx ~actor ~warm:true
  | _ ->
    reset_controller t c;
    note_restore ctx ~actor ~warm:false

let mk_meters registry =
  let meter name help = Lla_obs.Metrics.counter registry name ~help in
  {
    m_messages = meter "lla_runtime_messages_total" "Control-plane messages handed to the transport.";
    m_price_rounds = meter "lla_runtime_price_rounds_total" "Agent price-update rounds executed (Eq. 8).";
    m_allocation_rounds =
      meter "lla_runtime_allocation_rounds_total" "Controller allocation rounds executed (Eq. 7/9).";
    m_guards = meter "lla_runtime_guard_events_total" "Non-finite values neutralized by the runtime guards.";
    m_warm_restores = meter "lla_runtime_warm_restores_total" "Actor restarts recovered from a checkpoint.";
    m_cold_restarts = meter "lla_runtime_cold_restarts_total" "Actor restarts reset to the cold mu0 state.";
    m_control_latency =
      Lla_obs.Metrics.histogram registry "lla_control_latency_ms"
        ~help:
          "Control-reaction latency: price update at a resource agent to the next allocation \
           applied at a task controller that consumed it (engine ms).";
  }

(* One base per shard: (core, transport, obs, trace reader). The legacy
   [create] passes a single base wrapping the caller's objects — every
   construction effect (endpoint ids, counter registration, detector
   wiring) then happens in exactly the legacy order. *)
let create_internal ?obs ?monitor ?journal ~config ~resilience ~engine_h ~bases workload =
  let problem = Lla.Problem.compile workload in
  let n_subtasks = Lla.Problem.n_subtasks problem in
  let n_resources = Lla.Problem.n_resources problem in
  let n_tasks = Lla.Problem.n_tasks problem in
  let n_shards = Array.length bases in
  let lat = Array.init n_subtasks (fun i -> problem.subtasks.(i).lat_hi) in
  let lambda = Array.make (Lla.Problem.n_paths problem) 0. in
  let ctxs =
    Array.mapi
      (fun sc_id (core, transport, sobs, reader) ->
        let registry =
          match sobs with Some o -> o.Lla_obs.metrics | None -> Lla_obs.Metrics.create ()
        in
        let checkpoint =
          match resilience with
          | Some { checkpoint_period = Some _; checkpoint_max_age; _ } ->
            (* the journal is single-writer: it backs shard 0's store
               only; actors homed on other shards recover cold after a
               whole-node crash (documented limitation) *)
            let journal = if sc_id = 0 then journal else None in
            Some
              (Checkpoint.create ?obs:sobs ?journal ~max_age:checkpoint_max_age
                 ~n_agents:n_resources ~n_controllers:n_tasks ())
          | _ -> None
        in
        {
          sc_id;
          sc_core = core;
          sc_transport = transport;
          sc_obs = sobs;
          sc_registry = registry;
          sc_meters = mk_meters registry;
          sc_checkpoint = checkpoint;
          sc_health = None;
          sc_shadows = Hashtbl.create 16;
          sc_reader = reader;
        })
      bases
  in
  let agents =
    Array.init n_resources (fun r ->
        let ctx = ctxs.(r mod n_shards) in
        let local = problem.by_resource.(r) in
        let controllers =
          Array.to_list local
          |> List.map (fun i -> problem.subtasks.(i).task)
          |> List.sort_uniq Int.compare
        in
        {
          resource = r;
          a_ctx = ctx;
          price = config.mu0;
          gamma = initial_gamma (resource_policy config.step_policy);
          lat_view = Array.map (fun i -> lat.(i)) local;
          local_subtasks = local;
          controllers;
          agent_endpoint = Transport.endpoint ctx.sc_transport ~name:(Printf.sprintf "agent:%d" r);
          a_in_span = None;
          a_prev_span = None;
        })
  in
  let controllers =
    Array.init n_tasks (fun ti ->
        let ctx = ctxs.(ti mod n_shards) in
        {
          task = ti;
          c_ctx = ctx;
          mu_view = Array.make n_resources config.mu0;
          congested_view = Array.make n_resources false;
          lambda;
          gamma_p =
            Array.make
              (Array.length problem.tasks.(ti).path_indices)
              (initial_gamma (path_policy config.step_policy));
          lat;
          controller_endpoint =
            Transport.endpoint ctx.sc_transport ~name:(Printf.sprintf "controller:%d" ti);
          c_price_span = None;
          c_fresh_price = false;
          c_prev_span = None;
        })
  in
  (match resilience with
  | Some { health = Some hc; _ } ->
    Array.iter
      (fun ctx ->
        let h = Health.create ?obs:ctx.sc_obs ~config:hc ctx.sc_transport in
        Array.iter (fun a -> if a.a_ctx == ctx then Health.watch h a.agent_endpoint) agents;
        Array.iter (fun c -> if c.c_ctx == ctx then Health.watch h c.controller_endpoint) controllers;
        ctx.sc_health <- Some h)
      ctxs
  | _ -> ());
  let safe_mode =
    match resilience with
    | Some { safe_mode = Some sc; _ } -> Some (Safe_mode.create ?obs ~config:sc problem)
    | _ -> None
  in
  (* Monitor feed. A domains engine buffers every shard's records (each
     buffer written only by its owning domain) and drains them at
     barriers; single-core engines attach the sink live. Alerts always
     land on shard 0's trace. No monitor, no sinks: trajectories stay
     bit-for-bit the unmonitored ones. *)
  let monitor_bufs =
    match (monitor, engine_h) with
    | None, _ -> [||]
    | Some m, (Engine.Sim _ | Engine.Rt _) ->
      (match obs with Some o -> Lla_obs.Monitor.attach m o.Lla_obs.trace | None -> ());
      [||]
    | Some m, Engine.Domains _ ->
      let bufs = Array.map (fun _ -> ref []) ctxs in
      Array.iteri
        (fun i ctx ->
          match ctx.sc_obs with
          | Some so ->
            Lla_obs.Trace.attach so.Lla_obs.trace (fun r -> bufs.(i) := r :: !(bufs.(i)))
          | None -> ())
        ctxs;
      (match obs with
      | Some o -> Lla_obs.Monitor.on_alert m (fun ~at ev -> Lla_obs.emit o ~at ev)
      | None -> ());
      bufs
  in
  let t =
    {
      config;
      engine_h;
      engine = ctxs.(0).sc_core;
      transport = ctxs.(0).sc_transport;
      ctxs;
      n_resources;
      n_actors = n_resources + n_tasks;
      problem;
      agents;
      controllers;
      offsets = Array.make n_subtasks 0.;
      lat;
      lambda;
      agent_ticks = Array.make n_resources None;
      controller_ticks = Array.make n_tasks None;
      resilience;
      safe_mode;
      obs;
      registry = ctxs.(0).sc_registry;
      meters = ctxs.(0).sc_meters;
      monitor;
      monitor_bufs;
      watchdog_tick = None;
      started = false;
      stopped = false;
      journal;
      crashes = 0;
      crash_replayed = 0;
      crash_refused = 0;
      crash_truncated_bytes = 0;
      crash_warm = 0;
      crash_cold = 0;
      crash_resurrected = 0;
      crash_idempotent = true;
    }
  in
  Array.iter
    (fun a ->
      Transport.on_restart a.a_ctx.sc_transport a.agent_endpoint (fun () -> restart_agent t a))
    agents;
  Array.iter
    (fun c ->
      Transport.on_restart c.c_ctx.sc_transport c.controller_endpoint (fun () ->
          restart_controller t c))
    controllers;
  t

let create ?obs ?monitor ?(config = default_config) ?resilience ?journal ?transport engine workload =
  let transport =
    match transport with
    | Some tr ->
      if not (Transport.engine tr == engine) then
        invalid_arg "Distributed.create: transport runs on a different engine";
      tr
    | None ->
      Transport.create ?obs engine
        ~config:
          { Transport.default_config with delay = Delay_model.constant config.message_delay }
  in
  create_internal ?obs ?monitor ?journal ~config ~resilience ~engine_h:(Engine.of_core engine)
    ~bases:[| (engine, transport, obs, None) |]
    workload

let create_on ?obs ?monitor ?(config = default_config) ?resilience ?journal ?transport_config
    engine_h workload =
  let n = Engine.shards engine_h in
  let tc =
    match transport_config with
    | Some c -> c
    | None ->
      { Transport.default_config with delay = Delay_model.constant config.message_delay }
  in
  (* The caller's handle becomes shard 0's: span ids stride by the shard
     count so all shards allocate from disjoint arithmetic sequences. *)
  (match obs with
  | Some o when n > 1 && o.Lla_obs.spans -> Lla_obs.set_span_stride o ~base:0 ~stride:n
  | _ -> ());
  let bases =
    Array.init n (fun s ->
        let core = Engine.core engine_h ~shard:s in
        let sobs =
          if s = 0 then obs
          else
            match obs with
            | Some o -> Some (Lla_obs.create ~spans:o.Lla_obs.spans ~span_base:s ~span_stride:n ())
            | None -> None
        in
        let reader =
          match sobs with
          | Some so ->
            let sink, collected = Lla_obs.Trace.memory_sink () in
            Lla_obs.Trace.attach so.Lla_obs.trace sink;
            Some collected
          | None -> None
        in
        let transport =
          Transport.create ?obs:sobs ~config:{ tc with Transport.seed = tc.seed + s } core
        in
        (core, transport, sobs, reader))
  in
  create_internal ?obs ?monitor ?journal ~config ~resilience ~engine_h ~bases workload

(* Route a control message. Same shard: straight through the legacy
   transport path. Cross shard: through the source transport to the
   destination's local shadow (so source-side faults, partitions and
   last-write-wins staleness all apply), then across the barrier via
   [Engine.post]; the real destination's liveness is checked on arrival,
   on its home shard — a down actor silently loses the message, exactly
   as the destination-down branch of the single-transport path. *)
let send ?key ?span t ~from:(ctx : shard_ctx) ~src ~src_gid ~dst_gid apply =
  Lla_obs.Metrics.incr ctx.sc_meters.m_messages;
  let dst_ctx, dst_ep = home t dst_gid in
  if dst_ctx == ctx then Transport.send_traced ?key ?span ctx.sc_transport ~src ~dst:dst_ep apply
  else begin
    let shadow =
      match Hashtbl.find_opt ctx.sc_shadows dst_gid with
      | Some ep -> ep
      | None ->
        let ep =
          Transport.endpoint ctx.sc_transport ~name:(Transport.endpoint_name dst_ep)
        in
        Hashtbl.add ctx.sc_shadows dst_gid ep;
        ep
    in
    let channel = (src_gid * t.n_actors) + dst_gid in
    Transport.send_traced ?key ?span ctx.sc_transport ~src ~dst:shadow (fun sp ->
        Engine.post t.engine_h ~from:ctx.sc_id ~shard:dst_ctx.sc_id
          ~at:(Lla_sim.Engine.now ctx.sc_core) ~channel (fun () ->
            if Transport.is_up dst_ctx.sc_transport dst_ep then apply sp))
  end

let in_safe_mode t =
  match t.safe_mode with Some sm -> Safe_mode.in_safe_mode sm | None -> false

(* Wall-clock phase timing: one [None] match when unobserved, one branch
   on a disabled profiler — never touches the engine schedule. *)
let prof (ctx : shard_ctx) name f =
  match ctx.sc_obs with Some o -> Lla_obs.Profile.time o.Lla_obs.profile name f | None -> f ()

(* Open a work span ("price" at an agent, "alloc" at a controller): child
   of [parent] when the actor consumed fresh causal input, else chained
   onto [prev] (its own previous work span), else a root. Ids come from
   the handle's deterministic counter; emission is the only effect. *)
let work_span o ~at ~kind ~actor ~parent ~prev =
  let id = Lla_obs.alloc_span o in
  let parent_ctx = match parent with Some _ -> parent | None -> prev in
  let ctx =
    match parent_ctx with
    | Some p -> Lla_obs.Span.child p ~id ~at
    | None -> Lla_obs.Span.root ~id ~at
  in
  Lla_obs.emit o ~at
    (Lla_obs.Trace.Span
       {
         span = id;
         parent = (match parent_ctx with Some p -> p.Lla_obs.Span.span_id | None -> -1);
         trace = ctx.Lla_obs.Span.trace_id;
         kind;
         actor;
       });
  ctx

let spans_on (ctx : shard_ctx) =
  match ctx.sc_obs with Some o when o.Lla_obs.spans -> Some o | _ -> None

(* Announce one subtask latency to the agent hosting it; keyed by the
   subtask index so last-write-wins discards reordered stale values.
   [span] is the controller's alloc span (absent for the initial and
   safe-mode re-announcements, which are state repair, not reactions);
   an applied delivery parks the forwarded context on the agent for its
   next price span to consume. *)
let announce_latency ?span t (c : controller) i =
  let s = t.problem.subtasks.(i) in
  let a = t.agents.(s.resource) in
  let value = c.lat.(i) in
  send t ~key:i ?span ~from:c.c_ctx ~src:c.controller_endpoint
    ~src_gid:(t.n_resources + c.task) ~dst_gid:a.resource (fun sp ->
      (* Locate the agent's slot for this subtask. *)
      Array.iteri (fun slot j -> if j = i then a.lat_view.(slot) <- value) a.local_subtasks;
      match sp with Some ctx -> a.a_in_span <- Some ctx | None -> ())

let checkpoint_due period ~now last =
  match last with None -> true | Some at -> now -. at >= period -. 1e-9

let maybe_checkpoint_agent t (a : agent) =
  match (a.a_ctx.sc_checkpoint, t.resilience) with
  | Some cp, Some { checkpoint_period = Some period; _ } ->
    let now = Lla_sim.Engine.now a.a_ctx.sc_core in
    if checkpoint_due period ~now (Checkpoint.last_agent_save cp a.resource) then
      prof a.a_ctx "checkpoint" (fun () ->
          ignore
            (Checkpoint.save_agent cp a.resource ~now
               { Checkpoint.price = a.price; gamma = a.gamma; lat_view = a.lat_view }))
  | _ -> ()

let maybe_checkpoint_controller t (c : controller) =
  match (c.c_ctx.sc_checkpoint, t.resilience) with
  | Some cp, Some { checkpoint_period = Some period; _ } ->
    let now = Lla_sim.Engine.now c.c_ctx.sc_core in
    if checkpoint_due period ~now (Checkpoint.last_controller_save cp c.task) then
      prof c.c_ctx "checkpoint" (fun () ->
          ignore
            (Checkpoint.save_controller cp c.task ~now
               {
                 Checkpoint.mu_view = c.mu_view;
                 congested_view = c.congested_view;
                 lambda = own_lambda t c;
                 gamma_p = c.gamma_p;
               }))
  | _ -> ()

(* Agent tick: Eq. 8 from the announced latencies, then broadcast. *)
let agent_tick t (a : agent) =
  let ctx = a.a_ctx in
  prof ctx "price_update" @@ fun () ->
  Lla_obs.Metrics.incr ctx.sc_meters.m_price_rounds;
  (* A non-finite stored price can never recover through Eq. 8 (inf - x
     = inf, nan propagates), so any corruption that lands directly in
     [a.price] — a poisoned restore, fault injection — would otherwise
     persist forever: heal it to [mu0] like the other runtime guards. *)
  if not (Float.is_finite a.price) then begin
    Lla_obs.Metrics.incr ctx.sc_meters.m_guards;
    Lla_obs.emit_opt ctx.sc_obs ~at:(Lla_sim.Engine.now ctx.sc_core)
      (Lla_obs.Trace.Guard_fired { site = "distributed.agent.price" });
    a.price <- t.config.mu0
  end;
  let used = ref 0. in
  Array.iteri
    (fun slot i ->
      used :=
        !used +. Lla.Problem.effective_share t.problem i ~lat:a.lat_view.(slot) ~offset:t.offsets.(i))
    a.local_subtasks;
  let cap = t.problem.capacities.(a.resource) in
  (* A poisoned latency announcement must not become a non-finite price:
     skip the price update (keep broadcasting the last good price) and
     count the event. *)
  if not (Float.is_finite !used) then begin
    Lla_obs.Metrics.incr ctx.sc_meters.m_guards;
    Lla_obs.emit_opt ctx.sc_obs ~at:(Lla_sim.Engine.now ctx.sc_core)
      (Lla_obs.Trace.Guard_fired { site = "distributed.agent" })
  end
  else begin
    let congested = !used > cap +. 1e-12 in
    let step = a.gamma in
    a.price <- Float.max 0. (a.price -. (a.gamma *. (cap -. !used)));
    a.gamma <- adapt (resource_policy t.config.step_policy) a.gamma ~congested;
    Lla_obs.emit_opt ctx.sc_obs ~at:(Lla_sim.Engine.now ctx.sc_core)
      (Lla_obs.Trace.Price_updated
         {
           resource = a.resource;
           mu = a.price;
           step;
           share_sum = !used;
           capacity = cap;
           congested;
         });
    maybe_checkpoint_agent t a;
    let span =
      match spans_on ctx with
      | Some o ->
        let sctx =
          work_span o ~at:(Lla_sim.Engine.now ctx.sc_core) ~kind:"price"
            ~actor:(Transport.endpoint_name a.agent_endpoint) ~parent:a.a_in_span
            ~prev:a.a_prev_span
        in
        a.a_in_span <- None;
        a.a_prev_span <- Some sctx;
        Some sctx
      | None -> None
    in
    let price = a.price in
    List.iter
      (fun ti ->
        let c = t.controllers.(ti) in
        send t ~key:a.resource ?span ~from:ctx ~src:a.agent_endpoint ~src_gid:a.resource
          ~dst_gid:(t.n_resources + ti) (fun sp ->
            c.mu_view.(a.resource) <- price;
            c.congested_view.(a.resource) <- congested;
            match sp with
            | Some sctx ->
              c.c_price_span <- Some sctx;
              c.c_fresh_price <- true
            | None -> ()))
      a.controllers
  end

(* Controller tick: Eq. 9 for own paths, Eq. 7 for own subtasks, then
   announce the new latencies to the agents hosting them. In safe mode the
   optimization is frozen: the controller only re-announces the enacted
   (fallback) latencies so agents' views stay fresh — and so a restarted
   agent's view is repaired — while the price iteration settles. *)
let controller_tick t (c : controller) =
  let ctx = c.c_ctx in
  prof ctx "allocation" @@ fun () ->
  let info = t.problem.tasks.(c.task) in
  if in_safe_mode t then
    Array.iter (fun i -> announce_latency t c i) info.subtask_indices
  else begin
    Lla_obs.Metrics.incr ctx.sc_meters.m_allocation_rounds;
    let now = Lla_sim.Engine.now ctx.sc_core in
    Array.iteri
      (fun local p ->
        let path = t.problem.paths.(p) in
        let latency =
          Array.fold_left (fun acc i -> acc +. c.lat.(i)) 0. path.subtask_indices
        in
        let slack = 1. -. (latency /. path.critical_time) in
        let step = c.gamma_p.(local) in
        let next = Float.max 0. (c.lambda.(p) -. (step *. slack)) in
        (* Same guard as Price_update.update_path: never store a poisoned
           multiplier. *)
        if Float.is_finite next then begin
          c.lambda.(p) <- next;
          Lla_obs.emit_opt ctx.sc_obs ~at:now
            (Lla_obs.Trace.Path_price_updated
               { path = p; lambda = next; step; latency; critical_time = path.critical_time })
        end
        else begin
          Lla_obs.Metrics.incr ctx.sc_meters.m_guards;
          Lla_obs.emit_opt ctx.sc_obs ~at:now
            (Lla_obs.Trace.Guard_fired { site = "distributed.controller" })
        end;
        let any_congested =
          Array.exists (fun r -> c.congested_view.(r)) path.path_resources
        in
        c.gamma_p.(local) <-
          adapt (path_policy t.config.step_policy) c.gamma_p.(local)
            ~congested:any_congested)
      info.path_indices;
    let guards = ref 0 in
    prof ctx "solve" (fun () ->
        Lla.Allocation.allocate_task ?obs:ctx.sc_obs ~at:now t.problem c.task ~mu:c.mu_view
          ~lambda:c.lambda ~offsets:t.offsets ~sweeps:t.config.sweeps ~guards ~lat:c.lat);
    Lla_obs.Metrics.add ctx.sc_meters.m_guards !guards;
    (match ctx.sc_obs with
    | Some o ->
      (* Per-task utility, not the global total: recomputing the full
         objective on every solve costs more than all other emission
         combined, and the total is the sum of the latest per-task
         values anyway. *)
      Lla_obs.emit o ~at:now
        (Lla_obs.Trace.Allocation_solved
           { task = c.task; utility = Lla.Problem.task_utility t.problem c.task ~lat:c.lat })
    | None -> ());
    maybe_checkpoint_controller t c;
    let span =
      match spans_on ctx with
      | Some o ->
        let fresh = c.c_fresh_price in
        let sctx =
          work_span o ~at:now ~kind:"alloc"
            ~actor:(Transport.endpoint_name c.controller_endpoint)
            ~parent:(if fresh then c.c_price_span else None)
            ~prev:c.c_prev_span
        in
        (* The reaction closes here: price change at the agent (the
           origin timestamp forwarded through the message) to this
           applied allocation. Only solves that consumed a fresh price
           count — re-solves on stale views are not reactions. *)
        if fresh then begin
          (match c.c_price_span with
          | Some p ->
            Lla_obs.Metrics.observe ctx.sc_meters.m_control_latency
              (now -. p.Lla_obs.Span.origin)
          | None -> ());
          c.c_fresh_price <- false
        end;
        c.c_prev_span <- Some sctx;
        Some sctx
      | None -> None
    in
    Array.iter (fun i -> announce_latency ?span t c i) info.subtask_indices
  end

(* Safe-mode entry: enact the guaranteed-feasible fallback, heal any
   poisoned price state, and restart the controllers' dual state so the
   re-entered optimization begins from a clean point. Runs with every
   shard at rest (an ordinary event on the legacy path, a barrier op on a
   domains engine), so the cross-shard reads and writes are safe. *)
let enter_safe_mode t sm ~reason =
  Log.warn (fun m ->
      m "safe mode entered at %.0f ms (%s): clamping to %s" (Engine.now t.engine_h)
        reason (Safe_mode.fallback_source sm));
  Lla_obs.emit_opt t.obs ~at:(Engine.now t.engine_h)
    (Lla_obs.Trace.Safe_mode_entered { reason; fallback = Safe_mode.fallback_source sm });
  Array.blit (Safe_mode.fallback sm) 0 t.lat 0 (Array.length t.lat);
  (* Heal well below the watchdog's divergence threshold: a price that is
     finite but orders of magnitude above the dual scale (chaos campaigns
     found mu = 1e4 with mu_cap = 1e6) decays only by ~gamma per round, so
     it cannot recover within a safe-mode dwell and poisons every
     re-entered optimization — permanent enter/exit thrash. *)
  let mu_cap = (Safe_mode.config sm).Safe_mode.mu_cap in
  let heal_cap = Float.min mu_cap (1_000. *. Float.max 1. t.config.mu0) in
  Array.iter
    (fun a ->
      if (not (Float.is_finite a.price)) || a.price > heal_cap then a.price <- t.config.mu0;
      a.gamma <- initial_gamma (resource_policy t.config.step_policy);
      (* Repair the agent's latency view in place: announcements from down
         controllers may never arrive. *)
      Array.iteri (fun slot i -> a.lat_view.(slot) <- t.lat.(i)) a.local_subtasks)
    t.agents;
  Array.iter (fun c -> reset_controller t c) t.controllers;
  (* Re-announce so the (unlikely) in-flight stale latency messages are
     superseded under last-write-wins. *)
  Array.iter
    (fun c ->
      Array.iter (fun i -> announce_latency t c i) t.problem.tasks.(c.task).subtask_indices)
    t.controllers

(* Drain the per-shard monitor buffers into the sink, merged to the
   global (at, shard, seq) order. Runs only with all shards at rest (at
   a barrier, or after the run), which is also what makes reading the
   buffers race-free. *)
let flush_monitor t =
  match t.monitor with
  | Some m when Array.length t.monitor_bufs > 0 ->
    let chunks =
      Array.to_list
        (Array.map
           (fun buf ->
             let l = List.rev !buf in
             buf := [];
             l)
           t.monitor_bufs)
    in
    if List.exists (fun l -> l <> []) chunks then
      List.iter (Lla_obs.Monitor.sink m) (Lla_obs.Trace.merge chunks)
  | _ -> ()

let watchdog_observe t sm =
  let now = Engine.now t.engine_h in
  let mu = Array.map (fun a -> a.price) t.agents in
  match Safe_mode.observe sm ~now ~mu ~lat:t.lat ~offsets:t.offsets with
  | Some (Safe_mode.Entered { reason }) -> enter_safe_mode t sm ~reason
  | Some Safe_mode.Exited ->
    Log.info (fun m -> m "safe mode exited at %.0f ms: prices settled, re-optimizing" now);
    Lla_obs.emit_opt t.obs ~at:now Lla_obs.Trace.Safe_mode_exited
  | None -> ()

let start t =
  if t.started then invalid_arg "Distributed.start: already started";
  t.started <- true;
  (* Initial announcements so agents have a latency view before pricing. *)
  Array.iter
    (fun (c : controller) ->
      Array.iter (fun i -> announce_latency t c i) t.problem.tasks.(c.task).subtask_indices)
    t.controllers;
  (* Periodic ticks: a down actor skips its round (its endpoint neither
     computes nor sends) but the schedule keeps running so it resumes
     after a restart. The current event id is kept so {!stop} can cancel
     the loops. Each actor's loop lives on its own shard core. *)
  let rec agent_loop a =
    t.agent_ticks.(a.resource) <-
      Some
        (Lla_sim.Engine.schedule_after a.a_ctx.sc_core ~delay:t.config.resource_period (fun _ ->
             if not t.stopped then begin
               if Transport.is_up a.a_ctx.sc_transport a.agent_endpoint then agent_tick t a;
               agent_loop a
             end))
  in
  Array.iter agent_loop t.agents;
  let rec controller_loop c =
    t.controller_ticks.(c.task) <-
      Some
        (Lla_sim.Engine.schedule_after c.c_ctx.sc_core ~delay:t.config.controller_period (fun _ ->
             if not t.stopped then begin
               if Transport.is_up c.c_ctx.sc_transport c.controller_endpoint then
                 controller_tick t c;
               controller_loop c
             end))
  in
  Array.iter controller_loop t.controllers;
  Array.iter (fun ctx -> Option.iter Health.start ctx.sc_health) t.ctxs;
  (* Barrier-buffered monitor: drain every controller period, with all
     shards at rest (same self-rearming barrier pattern as the watchdog
     below). The cadence only bounds staleness of the live readouts —
     the merged feed itself is identical at any cadence. *)
  if Array.length t.monitor_bufs > 0 then begin
    let rec monitor_loop at =
      Engine.at_barrier t.engine_h ~at (fun () ->
          if not t.stopped then begin
            flush_monitor t;
            monitor_loop (Engine.now t.engine_h +. t.config.controller_period)
          end)
    in
    monitor_loop (Engine.now t.engine_h +. t.config.controller_period)
  end;
  match (t.safe_mode, t.resilience) with
  | Some sm, Some { watchdog_period; _ } -> (
    match t.engine_h with
    | Engine.Domains _ ->
      (* The watchdog reads every shard's prices and rewrites the shared
         latency vector: on a domains engine it must run as a barrier op,
         with all shards at rest. *)
      let rec watchdog_loop at =
        Engine.at_barrier t.engine_h ~at (fun () ->
            if not t.stopped then begin
              watchdog_observe t sm;
              watchdog_loop (Engine.now t.engine_h +. watchdog_period)
            end)
      in
      watchdog_loop (Engine.now t.engine_h +. watchdog_period)
    | Engine.Sim _ | Engine.Rt _ ->
      let rec watchdog_loop () =
        t.watchdog_tick <-
          Some
            (Lla_sim.Engine.schedule_after t.engine ~delay:watchdog_period (fun _ ->
                 if not t.stopped then begin
                   watchdog_observe t sm;
                   watchdog_loop ()
                 end))
      in
      watchdog_loop ())
  | _ -> ()

let stop t =
  if t.started && not t.stopped then begin
    t.stopped <- true;
    Array.iter
      (fun a ->
        Option.iter (Lla_sim.Engine.cancel a.a_ctx.sc_core) t.agent_ticks.(a.resource);
        t.agent_ticks.(a.resource) <- None)
      t.agents;
    Array.iter
      (fun c ->
        Option.iter (Lla_sim.Engine.cancel c.c_ctx.sc_core) t.controller_ticks.(c.task);
        t.controller_ticks.(c.task) <- None)
      t.controllers;
    Option.iter (Lla_sim.Engine.cancel t.engine) t.watchdog_tick;
    t.watchdog_tick <- None;
    Array.iter (fun ctx -> Option.iter Health.stop ctx.sc_health) t.ctxs;
    (* Records emitted after the last barrier drain would otherwise be
       lost to the online detectors; the shards are at rest once the
       run stops, so a direct final flush is safe. *)
    flush_monitor t
  end

let run t ~duration =
  if not t.started then start t;
  Engine.run_until t.engine_h (Engine.now t.engine_h +. duration);
  (* [run_until] leaves the shards at rest, so the tail of the stream —
     anything emitted since the last barrier drain — can flush now;
     monitor readouts are then current as of the run's horizon. *)
  flush_monitor t

let engine_handle t = t.engine_h

let shard_count t = Array.length t.ctxs

let transport t = t.transport

let transports t = Array.map (fun ctx -> ctx.sc_transport) t.ctxs

let agent_endpoint t rid = t.agents.(Lla.Problem.resource_index t.problem rid).agent_endpoint

let controller_endpoint t tid =
  t.controllers.(Lla.Problem.task_index t.problem tid).controller_endpoint

let agent_home t rid =
  let a = t.agents.(Lla.Problem.resource_index t.problem rid) in
  (a.a_ctx.sc_transport, a.agent_endpoint)

let controller_home t tid =
  let c = t.controllers.(Lla.Problem.task_index t.problem tid) in
  (c.c_ctx.sc_transport, c.controller_endpoint)

let schedule_injection t ~at f = Engine.at_barrier t.engine_h ~at f

let set_faults_all t faults =
  Array.iter (fun ctx -> Transport.set_faults ctx.sc_transport faults) t.ctxs

let set_extra_jitter_all t spread =
  Array.iter (fun ctx -> Transport.set_extra_jitter ctx.sc_transport spread) t.ctxs

let partition t ~at ~duration ~agents ~controllers =
  let in_a = Array.make t.n_actors false in
  List.iter (fun i -> in_a.(i) <- true) agents;
  List.iter (fun k -> in_a.(t.n_resources + k) <- true) controllers;
  Array.iter
    (fun ctx ->
      (* Materialize every remote shadow first: an endpoint created after
         the cut would otherwise bypass it. *)
      for gid = 0 to t.n_actors - 1 do
        let hctx, hep = home t gid in
        if hctx != ctx && not (Hashtbl.mem ctx.sc_shadows gid) then
          Hashtbl.add ctx.sc_shadows gid
            (Transport.endpoint ctx.sc_transport ~name:(Transport.endpoint_name hep))
      done;
      let group_a = ref [] in
      Array.iter
        (fun a ->
          if a.a_ctx == ctx && in_a.(a.resource) then group_a := a.agent_endpoint :: !group_a)
        t.agents;
      Array.iter
        (fun c ->
          if c.c_ctx == ctx && in_a.(t.n_resources + c.task) then
            group_a := c.controller_endpoint :: !group_a)
        t.controllers;
      Hashtbl.iter (fun gid ep -> if in_a.(gid) then group_a := ep :: !group_a) ctx.sc_shadows;
      let ga = !group_a in
      let gb =
        List.filter (fun ep -> not (List.memq ep ga)) (Transport.endpoints ctx.sc_transport)
      in
      Transport.partition ctx.sc_transport ~at ~duration ~group_a:ga ~group_b:gb)
    t.ctxs

let merged_records t =
  Lla_obs.Trace.merge
    (Array.to_list
       (Array.map (fun ctx -> match ctx.sc_reader with Some r -> r () | None -> []) t.ctxs))

let latency t sid = t.lat.(Lla.Problem.subtask_index t.problem sid)

let share t sid =
  let i = Lla.Problem.subtask_index t.problem sid in
  Lla.Problem.effective_share t.problem i ~lat:t.lat.(i) ~offset:t.offsets.(i)

let mu t rid = t.agents.(Lla.Problem.resource_index t.problem rid).price

let utility t = Lla.Problem.total_utility t.problem ~lat:t.lat

let sum_meter t f =
  Array.fold_left (fun acc ctx -> acc + Lla_obs.Metrics.value (f ctx.sc_meters)) 0 t.ctxs

let messages_sent t = sum_meter t (fun m -> m.m_messages)

let price_rounds t = sum_meter t (fun m -> m.m_price_rounds)

let allocation_rounds t = sum_meter t (fun m -> m.m_allocation_rounds)

let metrics t = t.registry

let merged_metrics t =
  Lla_obs.Shard_registry.merge
    (Lla_obs.Shard_registry.of_registries (Array.map (fun ctx -> ctx.sc_registry) t.ctxs))

let monitor t = t.monitor

let health t = t.ctxs.(0).sc_health

let checkpoint_store t = t.ctxs.(0).sc_checkpoint

let safe_mode_state t = Option.map Safe_mode.state t.safe_mode

let safe_entries t = match t.safe_mode with Some sm -> Safe_mode.entries sm | None -> 0

let safe_exits t = match t.safe_mode with Some sm -> Safe_mode.exits sm | None -> 0

let fallback_source t = Option.map Safe_mode.fallback_source t.safe_mode

let warm_restores t = sum_meter t (fun m -> m.m_warm_restores)

let cold_restarts t = sum_meter t (fun m -> m.m_cold_restarts)

let guard_events t = sum_meter t (fun m -> m.m_guards)

(* --- whole-node crash drill ------------------------------------------ *)

let journal_enabled t = t.journal <> None

let crash_stats (t : t) =
  {
    crashes = t.crashes;
    replayed = t.crash_replayed;
    refused = t.crash_refused;
    truncated_bytes = t.crash_truncated_bytes;
    warm = t.crash_warm;
    cold = t.crash_cold;
    resurrected = t.crash_resurrected;
    idempotent = t.crash_idempotent;
  }

let crash_restart t =
  let now = Lla_sim.Engine.now t.engine in
  (* the disk crashes first: the store's unsynced tail is discarded
     (surviving torn at a random offset per the fault config) before
     anything reads it back *)
  (match t.journal with
  | Some j -> Lla_durable.Journal.Store.crash (Lla_durable.Journal.store j)
  | None -> ());
  Lla_obs.emit_opt t.obs ~at:now
    (Lla_obs.Trace.Note { name = "node.crash"; value = float_of_int (t.crashes + 1) });
  (* RAM is gone: every shard's in-memory checkpoint slots vanish *)
  Array.iter (fun ctx -> Option.iter Checkpoint.clear ctx.sc_checkpoint) t.ctxs;
  (* shard 0 replays the journal; a second replay over the same bytes
     must restore identical accepted/refused counts (slot records are
     last-write-wins), which the recovery oracle checks *)
  (match t.ctxs.(0).sc_checkpoint with
  | Some cp -> (
    match Checkpoint.recover cp ~now with
    | Some r ->
      t.crash_replayed <- t.crash_replayed + r.Lla_durable.Recovery.applied;
      t.crash_refused <- t.crash_refused + r.Lla_durable.Recovery.refused;
      t.crash_truncated_bytes <- t.crash_truncated_bytes + r.Lla_durable.Recovery.truncated_bytes;
      (match Checkpoint.recover cp ~now with
      | Some r2 ->
        if
          r2.Lla_durable.Recovery.applied <> r.Lla_durable.Recovery.applied
          || r2.Lla_durable.Recovery.refused <> r.Lla_durable.Recovery.refused
        then t.crash_idempotent <- false
      | None -> ())
    | None -> ())
  | None -> ());
  (* restart every actor in place (transport endpoints stay up — the
     process died, not the links); meter deltas attribute the warm/cold
     split to this crash *)
  let warm0 = warm_restores t and cold0 = cold_restarts t in
  Array.iter (fun a -> restart_agent t a) t.agents;
  Array.iter (fun c -> restart_controller t c) t.controllers;
  t.crash_warm <- t.crash_warm + (warm_restores t - warm0);
  t.crash_cold <- t.crash_cold + (cold_restarts t - cold0);
  (* resurrection check: the save path refuses non-finite snapshots, so
     nothing non-finite may come back from a recovery *)
  Array.iter
    (fun a ->
      if not (Float.is_finite a.price && Float.is_finite a.gamma) then
        t.crash_resurrected <- t.crash_resurrected + 1)
    t.agents;
  Array.iter
    (fun c ->
      if not (Array.for_all Float.is_finite c.mu_view && Array.for_all Float.is_finite c.gamma_p)
      then t.crash_resurrected <- t.crash_resurrected + 1)
    t.controllers;
  t.crashes <- t.crashes + 1

(* Chaos-injection hooks. These overwrite live state exactly as a corrupted
   message or a drifted plant model would, so the regular iteration (and the
   finite-value guards) process the poison on the next tick. On a domains
   engine call them with the shards at rest — from setup, between runs, or
   inside a {!schedule_injection} callback. *)

let poison_price t rid value =
  t.agents.(Lla.Problem.resource_index t.problem rid).price <- value

let set_error_offset t sid value =
  t.offsets.(Lla.Problem.subtask_index t.problem sid) <- value

let error_offset t sid = t.offsets.(Lla.Problem.subtask_index t.problem sid)
