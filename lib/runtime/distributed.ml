module Transport = Lla_transport.Transport
module Delay_model = Lla_transport.Delay_model

type config = {
  message_delay : float;
  controller_period : float;
  resource_period : float;
  step_policy : Lla.Step_size.policy;
  mu0 : float;
  sweeps : int;
}

let default_config =
  {
    message_delay = 1.0;
    controller_period = 10.0;
    resource_period = 10.0;
    step_policy = Lla.Step_size.adaptive ~initial:1.0 ();
    mu0 = 1.0;
    sweeps = 2;
  }

(* Per-resource price agent: owns mu_r and its adaptive step size; sees
   only the latencies announced for its own subtasks. *)
type agent = {
  resource : int;
  mutable price : float;
  mutable gamma : float;
  lat_view : float array;  (* latest announced latency per local subtask slot *)
  local_subtasks : int array;  (* problem subtask indices on this resource *)
  controllers : int list;  (* task indices to notify *)
  agent_endpoint : Transport.endpoint;
}

(* Per-task controller: owns its path prices and a stale view of resource
   prices. Writes only its own subtasks' latency slots. *)
type controller = {
  task : int;
  mu_view : float array;  (* indexed by resource *)
  congested_view : bool array;
  lambda : float array;  (* indexed by global path id; only own paths used *)
  gamma_p : float array;  (* per own path *)
  lat : float array;  (* shared storage; controller writes only own slots *)
  controller_endpoint : Transport.endpoint;
}

type t = {
  config : config;
  engine : Lla_sim.Engine.t;
  transport : Transport.t;
  problem : Lla.Problem.t;
  agents : agent array;
  controllers : controller array;
  offsets : float array;
  lat : float array;  (* controller-written latency vector *)
  agent_ticks : Lla_sim.Engine.event_id option array;
  controller_ticks : Lla_sim.Engine.event_id option array;
  mutable messages : int;
  mutable price_rounds : int;
  mutable allocation_rounds : int;
  mutable started : bool;
  mutable stopped : bool;
}

let initial_gamma policy =
  match (policy : Lla.Step_size.policy) with
  | Lla.Step_size.Fixed g -> g
  | Lla.Step_size.Adaptive { initial; _ } -> initial

let adapt policy gamma ~congested =
  match (policy : Lla.Step_size.policy) with
  | Lla.Step_size.Fixed g -> g
  | Lla.Step_size.Adaptive { initial; multiplier; cap } ->
    if congested then Float.min cap (gamma *. multiplier) else initial

(* A restarted agent has lost its price state: it restarts from mu0 and the
   compiled initial latency view, rebuilding both from the next received
   Latency messages (§4.1 asynchrony made crash-tolerant). *)
let reset_agent t (a : agent) =
  a.price <- t.config.mu0;
  a.gamma <- initial_gamma t.config.step_policy;
  Array.iteri (fun slot i -> a.lat_view.(slot) <- t.problem.subtasks.(i).lat_hi) a.local_subtasks

(* A restarted controller forgets its price views and path multipliers; the
   latency assignment itself (t.lat) is enacted state in the data plane and
   survives the controller's crash. *)
let reset_controller t (c : controller) =
  Array.fill c.mu_view 0 (Array.length c.mu_view) t.config.mu0;
  Array.fill c.congested_view 0 (Array.length c.congested_view) false;
  Array.iter (fun p -> c.lambda.(p) <- 0.) t.problem.tasks.(c.task).path_indices;
  Array.fill c.gamma_p 0 (Array.length c.gamma_p) (initial_gamma t.config.step_policy)

let create ?(config = default_config) ?transport engine workload =
  let transport =
    match transport with
    | Some tr ->
      if not (Transport.engine tr == engine) then
        invalid_arg "Distributed.create: transport runs on a different engine";
      tr
    | None ->
      Transport.create engine
        ~config:
          { Transport.default_config with delay = Delay_model.constant config.message_delay }
  in
  let problem = Lla.Problem.compile workload in
  let n_subtasks = Lla.Problem.n_subtasks problem in
  let n_resources = Lla.Problem.n_resources problem in
  let lat = Array.init n_subtasks (fun i -> problem.subtasks.(i).lat_hi) in
  let agents =
    Array.init n_resources (fun r ->
        let local = problem.by_resource.(r) in
        let controllers =
          Array.to_list local
          |> List.map (fun i -> problem.subtasks.(i).task)
          |> List.sort_uniq Int.compare
        in
        {
          resource = r;
          price = config.mu0;
          gamma = initial_gamma config.step_policy;
          lat_view = Array.map (fun i -> lat.(i)) local;
          local_subtasks = local;
          controllers;
          agent_endpoint = Transport.endpoint transport ~name:(Printf.sprintf "agent:%d" r);
        })
  in
  let controllers =
    Array.init (Lla.Problem.n_tasks problem) (fun ti ->
        {
          task = ti;
          mu_view = Array.make n_resources config.mu0;
          congested_view = Array.make n_resources false;
          lambda = Array.make (Lla.Problem.n_paths problem) 0.;
          gamma_p =
            Array.make
              (Array.length problem.tasks.(ti).path_indices)
              (initial_gamma config.step_policy);
          lat;
          controller_endpoint =
            Transport.endpoint transport ~name:(Printf.sprintf "controller:%d" ti);
        })
  in
  let t =
    {
      config;
      engine;
      transport;
      problem;
      agents;
      controllers;
      offsets = Array.make n_subtasks 0.;
      lat;
      agent_ticks = Array.make n_resources None;
      controller_ticks = Array.make (Array.length controllers) None;
      messages = 0;
      price_rounds = 0;
      allocation_rounds = 0;
      started = false;
      stopped = false;
    }
  in
  Array.iter
    (fun a -> Transport.on_restart transport a.agent_endpoint (fun () -> reset_agent t a))
    agents;
  Array.iter
    (fun c -> Transport.on_restart transport c.controller_endpoint (fun () -> reset_controller t c))
    controllers;
  t

let send ?key t ~src ~dst f =
  t.messages <- t.messages + 1;
  Transport.send ?key t.transport ~src ~dst f

(* Announce one subtask latency to the agent hosting it; keyed by the
   subtask index so last-write-wins discards reordered stale values. *)
let announce_latency t (c : controller) i =
  let s = t.problem.subtasks.(i) in
  let a = t.agents.(s.resource) in
  let value = c.lat.(i) in
  send t ~key:i ~src:c.controller_endpoint ~dst:a.agent_endpoint (fun () ->
      (* Locate the agent's slot for this subtask. *)
      Array.iteri (fun slot j -> if j = i then a.lat_view.(slot) <- value) a.local_subtasks)

(* Agent tick: Eq. 8 from the announced latencies, then broadcast. *)
let agent_tick t (a : agent) =
  t.price_rounds <- t.price_rounds + 1;
  let used = ref 0. in
  Array.iteri
    (fun slot i ->
      used :=
        !used +. Lla.Problem.effective_share t.problem i ~lat:a.lat_view.(slot) ~offset:t.offsets.(i))
    a.local_subtasks;
  let cap = t.problem.capacities.(a.resource) in
  let congested = !used > cap +. 1e-12 in
  a.price <- Float.max 0. (a.price -. (a.gamma *. (cap -. !used)));
  a.gamma <- adapt t.config.step_policy a.gamma ~congested;
  let price = a.price in
  List.iter
    (fun ti ->
      let c = t.controllers.(ti) in
      send t ~key:a.resource ~src:a.agent_endpoint ~dst:c.controller_endpoint (fun () ->
          c.mu_view.(a.resource) <- price;
          c.congested_view.(a.resource) <- congested))
    a.controllers

(* Controller tick: Eq. 9 for own paths, Eq. 7 for own subtasks, then
   announce the new latencies to the agents hosting them. *)
let controller_tick t (c : controller) =
  t.allocation_rounds <- t.allocation_rounds + 1;
  let info = t.problem.tasks.(c.task) in
  Array.iteri
    (fun local p ->
      let path = t.problem.paths.(p) in
      let latency =
        Array.fold_left (fun acc i -> acc +. c.lat.(i)) 0. path.subtask_indices
      in
      let slack = 1. -. (latency /. path.critical_time) in
      c.lambda.(p) <- Float.max 0. (c.lambda.(p) -. (c.gamma_p.(local) *. slack));
      let any_congested =
        Array.exists (fun r -> c.congested_view.(r)) path.path_resources
      in
      c.gamma_p.(local) <- adapt t.config.step_policy c.gamma_p.(local) ~congested:any_congested)
    info.path_indices;
  Lla.Allocation.allocate_task t.problem c.task ~mu:c.mu_view ~lambda:c.lambda ~offsets:t.offsets
    ~sweeps:t.config.sweeps ~lat:c.lat;
  Array.iter (fun i -> announce_latency t c i) info.subtask_indices

let start t =
  if t.started then invalid_arg "Distributed.start: already started";
  t.started <- true;
  (* Initial announcements so agents have a latency view before pricing. *)
  Array.iter
    (fun (c : controller) ->
      Array.iter (fun i -> announce_latency t c i) t.problem.tasks.(c.task).subtask_indices)
    t.controllers;
  (* Periodic ticks: a down actor skips its round (its endpoint neither
     computes nor sends) but the schedule keeps running so it resumes
     after a restart. The current event id is kept so {!stop} can cancel
     the loops. *)
  let rec agent_loop a =
    t.agent_ticks.(a.resource) <-
      Some
        (Lla_sim.Engine.schedule_after t.engine ~delay:t.config.resource_period (fun _ ->
             if not t.stopped then begin
               if Transport.is_up t.transport a.agent_endpoint then agent_tick t a;
               agent_loop a
             end))
  in
  Array.iter agent_loop t.agents;
  let rec controller_loop c =
    t.controller_ticks.(c.task) <-
      Some
        (Lla_sim.Engine.schedule_after t.engine ~delay:t.config.controller_period (fun _ ->
             if not t.stopped then begin
               if Transport.is_up t.transport c.controller_endpoint then controller_tick t c;
               controller_loop c
             end))
  in
  Array.iter controller_loop t.controllers

let stop t =
  if t.started && not t.stopped then begin
    t.stopped <- true;
    let cancel ticks i =
      Option.iter (Lla_sim.Engine.cancel t.engine) ticks.(i);
      ticks.(i) <- None
    in
    Array.iteri (fun i _ -> cancel t.agent_ticks i) t.agent_ticks;
    Array.iteri (fun i _ -> cancel t.controller_ticks i) t.controller_ticks
  end

let run t ~duration =
  if not t.started then start t;
  Lla_sim.Engine.run_until t.engine (Lla_sim.Engine.now t.engine +. duration)

let transport t = t.transport

let agent_endpoint t rid = t.agents.(Lla.Problem.resource_index t.problem rid).agent_endpoint

let controller_endpoint t tid =
  t.controllers.(Lla.Problem.task_index t.problem tid).controller_endpoint

let latency t sid = t.lat.(Lla.Problem.subtask_index t.problem sid)

let share t sid =
  let i = Lla.Problem.subtask_index t.problem sid in
  Lla.Problem.effective_share t.problem i ~lat:t.lat.(i) ~offset:t.offsets.(i)

let mu t rid = t.agents.(Lla.Problem.resource_index t.problem rid).price

let utility t = Lla.Problem.total_utility t.problem ~lat:t.lat

let messages_sent t = t.messages

let price_rounds t = t.price_rounds

let allocation_rounds t = t.allocation_rounds
