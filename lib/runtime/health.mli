(** Heartbeat failure detection over the fault-injecting transport.

    Each watched endpoint periodically sends a heartbeat message {e
    through} the transport to the detector's own endpoint, so heartbeats
    are subject to the same crash / partition / drop / delay faults as the
    control traffic they stand in for: a crashed endpoint stops beating
    because the transport refuses sends from a down source, and a
    partitioned one because its heartbeats are cut. A periodic sweep marks
    an endpoint {e suspect} once no heartbeat has arrived for [timeout]
    ms, and the next heartbeat received from a suspect flips it back to
    {e alive} — a simple deadline detector (the timeout plays the role of
    the phi threshold in accrual detectors).

    Detection latency is bounded by
    [timeout + heartbeat_period + check_period + delivery delay]; under a
    zero-fault transport with [timeout > heartbeat_period + delay] the
    detector never produces a false suspicion (tested).

    The detector itself runs directly on the engine (the observer is
    assumed reliable); only the heartbeats travel the faulty network. *)

type config = {
  heartbeat_period : float;  (** ms between heartbeats per watched endpoint. *)
  timeout : float;
      (** silence (ms) after which an endpoint is suspected. Must exceed
          [heartbeat_period] plus the expected delivery delay, or healthy
          endpoints will be flagged. *)
  check_period : float;  (** ms between detector sweeps. *)
}

val default_config : config
(** 50 ms heartbeats, 250 ms timeout, 25 ms sweeps. *)

type status = Alive | Suspect

type t

val create :
  ?obs:Lla_obs.t -> ?config:config -> ?name:string -> Lla_transport.Transport.t -> t
(** Registers one detector endpoint named [name] (default ["health"]) on
    the transport. [obs] makes every status transition emit a
    {!Lla_obs.Trace.Health_transition} record before the callbacks run. *)

val config : t -> config

val detector_endpoint : t -> Lla_transport.Transport.endpoint
(** The endpoint heartbeats are addressed to — partition it away from the
    watched endpoints to simulate an observer cut off from the system. *)

val watch : t -> Lla_transport.Transport.endpoint -> unit
(** Start monitoring an endpoint (idempotent). Watches added after
    {!start} begin heartbeating immediately. *)

val watched : t -> Lla_transport.Transport.endpoint list
(** In watch order. *)

val on_transition : t -> (Lla_transport.Transport.endpoint -> status -> now:float -> unit) -> unit
(** Called on every alive->suspect and suspect->alive transition, in
    registration order. *)

val start : t -> unit
(** Begin heartbeating and sweeping.
    @raise Invalid_argument when already started. *)

val stop : t -> unit
(** Cancel all periodic events so the engine can drain. Idempotent; no-op
    before {!start}. *)

val status : t -> Lla_transport.Transport.endpoint -> status
(** @raise Invalid_argument for an endpoint that is not watched. *)

val suspects : t -> Lla_transport.Transport.endpoint list
(** Currently suspected endpoints, in watch order. *)

val heartbeats_received : t -> int

val suspicions : t -> int
(** Total alive->suspect transitions so far. *)

val recoveries : t -> int
(** Total suspect->alive transitions so far. *)
