(** Pluggable runtime engine: the clock + message scheduler behind
    {!Distributed}, {!Optimizer_loop}, [Lla_soak.Soak] and
    [Lla_chaos.Campaign].

    Three implementations share the {!Lla_sim.Engine} scheduling core:

    - {!Engine_sim} — the deterministic single-threaded simulator.
      Golden traces through this engine are bit-for-bit the
      pre-interface ones ({!of_core} wraps a caller-owned core).
    - {!Engine_domains} — OCaml 5 domains-parallel: actors shard
      across a configurable domain pool, each shard running a private
      core in lockstep quanta; cross-shard traffic crosses at barriers,
      totally ordered by [(at, channel, seq)] in deterministic-merge
      mode so replays reproduce bit-for-bit.
    - {!Engine_rt} — a wall-clock real-time stub: same core, paced
      against real time by a speedup factor.

    The variants are exposed: shard topology and barrier scheduling are
    capabilities the runtime wires differently per engine, not details
    to hide. *)

type t =
  | Sim of Engine_sim.t
  | Domains of Engine_domains.t
  | Rt of Engine_rt.t

type kind = [ `Sim | `Domains | `Rt ]

(** {1 Constructors} *)

val sim : ?start_time:float -> unit -> t

val of_core : Lla_sim.Engine.t -> t
(** A sim engine over an existing caller-owned core — the
    compatibility path for code that already holds a
    [Lla_sim.Engine.t]. *)

val domains :
  ?domains:int -> ?quantum:float -> ?deterministic:bool -> ?start_time:float -> unit -> t
(** See {!Engine_domains.create}. *)

val rt : ?speedup:float -> ?start_time:float -> unit -> t
(** See {!Engine_rt.create}. *)

(** {1 Common surface} *)

val kind : t -> kind

val name : t -> string
(** ["sim"] / ["domains"] / ["rt"] — the tag benchmark snapshots stamp. *)

val shards : t -> int
(** 1 for sim/rt. *)

val core : t -> shard:int -> Lla_sim.Engine.t
(** Shard [shard]'s scheduling core. @raise Invalid_argument for a
    nonzero shard on a single-shard engine. *)

val now : t -> float
(** Sim/rt: the core clock. Domains: the barrier clock. *)

val run_until : t -> float -> unit

val drain : t -> unit
(** Fire whatever remains (post-[stop] flush). *)

val pending : t -> int

val events_fired : t -> int

(** {1 Sharded capabilities}

    On single-shard engines these degrade to plain scheduling on the
    core (shard arguments must be 0), so engine-generic runtime code
    can use them unconditionally. *)

val post : t -> from:int -> shard:int -> at:float -> channel:int -> (unit -> unit) -> unit
(** See {!Engine_domains.post}. *)

val at_barrier : t -> at:float -> (unit -> unit) -> unit
(** See {!Engine_domains.at_barrier}. On sim/rt this is an ordinary
    scheduled event at [max at now]. *)

val shutdown : t -> unit
(** Join worker domains (domains engine); no-op otherwise. Always safe
    to call. *)
