type config = {
  mu_cap : float;
  infeasibility_tolerance : float;
  violation_rounds : int;
  oscillation_window : int;
  oscillation_threshold : float;
  min_reversals : int;
  warmup_rounds : int;
  reentry_grace_rounds : int;
  settle_threshold : float;
  settle_rounds : int;
  min_safe_time : float;
}

let default_config =
  {
    mu_cap = 1e6;
    infeasibility_tolerance = 0.05;
    violation_rounds = 10;
    oscillation_window = 32;
    oscillation_threshold = 0.2;
    min_reversals = 8;
    warmup_rounds = 500;
    (* = warmup_rounds: entry resets prices and controller dual state to
       the cold point, so the post-exit transient is a full cold
       transient. A 50-round grace left the infeasibility detector arming
       mid-transient and re-tripping at exit+600 ms forever (campaign
       repro: price poison, base workload). *)
    reentry_grace_rounds = 500;
    settle_threshold = 0.02;
    settle_rounds = 10;
    min_safe_time = 1_000.;
  }

type state = Optimizing | Safe of { since : float; reason : string }

type event =
  | Entered of { reason : string }
  | Exited

type t = {
  config : config;
  obs : Lla_obs.t option;
  problem : Lla.Problem.t;
  fallback : float array;
  fallback_source : string;
  fallback_guaranteed : bool;
  mutable state : state;
  mutable grace : int;  (* detector-silence observations remaining *)
  mutable violation_streak : int;
  window : float array;  (* utility ring buffer *)
  mutable window_len : int;
  mutable window_pos : int;
  prev_mu : float array;
  mutable settled_streak : int;
  mutable entries : int;
  mutable exits : int;
}

let of_assignment (problem : Lla.Problem.t) assignment =
  Array.map (fun (s : Lla.Problem.subtask) -> assignment s.Lla.Problem.sid) problem.subtasks

(* The fallback must hold Eq. 3 and Eq. 4 on THIS workload, not in general:
   the slicing heuristics guarantee deadlines by construction but can
   oversubscribe a tight resource, in which case an offline solver run is
   the next candidate. Selection happens once, at create time — safe mode
   must not depend on online state that may itself be poisoned. *)
let select_fallback (problem : Lla.Problem.t) =
  let workload = problem.Lla.Problem.workload in
  let feasible_slice kind =
    let a = Lla_baseline.Slicing.get kind workload in
    if
      Lla_baseline.Slicing.respects_resources workload a
      && Lla_baseline.Slicing.respects_deadlines workload a
    then Some (of_assignment problem a, Lla_baseline.Slicing.name_of kind, true)
    else None
  in
  let rec first_slice = function
    | [] -> None
    | kind :: rest ->
      (match feasible_slice kind with Some r -> Some r | None -> first_slice rest)
  in
  match first_slice [ `Proportional; `Laxity; `Equal ] with
  | Some r -> r
  | None ->
    let solver = Lla.Solver.create workload in
    ignore (Lla.Solver.run_until_converged solver ~max_iterations:4000);
    if Lla.Solver.feasible solver then
      (Array.copy (Lla.Solver.lat_array solver), "offline-solver", true)
    else
      ( of_assignment problem (Lla_baseline.Slicing.proportional_slice workload),
        "proportional-best-effort",
        false )

let create ?obs ?(config = default_config) problem =
  if config.violation_rounds <= 0 || config.settle_rounds <= 0 then
    invalid_arg "Safe_mode.create: non-positive round count";
  if config.oscillation_window < 4 then
    invalid_arg "Safe_mode.create: oscillation_window < 4";
  let fallback, fallback_source, fallback_guaranteed = select_fallback problem in
  {
    config;
    obs;
    problem;
    fallback;
    fallback_source;
    fallback_guaranteed;
    state = Optimizing;
    grace = config.warmup_rounds;
    violation_streak = 0;
    window = Array.make config.oscillation_window 0.;
    window_len = 0;
    window_pos = 0;
    (* infinity: the first observation can never look settled. *)
    prev_mu = Array.make (Lla.Problem.n_resources problem) infinity;
    settled_streak = 0;
    entries = 0;
    exits = 0;
  }

let config t = t.config

let state t = t.state

let in_safe_mode t = match t.state with Safe _ -> true | Optimizing -> false

let fallback t = Array.copy t.fallback

let fallback_source t = t.fallback_source

let fallback_guaranteed t = t.fallback_guaranteed

let entries t = t.entries

let exits t = t.exits

let push_utility t u =
  t.window.(t.window_pos) <- u;
  t.window_pos <- (t.window_pos + 1) mod Array.length t.window;
  if t.window_len < Array.length t.window then t.window_len <- t.window_len + 1

let reset_optimizing_detectors t =
  t.violation_streak <- 0;
  t.window_len <- 0;
  t.window_pos <- 0

(* Chronological fold over the ring buffer. *)
let fold_window t f init =
  let n = Array.length t.window in
  let start = (t.window_pos - t.window_len + n) mod n in
  let acc = ref init in
  for k = 0 to t.window_len - 1 do
    acc := f !acc t.window.((start + k) mod n)
  done;
  !acc

let oscillating t =
  t.window_len = Array.length t.window
  &&
  let lo, hi, sum =
    fold_window t
      (fun (lo, hi, sum) u -> (Float.min lo u, Float.max hi u, sum +. u))
      (infinity, neg_infinity, 0.)
  in
  let mean = sum /. float_of_int t.window_len in
  let spread = (hi -. lo) /. Float.max 1. (Float.abs mean) in
  spread > t.config.oscillation_threshold
  &&
  (* Count direction reversals of the utility trajectory: a monotone
     transient has a large spread but ~no reversals. *)
  let _, _, reversals =
    fold_window t
      (fun (prev, dir, count) u ->
        match prev with
        | None -> (Some u, 0, count)
        | Some p ->
          let d = compare u p in
          if d = 0 then (Some u, dir, count)
          else if dir <> 0 && d <> dir then (Some u, d, count + 1)
          else (Some u, d, count))
      (None, 0, 0)
  in
  reversals >= t.config.min_reversals

let violating t ~lat ~offsets =
  let p = t.problem in
  let tol = 1. +. t.config.infeasibility_tolerance in
  let resource_violated =
    let n = Lla.Problem.n_resources p in
    let rec loop r =
      r < n
      && (Lla.Problem.share_sum p r ~lat ~offsets > p.Lla.Problem.capacities.(r) *. tol
         || loop (r + 1))
    in
    loop 0
  in
  resource_violated
  ||
  let n = Lla.Problem.n_paths p in
  let rec loop i =
    i < n
    &&
    let path = p.Lla.Problem.paths.(i) in
    Lla.Problem.path_latency p i ~lat > path.Lla.Problem.critical_time *. tol || loop (i + 1)
  in
  loop 0

let enter t ~now ~reason =
  (* The trip record precedes the runtime's Safe_mode_entered record: an
     entry without a preceding trip in a trace is an invariant violation
     (see Lla_obs.Invariant.safe_entries_preceded_by_trip). *)
  Lla_obs.emit_opt t.obs ~at:now (Lla_obs.Trace.Watchdog_trip { reason });
  t.state <- Safe { since = now; reason };
  t.entries <- t.entries + 1;
  t.settled_streak <- 0;
  Some (Entered { reason })

let observe_optimizing t ~now ~mu ~utility ~violating_now =
  (* The streak and oscillation detectors only arm after the grace period:
     a cold start on a tight workload is legitimately infeasible for
     seconds while prices find the constraint surface (measured: >5%
     streaks of ~2 s on the paper workload), and clamping a converging
     transient would make safe mode a steady-state oscillator. The
     non-finite / price-cap trip below stays armed throughout. *)
  let silent = t.grace > 0 in
  if silent then t.grace <- t.grace - 1;
  let price_blown =
    Array.exists (fun m -> (not (Float.is_finite m)) || m > t.config.mu_cap) mu
  in
  if price_blown || not (Float.is_finite utility) then
    enter t ~now
      ~reason:(if price_blown then "price divergence" else "non-finite utility")
  else begin
    push_utility t utility;
    if (not silent) && violating_now () then t.violation_streak <- t.violation_streak + 1
    else t.violation_streak <- 0;
    if t.violation_streak >= t.config.violation_rounds then
      enter t ~now ~reason:"sustained infeasibility"
    else if (not silent) && oscillating t then enter t ~now ~reason:"utility oscillation"
    else None
  end

let observe_safe t ~now ~since ~mu =
  (* Settled = no resource price moved more than settle_threshold relative
     since the previous observation. Non-finite prices never settle. *)
  let n = Array.length mu in
  let settled = ref true in
  for r = 0 to n - 1 do
    let m = mu.(r) and p = t.prev_mu.(r) in
    if
      (not (Float.is_finite m))
      || not (Float.abs (m -. p) <= t.config.settle_threshold *. Float.max 1. (Float.abs p))
    then settled := false
  done;
  if !settled then t.settled_streak <- t.settled_streak + 1 else t.settled_streak <- 0;
  if
    t.settled_streak >= t.config.settle_rounds
    && now -. since >= t.config.min_safe_time
  then begin
    t.state <- Optimizing;
    t.exits <- t.exits + 1;
    t.grace <- t.config.reentry_grace_rounds;
    reset_optimizing_detectors t;
    Some Exited
  end
  else None

let observe_core t ~now ~mu ~utility ~violating_now =
  if Array.length mu <> Array.length t.prev_mu then
    invalid_arg "Safe_mode.observe: mu length mismatch";
  let event =
    match t.state with
    | Optimizing ->
      let e = observe_optimizing t ~now ~mu ~utility ~violating_now in
      (match e with Some (Entered _) -> reset_optimizing_detectors t | _ -> ());
      e
    | Safe { since; _ } -> observe_safe t ~now ~since ~mu
  in
  (* Track prices across observations for the settle detector. *)
  Array.blit mu 0 t.prev_mu 0 (Array.length mu);
  event

let observe t ~now ~mu ~lat ~offsets =
  observe_core t ~now ~mu
    ~utility:(Lla.Problem.total_utility t.problem ~lat)
    ~violating_now:(fun () -> violating t ~lat ~offsets)

let observe_signals t ~now ~mu ~feasible ~utility =
  observe_core t ~now ~mu ~utility ~violating_now:(fun () -> not feasible)
