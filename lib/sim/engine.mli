(** Discrete-event simulation engine.

    A single-threaded event loop over simulated time (ms). Events at equal
    times fire in scheduling order (deterministic tie-break by sequence
    number), so simulations are reproducible. *)

type t

type event_id

val create : ?start_time:float -> unit -> t

val now : t -> float

val schedule : t -> at:float -> (t -> unit) -> event_id
(** Schedule a callback at absolute time [at].
    @raise Invalid_argument when [at] is in the past. *)

val schedule_after : t -> delay:float -> (t -> unit) -> event_id
(** Schedule after a non-negative [delay] from {!now}. *)

val cancel : t -> event_id -> unit
(** Cancelling an already-fired or cancelled event is a no-op. *)

val cancelled : t -> event_id -> bool

val step : t -> bool
(** Fire the earliest pending event; [false] when none remain. *)

val run_until : t -> float -> unit
(** Fire every event with time <= the horizon, then advance {!now} to the
    horizon. *)

val run : t -> ?max_events:int -> unit -> unit
(** Fire events until none remain (or [max_events] fired). *)

val pending : t -> int
(** Number of live (non-cancelled) scheduled events. *)

val next_time : t -> float option
(** Time of the earliest live pending event, without firing it. The
    wall-clock and domains-parallel engines use this to pace and to
    bound their quantum loops. *)

val events_fired : t -> int
