type event = {
  time : float;
  seq : int;
  action : t -> unit;
  mutable live : bool;
}

and t = {
  mutable clock : float;
  mutable next_seq : int;
  mutable live_count : int;
  mutable fired : int;
  queue : event Lla_stdx.Heap.t;
}

type event_id = event

let compare_events a b =
  match Float.compare a.time b.time with 0 -> Int.compare a.seq b.seq | c -> c

let create ?(start_time = 0.) () =
  {
    clock = start_time;
    next_seq = 0;
    live_count = 0;
    fired = 0;
    queue = Lla_stdx.Heap.create ~cmp:compare_events;
  }

let now t = t.clock

let schedule t ~at action =
  if at < t.clock then
    invalid_arg (Printf.sprintf "Engine.schedule: time %g is before now (%g)" at t.clock);
  let event = { time = at; seq = t.next_seq; action; live = true } in
  t.next_seq <- t.next_seq + 1;
  t.live_count <- t.live_count + 1;
  Lla_stdx.Heap.push t.queue event;
  event

let schedule_after t ~delay action =
  if delay < 0. then invalid_arg "Engine.schedule_after: negative delay";
  schedule t ~at:(t.clock +. delay) action

let cancel t event =
  if event.live then begin
    event.live <- false;
    t.live_count <- t.live_count - 1
  end

let cancelled _ event = not event.live

let rec step t =
  match Lla_stdx.Heap.pop t.queue with
  | None -> false
  | Some event when not event.live -> step t
  | Some event ->
    event.live <- false;
    t.live_count <- t.live_count - 1;
    t.clock <- event.time;
    t.fired <- t.fired + 1;
    event.action t;
    true

let run_until t horizon =
  if horizon < t.clock then invalid_arg "Engine.run_until: horizon is in the past";
  let rec loop () =
    match Lla_stdx.Heap.peek t.queue with
    | Some event when event.time <= horizon ->
      ignore (step t);
      loop ()
    | Some _ | None -> ()
  in
  loop ();
  t.clock <- horizon

let run t ?(max_events = max_int) () =
  let rec loop remaining = if remaining > 0 && step t then loop (remaining - 1) in
  loop max_events

let pending t = t.live_count

let next_time t =
  (* Dead events are popped here rather than skipped so repeated peeks on
     a cancel-heavy queue stay amortized O(log n); [step] tolerates the
     missing entries (it skips dead events anyway). *)
  let rec peek () =
    match Lla_stdx.Heap.peek t.queue with
    | Some e when not e.live ->
      ignore (Lla_stdx.Heap.pop t.queue);
      peek ()
    | Some e -> Some e.time
    | None -> None
  in
  peek ()

let events_fired t = t.fired
