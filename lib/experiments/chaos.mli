(** Chaos experiments: LLA convergence under an unreliable control plane.

    The paper argues (§4.1) that the distributed deployment tolerates
    staleness and asynchrony; the delay sweep only exercises the benign
    half of that claim. These experiments drive the message-passing
    deployment through {!Lla_transport.Transport} fault injection:

    - {b drop sweep}: aggregate-utility gap to the fault-free run as the
      control-message loss probability grows;
    - {b jitter sweep}: gap as the one-way delay becomes increasingly
      random (uniform jitter around a base delay);
    - {b partition + heal}: a group of price agents is partitioned from
      every controller mid-run (and crashes during the outage, losing its
      price state); the utility trajectory shows a perturbation and then
      recovery after the heal.

    All randomness derives from [seed], so a run is reproducible with
    [lla_cli chaos --seed N]. *)

type drop_point = {
  drop : float;  (** message loss probability. *)
  utility_gap_percent : float;  (** |utility − fault-free| / fault-free. *)
  delivered_percent : float;  (** share of send attempts delivered. *)
  messages : int;
}

type jitter_point = {
  jitter : float;  (** fraction: 0.5 = delays uniform in base ± 50%. *)
  utility_gap_percent : float;
  p95_delay : float;  (** measured 95th-percentile delivered delay, ms. *)
}

type partition_run = {
  series : (float * float) list;  (** (time ms, aggregate utility). *)
  partition_at : float;
  heal_at : float;
  gap_before_percent : float;  (** gap just before the partition. *)
  max_gap_after_percent : float;  (** worst gap from the partition on. *)
  final_gap_percent : float;  (** gap at the end of the run. *)
  cut_messages : int;  (** messages lost to the partition. *)
  agent_outages : int;  (** crashes among the partitioned agents. *)
}

type result = {
  seed : int;
  fault_free_utility : float;
  drop_points : drop_point list;
  jitter_points : jitter_point list;
  partition : partition_run;
}

val run :
  ?seed:int ->
  ?horizon:float ->
  ?drops:float list ->
  ?jitters:float list ->
  unit ->
  result
(** Defaults: seed 42, 120 s of control time per scenario, drops
    [\[0; 0.05; 0.1; 0.2; 0.3\]], jitters [\[0; 0.25; 0.5; 0.75; 1\]]. *)

val report : result -> string
