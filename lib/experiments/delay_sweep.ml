open Lla_model
module Transport = Lla_transport.Transport
module Delay_model = Lla_transport.Delay_model

type point = {
  delay : float;
  jitter : float;
  utility_gap_percent : float;
  max_violation_percent : float;
  messages : int;
  allocation_rounds : int;
}

type result = {
  synchronous_utility : float;
  jitter : float;
  points : point list;
}

let max_violation workload ~latency =
  let resource =
    List.fold_left
      (fun acc (r : Resource.t) ->
        let used = Workload.share_sum workload r.id ~latency in
        Float.max acc ((used -. r.availability) /. r.availability))
      0. workload.Workload.resources
  in
  List.fold_left
    (fun acc (task : Task.t) ->
      let _, cost = Task.critical_path task ~latency in
      Float.max acc ((cost -. task.Task.critical_time) /. task.Task.critical_time))
    resource workload.Workload.tasks

let run ?(delays = [ 0.1; 1.; 2.; 5.; 10.; 20. ]) ?(jitter = 0.) ?(seed = 0)
    ?(horizon = 120_000.) () =
  let workload = Lla_workloads.Paper_sim.base () in
  let solver = Lla.Solver.create workload in
  ignore (Lla.Solver.run_until_converged solver ~max_iterations:3000);
  let synchronous_utility = Lla.Solver.utility solver in
  let points =
    List.map
      (fun delay ->
        let engine = Lla_sim.Engine.create () in
        (* All delay plumbing lives in the transport: a constant model when
           jitter is zero, a uniform band around the nominal delay
           otherwise. *)
        let model =
          if jitter <= 0. then Delay_model.constant delay
          else Delay_model.jittered ~base:delay ~jitter
        in
        let transport =
          Transport.create ~config:{ Transport.default_config with delay = model; seed } engine
        in
        let config = { Lla_runtime.Distributed.default_config with message_delay = delay } in
        let distributed = Lla_runtime.Distributed.create ~config ~transport engine workload in
        Lla_runtime.Distributed.run distributed ~duration:horizon;
        let latency sid = Lla_runtime.Distributed.latency distributed sid in
        {
          delay;
          jitter;
          utility_gap_percent =
            100.
            *. Float.abs (Lla_runtime.Distributed.utility distributed -. synchronous_utility)
            /. Float.abs synchronous_utility;
          max_violation_percent = 100. *. Float.max 0. (max_violation workload ~latency);
          messages = Lla_runtime.Distributed.messages_sent distributed;
          allocation_rounds = Lla_runtime.Distributed.allocation_rounds distributed;
        })
      delays
  in
  { synchronous_utility; jitter; points }

let report r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Report.header "Delay sweep - distributed LLA under control-plane latency");
  Buffer.add_string buf
    (Printf.sprintf "synchronous reference utility: %.2f\n" r.synchronous_utility);
  if r.jitter > 0. then
    Buffer.add_string buf
      (Printf.sprintf "one-way delays jittered uniformly by +/-%.0f%%\n" (100. *. r.jitter));
  let table =
    Lla_stdx.Table.create
      ~columns:
        [
          ("delay (ms)", Lla_stdx.Table.Right);
          ("utility gap", Lla_stdx.Table.Right);
          ("worst violation", Lla_stdx.Table.Right);
          ("messages", Lla_stdx.Table.Right);
          ("allocations", Lla_stdx.Table.Right);
        ]
  in
  List.iter
    (fun p ->
      Lla_stdx.Table.add_row table
        [
          Lla_stdx.Table.cell_f ~decimals:1 p.delay;
          Printf.sprintf "%.2f%%" p.utility_gap_percent;
          Printf.sprintf "%.2f%%" p.max_violation_percent;
          Lla_stdx.Table.cell_i p.messages;
          Lla_stdx.Table.cell_i p.allocation_rounds;
        ])
    r.points;
  Buffer.add_string buf (Lla_stdx.Table.render table);
  Buffer.add_string buf
    "Dual decomposition tolerates stale prices: the gap grows gracefully with delay\n\
     rather than diverging.\n";
  Buffer.contents buf
