module Transport = Lla_transport.Transport
module Delay_model = Lla_transport.Delay_model
module Distributed = Lla_runtime.Distributed

type drop_point = {
  drop : float;
  utility_gap_percent : float;
  delivered_percent : float;
  messages : int;
}

type jitter_point = {
  jitter : float;
  utility_gap_percent : float;
  p95_delay : float;
}

type partition_run = {
  series : (float * float) list;
  partition_at : float;
  heal_at : float;
  gap_before_percent : float;
  max_gap_after_percent : float;
  final_gap_percent : float;
  cut_messages : int;
  agent_outages : int;
}

type result = {
  seed : int;
  fault_free_utility : float;
  drop_points : drop_point list;
  jitter_points : jitter_point list;
  partition : partition_run;
}

let base_delay = 1.0

(* Build a fresh engine + transport + deployment for one scenario. *)
let deployment ~tconfig () =
  let workload = Lla_workloads.Paper_sim.base () in
  let engine = Lla_sim.Engine.create () in
  let transport = Transport.create ~config:tconfig engine in
  let distributed = Distributed.create ~transport engine workload in
  (workload, engine, transport, distributed)

let gap_percent ~reference utility = 100. *. Float.abs (utility -. reference) /. Float.abs reference

let fault_free ~horizon =
  let _, _, _, d = deployment ~tconfig:Transport.default_config () in
  Distributed.run d ~duration:horizon;
  Distributed.utility d

let drop_sweep ~seed ~horizon ~reference drops =
  List.map
    (fun drop ->
      let tconfig =
        { Transport.default_config with faults = { Transport.no_faults with drop }; seed }
      in
      let _, _, transport, d = deployment ~tconfig () in
      Distributed.run d ~duration:horizon;
      let c = Transport.totals transport in
      {
        drop;
        utility_gap_percent = gap_percent ~reference (Distributed.utility d);
        delivered_percent = (if c.sent = 0 then 0. else 100. *. float_of_int c.delivered /. float_of_int c.sent);
        messages = c.sent;
      })
    drops

let jitter_sweep ~seed ~horizon ~reference jitters =
  List.map
    (fun jitter ->
      let tconfig =
        {
          Transport.default_config with
          delay = Delay_model.jittered ~base:base_delay ~jitter;
          seed;
        }
      in
      let _, _, transport, d = deployment ~tconfig () in
      Distributed.run d ~duration:horizon;
      {
        jitter;
        utility_gap_percent = gap_percent ~reference (Distributed.utility d);
        p95_delay =
          Option.value (Transport.delay_percentile transport ~p:95.) ~default:base_delay;
      })
    jitters

(* Partition a group of price agents away from every controller mid-run;
   the group also crashes for the duration of the partition (losing price
   state), so the heal injects a genuine price shock that the deployment
   must absorb online. *)
let partition_heal ~seed ~horizon ~reference =
  let partition_at = horizon /. 3. in
  let heal_at = 2. *. horizon /. 3. in
  let tconfig = { Transport.default_config with seed } in
  let workload, _, transport, d = deployment ~tconfig () in
  let resource_ids =
    List.filteri (fun i _ -> i < 3) workload.Lla_model.Workload.resources
    |> List.map (fun (r : Lla_model.Resource.t) -> r.id)
  in
  let group_a = List.map (Distributed.agent_endpoint d) resource_ids in
  let group_b =
    List.map
      (fun (task : Lla_model.Task.t) -> Distributed.controller_endpoint d task.id)
      workload.Lla_model.Workload.tasks
  in
  Transport.partition transport ~at:partition_at ~duration:(heal_at -. partition_at) ~group_a
    ~group_b;
  List.iter
    (fun e -> Transport.schedule_outage transport e ~at:partition_at ~duration:(heal_at -. partition_at))
    group_a;
  let sample_every = 250. in
  let series = ref [] in
  let gap_before = ref nan in
  let max_gap_after = ref 0. in
  let elapsed = ref 0. in
  while !elapsed < horizon -. 1e-9 do
    Distributed.run d ~duration:sample_every;
    elapsed := !elapsed +. sample_every;
    let u = Distributed.utility d in
    series := (!elapsed, u) :: !series;
    let gap = gap_percent ~reference u in
    if !elapsed < partition_at then gap_before := gap
    else max_gap_after := Float.max !max_gap_after gap
  done;
  let c = Transport.totals transport in
  {
    series = List.rev !series;
    partition_at;
    heal_at;
    gap_before_percent = !gap_before;
    max_gap_after_percent = !max_gap_after;
    final_gap_percent = gap_percent ~reference (Distributed.utility d);
    cut_messages = c.cut;
    agent_outages = List.fold_left (fun acc e -> acc + Transport.outages transport e) 0 group_a;
  }

let run ?(seed = 42) ?(horizon = 120_000.) ?(drops = [ 0.; 0.05; 0.1; 0.2; 0.3 ])
    ?(jitters = [ 0.; 0.25; 0.5; 0.75; 1.0 ]) () =
  let fault_free_utility = fault_free ~horizon in
  {
    seed;
    fault_free_utility;
    drop_points = drop_sweep ~seed ~horizon ~reference:fault_free_utility drops;
    jitter_points = jitter_sweep ~seed ~horizon ~reference:fault_free_utility jitters;
    partition = partition_heal ~seed ~horizon ~reference:fault_free_utility;
  }

let report r =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Report.header "Chaos - distributed LLA under an unreliable control plane");
  Buffer.add_string buf
    (Printf.sprintf "seed %d; fault-free reference utility: %.2f\n\n" r.seed r.fault_free_utility);
  let drop_table =
    Lla_stdx.Table.create
      ~columns:
        [
          ("drop prob", Lla_stdx.Table.Right);
          ("utility gap", Lla_stdx.Table.Right);
          ("delivered", Lla_stdx.Table.Right);
          ("messages", Lla_stdx.Table.Right);
        ]
  in
  List.iter
    (fun p ->
      Lla_stdx.Table.add_row drop_table
        [
          Printf.sprintf "%.0f%%" (100. *. p.drop);
          Printf.sprintf "%.2f%%" p.utility_gap_percent;
          Printf.sprintf "%.1f%%" p.delivered_percent;
          Lla_stdx.Table.cell_i p.messages;
        ])
    r.drop_points;
  Buffer.add_string buf "Message loss sweep (constant 1 ms delay):\n";
  Buffer.add_string buf (Lla_stdx.Table.render drop_table);
  let jitter_table =
    Lla_stdx.Table.create
      ~columns:
        [
          ("jitter", Lla_stdx.Table.Right);
          ("utility gap", Lla_stdx.Table.Right);
          ("p95 delay (ms)", Lla_stdx.Table.Right);
        ]
  in
  List.iter
    (fun p ->
      Lla_stdx.Table.add_row jitter_table
        [
          Printf.sprintf "+/-%.0f%%" (100. *. p.jitter);
          Printf.sprintf "%.2f%%" p.utility_gap_percent;
          Lla_stdx.Table.cell_f ~decimals:2 p.p95_delay;
        ])
    r.jitter_points;
  Buffer.add_string buf "\nDelay jitter sweep (uniform around 1 ms):\n";
  Buffer.add_string buf (Lla_stdx.Table.render jitter_table);
  let p = r.partition in
  Buffer.add_string buf
    (Printf.sprintf
       "\nPartition + heal (3 price agents cut off and crashed %.0f-%.0f s):\n\
        gap before partition %.2f%%, worst gap after %.2f%%, final gap %.2f%%\n\
        %d messages cut, %d agent outages\n"
       (p.partition_at /. 1000.) (p.heal_at /. 1000.) p.gap_before_percent
       p.max_gap_after_percent p.final_gap_percent p.cut_messages p.agent_outages);
  let series = Lla_stdx.Series.create ~name:"utility" () in
  List.iter (fun (x, y) -> Lla_stdx.Series.add series ~x ~y) p.series;
  Buffer.add_string buf
    (Report.series_block ~title:"aggregate utility across partition and heal"
       [ ("utility", series) ]);
  Buffer.add_string buf
    "LLA absorbs loss, jitter and partitions online: prices re-converge from the\n\
     next received messages, no restart or resynchronization required.\n";
  Buffer.contents buf
