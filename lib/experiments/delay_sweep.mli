(** Control-plane delay sweep: how does the distributed (message-passing)
    deployment degrade as the price/latency control messages slow down?

    For each one-way delay, the distributed LLA runs for a fixed control
    horizon; the result reports the utility gap to the synchronous
    optimum, constraint violations, and control traffic. The shape to
    expect: the gap stays negligible while the delay is small relative to
    the agents' tick period, and convergence merely slows (never diverges)
    as staleness grows — dual decomposition tolerates asynchrony.

    Delays are routed through {!Lla_transport.Transport}: pass [jitter]
    to replace the constant one-way delay with a uniform band around it
    ([Delay_model.Jittered]) and exercise per-message randomness on top of
    staleness. *)

type point = {
  delay : float;  (** nominal one-way message delay, ms. *)
  jitter : float;  (** applied jitter fraction; 0 = constant delay. *)
  utility_gap_percent : float;  (** |distributed - synchronous| / synchronous. *)
  max_violation_percent : float;
      (** worst relative constraint violation at the end of the run. *)
  messages : int;
  allocation_rounds : int;
}

type result = {
  synchronous_utility : float;
  jitter : float;
  points : point list;
}

val run :
  ?delays:float list -> ?jitter:float -> ?seed:int -> ?horizon:float -> unit -> result
(** Defaults: delays [\[0.1; 1; 2; 5; 10; 20\]] ms; no jitter; seed 0;
    120 s of control time per point. [jitter] is a fraction of the nominal
    delay (0.5 = one-way delays uniform in [delay ± 50%]). *)

val report : result -> string
