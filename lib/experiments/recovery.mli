(** Recovery experiments: the resilience layer under crash and divergence.

    Three scenarios exercise {!Lla_runtime.Distributed}'s resilience
    layer the way the chaos experiments exercise the transport:

    - {b warm vs cold recovery}: the whole control plane (every agent and
      controller) crashes mid-run and restarts after a fixed outage, once
      without checkpointing (cold [mu0] restart) and once with 100 ms
      price-state checkpoints (warm restart). The enacted latency vector
      survives either way; what differs is the price shock after the heal
      — measured as the post-heal window in which the aggregate utility
      strays more than 1% from its pre-crash value, in ms and in price
      rounds;
    - {b divergence containment}: the step size is fixed at a value that
      makes the price iteration oscillate violently; the run is repeated
      with and without the safe-mode watchdog, comparing the fraction of
      samples at which the enacted assignment satisfies Eq. 3 and Eq. 4
      and the worst constraint overruns;
    - {b failure detection}: with the heartbeat detector on, one price
      agent suffers a scheduled outage; the report shows the detection
      delay, that the suspicion clears after the restart, and that no
      healthy endpoint was ever suspected.

    All randomness derives from [seed]; reproduce with
    [lla_cli recovery --seed N]. *)

type mode_stats = {
  label : string;
  recovery_ms : float option;
      (** time from heal to the last sample with utility gap >= 1%;
          [Some 0.] when the gap never opened; [None] when it never closed
          within the observation window. *)
  recovery_rounds : int option;  (** same point, in price rounds since heal. *)
  max_gap_percent : float;  (** worst post-heal utility gap. *)
  warm_restores : int;
  cold_restarts : int;
  checkpoint_saves : int;
  checkpoint_restores : int;
}

type surge_stats = {
  surge_label : string;
  samples : int;
  feasible_percent : float;
      (** share of samples satisfying Eq. 3 and Eq. 4 (0.1% tolerance). *)
  worst_share_ratio : float;  (** max over samples/resources of share/B_r. *)
  worst_path_ratio : float;  (** max over samples/paths of latency/C. *)
  safe_entries : int;
  safe_exits : int;
  fallback : string option;
  utility_series : (float * float) list;  (** (time ms, utility), decimated. *)
}

type detection = {
  timeout : float;  (** configured detector timeout, ms. *)
  detected_in : float option;  (** crash-to-suspicion delay, ms. *)
  cleared : bool;  (** suspicion flipped back to alive after the restart. *)
  false_suspicions : int;  (** suspicions of endpoints that never crashed. *)
}

type result = {
  seed : int;
  crash_at : float;
  outage : float;
  reference_utility : float;  (** utility just before the crash. *)
  cold : mode_stats;
  warm : mode_stats;
  unprotected : surge_stats;
  protected_ : surge_stats;
  detection : detection;
}

val run : ?seed:int -> ?horizon:float -> unit -> result
(** Defaults: seed 42, 60 s horizon per scenario (the crash scenario uses
    [horizon/2] before the crash and up to [horizon/2] of post-heal
    observation). *)

val report : result -> string
