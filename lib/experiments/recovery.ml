module Transport = Lla_transport.Transport
module Distributed = Lla_runtime.Distributed
module Health = Lla_runtime.Health
module Checkpoint = Lla_runtime.Checkpoint
module Safe_mode = Lla_runtime.Safe_mode

type mode_stats = {
  label : string;
  recovery_ms : float option;
  recovery_rounds : int option;
  max_gap_percent : float;
  warm_restores : int;
  cold_restarts : int;
  checkpoint_saves : int;
  checkpoint_restores : int;
}

type surge_stats = {
  surge_label : string;
  samples : int;
  feasible_percent : float;
  worst_share_ratio : float;
  worst_path_ratio : float;
  safe_entries : int;
  safe_exits : int;
  fallback : string option;
  utility_series : (float * float) list;
}

type detection = {
  timeout : float;
  detected_in : float option;
  cleared : bool;
  false_suspicions : int;
}

type result = {
  seed : int;
  crash_at : float;
  outage : float;
  reference_utility : float;
  cold : mode_stats;
  warm : mode_stats;
  unprotected : surge_stats;
  protected_ : surge_stats;
  detection : detection;
}

let no_resilience_but_counters =
  {
    Distributed.checkpoint_period = None;
    checkpoint_max_age = infinity;
    health = None;
    safe_mode = None;
    watchdog_period = 10.;
  }

let all_endpoints workload d =
  List.map
    (fun (r : Lla_model.Resource.t) -> Distributed.agent_endpoint d r.id)
    workload.Lla_model.Workload.resources
  @ List.map
      (fun (task : Lla_model.Task.t) -> Distributed.controller_endpoint d task.id)
      workload.Lla_model.Workload.tasks

let gap_percent ~reference utility =
  100. *. Float.abs (utility -. reference) /. Float.max 1e-9 (Float.abs reference)

(* Crash the entire control plane and watch the post-heal price shock:
   with checkpoints, restarted actors resume from near-equilibrium prices;
   without, they re-price from mu0 and the utility excursion shows the
   cold-convergence transient. *)
let crash_recovery ~seed ~label ~checkpoint ~crash_at ~outage ~observe () =
  let workload = Lla_workloads.Paper_sim.base () in
  let engine = Lla_sim.Engine.create () in
  let transport = Transport.create ~config:{ Transport.default_config with seed } engine in
  let resilience =
    if checkpoint then
      { no_resilience_but_counters with Distributed.checkpoint_period = Some 100. }
    else no_resilience_but_counters
  in
  let d = Distributed.create ~resilience ~transport engine workload in
  Distributed.run d ~duration:crash_at;
  let reference = Distributed.utility d in
  let endpoints = all_endpoints workload d in
  let now = Lla_sim.Engine.now engine in
  List.iter (fun e -> Transport.schedule_outage transport e ~at:(now +. 1.) ~duration:outage) endpoints;
  Distributed.run d ~duration:(outage +. 1.);
  let rounds_at_heal = Distributed.price_rounds d in
  let sample_every = 10. in
  let last_violation_ms = ref None in
  let last_violation_rounds = ref None in
  let max_gap = ref 0. in
  let elapsed = ref 0. in
  while !elapsed < observe -. 1e-9 do
    Distributed.run d ~duration:sample_every;
    elapsed := !elapsed +. sample_every;
    let gap = gap_percent ~reference (Distributed.utility d) in
    max_gap := Float.max !max_gap gap;
    if gap >= 1. then begin
      last_violation_ms := Some !elapsed;
      last_violation_rounds := Some (Distributed.price_rounds d - rounds_at_heal)
    end
  done;
  let recovered = gap_percent ~reference (Distributed.utility d) < 1. in
  {
    label;
    recovery_ms =
      (if not recovered then None
       else match !last_violation_ms with None -> Some 0. | Some _ as s -> s);
    recovery_rounds =
      (if not recovered then None
       else match !last_violation_rounds with None -> Some 0 | Some _ as s -> s);
    max_gap_percent = !max_gap;
    warm_restores = Distributed.warm_restores d;
    cold_restarts = Distributed.cold_restarts d;
    checkpoint_saves =
      (match Distributed.checkpoint_store d with Some cp -> Checkpoint.saves cp | None -> 0);
    checkpoint_restores =
      (match Distributed.checkpoint_store d with Some cp -> Checkpoint.restores cp | None -> 0);
  }

(* Fixed gamma = 64 makes the price iteration oscillate so hard the
   enacted assignment is almost never feasible; the watchdog's job is to
   cap the damage. The 1.5x critical-time relaxation gives the slicing
   fallback room to be feasible (the base workload admits no feasible
   slice — see EXPERIMENTS.md). *)
let surge ~seed ~surge_label ~protected ~horizon () =
  let workload =
    Lla_workloads.Paper_sim.scaled ~copies:1 ~critical_time_factor:1.5 ()
  in
  let problem = Lla.Problem.compile workload in
  let engine = Lla_sim.Engine.create () in
  let transport = Transport.create ~config:{ Transport.default_config with seed } engine in
  let config =
    { Distributed.default_config with step_policy = Lla.Step_size.fixed 64. }
  in
  let d =
    if protected then
      Distributed.create ~config
        ~resilience:
          { no_resilience_but_counters with Distributed.safe_mode = Some Safe_mode.default_config }
        ~transport engine workload
    else Distributed.create ~config ~transport engine workload
  in
  let n_sub = Lla.Problem.n_subtasks problem in
  let lat = Array.make n_sub 0. in
  let offsets = Array.make n_sub 0. in
  let refresh_lat () =
    for i = 0 to n_sub - 1 do
      lat.(i) <- Distributed.latency d problem.Lla.Problem.subtasks.(i).Lla.Problem.sid
    done
  in
  let tol = 1.001 in
  let sample_every = 50. in
  let samples = ref 0 in
  let feasible_samples = ref 0 in
  let worst_share = ref 0. in
  let worst_path = ref 0. in
  let series = ref [] in
  let elapsed = ref 0. in
  while !elapsed < horizon -. 1e-9 do
    Distributed.run d ~duration:sample_every;
    elapsed := !elapsed +. sample_every;
    refresh_lat ();
    incr samples;
    let feasible = ref true in
    for r = 0 to Lla.Problem.n_resources problem - 1 do
      let ratio =
        Lla.Problem.share_sum problem r ~lat ~offsets
        /. problem.Lla.Problem.capacities.(r)
      in
      worst_share := Float.max !worst_share ratio;
      if ratio > tol then feasible := false
    done;
    for p = 0 to Lla.Problem.n_paths problem - 1 do
      let ratio =
        Lla.Problem.path_latency problem p ~lat
        /. problem.Lla.Problem.paths.(p).Lla.Problem.critical_time
      in
      worst_path := Float.max !worst_path ratio;
      if ratio > tol then feasible := false
    done;
    if !feasible then incr feasible_samples;
    if Float.rem !elapsed 250. < sample_every -. 1e-9 then
      series := (!elapsed, Distributed.utility d) :: !series
  done;
  {
    surge_label;
    samples = !samples;
    feasible_percent = 100. *. float_of_int !feasible_samples /. float_of_int (max 1 !samples);
    worst_share_ratio = !worst_share;
    worst_path_ratio = !worst_path;
    safe_entries = Distributed.safe_entries d;
    safe_exits = Distributed.safe_exits d;
    fallback = Distributed.fallback_source d;
    utility_series = List.rev !series;
  }

let detect ~seed () =
  let workload = Lla_workloads.Paper_sim.base () in
  let engine = Lla_sim.Engine.create () in
  let transport = Transport.create ~config:{ Transport.default_config with seed } engine in
  let d =
    Distributed.create
      ~resilience:{ no_resilience_but_counters with Distributed.health = Some Health.default_config }
      ~transport engine workload
  in
  let victim_id = (List.hd workload.Lla_model.Workload.resources).Lla_model.Resource.id in
  let victim = Distributed.agent_endpoint d victim_id in
  let crash_at = 2_000. and outage = 3_000. in
  Transport.schedule_outage transport victim ~at:crash_at ~duration:outage;
  let h = Option.get (Distributed.health d) in
  let suspected_at = ref None in
  let cleared = ref false in
  let false_suspicions = ref 0 in
  Health.on_transition h (fun e status ~now ->
      if e == victim then begin
        match status with
        | Health.Suspect -> if !suspected_at = None then suspected_at := Some now
        | Health.Alive -> cleared := true
      end
      else if status = Health.Suspect then incr false_suspicions);
  Distributed.run d ~duration:10_000.;
  {
    timeout = (Health.config h).Health.timeout;
    detected_in = Option.map (fun at -> at -. crash_at) !suspected_at;
    cleared = !cleared;
    false_suspicions = !false_suspicions;
  }

let run ?(seed = 42) ?(horizon = 60_000.) () =
  let crash_at = horizon /. 2. in
  let outage = 500. in
  let observe = horizon /. 2. in
  let reference =
    let workload = Lla_workloads.Paper_sim.base () in
    let engine = Lla_sim.Engine.create () in
    let d = Distributed.create engine workload in
    Distributed.run d ~duration:crash_at;
    Distributed.utility d
  in
  {
    seed;
    crash_at;
    outage;
    reference_utility = reference;
    cold = crash_recovery ~seed ~label:"cold (no checkpoint)" ~checkpoint:false ~crash_at ~outage ~observe ();
    warm = crash_recovery ~seed ~label:"warm (100 ms checkpoints)" ~checkpoint:true ~crash_at ~outage ~observe ();
    unprotected = surge ~seed ~surge_label:"unprotected" ~protected:false ~horizon ();
    protected_ = surge ~seed ~surge_label:"safe-mode watchdog" ~protected:true ~horizon ();
    detection = detect ~seed ();
  }

let report r =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Report.header "Recovery - crash, divergence and detection resilience");
  Buffer.add_string buf
    (Printf.sprintf
       "seed %d; whole control plane crashed at %.0f s for %.1f s; pre-crash utility %.2f\n\n"
       r.seed (r.crash_at /. 1000.) (r.outage /. 1000.) r.reference_utility);
  let mode_table =
    Lla_stdx.Table.create
      ~columns:
        [
          ("restart", Lla_stdx.Table.Left);
          ("recovery (ms)", Lla_stdx.Table.Right);
          ("recovery (price rounds)", Lla_stdx.Table.Right);
          ("worst gap", Lla_stdx.Table.Right);
          ("warm", Lla_stdx.Table.Right);
          ("cold", Lla_stdx.Table.Right);
          ("ckpt saves", Lla_stdx.Table.Right);
          ("ckpt restores", Lla_stdx.Table.Right);
        ]
  in
  let mode_row (m : mode_stats) =
    Lla_stdx.Table.add_row mode_table
      [
        m.label;
        (match m.recovery_ms with None -> "never" | Some v -> Printf.sprintf "%.0f" v);
        (match m.recovery_rounds with None -> "-" | Some v -> string_of_int v);
        Printf.sprintf "%.2f%%" m.max_gap_percent;
        Lla_stdx.Table.cell_i m.warm_restores;
        Lla_stdx.Table.cell_i m.cold_restarts;
        Lla_stdx.Table.cell_i m.checkpoint_saves;
        Lla_stdx.Table.cell_i m.checkpoint_restores;
      ]
  in
  mode_row r.cold;
  mode_row r.warm;
  Buffer.add_string buf "Warm vs cold restart after a full control-plane outage:\n";
  Buffer.add_string buf (Lla_stdx.Table.render mode_table);
  let surge_table =
    Lla_stdx.Table.create
      ~columns:
        [
          ("run", Lla_stdx.Table.Left);
          ("feasible samples", Lla_stdx.Table.Right);
          ("worst share/B_r", Lla_stdx.Table.Right);
          ("worst path/C", Lla_stdx.Table.Right);
          ("safe entries", Lla_stdx.Table.Right);
          ("safe exits", Lla_stdx.Table.Right);
        ]
  in
  let surge_row (s : surge_stats) =
    Lla_stdx.Table.add_row surge_table
      [
        s.surge_label;
        Printf.sprintf "%.1f%%" s.feasible_percent;
        Lla_stdx.Table.cell_f ~decimals:2 s.worst_share_ratio;
        Lla_stdx.Table.cell_f ~decimals:2 s.worst_path_ratio;
        Lla_stdx.Table.cell_i s.safe_entries;
        Lla_stdx.Table.cell_i s.safe_exits;
      ]
  in
  surge_row r.unprotected;
  surge_row r.protected_;
  Buffer.add_string buf
    "\nForced divergence (fixed gamma = 64, relaxed deadlines), with and without safe mode:\n";
  Buffer.add_string buf (Lla_stdx.Table.render surge_table);
  (match r.protected_.fallback with
  | Some f -> Buffer.add_string buf (Printf.sprintf "safe-mode fallback: %s\n" f)
  | None -> ());
  let series = Lla_stdx.Series.create ~name:"utility" () in
  List.iter (fun (x, y) -> Lla_stdx.Series.add series ~x ~y) r.protected_.utility_series;
  Buffer.add_string buf
    (Report.series_block ~title:"utility under safe-mode clamping (protected run)"
       [ ("utility", series) ]);
  let d = r.detection in
  Buffer.add_string buf
    (Printf.sprintf
       "\nFailure detection (250 ms timeout, one agent down 2-5 s):\n\
        crash detected in %s (timeout %.0f ms); suspicion cleared after restart: %b;\n\
        false suspicions of healthy endpoints: %d\n"
       (match d.detected_in with None -> "never" | Some v -> Printf.sprintf "%.0f ms" v)
       d.timeout d.cleared d.false_suspicions);
  Buffer.add_string buf
    "Checkpoints turn a restart into a near-seamless resume; the watchdog trades\n\
     optimality for feasibility while prices are untrustworthy, and hands back\n\
     control once they settle.\n";
  Buffer.contents buf
