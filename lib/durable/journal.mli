(** Append-only write-ahead journal with per-record CRCs.

    The durability tier's write path: callers append opaque payload
    records (one checkpoint slot per record, in practice the
    {!Lla_runtime.Checkpoint} JSONL codec's lines), and the journal
    frames each one as [length | crc32 | payload] on an append-only
    segment. Segments rotate at a size cap with the {!Lla_obs.Rotate}
    shifting idiom ([name.wal] active, [name.wal.1] the most recent
    rotated, up to [retain]); {!snapshot} compacts the whole journal to
    an atomically-replaced snapshot file plus an empty active segment.

    Two storage backends share the {!Store} interface: a real
    file-per-path backend ({!Store.file}) for actual durability, and an
    in-memory {!Store.faulty} backend that models the page cache /
    durable-media split and injects seeded, schedulable storage faults
    in {!Lla_transport.Transport}'s style — torn writes at arbitrary
    byte offsets, bit flips, dropped syncs, short reads and
    ENOSPC-style write failures. With every fault probability at zero
    the faulty store draws no randomness, so a zero-fault run is
    bit-for-bit a faultless one.

    Failure discipline: a write failure (ENOSPC) {e wedges} the journal
    — further appends become no-ops and the system degrades to
    cold-restart recovery — rather than raising into the control plane.
    Never a crash.

    With [?obs], journal activity lands in the [lla_journal_*] metrics
    family (appends, bytes, syncs, rotations, snapshots, wedges);
    without it the journal touches nothing observable (the standing
    golden-trace guarantee). *)

(** {1 CRC-32}

    IEEE 802.3 reflected CRC-32 (the zlib/PNG polynomial), table-driven.
    Exposed for the inspection CLI and the test suite. *)
module Crc : sig
  val string : ?off:int -> ?len:int -> string -> int
  (** CRC-32 of a substring (default: the whole string), as a
      non-negative int in [\[0, 2^32)]. *)
end

(** {1 Record framing} *)

val encode_record : string -> string
(** [length(u32 LE) | crc32(u32 LE) | payload]. *)

val max_record_bytes : int
(** Upper bound on an encoded payload length accepted by {!scan}
    (16 MiB); a length field beyond it reads as corruption, so a torn
    length prefix cannot make recovery attempt a gigabyte read. *)

type entry = { offset : int; length : int; crc : int }
(** One valid record located by {!scan}: byte offset of its header,
    payload length, stored CRC. *)

type scan = {
  entries : entry list;  (** valid records, in file order. *)
  good_bytes : int;  (** recoverable prefix length in bytes. *)
  total_bytes : int;
  corrupt_at : int option;  (** first corrupt byte offset, if any. *)
  corrupt_reason : string option;  (** ["short header"], ["bad crc"], ... *)
}

val scan : string -> scan
(** Walk a segment's raw contents record by record, stopping at the
    first corruption (short header, absurd length, truncated payload or
    CRC mismatch). Total function: never raises, any byte string yields
    a valid prefix. *)

val decode : string -> string list * scan
(** {!scan} plus the decoded payloads of the valid prefix. *)

(** {1 Storage backends} *)
module Store : sig
  type faults = {
    torn_write : float;
        (** probability that, at {!crash} time, a prefix of the unsynced
            tail survives cut at a uniformly random byte offset (instead
            of the tail vanishing cleanly). *)
    bit_flip : float;  (** probability an append lands with one bit flipped. *)
    drop_sync : float;  (** probability a sync barrier is silently dropped. *)
    short_read : float;  (** probability a read returns only a prefix. *)
    fail_write : float;  (** probability an append fails ENOSPC-style. *)
  }

  val no_faults : faults

  type t

  val file : dir:string -> t
  (** Real files under [dir] (created if missing). Appends go through
      buffered channels; {!sync} flushes and [fsync]s. Atomic whole-file
      writes use the [tmp]+[rename] idiom. {!crash} is a no-op (real
      durability is the point). *)

  val faulty : ?seed:int -> ?faults:faults -> unit -> t
  (** In-memory model of a crash-prone disk: each path holds a durable
      prefix plus an unsynced tail; {!sync} advances the durable
      frontier (unless dropped), {!crash} discards the unsynced tail —
      torn at a random byte offset with probability [torn_write] —
      without touching durable bytes. Faults draw from a private seeded
      stream (default seed 0); zero probabilities draw nothing. *)

  val set_faults : t -> faults -> unit
  (** Swap the live fault probabilities (schedulable storage-fault
      windows). No-op on a file store.
      @raise Invalid_argument on a probability outside [\[0,1]]. *)

  val active_faults : t -> faults
  (** Current probabilities ({!no_faults} on a file store). *)

  val crash : t -> unit
  (** Model a whole-process crash: unsynced bytes are lost (modulo a
      torn surviving prefix). No-op on a file store. *)

  val faults_injected : t -> int
  (** Faults actually fired so far (0 on a file store). *)

  (** {2 Path operations (used by {!Journal} and {!Recovery})} *)

  val append : t -> string -> string -> (unit, string) result
  (** [append t path data]: [Error] on an injected write failure. *)

  val sync : t -> string -> unit

  val read : t -> string -> string option
  (** Whole-file contents; [None] when the path does not exist. *)

  val write : t -> string -> string -> unit
  (** Atomic whole-file replace. *)

  val rename : t -> string -> string -> unit
  (** No-op when the source does not exist. *)

  val remove : t -> string -> unit

  val exists : t -> string -> bool
end

(** {1 The journal} *)

type config = {
  max_segment_bytes : int;  (** rotation threshold (default 1 MiB). *)
  retain : int;  (** rotated segments kept (default 3). *)
  sync_every : int;  (** appends between implicit sync barriers (default 1). *)
}

val default_config : config

type t

val create : ?obs:Lla_obs.t -> ?config:config -> ?name:string -> Store.t -> t
(** A journal writing segments [name.wal\[.k\]] and snapshot
    [name.snap] (default name ["journal"]; under {!Store.file} the name
    is relative to the store's directory). @raise Invalid_argument on a
    non-positive size cap, retain or sync cadence. *)

val append : t -> string -> unit
(** Frame and append one payload record to the active segment, rotating
    at the size cap and syncing every [sync_every] appends. On a wedged
    journal (a previous write failure) this is a no-op. *)

val sync : t -> unit
(** Explicit sync barrier on the active segment. *)

val snapshot : t -> string list -> unit
(** Compaction: atomically replace [name.snap] with the given payload
    records, then drop every rotated segment and truncate the active
    one. Recovery afterwards replays the snapshot plus any subsequent
    appends. Un-wedges the journal when the store accepts writes
    again. *)

val wedged : t -> bool

val appends : t -> int
(** Records accepted (excludes appends dropped while wedged). *)

val bytes_written : t -> int
(** Encoded bytes appended to segments (framing included). *)

val snapshots : t -> int

val rotations : t -> int

val store : t -> Store.t

val name : t -> string

val segment_paths : t -> string list
(** Replay order: snapshot, oldest rotated segment, ..., active
    segment. Only paths that currently exist. *)

val active_path : t -> string
