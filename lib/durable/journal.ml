module Rng = Lla_stdx.Rng

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320)                     *)
(* ------------------------------------------------------------------ *)

module Crc = struct
  let table =
    lazy
      (Array.init 256 (fun n ->
           let c = ref n in
           for _ = 0 to 7 do
             c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
           done;
           !c))

  let string ?(off = 0) ?len s =
    let len = match len with Some l -> l | None -> String.length s - off in
    let t = Lazy.force table in
    let c = ref 0xFFFFFFFF in
    for i = off to off + len - 1 do
      c := t.((!c lxor Char.code s.[i]) land 0xff) lxor (!c lsr 8)
    done;
    !c lxor 0xFFFFFFFF
end

(* ------------------------------------------------------------------ *)
(* Record framing: length (u32 LE) | crc32 (u32 LE) | payload          *)
(* ------------------------------------------------------------------ *)

let header_bytes = 8

let max_record_bytes = 16 * 1024 * 1024

let put_u32 b v =
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff))

let get_u32 s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let encode_record payload =
  let b = Buffer.create (header_bytes + String.length payload) in
  put_u32 b (String.length payload);
  put_u32 b (Crc.string payload);
  Buffer.add_string b payload;
  Buffer.contents b

type entry = { offset : int; length : int; crc : int }

type scan = {
  entries : entry list;
  good_bytes : int;
  total_bytes : int;
  corrupt_at : int option;
  corrupt_reason : string option;
}

let scan contents =
  let total = String.length contents in
  let entries = ref [] in
  let pos = ref 0 in
  let corrupt = ref None in
  (try
     while !pos < total do
       let off = !pos in
       if off + header_bytes > total then begin
         corrupt := Some (off, "short header");
         raise Exit
       end;
       let length = get_u32 contents off in
       if length < 0 || length > max_record_bytes then begin
         corrupt := Some (off, Printf.sprintf "bad length %d" length);
         raise Exit
       end;
       if off + header_bytes + length > total then begin
         corrupt := Some (off, "truncated payload");
         raise Exit
       end;
       let crc = get_u32 contents (off + 4) in
       if Crc.string ~off:(off + header_bytes) ~len:length contents <> crc then begin
         corrupt := Some (off, "bad crc");
         raise Exit
       end;
       entries := { offset = off; length; crc } :: !entries;
       pos := off + header_bytes + length
     done
   with Exit -> ());
  let corrupt_at, corrupt_reason =
    match !corrupt with Some (o, r) -> (Some o, Some r) | None -> (None, None)
  in
  { entries = List.rev !entries; good_bytes = !pos; total_bytes = total; corrupt_at; corrupt_reason }

let decode contents =
  let s = scan contents in
  let payloads =
    List.map (fun e -> String.sub contents (e.offset + header_bytes) e.length) s.entries
  in
  (payloads, s)

(* ------------------------------------------------------------------ *)
(* Storage backends                                                    *)
(* ------------------------------------------------------------------ *)

module Store = struct
  type faults = {
    torn_write : float;
    bit_flip : float;
    drop_sync : float;
    short_read : float;
    fail_write : float;
  }

  let no_faults =
    { torn_write = 0.; bit_flip = 0.; drop_sync = 0.; short_read = 0.; fail_write = 0. }

  let check_faults f =
    let p what v =
      if not (Float.is_finite v && v >= 0. && v <= 1.) then
        Format.kasprintf invalid_arg "Store.set_faults: %s probability %g outside [0,1]" what v
    in
    p "torn_write" f.torn_write;
    p "bit_flip" f.bit_flip;
    p "drop_sync" f.drop_sync;
    p "short_read" f.short_read;
    p "fail_write" f.fail_write

  (* In-memory crash-prone disk: [durable] survives {!crash}; [pending]
     holds appends since the last accepted sync (the page cache). *)
  type ffile = { mutable durable : string; mutable pending : Buffer.t }

  type faulty = {
    files : (string, ffile) Hashtbl.t;
    rng : Rng.t;
    mutable faults : faults;
    mutable injected : int;
  }

  (* File backend: append channels stay open per path; everything else
     reopens on demand. *)
  type filestore = { dir : string; channels : (string, out_channel) Hashtbl.t }

  type t = File of filestore | Faulty of faulty

  let ensure_dir dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

  let file ~dir =
    ensure_dir dir;
    File { dir; channels = Hashtbl.create 8 }

  let faulty ?(seed = 0) ?(faults = no_faults) () =
    check_faults faults;
    Faulty { files = Hashtbl.create 8; rng = Rng.create ~seed; faults; injected = 0 }

  let set_faults t f =
    match t with
    | File _ -> ()
    | Faulty fs ->
        check_faults f;
        fs.faults <- f

  let active_faults = function File _ -> no_faults | Faulty fs -> fs.faults

  let faults_injected = function File _ -> 0 | Faulty fs -> fs.injected

  (* The transport's zero-fault discipline: a zero probability draws no
     randomness, so faultless runs are bit-for-bit deterministic. *)
  let hit fs p = p > 0. && (p >= 1. || Rng.float fs.rng < p)

  let resolve st path = Filename.concat st.dir path

  let close_channel st path =
    match Hashtbl.find_opt st.channels path with
    | Some oc ->
        close_out oc;
        Hashtbl.remove st.channels path
    | None -> ()

  let ffile fs path =
    match Hashtbl.find_opt fs.files path with
    | Some f -> f
    | None ->
        let f = { durable = ""; pending = Buffer.create 256 } in
        Hashtbl.add fs.files path f;
        f

  let flip_one_bit fs data =
    let b = Bytes.of_string data in
    let i = Rng.int fs.rng ~bound:(Bytes.length b) in
    let bit = Rng.int fs.rng ~bound:8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
    Bytes.to_string b

  let append t path data =
    match t with
    | File st ->
        let oc =
          match Hashtbl.find_opt st.channels path with
          | Some oc -> oc
          | None ->
              let oc =
                open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 (resolve st path)
              in
              Hashtbl.add st.channels path oc;
              oc
        in
        output_string oc data;
        Ok ()
    | Faulty fs ->
        if hit fs fs.faults.fail_write then begin
          fs.injected <- fs.injected + 1;
          Error "no space left on device (injected)"
        end
        else begin
          let data =
            if String.length data > 0 && hit fs fs.faults.bit_flip then begin
              fs.injected <- fs.injected + 1;
              flip_one_bit fs data
            end
            else data
          in
          Buffer.add_string (ffile fs path).pending data;
          Ok ()
        end

  let sync t path =
    match t with
    | File st -> (
        match Hashtbl.find_opt st.channels path with
        | Some oc -> (
            flush oc;
            try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ())
        | None -> ())
    | Faulty fs -> (
        match Hashtbl.find_opt fs.files path with
        | None -> ()
        | Some f ->
            if hit fs fs.faults.drop_sync then fs.injected <- fs.injected + 1
            else begin
              f.durable <- f.durable ^ Buffer.contents f.pending;
              Buffer.clear f.pending
            end)

  let read t path =
    match t with
    | File st -> (
        close_channel st path;
        match open_in_bin (resolve st path) with
        | exception Sys_error _ -> None
        | ic ->
            let n = in_channel_length ic in
            let s = really_input_string ic n in
            close_in ic;
            Some s)
    | Faulty fs -> (
        match Hashtbl.find_opt fs.files path with
        | None -> None
        | Some f ->
            let s = f.durable ^ Buffer.contents f.pending in
            if String.length s > 0 && hit fs fs.faults.short_read then begin
              fs.injected <- fs.injected + 1;
              Some (String.sub s 0 (Rng.int fs.rng ~bound:(String.length s)))
            end
            else Some s)

  let write t path data =
    match t with
    | File st ->
        close_channel st path;
        let real = resolve st path in
        let tmp = real ^ ".tmp" in
        let oc = open_out_bin tmp in
        output_string oc data;
        flush oc;
        (try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
        close_out oc;
        Sys.rename tmp real
    | Faulty fs ->
        (* tmp + rename is crash-atomic by construction; the model keeps
           the replacement atomic and durable (the journal's vulnerable
           path is the append stream, not snapshot replacement). *)
        let f = ffile fs path in
        f.durable <- data;
        Buffer.clear f.pending

  let exists t path =
    match t with
    | File st -> Sys.file_exists (resolve st path)
    | Faulty fs -> Hashtbl.mem fs.files path

  let remove t path =
    match t with
    | File st ->
        close_channel st path;
        if Sys.file_exists (resolve st path) then Sys.remove (resolve st path)
    | Faulty fs -> Hashtbl.remove fs.files path

  let rename t src dst =
    match t with
    | File st ->
        close_channel st src;
        close_channel st dst;
        if Sys.file_exists (resolve st src) then Sys.rename (resolve st src) (resolve st dst)
    | Faulty fs -> (
        match Hashtbl.find_opt fs.files src with
        | None -> ()
        | Some f ->
            Hashtbl.remove fs.files src;
            Hashtbl.replace fs.files dst f)

  let crash t =
    match t with
    | File _ -> ()
    | Faulty fs ->
        Hashtbl.iter
          (fun _ f ->
            let tail = Buffer.contents f.pending in
            Buffer.clear f.pending;
            let n = String.length tail in
            if n > 0 && hit fs fs.faults.torn_write then begin
              (* a prefix of the unsynced tail reached the medium, cut at
                 an arbitrary byte offset: the torn write recovery must
                 detect and truncate *)
              fs.injected <- fs.injected + 1;
              f.durable <- f.durable ^ String.sub tail 0 (1 + Rng.int fs.rng ~bound:n)
            end)
          fs.files
end

(* ------------------------------------------------------------------ *)
(* The journal                                                         *)
(* ------------------------------------------------------------------ *)

type config = { max_segment_bytes : int; retain : int; sync_every : int }

let default_config = { max_segment_bytes = 1 lsl 20; retain = 3; sync_every = 1 }

type meters = {
  m_appends : Lla_obs.Metrics.counter;
  m_bytes : Lla_obs.Metrics.counter;
  m_syncs : Lla_obs.Metrics.counter;
  m_rotations : Lla_obs.Metrics.counter;
  m_snapshots : Lla_obs.Metrics.counter;
  m_wedged : Lla_obs.Metrics.counter;
}

type t = {
  store : Store.t;
  config : config;
  name : string;
  mutable seg_bytes : int;
  mutable since_sync : int;
  mutable wedged : bool;
  mutable appends : int;
  mutable bytes_written : int;
  mutable snapshots : int;
  mutable rotations : int;
  meters : meters option;
}

let mk_meters (obs : Lla_obs.t) =
  let c name help = Lla_obs.Metrics.counter obs.Lla_obs.metrics name ~help in
  {
    m_appends = c "lla_journal_appends_total" "Records appended to the write-ahead journal.";
    m_bytes = c "lla_journal_bytes_total" "Encoded bytes appended to journal segments.";
    m_syncs = c "lla_journal_syncs_total" "Sync barriers issued on the active segment.";
    m_rotations = c "lla_journal_rotations_total" "Active-segment rotations at the size cap.";
    m_snapshots = c "lla_journal_snapshots_total" "Snapshot + truncate compactions.";
    m_wedged = c "lla_journal_wedged_total" "Write failures that wedged the journal.";
  }

let active_name name = name ^ ".wal"

let seg_name name k = Printf.sprintf "%s.wal.%d" name k

let snap_name name = name ^ ".snap"

let create ?obs ?(config = default_config) ?(name = "journal") store =
  if config.max_segment_bytes <= 0 then invalid_arg "Journal.create: non-positive segment cap";
  if config.retain < 1 then invalid_arg "Journal.create: retain < 1";
  if config.sync_every < 1 then invalid_arg "Journal.create: sync_every < 1";
  let seg_bytes =
    match Store.read store (active_name name) with Some s -> String.length s | None -> 0
  in
  {
    store;
    config;
    name;
    seg_bytes;
    since_sync = 0;
    wedged = false;
    appends = 0;
    bytes_written = 0;
    snapshots = 0;
    rotations = 0;
    meters = Option.map mk_meters obs;
  }

let active_path t = active_name t.name

let meter t f = match t.meters with Some m -> Lla_obs.Metrics.incr (f m) | None -> ()

let meter_add t f n = match t.meters with Some m -> Lla_obs.Metrics.add (f m) n | None -> ()

let sync t =
  Store.sync t.store (active_path t);
  t.since_sync <- 0;
  meter t (fun m -> m.m_syncs)

(* The Rotate shifting idiom: drop the oldest, shift .k -> .(k+1), move
   the active segment to .1, start a fresh active segment. *)
let rotate t =
  sync t;
  Store.remove t.store (seg_name t.name t.config.retain);
  for k = t.config.retain - 1 downto 1 do
    Store.rename t.store (seg_name t.name k) (seg_name t.name (k + 1))
  done;
  Store.rename t.store (active_path t) (seg_name t.name 1);
  t.seg_bytes <- 0;
  t.rotations <- t.rotations + 1;
  meter t (fun m -> m.m_rotations)

let append t payload =
  if not t.wedged then begin
    let framed = encode_record payload in
    if t.seg_bytes > 0 && t.seg_bytes + String.length framed > t.config.max_segment_bytes then
      rotate t;
    match Store.append t.store (active_path t) framed with
    | Error _ ->
        (* degrade to cold-restart recovery, never crash the control
           plane over a full disk *)
        t.wedged <- true;
        meter t (fun m -> m.m_wedged)
    | Ok () ->
        t.seg_bytes <- t.seg_bytes + String.length framed;
        t.appends <- t.appends + 1;
        t.bytes_written <- t.bytes_written + String.length framed;
        meter t (fun m -> m.m_appends);
        meter_add t (fun m -> m.m_bytes) (String.length framed);
        t.since_sync <- t.since_sync + 1;
        if t.since_sync >= t.config.sync_every then sync t
  end

let snapshot t payloads =
  let b = Buffer.create 1024 in
  List.iter (fun p -> Buffer.add_string b (encode_record p)) payloads;
  Store.write t.store (snap_name t.name) (Buffer.contents b);
  for k = 1 to t.config.retain do
    Store.remove t.store (seg_name t.name k)
  done;
  Store.remove t.store (active_path t);
  t.seg_bytes <- 0;
  t.since_sync <- 0;
  t.wedged <- false;
  t.snapshots <- t.snapshots + 1;
  meter t (fun m -> m.m_snapshots)

let wedged t = t.wedged

let appends t = t.appends

let bytes_written t = t.bytes_written

let snapshots t = t.snapshots

let rotations t = t.rotations

let store t = t.store

let name t = t.name

let segment_paths t =
  let candidates =
    (snap_name t.name :: List.init t.config.retain (fun i -> seg_name t.name (t.config.retain - i)))
    @ [ active_path t ]
  in
  List.filter (Store.exists t.store) candidates
