(** Crash recovery: replay a {!Journal} into live state.

    [replay] walks the journal's surviving segments in order — snapshot
    first, then rotated segments oldest to newest, then the active
    segment — decoding each one with {!Journal.scan}. Within a segment
    replay stops at the first bad CRC (everything past a corruption is
    suspect); a torn tail on the {e active} segment is additionally
    truncated in place so the journal can keep appending from a clean
    frontier. Every decoded payload is handed to the caller's [apply]
    callback, which owns the semantic checks — in practice
    {!Lla_runtime.Checkpoint}'s save path, so non-finite refusal and
    staleness discard apply to disk state exactly as to live state.

    Replay is a total function of the stored bytes: it never raises on
    corruption, and replaying the same journal twice yields the same
    report (per-slot records are last-write-wins, so re-applying is
    idempotent — the oracle checks this).

    With [?obs], the recovery report additionally lands as trace
    [Note] events ([journal.replayed], [journal.refused],
    [journal.corrupt], [journal.truncated_bytes]) and bumps the
    [lla_journal_recoveries_total] / [lla_journal_replayed_total]
    counters; without it, recovery touches nothing observable. *)

type report = {
  snapshot_records : int;  (** records decoded from the snapshot file. *)
  wal_records : int;  (** records decoded from WAL segments. *)
  applied : int;  (** records the [apply] callback accepted. *)
  refused : int;  (** records the [apply] callback rejected. *)
  corrupt_segments : int;  (** segments with a corrupt suffix. *)
  truncated_bytes : int;  (** torn-tail bytes cut from the active segment. *)
}

val pp_report : Format.formatter -> report -> unit

val replay : ?obs:Lla_obs.t -> ?at:float -> Journal.t -> apply:(string -> bool) -> report
(** [replay journal ~apply] restores every surviving record through
    [apply] (which returns [true] when the record was accepted) and
    reports what happened. [at] stamps the trace events (default 0). *)
