type report = {
  snapshot_records : int;
  wal_records : int;
  applied : int;
  refused : int;
  corrupt_segments : int;
  truncated_bytes : int;
}

let pp_report fmt r =
  Format.fprintf fmt
    "recovery: snapshot=%d wal=%d applied=%d refused=%d corrupt_segments=%d truncated_bytes=%d"
    r.snapshot_records r.wal_records r.applied r.refused r.corrupt_segments r.truncated_bytes

let replay ?obs ?(at = 0.) journal ~apply =
  let store = Journal.store journal in
  let snap = Journal.name journal ^ ".snap" in
  let active = Journal.active_path journal in
  let snapshot_records = ref 0 in
  let wal_records = ref 0 in
  let applied = ref 0 in
  let refused = ref 0 in
  let corrupt_segments = ref 0 in
  let truncated_bytes = ref 0 in
  List.iter
    (fun path ->
      match Journal.Store.read store path with
      | None -> ()
      | Some contents ->
          let payloads, scan = Journal.decode contents in
          let n = List.length payloads in
          if path = snap then snapshot_records := !snapshot_records + n
          else wal_records := !wal_records + n;
          (match scan.Journal.corrupt_at with
          | None -> ()
          | Some _ ->
              incr corrupt_segments;
              (* the active segment keeps taking appends after recovery,
                 so its torn tail is cut physically; older segments are
                 immutable and just read short *)
              if path = active then begin
                truncated_bytes :=
                  !truncated_bytes + (scan.Journal.total_bytes - scan.Journal.good_bytes);
                Journal.Store.write store path
                  (String.sub contents 0 scan.Journal.good_bytes)
              end);
          List.iter (fun p -> if apply p then incr applied else incr refused) payloads)
    (Journal.segment_paths journal);
  (match obs with
  | None -> ()
  | Some o ->
      let c name help = Lla_obs.Metrics.counter o.Lla_obs.metrics name ~help in
      Lla_obs.Metrics.incr
        (c "lla_journal_recoveries_total" "Journal recovery replays performed.");
      Lla_obs.Metrics.add
        (c "lla_journal_replayed_total" "Records replayed from the journal at recovery.")
        (!snapshot_records + !wal_records);
      Lla_obs.Metrics.add
        (c "lla_journal_corrupt_total" "Segments found with a corrupt suffix at recovery.")
        !corrupt_segments;
      Lla_obs.Metrics.add
        (c "lla_journal_truncated_bytes_total" "Torn-tail bytes truncated at recovery.")
        !truncated_bytes;
      let note name value =
        Lla_obs.emit o ~at (Lla_obs.Trace.Note { name; value = float_of_int value })
      in
      note "journal.replayed" (!snapshot_records + !wal_records);
      note "journal.refused" !refused;
      note "journal.corrupt" !corrupt_segments;
      note "journal.truncated_bytes" !truncated_bytes);
  {
    snapshot_records = !snapshot_records;
    wal_records = !wal_records;
    applied = !applied;
    refused = !refused;
    corrupt_segments = !corrupt_segments;
    truncated_bytes = !truncated_bytes;
  }
