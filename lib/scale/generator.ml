open Lla_model

type params = {
  target_subtasks : int;
  n_resources : int;
  chain_weight : float;
  fan_out_weight : float;
  aggregation_weight : float;
  depth_range : int * int;
  width_range : int * int;
  sharing_skew : float;
  exec_range : float * float;
  latency_slack : float;
  utility_k_range : float * float;
  critical_margin_range : float * float;
  capacity_margin : float;
}

let default_params =
  {
    target_subtasks = 10_000;
    n_resources = 256;
    chain_weight = 1.;
    fan_out_weight = 1.;
    aggregation_weight = 1.;
    depth_range = (2, 8);
    width_range = (2, 6);
    sharing_skew = 2.;
    exec_range = (1., 8.);
    latency_slack = 4.;
    utility_k_range = (1.5, 3.);
    critical_margin_range = (1.25, 1.6);
    capacity_margin = 1.25;
  }

let sized ?resources ~subtasks () =
  let resources =
    match resources with Some r -> r | None -> Stdlib.max 16 (subtasks / 50)
  in
  { default_params with target_subtasks = subtasks; n_resources = resources }

let validate p =
  if p.target_subtasks < 2 then invalid_arg "Generator: target_subtasks < 2";
  if p.n_resources < 1 then invalid_arg "Generator: n_resources < 1";
  if p.chain_weight < 0. || p.fan_out_weight < 0. || p.aggregation_weight < 0. then
    invalid_arg "Generator: negative shape weight";
  if p.chain_weight +. p.fan_out_weight +. p.aggregation_weight <= 0. then
    invalid_arg "Generator: all shape weights zero";
  (let lo, hi = p.depth_range in
   if lo < 2 || hi < lo then invalid_arg "Generator: bad depth_range");
  (let lo, hi = p.width_range in
   if lo < 2 || hi < lo then invalid_arg "Generator: bad width_range");
  if p.sharing_skew < 1. then invalid_arg "Generator: sharing_skew < 1";
  (let lo, hi = p.exec_range in
   if lo <= 0. || hi < lo then invalid_arg "Generator: bad exec_range");
  if p.latency_slack <= 0. then invalid_arg "Generator: latency_slack <= 0";
  (let lo, hi = p.utility_k_range in
   if lo < 1. || hi < lo then invalid_arg "Generator: bad utility_k_range (k >= 1)");
  (let lo, hi = p.critical_margin_range in
   if lo <= 1. || hi < lo then invalid_arg "Generator: bad critical_margin_range");
  if p.capacity_margin <= 1. then invalid_arg "Generator: capacity_margin <= 1"

type shape =
  | Chain
  | Fan_out_tree
  | Aggregation_dag

(* Edge lists over local subtask indices 0..n-1; [n] is determined by the
   shape draw so the caller learns it from the builder. *)
let shape_edges shape ~depth ~width =
  match shape with
  | Chain ->
    (* 0 -> 1 -> ... -> depth-1 *)
    (depth, List.init (depth - 1) (fun i -> (i, i + 1)))
  | Fan_out_tree ->
    (* trunk 0..depth-1, then the last trunk node fans out to [width]
       leaves (a request that forks to parallel downstream services). *)
    let n = depth + width in
    let trunk = List.init (depth - 1) (fun i -> (i, i + 1)) in
    let leaves = List.init width (fun j -> (depth - 1, depth + j)) in
    (n, trunk @ leaves)
  | Aggregation_dag ->
    (* source 0 forks into [width] branches of length [b], all joining at
       a final aggregation node (scatter/gather). *)
    let b = Stdlib.max 1 (depth - 2) in
    let n = 2 + (width * b) in
    let join = n - 1 in
    let branch j =
      let first = 1 + (j * b) in
      ((0, first) :: List.init (b - 1) (fun k -> (first + k, first + k + 1)))
      @ [ (first + b - 1, join) ]
    in
    (n, List.concat (List.init width branch))

(* Drawn description of one task before materialization. *)
type draft = {
  task_id : int;
  first_sid : int;  (* global id of local subtask 0 *)
  edges : (int * int) list;
  execs : float array;
  lats : float array;  (* witness latencies, mutated by the rescale pass *)
  resources : int array;
  k : float;  (* linear utility slope *)
  margin : float;  (* critical time over witness critical path *)
}

let draw_shape rng p =
  let total = p.chain_weight +. p.fan_out_weight +. p.aggregation_weight in
  let u = Lla_stdx.Rng.uniform rng ~lo:0. ~hi:total in
  if u < p.chain_weight then Chain
  else if u < p.chain_weight +. p.fan_out_weight then Fan_out_tree
  else Aggregation_dag

let draw_in_range rng (lo, hi) = lo + Lla_stdx.Rng.int rng ~bound:(hi - lo + 1)

(* Zipf-ish resource pick: u^skew concentrates mass near index 0, giving
   hot resources shared by many tasks while the tail stays sparse. *)
let draw_resource rng p =
  let u = Lla_stdx.Rng.float rng in
  let idx = int_of_float (float_of_int p.n_resources *. (u ** p.sharing_skew)) in
  Stdlib.min (p.n_resources - 1) idx

let generate ?(params = default_params) ~seed () =
  validate params;
  let p = params in
  let rng = Lla_stdx.Rng.create ~seed in
  let exec_lo, exec_hi = p.exec_range in
  (* Pass 1: draw drafts until the subtask budget is reached. Draw order
     is fixed (shape, depth, width, execs, latency factors, resources,
     utility slope, critical margin) so generation is deterministic. *)
  let drafts = ref [] in
  let total_subtasks = ref 0 in
  let next_task = ref 1 in
  while !total_subtasks < p.target_subtasks do
    let shape = draw_shape rng p in
    let depth = draw_in_range rng p.depth_range in
    let width = draw_in_range rng p.width_range in
    let n, edges = shape_edges shape ~depth ~width in
    let execs = Array.init n (fun _ -> Lla_stdx.Rng.uniform rng ~lo:exec_lo ~hi:exec_hi) in
    let lats =
      Array.map
        (fun e -> e *. Lla_stdx.Rng.uniform rng ~lo:2. ~hi:(2. +. p.latency_slack))
        execs
    in
    let resources = Array.init n (fun _ -> draw_resource rng p) in
    let ulo, uhi = p.utility_k_range in
    let k = Lla_stdx.Rng.uniform rng ~lo:ulo ~hi:uhi in
    let mlo, mhi = p.critical_margin_range in
    let margin = Lla_stdx.Rng.uniform rng ~lo:mlo ~hi:mhi in
    drafts :=
      { task_id = !next_task; first_sid = !total_subtasks + 1; edges; execs; lats;
        resources; k; margin }
      :: !drafts;
    incr next_task;
    total_subtasks := !total_subtasks + n
  done;
  let drafts = List.rev !drafts in
  (* Pass 2: the witness must fit within availabilities <= 1. If any
     resource's witness share sum would need more than 1/capacity_margin,
     stretch every witness latency by a common factor (shares scale down
     inversely, preserving the structure of the draw). *)
  let witness_share () =
    let sums = Array.make p.n_resources 0. in
    List.iter
      (fun d ->
        Array.iteri (fun j r -> sums.(r) <- sums.(r) +. (d.execs.(j) /. d.lats.(j))) d.resources)
      drafts;
    sums
  in
  let max_sum = Array.fold_left Float.max 0. (witness_share ()) in
  let scale = Float.max 1. (max_sum *. p.capacity_margin) in
  List.iter (fun d -> Array.iteri (fun j lat -> d.lats.(j) <- lat *. scale) d.lats) drafts;
  let sums = witness_share () in
  (* The trigger period must exceed every witness latency so admission's
     rate-stability check has headroom; one shared period keeps scenarios
     comparable across sizes. *)
  let max_lat =
    List.fold_left (fun acc d -> Array.fold_left Float.max acc d.lats) 0. drafts
  in
  let period = Float.max 400. (4. *. max_lat) in
  (* Pass 3: materialize tasks; critical times from the (scaled) witness. *)
  let tasks =
    List.map
      (fun d ->
        let tid = Ids.Task_id.make d.task_id in
        let n = Array.length d.execs in
        let subtask_arr =
          Array.init n (fun j ->
              Subtask.make ~id:(d.first_sid + j) ~task:tid ~resource:d.resources.(j)
                ~exec_time:d.execs.(j) ())
        in
        let subtasks = Array.to_list subtask_arr in
        let graph =
          Graph.make_exn
            ~nodes:(List.map (fun (s : Subtask.t) -> s.id) subtasks)
            ~edges:
              (List.map
                 (fun (a, b) -> (subtask_arr.(a).Subtask.id, subtask_arr.(b).Subtask.id))
                 d.edges)
        in
        let _, witness_critical_path =
          Graph.critical_path graph ~latency:(fun id ->
              d.lats.(Ids.Subtask_id.to_int id - d.first_sid))
        in
        let critical_time = d.margin *. witness_critical_path in
        Task.make_exn ~variant:Utility.Path_weighted ~id:d.task_id ~subtasks ~graph
          ~critical_time
          ~utility:(Utility.linear ~k:d.k ~critical_time)
          ~trigger:(Trigger.periodic ~period ())
          ())
      drafts
  in
  let resources =
    List.init p.n_resources (fun r ->
        let availability =
          if sums.(r) = 0. then 1. else Float.min 1. (p.capacity_margin *. sums.(r))
        in
        Resource.make ~availability r)
  in
  Workload.make_exn ~tasks ~resources

let describe (w : Workload.t) =
  let tasks = List.length w.Workload.tasks in
  let subtasks =
    List.fold_left (fun acc (t : Task.t) -> acc + List.length t.Task.subtasks) 0 w.Workload.tasks
  in
  let paths =
    List.fold_left (fun acc (t : Task.t) -> acc + Array.length t.Task.paths) 0 w.Workload.tasks
  in
  Printf.sprintf "%d tasks / %d subtasks / %d paths / %d resources" tasks subtasks paths
    (List.length w.Workload.resources)
