(** Flat-array incremental LLA solve kernel.

    A compacted representation of the synchronous solver's iteration for
    planet-scale problems: per-subtask records are flattened into plain
    [float array]s plus four CSR adjacencies (subtask→paths,
    resource→subtasks, resource→paths, path→subtasks), and one tick —
    closed-form allocation, Eq. 8 resource prices, Eq. 9 path prices,
    adaptive step sizes — runs with {b zero allocation} (minor-words
    delta 0 when built without [?obs]; the property suite asserts this).

    The tick is {b incremental}: dirty sets track which subtasks,
    resources and paths can possibly change this iteration, and
    everything else is skipped with cached share sums and path
    latencies. The skip rule is exact, not approximate — a skipped
    resource provably satisfies [mu = 0], uncongested, step size at its
    initial value, and members' latencies unchanged, under which the
    reference update is the identity (and symmetrically for paths and
    subtasks). The kernel therefore produces {b bit-identical iterates}
    to {!Lla.Solver} on any problem both accept; the suite checks
    element-wise agreement within 1e-9 on random scenarios. See DESIGN
    §11 for the full equivalence argument.

    Scope: the kernel requires the closed-form allocation structure —
    every task utility linear (constant slope) and every share function
    reciprocal, which {!Generator} always emits and {!of_problem}
    verifies. Error-correction offsets, capacity/rate mutation and the
    solver's trace series are out of scope; capacities and stability
    bounds are snapshot at construction. *)

type config = {
  step_policy : Lla.Step_size.policy;
  mu0 : float;
  lambda0 : float;
  movement_tolerance : float;
      (** convergence: max relative latency change per tick *)
  convergence_window : int;  (** consecutive still ticks required *)
  feasibility_tolerance : float;  (** Eq. 3/4 relative tolerance *)
}

val default_config : config
(** Mirrors [Lla.Solver.default_config]: adaptive steps (initial 1,
    doubling, cap 4), [mu0 = 1], [lambda0 = 0], movement tolerance 0.01
    over a 50-tick window, feasibility tolerance 0.005. *)

val scale_config : config
(** [default_config] with a {!Lla.Step_size.split} step policy
    (resource cap 1e9, path cap 64) and the movement tolerance widened
    to 0.1. At 10^4+ subtasks the equilibrium prices of hot resources
    sit orders of magnitude above the solver default's reach (they
    grow with the square of the per-resource fan-in), and geometric
    step escalation discovers that magnitude in logarithmically-many
    ticks where the capped default crawls — but a path's step doubles
    while any traversed resource is congested, so sharing the
    unbounded cap with Eq. 9 turns long price-discovery streaks into
    violent path-price oscillation. The moderate path cap still lets a
    deadline-tight path's price climb during those streaks, and the
    wider tolerance (~1e-5 relative against the generator's O(1e4)
    critical times) rides out the tiny limit cycle the capped steps
    leave behind. Use for generated scale scenarios; the default
    remains right for Table-1-sized problems and for element-wise
    comparison against {!Lla.Solver}. *)

type t

val of_problem : ?obs:Lla_obs.t -> ?config:config -> Lla.Problem.t -> (t, string) result
(** Compact a compiled problem. [Error] when some task's utility is not
    linear or some share function is not reciprocal (the closed form
    does not apply — use {!Lla.Solver}). With [?obs], each tick is timed
    under [kernel.step] > [allocate] / [resource_prices] / [path_prices]
    via preallocated thunks (profiling adds clock reads, not garbage;
    the clock itself may box). *)

val create : ?obs:Lla_obs.t -> ?config:config -> Lla_model.Workload.t -> (t, string) result
(** [Problem.compile] + {!of_problem}. *)

val problem : t -> Lla.Problem.t

val n_subtasks : t -> int

val n_resources : t -> int

val n_paths : t -> int

val step : t -> unit
(** One LLA tick over the current dirty sets. *)

val run : t -> iterations:int -> unit

val solve : t -> max_iterations:int -> int option
(** Step until the movement stays at or below [movement_tolerance] for
    [convergence_window] consecutive ticks with a feasible allocation;
    [Some] final iteration count, [None] if the budget runs out. *)

val iteration : t -> int

val movement : t -> float
(** Max relative latency change of the last tick. *)

val utility : t -> float

val feasible : t -> bool
(** Eq. 3/4 within [feasibility_tolerance], from the cached share sums
    and path latencies (exact after any full tick). *)

val violations : t -> string list

val guard_events : t -> int
(** Non-finite iterate components neutralized, as in the solver. *)

val lat_array : t -> float array
(** The live latency iterate, indexed like [problem.subtasks]. Exposed
    for benchmarks and the equivalence suite; treat as read-only. *)

val mu_array : t -> float array

val lambda_array : t -> float array

type touch_stats = {
  subtasks_touched : int;
  resources_touched : int;
  paths_touched : int;
  subtasks_total : int;
  resources_total : int;
  paths_total : int;
}
(** How much of the problem one tick (or a whole run) actually visited —
    the sparsity the dirty sets buy. *)

val last_touch : t -> touch_stats

val cumulative_touch : t -> touch_stats
