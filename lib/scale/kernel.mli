(** Flat-array incremental LLA solve kernel.

    A compacted representation of the synchronous solver's iteration for
    planet-scale problems: per-subtask records are flattened into plain
    [float array]s plus four CSR adjacencies (subtask→paths,
    resource→subtasks, resource→paths, path→subtasks), and one tick —
    closed-form allocation, Eq. 8 resource prices, Eq. 9 path prices,
    adaptive step sizes — runs with {b zero allocation} (minor-words
    delta 0 when built without [?obs]; the property suite asserts this).

    The tick is {b incremental}: dirty sets track which subtasks,
    resources and paths can possibly change this iteration, and
    everything else is skipped with cached share sums and path
    latencies. The skip rule is exact, not approximate — a skipped
    resource provably satisfies [mu = 0], uncongested, step size at its
    initial value, and members' latencies unchanged, under which the
    reference update is the identity (and symmetrically for paths and
    subtasks). The kernel therefore produces {b bit-identical iterates}
    to {!Lla.Solver} on any problem both accept; the suite checks
    element-wise agreement within 1e-9 on random scenarios. See DESIGN
    §11 for the full equivalence argument.

    Scope: the kernel requires the closed-form allocation structure —
    every task utility linear (constant slope) and every share function
    reciprocal, which {!Generator} always emits and {!of_problem}
    verifies. Error-correction offsets and the solver's trace series are
    out of scope; stability bounds are snapshot at construction.

    Between ticks the kernel additionally supports {b churn} — whole
    task blocks retired and re-admitted incrementally
    ({!retire_task} / {!admit_task}), which is what finally gives the
    dirty sets real cold zones to skip — and the {b chaos / safe-mode
    hooks} the soak harness drives: price poisoning, capacity mutation
    and latency disturbance ({!poison_price}, {!set_capacity},
    {!disturb_latency}), plus a clamped-fallback safe-mode entry with
    the same price-healing discipline as [Distributed.enter_safe_mode]
    ({!enter_fallback}, {!set_frozen}). *)

type config = {
  step_policy : Lla.Step_size.policy;
  mu0 : float;
  lambda0 : float;
  movement_tolerance : float;
      (** convergence: max relative latency change per tick *)
  convergence_window : int;  (** consecutive still ticks required *)
  feasibility_tolerance : float;  (** Eq. 3/4 relative tolerance *)
}

val default_config : config
(** Mirrors [Lla.Solver.default_config]: adaptive steps (initial 1,
    doubling, cap 4), [mu0 = 1], [lambda0 = 0], movement tolerance 0.01
    over a 50-tick window, feasibility tolerance 0.005. *)

val scale_config : config
(** [default_config] with a {!Lla.Step_size.split} step policy
    (resource cap 1e9, path cap 64) and the movement tolerance widened
    to 0.1. At 10^4+ subtasks the equilibrium prices of hot resources
    sit orders of magnitude above the solver default's reach (they
    grow with the square of the per-resource fan-in), and geometric
    step escalation discovers that magnitude in logarithmically-many
    ticks where the capped default crawls — but a path's step doubles
    while any traversed resource is congested, so sharing the
    unbounded cap with Eq. 9 turns long price-discovery streaks into
    violent path-price oscillation. The moderate path cap still lets a
    deadline-tight path's price climb during those streaks, and the
    wider tolerance (~1e-5 relative against the generator's O(1e4)
    critical times) rides out the tiny limit cycle the capped steps
    leave behind. Use for generated scale scenarios; the default
    remains right for Table-1-sized problems and for element-wise
    comparison against {!Lla.Solver}. *)

type t

val of_problem : ?obs:Lla_obs.t -> ?config:config -> Lla.Problem.t -> (t, string) result
(** Compact a compiled problem. [Error] when some task's utility is not
    linear or some share function is not reciprocal (the closed form
    does not apply — use {!Lla.Solver}). With [?obs], each tick is timed
    under [kernel.step] > [allocate] / [resource_prices] / [path_prices]
    via preallocated thunks (profiling adds clock reads, not garbage;
    the clock itself may box), and the tick thunk also bumps the
    [lla_kernel_*_total] counters in the handle's registry — ticks,
    touched subtasks/resources/paths, guard events — as plain integer
    adds on preallocated instances, keeping the hot path
    allocation-free. Gauges ([lla_kernel_utility] / [_movement] /
    [_active_tasks]) box on write and are therefore only refreshed by
    {!publish_metrics}. *)

val create : ?obs:Lla_obs.t -> ?config:config -> Lla_model.Workload.t -> (t, string) result
(** [Problem.compile] + {!of_problem}. *)

val problem : t -> Lla.Problem.t

val n_subtasks : t -> int

val n_resources : t -> int

val n_paths : t -> int

val step : t -> unit
(** One LLA tick over the current dirty sets. *)

val run : t -> iterations:int -> unit

val solve : t -> max_iterations:int -> int option
(** Step until the movement stays at or below [movement_tolerance] for
    [convergence_window] consecutive ticks with a feasible allocation;
    [Some] final iteration count, [None] if the budget runs out. *)

val iteration : t -> int

val movement : t -> float
(** Max relative latency change of the last tick. *)

val utility : t -> float
(** Total utility of the {e active} tasks at the live iterate (retired
    blocks hold placeholder latencies and are excluded). *)

val feasible : t -> bool
(** Eq. 3/4 within [feasibility_tolerance], from the cached share sums
    and path latencies (exact after any full tick). Retired blocks
    contribute zero share and infinite critical times, so only active
    tasks constrain the answer. *)

val feasible_within : t -> tol:float -> bool
(** {!feasible} at an explicit relative tolerance. *)

val resources_feasible : t -> tol:float -> bool
(** The Eq. 3 half of {!feasible_within} alone: every cached share sum
    within [cap * (1 + tol)]. The soak harness judges the two halves on
    different grace schedules — an admission can transiently overshoot a
    path's deadline (Eq. 4) while its resource floor shares always fit. *)

val paths_feasible : t -> tol:float -> bool
(** The Eq. 4 half: every cached path latency within [C * (1 + tol)]. *)

val violations : t -> string list

val guard_events : t -> int
(** Non-finite iterate components neutralized, as in the solver. *)

val publish_metrics : t -> at:float -> unit
(** Refresh the [lla_kernel_utility] / [lla_kernel_movement] /
    [lla_kernel_active_tasks] gauges (stamped [at] for
    {!Lla_obs.Metrics.merge}'s last-writer rule). A no-op without
    [?obs]. Gauge writes box their float, so this belongs at a health /
    publish cadence, never inside the tick loop; {!utility} is
    O(active tasks). *)

val lat_array : t -> float array
(** The live latency iterate, indexed like [problem.subtasks]. Exposed
    for benchmarks and the equivalence suite; treat as read-only. *)

val mu_array : t -> float array

val lambda_array : t -> float array

type touch_stats = {
  subtasks_touched : int;
  resources_touched : int;
  paths_touched : int;
  subtasks_total : int;
  resources_total : int;
  paths_total : int;
}
(** How much of the problem one tick (or a whole run) actually visited —
    the sparsity the dirty sets buy. *)

val last_touch : t -> touch_stats

val cumulative_touch : t -> touch_stats

(** {1 Churn: incremental admit / retire}

    All mutators below run {e between} ticks (they are not part of the
    zero-allocation hot path; each touches only the task block or entity
    it names and pushes it onto the next tick's dirty queues). *)

val n_tasks : t -> int

val n_active_tasks : t -> int

val task_active : t -> int -> bool

val retire_task : t -> int -> unit
(** Remove task [k]'s block from the optimization: its shares vanish
    from Eq. 3, its deadlines from Eq. 4, its utility from {!utility}.
    The block's cells are rewritten so every subsequent pass update over
    them is provably the identity — no per-entity branch is added to the
    tick. Shared resources see the vanished share and re-price, rippling
    through the dirty sets exactly like any other local change.
    @raise Invalid_argument if [k] is out of range or already retired. *)

val admit_task : t -> int -> unit
(** Restore task [k]'s block with its construction-time coefficients and
    initial iterate; it converges into the running system. An admit
    followed by a retire in the same inter-tick gap is bit-for-bit
    invisible (the property suite checks this).
    @raise Invalid_argument if [k] is out of range or already active. *)

(** {1 Chaos injection + safe-mode support} *)

val poison_price : t -> int -> float -> unit
(** Overwrite resource [r]'s price with an arbitrary value (NaN and
    infinities included) — parity with [Distributed.poison_price]. The
    pass-level finite-value guards heal the write on the next tick. *)

val capacity : t -> int -> float

val set_capacity : t -> int -> float -> unit
(** Change resource [r]'s capacity [B_r] online (finite, positive); the
    price update integrates against the new capacity from the next tick
    on. *)

val disturb_latency : t -> int -> float -> unit
(** Shift subtask [i]'s latency iterate by [delta], clamped to its
    bounds (no-op on retired blocks) — an exogenous disturbance the
    optimizer then heals. *)

val enter_fallback : t -> ?heal_above:float -> lat:float array -> unit -> unit
(** Safe-mode entry with [Distributed.enter_safe_mode]'s discipline:
    clamp every active subtask's latency to [lat] (projected onto its
    bounds, non-finite entries to the upper bound), heal non-finite or
    above-[heal_above] resource prices back to [mu0] (default cap:
    [min 1e6 (1000 * max 1 mu0)]) and non-finite path prices to 0, reset
    both step-size families, and mark everything dirty so the caches are
    rebuilt from the clamped state. Typically followed by
    [set_frozen t true] for the dwell. *)

val set_frozen : t -> bool -> unit
(** While frozen, the allocation pass holds every latency (movement
    reads 0) and only the price passes run — prices decay toward rest on
    the clamped feasible allocation. Unfreezing resumes optimization;
    call {!requeue_all} alongside so the full problem re-enters the
    dirty sets. *)

val frozen : t -> bool

val requeue_all : t -> unit
(** Push every subtask, resource and path onto the next tick's queues
    with all caches marked stale — a full-problem tick. *)

(** {1 Crash recovery}

    The soak harness's whole-node crash drill: {!crash_reset} models the
    process image vanishing, {!restore_iterate} is the warm path fed
    from a replayed {!Lla_durable.Journal} record. *)

val crash_reset : t -> unit
(** Revert every live iterate component to its construction-time initial
    value — active latencies to [lat_hi], resource prices to [mu0] with
    step sizes at initial, path prices to [lambda0] — unfreeze, and
    {!requeue_all}. Churn membership survives (it is control-plane
    state): retired blocks keep their identity placeholders rather than
    resurrecting. The cold half of a crash drill; convergence restarts
    from scratch. *)

val restore_iterate :
  t -> lat:float array -> mu:float array -> lambda:float array -> (unit, string) result
(** Warm-restore the iterate from a journaled snapshot, typically right
    after {!crash_reset}. Total in its inputs: [Error] on a length
    mismatch or {e any} non-finite component (the caller stays on the
    cold reset state — a torn or poisoned record must never enact),
    otherwise latencies are clamped to the live bounds, prices to
    non-negative, retired blocks are left untouched, and the whole
    problem is requeued. Step sizes stay at their reset values rather
    than trusting a stale snapshot's gamma. *)
