(** Seeded planet-scale scenario generator.

    Produces workloads with 10^4..10^6 subtasks spread over thousands of
    resources by composing the three task shapes the model already
    covers — chains, fan-out trees and aggregation DAGs — under
    configurable depth/width/sharing distributions. The output is a
    standard {!Lla_model.Workload.t}, so every existing consumer
    (compile, solver, baseline, obs, chaos) runs unchanged; the
    {!Lla_scale.Kernel} additionally requires the linear-utility /
    reciprocal-share structure this generator always emits.

    Generation is deterministic: the same [params] and [seed] yield a
    byte-identical workload (see [Workload_codec.to_string]), which the
    property suite asserts. Feasibility is by construction — every draw
    carries a witness latency assignment that is rescaled until the
    witness fits all capacities with margin, and critical times / periods
    are set above the witness critical paths — so generated scenarios
    pass [Schedulability] admission. *)

type params = {
  target_subtasks : int;  (** stop adding tasks once this many subtasks exist *)
  n_resources : int;
  chain_weight : float;  (** relative odds of drawing a chain task *)
  fan_out_weight : float;  (** ... a fan-out tree task *)
  aggregation_weight : float;  (** ... an aggregation (join) DAG task *)
  depth_range : int * int;  (** chain length / trunk depth, inclusive, lo >= 2 *)
  width_range : int * int;  (** leaves / parallel branches, inclusive, lo >= 2 *)
  sharing_skew : float;
      (** resource-pick exponent: 1 = uniform; larger concentrates load
          on low-index resources (zipf-ish hot spots) *)
  exec_range : float * float;  (** per-subtask execution time draw, ms *)
  latency_slack : float;  (** witness latency is exec * U(2, 2 + slack) *)
  utility_k_range : float * float;  (** linear utility slope draw, >= 1 *)
  critical_margin_range : float * float;  (** critical time over witness, > 1 *)
  capacity_margin : float;  (** capacity headroom over witness shares, > 1 *)
}

val default_params : params
(** 10^4 subtasks over 256 resources, equal shape mix, skew 2. *)

val sized : ?resources:int -> subtasks:int -> unit -> params
(** [default_params] resized to [subtasks]; [resources] defaults to
    [max 16 (subtasks / 50)] (thousands of resources at 10^5 and up). *)

val generate : ?params:params -> seed:int -> unit -> Lla_model.Workload.t
(** Deterministic in [(params, seed)]. Raises [Invalid_argument] on
    nonsensical parameters. *)

val describe : Lla_model.Workload.t -> string
(** One-line [tasks/subtasks/paths/resources] summary. O(workload) —
    safe on generated scenarios, unlike the quadratic [Workload.stats]. *)
