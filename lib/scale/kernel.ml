module P = Lla.Problem

type config = {
  step_policy : Lla.Step_size.policy;
  mu0 : float;
  lambda0 : float;
  movement_tolerance : float;
  convergence_window : int;
  feasibility_tolerance : float;
}

let default_config =
  {
    step_policy = Lla.Step_size.adaptive ~initial:1.0 ();
    mu0 = 1.0;
    lambda0 = 0.0;
    movement_tolerance = 0.01;
    convergence_window = 50;
    feasibility_tolerance = 0.005;
  }

(* At planet scale the two price families need opposite step treatment.
   The equilibrium price of a hot resource grows with the square of its
   member count (mu* ~ (sum_i sqrt(w_i p_i) / B_r)^2, easily 1e6+ for
   thousands of subtasks per resource), so the solver default's 4x step
   cap leaves Eq. 8 crawling additively toward a far-away optimum:
   resource steps want a practically unbounded cap to discover that
   magnitude geometrically. But a path's step doubles while ANY traversed
   resource is congested, and price discovery on hot resources produces
   long congested streaks — under the same unbounded cap gamma_p
   reaches 1e9 and Eq. 9 oscillates violently. Hence Split: escalate
   resources hard, paths gently (cap 64 — enough for a deadline-tight
   path's lambda to climb during the congestion streaks it rides on;
   the paper's default cap of 4 leaves it crawling additively forever).

   The movement tolerance is the neighborhood-convergence knob. With
   step-escalation caps, dual ascent on a scenario whose active
   constraints have O(1e6) equilibrium prices does not reach a
   fixpoint: it settles into a small periodic cycle around the optimum
   (measured on the seeded 1e5-subtask scenario: period 10, movement
   0.03-0.59 against latencies of O(1e4), worst transient constraint
   excess ~5%, recurring fully-feasible ticks every period). [solve]
   requires movement <= tolerance for a whole window AND Eq. 3/4
   feasibility at the stopping tick, so a tolerance of 1.0 — above the
   cycle amplitude, still ~1e-4 relative to the latency scale — makes
   it terminate at a feasible snapshot of the terminal cycle: the
   standard best-feasible-iterate readout for subgradient methods. The
   feasibility tolerance itself stays at the default, so the returned
   assignment meets Eq. 3/4 as tightly as the solver's answers do. *)
let scale_config =
  {
    default_config with
    step_policy =
      Lla.Step_size.split
        ~resource:(Lla.Step_size.adaptive ~initial:1.0 ~cap:1e9 ())
        ~path:(Lla.Step_size.adaptive ~initial:1.0 ~cap:64. ());
    movement_tolerance = 1.0;
  }

(* Per-tick meters (PR 9): registered in the [?obs] registry and bumped
   by the tick thunk itself — integer counter adds, so the zero-alloc
   discipline below survives. Gauges box their float on [set], so they
   are written only by [publish_metrics] (call it at a health cadence,
   never per tick). *)
type kmeters = {
  k_ticks : Lla_obs.Metrics.counter;
  k_sub : Lla_obs.Metrics.counter;
  k_res : Lla_obs.Metrics.counter;
  k_path : Lla_obs.Metrics.counter;
  k_guards : Lla_obs.Metrics.counter;
  mutable k_guards_seen : int;  (* cumulative guards already exported *)
  k_util : Lla_obs.Metrics.gauge;
  k_move : Lla_obs.Metrics.gauge;
  k_active : Lla_obs.Metrics.gauge;
}

(* Allocation discipline for the tick: everything the three passes touch
   is a flat [float array] / [int array] cell or an immediate record
   field, so one tick allocates nothing. In particular:
   - running float accumulators live in [scratch] (a local [ref] would
     allocate its cell; float-array stores are unboxed);
   - [Float.is_finite] / [Float.max] / [Float.min] are hand-inlined —
     a non-inlined call boxes its float arguments. The inlined forms
     reproduce the stdlib semantics on every value the tick can see
     (finiteness via [x -. x = 0.]; NaN propagates through the clamp
     because every comparison with NaN is false; the projection
     [if 0. >= v then 0. else v] maps -0. to +0. like [Float.max 0. v]). *)
type t = {
  problem : P.t;
  config : config;
  n_sub : int;
  n_res : int;
  n_path : int;
  (* subtask state + compacted coefficients *)
  lat : float array;
  sub_res : int array;  (* subtask -> resource index *)
  work : float array;  (* (c + l) of the reciprocal share = Share.lat_min *)
  lo_b : float array;  (* effective latency bounds at offset 0 *)
  hi_b : float array;
  press0 : float array;  (* |utility slope| * aggregation weight *)
  sp_off : int array;  (* subtask -> global path ids (CSR) *)
  sp_idx : int array;
  (* resource state *)
  mu : float array;
  cap : float array;  (* capacities, snapshot at construction *)
  share_sum : float array;  (* cache: share sum as of the last tick *)
  congested : bool array;
  gamma_r : float array;
  rs_off : int array;  (* resource -> subtask indices (ascending; CSR) *)
  rs_idx : int array;
  rp_off : int array;  (* resource -> distinct path ids (CSR) *)
  rp_idx : int array;
  (* path state *)
  lambda : float array;
  gamma_p : float array;
  path_lat : float array;  (* cache: path latency as of the last tick *)
  crit : float array;
  ps_off : int array;  (* path -> subtask indices (CSR) *)
  ps_idx : int array;
  path_hot : int array;  (* # traversed resources currently congested *)
  (* churn support: per-task activation plus construction-time copies of
     every coefficient retirement clobbers, so a re-admitted task block is
     restored bit-for-bit (see retire_task / admit_task below) *)
  n_task : int;
  active : bool array;
  mutable n_inactive : int;
  mutable frozen : bool;  (* safe-mode dwell: hold the allocation *)
  work0 : float array;
  press00 : float array;
  lo0 : float array;
  hi0 : float array;
  lat0 : float array;
  crit0 : float array;
  (* step policy, unpacked per price family (identical unless Split) *)
  adaptive_r : bool;
  g_init_r : float;
  g_mult_r : float;
  g_cap_r : float;
  adaptive_p : bool;
  g_init_p : float;
  g_mult_p : float;
  g_cap_p : float;
  (* dirty-set queues. An id is in the queue for tick [k] iff its mark
     equals [k]; resources and paths use two buffers (the current tick's
     queue is scanned while the next tick's fills), subtasks one (their
     queue is drained before any push for the next tick happens). The
     [*_dirty] stamps are finer than queue membership: they record that
     the cached sum itself must be recomputed this tick, not merely that
     the price update must run. *)
  sub_q : int array;
  mutable sub_count : int;
  sub_mark : int array;
  mutable res_q : int array;
  mutable res_count : int;
  mutable res_q2 : int array;
  mutable res_count2 : int;
  res_mark : int array;
  res_dirty : int array;
  mutable path_q : int array;
  mutable path_count : int;
  mutable path_q2 : int array;
  mutable path_count2 : int;
  path_mark : int array;
  path_dirty : int array;
  (* tick bookkeeping *)
  mutable tick : int;
  mutable guards : int;
  scratch : float array;  (* 0: running sum, 1: movement of the last tick *)
  mutable touch_sub : int;
  mutable touch_res : int;
  mutable touch_path : int;
  mutable cum_sub : int;
  mutable cum_res : int;
  mutable cum_path : int;
  (* profiling thunks, preallocated so a profiled tick allocates no
     closures either *)
  mutable th_tick : unit -> unit;
  mutable th_prof : unit -> unit;
  mutable km : kmeters option;  (* Some iff built with [?obs] *)
}

(* ------------------------------------------------------------------ *)
(* The three passes of one tick                                        *)
(* ------------------------------------------------------------------ *)

(* The passes use unchecked array access: every index they dereference is
   either a CSR entry or a queue element, and both are validated by
   construction — [csr_of] only stores ids below the family's length,
   queue counts never exceed the family's length because the mark arrays
   dedup every push. Bounds checks would cost ~30% of the tick on these
   loops and can never fire. *)
(* Primitive externals, not [let]-aliases of [Array.unsafe_get]: a [let]
   rebinding eta-expands the primitive into a generic function, and every
   float access then goes through [caml_apply] with a boxed result —
   measurably slower than the checked access, and it allocates. Declared
   as externals, each fully-applied use site compiles to the unboxed
   flat-float-array instruction. *)
external ug : 'a array -> int -> 'a = "%array_unsafe_get"

external us : 'a array -> int -> 'a -> unit = "%array_unsafe_set"

(* Closed-form allocation (Allocation.closed_form at offset 0) for every
   queued subtask; queues the resources and paths whose sums changed. *)
let alloc_pass t =
  let tick = t.tick in
  let n = t.sub_count in
  t.scratch.(1) <- 0.;
  (* safe-mode dwell: every latency is held at the clamped fallback, so
     the pass reduces to draining the queue. The price passes keep
     running on the frozen (feasible) allocation, which lets mu/lambda
     integrate their now-nonnegative slack back toward rest. *)
  if not t.frozen then
  for k = 0 to n - 1 do
    let i = ug t.sub_q k in
    let mu_r = ug t.mu (ug t.sub_res i) in
    let start = ug t.sp_off i in
    let stop = ug t.sp_off (i + 1) - 1 in
    us t.scratch 0 0.;
    for e = start to stop do
      us t.scratch 0 (ug t.scratch 0 +. ug t.lambda (ug t.sp_idx e))
    done;
    let pressure = ug t.press0 i +. ug t.scratch 0 in
    let lo = ug t.lo_b i and hi = ug t.hi_b i in
    let cand =
      if mu_r <= 0. then if pressure > 0. then lo else hi
      else if pressure <= 0. then hi
      else begin
        let x = sqrt (mu_r *. ug t.work i /. pressure) in
        let a = if lo >= x then lo else x in
        if hi <= a then hi else a
      end
    in
    let old = ug t.lat i in
    let lat' =
      if cand -. cand = 0. then cand
      else begin
        (* Allocation.sanitize: keep the last finite latency, else the
           conservative upper bound. *)
        t.guards <- t.guards + 1;
        if old -. old = 0. then old else hi
      end
    in
    if lat' <> old then begin
      us t.lat i lat';
      let denom = if lat' >= 1e-9 then lat' else 1e-9 in
      let m = Float.abs (lat' -. old) /. denom in
      if m > ug t.scratch 1 then us t.scratch 1 m;
      (* the share on i's resource and the latency of i's paths moved *)
      let r = ug t.sub_res i in
      us t.res_dirty r tick;
      if ug t.res_mark r <> tick then begin
        us t.res_mark r tick;
        us t.res_q t.res_count r;
        t.res_count <- t.res_count + 1
      end;
      for e = start to stop do
        let p = ug t.sp_idx e in
        us t.path_dirty p tick;
        if ug t.path_mark p <> tick then begin
          us t.path_mark p tick;
          us t.path_q t.path_count p;
          t.path_count <- t.path_count + 1
        end
      done
    end
  done;
  t.touch_sub <- n;
  t.sub_count <- 0

(* Eq. 8 (Price_update.update_resource) for every queued resource:
   recompute the share sum iff some member latency moved, integrate the
   slack into mu, maintain the congestion flags / hot-path counters /
   adaptive step, and queue dependents. *)
let resource_pass t =
  let tick = t.tick in
  let next = tick + 1 in
  let n = t.res_count in
  for k = 0 to n - 1 do
    let r = ug t.res_q k in
    if not (ug t.mu r -. ug t.mu r = 0.) then begin
      t.guards <- t.guards + 1;
      us t.mu r 0.
    end;
    let rs_start = ug t.rs_off r in
    let rs_stop = ug t.rs_off (r + 1) - 1 in
    let used =
      if ug t.res_dirty r = tick then begin
        us t.scratch 0 0.;
        for e = rs_start to rs_stop do
          let i = ug t.rs_idx e in
          let w = ug t.work i in
          let l = ug t.lat i in
          (* effective_share at offset 0: w / max lat_min lat *)
          let arg = if w >= l then w else l in
          us t.scratch 0 (ug t.scratch 0 +. (w /. arg))
        done;
        let s = ug t.scratch 0 in
        us t.share_sum r s;
        s
      end
      else ug t.share_sum r
    in
    if used -. used = 0. then begin
      let old_mu = ug t.mu r in
      let v = old_mu -. (ug t.gamma_r r *. (ug t.cap r -. used)) in
      let mu' = if 0. >= v then 0. else v in
      if mu' -. mu' = 0. && mu' <> old_mu then begin
        us t.mu r mu';
        (* a changed price re-solves every subtask on r next tick *)
        for e = rs_start to rs_stop do
          let i = ug t.rs_idx e in
          if ug t.sub_mark i <> next then begin
            us t.sub_mark i next;
            us t.sub_q t.sub_count i;
            t.sub_count <- t.sub_count + 1
          end
        done
      end
    end
    else t.guards <- t.guards + 1;
    (* NaN compares false, so a guarded resource reads uncongested,
       exactly like Price_update. *)
    let now = used > ug t.cap r +. 1e-12 in
    if now <> ug t.congested r then begin
      us t.congested r now;
      let d = if now then 1 else -1 in
      for e = ug t.rp_off r to ug t.rp_off (r + 1) - 1 do
        let p = ug t.rp_idx e in
        us t.path_hot p (ug t.path_hot p + d)
      done
    end;
    if now then
      (* every path through a congested resource updates this very tick:
         its step size doubles even when its latency is unchanged *)
      for e = ug t.rp_off r to ug t.rp_off (r + 1) - 1 do
        let p = ug t.rp_idx e in
        if ug t.path_mark p <> tick then begin
          us t.path_mark p tick;
          us t.path_q t.path_count p;
          t.path_count <- t.path_count + 1
        end
      done;
    if t.adaptive_r then
      us t.gamma_r r
        (if now then
           let g = ug t.gamma_r r *. t.g_mult_r in
           if t.g_cap_r <= g then t.g_cap_r else g
         else t.g_init_r);
    (* a live price keeps integrating its slack until it hits 0 *)
    if ug t.mu r > 0. && ug t.res_mark r <> next then begin
      us t.res_mark r next;
      us t.res_q2 t.res_count2 r;
      t.res_count2 <- t.res_count2 + 1
    end
  done;
  t.touch_res <- t.res_count

(* Eq. 9 (Price_update.update_path) plus the path half of
   Step_size.observe for every queued path. *)
let path_pass t =
  let tick = t.tick in
  let next = tick + 1 in
  let n = t.path_count in
  for k = 0 to n - 1 do
    let p = ug t.path_q k in
    if not (ug t.lambda p -. ug t.lambda p = 0.) then begin
      t.guards <- t.guards + 1;
      us t.lambda p 0.
    end;
    let ps_start = ug t.ps_off p in
    let ps_stop = ug t.ps_off (p + 1) - 1 in
    let latency =
      if ug t.path_dirty p = tick then begin
        us t.scratch 0 0.;
        for e = ps_start to ps_stop do
          us t.scratch 0 (ug t.scratch 0 +. ug t.lat (ug t.ps_idx e))
        done;
        let s = ug t.scratch 0 in
        us t.path_lat p s;
        s
      end
      else ug t.path_lat p
    in
    if latency -. latency = 0. then begin
      let old_l = ug t.lambda p in
      let v = old_l -. (ug t.gamma_p p *. (1. -. (latency /. ug t.crit p))) in
      let l' = if 0. >= v then 0. else v in
      if l' -. l' = 0. && l' <> old_l then begin
        us t.lambda p l';
        for e = ps_start to ps_stop do
          let i = ug t.ps_idx e in
          if ug t.sub_mark i <> next then begin
            us t.sub_mark i next;
            us t.sub_q t.sub_count i;
            t.sub_count <- t.sub_count + 1
          end
        done
      end
    end
    else t.guards <- t.guards + 1;
    (* the [crit < infinity] guard keeps retired paths (crit pinned at
       infinity, see retire_task) from escalating their step when a
       congested shared resource floods them into the queue: a retired
       path must provably hold lambda = 0 and gamma at initial so that
       re-admission restores its block bit-for-bit. Live paths always
       have finite critical times, so the guard is value-neutral for
       them. *)
    if t.adaptive_p then
      us t.gamma_p p
        (if ug t.path_hot p > 0 && ug t.crit p < infinity then
           let g = ug t.gamma_p p *. t.g_mult_p in
           if t.g_cap_p <= g then t.g_cap_p else g
         else t.g_init_p);
    (* keep the path live while its price or step carries state; a path
       that drops out satisfies lambda = 0, gamma at initial, members
       still, slack >= 0 — on which the reference update is the identity *)
    if
      (ug t.lambda p > 0. || (t.adaptive_p && ug t.gamma_p p <> t.g_init_p))
      && ug t.path_mark p <> next
    then begin
      us t.path_mark p next;
      us t.path_q2 t.path_count2 p;
      t.path_count2 <- t.path_count2 + 1
    end
  done;
  t.touch_path <- t.path_count

let finish t =
  t.cum_sub <- t.cum_sub + t.touch_sub;
  t.cum_res <- t.cum_res + t.touch_res;
  t.cum_path <- t.cum_path + t.touch_path;
  let q = t.res_q in
  t.res_q <- t.res_q2;
  t.res_q2 <- q;
  t.res_count <- t.res_count2;
  t.res_count2 <- 0;
  let q = t.path_q in
  t.path_q <- t.path_q2;
  t.path_q2 <- q;
  t.path_count <- t.path_count2;
  t.path_count2 <- 0;
  t.tick <- t.tick + 1

let tick t =
  alloc_pass t;
  resource_pass t;
  path_pass t;
  finish t

let step t = t.th_tick ()

let run t ~iterations =
  for _ = 1 to iterations do
    step t
  done

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let of_problem ?obs ?(config = default_config) (problem : P.t) =
  let n_sub = P.n_subtasks problem in
  let n_res = P.n_resources problem in
  let n_path = P.n_paths problem in
  let unsupported = ref None in
  Array.iter
    (fun (task : P.task) ->
      if task.P.linear_slope = None && !unsupported = None then
        unsupported := Some (Printf.sprintf "task %s: non-linear utility" task.P.task_name))
    problem.P.tasks;
  Array.iter
    (fun (s : P.subtask) ->
      if
        (not (String.equal s.P.share.Lla_model.Share.name "reciprocal"))
        && !unsupported = None
      then unsupported := Some (Printf.sprintf "subtask %s: non-reciprocal share" s.P.name))
    problem.P.subtasks;
  match !unsupported with
  | Some reason -> Error ("Kernel.of_problem: " ^ reason ^ " (closed form does not apply)")
  | None when n_sub = 0 -> Error "Kernel.of_problem: empty problem"
  | None ->
    let unpack = function
      | Lla.Step_size.Fixed g -> (g, 1., g, false)
      | Lla.Step_size.Adaptive { initial; multiplier; cap } -> (initial, multiplier, cap, true)
      | Lla.Step_size.Split _ -> assert false (* components are never Split *)
    in
    let (g_init_r, g_mult_r, g_cap_r, adaptive_r), (g_init_p, g_mult_p, g_cap_p, adaptive_p) =
      match config.step_policy with
      | Lla.Step_size.Split { resource; path } -> (unpack resource, unpack path)
      | p -> (unpack p, unpack p)
    in
    let sub_res = Array.map (fun (s : P.subtask) -> s.P.resource) problem.P.subtasks in
    let work =
      Array.map (fun (s : P.subtask) -> s.P.share.Lla_model.Share.lat_min) problem.P.subtasks
    in
    let lo_b =
      Array.map (fun (s : P.subtask) -> Float.max 1e-9 s.P.lat_lo) problem.P.subtasks
    in
    let hi_b =
      Array.mapi
        (fun i (s : P.subtask) ->
          Float.max lo_b.(i)
            (Float.min s.P.stability problem.P.tasks.(s.P.task).P.critical_time))
        problem.P.subtasks
    in
    let press0 =
      Array.map
        (fun (s : P.subtask) ->
          let slope =
            match problem.P.tasks.(s.P.task).P.linear_slope with Some v -> v | None -> 0.
          in
          Float.abs slope *. s.P.weight)
        problem.P.subtasks
    in
    let csr_of count row =
      (* count-and-fill CSR over rows 0..count-1 *)
      let off = Array.make (count + 1) 0 in
      for i = 0 to count - 1 do
        off.(i + 1) <- off.(i) + Array.length (row i)
      done;
      let idx = Array.make off.(count) 0 in
      for i = 0 to count - 1 do
        Array.iteri (fun j v -> idx.(off.(i) + j) <- v) (row i)
      done;
      (off, idx)
    in
    let sp_off, sp_idx = csr_of n_sub (fun i -> problem.P.subtasks.(i).P.paths) in
    let rs_off, rs_idx = csr_of n_res (fun r -> problem.P.by_resource.(r)) in
    let ps_off, ps_idx = csr_of n_path (fun p -> problem.P.paths.(p).P.subtask_indices) in
    let rp_off, rp_idx =
      (* invert path_resources (distinct by construction) *)
      let counts = Array.make n_res 0 in
      Array.iter
        (fun (p : P.path) ->
          Array.iter (fun r -> counts.(r) <- counts.(r) + 1) p.P.path_resources)
        problem.P.paths;
      let off = Array.make (n_res + 1) 0 in
      for r = 0 to n_res - 1 do
        off.(r + 1) <- off.(r) + counts.(r)
      done;
      let idx = Array.make off.(n_res) 0 in
      let cursor = Array.copy off in
      Array.iteri
        (fun p (info : P.path) ->
          Array.iter
            (fun r ->
              idx.(cursor.(r)) <- p;
              cursor.(r) <- cursor.(r) + 1)
            info.P.path_resources)
        problem.P.paths;
      (off, idx)
    in
    let lat = Array.map (fun (s : P.subtask) -> s.P.lat_hi) problem.P.subtasks in
    let crit = Array.map (fun (p : P.path) -> p.P.critical_time) problem.P.paths in
    let t =
      {
        problem;
        config;
        n_sub;
        n_res;
        n_path;
        lat;
        sub_res;
        work;
        lo_b;
        hi_b;
        press0;
        sp_off;
        sp_idx;
        mu = Array.make n_res config.mu0;
        cap = Array.copy problem.P.capacities;
        share_sum = Array.make n_res 0.;
        congested = Array.make n_res false;
        gamma_r = Array.make n_res g_init_r;
        rs_off;
        rs_idx;
        rp_off;
        rp_idx;
        lambda = Array.make n_path config.lambda0;
        gamma_p = Array.make n_path g_init_p;
        path_lat = Array.make n_path 0.;
        crit;
        ps_off;
        ps_idx;
        path_hot = Array.make n_path 0;
        n_task = P.n_tasks problem;
        active = Array.make (P.n_tasks problem) true;
        n_inactive = 0;
        frozen = false;
        work0 = Array.copy work;
        press00 = Array.copy press0;
        lo0 = Array.copy lo_b;
        hi0 = Array.copy hi_b;
        lat0 = Array.copy lat;
        crit0 = Array.copy crit;
        adaptive_r;
        g_init_r;
        g_mult_r;
        g_cap_r;
        adaptive_p;
        g_init_p;
        g_mult_p;
        g_cap_p;
        (* tick 0 visits everything: queues full, every sum dirty *)
        sub_q = Array.init n_sub Fun.id;
        sub_count = n_sub;
        sub_mark = Array.make n_sub 0;
        res_q = Array.init n_res Fun.id;
        res_count = n_res;
        res_q2 = Array.make n_res 0;
        res_count2 = 0;
        res_mark = Array.make n_res 0;
        res_dirty = Array.make n_res 0;
        path_q = Array.init n_path Fun.id;
        path_count = n_path;
        path_q2 = Array.make n_path 0;
        path_count2 = 0;
        path_mark = Array.make n_path 0;
        path_dirty = Array.make n_path 0;
        tick = 0;
        guards = 0;
        scratch = Array.make 2 0.;
        touch_sub = 0;
        touch_res = 0;
        touch_path = 0;
        cum_sub = 0;
        cum_res = 0;
        cum_path = 0;
        th_tick = (fun () -> ());
        th_prof = (fun () -> ());
        km = None;
      }
    in
    (match obs with
    | None -> t.th_tick <- (fun () -> tick t)
    | Some o ->
      let reg = o.Lla_obs.metrics in
      let counter name help = Lla_obs.Metrics.counter reg name ~help in
      let gauge name help = Lla_obs.Metrics.gauge reg name ~help in
      let m =
        {
          k_ticks = counter "lla_kernel_ticks_total" "Kernel ticks executed.";
          k_sub = counter "lla_kernel_touched_subtasks_total" "Subtask visits across all ticks.";
          k_res = counter "lla_kernel_touched_resources_total" "Resource visits across all ticks.";
          k_path = counter "lla_kernel_touched_paths_total" "Path visits across all ticks.";
          k_guards =
            counter "lla_kernel_guard_events_total"
              "Non-finite iterate components neutralized by the kernel guards.";
          k_guards_seen = 0;
          k_util = gauge "lla_kernel_utility" "Total utility of the active tasks (at last publish).";
          k_move = gauge "lla_kernel_movement" "Max relative latency movement (at last publish).";
          k_active = gauge "lla_kernel_active_tasks" "Active (non-retired) tasks (at last publish).";
        }
      in
      t.km <- Some m;
      let p = o.Lla_obs.profile in
      let th_alloc () = alloc_pass t in
      let th_res () = resource_pass t in
      let th_path () = path_pass t in
      t.th_prof <-
        (fun () ->
          Lla_obs.Profile.time p "allocate" th_alloc;
          Lla_obs.Profile.time p "resource_prices" th_res;
          Lla_obs.Profile.time p "path_prices" th_path;
          finish t);
      t.th_tick <-
        (fun () ->
          Lla_obs.Profile.time p "kernel.step" t.th_prof;
          Lla_obs.Metrics.incr m.k_ticks;
          Lla_obs.Metrics.add m.k_sub t.touch_sub;
          Lla_obs.Metrics.add m.k_res t.touch_res;
          Lla_obs.Metrics.add m.k_path t.touch_path;
          if t.guards <> m.k_guards_seen then begin
            Lla_obs.Metrics.add m.k_guards (t.guards - m.k_guards_seen);
            m.k_guards_seen <- t.guards
          end));
    Ok t

let create ?obs ?config workload = of_problem ?obs ?config (P.compile workload)

(* ------------------------------------------------------------------ *)
(* Churn: incremental admit / retire of task blocks                     *)
(* ------------------------------------------------------------------ *)

(* Out-of-band mutations run between ticks. After [finish], the upcoming
   tick's number is [t.tick] and an id is queued for it iff its mark
   equals [t.tick] — so pushing with mark [t.tick] targets exactly the
   next tick, and the mark dedup keeps every queue within its family's
   length. These helpers are not used by the three passes (which inline
   their pushes against [tick]/[next]). *)
let queue_sub t i =
  if t.sub_mark.(i) <> t.tick then begin
    t.sub_mark.(i) <- t.tick;
    t.sub_q.(t.sub_count) <- i;
    t.sub_count <- t.sub_count + 1
  end

let queue_res t r =
  if t.res_mark.(r) <> t.tick then begin
    t.res_mark.(r) <- t.tick;
    t.res_q.(t.res_count) <- r;
    t.res_count <- t.res_count + 1
  end

let queue_path t p =
  if t.path_mark.(p) <> t.tick then begin
    t.path_mark.(p) <- t.tick;
    t.path_q.(t.path_count) <- p;
    t.path_count <- t.path_count + 1
  end

let dirty_res t r =
  t.res_dirty.(r) <- t.tick;
  queue_res t r

let dirty_path t p =
  t.path_dirty.(p) <- t.tick;
  queue_path t p

let n_tasks t = t.n_task

let n_active_tasks t = t.n_task - t.n_inactive

let task_active t k =
  if k < 0 || k >= t.n_task then invalid_arg "Kernel.task_active: bad task index";
  t.active.(k)

(* Retirement rewrites task [k]'s block so that every pass update over it
   is naturally the identity — no hot-path [active] branch needed:
   - subtasks: work = press0 = 0, bounds and latency pinned at 1. The
     closed-form candidate is hi = 1 = lat regardless of prices (pressure
     0, mu arbitrary), so the subtask never reports movement; its share
     is 0 / max(0, 1) = 0, so it vanishes from Eq. 3 sums.
   - paths: lambda = 0, gamma at initial, crit = infinity. The slack term
     is 1 - latency/inf = 1, so the Eq. 9 candidate is max 0 (0 - g) = 0:
     the update is the identity and the path drops out of the queue; the
     crit guard in [path_pass] keeps congested shared resources from
     escalating its step.
   The block's resources and neighbors stay live: removing the shares
   perturbs mu on shared resources, which re-queues the neighbors — the
   genuine cold-zone churn ripple the dirty sets exist for. *)
let retire_task t k =
  if k < 0 || k >= t.n_task then invalid_arg "Kernel.retire_task: bad task index";
  if not t.active.(k) then invalid_arg "Kernel.retire_task: task already retired";
  t.active.(k) <- false;
  t.n_inactive <- t.n_inactive + 1;
  let task = t.problem.P.tasks.(k) in
  Array.iter
    (fun i ->
      t.work.(i) <- 0.;
      t.press0.(i) <- 0.;
      t.lo_b.(i) <- 1.;
      t.hi_b.(i) <- 1.;
      t.lat.(i) <- 1.;
      queue_sub t i;
      dirty_res t t.sub_res.(i))
    task.P.subtask_indices;
  Array.iter
    (fun p ->
      t.lambda.(p) <- 0.;
      t.gamma_p.(p) <- t.g_init_p;
      t.crit.(p) <- infinity;
      dirty_path t p)
    task.P.path_indices

(* Re-admission restores the construction-time coefficients and the
   construction-time initial iterate (lat_hi, lambda0, gamma at initial),
   then queues the block. Shared resource prices are whatever churn has
   made them — the block converges into the running system. When the
   retire was immediate (same inter-tick gap), every restored cell is
   bit-identical to its pre-retire value and the resulting trajectory is
   bit-for-bit the one where the admit/retire pair never happened; the
   property suite checks this. *)
let admit_task t k =
  if k < 0 || k >= t.n_task then invalid_arg "Kernel.admit_task: bad task index";
  if t.active.(k) then invalid_arg "Kernel.admit_task: task already active";
  t.active.(k) <- true;
  t.n_inactive <- t.n_inactive - 1;
  let task = t.problem.P.tasks.(k) in
  Array.iter
    (fun i ->
      t.work.(i) <- t.work0.(i);
      t.press0.(i) <- t.press00.(i);
      t.lo_b.(i) <- t.lo0.(i);
      t.hi_b.(i) <- t.hi0.(i);
      t.lat.(i) <- t.lat0.(i);
      queue_sub t i;
      dirty_res t t.sub_res.(i))
    task.P.subtask_indices;
  Array.iter
    (fun p ->
      t.lambda.(p) <- t.config.lambda0;
      t.gamma_p.(p) <- t.g_init_p;
      t.crit.(p) <- t.crit0.(p);
      dirty_path t p)
    task.P.path_indices

(* ------------------------------------------------------------------ *)
(* Chaos injection + safe-mode support                                  *)
(* ------------------------------------------------------------------ *)

let poison_price t r value =
  if r < 0 || r >= t.n_res then invalid_arg "Kernel.poison_price: bad resource index";
  (* parity with Distributed.poison_price: the raw write lands, and the
     pass-level finite-value guards heal it on the next tick *)
  t.mu.(r) <- value;
  queue_res t r

let capacity t r =
  if r < 0 || r >= t.n_res then invalid_arg "Kernel.capacity: bad resource index";
  t.cap.(r)

let set_capacity t r value =
  if r < 0 || r >= t.n_res then invalid_arg "Kernel.set_capacity: bad resource index";
  if not (Float.is_finite value && value > 0.) then
    invalid_arg "Kernel.set_capacity: capacity must be finite and positive";
  t.cap.(r) <- value;
  (* members' latencies are unchanged, so the cached share sum stays
     valid; the price update and congestion flag see the new capacity on
     the next tick *)
  queue_res t r

let disturb_latency t i delta =
  if i < 0 || i >= t.n_sub then invalid_arg "Kernel.disturb_latency: bad subtask index";
  if t.active.(t.problem.P.subtasks.(i).P.task) then begin
    let lo = t.lo_b.(i) and hi = t.hi_b.(i) in
    let v = t.lat.(i) +. delta in
    let v = if not (Float.is_finite v) then hi else if v < lo then lo else if v > hi then hi else v in
    if v <> t.lat.(i) then begin
      t.lat.(i) <- v;
      queue_sub t i;
      dirty_res t t.sub_res.(i);
      Array.iter (fun p -> dirty_path t p) t.problem.P.subtasks.(i).P.paths
    end
  end

let set_frozen t frozen = t.frozen <- frozen

let frozen t = t.frozen

let requeue_all t =
  for i = 0 to t.n_sub - 1 do
    t.sub_q.(i) <- i;
    t.sub_mark.(i) <- t.tick
  done;
  t.sub_count <- t.n_sub;
  for r = 0 to t.n_res - 1 do
    t.res_q.(r) <- r;
    t.res_mark.(r) <- t.tick;
    t.res_dirty.(r) <- t.tick
  done;
  t.res_count <- t.n_res;
  for p = 0 to t.n_path - 1 do
    t.path_q.(p) <- p;
    t.path_mark.(p) <- t.tick;
    t.path_dirty.(p) <- t.tick
  done;
  t.path_count <- t.n_path

(* Safe-mode entry, with the same healing discipline as
   Distributed.enter_safe_mode: enact the fallback latencies (clamped to
   the live bounds, retired blocks untouched), heal non-finite or
   runaway prices down to mu0 / 0, reset the step sizes, and mark
   everything dirty so every cache is rebuilt from the clamped state on
   the next tick. *)
let enter_fallback t ?heal_above ~lat:fallback () =
  if Array.length fallback <> t.n_sub then
    invalid_arg "Kernel.enter_fallback: fallback length mismatch";
  let heal_cap =
    match heal_above with
    | Some v -> v
    | None -> Float.min 1e6 (1000. *. Float.max 1. t.config.mu0)
  in
  for i = 0 to t.n_sub - 1 do
    if t.active.(t.problem.P.subtasks.(i).P.task) then begin
      let lo = t.lo_b.(i) and hi = t.hi_b.(i) in
      let v = fallback.(i) in
      let v = if not (Float.is_finite v) then hi else if v < lo then lo else if v > hi then hi else v in
      t.lat.(i) <- v
    end
  done;
  for r = 0 to t.n_res - 1 do
    let m = t.mu.(r) in
    if (not (Float.is_finite m)) || m > heal_cap then t.mu.(r) <- t.config.mu0;
    t.gamma_r.(r) <- t.g_init_r
  done;
  for p = 0 to t.n_path - 1 do
    if not (Float.is_finite t.lambda.(p)) then t.lambda.(p) <- 0.;
    t.gamma_p.(p) <- t.g_init_p
  done;
  requeue_all t

(* ------------------------------------------------------------------ *)
(* Crash recovery support                                              *)
(* ------------------------------------------------------------------ *)

let all_finite a = Array.for_all Float.is_finite a

(* The process image is gone: every live iterate component reverts to
   its construction-time initial value. Churn membership is control-plane
   state (the admission controller knows which blocks it admitted), so it
   survives the crash — retired blocks keep their identity placeholders
   rather than resurrecting. *)
let crash_reset t =
  Array.iteri
    (fun k (task : P.task) ->
      if t.active.(k) then begin
        Array.iter (fun i -> t.lat.(i) <- t.lat0.(i)) task.P.subtask_indices;
        Array.iter (fun p -> t.lambda.(p) <- t.config.lambda0) task.P.path_indices
      end)
    t.problem.P.tasks;
  Array.fill t.mu 0 t.n_res t.config.mu0;
  Array.fill t.gamma_r 0 t.n_res t.g_init_r;
  Array.fill t.gamma_p 0 t.n_path t.g_init_p;
  t.frozen <- false;
  requeue_all t

(* Warm restore from a journaled snapshot of the iterate. Total in its
   inputs: a length mismatch or any non-finite component is refused (the
   caller falls back to the cold [crash_reset] state), finite components
   are projected onto the live bounds / non-negativity like every other
   exogenous write. Step sizes stay at their reset values — the restored
   prices are near-converged, so rediscovering the step magnitude costs
   logarithmically-few ticks and avoids trusting a stale gamma. *)
let restore_iterate t ~lat ~mu ~lambda =
  if
    Array.length lat <> t.n_sub
    || Array.length mu <> t.n_res
    || Array.length lambda <> t.n_path
  then Error "Kernel.restore_iterate: array length mismatch"
  else if
    not
      (all_finite lat && all_finite mu && all_finite lambda)
  then Error "Kernel.restore_iterate: non-finite component refused"
  else begin
    Array.iteri
      (fun k (task : P.task) ->
        if t.active.(k) then begin
          Array.iter
            (fun i ->
              let lo = t.lo_b.(i) and hi = t.hi_b.(i) in
              let v = lat.(i) in
              t.lat.(i) <- (if v < lo then lo else if v > hi then hi else v))
            task.P.subtask_indices;
          Array.iter
            (fun p -> t.lambda.(p) <- Float.max 0. lambda.(p))
            task.P.path_indices
        end)
      t.problem.P.tasks;
    for r = 0 to t.n_res - 1 do
      t.mu.(r) <- Float.max 0. mu.(r)
    done;
    requeue_all t;
    Ok ()
  end

(* ------------------------------------------------------------------ *)
(* Read-out                                                            *)
(* ------------------------------------------------------------------ *)

let problem t = t.problem

let n_subtasks t = t.n_sub

let n_resources t = t.n_res

let n_paths t = t.n_path

let iteration t = t.tick

let movement t = t.scratch.(1)

let guard_events t = t.guards

let utility t =
  if t.n_inactive = 0 then P.total_utility t.problem ~lat:t.lat
  else begin
    (* retired blocks hold lat = 1, which is meaningless to their
       utilities — sum the active tasks only *)
    let acc = ref 0. in
    for k = 0 to t.n_task - 1 do
      if t.active.(k) then acc := !acc +. P.task_utility t.problem k ~lat:t.lat
    done;
    !acc
  end

let publish_metrics t ~at =
  match t.km with
  | None -> ()
  | Some m ->
    Lla_obs.Metrics.set_at m.k_util ~at (utility t);
    Lla_obs.Metrics.set_at m.k_move ~at t.scratch.(1);
    Lla_obs.Metrics.set_at m.k_active ~at (float_of_int (t.n_task - t.n_inactive))

let lat_array t = t.lat

let mu_array t = t.mu

let lambda_array t = t.lambda

let violations t =
  let tol = t.config.feasibility_tolerance in
  let acc = ref [] in
  for p = t.n_path - 1 downto 0 do
    if t.path_lat.(p) > t.crit.(p) *. (1. +. tol) then
      acc :=
        Printf.sprintf "task %s path %d misses critical time: %.2f > C=%.2f"
          t.problem.P.tasks.(t.problem.P.paths.(p).P.task).P.task_name
          t.problem.P.paths.(p).P.index_in_task t.path_lat.(p) t.crit.(p)
        :: !acc
  done;
  for r = t.n_res - 1 downto 0 do
    if t.share_sum.(r) > t.cap.(r) *. (1. +. tol) then
      acc :=
        Printf.sprintf "resource %s over capacity: share sum %.4f > B=%.4f"
          (Lla_model.Ids.Resource_id.to_string t.problem.P.resource_ids.(r))
          t.share_sum.(r) t.cap.(r)
        :: !acc
  done;
  !acc

(* Retired blocks read as trivially feasible here: their shares are 0 and
   their critical times infinity, so only active tasks constrain either
   check. *)
let resources_feasible t ~tol =
  let ok = ref true in
  for r = 0 to t.n_res - 1 do
    if t.share_sum.(r) > t.cap.(r) *. (1. +. tol) then ok := false
  done;
  !ok

let paths_feasible t ~tol =
  let ok = ref true in
  for p = 0 to t.n_path - 1 do
    if t.path_lat.(p) > t.crit.(p) *. (1. +. tol) then ok := false
  done;
  !ok

let feasible_within t ~tol = resources_feasible t ~tol && paths_feasible t ~tol

let feasible t = feasible_within t ~tol:t.config.feasibility_tolerance

let solve t ~max_iterations =
  let window = Stdlib.max 1 t.config.convergence_window in
  let still = ref 0 in
  let result = ref None in
  while !result = None && t.tick < max_iterations do
    step t;
    if t.scratch.(1) <= t.config.movement_tolerance then incr still else still := 0;
    if !still >= window && feasible t then result := Some t.tick
  done;
  !result

type touch_stats = {
  subtasks_touched : int;
  resources_touched : int;
  paths_touched : int;
  subtasks_total : int;
  resources_total : int;
  paths_total : int;
}

let last_touch t =
  {
    subtasks_touched = t.touch_sub;
    resources_touched = t.touch_res;
    paths_touched = t.touch_path;
    subtasks_total = t.n_sub;
    resources_total = t.n_res;
    paths_total = t.n_path;
  }

let cumulative_touch t =
  {
    subtasks_touched = t.cum_sub;
    resources_touched = t.cum_res;
    paths_touched = t.cum_path;
    subtasks_total = t.n_sub * t.tick;
    resources_total = t.n_res * t.tick;
    paths_total = t.n_path * t.tick;
  }
