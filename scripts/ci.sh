#!/bin/sh
# Minimal CI: build everything, check hygiene, then run the full test suite.
set -eu
cd "$(dirname "$0")/.."
dune build

# Documentation / warning hygiene gate. When odoc is installed the doc
# build catches malformed doc comments; otherwise a forced rebuild must be
# completely silent — any compiler warning fails the run.
if command -v odoc >/dev/null 2>&1; then
  dune build @doc
else
  warnings=$(dune build --force 2>&1)
  if [ -n "$warnings" ]; then
    printf '%s\n' "$warnings"
    echo "ci: forced rebuild emitted warnings (see above)" >&2
    exit 1
  fi
fi

dune runtest
