#!/bin/sh
# Minimal CI: build everything, then run the full test suite.
set -eu
cd "$(dirname "$0")/.."
dune build
dune runtest
