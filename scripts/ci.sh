#!/bin/sh
# Minimal CI: build everything, check hygiene, run the full test suite
# behind a test-count regression gate, and smoke-check the observability
# overhead budget.
set -eu
cd "$(dirname "$0")/.."
dune build

# Documentation / warning hygiene gate. When odoc is installed the doc
# build catches malformed doc comments; otherwise a forced rebuild must be
# completely silent — any compiler warning fails the run.
if command -v odoc >/dev/null 2>&1; then
  dune build @doc
else
  warnings=$(dune build --force 2>&1)
  if [ -n "$warnings" ]; then
    printf '%s\n' "$warnings"
    echo "ci: forced rebuild emitted warnings (see above)" >&2
    exit 1
  fi
fi

# Test-count regression gate: the suite must run at least as many tests
# as the checked-in floor. A PR that deletes or silently skips tests
# fails here; one that adds tests should raise the floor alongside.
run_log=$(dune runtest --force 2>&1) || {
  printf '%s\n' "$run_log"
  exit 1
}
printf '%s\n' "$run_log"
total=$(printf '%s\n' "$run_log" | sed -n 's/.* \([0-9][0-9]*\) tests run.*/\1/p' | awk '{s+=$1} END {print s+0}')
floor=$(cat scripts/test_count_floor)
if [ "$total" -lt "$floor" ]; then
  echo "ci: test count regressed: $total tests run, floor is $floor" >&2
  exit 1
fi
echo "ci: $total tests run (floor $floor)"

# Observability overhead budgets, smoke mode (loose budgets: CI boxes
# jitter). obs-smoke gates plain tracing; profile-smoke gates the
# disabled analysis-tier hooks and the enabled spans+profiler cost
# against the control plane's real-time budget.
./_build/default/bench/main.exe obs-smoke
./_build/default/bench/main.exe profile-smoke

# Analysis-tier smoke: the full span + series + report pipeline must run
# end-to-end on the paper's Fig. 5 scenario (settling-time assertions
# against the optimum live in test/test_analysis.ml).
./_build/default/bin/lla_cli.exe analyze fig5

# Chaos campaign smoke: 25 fixed-seed randomized fault schedules against
# the fully-armed deployment. The command exits non-zero on any oracle
# violation and prints the (shrunk) reproducer path for replay with
# `lla_cli chaos-replay`.
./_build/default/bin/lla_cli.exe campaign --runs 25 --seed 42 --out _build/chaos-repro

# The same campaign engine against the domains-parallel runtime: every
# schedule deploys onto a 2-domain Engine_domains in deterministic-merge
# mode and is judged by the merged-trace oracle calibration. A domains
# run costs ~25x a sim run, so CI keeps a 5-run rota (the full 25-run
# sweep passes; re-run it with --runs 25 when touching the engine).
./_build/default/bin/lla_cli.exe campaign --runs 5 --seed 42 --engine domains --domains 2 \
  --out _build/chaos-repro-domains

# Scale-tier smoke: a seeded 10^4-subtask generated scenario must solve
# to Eq. 3/4 feasibility in the flat-array kernel, agree element-wise
# with the reference solver after 30 ticks, tick without allocating,
# and run >= 20x the solver's per-iteration speed (best-of batches, so
# box jitter does not flake the gate).
./_build/default/bench/main.exe --json _build scale-smoke

# Soak-tier smoke: a 60k-tick endurance run under continuous churn and
# recurring chaos windows must hold every rolling-health oracle (sustained
# Eq. 3/4 feasibility, reconvergence budgets, baseline utility drift),
# stay under its resource ceilings without shedding load, and the forced
# ceiling-breach drill must walk the degradation ladder into safe mode
# instead of crashing.
./_build/default/bench/main.exe --json _build soak-smoke

# Parallel-engine smoke: the 100k-subtask scenario deployed on
# Engine_domains at 1/2/4 domains. Gates replay determinism (two
# same-seed 4-domain runs bit-for-bit) and scaling: >= 1.6x agents/sec
# at 4 domains vs 1 on a >= 4-core host, best-parallel >= 1.1x on
# smaller hosts (the floor actually applied is printed and stamped in
# BENCH_parallel_smoke.json). The fat minor heap keeps the domains'
# stop-the-world GC rendezvous off the critical path; OCaml 5 only
# reads it at startup, hence the env var.
OCAMLRUNPARAM='s=8M' ./_build/default/bench/main.exe --json _build parallel-smoke

# Crash-recovery smoke: converge a seeded 2k-subtask kernel against a
# real file-backed journal, crash it, and gate warm recovery (replayed
# journal + restore_iterate) strictly faster back to Eq. 3/4 feasibility
# than a cold restart. Includes one forced torn-write drill: the active
# segment is corrupted at byte 0 and recovery must degrade to a cold
# restart — zero records replayed, never a raise.
./_build/default/bench/main.exe --json _build recovery-smoke

# Streaming-monitor smoke: live-monitoring cost on the 10k scale
# scenario. Per-tick kernel cost and per-feed monitor cost are measured
# separately where each is stable (an A/B wall diff of two ~100 ms runs
# cannot resolve microseconds on a shared box); the gate is the ratio:
# monitor time per 47-tick health cadence window must stay under 5% of
# kernel time for the same window.
./_build/default/bench/main.exe --json _build monitor-smoke

# Perf-regression gate over the committed BENCH history: every fresh
# smoke snapshot written above is diffed against its committed
# counterpart at the repo root. Structural keys must match exactly;
# throughput keys get a tolerance band and are only judged when the
# "cores" stamp matches the recording host.
scripts/bench_compare _build
