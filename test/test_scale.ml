(* Lla_scale: generator determinism / admission, kernel-vs-solver
   equivalence, dirty-set sparsity, and the zero-allocation guarantee of
   the kernel tick. *)

open Lla_model
module Generator = Lla_scale.Generator
module Kernel = Lla_scale.Kernel
module Solver = Lla.Solver

let qcheck = QCheck_alcotest.to_alcotest

let small_params seed =
  (* vary the shape mix and skew a little with the seed so the qcheck
     properties do not all exercise one corner of the generator *)
  let base = Generator.sized ~resources:(12 + (seed mod 9)) ~subtasks:(40 + (seed mod 37)) () in
  {
    base with
    Generator.sharing_skew = 1. +. float_of_int (seed mod 3);
    chain_weight = 1.;
    fan_out_weight = float_of_int (1 + (seed mod 2));
    aggregation_weight = float_of_int (1 + (seed mod 3));
  }

let kernel_exn ?obs ?config workload =
  match Kernel.create ?obs ?config workload with
  | Ok k -> k
  | Error e -> Alcotest.failf "Kernel.create: %s" e

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)
(* ------------------------------------------------------------------ *)

let test_generator_deterministic () =
  let params = Generator.sized ~subtasks:300 () in
  let a = Generator.generate ~params ~seed:42 () in
  let b = Generator.generate ~params ~seed:42 () in
  Alcotest.(check string)
    "same seed, byte-identical workload" (Workload_codec.to_string a) (Workload_codec.to_string b);
  let c = Generator.generate ~params ~seed:43 () in
  if String.equal (Workload_codec.to_string a) (Workload_codec.to_string c) then
    Alcotest.fail "different seeds produced identical workloads"

let test_generator_reaches_target () =
  let params = Generator.sized ~subtasks:500 () in
  let w = Generator.generate ~params ~seed:7 () in
  let subtasks =
    List.fold_left (fun acc (t : Task.t) -> acc + List.length t.Task.subtasks) 0 w.Workload.tasks
  in
  if subtasks < 500 then Alcotest.failf "only %d subtasks generated (target 500)" subtasks;
  List.iter
    (fun (r : Resource.t) ->
      if r.availability <= 0. || r.availability > 1. then
        Alcotest.failf "availability %.3f outside (0, 1]" r.availability)
    w.Workload.resources

let test_generator_witness_fits () =
  (* the witness rescale must leave headroom on every resource: the
     compiled problem's minimum shares (stability floors) fit capacities *)
  let w = Generator.generate ~params:(Generator.sized ~subtasks:400 ()) ~seed:11 () in
  let problem = Lla.Problem.compile w in
  for r = 0 to Lla.Problem.n_resources problem - 1 do
    let floor_sum =
      Array.fold_left
        (fun acc i ->
          let s = problem.Lla.Problem.subtasks.(i) in
          acc +. (s.Lla.Problem.share.Share.lat_min /. s.Lla.Problem.stability))
        0.
        problem.Lla.Problem.by_resource.(r)
    in
    let cap = problem.Lla.Problem.capacities.(r) in
    if floor_sum > cap +. 1e-9 then
      Alcotest.failf "resource %d: stability floor %.4f exceeds capacity %.4f" r floor_sum cap
  done

let prop_generator_deterministic =
  QCheck.Test.make ~name:"generator: same seed => byte-identical scenario" ~count:15
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let params = small_params seed in
      let a = Generator.generate ~params ~seed () in
      let b = Generator.generate ~params ~seed () in
      String.equal (Workload_codec.to_string a) (Workload_codec.to_string b))

let prop_generator_schedulable =
  QCheck.Test.make ~name:"generator: scenarios pass Schedulability admission" ~count:6
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let w = Generator.generate ~params:(small_params seed) ~seed () in
      Lla.Schedulability.is_schedulable (Lla.Schedulability.probe w))

(* ------------------------------------------------------------------ *)
(* Kernel equivalence with the reference solver                        *)
(* ------------------------------------------------------------------ *)

let agree ~label ~tolerance a b =
  if Array.length a <> Array.length b then
    QCheck.Test.fail_reportf "%s: length %d vs %d" label (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      let y = b.(i) in
      let scale = Float.max 1. (Float.max (Float.abs x) (Float.abs y)) in
      if not (Float.abs (x -. y) <= tolerance *. scale) then
        QCheck.Test.fail_reportf "%s[%d]: kernel %.17g vs solver %.17g" label i x y)
    a;
  true

let prop_kernel_matches_solver =
  QCheck.Test.make
    ~name:"kernel: lat/mu/lambda match Solver within 1e-9 (adaptive steps)" ~count:20
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let w = Generator.generate ~params:(small_params seed) ~seed () in
      let solver = Solver.create w in
      let kernel = kernel_exn w in
      let iterations = 60 + (seed mod 80) in
      Solver.run solver ~iterations;
      Kernel.run kernel ~iterations;
      agree ~label:"lat" ~tolerance:1e-9 (Kernel.lat_array kernel) (Solver.lat_array solver)
      && agree ~label:"mu" ~tolerance:1e-9 (Kernel.mu_array kernel) (Solver.mu_array solver)
      && agree ~label:"lambda" ~tolerance:1e-9 (Kernel.lambda_array kernel)
           (Solver.lambda_array solver))

let prop_kernel_matches_solver_fixed_step =
  QCheck.Test.make ~name:"kernel: matches Solver under a fixed step policy" ~count:10
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let w = Generator.generate ~params:(small_params seed) ~seed () in
      let policy = Lla.Step_size.fixed 0.5 in
      let solver =
        Solver.create ~config:{ Solver.default_config with step_policy = policy } w
      in
      let kernel =
        kernel_exn ~config:{ Kernel.default_config with step_policy = policy } w
      in
      Solver.run solver ~iterations:100;
      Kernel.run kernel ~iterations:100;
      agree ~label:"lat" ~tolerance:1e-9 (Kernel.lat_array kernel) (Solver.lat_array solver)
      && agree ~label:"mu" ~tolerance:1e-9 (Kernel.mu_array kernel) (Solver.mu_array solver)
      && agree ~label:"lambda" ~tolerance:1e-9 (Kernel.lambda_array kernel)
           (Solver.lambda_array solver))

let prop_kernel_matches_solver_split_step =
  (* scale_config's Split policy (resources escalated, paths on the small
     cap) must preserve the element-wise equivalence: both sides resolve
     the same per-family components. *)
  QCheck.Test.make ~name:"kernel: matches Solver under a Split step policy" ~count:10
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let w = Generator.generate ~params:(small_params seed) ~seed () in
      let policy =
        Lla.Step_size.split
          ~resource:(Lla.Step_size.adaptive ~initial:1.0 ~cap:1e9 ())
          ~path:(Lla.Step_size.adaptive ~initial:1.0 ())
      in
      let solver =
        Solver.create ~config:{ Solver.default_config with step_policy = policy } w
      in
      let kernel =
        kernel_exn ~config:{ Kernel.default_config with step_policy = policy } w
      in
      Solver.run solver ~iterations:100;
      Kernel.run kernel ~iterations:100;
      agree ~label:"lat" ~tolerance:1e-9 (Kernel.lat_array kernel) (Solver.lat_array solver)
      && agree ~label:"mu" ~tolerance:1e-9 (Kernel.mu_array kernel) (Solver.mu_array solver)
      && agree ~label:"lambda" ~tolerance:1e-9 (Kernel.lambda_array kernel)
           (Solver.lambda_array solver))

let test_kernel_movement_matches () =
  (* movement drives Kernel.solve's convergence; it must agree with the
     solver's movement series tick for tick *)
  let w = Generator.generate ~params:(small_params 5) ~seed:5 () in
  let solver = Solver.create w in
  let kernel = kernel_exn w in
  for i = 1 to 40 do
    Solver.step solver;
    Kernel.step kernel;
    let expected =
      let ys = Lla_stdx.Series.ys (Solver.movement_series solver) in
      ys.(Array.length ys - 1)
    in
    if Float.abs (Kernel.movement kernel -. expected) > 1e-9 then
      Alcotest.failf "tick %d: movement %.17g vs solver %.17g" i (Kernel.movement kernel)
        expected
  done

let test_kernel_rejects_nonlinear () =
  let critical_time = 120. in
  let t1 = Ids.Task_id.make 1 in
  let subtasks =
    [
      Subtask.make ~id:1 ~task:t1 ~resource:0 ~exec_time:2. ();
      Subtask.make ~id:2 ~task:t1 ~resource:1 ~exec_time:3. ();
    ]
  in
  let graph =
    Graph.make_exn
      ~nodes:(List.map (fun (s : Subtask.t) -> s.Subtask.id) subtasks)
      ~edges:[ (Ids.Subtask_id.make 1, Ids.Subtask_id.make 2) ]
  in
  let task =
    Task.make_exn ~id:1 ~subtasks ~graph ~critical_time
      ~utility:(Utility.logarithmic ~k:2. ~critical_time ())
      ~trigger:(Trigger.periodic ~period:400. ())
      ()
  in
  let w =
    Workload.make_exn ~tasks:[ task ]
      ~resources:[ Resource.make ~availability:0.9 0; Resource.make ~availability:0.9 1 ]
  in
  match Kernel.create w with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "kernel accepted a non-linear utility"

(* ------------------------------------------------------------------ *)
(* Dirty-set sparsity and the zero-allocation tick                     *)
(* ------------------------------------------------------------------ *)

let test_kernel_solves_and_sparsifies () =
  let w = Generator.generate ~params:(Generator.sized ~subtasks:2_000 ()) ~seed:3 () in
  let kernel = kernel_exn ~config:Kernel.scale_config w in
  (match Kernel.solve kernel ~max_iterations:4_000 with
  | None -> Alcotest.failf "no convergence in 4000 ticks (movement %.2e)" (Kernel.movement kernel)
  | Some _ -> ());
  if not (Kernel.feasible kernel) then
    Alcotest.failf "infeasible after solve: %s" (String.concat "; " (Kernel.violations kernel));
  (* Past the transient, a tick visits only subtasks whose prices still
     carry state. The generator provisions every resource at
     [capacity_margin] times its witness demand, so at the optimum nearly
     every capacity constraint is active and its positive price keeps the
     members queued — the skip rule is exact, not heuristic, and active
     constraints are exactly the state it must not skip. The honest claim
     is therefore strict savings on the settled minority (measured ~9% on
     this scenario), not a wholesale cut; idle structure (unloaded
     resources, slack paths with [lambda = 0] and no congested resource)
     is what drops out entirely. *)
  let before = Kernel.cumulative_touch kernel in
  let extra = 100 in
  Kernel.run kernel ~iterations:extra;
  let after = Kernel.cumulative_touch kernel in
  let touched = after.Kernel.subtasks_touched - before.Kernel.subtasks_touched in
  let budget = extra * Kernel.n_subtasks kernel in
  if touched * 100 >= budget * 97 then
    Alcotest.failf "dirty sets bought no sparsity: %d of %d subtask updates after convergence"
      touched budget;
  (* All constraint prices in hand are finite and the iterate is still
     feasible after the extra ticks: the post-convergence dither stays
     within tolerance. *)
  if not (Kernel.feasible kernel) then
    Alcotest.failf "left feasibility during post-convergence ticks: %s"
      (String.concat "; " (Kernel.violations kernel))

let test_kernel_tick_zero_alloc () =
  let w = Generator.generate ~params:(Generator.sized ~subtasks:1_000 ()) ~seed:9 () in
  let kernel = kernel_exn w in
  Kernel.run kernel ~iterations:5 (* warm up: queues populated, caches filled *);
  (* [Gc.minor_words ()] itself allocates its boxed float result, so
     measure the delta of an empty probe and require the delta across N
     ticks to be exactly the same. *)
  let probe iterations =
    let before = Gc.minor_words () in
    Kernel.run kernel ~iterations;
    Gc.minor_words () -. before
  in
  let empty = probe 0 in
  let hundred = probe 100 in
  if hundred <> empty then
    Alcotest.failf "kernel tick allocates: %.0f minor words over 100 ticks" (hundred -. empty)

let test_kernel_profiled_run () =
  (* with obs attached, the per-phase totals must cover every tick *)
  let obs = Lla_obs.create () in
  Lla_obs.Profile.set_enabled obs.Lla_obs.profile true;
  let w = Generator.generate ~params:(small_params 1) ~seed:1 () in
  let kernel = kernel_exn ~obs w in
  Kernel.run kernel ~iterations:30;
  let stats = Lla_obs.Profile.stats obs.Lla_obs.profile in
  let count_of name =
    (* match the leaf phase only: children's paths contain the parent *)
    List.fold_left
      (fun acc (s : Lla_obs.Profile.stat) ->
        match List.rev s.Lla_obs.Profile.path with
        | leaf :: _ when String.equal leaf name -> acc + s.Lla_obs.Profile.count
        | _ -> acc)
      0 stats
  in
  Alcotest.(check int) "kernel.step timed per tick" 30 (count_of "kernel.step");
  Alcotest.(check int) "allocate timed per tick" 30 (count_of "allocate")

let () =
  Alcotest.run "scale"
    [
      ( "generator",
        [
          Alcotest.test_case "same seed is byte-identical" `Quick test_generator_deterministic;
          Alcotest.test_case "reaches the subtask target" `Quick test_generator_reaches_target;
          Alcotest.test_case "witness fits every capacity" `Quick test_generator_witness_fits;
          qcheck prop_generator_deterministic;
          qcheck prop_generator_schedulable;
        ] );
      ( "kernel",
        [
          qcheck prop_kernel_matches_solver;
          qcheck prop_kernel_matches_solver_fixed_step;
          qcheck prop_kernel_matches_solver_split_step;
          Alcotest.test_case "movement matches the solver" `Quick test_kernel_movement_matches;
          Alcotest.test_case "rejects non-linear utilities" `Quick test_kernel_rejects_nonlinear;
          Alcotest.test_case "solves and sparsifies at 2k subtasks" `Quick
            test_kernel_solves_and_sparsifies;
          Alcotest.test_case "tick allocates zero minor words" `Quick test_kernel_tick_zero_alloc;
          Alcotest.test_case "profiled run times every tick" `Quick test_kernel_profiled_run;
        ] );
    ]
