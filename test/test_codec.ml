(* Tests for the workload text codec and the admission controller. *)

open Lla_model

let check_close ?(eps = 1e-9) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s (expected %g, got %g)" msg expected actual)
    true
    (Float.abs (expected -. actual) <= eps)

let sample_text =
  {|
# a two-task pipeline
resource 0 name=cpu kind=cpu availability=0.8 lag=1
resource 1 name=link kind=link availability=0.9

task 1 name=pipeline critical_time=50 utility=linear:2 trigger=periodic:100 variant=path-weighted percentile=100
subtask 10 task=1 name=stage-a resource=0 exec=8 share=reciprocal
subtask 11 task=1 name=stage-b resource=1 exec=4 share=power:1.5
edge 10 11

task 2 name=probe critical_time=80 utility=softdl:10:50 trigger=poisson:25 percentile=99
subtask 20 task=2 resource=0 exec=2
subtask 21 task=2 resource=1 exec=2
edge 20 21
|}

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let parse_exn text =
  match Workload_codec.parse text with
  | Ok w -> w
  | Error msg -> Alcotest.fail ("parse failed: " ^ msg)

let test_parse_sample () =
  let w = parse_exn sample_text in
  Alcotest.(check int) "tasks" 2 (List.length w.Workload.tasks);
  Alcotest.(check int) "resources" 2 (List.length w.Workload.resources);
  let pipeline = Workload.task w (Ids.Task_id.make 1) in
  Alcotest.(check string) "name" "pipeline" pipeline.Task.name;
  check_close "critical time" 50. pipeline.Task.critical_time;
  check_close "lag parsed" 1. (Workload.resource w (Ids.Resource_id.make 0)).Resource.lag;
  let stage_b = Workload.subtask w (Ids.Subtask_id.make 11) in
  (match stage_b.Subtask.share_spec with
  | Share.Power { exponent } -> check_close "power share" 1.5 exponent
  | Share.Reciprocal -> Alcotest.fail "expected a power share");
  let probe = Workload.task w (Ids.Task_id.make 2) in
  check_close "percentile" 99. probe.Task.latency_percentile;
  check_close "poisson rate" 0.025 (Trigger.mean_rate probe.Task.trigger)

let test_parse_solves () =
  let w = parse_exn sample_text in
  let solver = Lla.Solver.create w in
  match Lla.Solver.run_until_converged solver ~max_iterations:4000 with
  | Some _ -> Alcotest.(check bool) "feasible" true (Lla.Solver.feasible solver)
  | None -> Alcotest.fail "parsed workload should converge"

let expect_parse_error ~substring text =
  match Workload_codec.parse text with
  | Ok _ -> Alcotest.fail (Printf.sprintf "expected an error mentioning %S" substring)
  | Error msg ->
    let contains =
      let nl = String.length substring and hl = String.length msg in
      let rec scan i = i + nl <= hl && (String.sub msg i nl = substring || scan (i + 1)) in
      nl = 0 || scan 0
    in
    Alcotest.(check bool) (Printf.sprintf "%S mentions %S" msg substring) true contains

let test_parse_errors () =
  expect_parse_error ~substring:"no tasks" "resource 0\n";
  expect_parse_error ~substring:"unknown directive" "bogus 1 2 3\n";
  expect_parse_error ~substring:"line 2"
    "resource 0\nresource x\ntask 1 critical_time=1 utility=negative trigger=periodic:10\n";
  expect_parse_error ~substring:"missing required attribute"
    "resource 0\ntask 1 utility=negative trigger=periodic:10\nsubtask 5 task=1 resource=0 exec=1\n";
  expect_parse_error ~substring:"unknown trigger"
    "resource 0\ntask 1 critical_time=5 utility=negative trigger=cron:5\nsubtask 5 task=1 resource=0 exec=1\n";
  expect_parse_error ~substring:"unknown utility"
    "resource 0\ntask 1 critical_time=5 utility=步:1 trigger=periodic:10\nsubtask 5 task=1 resource=0 exec=1\n";
  expect_parse_error ~substring:"no subtasks"
    "resource 0\ntask 1 critical_time=5 utility=negative trigger=periodic:10\n";
  expect_parse_error ~substring:"undeclared task"
    "resource 0\n\
     task 1 critical_time=5 utility=negative trigger=periodic:10\n\
     subtask 5 task=1 resource=0 exec=1\n\
     subtask 6 task=9 resource=0 exec=1\n";
  expect_parse_error ~substring:"crosses tasks"
    "resource 0\nresource 1\n\
     task 1 critical_time=5 utility=negative trigger=periodic:10\n\
     subtask 5 task=1 resource=0 exec=1\n\
     task 2 critical_time=5 utility=negative trigger=periodic:10\n\
     subtask 6 task=2 resource=1 exec=1\n\
     edge 5 6\n"

let test_parse_comments_and_hash_names () =
  let text =
    "resource 0 name=cpu#1   # trailing comment\n\
     task 1 critical_time=5 utility=negative trigger=periodic:10\n\
     subtask 5 task=1 name=T1#1 resource=0 exec=1\n"
  in
  let w = parse_exn text in
  Alcotest.(check string) "hash kept inside names" "T1#1"
    (Workload.subtask w (Ids.Subtask_id.make 5)).Subtask.name;
  Alcotest.(check string) "resource name" "cpu#1"
    (Workload.resource w (Ids.Resource_id.make 0)).Resource.name

(* ------------------------------------------------------------------ *)
(* Round trips                                                         *)
(* ------------------------------------------------------------------ *)

let workloads_equal (a : Workload.t) (b : Workload.t) =
  (* Structural equality via the serialized form plus a behavioural probe:
     the solver must produce the same allocation on both. *)
  let solve w =
    let solver = Lla.Solver.create w in
    Lla.Solver.run solver ~iterations:400;
    (Lla.Solver.utility solver, List.map snd (Lla.Solver.latencies solver))
  in
  let ua, la = solve a and ub, lb = solve b in
  Float.abs (ua -. ub) < 1e-9 && List.for_all2 (fun x y -> Float.abs (x -. y) < 1e-9) la lb

let test_roundtrip_paper_workloads () =
  List.iter
    (fun (name, w) ->
      let text = Workload_codec.to_string w in
      let w' = parse_exn text in
      Alcotest.(check bool) (name ^ " round-trips") true (workloads_equal w w');
      (* Second round trip is a fixpoint. *)
      Alcotest.(check string) (name ^ " serialization stable") text (Workload_codec.to_string w'))
    [
      ("base", Lla_workloads.Paper_sim.base ());
      ("six", Lla_workloads.Paper_sim.scaled ~copies:2 ());
      ("prototype", Lla_workloads.Prototype.workload ());
      ( "phased prototype",
        Lla_workloads.Prototype.workload_with_rate_change ~switch_at:1000. ~fast_period_after:20.
          () );
    ]

let prop_roundtrip_random =
  QCheck.Test.make ~name:"codec: random workloads round-trip" ~count:25
    QCheck.(int_range 1 5000)
    (fun seed ->
      let w = Lla_workloads.Random_gen.generate ~seed () in
      match Workload_codec.parse (Workload_codec.to_string w) with
      | Error _ -> false
      | Ok w' -> workloads_equal w w')

let test_file_io () =
  let path = Filename.temp_file "lla_codec" ".lla" in
  let w = Lla_workloads.Paper_sim.base () in
  Workload_codec.save ~path w;
  let result = Workload_codec.load ~path in
  Sys.remove path;
  match result with
  | Ok w' -> Alcotest.(check bool) "file round trip" true (workloads_equal w w')
  | Error msg -> Alcotest.fail msg

let test_load_missing_file () =
  match Workload_codec.load ~path:"/nonexistent/definitely/missing.lla" with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error _ -> ()

let test_custom_utility_not_serializable () =
  let tid = Ids.Task_id.make 1 in
  let a = Subtask.make ~id:1 ~task:tid ~resource:0 ~exec_time:1. () in
  let task =
    Task.make_exn ~id:1 ~subtasks:[ a ]
      ~graph:(Graph.chain [ a.Subtask.id ])
      ~critical_time:10.
      ~utility:(Utility.custom ~name:"opaque" ~f:(fun x -> -.x) ~df:(fun _ -> -1.))
      ~trigger:(Trigger.periodic ~period:10. ())
      ()
  in
  let w = Workload.make_exn ~tasks:[ task ] ~resources:[ Resource.make 0 ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Workload_codec.to_string w);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)
(* ------------------------------------------------------------------ *)

let chain_task ~id ~exec ~period ~critical_time =
  let tid = Ids.Task_id.make id in
  let subtasks =
    List.init 2 (fun j ->
        Subtask.make ~id:((id * 10) + j) ~task:tid ~resource:j ~exec_time:exec ())
  in
  Task.make_exn ~id ~subtasks
    ~graph:(Graph.chain (List.map (fun (s : Subtask.t) -> s.id) subtasks))
    ~critical_time
    ~utility:(Utility.linear ~k:2. ~critical_time)
    ~trigger:(Trigger.periodic ~period ())
    ()

let admission_resources =
  [ Resource.make ~availability:0.35 0; Resource.make ~availability:0.35 1 ]

let test_admission_accepts_until_full () =
  let controller = Lla.Admission.create ~probe_iterations:1500 ~resources:admission_resources () in
  (* A task must split C = 100 ms between its two 5 ms subtasks, so each
     needs share >= 5 / 50 = 0.1 per resource at best; with B = 0.35 three
     tasks fit (0.3) and the fourth cannot (0.4). *)
  let decisions =
    List.map
      (fun id ->
        Lla.Admission.try_admit controller
          (chain_task ~id ~exec:5. ~period:200. ~critical_time:100.))
      [ 1; 2; 3; 4 ]
  in
  let admitted = function Lla.Admission.Admitted _ -> true | Lla.Admission.Rejected _ -> false in
  Alcotest.(check (list bool)) "three fit, fourth rejected" [ true; true; true; false ]
    (List.map admitted decisions);
  Alcotest.(check int) "accepted set" 3 (List.length (Lla.Admission.admitted controller))

let test_admission_rejection_keeps_state () =
  let controller = Lla.Admission.create ~probe_iterations:1500 ~resources:admission_resources () in
  ignore
    (Lla.Admission.try_admit controller
       (chain_task ~id:1 ~exec:5. ~period:200. ~critical_time:100.));
  let before = Lla.Admission.utility controller in
  (match
     Lla.Admission.try_admit controller
       (chain_task ~id:2 ~exec:50. ~period:500. ~critical_time:25.)
   with
  | Lla.Admission.Rejected _ -> ()
  | Lla.Admission.Admitted _ -> Alcotest.fail "impossible task admitted");
  Alcotest.(check int) "state unchanged" 1 (List.length (Lla.Admission.admitted controller));
  match (before, Lla.Admission.utility controller) with
  | Some a, Some b -> check_close ~eps:1e-6 "utility unchanged" a b
  | _ -> Alcotest.fail "expected utilities"

let test_admission_id_collision () =
  let controller = Lla.Admission.create ~probe_iterations:500 ~resources:admission_resources () in
  ignore (Lla.Admission.try_admit controller (chain_task ~id:1 ~exec:2. ~period:100. ~critical_time:50.));
  match Lla.Admission.try_admit controller (chain_task ~id:1 ~exec:2. ~period:100. ~critical_time:50.) with
  | Lla.Admission.Rejected { reason } ->
    Alcotest.(check bool) "reason mentions ids" true (String.length reason > 0)
  | Lla.Admission.Admitted _ -> Alcotest.fail "duplicate id admitted"

let test_admission_retire_frees_capacity () =
  let controller = Lla.Admission.create ~probe_iterations:1500 ~resources:admission_resources () in
  List.iter
    (fun id ->
      ignore
        (Lla.Admission.try_admit controller
           (chain_task ~id ~exec:5. ~period:200. ~critical_time:100.)))
    [ 1; 2; 3 ];
  (match
     Lla.Admission.try_admit controller (chain_task ~id:4 ~exec:5. ~period:200. ~critical_time:100.)
   with
  | Lla.Admission.Rejected _ -> ()
  | Lla.Admission.Admitted _ -> Alcotest.fail "should be full");
  Alcotest.(check bool) "retire" true (Lla.Admission.retire controller (Ids.Task_id.make 2));
  Alcotest.(check bool) "retire absent task" false
    (Lla.Admission.retire controller (Ids.Task_id.make 2));
  match
    Lla.Admission.try_admit controller (chain_task ~id:4 ~exec:5. ~period:200. ~critical_time:100.)
  with
  | Lla.Admission.Admitted _ -> ()
  | Lla.Admission.Rejected { reason } -> Alcotest.fail ("expected admission after retire: " ^ reason)

let test_admission_retire_readmit_cycle () =
  (* Churn: fill the controller, retire a member, admit a strictly heavier
     replacement into the freed headroom, and check the re-solved utility
     is consistent — with the decision's own report, with a fresh offline
     solve of the accepted workload, and directionally with the heavier
     execution demand. *)
  let controller = Lla.Admission.create ~probe_iterations:1500 ~resources:admission_resources () in
  List.iter
    (fun id ->
      ignore
        (Lla.Admission.try_admit controller
           (chain_task ~id ~exec:5. ~period:200. ~critical_time:100.)))
    [ 1; 2; 3 ];
  let before =
    match Lla.Admission.utility controller with
    | Some u -> u
    | None -> Alcotest.fail "expected a utility for the full set"
  in
  Alcotest.(check bool) "retire" true (Lla.Admission.retire controller (Ids.Task_id.make 2));
  (* Two 5 ms tasks + one 6.5 ms task need 0.1 + 0.1 + 0.13 = 0.33 <= 0.35
     per resource: heavier than the retiree but still feasible. *)
  let decision_utility =
    match
      Lla.Admission.try_admit controller
        (chain_task ~id:4 ~exec:6.5 ~period:200. ~critical_time:100.)
    with
    | Lla.Admission.Admitted { utility; _ } -> utility
    | Lla.Admission.Rejected { reason } ->
      Alcotest.fail ("heavier replacement should fit: " ^ reason)
  in
  Alcotest.(check int) "set size restored" 3 (List.length (Lla.Admission.admitted controller));
  let after =
    match Lla.Admission.utility controller with
    | Some u -> u
    | None -> Alcotest.fail "expected a utility after re-admission"
  in
  Alcotest.(check bool)
    (Printf.sprintf "decision utility matches re-solve (%.3f ~ %.3f)" decision_utility after)
    true
    (Float.abs (decision_utility -. after) /. Float.max 1. (Float.abs after) < 0.02);
  Alcotest.(check bool)
    (Printf.sprintf "heavier set earns less utility (%.2f < %.2f)" after before)
    true (after < before);
  (* The controller's utility must agree with an independent solve of the
     workload it reports. *)
  match Lla.Admission.workload controller with
  | None -> Alcotest.fail "expected a workload"
  | Some w ->
    let solver = Lla.Solver.create w in
    ignore (Lla.Solver.run_until_converged solver ~max_iterations:4000);
    let fresh = Lla.Solver.utility solver in
    Alcotest.(check bool)
      (Printf.sprintf "fresh solve agrees (%.3f ~ %.3f)" fresh after)
      true
      (Float.abs (fresh -. after) /. Float.max 1. (Float.abs fresh) < 0.02)

let test_admission_empty () =
  let controller = Lla.Admission.create ~resources:admission_resources () in
  Alcotest.(check int) "empty" 0 (List.length (Lla.Admission.admitted controller));
  Alcotest.(check bool) "no workload" true (Lla.Admission.workload controller = None);
  Alcotest.(check bool) "no utility" true (Lla.Admission.utility controller = None)

let () =
  Alcotest.run "lla_codec"
    [
      ( "parse",
        [
          Alcotest.test_case "sample file" `Quick test_parse_sample;
          Alcotest.test_case "parsed workload solves" `Slow test_parse_solves;
          Alcotest.test_case "error reporting" `Quick test_parse_errors;
          Alcotest.test_case "comments and # in names" `Quick test_parse_comments_and_hash_names;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "paper workloads" `Slow test_roundtrip_paper_workloads;
          QCheck_alcotest.to_alcotest prop_roundtrip_random;
          Alcotest.test_case "file io" `Quick test_file_io;
          Alcotest.test_case "missing file" `Quick test_load_missing_file;
          Alcotest.test_case "custom utility rejected" `Quick test_custom_utility_not_serializable;
        ] );
      ( "admission",
        [
          Alcotest.test_case "accepts until full" `Slow test_admission_accepts_until_full;
          Alcotest.test_case "rejection keeps state" `Slow test_admission_rejection_keeps_state;
          Alcotest.test_case "id collision" `Quick test_admission_id_collision;
          Alcotest.test_case "retire frees capacity" `Slow test_admission_retire_frees_capacity;
          Alcotest.test_case "retire/re-admit cycle re-solves" `Slow
            test_admission_retire_readmit_cycle;
          Alcotest.test_case "empty controller" `Quick test_admission_empty;
        ] );
    ]
