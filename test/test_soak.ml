(* Lla_soak: churn/rota stream determinism, the kernel's churn and
   chaos/safe-mode hooks (admit/retire identity, poison healing, capacity
   dips, freeze discipline, fallback entry), safe-mode signal-feed
   equivalence, the rotating trace sink, and the soak runtime end to end
   (deterministic report, green mini-soak, forced-breach degradation). *)

module Generator = Lla_scale.Generator
module Kernel = Lla_scale.Kernel
module Churn = Lla_soak.Churn
module Rota = Lla_soak.Rota
module Soak = Lla_soak.Soak
module Safe_mode = Lla_runtime.Safe_mode
module Rotate = Lla_obs.Rotate

let qcheck = QCheck_alcotest.to_alcotest

let small_workload seed =
  Generator.generate
    ~params:(Generator.sized ~resources:(8 + (seed mod 5)) ~subtasks:(40 + (seed mod 37)) ())
    ~seed ()

let kernel_exn ?config workload =
  match Kernel.create ?config workload with
  | Ok k -> k
  | Error e -> Alcotest.failf "Kernel.create: %s" e

let scale_kernel seed = kernel_exn ~config:Kernel.scale_config (small_workload seed)

let arrays_bits_equal a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri
    (fun i x -> if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then ok := false)
    a;
  !ok

let check_bits msg a b =
  if not (arrays_bits_equal a b) then Alcotest.failf "%s: arrays differ bitwise" msg

let all_finite a = Array.for_all Float.is_finite a

(* ------------------------------------------------------------------ *)
(* Churn / rota streams                                                *)
(* ------------------------------------------------------------------ *)

(* Same seed -> identical op stream, and the stream is well-formed: every
   admit names an inactive roster task, every retire an active one. *)
let churn_stream_deterministic =
  QCheck.Test.make ~count:20 ~name:"churn stream deterministic and well-formed"
    QCheck.(int_range 0 1_000)
    (fun seed ->
      let n_tasks = 50 + (seed mod 23) in
      let params =
        {
          Churn.default_params with
          every = 100;
          diurnal_period = 4_000;
          flash_every = 3_000;
          flash_duration = 500;
        }
      in
      let make () = Churn.create ~params ~seed ~n_tasks ~priority:float_of_int () in
      let a = make () and b = make () in
      if Churn.initially_retired a <> Churn.initially_retired b then
        QCheck.Test.fail_report "initially_retired differs";
      let active = Array.make n_tasks true in
      List.iter (fun k -> active.(k) <- false) (Churn.initially_retired a);
      for now = 0 to 10_000 do
        let ops_a = Churn.step a ~now and ops_b = Churn.step b ~now in
        if ops_a <> ops_b then QCheck.Test.fail_reportf "ops differ at tick %d" now;
        List.iter
          (function
            | Churn.Admit k ->
              if active.(k) then QCheck.Test.fail_reportf "admit of active task %d" k;
              active.(k) <- true
            | Churn.Retire k ->
              if not active.(k) then QCheck.Test.fail_reportf "retire of inactive task %d" k;
              active.(k) <- false)
          ops_a
      done;
      true)

let rota_stream_deterministic =
  QCheck.Test.make ~count:20 ~name:"rota stream deterministic"
    QCheck.(int_range 0 1_000)
    (fun seed ->
      let params = { Rota.default_params with every = 1_000; duration = 120 } in
      let make () = Rota.create ~params ~seed ~n_resources:13 ~n_subtasks:77 () in
      let a = make () and b = make () in
      for now = 0 to 5_000 do
        (* structural compare, not (=): poison values include nan *)
        if Stdlib.compare (Rota.step a ~now) (Rota.step b ~now) <> 0 then
          QCheck.Test.fail_reportf "ops differ at tick %d" now
      done;
      if Rota.windows a < 4 then QCheck.Test.fail_report "expected ~5 windows";
      true)

let test_churn_shed_lowest_priority () =
  let churn =
    Churn.create
      ~params:{ Churn.default_params with roster_fraction = 1.; base_load = 1. }
      ~seed:5 ~n_tasks:10
      ~priority:(fun k -> float_of_int (10 - k))
      ()
  in
  (* everyone active; shedding 3 must evict the lowest-priority tasks 9,8,7 *)
  Alcotest.(check (list int)) "lowest priority first" [ 9; 8; 7 ] (Churn.shed churn ~count:3);
  Alcotest.(check int) "seven left" 7 (Churn.active_in_roster churn);
  (* a cap below the current count makes step retire down to it *)
  Churn.set_max_active churn 4;
  let retired_by_cap =
    List.filter_map (function Churn.Retire k -> Some k | Churn.Admit _ -> None)
      (Churn.step churn ~now:0)
  in
  Alcotest.(check bool) "step sheds to cap" true (List.length retired_by_cap >= 3)

(* ------------------------------------------------------------------ *)
(* Kernel churn hooks                                                  *)
(* ------------------------------------------------------------------ *)

(* An admit followed by a retire in the same inter-tick gap leaves the
   kernel bit-for-bit where it was, including on subsequent ticks. *)
let kernel_admit_retire_identity =
  QCheck.Test.make ~count:15 ~name:"kernel admit-then-retire is bit-for-bit invisible"
    QCheck.(int_range 0 1_000)
    (fun seed ->
      let make () =
        let k = scale_kernel seed in
        Kernel.retire_task k (Kernel.n_tasks k - 1);
        Kernel.run k ~iterations:200;
        k
      in
      let k1 = make () and k2 = make () in
      let victim = Kernel.n_tasks k1 - 1 in
      Kernel.admit_task k1 victim;
      Kernel.retire_task k1 victim;
      let same () =
        arrays_bits_equal (Kernel.lat_array k1) (Kernel.lat_array k2)
        && arrays_bits_equal (Kernel.mu_array k1) (Kernel.mu_array k2)
        && arrays_bits_equal (Kernel.lambda_array k1) (Kernel.lambda_array k2)
      in
      if not (same ()) then QCheck.Test.fail_report "state differs right after the no-op pair";
      Kernel.run k1 ~iterations:50;
      Kernel.run k2 ~iterations:50;
      if not (same ()) then QCheck.Test.fail_report "trajectories diverge after the no-op pair";
      true)

let test_kernel_retire_readmit_reconverges () =
  let k = scale_kernel 7 in
  ignore (Kernel.solve k ~max_iterations:20_000);
  let u0 = Kernel.utility k in
  let n = Kernel.n_tasks k in
  let victim = n - 1 in
  Kernel.retire_task k victim;
  Alcotest.(check int) "active count drops" (n - 1) (Kernel.n_active_tasks k);
  Alcotest.(check bool) "victim inactive" false (Kernel.task_active k victim);
  ignore (Kernel.solve k ~max_iterations:20_000);
  Kernel.admit_task k victim;
  Alcotest.(check int) "active count restored" n (Kernel.n_active_tasks k);
  ignore (Kernel.solve k ~max_iterations:20_000);
  let u1 = Kernel.utility k in
  Alcotest.(check bool) "feasible after readmit" true (Kernel.feasible k);
  if Float.abs (u1 -. u0) /. Float.max 1. (Float.abs u0) > 0.05 then
    Alcotest.failf "utility did not reconverge: %g vs %g" u1 u0

let test_kernel_poison_heals () =
  let k = scale_kernel 11 in
  ignore (Kernel.solve k ~max_iterations:20_000);
  (* non-finite writes: the pass-level guards heal these to 0 on the next
     tick; a finite-but-huge poison is the safe-mode path instead, covered
     by the enter_fallback test below *)
  Kernel.poison_price k 0 Float.nan;
  Kernel.poison_price k 1 Float.neg_infinity;
  (* a few ticks for the pass-level guards to heal the writes... *)
  Kernel.run k ~iterations:50;
  Alcotest.(check bool) "prices finite again" true (all_finite (Kernel.mu_array k));
  Alcotest.(check bool) "latencies finite" true (all_finite (Kernel.lat_array k));
  Alcotest.(check bool) "guards recorded" true (Kernel.guard_events k > 0);
  (* ...then a full re-solve to walk back from the disturbed allocation *)
  ignore (Kernel.solve k ~max_iterations:20_000);
  Alcotest.(check bool) "feasible after heal" true (Kernel.feasible k)

let test_kernel_capacity_dip_restore () =
  let k = scale_kernel 13 in
  ignore (Kernel.solve k ~max_iterations:20_000);
  let u0 = Kernel.utility k in
  let b0 = Kernel.capacity k 0 in
  Kernel.set_capacity k 0 (0.8 *. b0);
  Kernel.run k ~iterations:3_000;
  Alcotest.(check bool) "finite under dip" true
    (all_finite (Kernel.mu_array k) && all_finite (Kernel.lat_array k));
  Kernel.set_capacity k 0 b0;
  ignore (Kernel.solve k ~max_iterations:20_000);
  Alcotest.(check bool) "feasible after restore" true (Kernel.feasible k);
  let u1 = Kernel.utility k in
  if Float.abs (u1 -. u0) /. Float.max 1. (Float.abs u0) > 0.05 then
    Alcotest.failf "utility did not recover after restore: %g vs %g" u1 u0

let test_kernel_freeze_holds_latencies () =
  let k = scale_kernel 17 in
  ignore (Kernel.solve k ~max_iterations:20_000);
  Kernel.set_frozen k true;
  Alcotest.(check bool) "frozen" true (Kernel.frozen k);
  let lat0 = Array.copy (Kernel.lat_array k) in
  Kernel.run k ~iterations:100;
  check_bits "latencies held while frozen" lat0 (Kernel.lat_array k);
  Alcotest.(check (float 0.)) "movement reads 0" 0. (Kernel.movement k);
  Kernel.set_frozen k false;
  Kernel.requeue_all k;
  ignore (Kernel.solve k ~max_iterations:20_000);
  Alcotest.(check bool) "feasible after thaw" true (Kernel.feasible k)

let test_kernel_enter_fallback_heals () =
  let w = small_workload 19 in
  let k = kernel_exn ~config:Kernel.scale_config w in
  let sm = Safe_mode.create (Lla.Problem.compile w) in
  ignore (Kernel.solve k ~max_iterations:5_000);
  Kernel.poison_price k 0 Float.infinity;
  Kernel.poison_price k 1 1e11;
  Kernel.enter_fallback k ~lat:(Safe_mode.fallback sm) ();
  Kernel.set_frozen k true;
  let mu = Kernel.mu_array k in
  Alcotest.(check bool) "prices healed" true (all_finite mu);
  Array.iteri
    (fun r m -> if m > 1e6 then Alcotest.failf "price %d above heal cap: %g" r m)
    mu;
  if Safe_mode.fallback_guaranteed sm then begin
    Kernel.run k ~iterations:5;
    Alcotest.(check bool) "fallback point feasible" true (Kernel.feasible k)
  end

(* ------------------------------------------------------------------ *)
(* Safe mode: observe_signals matches observe                          *)
(* ------------------------------------------------------------------ *)

let test_observe_signals_matches_observe () =
  let w = small_workload 3 in
  let p = Lla.Problem.compile w in
  let config = { Safe_mode.default_config with warmup_rounds = 0 } in
  let sm_full = Safe_mode.create ~config p in
  let sm_sig = Safe_mode.create ~config p in
  let lat = Safe_mode.fallback sm_full in
  let offsets = Array.make (Array.length lat) 0. in
  let n_res = List.length w.Lla_model.Workload.resources in
  let mu = Array.make n_res 1.0 in
  let utility = Lla.Problem.total_utility p ~lat in
  for round = 1 to 10 do
    let now = float_of_int round in
    let e_full = Safe_mode.observe sm_full ~now ~mu ~lat ~offsets in
    let e_sig = Safe_mode.observe_signals sm_sig ~now ~mu ~feasible:true ~utility in
    if e_full <> e_sig then Alcotest.failf "events diverge at round %d" round
  done;
  (* a diverged price must trip both feeds identically *)
  mu.(0) <- 1e9;
  let e_full = Safe_mode.observe sm_full ~now:11. ~mu ~lat ~offsets in
  let e_sig = Safe_mode.observe_signals sm_sig ~now:11. ~mu ~feasible:true ~utility in
  (match e_full with
  | Some (Safe_mode.Entered _) -> ()
  | _ -> Alcotest.fail "observe did not trip on diverged price");
  if e_full <> e_sig then Alcotest.fail "signal feed tripped differently from full feed";
  Alcotest.(check bool) "both in safe mode" true
    (Safe_mode.in_safe_mode sm_full && Safe_mode.in_safe_mode sm_sig)

(* ------------------------------------------------------------------ *)
(* Rotating trace sink                                                 *)
(* ------------------------------------------------------------------ *)

let count_lines path =
  let ic = open_in path in
  let n = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr n
     done
   with End_of_file -> ());
  close_in ic;
  !n

let test_rotate_bounds_segments () =
  let path = Filename.temp_file "lla_soak_rotate" ".jsonl" in
  let rot = Rotate.create ~max_records:10 ~retain:2 ~path () in
  let obs = Lla_obs.create () in
  Lla_obs.Trace.attach obs.Lla_obs.trace (Rotate.sink rot);
  for i = 1 to 35 do
    Lla_obs.emit obs ~at:(float_of_int i)
      (Lla_obs.Trace.Note { name = "soak.test"; value = float_of_int i })
  done;
  Rotate.close rot;
  Alcotest.(check int) "records written" 35 (Rotate.records_written rot);
  Alcotest.(check int) "rotations" 3 (Rotate.rotations rot);
  let segs = Rotate.segments rot in
  Alcotest.(check int) "retained segments" 3 (List.length segs);
  List.iter
    (fun s ->
      if not (Sys.file_exists s) then Alcotest.failf "listed segment missing: %s" s)
    segs;
  Alcotest.(check (list int)) "line counts newest-first" [ 5; 10; 10 ]
    (List.map count_lines segs);
  List.iter Sys.remove segs

(* ------------------------------------------------------------------ *)
(* Soak runtime end to end                                             *)
(* ------------------------------------------------------------------ *)

let mini_config =
  {
    Soak.smoke_config with
    subtasks = 180;
    horizon = 12_000;
    churn =
      {
        Churn.default_params with
        every = 100;
        diurnal_period = 3_000;
        flash_every = 2_500;
        flash_duration = 400;
      };
    chaos = { Rota.default_params with every = 5_000; duration = 150 };
    reconverge_budget = 800;
    sustain_budget = 500;
    baseline_every = 4_000;
    baseline_iterations = 2_000;
    warmstart_iterations = 3_000;
    (* the endurance-scale safe-mode dwell (min_safe_time 2000 ticks +
       10 settle observations at the 100-tick watchdog cadence) would keep
       the kernel frozen across every mini-horizon baseline checkpoint *)
    safe_mode =
      {
        Soak.smoke_config.Soak.safe_mode with
        Safe_mode.min_safe_time = 300.;
        settle_rounds = 3;
      };
  }

let run_exn config =
  match Soak.run config with
  | Ok r -> r
  | Error e -> Alcotest.failf "Soak.run: %s" e

let test_soak_mini_green_and_deterministic () =
  let r1 = run_exn mini_config in
  let r2 = run_exn mini_config in
  (* green: the mini endurance run holds every rolling-health oracle *)
  Alcotest.(check (list string)) "no oracle violations" [] r1.Soak.oracle_violations;
  Alcotest.(check int) "violation count" 0 r1.Soak.violation_count;
  Alcotest.(check bool) "chaos exercised" true (r1.Soak.chaos_windows >= 2);
  Alcotest.(check bool) "churn exercised" true (r1.Soak.admits >= 5 && r1.Soak.retires >= 5);
  Alcotest.(check bool) "baseline checked" true (r1.Soak.baseline_checks >= 1);
  Alcotest.(check bool) "final feasible" true r1.Soak.final_feasible;
  Alcotest.(check int) "no degradations without ceilings" 0 r1.Soak.degradations;
  (* deterministic: every tick-derived report field is reproducible
     (wall-clock and memory fields are the exceptions by nature) *)
  let det (r : Soak.report) =
    ( ( r.Soak.ticks,
        r.Soak.tasks,
        r.Soak.subtasks,
        r.Soak.admits,
        r.Soak.retires,
        r.Soak.chaos_windows,
        r.Soak.stalls ),
      ( r.Soak.guard_events,
        r.Soak.safe_entries,
        r.Soak.safe_exits,
        r.Soak.degradations,
        r.Soak.recoveries,
        r.Soak.max_level,
        r.Soak.violation_count ),
      ( r.Soak.oracle_violations,
        r.Soak.reconverge_episodes,
        r.Soak.worst_settle_ticks,
        r.Soak.baseline_checks,
        Int64.bits_of_float r.Soak.worst_drift,
        Int64.bits_of_float r.Soak.final_utility,
        r.Soak.final_active_tasks ) )
  in
  if det r1 <> det r2 then Alcotest.fail "same config, different report";
  (* render stays total *)
  Alcotest.(check bool) "render non-empty" true (String.length (Soak.render r1) > 0)

let test_soak_breach_degrades_not_dies () =
  let config =
    {
      mini_config with
      horizon = 3_000;
      baseline_every = 0;
      ceilings = { Soak.max_rss_kb = 500; max_words_per_tick = 0.; min_ticks_per_s = 0. };
    }
  in
  let r = run_exn config in
  (* an unmeetable RSS ceiling walks the full ladder into forced safe
     mode — recorded as degradations, never a crash *)
  Alcotest.(check bool) "degradations recorded" true (r.Soak.degradations >= 1);
  Alcotest.(check int) "ladder bottom reached" (config.Soak.shed_levels + 1) r.Soak.max_level;
  Alcotest.(check bool) "forced safe mode" true (r.Soak.safe_entries >= 1);
  Alcotest.(check int) "ticks all ran" config.Soak.horizon r.Soak.ticks

(* Crash drills inside the endurance run: with a journal the drills
   recover warm from replayed records and the run stays green; the
   journal-free variant of the same config recovers cold and, with both
   cadences at zero, reproduces the crash-free report exactly. *)
let test_soak_crash_drills () =
  let module Journal = Lla_durable.Journal in
  let config =
    { mini_config with Soak.horizon = 8_000; crash_every = 2_500; journal_every = 200 }
  in
  let journal = Journal.create (Journal.Store.faulty ()) in
  let r =
    match Soak.run ~journal config with
    | Ok r -> r
    | Error e -> Alcotest.failf "Soak.run: %s" e
  in
  Alcotest.(check (list string)) "crash drills stay green" [] r.Soak.oracle_violations;
  Alcotest.(check bool) "drills executed" true (r.Soak.crashes >= 2);
  Alcotest.(check int) "every drill accounted" r.Soak.crashes
    (r.Soak.warm_recoveries + r.Soak.cold_recoveries);
  Alcotest.(check bool) "journaled drills recover warm" true (r.Soak.warm_recoveries >= 1);
  Alcotest.(check bool) "records replayed" true (r.Soak.journal_replayed > 0);
  Alcotest.(check bool) "render mentions the drills" true
    (let r = Soak.render r in
     let needle = "crashes:" in
     let n = String.length needle in
     let rec go i = i + n <= String.length r && (String.sub r i n = needle || go (i + 1)) in
     go 0);
  (* same drills without a journal: every recovery is cold *)
  let r =
    match Soak.run { config with Soak.journal_every = 0 } with
    | Ok r -> r
    | Error e -> Alcotest.failf "Soak.run: %s" e
  in
  Alcotest.(check bool) "journal-free drills recover cold" true
    (r.Soak.crashes >= 2 && r.Soak.warm_recoveries = 0 && r.Soak.cold_recoveries = r.Soak.crashes);
  Alcotest.(check int) "nothing replayed" 0 r.Soak.journal_replayed

let () =
  Alcotest.run "soak"
    [
      ( "streams",
        [
          qcheck churn_stream_deterministic;
          qcheck rota_stream_deterministic;
          Alcotest.test_case "shed evicts lowest priority" `Quick test_churn_shed_lowest_priority;
        ] );
      ( "kernel churn",
        [
          qcheck kernel_admit_retire_identity;
          Alcotest.test_case "retire/readmit reconverges" `Quick
            test_kernel_retire_readmit_reconverges;
          Alcotest.test_case "poison heals" `Quick test_kernel_poison_heals;
          Alcotest.test_case "capacity dip + restore" `Quick test_kernel_capacity_dip_restore;
          Alcotest.test_case "freeze holds latencies" `Quick test_kernel_freeze_holds_latencies;
          Alcotest.test_case "enter_fallback heals prices" `Quick
            test_kernel_enter_fallback_heals;
        ] );
      ( "safe mode",
        [
          Alcotest.test_case "observe_signals matches observe" `Quick
            test_observe_signals_matches_observe;
        ] );
      ("rotate", [ Alcotest.test_case "bounded segments" `Quick test_rotate_bounds_segments ]);
      ( "soak",
        [
          Alcotest.test_case "mini soak green and deterministic" `Quick
            test_soak_mini_green_and_deterministic;
          Alcotest.test_case "ceiling breach degrades, not dies" `Quick
            test_soak_breach_degrades_not_dies;
          Alcotest.test_case "crash drills recover warm, stay green" `Quick
            test_soak_crash_drills;
        ] );
    ]
