(* The streaming monitor's contract is agreement: every online detector
   must report exactly what the offline [Analyze] pass reports on the
   same sample stream. Seeded property tests hold that equivalence over
   random series for each shared primitive (Settle, Probe, episodes,
   oscillation, dispersion), and two end-to-end runs — the paper
   scenario on the distributed runtime and a generated scale scenario on
   the flat-array kernel — hold it on real trajectories. Alert replay
   determinism closes the loop: feeding a collected trace back through a
   fresh monitor reproduces the identical alert timeline. *)

module Trace = Lla_obs.Trace
module Monitor = Lla_obs.Monitor
module Analyze = Lla_obs.Analyze
module Series = Lla_obs.Series
module Metrics = Lla_obs.Metrics
module Distributed = Lla_runtime.Distributed

let foption eps = Alcotest.option (Alcotest.float eps)

(* ------------------------------------------------------------------ *)
(* Shared primitives: unit semantics                                   *)
(* ------------------------------------------------------------------ *)

let test_streak_semantics () =
  let s = Monitor.Streak.create ~budget:100 in
  Alcotest.(check (option int)) "within budget" None (Monitor.Streak.observe s ~ok:false ~step:60);
  Alcotest.(check int) "accumulates" 60 (Monitor.Streak.current s);
  Alcotest.(check (option int))
    "exceeding the budget reports the streak" (Some 120)
    (Monitor.Streak.observe s ~ok:false ~step:60);
  Alcotest.(check int) "firing resets" 0 (Monitor.Streak.current s);
  ignore (Monitor.Streak.observe s ~ok:false ~step:90);
  Alcotest.(check (option int)) "a good sample zeroes" None
    (Monitor.Streak.observe s ~ok:true ~step:90);
  Alcotest.(check int) "zeroed" 0 (Monitor.Streak.current s);
  ignore (Monitor.Streak.observe s ~ok:false ~step:90);
  Monitor.Streak.reset s;
  Alcotest.(check int) "reset zeroes (grace windows)" 0 (Monitor.Streak.current s)

let test_drift_normalization () =
  Alcotest.(check (float 1e-12)) "relative vs baseline" 0.25 (Monitor.drift ~baseline:200. 150.);
  Alcotest.(check (float 1e-12)) "floor at 1 for tiny baselines" 0.5 (Monitor.drift ~baseline:0. 0.5);
  Alcotest.(check (float 1e-12)) "sign-insensitive" 0.25 (Monitor.drift ~baseline:(-200.) (-150.))

(* ------------------------------------------------------------------ *)
(* Property: online detectors == offline reductions, random series     *)
(* ------------------------------------------------------------------ *)

(* Series shaped like real trajectories: a noisy approach toward a
   target with occasional late excursions, so settling is sometimes
   achieved, sometimes ruined by the tail — both branches of the
   suffix-stability criterion get exercised. *)
let gen_series =
  QCheck.Gen.(
    let* n = int_range 0 80 in
    let* target = oneofl [ 10.; -7.5; 123.456 ] in
    let* decay = float_range 0.5 0.99 in
    let* noise = float_range 0. 3. in
    let* spikes = list_size (int_range 0 3) (int_range 0 (max 0 (n - 1))) in
    let* seeds = list_repeat n (float_range (-1.) 1.) in
    let vs =
      List.mapi
        (fun i u ->
          let transient = 20. *. (decay ** float_of_int i) in
          let spike = if List.mem i spikes then 15. else 0. in
          target +. transient +. (noise *. u) +. spike)
        seeds
    in
    return (target, List.mapi (fun i v -> (float_of_int i, v)) vs))

let arb_series =
  QCheck.make gen_series ~print:(fun (target, s) ->
      Printf.sprintf "target %g, series [%s]" target
        (String.concat "; " (List.map (fun (t, v) -> Printf.sprintf "(%g,%g)" t v) s)))

let opt_eq a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> Float.abs (x -. y) <= 1e-9
  | _ -> false

let prop_settle_agrees =
  QCheck.Test.make ~name:"Settle.settled_since == Analyze.settling_time, any series" ~count:300
    arb_series (fun (target, series) ->
      let s = Monitor.Settle.create ~target () in
      List.iter (fun (at, v) -> Monitor.Settle.observe s ~at v) series;
      let online = Monitor.Settle.settled_since s in
      let offline = Analyze.settling_time ~target series in
      if not (opt_eq online offline) then
        QCheck.Test.fail_reportf "online %s, offline %s"
          (match online with None -> "never" | Some t -> string_of_float t)
          (match offline with None -> "never" | Some t -> string_of_float t)
      else true)

let prop_probe_agrees =
  QCheck.Test.make ~name:"Probe.settling == settling_time against the final value" ~count:300
    arb_series (fun (_, series) ->
      let p = Monitor.Probe.start ~at:0. in
      List.iter (fun (at, v) -> Monitor.Probe.sample p ~at ~value:v) series;
      let offline =
        match List.rev series with
        | [] -> None
        | (_, final) :: _ -> Analyze.settling_time ~target:final series
      in
      opt_eq (Monitor.Probe.settling p) offline)

let prop_episodes_agree =
  QCheck.Test.make ~name:"overload_episodes == Analyze.episodes, any load series" ~count:300
    arb_series (fun (_, series) ->
      (* Rescale into load-factor territory so the 1.0 threshold cuts
         through the series rather than sitting above or below it. *)
      let loads = List.map (fun (t, v) -> (t, v /. 15.)) series in
      let m = Monitor.create () in
      List.iter (fun (at, load) -> Monitor.observe_load m ~at ~resource:3 ~load) loads;
      let online = Monitor.overload_episodes m ~resource:3 in
      let offline = Analyze.episodes loads in
      List.length online = List.length offline
      && List.for_all2
           (fun (a, b) (c, d) -> Float.abs (a -. c) <= 1e-9 && Float.abs (b -. d) <= 1e-9)
           online offline)

let prop_oscillation_dispersion_agree =
  QCheck.Test.make ~name:"oscillation/dispersion == Analyze over the retained series" ~count:300
    arb_series (fun (_, series) ->
      let m = Monitor.create () in
      List.iter (fun (at, v) -> Monitor.observe_utility m ~at v) series;
      let osc_eq =
        match (Monitor.oscillation m, Analyze.oscillation series) with
        | None, None -> true
        | Some a, Some b ->
          Float.abs (a.Analyze.amplitude -. b.Analyze.amplitude) <= 1e-9
          && opt_eq a.Analyze.period b.Analyze.period
        | _ -> false
      in
      osc_eq && Float.abs (Monitor.dispersion m -. Analyze.dispersion series) <= 1e-9)

(* ------------------------------------------------------------------ *)
(* End-to-end: the paper scenario on the distributed runtime            *)
(* ------------------------------------------------------------------ *)

(* One run, three consumers: a memory sink collecting the raw stream,
   the monitor fed live through its trace sink, and the offline Analyze
   pass over the collected records. Online readouts must equal the
   offline reductions on every shared signal. *)
let run_paper_scenario () =
  let workload = Lla_workloads.Paper_sim.base () in
  let obs = Lla_obs.create () in
  let sink, collected = Trace.memory_sink () in
  Trace.attach obs.Lla_obs.trace sink;
  let monitor = Monitor.create ~tasks:(List.length workload.Lla_model.Workload.tasks) () in
  Monitor.attach monitor obs.Lla_obs.trace;
  let engine = Lla_sim.Engine.create () in
  let d = Distributed.create ~obs engine workload in
  Distributed.run d ~duration:3000.;
  Distributed.stop d;
  (monitor, collected ())

let test_distributed_agreement () =
  let monitor, records = run_paper_scenario () in
  let utility = Series.utility records in
  Alcotest.(check bool) "run produced utility samples" true (utility <> []);
  Alcotest.(check int) "monitor saw every utility sample" (List.length utility)
    (Monitor.utility_samples monitor);
  let final = snd (List.hd (List.rev utility)) in
  Alcotest.check (foption 1e-9) "settling tick agrees (vs final value)"
    (Analyze.settling_time ~target:final utility)
    (Monitor.settling_tick monitor);
  Alcotest.check (foption 1e-9) "last utility agrees" (Some final) (Monitor.last_utility monitor);
  (match (Monitor.oscillation monitor, Analyze.oscillation utility) with
  | Some a, Some b ->
    Alcotest.(check (float 1e-9)) "oscillation amplitude agrees" b.Analyze.amplitude
      a.Analyze.amplitude;
    Alcotest.check (foption 1e-9) "oscillation period agrees" b.Analyze.period a.Analyze.period
  | None, None -> ()
  | _ -> Alcotest.fail "oscillation presence disagrees");
  Alcotest.(check (float 1e-9)) "dispersion agrees" (Analyze.dispersion utility)
    (Monitor.dispersion monitor);
  let congestion = Series.congestion records in
  Alcotest.(check bool) "run produced congestion series" true (congestion <> []);
  List.iter
    (fun (resource, series) ->
      Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
        (Printf.sprintf "overload episodes agree on resource %d" resource)
        (Analyze.episodes series)
        (Monitor.overload_episodes monitor ~resource))
    congestion;
  Alcotest.(check (list int))
    "monitor saw exactly the traced resources"
    (List.map fst congestion |> List.sort compare)
    (Monitor.resources_seen monitor |> List.sort compare)

(* Replay determinism: a fresh monitor fed the collected records (alert
   events included — the sink must ignore them rather than echo) ends in
   the identical alert state, transition counts and timestamps. *)
let test_alert_replay_deterministic () =
  let live, records = run_paper_scenario () in
  let replayed = Monitor.create ~tasks:(List.length (Lla_workloads.Paper_sim.base ()).Lla_model.Workload.tasks) () in
  List.iter (Monitor.sink replayed) records;
  let view m =
    List.map
      (fun (a : Monitor.alert_view) ->
        ( a.Monitor.name,
          (a.Monitor.active, a.Monitor.raised, a.Monitor.cleared),
          (a.Monitor.since, a.Monitor.last_value) ))
      (Monitor.alerts m)
  in
  Alcotest.(check int) "same total raises" (Monitor.alerts_raised live)
    (Monitor.alerts_raised replayed);
  Alcotest.(check int) "same total clears" (Monitor.alerts_cleared live)
    (Monitor.alerts_cleared replayed);
  List.iter2
    (fun (n1, s1, (since1, v1)) (n2, s2, (since2, v2)) ->
      Alcotest.(check string) "alert order is fixed" n1 n2;
      Alcotest.(check (triple bool int int)) (n1 ^ ": state and counts") s1 s2;
      let feq a b = (Float.is_nan a && Float.is_nan b) || Float.abs (a -. b) <= 1e-9 in
      Alcotest.(check bool) (n1 ^ ": episode timestamps") true (feq since1 since2 && feq v1 v2))
    (view live) (view replayed)

(* The recovery_stuck alert: a recovery that converges inside the enter
   hysteresis never raises it; one stuck past [sustain_budget] does, at
   Critical; [clear_after] of post-recovery health clears it. *)
let test_recovery_stuck_hysteresis () =
  let config = { Monitor.default_config with Monitor.sustain_budget = 100.; clear_after = 200. } in
  let find m =
    match List.find_opt (fun (a : Monitor.alert_view) -> a.Monitor.name = "recovery_stuck") (Monitor.alerts m) with
    | Some a -> a
    | None -> Alcotest.fail "no recovery_stuck alert on the bus"
  in
  (* fast recovery: stuck for less than the budget, then healthy *)
  let m = Monitor.create ~config () in
  for i = 1 to 9 do
    Monitor.observe_recovery m ~at:(float_of_int (i * 10)) ~ok:false ~value:(float_of_int i)
  done;
  Monitor.observe_recovery m ~at:100. ~ok:true ~value:10.;
  Alcotest.(check bool) "fast recovery never raises" false (find m).Monitor.active;
  Alcotest.(check int) "no raise transition" 0 (find m).Monitor.raised;
  (* stuck recovery: infeasible past the budget *)
  let m = Monitor.create ~config () in
  for i = 1 to 15 do
    Monitor.observe_recovery m ~at:(float_of_int (i * 10)) ~ok:false ~value:(float_of_int i)
  done;
  let a = find m in
  Alcotest.(check bool) "stuck recovery raises" true a.Monitor.active;
  Alcotest.(check bool) "critical severity" true (a.Monitor.severity = Monitor.Critical);
  (* health must hold for clear_after before the alert clears *)
  Monitor.observe_recovery m ~at:200. ~ok:true ~value:0.;
  Monitor.observe_recovery m ~at:300. ~ok:true ~value:0.;
  Alcotest.(check bool) "still active inside clear_after" true (find m).Monitor.active;
  Monitor.observe_recovery m ~at:450. ~ok:true ~value:0.;
  let a = find m in
  Alcotest.(check bool) "cleared after sustained health" false a.Monitor.active;
  Alcotest.(check int) "one full episode" 1 a.Monitor.raised;
  Alcotest.(check int) "one clear" 1 a.Monitor.cleared

(* ------------------------------------------------------------------ *)
(* End-to-end: a generated scale scenario on the flat-array kernel      *)
(* ------------------------------------------------------------------ *)

let test_scale_agreement () =
  let workload =
    Lla_scale.Generator.generate ~params:(Lla_scale.Generator.sized ~subtasks:1_500 ()) ~seed:11 ()
  in
  let kernel =
    match Lla_scale.Kernel.create ~config:Lla_scale.Kernel.scale_config workload with
    | Ok k -> k
    | Error e -> Alcotest.fail ("kernel rejected generated workload: " ^ e)
  in
  let monitor = Monitor.create () in
  let series = ref [] in
  for i = 1 to 300 do
    Lla_scale.Kernel.step kernel;
    let at = float_of_int i in
    let u = Lla_scale.Kernel.utility kernel in
    series := (at, u) :: !series;
    Monitor.observe_utility monitor ~at u
  done;
  let series = List.rev !series in
  let final = snd (List.hd (List.rev series)) in
  Alcotest.(check int) "every tick observed" 300 (Monitor.utility_samples monitor);
  Alcotest.check (foption 1e-9) "settling tick agrees on the kernel trajectory"
    (Analyze.settling_time ~target:final series)
    (Monitor.settling_tick monitor);
  Alcotest.(check (float 1e-9)) "dispersion agrees" (Analyze.dispersion series)
    (Monitor.dispersion monitor);
  match (Monitor.oscillation monitor, Analyze.oscillation series) with
  | Some a, Some b ->
    Alcotest.(check (float 1e-9)) "oscillation amplitude agrees" b.Analyze.amplitude
      a.Analyze.amplitude
  | None, None -> ()
  | _ -> Alcotest.fail "oscillation presence disagrees"

let () =
  let rand = Random.State.make [| 20260809 |] in
  Alcotest.run "lla_monitor"
    [
      ( "primitives",
        [
          Alcotest.test_case "streak budget semantics" `Quick test_streak_semantics;
          Alcotest.test_case "drift normalization" `Quick test_drift_normalization;
          Alcotest.test_case "recovery_stuck hysteresis" `Quick test_recovery_stuck_hysteresis;
        ] );
      ( "agreement",
        List.map (QCheck_alcotest.to_alcotest ~rand)
          [
            prop_settle_agrees;
            prop_probe_agrees;
            prop_episodes_agree;
            prop_oscillation_dispersion_agree;
          ] );
      ( "end-to-end",
        [
          Alcotest.test_case "distributed run: online == offline" `Slow
            test_distributed_agreement;
          Alcotest.test_case "alert replay is deterministic" `Slow
            test_alert_replay_deterministic;
          Alcotest.test_case "scale kernel: online == offline" `Quick test_scale_agreement;
        ] );
    ]
