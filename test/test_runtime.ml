(* Tests for the runtime: cluster, dispatcher (precedence semantics),
   optimizer loop, whole-system emulation, and the distributed
   message-passing LLA. *)

open Lla_model
module Cluster = Lla_runtime.Cluster
module Dispatcher = Lla_runtime.Dispatcher

let check_close ?(eps = 1e-6) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s (expected %g, got %g)" msg expected actual)
    true
    (Float.abs (expected -. actual) <= eps)

(* A diamond task on four dedicated CPUs — exercises fork/join precedence. *)
let diamond_workload ?(period = 100.) () =
  let tid = Ids.Task_id.make 1 in
  let s ~id ~r ~e = Subtask.make ~id ~task:tid ~resource:r ~exec_time:e () in
  let root = s ~id:0 ~r:0 ~e:2. in
  let left = s ~id:1 ~r:1 ~e:4. in
  let right = s ~id:2 ~r:2 ~e:8. in
  let join = s ~id:3 ~r:3 ~e:2. in
  let task =
    Task.make_exn ~id:1
      ~subtasks:[ root; left; right; join ]
      ~graph:
        (Graph.make_exn
           ~nodes:[ root.id; left.id; right.id; join.id ]
           ~edges:[ (root.id, left.id); (root.id, right.id); (left.id, join.id); (right.id, join.id) ])
      ~critical_time:100.
      ~utility:(Utility.negative_latency ())
      ~trigger:(Trigger.periodic ~period ())
      ()
  in
  Workload.make_exn ~tasks:[ task ] ~resources:(List.init 4 (fun i -> Resource.make i))

(* ------------------------------------------------------------------ *)
(* Cluster                                                             *)
(* ------------------------------------------------------------------ *)

let test_cluster_share_enactment () =
  let engine = Lla_sim.Engine.create () in
  let cluster = Cluster.create engine (diamond_workload ()) in
  let sid = Ids.Subtask_id.make 1 in
  check_close "initial share 0" 0. (Cluster.share cluster sid);
  Cluster.set_share cluster sid 0.4;
  check_close "share set" 0.4 (Cluster.share cluster sid);
  Alcotest.(check int) "no backlog" 0 (Cluster.backlog cluster sid)

let test_cluster_submit_runs_job () =
  let engine = Lla_sim.Engine.create () in
  let cluster = Cluster.create engine (diamond_workload ()) in
  let sid = Ids.Subtask_id.make 0 in
  Cluster.set_share cluster sid 1.0;
  let finish = ref nan in
  Cluster.submit cluster sid ~work:3. ~on_complete:(fun t -> finish := t);
  Lla_sim.Engine.run engine ();
  check_close ~eps:0.5 "job served" 3. !finish

(* ------------------------------------------------------------------ *)
(* Dispatcher                                                          *)
(* ------------------------------------------------------------------ *)

let with_system ?(work_model = Dispatcher.Wcet) workload f =
  let engine = Lla_sim.Engine.create () in
  let cluster = Cluster.create engine workload in
  (* Give every subtask a generous share so jobs flow. *)
  List.iter (fun (s : Subtask.t) -> Cluster.set_share cluster s.id 0.24)
    (Workload.subtasks workload);
  let dispatcher = Dispatcher.create ~work_model ~cluster () in
  f engine cluster dispatcher

let test_dispatcher_precedence () =
  with_system (diamond_workload ~period:1000. ()) (fun engine _ dispatcher ->
      let completions = ref [] in
      Dispatcher.on_subtask_completion dispatcher (fun sid ~latency:_ ~now ->
          completions := (Ids.Subtask_id.to_int sid, now) :: !completions);
      Dispatcher.start dispatcher;
      (* The first periodic release fires at t = period (1000 ms). *)
      Lla_sim.Engine.run_until engine 1999.;
      let completions = List.rev !completions in
      Alcotest.(check int) "four subtask jobs" 4 (List.length completions);
      let time_of id = List.assoc id completions in
      Alcotest.(check bool) "root before branches" true
        (time_of 0 <= time_of 1 && time_of 0 <= time_of 2);
      Alcotest.(check bool) "join strictly after both branches" true
        (time_of 3 > time_of 1 && time_of 3 > time_of 2))

let test_dispatcher_task_latency_is_leaf_max () =
  with_system (diamond_workload ~period:1000. ()) (fun engine _ dispatcher ->
      let task_latency = ref nan and join_done = ref nan and released = 1000. in
      Dispatcher.on_task_completion dispatcher (fun _ ~latency ~now:_ -> task_latency := latency);
      Dispatcher.on_subtask_completion dispatcher (fun sid ~latency:_ ~now ->
          if Ids.Subtask_id.to_int sid = 3 then join_done := now);
      Dispatcher.start dispatcher;
      Lla_sim.Engine.run_until engine 1999.;
      check_close "end-to-end = join completion - release" (!join_done -. released) !task_latency;
      Alcotest.(check int) "one completion" 1 (Dispatcher.completions dispatcher))

let test_dispatcher_overlapping_job_sets () =
  (* Period shorter than the makespan: releases overlap; all must finish
     (shares keep up: utilization is low). *)
  with_system (diamond_workload ~period:20. ()) (fun engine _ dispatcher ->
      Dispatcher.start dispatcher;
      Lla_sim.Engine.run_until engine 2000.;
      Alcotest.(check bool) "many releases" true (Dispatcher.releases dispatcher >= 90);
      Alcotest.(check bool) "releases complete" true
        (Dispatcher.completions dispatcher >= Dispatcher.releases dispatcher - 5))

let test_dispatcher_work_model () =
  (* Uniform_fraction jobs must be strictly cheaper than WCET on average. *)
  let measure work_model =
    with_system ~work_model (diamond_workload ~period:50. ()) (fun engine _ dispatcher ->
        let stats = Lla_stdx.Stats.create () in
        Dispatcher.on_task_completion dispatcher (fun _ ~latency ~now:_ ->
            Lla_stdx.Stats.add stats latency);
        Dispatcher.start dispatcher;
        Lla_sim.Engine.run_until engine 5000.;
        Lla_stdx.Stats.mean stats)
  in
  let wcet = measure Dispatcher.Wcet in
  let varied = measure (Dispatcher.Uniform_fraction { lo = 0.4 }) in
  Alcotest.(check bool)
    (Printf.sprintf "varied work is faster on average (%.2f < %.2f)" varied wcet)
    true (varied < wcet)

let test_dispatcher_double_start_rejected () =
  with_system (diamond_workload ()) (fun _ _ dispatcher ->
      Dispatcher.start dispatcher;
      Alcotest.(check bool) "second start raises" true
        (try
           Dispatcher.start dispatcher;
           false
         with Invalid_argument _ -> true))

let test_dispatcher_deterministic () =
  let run () =
    with_system
      ~work_model:(Dispatcher.Uniform_fraction { lo = 0.5 })
      (diamond_workload ~period:30. ())
      (fun engine _ dispatcher ->
        let acc = ref 0. in
        Dispatcher.on_task_completion dispatcher (fun _ ~latency ~now:_ -> acc := !acc +. latency);
        Dispatcher.start dispatcher;
        Lla_sim.Engine.run_until engine 3000.;
        !acc)
  in
  check_close ~eps:0. "identical accumulated latency" (run ()) (run ())


let test_dispatcher_measured_rate () =
  with_system (diamond_workload ~period:50. ()) (fun engine _ dispatcher ->
      let tid = Ids.Task_id.make 1 in
      Alcotest.(check (option (float 0.))) "no rate before releases" None
        (Dispatcher.measured_rate dispatcher tid);
      Dispatcher.start dispatcher;
      Lla_sim.Engine.run_until engine 5_000.;
      match Dispatcher.measured_rate dispatcher tid with
      | None -> Alcotest.fail "expected a measured rate"
      | Some rate -> check_close ~eps:1e-6 "1 / period" 0.02 rate)


let test_dispatcher_conservation () =
  (* Releases = completions + in-flight, and every subtask completion count
     matches the release count per task when the run drains. *)
  with_system (diamond_workload ~period:40. ()) (fun engine _ dispatcher ->
      let subtask_completions = Hashtbl.create 8 in
      Dispatcher.on_subtask_completion dispatcher (fun sid ~latency:_ ~now:_ ->
          let k = Ids.Subtask_id.to_int sid in
          Hashtbl.replace subtask_completions k
            (1 + Option.value (Hashtbl.find_opt subtask_completions k) ~default:0));
      Dispatcher.start dispatcher;
      Lla_sim.Engine.run_until engine 4000.;
      Alcotest.(check int) "conservation" (Dispatcher.releases dispatcher)
        (Dispatcher.completions dispatcher + Dispatcher.in_flight dispatcher);
      (* Give in-flight job sets time to drain (no new releases are needed:
         run_until keeps serving pending work). *)
      Lla_sim.Engine.run_until engine 4200.;
      List.iter
        (fun k ->
          Alcotest.(check int)
            (Printf.sprintf "subtask %d completions" k)
            (Dispatcher.completions dispatcher)
            (Option.value (Hashtbl.find_opt subtask_completions k) ~default:0))
        [ 0; 1; 2; 3 ])

(* ------------------------------------------------------------------ *)
(* Optimizer loop and system                                           *)
(* ------------------------------------------------------------------ *)

let test_system_enacts_solver_shares () =
  let workload = Lla_workloads.Prototype.workload () in
  let system = Lla_runtime.System.create workload in
  Lla_runtime.System.run system ~until:5_000.;
  let opt = Lla_runtime.System.optimizer system in
  let solver = Lla_runtime.Optimizer_loop.solver opt in
  List.iter
    (fun (s : Subtask.t) ->
      let enacted = Cluster.share (Lla_runtime.System.cluster system) s.id in
      check_close ~eps:1e-6 "cluster share = solver share" (Lla.Solver.share solver s.id) enacted)
    (Workload.subtasks workload)

let test_system_jobs_meet_deadlines () =
  let workload = Lla_workloads.Prototype.workload () in
  let system = Lla_runtime.System.create workload in
  Lla_runtime.System.run system ~until:30_000.;
  List.iter
    (fun (task : Task.t) ->
      let stats = Lla_runtime.System.task_latency_stats system task.Task.id in
      let misses = Lla_runtime.System.deadline_misses system task.Task.id in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d jobs, %d misses" task.Task.name stats.Lla_stdx.Stats.n misses)
        true
        (stats.Lla_stdx.Stats.n > 100 && misses * 100 < stats.Lla_stdx.Stats.n))
    workload.Workload.tasks

let test_system_error_correction_reaches_stability_floor () =
  (* The Fig. 8 integration check: after error correction the fast subtasks
     sit at the 0.2 rate-stability share and slow subtasks near 0.25. *)
  let workload = Lla_workloads.Prototype.workload () in
  let optimizer =
    {
      Lla_runtime.Optimizer_loop.default_config with
      error_correction = `Enabled_at 20_000.;
      iterations_per_round = 100;
    }
  in
  let config = { Lla_runtime.System.default_config with optimizer } in
  let system = Lla_runtime.System.create ~config workload in
  Lla_runtime.System.run system ~until:90_000.;
  let cluster = Lla_runtime.System.cluster system in
  let fast_share = Cluster.share cluster (Ids.Subtask_id.make 10) in
  let slow_share = Cluster.share cluster (Ids.Subtask_id.make 30) in
  check_close ~eps:0.01 "fast at the 0.2 stability floor" 0.2 fast_share;
  check_close ~eps:0.02 "slow at the 0.25 remainder" 0.25 slow_share;
  Alcotest.(check bool) "negative model error (over-prediction)" true
    (Lla_runtime.Optimizer_loop.offset (Lla_runtime.System.optimizer system)
       (Ids.Subtask_id.make 10)
    < 0.)

let test_system_measured_utility_sampled () =
  let workload = Lla_workloads.Prototype.workload () in
  let system = Lla_runtime.System.create workload in
  Lla_runtime.System.run system ~until:10_000.;
  let series = Lla_runtime.System.measured_utility_series system in
  Alcotest.(check bool) "samples recorded" true (Lla_stdx.Series.length series >= 8)


let test_optimizer_enact_threshold () =
  (* With a coarse threshold, converged rounds push no share updates. *)
  let run threshold =
    let workload = Lla_workloads.Prototype.workload () in
    let optimizer =
      { Lla_runtime.Optimizer_loop.default_config with enact_threshold = threshold }
    in
    let config = { Lla_runtime.System.default_config with optimizer } in
    let system = Lla_runtime.System.create ~config workload in
    Lla_runtime.System.run system ~until:20_000.;
    let opt = Lla_runtime.System.optimizer system in
    (Lla_runtime.Optimizer_loop.enactments opt, Lla_runtime.Optimizer_loop.skipped_enactments opt)
  in
  let eager, _ = run 0. in
  let lazy_enactments, lazy_skipped = run 0.05 in
  Alcotest.(check bool)
    (Printf.sprintf "threshold suppresses updates (%d -> %d, %d skipped)" eager lazy_enactments
       lazy_skipped)
    true
    (lazy_enactments < eager && lazy_skipped > 0)

let test_optimizer_per_task_percentiles () =
  (* Per-task percentile mode still drives Fig. 8-style correction. *)
  let workload = Lla_workloads.Prototype.workload () in
  let optimizer =
    {
      Lla_runtime.Optimizer_loop.default_config with
      error_correction = `Enabled_at 10_000.;
      correction_per_task_percentiles = true;
      iterations_per_round = 100;
    }
  in
  let config = { Lla_runtime.System.default_config with optimizer } in
  let system = Lla_runtime.System.create ~config workload in
  Lla_runtime.System.run system ~until:60_000.;
  let fast_share = Cluster.share (Lla_runtime.System.cluster system) (Ids.Subtask_id.make 10) in
  check_close ~eps:0.015 "fast still lands at 0.2" 0.2 fast_share


let test_system_survives_unschedulable_workload () =
  (* Failure injection: enact an infeasible allocation. The schedulers
     normalize oversubscribed shares, so the system keeps running; the
     overload surfaces as deadline misses, not as a crash. *)
  let workload = Lla_workloads.Paper_sim.unschedulable_six () in
  let system = Lla_runtime.System.create workload in
  Lla_runtime.System.run system ~until:10_000.;
  let misses, completions =
    List.fold_left
      (fun (m, c) (task : Task.t) ->
        ( m + Lla_runtime.System.deadline_misses system task.Task.id,
          c + (Lla_runtime.System.task_latency_stats system task.Task.id).Lla_stdx.Stats.n ))
      (0, 0) workload.Workload.tasks
  in
  Alcotest.(check bool) "jobs still complete" true (completions > 100);
  Alcotest.(check bool) "overload shows up as deadline misses" true (misses > 0)

(* ------------------------------------------------------------------ *)
(* Distributed LLA                                                     *)
(* ------------------------------------------------------------------ *)

let test_distributed_matches_synchronous () =
  let workload = Lla_workloads.Paper_sim.base () in
  let solver = Lla.Solver.create workload in
  ignore (Lla.Solver.run_until_converged solver ~max_iterations:3000);
  let engine = Lla_sim.Engine.create () in
  let distributed = Lla_runtime.Distributed.create engine workload in
  Lla_runtime.Distributed.run distributed ~duration:60_000.;
  let sync_u = Lla.Solver.utility solver in
  let dist_u = Lla_runtime.Distributed.utility distributed in
  Alcotest.(check bool)
    (Printf.sprintf "utility gap < 2%% (%.2f vs %.2f)" sync_u dist_u)
    true
    (Float.abs (dist_u -. sync_u) /. Float.abs sync_u < 0.02);
  List.iter
    (fun (sid, sync_lat) ->
      let dist_lat = Lla_runtime.Distributed.latency distributed sid in
      Alcotest.(check bool)
        (Printf.sprintf "latency of %s within 10%%" (Ids.Subtask_id.to_string sid))
        true
        (Float.abs (dist_lat -. sync_lat) /. sync_lat < 0.10))
    (Lla.Solver.latencies solver)

let test_distributed_respects_constraints () =
  let workload = Lla_workloads.Paper_sim.base () in
  let engine = Lla_sim.Engine.create () in
  let distributed = Lla_runtime.Distributed.create engine workload in
  Lla_runtime.Distributed.run distributed ~duration:60_000.;
  let latency sid = Lla_runtime.Distributed.latency distributed sid in
  let violations = Workload.constraint_violations workload ~latency ~tolerance:0.02 in
  Alcotest.(check (list string)) "no violations" [] violations

let test_distributed_exchanges_messages () =
  let workload = Lla_workloads.Paper_sim.base () in
  let engine = Lla_sim.Engine.create () in
  let distributed = Lla_runtime.Distributed.create engine workload in
  Lla_runtime.Distributed.run distributed ~duration:1_000.;
  Alcotest.(check bool) "messages flowed" true
    (Lla_runtime.Distributed.messages_sent distributed > 100);
  Alcotest.(check bool) "price rounds" true (Lla_runtime.Distributed.price_rounds distributed > 50);
  Alcotest.(check bool) "allocation rounds" true
    (Lla_runtime.Distributed.allocation_rounds distributed > 50)

let test_distributed_with_large_delay_still_converges () =
  let workload = Lla_workloads.Paper_sim.base () in
  let engine = Lla_sim.Engine.create () in
  let config = { Lla_runtime.Distributed.default_config with message_delay = 8.0 } in
  let distributed = Lla_runtime.Distributed.create ~config engine workload in
  Lla_runtime.Distributed.run distributed ~duration:120_000.;
  let latency sid = Lla_runtime.Distributed.latency distributed sid in
  let violations = Workload.constraint_violations workload ~latency ~tolerance:0.05 in
  Alcotest.(check (list string)) "stale prices tolerated" [] violations

(* stop must be safe to call at any time, any number of times — including
   before start and with the resilience layer's detector and watchdog
   scheduled — and must leave the engine drainable. *)
let test_distributed_stop_idempotent () =
  let workload = Lla_workloads.Paper_sim.base () in
  let engine = Lla_sim.Engine.create () in
  let distributed =
    Lla_runtime.Distributed.create
      ~resilience:Lla_runtime.Distributed.default_resilience engine workload
  in
  Lla_runtime.Distributed.stop distributed;
  (* no-op before start *)
  Lla_runtime.Distributed.run distributed ~duration:1_000.;
  let rounds = Lla_runtime.Distributed.price_rounds distributed in
  Lla_runtime.Distributed.stop distributed;
  Lla_runtime.Distributed.stop distributed;
  (* second stop: no-op *)
  Lla_sim.Engine.run engine ();
  (* engine drains: no periodic loop survived *)
  Alcotest.(check int) "no ticks after stop" rounds
    (Lla_runtime.Distributed.price_rounds distributed);
  Alcotest.(check int) "nothing pending" 0 (Lla_sim.Engine.pending engine)

let () =
  Alcotest.run "lla_runtime"
    [
      ( "cluster",
        [
          Alcotest.test_case "share enactment" `Quick test_cluster_share_enactment;
          Alcotest.test_case "job submission" `Quick test_cluster_submit_runs_job;
        ] );
      ( "dispatcher",
        [
          Alcotest.test_case "precedence order" `Quick test_dispatcher_precedence;
          Alcotest.test_case "task latency = last leaf" `Quick
            test_dispatcher_task_latency_is_leaf_max;
          Alcotest.test_case "overlapping job sets" `Quick test_dispatcher_overlapping_job_sets;
          Alcotest.test_case "work model variation" `Quick test_dispatcher_work_model;
          Alcotest.test_case "double start rejected" `Quick test_dispatcher_double_start_rejected;
          Alcotest.test_case "deterministic replay" `Quick test_dispatcher_deterministic;
          Alcotest.test_case "measured arrival rate" `Quick test_dispatcher_measured_rate;
          Alcotest.test_case "conservation law" `Quick test_dispatcher_conservation;
        ] );
      ( "system",
        [
          Alcotest.test_case "enacts solver shares" `Slow test_system_enacts_solver_shares;
          Alcotest.test_case "jobs meet deadlines" `Slow test_system_jobs_meet_deadlines;
          Alcotest.test_case "error correction reaches stability floor (Fig. 8)" `Slow
            test_system_error_correction_reaches_stability_floor;
          Alcotest.test_case "measured utility sampled" `Slow test_system_measured_utility_sampled;
          Alcotest.test_case "enactment threshold (4.4)" `Slow test_optimizer_enact_threshold;
          Alcotest.test_case "per-task correction percentiles (2.1)" `Slow
            test_optimizer_per_task_percentiles;
          Alcotest.test_case "survives an unschedulable workload" `Slow
            test_system_survives_unschedulable_workload;
        ] );
      ( "distributed",
        [
          Alcotest.test_case "matches synchronous optimum" `Slow
            test_distributed_matches_synchronous;
          Alcotest.test_case "respects constraints" `Slow test_distributed_respects_constraints;
          Alcotest.test_case "control traffic" `Quick test_distributed_exchanges_messages;
          Alcotest.test_case "stop is idempotent" `Quick test_distributed_stop_idempotent;
          Alcotest.test_case "tolerates large delays" `Slow
            test_distributed_with_large_delay_still_converges;
        ] );
    ]
