(* Property tests for the core LLA mathematics on randomly generated
   problems: price updates stay in the dual-feasible region (finite,
   non-negative) no matter what gradients they see, the share model is
   monotone in latency, and the allocation step respects every
   subtask's effective latency bounds. Each property draws a fresh
   workload per case from a seeded generator, so a failure reproduces
   from the printed seed. *)

module Rng = Lla_stdx.Rng
module Problem = Lla.Problem
module Price_update = Lla.Price_update
module Allocation = Lla.Allocation
module Step_size = Lla.Step_size

let problem_of_seed seed = Problem.compile (Lla_workloads.Random_gen.generate ~seed ())

(* ------------------------------------------------------------------ *)
(* Prices under random (and occasionally poisoned) gradients            *)
(* ------------------------------------------------------------------ *)

(* The dual iterates must stay in [0, inf) whatever the primal side
   feeds them: latencies far outside the meaningful range produce huge
   positive and negative gradients, and an occasional NaN/inf latency
   exercises the finite-value guards. *)
let prop_prices_stay_feasible =
  QCheck.Test.make ~name:"prices: never negative, always finite, under random gradients"
    ~count:60
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let problem = problem_of_seed seed in
      let rng = Rng.create ~seed:(seed + 1) in
      let n_sub = Problem.n_subtasks problem in
      let n_res = Problem.n_resources problem in
      let n_paths = Problem.n_paths problem in
      let mu = Array.init n_res (fun _ -> Rng.uniform rng ~lo:0. ~hi:10.) in
      let lambda = Array.init n_paths (fun _ -> Rng.uniform rng ~lo:0. ~hi:10.) in
      let offsets = Array.make n_sub 0. in
      let steps = Step_size.create problem (Step_size.fixed (Rng.uniform rng ~lo:0.1 ~hi:64.)) in
      let lat = Array.make n_sub 1. in
      for _ = 1 to 20 do
        for i = 0 to n_sub - 1 do
          lat.(i) <-
            (match Rng.int rng ~bound:20 with
            | 0 -> Float.nan
            | 1 -> Float.infinity
            | _ ->
              (* anywhere from far below the lower bound to far above the
                 stability bound: gradients of both signs and magnitudes *)
              Rng.uniform rng ~lo:1e-3 ~hi:1e4)
        done;
        ignore (Price_update.update problem ~lat ~offsets ~steps ~mu ~lambda)
      done;
      Array.for_all (fun m -> Float.is_finite m && m >= 0.) mu
      && Array.for_all (fun l -> Float.is_finite l && l >= 0.) lambda)

(* ------------------------------------------------------------------ *)
(* Share model monotonicity                                            *)
(* ------------------------------------------------------------------ *)

(* More latency never demands more of the resource: effective_share is
   non-increasing in lat for every subtask (the property Eq. 8's
   gradient sign depends on). *)
let prop_share_monotone =
  QCheck.Test.make ~name:"shares: effective_share is non-increasing in latency" ~count:60
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let problem = problem_of_seed seed in
      let rng = Rng.create ~seed:(seed + 2) in
      for i = 0 to Problem.n_subtasks problem - 1 do
        let st = problem.Problem.subtasks.(i) in
        for _ = 1 to 10 do
          let a = Rng.uniform rng ~lo:st.Problem.lat_lo ~hi:(2. *. st.Problem.lat_hi) in
          let b = Rng.uniform rng ~lo:st.Problem.lat_lo ~hi:(2. *. st.Problem.lat_hi) in
          let lo_lat = Float.min a b and hi_lat = Float.max a b in
          let s_lo = Problem.effective_share problem i ~lat:lo_lat ~offset:0. in
          let s_hi = Problem.effective_share problem i ~lat:hi_lat ~offset:0. in
          if s_hi > s_lo +. 1e-9 then
            QCheck.Test.fail_reportf "subtask %d: share(%g) = %g < share(%g) = %g" i lo_lat
              s_lo hi_lat s_hi
        done
      done;
      true)

(* ------------------------------------------------------------------ *)
(* Allocation bounds                                                   *)
(* ------------------------------------------------------------------ *)

(* Whatever prices the duals present, the allocation step may only pick
   latencies inside [lo, hi] = effective_bounds: below lo the share
   model is meaningless, above hi the latency is useless (rate
   stability / critical time). *)
let prop_allocation_within_bounds =
  QCheck.Test.make ~name:"allocation: latencies respect the effective bounds" ~count:60
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let problem = problem_of_seed seed in
      let rng = Rng.create ~seed:(seed + 3) in
      let n_sub = Problem.n_subtasks problem in
      let mu =
        Array.init (Problem.n_resources problem) (fun _ -> Rng.uniform rng ~lo:0. ~hi:20.)
      in
      let lambda =
        Array.init (Problem.n_paths problem) (fun _ -> Rng.uniform rng ~lo:0. ~hi:5.)
      in
      let offsets = Array.make n_sub 0. in
      let lat = Array.init n_sub (fun i -> problem.Problem.subtasks.(i).Problem.lat_hi) in
      Allocation.allocate problem ~mu ~lambda ~offsets ~sweeps:2 ~lat;
      for i = 0 to n_sub - 1 do
        let lo, hi = Allocation.effective_bounds problem i ~offset:0. in
        if not (Float.is_finite lat.(i) && lat.(i) >= lo -. 1e-9 && lat.(i) <= hi +. 1e-9)
        then QCheck.Test.fail_reportf "subtask %d: lat %g outside [%g, %g]" i lat.(i) lo hi
      done;
      true)

(* ------------------------------------------------------------------ *)
(* Trace codec round-trip                                              *)
(* ------------------------------------------------------------------ *)

module Trace = Lla_obs.Trace

(* Random events over EVERY constructor, with operands drawn to stress
   the codec: strings containing quotes, backslashes, newlines and raw
   control bytes; floats including bare nan, the infinities, subnormals
   and negative zero. Equality via [compare] because nan <> nan under
   [=]. *)
let gen_operand_float =
  QCheck.Gen.(
    frequency
      [
        (6, float);
        (1, return Float.nan);
        (1, return Float.infinity);
        (1, return Float.neg_infinity);
        (1, return 5e-324);
        (1, return (-0.));
        (1, return 1.7976931348623157e308);
      ])

let gen_operand_string =
  QCheck.Gen.(
    frequency
      [
        (4, string_small_of printable);
        (1, return "quote \" backslash \\ newline \n tab \t");
        (1, map (String.make 1) (char_range '\x00' '\x1f'));
        (1, return "");
      ])

let gen_event =
  let open QCheck.Gen in
  let f = gen_operand_float and s = gen_operand_string and i = int_range (-4) 1000 in
  let b = bool in
  oneof
    [
      (fun st -> Trace.Iteration { iteration = i st; utility = f st; movement = f st; guards = i st });
      (fun st -> Trace.Allocation_solved { task = i st; utility = f st });
      (fun st ->
        Trace.Price_updated
          {
            resource = i st;
            mu = f st;
            step = f st;
            share_sum = f st;
            capacity = f st;
            congested = b st;
          });
      (fun st ->
        Trace.Path_price_updated
          { path = i st; lambda = f st; step = f st; latency = f st; critical_time = f st });
      (fun st -> Trace.Guard_fired { site = s st });
      (fun st -> Trace.Correction_applied { subtask = s st; offset = f st });
      (fun st -> Trace.Watchdog_trip { reason = s st });
      (fun st -> Trace.Safe_mode_entered { reason = s st; fallback = s st });
      (fun _ -> Trace.Safe_mode_exited);
      (fun st -> Trace.Checkpoint_saved { actor = s st });
      (fun st -> Trace.Checkpoint_rejected { actor = s st });
      (fun st -> Trace.Checkpoint_restored { actor = s st; warm = b st });
      (fun st -> Trace.Transport_send { src = s st; dst = s st });
      (fun st -> Trace.Transport_dropped { src = s st; dst = s st; reason = s st });
      (fun st -> Trace.Transport_delivered { src = s st; dst = s st; delay = f st });
      (fun st -> Trace.Health_transition { endpoint = s st; alive = b st });
      (fun st -> Trace.Span { span = i st; parent = i st; trace = i st; kind = s st; actor = s st });
      (fun st -> Trace.Note { name = s st; value = f st });
      (fun st -> Trace.Alert_raised { alert = s st; severity = s st; value = f st });
      (fun st -> Trace.Alert_cleared { alert = s st; value = f st });
    ]

let gen_record =
  QCheck.Gen.(
    map3
      (fun seq at event -> { Trace.seq; at; event })
      (int_range 0 1_000_000) gen_operand_float gen_event)

let arb_record =
  QCheck.make gen_record ~print:(fun r -> Trace.record_to_string r)

let prop_trace_codec_roundtrip =
  QCheck.Test.make ~name:"trace codec: encode/decode is the identity on every constructor"
    ~count:500 arb_record (fun r ->
      match Trace.record_of_string (Trace.record_to_string r) with
      | Error e -> QCheck.Test.fail_reportf "does not decode: %s" e
      | Ok r' ->
        if compare r r' <> 0 then
          QCheck.Test.fail_reportf "decodes to a different record:\n  %s\n  %s"
            (Trace.record_to_string r) (Trace.record_to_string r')
        else true)

let () =
  (* Fixed seed: a failing draw reproduces exactly in CI and locally. *)
  let rand = Random.State.make [| 20260806 |] in
  Alcotest.run "lla_properties"
    [
      ( "core",
        List.map (QCheck_alcotest.to_alcotest ~rand)
          [ prop_prices_stay_feasible; prop_share_monotone; prop_allocation_within_bounds ] );
      ("codec", List.map (QCheck_alcotest.to_alcotest ~rand) [ prop_trace_codec_roundtrip ]);
    ]
