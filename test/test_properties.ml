(* Property tests for the core LLA mathematics on randomly generated
   problems: price updates stay in the dual-feasible region (finite,
   non-negative) no matter what gradients they see, the share model is
   monotone in latency, and the allocation step respects every
   subtask's effective latency bounds. Each property draws a fresh
   workload per case from a seeded generator, so a failure reproduces
   from the printed seed. *)

module Rng = Lla_stdx.Rng
module Problem = Lla.Problem
module Price_update = Lla.Price_update
module Allocation = Lla.Allocation
module Step_size = Lla.Step_size

let problem_of_seed seed = Problem.compile (Lla_workloads.Random_gen.generate ~seed ())

(* ------------------------------------------------------------------ *)
(* Prices under random (and occasionally poisoned) gradients            *)
(* ------------------------------------------------------------------ *)

(* The dual iterates must stay in [0, inf) whatever the primal side
   feeds them: latencies far outside the meaningful range produce huge
   positive and negative gradients, and an occasional NaN/inf latency
   exercises the finite-value guards. *)
let prop_prices_stay_feasible =
  QCheck.Test.make ~name:"prices: never negative, always finite, under random gradients"
    ~count:60
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let problem = problem_of_seed seed in
      let rng = Rng.create ~seed:(seed + 1) in
      let n_sub = Problem.n_subtasks problem in
      let n_res = Problem.n_resources problem in
      let n_paths = Problem.n_paths problem in
      let mu = Array.init n_res (fun _ -> Rng.uniform rng ~lo:0. ~hi:10.) in
      let lambda = Array.init n_paths (fun _ -> Rng.uniform rng ~lo:0. ~hi:10.) in
      let offsets = Array.make n_sub 0. in
      let steps = Step_size.create problem (Step_size.fixed (Rng.uniform rng ~lo:0.1 ~hi:64.)) in
      let lat = Array.make n_sub 1. in
      for _ = 1 to 20 do
        for i = 0 to n_sub - 1 do
          lat.(i) <-
            (match Rng.int rng ~bound:20 with
            | 0 -> Float.nan
            | 1 -> Float.infinity
            | _ ->
              (* anywhere from far below the lower bound to far above the
                 stability bound: gradients of both signs and magnitudes *)
              Rng.uniform rng ~lo:1e-3 ~hi:1e4)
        done;
        ignore (Price_update.update problem ~lat ~offsets ~steps ~mu ~lambda)
      done;
      Array.for_all (fun m -> Float.is_finite m && m >= 0.) mu
      && Array.for_all (fun l -> Float.is_finite l && l >= 0.) lambda)

(* ------------------------------------------------------------------ *)
(* Share model monotonicity                                            *)
(* ------------------------------------------------------------------ *)

(* More latency never demands more of the resource: effective_share is
   non-increasing in lat for every subtask (the property Eq. 8's
   gradient sign depends on). *)
let prop_share_monotone =
  QCheck.Test.make ~name:"shares: effective_share is non-increasing in latency" ~count:60
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let problem = problem_of_seed seed in
      let rng = Rng.create ~seed:(seed + 2) in
      for i = 0 to Problem.n_subtasks problem - 1 do
        let st = problem.Problem.subtasks.(i) in
        for _ = 1 to 10 do
          let a = Rng.uniform rng ~lo:st.Problem.lat_lo ~hi:(2. *. st.Problem.lat_hi) in
          let b = Rng.uniform rng ~lo:st.Problem.lat_lo ~hi:(2. *. st.Problem.lat_hi) in
          let lo_lat = Float.min a b and hi_lat = Float.max a b in
          let s_lo = Problem.effective_share problem i ~lat:lo_lat ~offset:0. in
          let s_hi = Problem.effective_share problem i ~lat:hi_lat ~offset:0. in
          if s_hi > s_lo +. 1e-9 then
            QCheck.Test.fail_reportf "subtask %d: share(%g) = %g < share(%g) = %g" i lo_lat
              s_lo hi_lat s_hi
        done
      done;
      true)

(* ------------------------------------------------------------------ *)
(* Allocation bounds                                                   *)
(* ------------------------------------------------------------------ *)

(* Whatever prices the duals present, the allocation step may only pick
   latencies inside [lo, hi] = effective_bounds: below lo the share
   model is meaningless, above hi the latency is useless (rate
   stability / critical time). *)
let prop_allocation_within_bounds =
  QCheck.Test.make ~name:"allocation: latencies respect the effective bounds" ~count:60
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let problem = problem_of_seed seed in
      let rng = Rng.create ~seed:(seed + 3) in
      let n_sub = Problem.n_subtasks problem in
      let mu =
        Array.init (Problem.n_resources problem) (fun _ -> Rng.uniform rng ~lo:0. ~hi:20.)
      in
      let lambda =
        Array.init (Problem.n_paths problem) (fun _ -> Rng.uniform rng ~lo:0. ~hi:5.)
      in
      let offsets = Array.make n_sub 0. in
      let lat = Array.init n_sub (fun i -> problem.Problem.subtasks.(i).Problem.lat_hi) in
      Allocation.allocate problem ~mu ~lambda ~offsets ~sweeps:2 ~lat;
      for i = 0 to n_sub - 1 do
        let lo, hi = Allocation.effective_bounds problem i ~offset:0. in
        if not (Float.is_finite lat.(i) && lat.(i) >= lo -. 1e-9 && lat.(i) <= hi +. 1e-9)
        then QCheck.Test.fail_reportf "subtask %d: lat %g outside [%g, %g]" i lat.(i) lo hi
      done;
      true)

let () =
  Alcotest.run "lla_properties"
    [
      ( "core",
        List.map QCheck_alcotest.to_alcotest
          [ prop_prices_stay_feasible; prop_share_monotone; prop_allocation_within_bounds ] );
    ]
