(* Tests for the resilience layer: checkpoint store, heartbeat failure
   detection, safe-mode degradation, and their integration in the
   distributed deployment (warm vs cold recovery, divergence containment). *)

module Transport = Lla_transport.Transport
module Distributed = Lla_runtime.Distributed
module Health = Lla_runtime.Health
module Checkpoint = Lla_runtime.Checkpoint
module Safe_mode = Lla_runtime.Safe_mode

(* ------------------------------------------------------------------ *)
(* Checkpoint store                                                    *)
(* ------------------------------------------------------------------ *)

let agent_state ?(price = 12.5) ?(gamma = 2.) ?(lat = [| 10.; 20. |]) () =
  { Checkpoint.price; gamma; lat_view = lat }

let test_checkpoint_roundtrip () =
  let cp = Checkpoint.create ~n_agents:2 ~n_controllers:1 () in
  Alcotest.(check bool) "accepted" true
    (Checkpoint.save_agent cp 0 ~now:100. (agent_state ()));
  (match Checkpoint.restore_agent cp 0 ~now:200. with
  | None -> Alcotest.fail "snapshot lost"
  | Some st ->
    Alcotest.(check (float 0.)) "price" 12.5 st.Checkpoint.price;
    Alcotest.(check (float 0.)) "gamma" 2. st.Checkpoint.gamma;
    (* Restored arrays are copies: mutating one must not corrupt the store. *)
    st.Checkpoint.lat_view.(0) <- nan);
  (match Checkpoint.restore_agent cp 0 ~now:200. with
  | None -> Alcotest.fail "snapshot lost after aliased mutation"
  | Some st -> Alcotest.(check (float 0.)) "isolated" 10. st.Checkpoint.lat_view.(0));
  Alcotest.(check (option (float 0.))) "save time" (Some 100.) (Checkpoint.last_agent_save cp 0);
  Alcotest.(check int) "saves" 1 (Checkpoint.saves cp);
  Alcotest.(check int) "restores" 2 (Checkpoint.restores cp)

let test_checkpoint_rejects_non_finite () =
  let cp = Checkpoint.create ~n_agents:1 ~n_controllers:1 () in
  Alcotest.(check bool) "good snapshot in" true
    (Checkpoint.save_agent cp 0 ~now:50. (agent_state ~price:3. ()));
  Alcotest.(check bool) "nan price refused" false
    (Checkpoint.save_agent cp 0 ~now:60. (agent_state ~price:nan ()));
  Alcotest.(check bool) "inf latency refused" false
    (Checkpoint.save_agent cp 0 ~now:70. (agent_state ~lat:[| 1.; infinity |] ()));
  Alcotest.(check int) "rejections counted" 2 (Checkpoint.rejected_saves cp);
  (* The poisoned snapshots must not have clobbered the good one. *)
  (match Checkpoint.restore_agent cp 0 ~now:80. with
  | Some st -> Alcotest.(check (float 0.)) "previous snapshot kept" 3. st.Checkpoint.price
  | None -> Alcotest.fail "good snapshot lost");
  let ctl =
    {
      Checkpoint.mu_view = [| 1.; nan |];
      congested_view = [| false; false |];
      lambda = [| 0. |];
      gamma_p = [| 1. |];
    }
  in
  Alcotest.(check bool) "controller nan refused" false
    (Checkpoint.save_controller cp 0 ~now:90. ctl)

let test_checkpoint_staleness () =
  let cp = Checkpoint.create ~max_age:500. ~n_agents:1 ~n_controllers:0 () in
  ignore (Checkpoint.save_agent cp 0 ~now:1_000. (agent_state ()));
  Alcotest.(check bool) "fresh restores" true
    (Checkpoint.restore_agent cp 0 ~now:1_400. <> None);
  Alcotest.(check bool) "stale discarded" true
    (Checkpoint.restore_agent cp 0 ~now:1_600. = None);
  Alcotest.(check int) "staleness counted" 1 (Checkpoint.stale_restores cp)

let controller_state () =
  {
    Checkpoint.mu_view = [| 0.5; 1.5 |];
    congested_view = [| true; false |];
    lambda = [| 0.25; 0.; 2. |];
    gamma_p = [| 1.; 4. |];
  }

let test_checkpoint_jsonl_roundtrip () =
  let cp = Checkpoint.create ~n_agents:2 ~n_controllers:1 () in
  ignore (Checkpoint.save_agent cp 0 ~now:100. (agent_state ()));
  ignore (Checkpoint.save_agent cp 1 ~now:150. (agent_state ~price:0.25 ~gamma:8. ()));
  ignore (Checkpoint.save_controller cp 0 ~now:175. (controller_state ()));
  let lines = Checkpoint.to_jsonl cp in
  Alcotest.(check int) "one line per saved slot" 3 (List.length lines);
  let fresh = Checkpoint.create ~n_agents:2 ~n_controllers:1 () in
  (match Checkpoint.load_jsonl fresh lines with
  | Error e -> Alcotest.fail ("load failed: " ^ e)
  | Ok n -> Alcotest.(check int) "all snapshots accepted" 3 n);
  (match Checkpoint.restore_agent fresh 1 ~now:200. with
  | None -> Alcotest.fail "agent snapshot lost in serialization"
  | Some st ->
    Alcotest.(check (float 0.)) "price survives" 0.25 st.Checkpoint.price;
    Alcotest.(check (float 0.)) "gamma survives" 8. st.Checkpoint.gamma;
    Alcotest.(check (array (float 0.))) "lat view survives" [| 10.; 20. |]
      st.Checkpoint.lat_view);
  (match Checkpoint.restore_controller fresh 0 ~now:200. with
  | None -> Alcotest.fail "controller snapshot lost in serialization"
  | Some st ->
    let orig = controller_state () in
    Alcotest.(check (array (float 0.))) "mu view" orig.Checkpoint.mu_view st.Checkpoint.mu_view;
    Alcotest.(check (array bool)) "congestion view" orig.Checkpoint.congested_view
      st.Checkpoint.congested_view;
    Alcotest.(check (array (float 0.))) "lambda" orig.Checkpoint.lambda st.Checkpoint.lambda;
    Alcotest.(check (array (float 0.))) "gamma_p" orig.Checkpoint.gamma_p st.Checkpoint.gamma_p);
  (* save times ride along, so staleness keeps working after a reload *)
  Alcotest.(check (option (float 0.))) "agent save time preserved" (Some 150.)
    (Checkpoint.last_agent_save fresh 1);
  Alcotest.(check (option (float 0.))) "controller save time preserved" (Some 175.)
    (Checkpoint.last_controller_save fresh 0)

(* A line carrying a non-finite value must go through the same refusal
   path as a live save: not an error, just a rejected snapshot. *)
let test_checkpoint_jsonl_refuses_non_finite () =
  let cp = Checkpoint.create ~n_agents:1 ~n_controllers:0 () in
  ignore (Checkpoint.save_agent cp 0 ~now:100. (agent_state ~price:infinity ()));
  (* the live save was refused, so nothing serializes *)
  Alcotest.(check int) "poisoned state never serializes" 0 (List.length (Checkpoint.to_jsonl cp));
  let poisoned =
    "{\"kind\":\"agent\",\"index\":0,\"at\":50,\"price\":nan,\"gamma\":2,\"lat_view\":[10]}"
  in
  let fresh = Checkpoint.create ~n_agents:1 ~n_controllers:0 () in
  (match Checkpoint.load_jsonl fresh [ poisoned ] with
  | Error e -> Alcotest.fail ("refusal must not be an error: " ^ e)
  | Ok n -> Alcotest.(check int) "nothing accepted" 0 n);
  Alcotest.(check int) "refusal counted" 1 (Checkpoint.rejected_saves fresh);
  Alcotest.(check bool) "nothing restorable" true
    (Checkpoint.restore_agent fresh 0 ~now:60. = None)

let test_checkpoint_jsonl_rejects_malformed () =
  let cp = Checkpoint.create ~n_agents:1 ~n_controllers:0 () in
  let cases =
    [
      "not json at all";
      "{\"kind\":\"mystery\",\"index\":0}";
      "{\"kind\":\"agent\",\"index\":7,\"at\":0,\"price\":1,\"gamma\":1,\"lat_view\":[]}";
      "{\"kind\":\"agent\",\"index\":0,\"at\":0,\"price\":\"one\",\"gamma\":1,\"lat_view\":[]}";
    ]
  in
  List.iter
    (fun line ->
      match Checkpoint.load_jsonl cp [ line ] with
      | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "error names the line (%s)" e)
          true
          (String.length e >= 6 && String.sub e 0 6 = "line 1")
      | Ok _ -> Alcotest.fail (Printf.sprintf "malformed line accepted: %s" line))
    cases

(* ------------------------------------------------------------------ *)
(* Heartbeat failure detection                                         *)
(* ------------------------------------------------------------------ *)

(* Acceptance (c): the detector flags a crashed endpoint within the
   configured timeout (+ one heartbeat and one sweep of slack) and never
   flags a healthy endpoint under a zero-fault transport. *)
let test_health_detects_crash () =
  let engine = Lla_sim.Engine.create () in
  let transport = Transport.create engine in
  let victim = Transport.endpoint transport ~name:"victim" in
  let healthy = Transport.endpoint transport ~name:"healthy" in
  let h = Health.create transport in
  Health.watch h victim;
  Health.watch h healthy;
  let transitions = ref [] in
  Health.on_transition h (fun e status ~now ->
      transitions := (Transport.endpoint_name e, status, now) :: !transitions);
  Health.start h;
  let crash_at = 1_000. and outage = 2_000. in
  Transport.schedule_outage transport victim ~at:crash_at ~duration:outage;
  (* Give every watch its own beat-keeping chance, then stop and drain. *)
  Lla_sim.Engine.run_until engine 6_000.;
  Health.stop h;
  Lla_sim.Engine.run engine ();
  let cfg = Health.config h in
  let bound = cfg.Health.timeout +. cfg.Health.heartbeat_period +. cfg.Health.check_period +. 10. in
  (match
     List.rev !transitions
     |> List.find_opt (fun (n, s, _) -> n = "victim" && s = Health.Suspect)
   with
  | None -> Alcotest.fail "crashed endpoint never suspected"
  | Some (_, _, at) ->
    Alcotest.(check bool)
      (Printf.sprintf "suspected within %.0f ms (took %.0f)" bound (at -. crash_at))
      true
      (at -. crash_at <= bound));
  (match
     List.rev !transitions
     |> List.find_opt (fun (n, s, _) -> n = "victim" && s = Health.Alive)
   with
  | None -> Alcotest.fail "suspicion never cleared after restart"
  | Some (_, _, at) ->
    Alcotest.(check bool) "cleared after the restart" true (at >= crash_at +. outage));
  Alcotest.(check bool) "healthy endpoint never suspected" true
    (not (List.exists (fun (n, s, _) -> n = "healthy" && s = Health.Suspect) !transitions));
  Alcotest.(check int) "exactly one suspicion" 1 (Health.suspicions h);
  Alcotest.(check int) "exactly one recovery" 1 (Health.recoveries h);
  Alcotest.(check bool) "heartbeats flowed" true (Health.heartbeats_received h > 50)

let test_health_quiet_without_faults () =
  let engine = Lla_sim.Engine.create () in
  let transport = Transport.create engine in
  let h = Health.create transport in
  for i = 0 to 4 do
    Health.watch h (Transport.endpoint transport ~name:(Printf.sprintf "e%d" i))
  done;
  Health.start h;
  Lla_sim.Engine.run_until engine 30_000.;
  Alcotest.(check int) "no false suspicions" 0 (Health.suspicions h);
  Alcotest.(check (list string)) "no suspects" []
    (List.map Transport.endpoint_name (Health.suspects h));
  Health.stop h;
  Health.stop h;
  (* idempotent *)
  Lla_sim.Engine.run engine ()

(* ------------------------------------------------------------------ *)
(* Safe-mode state machine                                             *)
(* ------------------------------------------------------------------ *)

let quick_safe_config =
  {
    Safe_mode.default_config with
    Safe_mode.violation_rounds = 3;
    warmup_rounds = 10;
    oscillation_window = 8;
    min_reversals = 4;
    settle_rounds = 3;
    min_safe_time = 100.;
  }

let base_problem () = Lla.Problem.compile (Lla_workloads.Paper_sim.base ())

let test_safe_mode_trips_on_non_finite () =
  let problem = base_problem () in
  let sm = Safe_mode.create ~config:quick_safe_config problem in
  let n_r = Lla.Problem.n_resources problem in
  let lat = Safe_mode.fallback sm in
  let offsets = Array.make (Lla.Problem.n_subtasks problem) 0. in
  let mu = Array.make n_r 1. in
  Alcotest.(check bool) "healthy observation passes" true
    (Safe_mode.observe sm ~now:0. ~mu ~lat ~offsets = None);
  mu.(0) <- nan;
  (match Safe_mode.observe sm ~now:10. ~mu ~lat ~offsets with
  | Some (Safe_mode.Entered { reason }) ->
    Alcotest.(check string) "reason" "price divergence" reason
  | _ -> Alcotest.fail "non-finite price did not trip safe mode");
  Alcotest.(check bool) "in safe mode" true (Safe_mode.in_safe_mode sm);
  (* Exit hysteresis: settled finite prices, but only once the dwell time
     has passed AND the settle streak is long enough. *)
  mu.(0) <- 1.;
  let exited = ref None in
  for i = 1 to 10 do
    match Safe_mode.observe sm ~now:(10. +. (20. *. float_of_int i)) ~mu ~lat ~offsets with
    | Some Safe_mode.Exited when !exited = None -> exited := Some i
    | _ -> ()
  done;
  (match !exited with
  | None -> Alcotest.fail "settled prices never exited safe mode"
  | Some i ->
    (* needs >= settle_rounds observations and >= min_safe_time dwell *)
    Alcotest.(check bool) "hysteresis respected" true (i >= 3));
  Alcotest.(check int) "one entry" 1 (Safe_mode.entries sm);
  Alcotest.(check int) "one exit" 1 (Safe_mode.exits sm)

let test_safe_mode_oscillation_after_warmup_only () =
  let problem = base_problem () in
  let sm = Safe_mode.create ~config:quick_safe_config problem in
  let offsets = Array.make (Lla.Problem.n_subtasks problem) 0. in
  let mu = Array.make (Lla.Problem.n_resources problem) 1. in
  let calm = Safe_mode.fallback sm in
  (* A second feasible assignment far enough from the fallback that
     alternating the two swings the utility by well over the threshold. *)
  let swing = Array.map (fun l -> l *. 0.3) calm in
  let tripped_at = ref None in
  (for i = 1 to 60 do
     if !tripped_at = None then begin
       let lat = if i mod 2 = 0 then calm else swing in
       match Safe_mode.observe sm ~now:(float_of_int i) ~mu ~lat ~offsets with
       | Some (Safe_mode.Entered { reason }) ->
         Alcotest.(check string) "reason" "utility oscillation" reason;
         tripped_at := Some i
       | Some Safe_mode.Exited -> Alcotest.fail "unexpected exit"
       | None -> ()
     end
   done);
  match !tripped_at with
  | None -> Alcotest.fail "oscillation never detected"
  | Some i ->
    Alcotest.(check bool)
      (Printf.sprintf "silent during warmup (tripped at %d)" i)
      true
      (i > quick_safe_config.Safe_mode.warmup_rounds)

let test_safe_mode_fallback_feasible () =
  let problem =
    Lla.Problem.compile
      (Lla_workloads.Paper_sim.scaled ~copies:1 ~critical_time_factor:1.5 ())
  in
  let sm = Safe_mode.create problem in
  Alcotest.(check bool) "guaranteed" true (Safe_mode.fallback_guaranteed sm);
  let lat = Safe_mode.fallback sm in
  let offsets = Array.make (Lla.Problem.n_subtasks problem) 0. in
  for r = 0 to Lla.Problem.n_resources problem - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "resource %d within capacity" r)
      true
      (Lla.Problem.share_sum problem r ~lat ~offsets
      <= problem.Lla.Problem.capacities.(r) +. 1e-9)
  done;
  for p = 0 to Lla.Problem.n_paths problem - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "path %d within critical time" p)
      true
      (Lla.Problem.path_latency problem p ~lat
      <= problem.Lla.Problem.paths.(p).Lla.Problem.critical_time +. 1e-9)
  done

(* ------------------------------------------------------------------ *)
(* Integration: warm vs cold recovery                                  *)
(* ------------------------------------------------------------------ *)

let crash_all ~checkpoint () =
  let workload = Lla_workloads.Paper_sim.base () in
  let engine = Lla_sim.Engine.create () in
  let transport = Transport.create engine in
  let resilience =
    {
      Distributed.default_resilience with
      Distributed.health = None;
      safe_mode = None;
      checkpoint_period = (if checkpoint then Some 100. else None);
    }
  in
  let d = Distributed.create ~resilience ~transport engine workload in
  Distributed.run d ~duration:20_000.;
  let reference = Distributed.utility d in
  let endpoints =
    List.map
      (fun (r : Lla_model.Resource.t) -> Distributed.agent_endpoint d r.id)
      workload.Lla_model.Workload.resources
    @ List.map
        (fun (task : Lla_model.Task.t) -> Distributed.controller_endpoint d task.id)
        workload.Lla_model.Workload.tasks
  in
  let now = Lla_sim.Engine.now engine in
  List.iter
    (fun e -> Transport.schedule_outage transport e ~at:(now +. 1.) ~duration:500.)
    endpoints;
  Distributed.run d ~duration:501.;
  let rounds_at_heal = Distributed.price_rounds d in
  let last_bad_rounds = ref 0 in
  let elapsed = ref 0. in
  while !elapsed < 20_000. -. 1e-9 do
    Distributed.run d ~duration:10.;
    elapsed := !elapsed +. 10.;
    let gap = Float.abs (Distributed.utility d -. reference) /. Float.abs reference in
    if gap >= 0.01 then last_bad_rounds := Distributed.price_rounds d - rounds_at_heal
  done;
  let final_gap = Float.abs (Distributed.utility d -. reference) /. Float.abs reference in
  (final_gap, !last_bad_rounds, Distributed.warm_restores d, Distributed.cold_restarts d)

(* Acceptance (a): on the same seeded crash schedule, a checkpoint restart
   reconverges in strictly fewer price rounds than a cold restart. *)
let test_warm_beats_cold_recovery () =
  let cold_gap, cold_rounds, cold_warms, cold_colds = crash_all ~checkpoint:false () in
  let warm_gap, warm_rounds, warm_warms, warm_colds = crash_all ~checkpoint:true () in
  Alcotest.(check bool) "cold run recovered" true (cold_gap < 0.01);
  Alcotest.(check bool) "warm run recovered" true (warm_gap < 0.01);
  Alcotest.(check bool) "cold restart actually pays a transient" true (cold_rounds > 0);
  Alcotest.(check bool)
    (Printf.sprintf "warm reconverges in strictly fewer price rounds (%d < %d)" warm_rounds
       cold_rounds)
    true (warm_rounds < cold_rounds);
  Alcotest.(check int) "no warm restores without checkpoints" 0 cold_warms;
  Alcotest.(check bool) "all restarts cold without checkpoints" true (cold_colds >= 11);
  Alcotest.(check bool) "all restarts warm with checkpoints" true (warm_warms >= 11);
  Alcotest.(check int) "no cold restarts with checkpoints" 0 warm_colds

(* ------------------------------------------------------------------ *)
(* Integration: whole-node crash drill                                 *)
(* ------------------------------------------------------------------ *)

(* Whole-node crash with a journal: every actor restores warm from the
   replayed records, the double replay is idempotent, nobody resurrects
   non-finite state, and the deployment reconverges. Without a journal
   the same drill restarts everyone cold. *)
let test_whole_node_crash_restart () =
  let module Journal = Lla_durable.Journal in
  let run ~journal () =
    let workload = Lla_workloads.Paper_sim.base () in
    let engine = Lla_sim.Engine.create () in
    let transport = Transport.create engine in
    let resilience =
      {
        Distributed.default_resilience with
        Distributed.health = None;
        safe_mode = None;
        checkpoint_period = Some 100.;
      }
    in
    let j = if journal then Some (Journal.create (Journal.Store.faulty ())) else None in
    let d = Distributed.create ?journal:j ~resilience ~transport engine workload in
    Distributed.run d ~duration:20_000.;
    let reference = Distributed.utility d in
    Distributed.crash_restart d;
    Distributed.run d ~duration:20_000.;
    let gap = Float.abs (Distributed.utility d -. reference) /. Float.abs reference in
    (Distributed.crash_stats d, Distributed.journal_enabled d, gap)
  in
  let s, enabled, gap = run ~journal:true () in
  Alcotest.(check bool) "journal enabled" true enabled;
  Alcotest.(check int) "one crash" 1 s.Distributed.crashes;
  Alcotest.(check bool) "records replayed" true (s.Distributed.replayed > 0);
  Alcotest.(check bool) "every actor warm" true (s.Distributed.warm > 0 && s.Distributed.cold = 0);
  Alcotest.(check int) "nobody resurrected non-finite state" 0 s.Distributed.resurrected;
  Alcotest.(check bool) "double replay idempotent" true s.Distributed.idempotent;
  Alcotest.(check bool) "reconverged after the crash" true (gap < 0.01);
  let s, enabled, gap = run ~journal:false () in
  Alcotest.(check bool) "no journal" false enabled;
  Alcotest.(check int) "nothing replayed" 0 s.Distributed.replayed;
  Alcotest.(check bool) "every actor cold" true (s.Distributed.cold > 0 && s.Distributed.warm = 0);
  Alcotest.(check bool) "cold restart still reconverges" true (gap < 0.01)

(* ------------------------------------------------------------------ *)
(* Integration: safe-mode containment of a forced divergence           *)
(* ------------------------------------------------------------------ *)

(* Acceptance (b): during an induced price divergence (fixed gamma = 64)
   safe mode keeps every enacted resource share sum within B_r and every
   path within its critical time, and the system re-enters optimization
   once prices settle. *)
let test_safe_mode_contains_divergence () =
  let workload = Lla_workloads.Paper_sim.scaled ~copies:1 ~critical_time_factor:1.5 () in
  let problem = Lla.Problem.compile workload in
  let engine = Lla_sim.Engine.create () in
  let transport = Transport.create engine in
  let config =
    { Distributed.default_config with Distributed.step_policy = Lla.Step_size.fixed 64. }
  in
  let resilience =
    {
      Distributed.default_resilience with
      Distributed.health = None;
      checkpoint_period = None;
    }
  in
  let d = Distributed.create ~config ~resilience ~transport engine workload in
  let n_sub = Lla.Problem.n_subtasks problem in
  let lat = Array.make n_sub 0. in
  let offsets = Array.make n_sub 0. in
  let safe_samples = ref 0 in
  let elapsed = ref 0. in
  while !elapsed < 20_000. -. 1e-9 do
    Distributed.run d ~duration:50.;
    elapsed := !elapsed +. 50.;
    if Distributed.in_safe_mode d then begin
      incr safe_samples;
      for i = 0 to n_sub - 1 do
        lat.(i) <- Distributed.latency d problem.Lla.Problem.subtasks.(i).Lla.Problem.sid
      done;
      for r = 0 to Lla.Problem.n_resources problem - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "share sum on r%d within B_r at %.0f ms" r !elapsed)
          true
          (Lla.Problem.share_sum problem r ~lat ~offsets
          <= problem.Lla.Problem.capacities.(r) +. 1e-9)
      done;
      for p = 0 to Lla.Problem.n_paths problem - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "path %d within critical time at %.0f ms" p !elapsed)
          true
          (Lla.Problem.path_latency problem p ~lat
          <= problem.Lla.Problem.paths.(p).Lla.Problem.critical_time +. 1e-9)
      done
    end
  done;
  Alcotest.(check bool) "divergence was detected" true (Distributed.safe_entries d >= 1);
  Alcotest.(check bool) "safe mode actually held" true (!safe_samples > 10);
  Alcotest.(check bool) "re-entered optimization after prices settled" true
    (Distributed.safe_exits d >= 1)

(* A healthy adaptive run must never trip the watchdog: the resilience
   layer defaults to observing, not interfering. *)
let test_safe_mode_quiet_on_healthy_run () =
  let workload = Lla_workloads.Paper_sim.base () in
  let engine = Lla_sim.Engine.create () in
  let transport = Transport.create engine in
  let resilience =
    {
      Distributed.default_resilience with
      Distributed.health = None;
      checkpoint_period = None;
    }
  in
  let d = Distributed.create ~resilience ~transport engine workload in
  Distributed.run d ~duration:60_000.;
  Alcotest.(check int) "no safe-mode entries" 0 (Distributed.safe_entries d);
  Alcotest.(check bool) "still optimizing" false (Distributed.in_safe_mode d);
  (* And the trajectory still reaches the synchronous optimum. *)
  let solver = Lla.Solver.create workload in
  ignore (Lla.Solver.run_until_converged solver ~max_iterations:3000);
  let gap =
    Float.abs (Distributed.utility d -. Lla.Solver.utility solver)
    /. Float.abs (Lla.Solver.utility solver)
  in
  Alcotest.(check bool) "utility gap < 2%" true (gap < 0.02)

(* ------------------------------------------------------------------ *)
(* Integration: admission churn concurrent with transport faults       *)
(* ------------------------------------------------------------------ *)

let churn_task ~id ~exec ~period ~critical_time =
  let open Lla_model in
  let tid = Ids.Task_id.make id in
  let subtasks =
    List.init 2 (fun j ->
        Subtask.make ~id:((id * 10) + j) ~task:tid ~resource:j ~exec_time:exec ())
  in
  Task.make_exn ~id ~subtasks
    ~graph:(Graph.chain (List.map (fun (s : Subtask.t) -> s.id) subtasks))
    ~critical_time
    ~utility:(Utility.linear ~k:2. ~critical_time)
    ~trigger:(Trigger.periodic ~period ())
    ()

let split_endpoints d (workload : Lla_model.Workload.t) =
  ( List.map
      (fun (r : Lla_model.Resource.t) -> Distributed.agent_endpoint d r.id)
      workload.Lla_model.Workload.resources,
    List.map
      (fun (task : Lla_model.Task.t) -> Distributed.controller_endpoint d task.id)
      workload.Lla_model.Workload.tasks )

(* Tasks admitted/removed while the network is partitioned must leave the
   post-churn deployment Eq.3-feasible once the partition heals. The
   admission controller decides on its offline probe; the distributed
   runtime then has to carry that decision through a still-partitioned
   fabric without ending up oversubscribed. *)
let test_admission_churn_mid_partition () =
  let resources =
    [ Lla_model.Resource.make ~availability:0.35 0; Lla_model.Resource.make ~availability:0.35 1 ]
  in
  let controller = Lla.Admission.create ~probe_iterations:1500 ~resources () in
  List.iter
    (fun id ->
      match
        Lla.Admission.try_admit controller
          (churn_task ~id ~exec:5. ~period:200. ~critical_time:100.)
      with
      | Lla.Admission.Admitted _ -> ()
      | Lla.Admission.Rejected { reason } ->
        Alcotest.fail (Printf.sprintf "task %d should fit: %s" id reason))
    [ 1; 2; 3 ];
  let w1 = Option.get (Lla.Admission.workload controller) in
  let engine = Lla_sim.Engine.create () in
  let transport = Transport.create engine in
  let resilience =
    { Distributed.default_resilience with Distributed.health = None; checkpoint_period = None }
  in
  let d1 = Distributed.create ~resilience ~transport engine w1 in
  Distributed.run d1 ~duration:12_000.;
  (* Cut agents from controllers for 4 s, then churn 2 s into the cut. *)
  let agents1, controllers1 = split_endpoints d1 w1 in
  Transport.partition transport
    ~at:(Lla_sim.Engine.now engine +. 1.)
    ~duration:4_000. ~group_a:agents1 ~group_b:controllers1;
  Distributed.run d1 ~duration:2_000.;
  Alcotest.(check bool) "retire mid-partition" true
    (Lla.Admission.retire controller (Lla_model.Ids.Task_id.make 2));
  (match
     Lla.Admission.try_admit controller
       (churn_task ~id:4 ~exec:6.5 ~period:200. ~critical_time:100.)
   with
  | Lla.Admission.Admitted _ -> ()
  | Lla.Admission.Rejected { reason } ->
    Alcotest.fail ("heavier replacement should fit the freed headroom: " ^ reason));
  let w2 = Option.get (Lla.Admission.workload controller) in
  (* Redeploy over the post-churn set on the same (still partitioned)
     fabric; the fresh endpoints inherit their own cut for the remaining
     2 s of the window. *)
  Distributed.stop d1;
  let d2 = Distributed.create ~resilience ~transport engine w2 in
  let agents2, controllers2 = split_endpoints d2 w2 in
  Transport.partition transport
    ~at:(Lla_sim.Engine.now engine +. 1.)
    ~duration:2_000. ~group_a:agents2 ~group_b:controllers2;
  Distributed.run d2 ~duration:2_100.;
  (* Partition healed; give the gradient time to settle, then hold the
     enacted assignment to Eq.3 within a 10% operational tolerance. *)
  Distributed.run d2 ~duration:15_000.;
  let problem = Lla.Problem.compile w2 in
  let n_sub = Lla.Problem.n_subtasks problem in
  let lat = Array.make n_sub 0. in
  for i = 0 to n_sub - 1 do
    lat.(i) <- Distributed.latency d2 problem.Lla.Problem.subtasks.(i).Lla.Problem.sid
  done;
  let offsets = Array.make n_sub 0. in
  for r = 0 to Lla.Problem.n_resources problem - 1 do
    let used = Lla.Problem.share_sum problem r ~lat ~offsets in
    let cap = problem.Lla.Problem.capacities.(r) in
    Alcotest.(check bool)
      (Printf.sprintf "Eq.3 on r%d after heal (used %.4f vs cap %.4f)" r used cap)
      true
      (used <= cap *. 1.10)
  done;
  Alcotest.(check bool) "post-churn utility finite" true
    (Float.is_finite (Distributed.utility d2));
  Alcotest.(check int) "accepted set restored to three" 3
    (List.length (Lla.Admission.admitted controller))

(* ------------------------------------------------------------------ *)
(* Regression: stop with messages in flight mid-partition              *)
(* ------------------------------------------------------------------ *)

(* [stop] cancels the tick loops but deliberately leaves in-flight
   transport events — delayed deliveries and scheduled retries — to drain
   on their own. With a retry policy and an open partition, that drain
   must still terminate (retries are attempt-bounded even when every
   attempt is cut) and must not tick any actor after the stop. *)
let test_stop_mid_partition_drains () =
  let workload = Lla_workloads.Paper_sim.base () in
  let engine = Lla_sim.Engine.create () in
  let config =
    {
      Transport.default_config with
      Transport.policy =
        {
          Transport.retry = Some { Transport.timeout = 40.; backoff = 2.; max_attempts = 6; jitter = 0. };
          last_write_wins = true;
        };
    }
  in
  let transport = Transport.create ~config engine in
  let resilience =
    { Distributed.default_resilience with Distributed.health = None; checkpoint_period = None }
  in
  let d = Distributed.create ~resilience ~transport engine workload in
  Distributed.run d ~duration:5_000.;
  let agents, controllers = split_endpoints d workload in
  Transport.partition transport
    ~at:(Lla_sim.Engine.now engine +. 1.)
    ~duration:60_000. ~group_a:agents ~group_b:controllers;
  (* Leave the run mid-partition, with retries queued on both sides of
     the cut. *)
  Distributed.run d ~duration:500.;
  Distributed.stop d;
  let rounds = Distributed.price_rounds d in
  let sent = Distributed.messages_sent d in
  let stopped_at = Lla_sim.Engine.now engine in
  (* Would never return if a tick loop survived [stop]. *)
  Lla_sim.Engine.run engine ();
  Alcotest.(check int) "event queue fully drained" 0 (Lla_sim.Engine.pending engine);
  Alcotest.(check int) "no price rounds after stop" rounds (Distributed.price_rounds d);
  Alcotest.(check int) "no sends after stop" sent (Distributed.messages_sent d);
  (* Bounded backoff: 40 * (1+2+4+8+16) < 2 s of retry tail, nowhere near
     the 60 s heal — the drain must not wait out the partition. *)
  Alcotest.(check bool)
    (Printf.sprintf "drain ends on the retry tail, not the heal (%.0f ms)"
       (Lla_sim.Engine.now engine -. stopped_at))
    true
    (Lla_sim.Engine.now engine < stopped_at +. 5_000.)

let () =
  Alcotest.run "lla_resilience"
    [
      ( "checkpoint",
        [
          Alcotest.test_case "save/restore roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "non-finite snapshots refused" `Quick
            test_checkpoint_rejects_non_finite;
          Alcotest.test_case "stale snapshots discarded" `Quick test_checkpoint_staleness;
          Alcotest.test_case "JSONL codec roundtrip" `Quick test_checkpoint_jsonl_roundtrip;
          Alcotest.test_case "JSONL refuses non-finite snapshots" `Quick
            test_checkpoint_jsonl_refuses_non_finite;
          Alcotest.test_case "JSONL rejects malformed lines" `Quick
            test_checkpoint_jsonl_rejects_malformed;
        ] );
      ( "health",
        [
          Alcotest.test_case "detects crash within timeout" `Quick test_health_detects_crash;
          Alcotest.test_case "quiet under zero faults" `Quick test_health_quiet_without_faults;
        ] );
      ( "safe-mode",
        [
          Alcotest.test_case "trips on non-finite price, exits with hysteresis" `Quick
            test_safe_mode_trips_on_non_finite;
          Alcotest.test_case "oscillation detector respects warmup" `Quick
            test_safe_mode_oscillation_after_warmup_only;
          Alcotest.test_case "fallback is feasible" `Quick test_safe_mode_fallback_feasible;
        ] );
      ( "integration",
        [
          Alcotest.test_case "warm restart beats cold restart" `Slow test_warm_beats_cold_recovery;
          Alcotest.test_case "whole-node crash drill" `Slow test_whole_node_crash_restart;
          Alcotest.test_case "safe mode contains forced divergence" `Slow
            test_safe_mode_contains_divergence;
          Alcotest.test_case "watchdog quiet on a healthy run" `Slow
            test_safe_mode_quiet_on_healthy_run;
          Alcotest.test_case "admission churn mid-partition stays Eq.3-feasible" `Slow
            test_admission_churn_mid_partition;
          Alcotest.test_case "stop drains in-flight messages mid-partition" `Quick
            test_stop_mid_partition_drains;
        ] );
    ]
