(* Tests for the observability layer: the metrics registry, the trace
   ring and its column codec, the JSONL encoding, and the golden-trace
   guarantees — tracing is deterministic, and leaving [?obs] out keeps
   the runtime bit-for-bit on its pre-observability trajectory. *)

module Metrics = Lla_obs.Metrics
module Trace = Lla_obs.Trace
module Jsonl = Lla_obs.Jsonl
module Transport = Lla_transport.Transport
module Distributed = Lla_runtime.Distributed

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_counter_basics () =
  let m = Metrics.create () in
  let c = Metrics.counter m "requests_total" in
  Alcotest.(check int) "starts at zero" 0 (Metrics.value c);
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "incr + add" 42 (Metrics.value c);
  Alcotest.check_raises "counters are monotone"
    (Invalid_argument "Metrics.add: counters are monotone") (fun () -> Metrics.add c (-1))

let test_find_or_create_shares_instances () =
  let m = Metrics.create () in
  let a = Metrics.counter m ~labels:[ ("x", "1"); ("y", "2") ] "shared_total" in
  (* same identity, labels in a different order *)
  let b = Metrics.counter m ~labels:[ ("y", "2"); ("x", "1") ] "shared_total" in
  Metrics.incr a;
  Metrics.incr b;
  Alcotest.(check int) "one underlying instance" 2 (Metrics.value a);
  let c = Metrics.counter m ~labels:[ ("x", "other") ] "shared_total" in
  Metrics.incr c;
  Alcotest.(check int) "different labels, different instance" 1 (Metrics.value c);
  Alcotest.(check bool) "find sees the registered instance" true
    (Metrics.find_counter m ~labels:[ ("x", "1"); ("y", "2") ] "shared_total" <> None);
  Alcotest.(check bool) "find does not create" true
    (Metrics.find_counter m "absent_total" = None)

let test_kind_mismatch_rejected () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "thing");
  Alcotest.(check bool) "re-registering as a gauge raises" true
    (try
       ignore (Metrics.gauge m "thing");
       false
     with Invalid_argument _ -> true)

let test_gauge_and_histogram () =
  let m = Metrics.create () in
  let g = Metrics.gauge m "temperature" in
  Metrics.set g 3.5;
  Metrics.set g (-1.25);
  Alcotest.(check (float 0.)) "gauge holds the last value" (-1.25) (Metrics.gauge_value g);
  let h = Metrics.histogram m ~buckets:[| 1.; 10. |] "delay_ms" in
  List.iter (Metrics.observe h) [ 0.5; 5.; 50. ];
  Alcotest.(check int) "count" 3 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-12)) "sum" 55.5 (Metrics.histogram_sum h);
  Alcotest.(check (list (pair (float 0.) int)))
    "cumulative buckets"
    [ (1., 1); (10., 2); (infinity, 3) ]
    (Metrics.bucket_counts h)

let test_histogram_quantile () =
  let m = Metrics.create () in
  (* 100 samples spread uniformly over [0, 100): the interpolated
     quantile of bucket bounds 10,20,...,100 should land close to the
     exact order statistic. *)
  let h = Metrics.histogram m ~buckets:(Array.init 10 (fun i -> float_of_int ((i + 1) * 10))) "u" in
  for i = 0 to 99 do
    Metrics.observe h (float_of_int i +. 0.5)
  done;
  let q p = Option.get (Metrics.quantile h ~q:p) in
  Alcotest.(check (float 1.0)) "p50 of uniform[0,100)" 50. (q 0.5);
  Alcotest.(check (float 1.0)) "p90 of uniform[0,100)" 90. (q 0.9);
  Alcotest.(check (float 1.0)) "p99 of uniform[0,100)" 99. (q 0.99);
  Alcotest.(check (float 0.)) "q=0 is the left edge of the first occupied bucket" 0. (q 0.);
  Alcotest.(check (float 0.)) "q=1 is the last finite bound" 100. (q 1.);
  (* All mass in one bucket: interpolation stays inside [lo, hi]. *)
  let h2 = Metrics.histogram m ~buckets:[| 1.; 10. |] "point" in
  for _ = 1 to 4 do
    Metrics.observe h2 5.
  done;
  let q2 p = Option.get (Metrics.quantile h2 ~q:p) in
  Alcotest.(check bool) "median within the occupied bucket" true (q2 0.5 > 1. && q2 0.5 <= 10.);
  (* Overflow: samples beyond the last finite bound report that bound
     rather than inventing a value inside an unbounded bucket. *)
  let h3 = Metrics.histogram m ~buckets:[| 1. |] "over" in
  Metrics.observe h3 100.;
  Alcotest.(check (float 0.)) "overflow quantile clamps to the last bound" 1.
    (Option.get (Metrics.quantile h3 ~q:0.9));
  (* Degenerate inputs. *)
  let empty = Metrics.histogram m ~buckets:[| 1. |] "empty" in
  Alcotest.(check bool) "empty histogram" true (Metrics.quantile empty ~q:0.5 = None);
  Alcotest.(check bool) "q out of range" true (Metrics.quantile h ~q:1.5 = None);
  Alcotest.(check bool) "nan q" true (Metrics.quantile h ~q:Float.nan = None)

let test_histogram_summary () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~buckets:[| 1.; 10.; 100. |] "s" in
  List.iter (Metrics.observe h) [ 0.5; 5.; 50. ];
  let line = Metrics.summary ~name:"s" h in
  List.iter
    (fun needle ->
      let n = String.length needle in
      let rec go i = i + n <= String.length line && (String.sub line i n = needle || go (i + 1)) in
      Alcotest.(check bool) (Printf.sprintf "summary mentions %S" needle) true (go 0))
    [ "s:"; "count=3"; "sum=55.500"; "mean=18.500"; "p50="; "p90="; "p99=" ]

(* Degenerate histogram shapes: empty leading buckets, a single bucket,
   and non-finite observations must neither crash nor leak nan through
   the quantile path (the summary's sum/mean deliberately do). *)
let test_quantile_degenerate_histograms () =
  let m = Metrics.create () in
  (* Every observation in the last finite bucket: q = 0 must report the
     first *occupied* bucket's lower edge, not the upper edge of the
     empty first bucket. *)
  let sparse =
    Metrics.histogram m ~buckets:(Array.init 10 (fun i -> float_of_int ((i + 1) * 10))) "sparse"
  in
  List.iter (Metrics.observe sparse) [ 95.; 96.; 97. ];
  Alcotest.(check (float 0.)) "q=0 skips empty buckets" 90.
    (Option.get (Metrics.quantile sparse ~q:0.));
  Alcotest.(check bool) "q=0.5 interpolates inside the occupied bucket" true
    (let v = Option.get (Metrics.quantile sparse ~q:0.5) in
     v > 90. && v <= 100.);
  (* Single finite bucket holding all the mass. *)
  let single = Metrics.histogram m ~buckets:[| 1. |] "single" in
  List.iter (Metrics.observe single) [ 0.2; 0.4 ];
  Alcotest.(check (float 0.)) "single bucket q=0" 0. (Option.get (Metrics.quantile single ~q:0.));
  Alcotest.(check bool) "single bucket q=0.5 within (0, 1]" true
    (let v = Option.get (Metrics.quantile single ~q:0.5) in
     v > 0. && v <= 1.);
  Alcotest.(check (float 0.)) "single bucket q=1" 1. (Option.get (Metrics.quantile single ~q:1.));
  (* Non-finite observations land in the +Inf bucket: quantiles stay
     finite (clamped to the highest bound), count includes them, and the
     summary surfaces the poisoned sum/mean as nan instead of hiding it. *)
  let poisoned = Metrics.histogram m ~buckets:[| 1.; 10. |] "poisoned" in
  Metrics.observe poisoned 0.5;
  Metrics.observe poisoned Float.nan;
  Metrics.observe poisoned Float.infinity;
  Alcotest.(check int) "non-finite observations are counted" 3 (Metrics.histogram_count poisoned);
  Alcotest.(check bool) "quantile stays finite under nan observations" true
    (match Metrics.quantile poisoned ~q:0.99 with Some v -> Float.is_finite v | None -> false);
  Alcotest.(check (float 0.)) "nan ranks clamp to the highest bound" 10.
    (Option.get (Metrics.quantile poisoned ~q:1.));
  let line = Metrics.summary ~name:"poisoned" poisoned in
  let contains needle =
    let n = String.length needle in
    let rec go i = i + n <= String.length line && (String.sub line i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "summary surfaces the poisoned mean" true (contains "mean=nan");
  (* Empty histogram summary never divides by zero. *)
  let empty = Metrics.histogram m ~buckets:[| 1. |] "empty2" in
  Alcotest.(check string) "empty summary" "empty2: no observations"
    (Metrics.summary ~name:"empty2" empty)

let test_expose_format () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~help:"how many" ~labels:[ ("kind", "a") ] "events_total" in
  Metrics.add c 7;
  let text = Metrics.expose m in
  let contains needle =
    let n = String.length needle in
    let rec go i = i + n <= String.length text && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "HELP line" true (contains "# HELP events_total how many");
  Alcotest.(check bool) "TYPE line" true (contains "# TYPE events_total counter");
  Alcotest.(check bool) "sample line" true (contains "events_total{kind=\"a\"} 7")

(* A scraper must never see a raw newline, quote or backslash escape its
   context: label values escape all three, HELP text escapes backslash
   and newline (quotes are legal there). Hostile inputs on both. *)
let test_expose_hostile_labels () =
  let m = Metrics.create () in
  let c =
    Metrics.counter m
      ~help:"first line\nsecond \\ line"
      ~labels:[ ("path", "a\\b"); ("msg", "say \"hi\"\nbye") ]
      "hostile_total"
  in
  Metrics.incr c;
  let text = Metrics.expose m in
  let contains needle =
    let n = String.length needle in
    let rec go i = i + n <= String.length text && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "HELP escapes newline and backslash" true
    (contains "# HELP hostile_total first line\\nsecond \\\\ line");
  (* Labels are normalized to key order, so msg sorts before path. *)
  Alcotest.(check bool) "label values escape quote, newline, backslash" true
    (contains "hostile_total{msg=\"say \\\"hi\\\"\\nbye\",path=\"a\\\\b\"} 1");
  (* No physical line of the exposition may contain an unescaped quote
     run-off: every line must parse as comment or name{labels} value. *)
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if line <> "" && line.[0] <> '#' then
           Alcotest.(check bool)
             (Printf.sprintf "sample line has even quote count: %s" line)
             true
             (let q = ref 0 in
              String.iteri (fun i ch -> if ch = '"' && (i = 0 || line.[i - 1] <> '\\') then incr q) line;
              !q mod 2 = 0))

(* ------------------------------------------------------------------ *)
(* Trace ring                                                          *)
(* ------------------------------------------------------------------ *)

(* One of each constructor: the ring stores events column-wise, so this
   doubles as a round-trip test of the store/load codec. *)
let all_events =
  [
    Trace.Iteration { iteration = 3; utility = 1.5; movement = 0.25; guards = 2 };
    Trace.Allocation_solved { task = 1; utility = 42.5 };
    Trace.Price_updated
      { resource = 2; mu = 0.75; step = 1.5; share_sum = 0.9; capacity = 1.0; congested = true };
    Trace.Path_price_updated
      { path = 4; lambda = 0.1; step = 2.0; latency = 80.; critical_time = 100. };
    Trace.Guard_fired { site = "allocation.candidate" };
    Trace.Correction_applied { subtask = "decode"; offset = -0.5 };
    Trace.Watchdog_trip { reason = "price divergence" };
    Trace.Safe_mode_entered { reason = "price divergence"; fallback = "offline-solver" };
    Trace.Safe_mode_exited;
    Trace.Checkpoint_saved { actor = "agent:0" };
    Trace.Checkpoint_rejected { actor = "controller:1" };
    Trace.Checkpoint_restored { actor = "agent:2"; warm = true };
    Trace.Transport_send { src = "a"; dst = "b" };
    Trace.Transport_dropped { src = "a"; dst = "b"; reason = "cut" };
    Trace.Transport_delivered { src = "b"; dst = "a"; delay = 1.25 };
    Trace.Health_transition { endpoint = "agent:r0"; alive = false };
    Trace.Span { span = 12; parent = 3; trace = 7; kind = "price"; actor = "agent:cpu" };
    Trace.Note { name = "debug"; value = 7. };
  ]

let test_ring_roundtrips_every_constructor () =
  let t = Trace.create () in
  List.iteri (fun i e -> Trace.emit t ~at:(float_of_int i) e) all_events;
  let rs = Trace.records t in
  Alcotest.(check int) "all retained" (List.length all_events) (List.length rs);
  List.iteri
    (fun i (r : Trace.record) ->
      Alcotest.(check int) "seq" i r.Trace.seq;
      Alcotest.(check (float 0.)) "at" (float_of_int i) r.Trace.at;
      Alcotest.(check bool)
        (Printf.sprintf "event %d (%s) round-trips" i (Trace.event_name r.Trace.event))
        true
        (r.Trace.event = List.nth all_events i))
    rs

let test_ring_eviction_and_sinks () =
  let t = Trace.create ~capacity:4 () in
  let sink, seen = Trace.memory_sink () in
  Trace.attach t sink;
  for i = 0 to 9 do
    Trace.emit t ~at:(float_of_int i) (Trace.Allocation_solved { task = i; utility = 0. })
  done;
  Alcotest.(check int) "emitted" 10 (Trace.emitted t);
  Alcotest.(check int) "dropped" 6 (Trace.dropped t);
  let rs = Trace.records t in
  Alcotest.(check (list int)) "ring keeps the newest, in order" [ 6; 7; 8; 9 ]
    (List.map
       (fun (r : Trace.record) ->
         match r.Trace.event with Trace.Allocation_solved { task; _ } -> task | _ -> -1)
       rs);
  Alcotest.(check (list int)) "sequence numbers survive eviction" [ 6; 7; 8; 9 ]
    (List.map (fun (r : Trace.record) -> r.Trace.seq) rs);
  Alcotest.(check int) "sinks saw every record, pre-eviction" 10 (List.length (seen ()));
  Trace.clear t;
  Alcotest.(check int) "clear resets the ring" 0 (List.length (Trace.records t));
  Alcotest.(check int) "clear resets the counter" 0 (Trace.emitted t);
  Trace.emit t ~at:0. Trace.Safe_mode_exited;
  Alcotest.(check int) "sinks stay attached across clear" 11 (List.length (seen ()))

let test_ring_rejects_bad_capacity () =
  Alcotest.check_raises "non-positive capacity"
    (Invalid_argument "Trace.create: non-positive capacity") (fun () ->
      ignore (Trace.create ~capacity:0 ()))

let test_record_json_shape () =
  let r =
    {
      Trace.seq = 5;
      at = 12.5;
      event =
        Trace.Price_updated
          { resource = 1; mu = 0.5; step = 1.; share_sum = 0.8; capacity = 0.9; congested = false };
    }
  in
  match Jsonl.parse (Trace.record_to_string r) with
  | Error e -> Alcotest.fail ("record line does not parse: " ^ e)
  | Ok json ->
    let num k = Option.get (Jsonl.num (Option.get (Jsonl.member k json))) in
    Alcotest.(check (float 0.)) "seq" 5. (num "seq");
    Alcotest.(check (float 0.)) "at" 12.5 (num "at");
    Alcotest.(check string) "type tag" "price_updated"
      (Option.get (Jsonl.str (Option.get (Jsonl.member "type" json))));
    Alcotest.(check (float 0.)) "share_sum operand" 0.8 (num "share_sum");
    Alcotest.(check bool) "congested operand" false
      (Option.get (Jsonl.bool (Option.get (Jsonl.member "congested" json))))

(* Every constructor survives encode → parse → decode. [compare] (not
   [=]) because the stream legitimately carries nan operands. *)
let test_record_decoder_roundtrips () =
  List.iteri
    (fun i event ->
      let r = { Trace.seq = i; at = float_of_int i *. 0.5; event } in
      match Trace.record_of_string (Trace.record_to_string r) with
      | Error e ->
        Alcotest.fail (Printf.sprintf "%s does not decode: %s" (Trace.event_name event) e)
      | Ok r' ->
        Alcotest.(check bool)
          (Printf.sprintf "%s decodes to itself" (Trace.event_name event))
          true
          (compare r r' = 0))
    all_events

let test_record_decoder_rejects_malformed () =
  List.iter
    (fun line ->
      match Trace.record_of_string line with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not decode" line)
      | Error _ -> ())
    [
      "";
      "not json";
      "{\"seq\":0,\"at\":0}" (* no type *);
      "{\"seq\":0,\"at\":0,\"type\":\"no_such_event\"}";
      "{\"seq\":0,\"at\":0,\"type\":\"iteration\"}" (* missing operands *);
      "{\"seq\":0,\"at\":0,\"type\":\"span\",\"span\":1,\"parent\":0,\"trace\":1,\"kind\":\"price\"}"
      (* missing actor *);
      "{\"at\":0,\"type\":\"note\",\"name\":\"x\",\"value\":1}" (* missing seq *);
      "{\"seq\":\"zero\",\"at\":0,\"type\":\"note\",\"name\":\"x\",\"value\":1}"
      (* seq not a number *);
    ]

(* ------------------------------------------------------------------ *)
(* JSONL codec                                                         *)
(* ------------------------------------------------------------------ *)

let roundtrip v =
  match Jsonl.parse (Jsonl.to_string v) with
  | Ok v' -> v' = v
  | Error _ -> false

let test_jsonl_roundtrip () =
  List.iter
    (fun v -> Alcotest.(check bool) ("round-trip: " ^ Jsonl.to_string v) true (roundtrip v))
    [
      Jsonl.Null;
      Jsonl.Bool true;
      Jsonl.Num 0.;
      Jsonl.Num 42.;
      Jsonl.Num 0.1;
      Jsonl.Num 1.7976931348623157e308;
      Jsonl.Num 5e-324;
      Jsonl.Num (-3.25);
      Jsonl.Str "";
      Jsonl.Str "quote \" backslash \\ newline \n tab \t";
      Jsonl.Arr [ Jsonl.Num 1.; Jsonl.Str "two"; Jsonl.Null ];
      Jsonl.Obj [ ("a", Jsonl.Num 1.); ("nested", Jsonl.Obj [ ("b", Jsonl.Bool false) ]) ];
    ]

let test_jsonl_non_finite_tokens () =
  Alcotest.(check string) "nan token" "nan" (Jsonl.to_string (Jsonl.Num Float.nan));
  Alcotest.(check string) "inf token" "inf" (Jsonl.to_string (Jsonl.Num Float.infinity));
  Alcotest.(check string) "-inf token" "-inf" (Jsonl.to_string (Jsonl.Num Float.neg_infinity));
  (match Jsonl.parse "{\"x\":inf,\"y\":-inf,\"z\":nan}" with
  | Error e -> Alcotest.fail e
  | Ok json ->
    let num k = Option.get (Jsonl.num (Option.get (Jsonl.member k json))) in
    Alcotest.(check (float 0.)) "inf parses back" Float.infinity (num "x");
    Alcotest.(check (float 0.)) "-inf parses back" Float.neg_infinity (num "y");
    Alcotest.(check bool) "nan parses back" true (Float.is_nan (num "z")))

let test_jsonl_rejects_garbage () =
  List.iter
    (fun s ->
      match Jsonl.parse s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" s)
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "truex"; "1 2"; "{\"a\":}"; "\"unterminated" ]

(* ------------------------------------------------------------------ *)
(* Golden trajectories: ?obs omitted = the pre-observability runtime    *)
(* ------------------------------------------------------------------ *)

(* Captured from the tree immediately before the observability layer was
   introduced: base workload, default config, no resilience, utility
   sampled every 1000 ms. Any drift here means instrumentation perturbed
   the control plane. *)
let golden_distributed_utilities =
  [
    188.26015886489481;
    187.73991024411211;
    187.06903472659877;
    183.50664377685712;
    183.2871377684678;
    183.35764521770636;
    183.67907237766468;
    183.46173056483909;
    183.41073551754656;
    184.1155226047353;
  ]

let golden_solver_utilities =
  (* (iteration, utility) on the base workload, default solver config *)
  [
    (1, 298.80409341672498);
    (10, 220.40569242081443);
    (100, 188.54378936051754);
    (500, 184.33434122474148);
  ]

let sample_distributed ?obs () =
  let workload = Lla_workloads.Paper_sim.base () in
  let engine = Lla_sim.Engine.create () in
  let d = Distributed.create ?obs engine workload in
  let samples = ref [] in
  for _ = 1 to 10 do
    Distributed.run d ~duration:1000.;
    samples := Distributed.utility d :: !samples
  done;
  Distributed.stop d;
  ( List.rev !samples,
    (Distributed.messages_sent d, Distributed.price_rounds d, Distributed.allocation_rounds d) )

let test_distributed_matches_pre_obs_golden () =
  let samples, (messages, price_rounds, allocation_rounds) = sample_distributed () in
  Alcotest.(check (list (float 0.)))
    "utility trajectory is bit-for-bit the pre-observability one" golden_distributed_utilities
    samples;
  Alcotest.(check int) "messages" 42021 messages;
  Alcotest.(check int) "price rounds" 8000 price_rounds;
  Alcotest.(check int) "allocation rounds" 3000 allocation_rounds

let test_solver_matches_pre_obs_golden () =
  let solver = Lla.Solver.create (Lla_workloads.Paper_sim.base ()) in
  let it = ref 0 in
  List.iter
    (fun (target, expected) ->
      while !it < target do
        Lla.Solver.step solver;
        incr it
      done;
      Alcotest.(check (float 0.))
        (Printf.sprintf "utility at iteration %d" target)
        expected (Lla.Solver.utility solver))
    golden_solver_utilities

let test_tracing_does_not_perturb () =
  let obs = Lla_obs.create () in
  let samples_on, counters_on = sample_distributed ~obs () in
  let samples_off, counters_off = sample_distributed () in
  Alcotest.(check (list (float 0.))) "identical trajectories" samples_off samples_on;
  let on_m, on_p, on_a = counters_on and off_m, off_p, off_a = counters_off in
  Alcotest.(check (list int)) "identical counters" [ off_m; off_p; off_a ] [ on_m; on_p; on_a ];
  Alcotest.(check bool) "and the trace is not empty" true
    (Trace.emitted obs.Lla_obs.trace > 0)

(* The span-context path threads [Span.t] values through every transport
   message; carrying them must not touch routing, randomness, or the
   event schedule. *)
let test_spans_do_not_perturb () =
  let obs = Lla_obs.create ~spans:true ~profile:(Lla_obs.Profile.create ()) () in
  let samples_on, counters_on = sample_distributed ~obs () in
  let samples_off, counters_off = sample_distributed () in
  Alcotest.(check (list (float 0.)))
    "spans + profiler leave the trajectory bit-for-bit" samples_off samples_on;
  let on_m, on_p, on_a = counters_on and off_m, off_p, off_a = counters_off in
  Alcotest.(check (list int)) "identical counters" [ off_m; off_p; off_a ] [ on_m; on_p; on_a ];
  let records = Trace.records obs.Lla_obs.trace in
  let spans =
    List.filter
      (fun (r : Trace.record) -> match r.Trace.event with Trace.Span _ -> true | _ -> false)
      records
  in
  Alcotest.(check bool) "span records were emitted" true (spans <> []);
  Alcotest.(check bool) "span stream is well-formed" true
    (Lla_obs.Invariant.spans_well_formed records)

(* ------------------------------------------------------------------ *)
(* Golden trace: determinism of the recorded stream                    *)
(* ------------------------------------------------------------------ *)

let record_stream () =
  (* spans on too: the deterministic-stream check covers the span-context
     transport path (ids from the per-handle counter, no randomness). *)
  let obs = Lla_obs.create ~trace_io:true ~spans:true () in
  let sink, seen = Trace.memory_sink () in
  Trace.attach obs.Lla_obs.trace sink;
  let workload = Lla_workloads.Paper_sim.base () in
  let engine = Lla_sim.Engine.create () in
  let d = Distributed.create ~obs engine workload in
  Distributed.run d ~duration:2000.;
  Distributed.stop d;
  seen ()

let test_trace_deterministic () =
  let a = record_stream () and b = record_stream () in
  Alcotest.(check int) "same length" (List.length a) (List.length b);
  List.iter2
    (fun (ra : Trace.record) (rb : Trace.record) ->
      if ra <> rb then
        Alcotest.fail
          (Printf.sprintf "streams diverge at seq %d:\n  %s\n  %s" ra.Trace.seq
             (Trace.record_to_string ra) (Trace.record_to_string rb)))
    a b

(* ------------------------------------------------------------------ *)
(* trace_io gating                                                     *)
(* ------------------------------------------------------------------ *)

let count_events pred records =
  List.length (List.filter (fun (r : Trace.record) -> pred r.Trace.event) records)

let is_send = function Trace.Transport_send _ -> true | _ -> false
let is_delivered = function Trace.Transport_delivered _ -> true | _ -> false
let is_dropped = function Trace.Transport_dropped _ -> true | _ -> false

let transport_trace ~trace_io ~drop =
  let obs = Lla_obs.create ~trace_io () in
  let sink, seen = Trace.memory_sink () in
  Trace.attach obs.Lla_obs.trace sink;
  let engine = Lla_sim.Engine.create () in
  let config =
    { Transport.default_config with faults = { Transport.no_faults with drop } }
  in
  let transport = Transport.create ~obs ~config engine in
  let a = Transport.endpoint transport ~name:"a" in
  let b = Transport.endpoint transport ~name:"b" in
  for _ = 1 to 20 do
    Transport.send transport ~src:a ~dst:b (fun () -> ())
  done;
  Lla_sim.Engine.run engine ();
  (seen (), Transport.totals transport)

let test_trace_io_gates_happy_path () =
  let quiet, totals = transport_trace ~trace_io:false ~drop:0.5 in
  Alcotest.(check int) "sends not traced by default" 0 (count_events is_send quiet);
  Alcotest.(check int) "deliveries not traced by default" 0 (count_events is_delivered quiet);
  Alcotest.(check int) "failures always traced" totals.Transport.dropped
    (count_events is_dropped quiet);
  Alcotest.(check bool) "aggregate counts always kept" true (totals.Transport.dropped > 0);
  let verbose, totals = transport_trace ~trace_io:true ~drop:0.5 in
  Alcotest.(check int) "sends traced under trace_io" totals.Transport.sent
    (count_events is_send verbose);
  Alcotest.(check int) "deliveries traced under trace_io" totals.Transport.delivered
    (count_events is_delivered verbose)

(* ------------------------------------------------------------------ *)
(* Instrumented solver: events and registry metrics agree              *)
(* ------------------------------------------------------------------ *)

let test_solver_emits_iterations () =
  let obs = Lla_obs.create () in
  let solver = Lla.Solver.create ~obs (Lla_workloads.Paper_sim.base ()) in
  Lla.Solver.run solver ~iterations:25;
  let records = Trace.records obs.Lla_obs.trace in
  let iterations =
    count_events (function Trace.Iteration _ -> true | _ -> false) records
  in
  Alcotest.(check int) "one Iteration record per step" 25 iterations;
  (match Metrics.find_counter obs.Lla_obs.metrics "lla_solver_iterations_total" with
  | None -> Alcotest.fail "iteration counter not registered"
  | Some c -> Alcotest.(check int) "registry agrees" 25 (Metrics.value c));
  let problem = Lla.Solver.problem solver in
  let price_updates =
    count_events (function Trace.Price_updated _ -> true | _ -> false) records
  in
  Alcotest.(check int) "one price record per resource per step"
    (25 * Lla.Problem.n_resources problem)
    price_updates

let () =
  Alcotest.run "lla_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "find-or-create shares instances" `Quick
            test_find_or_create_shares_instances;
          Alcotest.test_case "kind mismatch rejected" `Quick test_kind_mismatch_rejected;
          Alcotest.test_case "gauge and histogram" `Quick test_gauge_and_histogram;
          Alcotest.test_case "histogram quantile" `Quick test_histogram_quantile;
          Alcotest.test_case "histogram summary" `Quick test_histogram_summary;
          Alcotest.test_case "degenerate histograms" `Quick test_quantile_degenerate_histograms;
          Alcotest.test_case "prometheus exposition" `Quick test_expose_format;
          Alcotest.test_case "exposition survives hostile labels and help" `Quick
            test_expose_hostile_labels;
        ] );
      ( "trace",
        [
          Alcotest.test_case "every constructor round-trips the ring" `Quick
            test_ring_roundtrips_every_constructor;
          Alcotest.test_case "eviction, sinks, clear" `Quick test_ring_eviction_and_sinks;
          Alcotest.test_case "bad capacity rejected" `Quick test_ring_rejects_bad_capacity;
          Alcotest.test_case "record JSON shape" `Quick test_record_json_shape;
          Alcotest.test_case "decoder round-trips every constructor" `Quick
            test_record_decoder_roundtrips;
          Alcotest.test_case "decoder rejects malformed lines" `Quick
            test_record_decoder_rejects_malformed;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "values round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "non-finite tokens" `Quick test_jsonl_non_finite_tokens;
          Alcotest.test_case "garbage rejected" `Quick test_jsonl_rejects_garbage;
        ] );
      ( "golden",
        [
          Alcotest.test_case "distributed matches pre-observability run" `Slow
            test_distributed_matches_pre_obs_golden;
          Alcotest.test_case "solver matches pre-observability run" `Quick
            test_solver_matches_pre_obs_golden;
          Alcotest.test_case "tracing does not perturb the trajectory" `Slow
            test_tracing_does_not_perturb;
          Alcotest.test_case "spans + profiler do not perturb the trajectory" `Slow
            test_spans_do_not_perturb;
          Alcotest.test_case "recorded stream is deterministic" `Slow test_trace_deterministic;
        ] );
      ( "gating",
        [
          Alcotest.test_case "trace_io gates the happy path" `Quick
            test_trace_io_gates_happy_path;
          Alcotest.test_case "solver iteration records" `Quick test_solver_emits_iterations;
        ] );
    ]
