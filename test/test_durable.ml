(* Lla_durable: CRC-32 known answers, record framing, the
   torn-tail-at-every-byte-offset sweep, segment rotation and snapshot
   compaction, the seeded faulty store (torn writes, dropped syncs,
   ENOSPC wedging), recovery replay + active-segment truncation, and the
   checkpoint-store integration (idempotent replay, non-finite refusal,
   whole-kernel restore_iterate hygiene). *)

module Journal = Lla_durable.Journal
module Recovery = Lla_durable.Recovery
module Store = Lla_durable.Journal.Store
module Checkpoint = Lla_runtime.Checkpoint
module Kernel = Lla_scale.Kernel
module Generator = Lla_scale.Generator

let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* CRC-32 and record framing                                           *)
(* ------------------------------------------------------------------ *)

let test_crc_known_answers () =
  (* the IEEE 802.3 check value, and the empty-string identity *)
  Alcotest.(check int) "crc32(\"123456789\")" 0xCBF43926 (Journal.Crc.string "123456789");
  Alcotest.(check int) "crc32(\"\")" 0 (Journal.Crc.string "");
  Alcotest.(check int) "substring crc"
    (Journal.Crc.string "234567")
    (Journal.Crc.string ~off:1 ~len:6 "123456789")

let test_framing_layout () =
  let r = Journal.encode_record "hi" in
  Alcotest.(check int) "8-byte header + payload" 10 (String.length r);
  Alcotest.(check int) "length field LE" 2 (Char.code r.[0]);
  Alcotest.(check int) "length high bytes zero" 0
    (Char.code r.[1] lor Char.code r.[2] lor Char.code r.[3]);
  Alcotest.(check string) "payload verbatim" "hi" (String.sub r 8 2)

let framing_roundtrip =
  QCheck.Test.make ~count:200 ~name:"framed records decode back verbatim"
    QCheck.(list_of_size (Gen.int_range 0 8) (string_of_size (Gen.int_range 0 200)))
    (fun payloads ->
      let raw = String.concat "" (List.map Journal.encode_record payloads) in
      let decoded, scan = Journal.decode raw in
      if decoded <> payloads then QCheck.Test.fail_report "payloads differ";
      if scan.Journal.corrupt_at <> None then QCheck.Test.fail_report "clean stream read corrupt";
      if scan.Journal.good_bytes <> String.length raw then
        QCheck.Test.fail_report "good_bytes under-counts";
      true)

(* The satellite: cut a multi-record stream at EVERY byte offset and
   scan the prefix. Recovery of a torn file must always yield a valid
   record prefix, never raise, and account every surviving byte. *)
let test_torn_tail_every_offset () =
  let payloads = [ "alpha"; ""; "beta-beta"; String.make 64 'x'; "\x00\xff tail" ] in
  let raw = String.concat "" (List.map Journal.encode_record payloads) in
  (* record boundaries: byte offset after each complete record *)
  let boundaries =
    List.rev
      (fst
         (List.fold_left
            (fun (acc, off) p ->
              let off = off + 8 + String.length p in
              (off :: acc, off))
            ([ 0 ], 0) payloads))
  in
  for cut = 0 to String.length raw do
    let decoded, scan = Journal.decode (String.sub raw 0 cut) in
    let expect_records =
      List.length (List.filter (fun b -> b <= cut && b > 0) boundaries)
    in
    if List.length decoded <> expect_records then
      Alcotest.failf "cut %d: %d records decoded, %d complete" cut (List.length decoded)
        expect_records;
    (* the decoded list is a strict prefix of the original payloads *)
    List.iteri
      (fun i p ->
        if p <> List.nth payloads i then Alcotest.failf "cut %d: record %d corrupted" cut i)
      decoded;
    let good = List.nth boundaries expect_records in
    Alcotest.(check int) (Printf.sprintf "cut %d good_bytes" cut) good scan.Journal.good_bytes;
    if cut > good && scan.Journal.corrupt_at = None then
      Alcotest.failf "cut %d: torn tail not reported corrupt" cut;
    if cut = good && scan.Journal.corrupt_at <> None then
      Alcotest.failf "cut %d: clean boundary reported corrupt" cut
  done

let test_scan_rejects_absurd_length () =
  (* a torn length prefix must not make recovery attempt a giant read *)
  let b = Bytes.make 8 '\x00' in
  Bytes.set b 3 '\x7f' (* length = 0x7f000000, way past max_record_bytes *);
  let _, scan = Journal.decode (Bytes.to_string b) in
  Alcotest.(check (option int)) "corrupt at 0" (Some 0) scan.Journal.corrupt_at;
  (* bit-flipped payload: framing is intact, CRC must catch it *)
  let r = Bytes.of_string (Journal.encode_record "payload") in
  Bytes.set r 10 (Char.chr (Char.code (Bytes.get r 10) lxor 0x04));
  let decoded, scan = Journal.decode (Bytes.to_string r) in
  Alcotest.(check int) "flipped record refused" 0 (List.length decoded);
  Alcotest.(check (option string)) "reason is bad crc" (Some "bad crc") scan.Journal.corrupt_reason

(* ------------------------------------------------------------------ *)
(* Faulty store semantics                                              *)
(* ------------------------------------------------------------------ *)

let append_exn store path data =
  match Store.append store path data with
  | Ok () -> ()
  | Error e -> Alcotest.failf "append: %s" e

let test_faulty_store_sync_frontier () =
  let s = Store.faulty () in
  append_exn s "f" "abc";
  Store.sync s "f";
  append_exn s "f" "def";
  (* unsynced tail is visible to reads but lost on crash *)
  Alcotest.(check (option string)) "read sees tail" (Some "abcdef") (Store.read s "f");
  Store.crash s;
  Alcotest.(check (option string)) "crash keeps durable prefix" (Some "abc") (Store.read s "f");
  Alcotest.(check int) "no faults fired at zero probabilities" 0 (Store.faults_injected s)

let test_faulty_store_dropped_sync () =
  let s =
    Store.faulty ~seed:7 ~faults:{ Store.no_faults with Store.drop_sync = 1. } ()
  in
  append_exn s "f" "abc";
  Store.sync s "f";
  Store.crash s;
  Alcotest.(check (option string)) "dropped sync loses the tail" (Some "") (Store.read s "f");
  Alcotest.(check bool) "fault accounted" true (Store.faults_injected s > 0)

let test_faulty_store_deterministic () =
  let faults = { Store.torn_write = 0.5; bit_flip = 0.3; drop_sync = 0.5; short_read = 0.; fail_write = 0.1 } in
  let run () =
    let s = Store.faulty ~seed:11 ~faults () in
    for i = 0 to 40 do
      (match Store.append s "f" (Printf.sprintf "record-%d" i) with Ok () | Error _ -> ());
      if i mod 3 = 0 then Store.sync s "f";
      if i mod 17 = 0 then Store.crash s
    done;
    (Store.read s "f", Store.faults_injected s)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same seed, same bytes and fault count" true (a = b)

let test_store_faults_validation () =
  let s = Store.faulty () in
  (try
     Store.set_faults s { Store.no_faults with Store.bit_flip = 1.5 };
     Alcotest.fail "probability 1.5 accepted"
   with Invalid_argument _ -> ());
  let file = Store.file ~dir:(Filename.concat (Filename.get_temp_dir_name ()) "lla_durable_nofault") in
  Store.set_faults file { Store.no_faults with Store.torn_write = 1. };
  Alcotest.(check bool) "file store ignores fault config" true
    (Store.active_faults file = Store.no_faults)

(* ------------------------------------------------------------------ *)
(* Journal: rotation, snapshot, wedging                                 *)
(* ------------------------------------------------------------------ *)

let test_rotation_and_replay () =
  let store = Store.faulty () in
  let j =
    Journal.create ~config:{ Journal.default_config with Journal.max_segment_bytes = 64; retain = 3 } store
  in
  let n = 40 in
  for i = 1 to n do
    Journal.append j (Printf.sprintf "rec-%03d" i)
  done;
  Alcotest.(check bool) "segments rotated" true (Journal.rotations j > 0);
  let got = ref [] in
  let _ = Recovery.replay j ~apply:(fun p -> got := p :: !got; true) in
  let got = List.rev !got in
  (* retain=3 bounds history: we must get a contiguous SUFFIX of the
     appended records, ending at the newest *)
  Alcotest.(check bool) "some records survive" true (got <> []);
  Alcotest.(check string) "newest record last" (Printf.sprintf "rec-%03d" n)
    (List.nth got (List.length got - 1));
  let first = List.hd got in
  let start = int_of_string (String.sub first 4 3) in
  List.iteri
    (fun k p -> Alcotest.(check string) "contiguous suffix" (Printf.sprintf "rec-%03d" (start + k)) p)
    got

let test_snapshot_compaction () =
  let store = Store.faulty () in
  let j = Journal.create ~config:{ Journal.default_config with Journal.max_segment_bytes = 64 } store in
  for i = 1 to 20 do
    Journal.append j (Printf.sprintf "old-%d" i)
  done;
  Journal.snapshot j [ "live-a"; "live-b" ];
  Journal.append j "after-snap";
  let got = ref [] in
  let r = Recovery.replay j ~apply:(fun p -> got := p :: !got; true) in
  Alcotest.(check (list string)) "snapshot + subsequent appends, in order"
    [ "live-a"; "live-b"; "after-snap" ] (List.rev !got);
  Alcotest.(check int) "snapshot records accounted" 2 r.Recovery.snapshot_records;
  Alcotest.(check int) "wal records accounted" 1 r.Recovery.wal_records

let test_enospc_wedges_never_raises () =
  let store = Store.faulty ~faults:{ Store.no_faults with Store.fail_write = 1. } () in
  let j = Journal.create store in
  Journal.append j "doomed";
  Alcotest.(check bool) "journal wedged" true (Journal.wedged j);
  Alcotest.(check int) "record not counted" 0 (Journal.appends j);
  (* wedged journal: appends are silent no-ops, replay still works *)
  Journal.append j "also dropped";
  Journal.sync j;
  let r = Recovery.replay j ~apply:(fun _ -> true) in
  Alcotest.(check int) "nothing to replay" 0 r.Recovery.applied;
  (* disk recovers -> snapshot un-wedges *)
  Store.set_faults store Store.no_faults;
  Journal.snapshot j [ "fresh" ];
  Alcotest.(check bool) "snapshot un-wedges" false (Journal.wedged j);
  Journal.append j "accepted";
  Alcotest.(check int) "appends flow again" 1 (Journal.appends j)

(* Torn active segment at every byte offset, now through the full
   journal + recovery stack: replay never raises, applies exactly the
   complete-record prefix, truncates the tail in place, and the journal
   keeps appending cleanly afterwards. *)
let test_recovery_truncates_torn_tail_every_offset () =
  let payloads = [ "first"; "second-longer"; "third" ] in
  let raw = String.concat "" (List.map Journal.encode_record payloads) in
  for cut = 0 to String.length raw do
    let store = Store.faulty () in
    let j = Journal.create store in
    Store.write store (Journal.active_path j) (String.sub raw 0 cut);
    let applied = ref [] in
    let r = Recovery.replay j ~apply:(fun p -> applied := p :: !applied; true) in
    let applied = List.rev !applied in
    (* the applied records are a prefix of the payload list *)
    List.iteri
      (fun i p ->
        if p <> List.nth payloads i then Alcotest.failf "cut %d: record %d corrupted" cut i)
      applied;
    let good_bytes =
      List.fold_left (fun acc p -> acc + 8 + String.length p)
        0
        (List.filteri (fun i _ -> i < List.length applied) payloads)
    in
    Alcotest.(check int)
      (Printf.sprintf "cut %d truncated bytes" cut)
      (cut - good_bytes) r.Recovery.truncated_bytes;
    (match Store.read store (Journal.active_path j) with
    | None -> Alcotest.failf "cut %d: active segment vanished" cut
    | Some contents ->
      Alcotest.(check int)
        (Printf.sprintf "cut %d active segment truncated in place" cut)
        good_bytes (String.length contents));
    (* the frontier is clean: append + replay recovers prefix + new *)
    Journal.append j "appended-after-recovery";
    let again = ref [] in
    let r2 = Recovery.replay j ~apply:(fun p -> again := p :: !again; true) in
    Alcotest.(check (list string))
      (Printf.sprintf "cut %d clean frontier" cut)
      (applied @ [ "appended-after-recovery" ])
      (List.rev !again);
    Alcotest.(check int) (Printf.sprintf "cut %d second replay clean" cut) 0 r2.Recovery.truncated_bytes
  done

(* ------------------------------------------------------------------ *)
(* Checkpoint-store integration                                        *)
(* ------------------------------------------------------------------ *)

let agent_state price = { Checkpoint.price; gamma = 0.5; lat_view = [| 1.; 2. |] }

let test_checkpoint_journal_roundtrip () =
  let j = Journal.create (Store.faulty ()) in
  let c = Checkpoint.create ~journal:j ~n_agents:2 ~n_controllers:1 () in
  Alcotest.(check bool) "saved" true (Checkpoint.save_agent c 0 ~now:10. (agent_state 3.5));
  Alcotest.(check bool) "saved" true (Checkpoint.save_agent c 1 ~now:11. (agent_state 4.5));
  Alcotest.(check bool) "saved" true
    (Checkpoint.save_controller c 0 ~now:12.
       {
         Checkpoint.mu_view = [| 1.; 2. |];
         congested_view = [| false; true |];
         lambda = [| 0.25 |];
         gamma_p = [| 0.5 |];
       });
  let appended = Journal.appends j in
  Alcotest.(check int) "each accepted save journaled" 3 appended;
  (* whole-node crash: RAM gone, journal survives *)
  Checkpoint.clear c;
  Alcotest.(check (option (float 0.))) "slot gone" None
    (Option.map (fun (s : Checkpoint.agent_state) -> s.Checkpoint.price)
       (Checkpoint.restore_agent c 0 ~now:20.));
  (match Checkpoint.recover c ~now:20. with
  | None -> Alcotest.fail "store has a journal"
  | Some r ->
    Alcotest.(check int) "all records restored" 3 r.Recovery.applied;
    Alcotest.(check int) "none refused" 0 r.Recovery.refused);
  (match Checkpoint.restore_agent c 0 ~now:20. with
  | Some s -> Alcotest.(check (float 0.)) "price back" 3.5 s.Checkpoint.price
  | None -> Alcotest.fail "agent 0 not restored");
  (* idempotence: replaying again restores the same slots and does not
     echo new journal records *)
  (match Checkpoint.recover c ~now:21. with
  | None -> Alcotest.fail "store has a journal"
  | Some r -> Alcotest.(check int) "second replay applies the same" 3 r.Recovery.applied);
  Alcotest.(check int) "replay did not append" appended (Journal.appends j);
  match Checkpoint.restore_agent c 1 ~now:21. with
  | Some s -> Alcotest.(check (float 0.)) "agent 1 intact" 4.5 s.Checkpoint.price
  | None -> Alcotest.fail "agent 1 lost by double replay"

let test_checkpoint_recovery_refuses_poison () =
  let j = Journal.create (Store.faulty ()) in
  let c = Checkpoint.create ~journal:j ~n_agents:1 ~n_controllers:0 () in
  Alcotest.(check bool) "clean save accepted" true
    (Checkpoint.save_agent c 0 ~now:1. (agent_state 2.0));
  (* a poisoned record lands on disk behind the store's back (the live
     save path would have refused it) plus a malformed line *)
  Journal.append j
    "{\"kind\":\"agent\",\"index\":0,\"at\":2,\"price\":nan,\"gamma\":0.5,\"lat_view\":[1,2]}";
  Journal.append j "not json at all";
  Checkpoint.clear c;
  (match Checkpoint.recover c ~now:3. with
  | None -> Alcotest.fail "store has a journal"
  | Some r ->
    Alcotest.(check int) "clean record applied" 1 r.Recovery.applied;
    Alcotest.(check int) "poison + garbage refused, not raised" 2 r.Recovery.refused);
  match Checkpoint.restore_agent c 0 ~now:3. with
  | Some s -> Alcotest.(check (float 0.)) "finite snapshot survives" 2.0 s.Checkpoint.price
  | None -> Alcotest.fail "agent 0 not restored"

let test_checkpoint_compact () =
  let j = Journal.create (Store.faulty ()) in
  let c = Checkpoint.create ~journal:j ~n_agents:1 ~n_controllers:0 () in
  for i = 1 to 25 do
    ignore (Checkpoint.save_agent c 0 ~now:(float_of_int i) (agent_state (float_of_int i)))
  done;
  Checkpoint.compact c;
  Alcotest.(check int) "one snapshot taken" 1 (Journal.snapshots j);
  Checkpoint.clear c;
  (match Checkpoint.recover c ~now:30. with
  | None -> Alcotest.fail "store has a journal"
  | Some r -> Alcotest.(check int) "compacted to live slots" 1 r.Recovery.applied);
  match Checkpoint.restore_agent c 0 ~now:30. with
  | Some s -> Alcotest.(check (float 0.)) "latest slot wins" 25. s.Checkpoint.price
  | None -> Alcotest.fail "agent 0 not restored"

(* ------------------------------------------------------------------ *)
(* Kernel whole-node restore hygiene                                   *)
(* ------------------------------------------------------------------ *)

let small_kernel seed =
  let workload =
    Generator.generate ~params:(Generator.sized ~resources:8 ~subtasks:60 ()) ~seed ()
  in
  match Kernel.create ~config:Kernel.scale_config workload with
  | Ok k -> k
  | Error e -> Alcotest.failf "Kernel.create: %s" e

let test_kernel_restore_iterate () =
  let k = small_kernel 5 in
  (match Kernel.solve k ~max_iterations:20_000 with
  | Some _ -> ()
  | None -> Alcotest.fail "did not converge");
  let lat = Array.copy (Kernel.lat_array k) in
  let mu = Array.copy (Kernel.mu_array k) in
  let lambda = Array.copy (Kernel.lambda_array k) in
  Kernel.crash_reset k;
  Alcotest.(check bool) "reset moved the iterate" false (Kernel.lat_array k = lat);
  (match Kernel.restore_iterate k ~lat ~mu ~lambda with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "latencies restored" true (Kernel.lat_array k = lat);
  Kernel.step k;
  Alcotest.(check bool) "restored point is feasible after one tick" true (Kernel.feasible k)

let test_kernel_restore_refusals () =
  let k = small_kernel 6 in
  let lat = Array.copy (Kernel.lat_array k) in
  let mu = Array.copy (Kernel.mu_array k) in
  let lambda = Array.copy (Kernel.lambda_array k) in
  (match Kernel.restore_iterate k ~lat:(Array.sub lat 0 1) ~mu ~lambda with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "length mismatch accepted");
  let poisoned = Array.copy lat in
  poisoned.(0) <- nan;
  (match Kernel.restore_iterate k ~lat:poisoned ~mu ~lambda with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "nan latency accepted");
  let inf_mu = Array.copy mu in
  inf_mu.(0) <- infinity;
  (match Kernel.restore_iterate k ~lat ~mu:inf_mu ~lambda with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "infinite price accepted");
  (* negative prices are clamped, not refused *)
  let neg_mu = Array.map (fun v -> -.v -. 1.) mu in
  (match Kernel.restore_iterate k ~lat ~mu:neg_mu ~lambda with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "prices clamped to >= 0" true
    (Array.for_all (fun v -> v >= 0.) (Kernel.mu_array k))

let () =
  Alcotest.run "lla_durable"
    [
      ( "framing",
        [
          Alcotest.test_case "crc32 known answers" `Quick test_crc_known_answers;
          Alcotest.test_case "record layout" `Quick test_framing_layout;
          qcheck framing_roundtrip;
          Alcotest.test_case "torn tail at every byte offset" `Quick test_torn_tail_every_offset;
          Alcotest.test_case "absurd lengths and bit flips rejected" `Quick
            test_scan_rejects_absurd_length;
        ] );
      ( "store",
        [
          Alcotest.test_case "sync frontier vs crash" `Quick test_faulty_store_sync_frontier;
          Alcotest.test_case "dropped sync loses the tail" `Quick test_faulty_store_dropped_sync;
          Alcotest.test_case "seeded faults deterministic" `Quick test_faulty_store_deterministic;
          Alcotest.test_case "fault config validation" `Quick test_store_faults_validation;
        ] );
      ( "journal",
        [
          Alcotest.test_case "rotation bounds history, replay ordered" `Quick
            test_rotation_and_replay;
          Alcotest.test_case "snapshot compaction" `Quick test_snapshot_compaction;
          Alcotest.test_case "ENOSPC wedges, never raises" `Quick test_enospc_wedges_never_raises;
          Alcotest.test_case "recovery truncates torn tails at every offset" `Quick
            test_recovery_truncates_torn_tail_every_offset;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "journal round-trip + idempotent replay" `Quick
            test_checkpoint_journal_roundtrip;
          Alcotest.test_case "recovery refuses poison and garbage" `Quick
            test_checkpoint_recovery_refuses_poison;
          Alcotest.test_case "compaction keeps the live slots" `Quick test_checkpoint_compact;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "restore_iterate round-trip" `Quick test_kernel_restore_iterate;
          Alcotest.test_case "restore_iterate refuses bad state" `Quick
            test_kernel_restore_refusals;
        ] );
    ]
