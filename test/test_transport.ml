(* Tests for the fault-injecting transport and the distributed LLA
   deployment on top of it: channel-level fault semantics, determinism,
   equivalence of the zero-fault transport with the legacy fixed-delay
   path, and convergence under loss, jitter, partitions and crashes. *)

open Lla_model
module Engine = Lla_sim.Engine
module Transport = Lla_transport.Transport
module Delay_model = Lla_transport.Delay_model
module Distributed = Lla_runtime.Distributed

let check_close ?(eps = 1e-9) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s (expected %g, got %g)" msg expected actual)
    true
    (Float.abs (expected -. actual) <= eps)

let no_retry_no_lww = { Transport.retry = None; last_write_wins = false }

let two_endpoints ?(config = Transport.default_config) () =
  let engine = Engine.create () in
  let transport = Transport.create ~config engine in
  let a = Transport.endpoint transport ~name:"a" in
  let b = Transport.endpoint transport ~name:"b" in
  (engine, transport, a, b)

(* ------------------------------------------------------------------ *)
(* Channel semantics                                                   *)
(* ------------------------------------------------------------------ *)

let test_constant_delivery_in_order () =
  let engine, transport, a, b = two_endpoints () in
  let received = ref [] in
  for i = 1 to 5 do
    Transport.send transport ~src:a ~dst:b (fun () -> received := i :: !received)
  done;
  Engine.run engine ();
  Alcotest.(check (list int)) "in order" [ 1; 2; 3; 4; 5 ] (List.rev !received);
  check_close "delivery at the constant delay" 1.0 (Engine.now engine);
  let c = Transport.channel_counters transport ~src:a ~dst:b in
  Alcotest.(check int) "sent" 5 c.Transport.sent;
  Alcotest.(check int) "delivered" 5 c.Transport.delivered;
  Alcotest.(check int) "nothing lost" 0
    (c.Transport.dropped + c.Transport.cut + c.Transport.lost_down + c.Transport.stale)

let test_drop_everything () =
  let config =
    { Transport.default_config with faults = { Transport.no_faults with drop = 1.0 } }
  in
  let engine, transport, a, b = two_endpoints ~config () in
  let received = ref 0 in
  for _ = 1 to 7 do
    Transport.send transport ~src:a ~dst:b (fun () -> incr received)
  done;
  Engine.run engine ();
  Alcotest.(check int) "nothing delivered" 0 !received;
  let c = Transport.totals transport in
  Alcotest.(check int) "all dropped" 7 c.Transport.dropped

let test_duplicates_without_lww () =
  let config =
    {
      Transport.default_config with
      faults = { Transport.no_faults with duplicate = 1.0 };
      policy = no_retry_no_lww;
    }
  in
  let engine, transport, a, b = two_endpoints ~config () in
  let received = ref 0 in
  for _ = 1 to 6 do
    Transport.send transport ~src:a ~dst:b (fun () -> incr received)
  done;
  Engine.run engine ();
  Alcotest.(check int) "every message delivered twice" 12 !received;
  let c = Transport.totals transport in
  Alcotest.(check int) "duplicates counted" 6 c.Transport.duplicated

let test_lww_discards_duplicates () =
  let config =
    { Transport.default_config with faults = { Transport.no_faults with duplicate = 1.0 } }
  in
  let engine, transport, a, b = two_endpoints ~config () in
  let received = ref 0 in
  for _ = 1 to 6 do
    Transport.send transport ~key:0 ~src:a ~dst:b (fun () -> incr received)
  done;
  Engine.run engine ();
  Alcotest.(check int) "one application per message" 6 !received;
  let c = Transport.totals transport in
  Alcotest.(check int) "stale copies discarded" 6 c.Transport.stale

let test_reordering_and_lww_monotonicity () =
  (* Every message gets a random extra delay, scrambling arrival order;
     last-write-wins must keep the applied sequence monotonic. *)
  let config =
    {
      Transport.default_config with
      faults = { Transport.no_faults with reorder = 1.0; reorder_spread = 50. };
      seed = 11;
    }
  in
  let engine, transport, a, b = two_endpoints ~config () in
  let applied = ref [] in
  for i = 1 to 30 do
    Transport.send transport ~key:0 ~src:a ~dst:b (fun () -> applied := i :: !applied)
  done;
  Engine.run engine ();
  let applied = List.rev !applied in
  let rec monotonic = function
    | x :: (y :: _ as rest) -> x < y && monotonic rest
    | _ -> true
  in
  Alcotest.(check bool) "applied sequence strictly increasing" true (monotonic applied);
  let c = Transport.totals transport in
  Alcotest.(check int) "every message accounted for" 30
    (c.Transport.delivered + c.Transport.stale);
  Alcotest.(check bool) "reordering actually discarded stale updates" true (c.Transport.stale > 0)

let test_retry_recovers_losses () =
  let config =
    {
      Transport.default_config with
      faults = { Transport.no_faults with drop = 0.5 };
      policy =
        {
          Transport.retry = Some { Transport.timeout = 5.; backoff = 2.; max_attempts = 5; jitter = 0. };
          last_write_wins = false;
        };
      seed = 3;
    }
  in
  let engine, transport, a, b = two_endpoints ~config () in
  let received = ref 0 in
  for _ = 1 to 40 do
    Transport.send transport ~src:a ~dst:b (fun () -> incr received)
  done;
  Engine.run engine ();
  let c = Transport.totals transport in
  Alcotest.(check bool)
    (Printf.sprintf "most messages delivered (%d/40, %d retries)" !received c.Transport.retried)
    true
    (!received >= 36 && c.Transport.retried > 0)

let test_partition_cuts_and_heals () =
  let engine, transport, a, b = two_endpoints () in
  Transport.partition transport ~at:10. ~duration:10. ~group_a:[ a ] ~group_b:[ b ];
  let received = ref [] in
  let send_at t i =
    ignore
      (Engine.schedule engine ~at:t (fun _ ->
           Transport.send transport ~src:a ~dst:b (fun () -> received := i :: !received)))
  in
  send_at 5. 1;
  send_at 15. 2;
  (* in the window: cut *)
  send_at 25. 3;
  Engine.run engine ();
  Alcotest.(check (list int)) "message in the window lost" [ 1; 3 ] (List.rev !received);
  let c = Transport.totals transport in
  Alcotest.(check int) "cut counted" 1 c.Transport.cut

let test_retry_rides_out_partition () =
  let config =
    {
      Transport.default_config with
      policy =
        {
          Transport.retry = Some { Transport.timeout = 6.; backoff = 1.; max_attempts = 4; jitter = 0. };
          last_write_wins = false;
        };
    }
  in
  let engine, transport, a, b = two_endpoints ~config () in
  Transport.partition transport ~at:10. ~duration:10. ~group_a:[ a ] ~group_b:[ b ];
  let received = ref 0 in
  ignore
    (Engine.schedule engine ~at:15. (fun _ ->
         Transport.send transport ~src:a ~dst:b (fun () -> incr received)));
  Engine.run engine ();
  let c = Transport.totals transport in
  Alcotest.(check int) "delivered after the heal" 1 !received;
  Alcotest.(check bool) "first attempt was cut, then retried" true
    (c.Transport.cut >= 1 && c.Transport.retried >= 1)

(* Retry jitter: at jitter = 0 the retransmit schedule is exactly the
   analytic one (no randomness drawn); at jitter > 0 every wait stays in
   the [timeout * backoff^n * (1 ± jitter)] band and the schedule is
   seed-reproducible. *)
let jittered_delivery ~jitter ~seed =
  let config =
    {
      Transport.default_config with
      policy =
        {
          Transport.retry = Some { Transport.timeout = 10.; backoff = 1.; max_attempts = 10; jitter };
          last_write_wins = false;
        };
      seed;
    }
  in
  let engine, transport, a, b = two_endpoints ~config () in
  Transport.partition transport ~at:0. ~duration:40. ~group_a:[ a ] ~group_b:[ b ];
  let delivered_at = ref nan in
  Transport.send transport ~src:a ~dst:b (fun () -> delivered_at := Engine.now engine);
  Engine.run engine ();
  !delivered_at

let test_retry_jitter () =
  (* jitter = 0: attempts at 0/10/20/30 are cut, the one at 40 lands at
     41 (1 ms link) — bit-for-bit the pre-jitter schedule *)
  check_close "jitter 0 is the analytic schedule" 41. (jittered_delivery ~jitter:0. ~seed:5);
  (* jitter = 0.4: waits are uniform in [6, 14], so the healing
     retransmit fires in [40, 40 + 14) and delivers within 1 ms *)
  List.iter
    (fun seed ->
      let at = jittered_delivery ~jitter:0.4 ~seed in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d delivery %g inside the jitter band" seed at)
        true
        (at >= 41. && at < 55.);
      check_close "seed-reproducible" at (jittered_delivery ~jitter:0.4 ~seed))
    [ 1; 2; 3; 4; 5 ]

let test_retry_jitter_validation () =
  List.iter
    (fun jitter ->
      let config =
        {
          Transport.default_config with
          policy =
            {
              Transport.retry = Some { Transport.timeout = 5.; backoff = 2.; max_attempts = 3; jitter };
              last_write_wins = false;
            };
        }
      in
      try
        ignore (Transport.create ~config (Engine.create ()));
        Alcotest.failf "jitter %g accepted" jitter
      with Invalid_argument _ -> ())
    [ -0.1; 1.0; 1.5; nan ]

let test_outage_and_restart_hook () =
  let engine, transport, a, b = two_endpoints () in
  let restarted = ref false in
  Transport.on_restart transport b (fun () -> restarted := true);
  Transport.schedule_outage transport b ~at:10. ~duration:10.;
  let received = ref [] in
  let send_at t i =
    ignore
      (Engine.schedule engine ~at:t (fun _ ->
           Transport.send transport ~src:a ~dst:b (fun () -> received := i :: !received)))
  in
  send_at 5. 1;
  send_at 12. 2;
  (* arrives at 13 while b is down *)
  send_at 22. 3;
  Engine.run engine ();
  Alcotest.(check (list int)) "message to the down endpoint lost" [ 1; 3 ] (List.rev !received);
  Alcotest.(check bool) "restart hook ran" true !restarted;
  Alcotest.(check int) "one outage" 1 (Transport.outages transport b);
  let c = Transport.totals transport in
  Alcotest.(check int) "lost to down endpoint" 1 c.Transport.lost_down

let test_per_link_delay_override () =
  let engine, transport, a, b = two_endpoints () in
  let c = Transport.endpoint transport ~name:"c" in
  Transport.set_link_delay transport ~src:a ~dst:c (Delay_model.constant 9.);
  let times = ref [] in
  Transport.send transport ~src:a ~dst:b (fun () -> times := ("b", Engine.now engine) :: !times);
  Transport.send transport ~src:a ~dst:c (fun () -> times := ("c", Engine.now engine) :: !times);
  Engine.run engine ();
  check_close "default link" 1. (List.assoc "b" !times);
  check_close "overridden link" 9. (List.assoc "c" !times);
  Alcotest.(check int) "two channels inspected" 2 (List.length (Transport.channels transport));
  match Transport.channel_delay_percentile transport ~src:a ~dst:c ~p:50. with
  | Some d -> check_close "per-channel histogram" 9. d
  | None -> Alcotest.fail "expected a delay histogram"

let chaotic_config seed =
  {
    Transport.default_config with
    delay = Delay_model.jittered ~base:2. ~jitter:0.75;
    faults =
      { Transport.drop = 0.2; duplicate = 0.1; reorder = 0.3; reorder_spread = 10. };
    seed;
  }

let delivery_trace seed =
  let engine, transport, a, b = two_endpoints ~config:(chaotic_config seed) () in
  let trace = ref [] in
  for i = 1 to 100 do
    ignore
      (Engine.schedule engine ~at:(float_of_int i) (fun _ ->
           Transport.send transport ~key:0 ~src:a ~dst:b (fun () ->
               trace := (i, Engine.now engine) :: !trace)))
  done;
  Engine.run engine ();
  List.rev !trace

let test_seeded_determinism () =
  let t1 = delivery_trace 42 and t2 = delivery_trace 42 in
  Alcotest.(check bool) "same seed, identical delivery trace" true (t1 = t2);
  let t3 = delivery_trace 43 in
  Alcotest.(check bool) "different seed, different trace" true (t1 <> t3)

(* ------------------------------------------------------------------ *)
(* Distributed deployment over the transport                           *)
(* ------------------------------------------------------------------ *)

let run_distributed ?tconfig ?(horizon = 120_000.) ?prepare () =
  let workload = Lla_workloads.Paper_sim.base () in
  let engine = Engine.create () in
  let transport =
    Option.map (fun config -> Transport.create ~config engine) tconfig
  in
  let d = Distributed.create ?transport engine workload in
  Option.iter (fun f -> f workload d) prepare;
  Distributed.run d ~duration:horizon;
  (workload, d)

let final_state workload d =
  ( Distributed.utility d,
    List.map
      (fun (s : Subtask.t) -> Distributed.latency d s.id)
      (Workload.subtasks workload) )

let test_zero_fault_transport_equals_legacy_path () =
  (* The implicit transport built from config.message_delay and an explicit
     zero-fault constant-delay transport must produce bit-for-bit the same
     trajectory. *)
  let _, d_legacy = run_distributed ~horizon:60_000. () in
  let _, d_transport =
    run_distributed ~tconfig:Transport.default_config ~horizon:60_000. ()
  in
  let workload = Lla_workloads.Paper_sim.base () in
  let u1, lats1 = final_state workload d_legacy in
  let u2, lats2 = final_state workload d_transport in
  Alcotest.(check bool) "identical utility" true (Float.equal u1 u2);
  Alcotest.(check bool) "identical latency vector" true
    (List.for_all2 Float.equal lats1 lats2);
  Alcotest.(check int) "identical message count" (Distributed.messages_sent d_legacy)
    (Distributed.messages_sent d_transport)

let lossy_config seed =
  {
    Transport.default_config with
    delay = Delay_model.jittered ~base:1. ~jitter:0.5;
    faults = { Transport.no_faults with drop = 0.1 };
    seed;
  }

let test_distributed_chaos_deterministic () =
  let workload = Lla_workloads.Paper_sim.base () in
  let state seed =
    let _, d = run_distributed ~tconfig:(lossy_config seed) ~horizon:30_000. () in
    final_state workload d
  in
  let u1, lats1 = state 7 and u2, lats2 = state 7 in
  Alcotest.(check bool) "same seed, identical final utility" true (Float.equal u1 u2);
  Alcotest.(check bool) "same seed, identical latencies" true
    (List.for_all2 Float.equal lats1 lats2)

let test_converges_under_ten_percent_loss () =
  (* The acceptance bound: 10% message loss and +/-50% delay jitter keep
     the aggregate utility within 5% of the fault-free run. *)
  let workload, d_ref = run_distributed ~tconfig:Transport.default_config () in
  let reference, _ = final_state workload d_ref in
  let _, d = run_distributed ~tconfig:(lossy_config 42) () in
  let lossy = Distributed.utility d in
  let gap = Float.abs (lossy -. reference) /. Float.abs reference in
  Alcotest.(check bool)
    (Printf.sprintf "within 5%% of fault-free (%.2f vs %.2f, gap %.2f%%)" lossy reference
       (100. *. gap))
    true (gap < 0.05);
  let c = Transport.totals (Distributed.transport d) in
  Alcotest.(check bool) "loss actually happened" true
    (c.Transport.dropped > c.Transport.sent / 20)

let test_partition_heal_recovery () =
  (* Cut three price agents off from every controller mid-run (crashing
     them for the duration); after the heal the deployment must re-converge
     to the fault-free utility. *)
  let workload, d_ref = run_distributed ~tconfig:Transport.default_config () in
  let reference, _ = final_state workload d_ref in
  let partitioned_resources w =
    List.filteri (fun i _ -> i < 3) w.Workload.resources
    |> List.map (fun (r : Resource.t) -> r.Resource.id)
  in
  let _, d =
    run_distributed ~tconfig:Transport.default_config
      ~prepare:(fun w d ->
        let transport = Distributed.transport d in
        let agents = List.map (Distributed.agent_endpoint d) (partitioned_resources w) in
        let controllers =
          List.map (fun (t : Task.t) -> Distributed.controller_endpoint d t.Task.id) w.Workload.tasks
        in
        Transport.partition transport ~at:40_000. ~duration:40_000. ~group_a:agents
          ~group_b:controllers;
        List.iter
          (fun e -> Transport.schedule_outage transport e ~at:40_000. ~duration:40_000.)
          agents)
      ()
  in
  let final = Distributed.utility d in
  let gap = Float.abs (final -. reference) /. Float.abs reference in
  Alcotest.(check bool)
    (Printf.sprintf "recovered after heal (%.2f vs %.2f, gap %.2f%%)" final reference
       (100. *. gap))
    true (gap < 0.05);
  let c = Transport.totals (Distributed.transport d) in
  Alcotest.(check bool) "partition cut traffic" true (c.Transport.cut > 1000);
  let transport = Distributed.transport d in
  let outages =
    List.fold_left
      (fun acc rid -> acc + Transport.outages transport (Distributed.agent_endpoint d rid))
      0
      (partitioned_resources workload)
  in
  Alcotest.(check int) "each partitioned agent crashed once" 3 outages

let test_agent_crash_restart_reconverges () =
  let workload, d_ref = run_distributed ~tconfig:Transport.default_config () in
  let reference, _ = final_state workload d_ref in
  let _, d =
    run_distributed ~tconfig:Transport.default_config
      ~prepare:(fun w d ->
        let rid = (List.hd w.Workload.resources).Resource.id in
        Transport.schedule_outage (Distributed.transport d) (Distributed.agent_endpoint d rid)
          ~at:30_000. ~duration:10_000.)
      ()
  in
  let final = Distributed.utility d in
  let gap = Float.abs (final -. reference) /. Float.abs reference in
  Alcotest.(check bool)
    (Printf.sprintf "price state rebuilt after restart (gap %.2f%%)" (100. *. gap))
    true (gap < 0.05)

let test_stop_cancels_periodic_ticks () =
  let workload = Lla_workloads.Paper_sim.base () in
  let engine = Engine.create () in
  let d = Distributed.create engine workload in
  Distributed.run d ~duration:5_000.;
  Alcotest.(check bool) "ticks keep the engine busy" true (Engine.pending engine > 0);
  Distributed.stop d;
  let rounds_at_stop = Distributed.price_rounds d in
  (* Without stop this would never terminate: the periodic loops reschedule
     forever. After stop only in-flight messages remain. *)
  Engine.run engine ();
  Alcotest.(check int) "engine drained" 0 (Engine.pending engine);
  Alcotest.(check int) "no rounds after stop" rounds_at_stop (Distributed.price_rounds d)

let test_chaos_experiment_smoke () =
  (* The CLI-facing harness end to end, on a reduced budget. *)
  let r = Lla_experiments.Chaos.run ~seed:1 ~horizon:30_000. ~drops:[ 0.1 ] ~jitters:[ 0.5 ] () in
  (match r.Lla_experiments.Chaos.drop_points with
  | [ p ] ->
    Alcotest.(check bool) "drop point within 5%" true
      (p.Lla_experiments.Chaos.utility_gap_percent < 5.)
  | _ -> Alcotest.fail "expected one drop point");
  Alcotest.(check bool) "partition run recovered" true
    (r.Lla_experiments.Chaos.partition.Lla_experiments.Chaos.final_gap_percent < 5.);
  Alcotest.(check bool) "report renders" true
    (String.length (Lla_experiments.Chaos.report r) > 400)

let () =
  Alcotest.run "lla_transport"
    [
      ( "channel",
        [
          Alcotest.test_case "constant delay, in order" `Quick test_constant_delivery_in_order;
          Alcotest.test_case "drop everything" `Quick test_drop_everything;
          Alcotest.test_case "duplicates without lww" `Quick test_duplicates_without_lww;
          Alcotest.test_case "lww discards duplicates" `Quick test_lww_discards_duplicates;
          Alcotest.test_case "reordering + lww monotonicity" `Quick
            test_reordering_and_lww_monotonicity;
          Alcotest.test_case "retry recovers losses" `Quick test_retry_recovers_losses;
          Alcotest.test_case "partition cuts and heals" `Quick test_partition_cuts_and_heals;
          Alcotest.test_case "retry rides out a partition" `Quick test_retry_rides_out_partition;
          Alcotest.test_case "retry jitter band and zero-jitter schedule" `Quick test_retry_jitter;
          Alcotest.test_case "retry jitter validation" `Quick test_retry_jitter_validation;
          Alcotest.test_case "outage and restart hook" `Quick test_outage_and_restart_hook;
          Alcotest.test_case "per-link delay override" `Quick test_per_link_delay_override;
          Alcotest.test_case "seeded determinism" `Quick test_seeded_determinism;
        ] );
      ( "distributed",
        [
          Alcotest.test_case "zero-fault transport = legacy path" `Slow
            test_zero_fault_transport_equals_legacy_path;
          Alcotest.test_case "chaos runs are deterministic" `Slow
            test_distributed_chaos_deterministic;
          Alcotest.test_case "converges under 10% loss" `Slow test_converges_under_ten_percent_loss;
          Alcotest.test_case "partition + heal recovery" `Slow test_partition_heal_recovery;
          Alcotest.test_case "agent crash/restart reconverges" `Slow
            test_agent_crash_restart_reconverges;
          Alcotest.test_case "stop cancels periodic ticks" `Quick test_stop_cancels_periodic_ticks;
          Alcotest.test_case "chaos experiment smoke" `Slow test_chaos_experiment_smoke;
        ] );
    ]
