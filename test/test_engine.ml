(* The engine interface battery: golden traces through Engine_sim (the
   refactor must be invisible on the legacy path), Engine_rt equivalence,
   the seeded domains-parallel interleaving battery (replay determinism,
   element-wise agreement with the simulator, merged-trace oracles), the
   order-sensitivity repro behind the calibrated span oracle, and
   engine-aware campaign shrinking. *)

module Reng = Lla_runtime.Engine
module Distributed = Lla_runtime.Distributed
module Transport = Lla_transport.Transport
module Trace = Lla_obs.Trace
module Invariant = Lla_obs.Invariant
module Campaign = Lla_chaos.Campaign
module Schedule = Lla_chaos.Schedule
module Oracle = Lla_chaos.Oracle
module Soak = Lla_soak.Soak
module P = Lla.Problem

let workload = Lla_workloads.Paper_sim.base ()

let problem = P.compile workload

let n_sub = P.n_subtasks problem

let n_res = P.n_resources problem

type snapshot = {
  utility : float;
  lat : float array;
  mu : float array;
  messages : int;
  price_rounds : int;
  allocation_rounds : int;
}

let snapshot dist =
  {
    utility = Distributed.utility dist;
    lat = Array.init n_sub (fun i -> Distributed.latency dist problem.P.subtasks.(i).P.sid);
    mu = Array.init n_res (fun r -> Distributed.mu dist problem.P.resource_ids.(r));
    messages = Distributed.messages_sent dist;
    price_rounds = Distributed.price_rounds dist;
    allocation_rounds = Distributed.allocation_rounds dist;
  }

(* Bit-for-bit: [compare] (not [=]) so a nan in both snapshots matches. *)
let check_snapshot_eq msg a b =
  Alcotest.(check bool) (msg ^ ": snapshot bit-for-bit") true (compare a b = 0)

let check_lat_close ~eps msg a b =
  Array.iteri
    (fun i x ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: lat[%d] within %g (%.9f vs %.9f)" msg i eps x b.lat.(i))
        true
        (Float.abs (x -. b.lat.(i)) <= eps))
    a.lat

(* A run on the legacy caller-owned-core path. *)
let run_legacy ?obs ?resilience ?tconfig ~duration () =
  let core = Lla_sim.Engine.create () in
  let transport = Option.map (fun c -> Transport.create ?obs ~config:c core) tconfig in
  let dist = Distributed.create ?obs ?resilience ?transport core workload in
  Distributed.run dist ~duration;
  Distributed.stop dist;
  Lla_sim.Engine.run core ();
  snapshot dist

(* A run through an engine handle; returns the merged per-shard trace
   too. The engine is NOT shut down — single-shard engines have nothing
   to release, and the domains helpers below own that. *)
let run_on ?obs ?resilience ?tconfig ?inject engine_h ~duration () =
  let dist =
    Distributed.create_on ?obs ?resilience ?transport_config:tconfig engine_h workload
  in
  Option.iter (fun f -> f dist) inject;
  Distributed.run dist ~duration;
  Distributed.stop dist;
  Reng.drain engine_h;
  (snapshot dist, Distributed.merged_records dist)

let run_domains ?resilience ?tconfig ?inject ~domains ~duration () =
  let eng = Reng.domains ~domains () in
  let obs = Lla_obs.create ~spans:true () in
  let result = run_on ~obs ?resilience ?tconfig ?inject eng ~duration () in
  Reng.shutdown eng;
  result

(* ------------------------------------------------------------------ *)
(* Golden traces: Engine_sim reproduces the pre-refactor trajectories   *)
(* ------------------------------------------------------------------ *)

let test_sim_golden_plain () =
  let legacy = run_legacy ~duration:20_000. () in
  let on_engine, _ = run_on (Reng.sim ()) ~duration:20_000. () in
  check_snapshot_eq "plain deployment" legacy on_engine

let test_sim_golden_traced_resilient () =
  let run_with path =
    let obs = Lla_obs.create () in
    let sink, collected = Trace.memory_sink () in
    Trace.attach obs.Lla_obs.trace sink;
    let s =
      match path with
      | `Legacy ->
          run_legacy ~obs ~resilience:Distributed.default_resilience ~duration:15_000. ()
      | `Engine ->
          fst
            (run_on ~obs ~resilience:Distributed.default_resilience (Reng.sim ())
               ~duration:15_000. ())
    in
    (s, collected ())
  in
  let s1, r1 = run_with `Legacy in
  let s2, r2 = run_with `Engine in
  check_snapshot_eq "traced resilient deployment" s1 s2;
  Alcotest.(check int) "same trace length" (List.length r1) (List.length r2);
  Alcotest.(check bool) "trace streams bit-for-bit" true (compare r1 r2 = 0)

let test_sim_golden_faulted_transport () =
  (* The chaos-style scenario: a seeded faulty transport. The engine
     path builds shard 0's transport from the same config (seed + 0), so
     the fault RNG draws — and therefore every drop and reorder — must
     land identically. *)
  let tconfig =
    {
      Transport.default_config with
      Transport.seed = 9;
      faults =
        { Transport.drop = 0.08; duplicate = 0.04; reorder = 0.15; reorder_spread = 6. };
    }
  in
  let legacy = run_legacy ~tconfig ~duration:15_000. () in
  let on_engine, _ = run_on ~tconfig (Reng.sim ()) ~duration:15_000. () in
  check_snapshot_eq "faulted transport" legacy on_engine

let test_rt_matches_sim () =
  (* The wall-clock stub shares the scheduling core, so at high speedup
     it must produce the identical event order and results. *)
  let sim, _ = run_on (Reng.sim ()) ~duration:3_000. () in
  let rt, _ = run_on (Reng.rt ~speedup:1e9 ()) ~duration:3_000. () in
  check_snapshot_eq "rt vs sim" sim rt

(* ------------------------------------------------------------------ *)
(* Domains engine: agreement, determinism, merged oracles               *)
(* ------------------------------------------------------------------ *)

let test_domains_matches_sim () =
  let duration = 8_000. in
  let sim, _ = run_on (Reng.sim ()) ~duration () in
  List.iter
    (fun domains ->
      let dom, _ = run_domains ~domains ~duration () in
      check_lat_close ~eps:1e-6 (Printf.sprintf "%d domains" domains) dom sim;
      Alcotest.(check bool)
        (Printf.sprintf "%d domains: utility within 1e-6 (%.9f vs %.9f)" domains dom.utility
           sim.utility)
        true
        (Float.abs (dom.utility -. sim.utility) <= 1e-6))
    [ 1; 2; 4 ]

(* The sharded metrics registries: a >= 2-domain deployment keeps one
   private registry per shard and merges on read. On a deterministic
   workload over the zero-fault constant-delay transport, the merged
   view must agree with a single-registry sim run — counters exactly,
   the latency histogram in count and (to float-sum rounding) in sum. *)
let test_merged_registry_matches_single () =
  let module Metrics = Lla_obs.Metrics in
  let duration = 8_000. in
  let tconfig = { Transport.default_config with Transport.seed = 5 } in
  let run engine_h =
    let obs = Lla_obs.create ~spans:true () in
    let dist = Distributed.create_on ~obs ~transport_config:tconfig engine_h workload in
    Distributed.run dist ~duration;
    Distributed.stop dist;
    Reng.drain engine_h;
    (Distributed.merged_metrics dist, Distributed.shard_count dist)
  in
  let single, n_single = run (Reng.sim ()) in
  let eng = Reng.domains ~domains:2 () in
  let multi, n_multi = run eng in
  Reng.shutdown eng;
  Alcotest.(check int) "sim path is one shard" 1 n_single;
  Alcotest.(check bool) "domains path is >= 2 shards" true (n_multi >= 2);
  List.iter
    (fun name ->
      match (Metrics.find_counter single name, Metrics.find_counter multi name) with
      | Some a, Some b ->
        Alcotest.(check int) (name ^ ": merged == single") (Metrics.value a) (Metrics.value b)
      | None, None -> ()
      | Some _, None -> Alcotest.fail (name ^ " missing from the merged registry")
      | None, Some _ -> Alcotest.fail (name ^ " missing from the single registry"))
    [
      "lla_runtime_messages_total";
      "lla_runtime_price_rounds_total";
      "lla_runtime_allocation_rounds_total";
      "lla_runtime_guard_events_total";
      "lla_runtime_warm_restores_total";
      "lla_runtime_cold_restarts_total";
    ];
  match
    (Metrics.find_histogram single "lla_control_latency_ms",
     Metrics.find_histogram multi "lla_control_latency_ms")
  with
  | Some a, Some b ->
    Alcotest.(check bool) "latency histogram has samples" true (Metrics.histogram_count a > 0);
    Alcotest.(check int) "latency histogram count: merged == single" (Metrics.histogram_count a)
      (Metrics.histogram_count b);
    Alcotest.(check (float 1e-6)) "latency histogram sum: merged == single"
      (Metrics.histogram_sum a) (Metrics.histogram_sum b)
  | _ -> Alcotest.fail "lla_control_latency_ms missing from a registry"

let fault_window ~seed dist =
  let drop = 0.05 +. (0.05 *. float_of_int (seed mod 4)) in
  let faults = { Transport.no_faults with Transport.drop; reorder = 0.2; reorder_spread = 4. } in
  Distributed.schedule_injection dist ~at:1_500. (fun () -> Distributed.set_faults_all dist faults);
  Distributed.schedule_injection dist ~at:3_200. (fun () ->
      Distributed.set_faults_all dist Transport.no_faults)

let time_sorted records =
  let rec go = function
    | (a : Trace.record) :: (b :: _ as rest) -> a.Trace.at <= b.Trace.at && go rest
    | _ -> true
  in
  go records

(* The interleaving battery: across seeds, domain counts and a seeded
   fault window, the deterministic-merge engine must replay bit-for-bit
   against itself, and the merged parallel trace must satisfy every
   order-insensitive oracle. *)
let battery =
  QCheck.Test.make ~name:"domains interleaving battery (seeded)" ~count:3
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let duration = 4_000. in
      let tconfig = { Transport.default_config with Transport.seed = seed } in
      List.for_all
        (fun domains ->
          let run () =
            run_domains ~resilience:Distributed.default_resilience ~tconfig
              ~inject:(fault_window ~seed) ~domains ~duration ()
          in
          let s1, r1 = run () in
          let s2, r2 = run () in
          if compare s1 s2 <> 0 then
            QCheck.Test.fail_reportf "seed %d, %d domains: replay diverged" seed domains;
          if compare r1 r2 <> 0 then
            QCheck.Test.fail_reportf "seed %d, %d domains: merged traces differ" seed domains;
          if not (time_sorted r1) then
            QCheck.Test.fail_reportf "seed %d, %d domains: merged trace not time-sorted" seed
              domains;
          if not (Invariant.spans_well_formed_merged r1) then
            QCheck.Test.fail_reportf "seed %d, %d domains: merged spans ill-formed" seed domains;
          if not (Invariant.safe_entries_preceded_by_trip r1) then
            QCheck.Test.fail_reportf "seed %d, %d domains: safe entry without a trip" seed domains;
          (* Eq. 3/4 on the merged stream: the healthy late stretch of the
             run must not be in sustained violation (the transient during
             the fault window is exempt by [from]). *)
          let late = List.filter (fun (r : Trace.record) -> r.Trace.at >= 3_800.) r1 in
          let violations = Invariant.check_constraints ~tolerance:0.15 ~from:3_800. late in
          if List.length violations > List.length late / 10 then
            QCheck.Test.fail_reportf "seed %d, %d domains: %d/%d late records violate Eq.3/4" seed
              domains (List.length violations) (List.length late);
          true)
        [ 1; 2; 4 ]
      &&
      (* Fault-free runs agree with the simulator element-wise. *)
      let sim, _ = run_on ~tconfig (Reng.sim ()) ~duration () in
      List.for_all
        (fun domains ->
          let dom, _ = run_domains ~tconfig ~domains ~duration () in
          Array.for_all2 (fun a b -> Float.abs (a -. b) <= 1e-6) dom.lat sim.lat
          || QCheck.Test.fail_reportf "seed %d, %d domains: allocation disagrees with sim" seed
               domains)
        [ 2; 4 ])

let test_span_oracle_order_sensitivity () =
  (* The repro the calibrated oracle's doc promises: a healthy 2-domain
     run emits spans with per-shard strided ids, so the merged stream
     interleaves the id progressions — the single-stream oracle trips on
     a perfectly correct trace, the merged variant accepts it. *)
  let _, records = run_domains ~domains:2 ~duration:4_000. () in
  let has_span (r : Trace.record) =
    match r.Trace.event with Trace.Span _ -> true | _ -> false
  in
  Alcotest.(check bool) "stream has spans" true (List.exists has_span records);
  Alcotest.(check bool) "spans from both shards interleave ids" false
    (Invariant.spans_well_formed records);
  Alcotest.(check bool) "merged-stream oracle accepts" true
    (Invariant.spans_well_formed_merged records)

(* ------------------------------------------------------------------ *)
(* Campaign + soak against the domains engine                           *)
(* ------------------------------------------------------------------ *)

let small_schedule ~seed events =
  Schedule.make
    ~setup:{ Schedule.robust_setup with Schedule.transport_seed = seed }
    ~workload:"base" ~horizon:4_000. ~settle:12_000. events

let test_campaign_domains_replay_identical () =
  let sched =
    small_schedule ~seed:11
      [
        Schedule.Faults
          {
            at = 1_200.;
            duration = 900.;
            faults =
              { Transport.drop = 0.2; duplicate = 0.05; reorder = 0.2; reorder_spread = 5. };
          };
        Schedule.Outage { at = 2_000.; duration = 600.; target = Schedule.Agent 1 };
      ]
  in
  match
    (Campaign.run_schedule ~engine:(`Domains 2) sched, Campaign.run_schedule ~engine:(`Domains 2) sched)
  with
  | Ok a, Ok b ->
      Alcotest.(check bool) "verdicts identical" true (a.Campaign.verdicts = b.Campaign.verdicts);
      Alcotest.(check bool) "merged traces bit-for-bit" true
        (compare a.Campaign.outcome.Oracle.records b.Campaign.outcome.Oracle.records = 0);
      Alcotest.(check (float 0.)) "final utility bit-equal"
        a.Campaign.outcome.Oracle.final_utility b.Campaign.outcome.Oracle.final_utility;
      Alcotest.(check bool)
        (Printf.sprintf "oracles pass: %s" (Oracle.render a.Campaign.verdicts))
        true (Oracle.ok a.Campaign.verdicts)
  | Error e, _ | _, Error e -> Alcotest.failf "run_schedule: %s" e

let test_campaign_domains_shrinker_repro () =
  (* An interleaving-exposed failure: a nan poison against the fragile
     (resilience-off) deployment on the parallel engine. The engine-aware
     shrinker must minimize it and the minimum must still reproduce on
     the same engine. *)
  let engine = `Domains 2 in
  let sched =
    Schedule.make
      ~setup:(Schedule.fragile_setup 48. 5)
      ~workload:"base" ~horizon:3_000. ~settle:4_000.
      [
        Schedule.Price_poison { at = 1_000.; resource = 0; value = Float.nan };
        Schedule.Jitter { at = 1_500.; duration = 800.; spread = 4. };
      ]
  in
  match Campaign.run_schedule ~engine sched with
  | Error e -> Alcotest.failf "run_schedule: %s" e
  | Ok exec ->
      let failing = List.map (fun v -> v.Oracle.oracle) (Oracle.failures exec.Campaign.verdicts) in
      Alcotest.(check bool) "fragile poison fails some oracle" true (failing <> []);
      let shrunk = Campaign.shrink ~engine ~max_attempts:8 ~failing sched in
      Alcotest.(check bool) "shrunk is no larger" true
        (List.length shrunk.Schedule.events <= List.length sched.Schedule.events);
      Alcotest.(check bool) "shrunk still reproduces on the domains engine" true
        (Campaign.reproduces ~engine ~failing shrunk)

let test_soak_engine_paths_agree () =
  (* The PR-7 soak loop driven through an engine handle — sim and
     domains — must make tick-for-tick the same decisions as the plain
     loop: every deterministic report field agrees. *)
  let config = { Soak.smoke_config with Soak.subtasks = 200; horizon = 4_000 } in
  let det (r : Soak.report) =
    ( ( r.Soak.ticks,
        r.Soak.tasks,
        r.Soak.subtasks,
        r.Soak.admits,
        r.Soak.retires,
        r.Soak.chaos_windows,
        r.Soak.stalls ),
      ( r.Soak.guard_events,
        r.Soak.safe_entries,
        r.Soak.safe_exits,
        r.Soak.degradations,
        r.Soak.recoveries,
        r.Soak.max_level,
        r.Soak.violation_count ),
      ( r.Soak.oracle_violations,
        r.Soak.reconverge_episodes,
        r.Soak.worst_settle_ticks,
        r.Soak.baseline_checks,
        r.Soak.worst_drift,
        r.Soak.final_utility,
        r.Soak.final_feasible,
        r.Soak.final_active_tasks ) )
  in
  let plain = Result.get_ok (Soak.run config) in
  let sim = Result.get_ok (Soak.run ~engine:(Reng.sim ()) config) in
  let deng = Reng.domains ~domains:2 () in
  let dom = Result.get_ok (Soak.run ~engine:deng config) in
  Reng.shutdown deng;
  Alcotest.(check bool) "plain = sim engine" true (compare (det plain) (det sim) = 0);
  Alcotest.(check bool) "plain = domains engine" true (compare (det plain) (det dom) = 0);
  Alcotest.(check int) "no violations" 0 plain.Soak.violation_count

let () =
  Alcotest.run "lla_engine"
    [
      ( "golden",
        [
          Alcotest.test_case "sim engine, plain deployment" `Slow test_sim_golden_plain;
          Alcotest.test_case "sim engine, traced + resilient" `Slow
            test_sim_golden_traced_resilient;
          Alcotest.test_case "sim engine, faulted transport" `Slow
            test_sim_golden_faulted_transport;
          Alcotest.test_case "rt engine matches sim" `Quick test_rt_matches_sim;
        ] );
      ( "domains",
        [
          Alcotest.test_case "settled allocation matches sim (1/2/4)" `Slow
            test_domains_matches_sim;
          QCheck_alcotest.to_alcotest battery;
          Alcotest.test_case "merged metrics registry matches single-shard" `Slow
            test_merged_registry_matches_single;
          Alcotest.test_case "span oracle order-sensitivity repro" `Slow
            test_span_oracle_order_sensitivity;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "domains replay bit-identical" `Slow
            test_campaign_domains_replay_identical;
          Alcotest.test_case "interleaving failure shrinks and reproduces" `Slow
            test_campaign_domains_shrinker_repro;
        ] );
      ( "soak",
        [ Alcotest.test_case "engine paths agree with the loop" `Slow test_soak_engine_paths_agree ]
      );
    ]
