(* Invariant checking over recorded traces: replay the event streams of
   live distributed runs through the Invariant oracles (Eq. 3 resource
   budgets, Eq. 4 path critical-times, safe-mode causality), and pin the
   oracles themselves down on hand-built streams where the expected
   verdict is known by construction. *)

module Trace = Lla_obs.Trace
module Invariant = Lla_obs.Invariant
module Distributed = Lla_runtime.Distributed
module Transport = Lla_transport.Transport

let record seq at event = { Trace.seq; at; event }

let traced_run ?config ?resilience ~workload ~duration () =
  let obs = Lla_obs.create () in
  let sink, seen = Trace.memory_sink () in
  Trace.attach obs.Lla_obs.trace sink;
  let engine = Lla_sim.Engine.create () in
  let d = Distributed.create ?config ?resilience ~obs engine workload in
  Distributed.run d ~duration;
  Distributed.stop d;
  (d, seen ())

(* ------------------------------------------------------------------ *)
(* Live traces                                                         *)
(* ------------------------------------------------------------------ *)

let assert_no_violations what violations =
  match violations with
  | [] -> ()
  | v :: _ -> Alcotest.failf "%s, first: %a" what Invariant.pp_violation v

(* A healthy distributed run: the recorded price events in the settled
   suffix must show every resource within its budget and every path
   within its critical time. The asynchronous deployment works off
   stale latency announcements, so its instantaneous operands oscillate
   in a band around the constraint surface (measured peak ~8% late in
   this seed's run) — the oracle asserts the band, and that nothing
   non-finite or unbounded ever appears. *)
let test_healthy_run_obeys_constraints () =
  let _, records =
    traced_run ~workload:(Lla_workloads.Paper_sim.base ()) ~duration:10_000. ()
  in
  Alcotest.(check bool) "stream is monotone" true (Invariant.monotone records);
  Alcotest.(check bool) "trace is non-trivial" true (List.length records > 1000);
  assert_no_violations "constraint excursions beyond the settled band"
    (Invariant.check_constraints ~tolerance:0.10 ~from:8_000. records);
  Alcotest.(check bool) "no safe-mode events at all" true
    (List.for_all
       (fun (r : Trace.record) ->
         match r.Trace.event with Trace.Safe_mode_entered _ -> false | _ -> true)
       records)

(* The synchronous solver has no staleness, so its converged suffix must
   sit tightly on the constraint surface: past [converged_at] the
   recorded operands stay within a few percent (this seed peaks at 2.2%
   just after the convergence point and decays from there). *)
let test_converged_solver_trace_is_tight () =
  let obs = Lla_obs.create () in
  let sink, seen = Trace.memory_sink () in
  Trace.attach obs.Lla_obs.trace sink;
  let solver = Lla.Solver.create ~obs (Lla_workloads.Paper_sim.base ()) in
  match Lla.Solver.run_until_converged solver ~max_iterations:1_000 with
  | None -> Alcotest.fail "solver did not converge within 1000 iterations"
  | Some converged ->
    let records = seen () in
    Alcotest.(check bool) "stream is monotone" true (Invariant.monotone records);
    assert_no_violations "constraint violations after convergence"
      (Invariant.check_constraints ~tolerance:0.03 ~from:(float_of_int converged) records)

(* A forced divergence (huge fixed step on a tight workload): safe mode
   must engage, and the trace must show that every entry was caused by a
   watchdog trip — never spontaneous. *)
let test_divergent_run_safe_mode_causality () =
  let workload = Lla_workloads.Paper_sim.scaled ~copies:1 ~critical_time_factor:1.5 () in
  let config =
    { Distributed.default_config with Distributed.step_policy = Lla.Step_size.fixed 64. }
  in
  let resilience =
    {
      Distributed.default_resilience with
      Distributed.health = None;
      checkpoint_period = None;
    }
  in
  let d, records = traced_run ~config ~resilience ~workload ~duration:20_000. () in
  Alcotest.(check bool) "divergence tripped safe mode" true (Distributed.safe_entries d >= 1);
  let entries =
    List.length
      (List.filter
         (fun (r : Trace.record) ->
           match r.Trace.event with Trace.Safe_mode_entered _ -> true | _ -> false)
         records)
  in
  Alcotest.(check int) "every entry is in the trace" (Distributed.safe_entries d) entries;
  Alcotest.(check bool) "stream is monotone" true (Invariant.monotone records);
  Alcotest.(check bool) "every entry preceded by a watchdog trip" true
    (Invariant.safe_entries_preceded_by_trip records)

(* ------------------------------------------------------------------ *)
(* Oracles on hand-built streams                                       *)
(* ------------------------------------------------------------------ *)

let price ~share_sum ~capacity =
  Trace.Price_updated { resource = 0; mu = 1.; step = 1.; share_sum; capacity; congested = false }

let path ~latency ~critical_time =
  Trace.Path_price_updated { path = 0; lambda = 0.; step = 1.; latency; critical_time }

let test_check_constraints_flags_overruns () =
  let stream =
    [
      record 0 0. (price ~share_sum:1.2 ~capacity:1.0);  (* transient: exempt *)
      record 1 10. (price ~share_sum:0.99 ~capacity:1.0);
      record 2 20. (price ~share_sum:1.2 ~capacity:1.0);  (* Eq. 3 overrun *)
      record 3 30. (path ~latency:99. ~critical_time:100.);
      record 4 40. (path ~latency:107. ~critical_time:100.);  (* Eq. 4 overrun *)
      record 5 50. (price ~share_sum:1.04 ~capacity:1.0);  (* within 5% tolerance *)
    ]
  in
  let violations = Invariant.check_constraints ~tolerance:0.05 ~from:5. stream in
  Alcotest.(check (list int)) "exactly the two overruns, in order" [ 2; 4 ]
    (List.map (fun (v : Invariant.violation) -> v.Invariant.seq) violations);
  (* zero tolerance also catches the 4% overrun *)
  let strict = Invariant.check_constraints ~from:5. stream in
  Alcotest.(check (list int)) "strict tolerance" [ 2; 4; 5 ]
    (List.map (fun (v : Invariant.violation) -> v.Invariant.seq) strict)

let test_check_constraints_non_finite_always_violates () =
  let stream =
    [
      record 0 10. (price ~share_sum:Float.nan ~capacity:1.0);
      record 1 20. (path ~latency:Float.infinity ~critical_time:100.);
    ]
  in
  let violations = Invariant.check_constraints ~tolerance:1e9 ~from:0. stream in
  Alcotest.(check int) "both flagged regardless of tolerance" 2 (List.length violations)

let test_safe_mode_causality_oracle () =
  let trip = Trace.Watchdog_trip { reason = "r" } in
  let enter = Trace.Safe_mode_entered { reason = "r"; fallback = "f" } in
  let ok = [ record 0 0. trip; record 1 1. enter; record 2 2. Trace.Safe_mode_exited ] in
  Alcotest.(check bool) "trip then entry" true (Invariant.safe_entries_preceded_by_trip ok);
  Alcotest.(check bool) "vacuously true without entries" true
    (Invariant.safe_entries_preceded_by_trip [ record 0 0. trip ]);
  let spontaneous = [ record 0 0. enter ] in
  Alcotest.(check bool) "spontaneous entry" false
    (Invariant.safe_entries_preceded_by_trip spontaneous);
  let reused_trip =
    [ record 0 0. trip; record 1 1. enter; record 2 2. Trace.Safe_mode_exited; record 3 3. enter ]
  in
  Alcotest.(check bool) "a trip only licenses one entry" false
    (Invariant.safe_entries_preceded_by_trip reused_trip)

let test_monotone_oracle () =
  let e = Trace.Safe_mode_exited in
  Alcotest.(check bool) "well-formed" true
    (Invariant.monotone [ record 0 0. e; record 1 0. e; record 2 5. e ]);
  Alcotest.(check bool) "empty stream" true (Invariant.monotone []);
  Alcotest.(check bool) "time going backwards" false
    (Invariant.monotone [ record 0 5. e; record 1 4. e ]);
  Alcotest.(check bool) "repeated sequence number" false
    (Invariant.monotone [ record 0 0. e; record 0 1. e ])

let () =
  Alcotest.run "lla_invariants"
    [
      ( "live-traces",
        [
          Alcotest.test_case "healthy run obeys Eq. 3 and Eq. 4" `Slow
            test_healthy_run_obeys_constraints;
          Alcotest.test_case "converged solver trace is tight" `Slow
            test_converged_solver_trace_is_tight;
          Alcotest.test_case "forced divergence: safe-mode causality" `Slow
            test_divergent_run_safe_mode_causality;
        ] );
      ( "oracles",
        [
          Alcotest.test_case "constraint overruns flagged" `Quick
            test_check_constraints_flags_overruns;
          Alcotest.test_case "non-finite always violates" `Quick
            test_check_constraints_non_finite_always_violates;
          Alcotest.test_case "safe-mode causality" `Quick test_safe_mode_causality_oracle;
          Alcotest.test_case "monotone well-formedness" `Quick test_monotone_oracle;
        ] );
    ]
